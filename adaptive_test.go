package etx_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx"
)

// TestPublicAPIAdaptiveWindows runs a full cluster with the self-tuning
// windows on through both regimes they must serve: strictly sequential
// requests (where the windows should collapse and add no latency) and a
// concurrent burst (where they should widen and batch). Correctness must be
// identical to a static deployment — adaptation is timing only.
func TestPublicAPIAdaptiveWindows(t *testing.T) {
	perAcct := map[string]int64{}
	for i := 0; i < 8; i++ {
		perAcct[fmt.Sprintf("acct/a%02d", i)] = 100
	}
	logic := func(ctx context.Context, tx *etx.Tx, req []byte) ([]byte, error) {
		bal, err := tx.Add(ctx, 0, string(req), -1)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", bal)), nil
	}
	c := newCluster(t, etx.Config{
		Seed:            perAcct,
		Logic:           logic,
		Workers:         8,
		FsyncLatency:    200 * time.Microsecond,
		AdaptiveWindows: true,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Sequential regime: one request in flight at a time.
	for r := 0; r < 3; r++ {
		res, err := c.Issue(ctx, 1, []byte("acct/a00"))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%d", 99-r); string(res) != want {
			t.Errorf("sequential round %d: %q, want %q", r, res, want)
		}
	}

	// Concurrent regime: all accounts at once, repeatedly.
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, 8*rounds)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("acct/a%02d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := c.Issue(ctx, 1, []byte(key)); err != nil {
					errs <- fmt.Errorf("%s round %d: %w", key, r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("acct/a%02d", i)
		want := int64(100 - rounds)
		if i == 0 {
			want -= 3 // the sequential warm-up drew on a00 too
		}
		if bal, _ := c.ReadInt(1, key); bal != want {
			t.Errorf("%s = %d, want %d", key, bal, want)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
