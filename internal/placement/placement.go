// Package placement is the key-routing layer of the sharded database tier:
// it maps business-data keys to shards and shards to the database servers
// that own them.
//
// The paper presents its protocol against a per-request dlist of database
// servers but measures a deployment where that list is every server. With
// placement, the dlist becomes the set of shards a transaction actually
// touched: the application server routes each data operation to the key's
// home shard, records the touched set, and runs prepare/terminate against
// only those servers. Adding database servers then adds commit capacity
// instead of commit latency.
//
// Two partitioners are provided: Hash (FNV-1a modulo the shard count — the
// default, load-spreading choice) and Range (ordered split points — the
// choice when key locality matters, e.g. range scans per shard). Both are
// pure functions of the key, so every application server computes the same
// home shard with no coordination and no routing state to recover after a
// crash.
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"etx/internal/id"
)

// Policy maps keys to shard ordinals in [0, Shards()).
type Policy interface {
	// Shards returns the number of shards the policy splits keys over.
	Shards() int
	// ShardFor returns the home shard of key.
	ShardFor(key string) int
	// String renders the policy in the spec form Parse accepts.
	String() string
}

// --- hash partitioner --------------------------------------------------------

type hashPolicy struct {
	n int
}

// Hash returns the FNV-1a hash partitioner over n shards (n >= 1).
func Hash(n int) Policy {
	if n < 1 {
		n = 1
	}
	return hashPolicy{n: n}
}

// Shards implements Policy.
func (p hashPolicy) Shards() int { return p.n }

// ShardFor implements Policy.
func (p hashPolicy) ShardFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.n))
}

// String implements Policy.
func (p hashPolicy) String() string { return "hash" }

// --- range partitioner -------------------------------------------------------

type rangePolicy struct {
	bounds []string // sorted lower bounds of shards 1..n-1
}

// Range returns the ordered partitioner with the given split points: keys
// below bounds[0] live on shard 0, keys in [bounds[i], bounds[i+1]) on shard
// i+1, keys at or above the last bound on the last shard. It splits over
// len(bounds)+1 shards.
func Range(bounds ...string) Policy {
	bs := append([]string(nil), bounds...)
	sort.Strings(bs)
	return rangePolicy{bounds: bs}
}

// Shards implements Policy.
func (p rangePolicy) Shards() int { return len(p.bounds) + 1 }

// ShardFor implements Policy.
func (p rangePolicy) ShardFor(key string) int {
	// The home shard is the number of split points at or below the key.
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > key })
}

// String implements Policy.
func (p rangePolicy) String() string { return "range:" + strings.Join(p.bounds, ",") }

// --- spec parsing ------------------------------------------------------------

// Parse builds a policy from its flag form: "hash" (the default when spec is
// empty) or "range:b1,b2,...". shards is the deployment's shard count; a
// range spec must carry exactly shards-1 split points.
func Parse(spec string, shards int) (Policy, error) {
	if shards < 1 {
		return nil, fmt.Errorf("placement: need at least 1 shard, got %d", shards)
	}
	switch {
	case spec == "" || spec == "hash":
		return Hash(shards), nil
	case strings.HasPrefix(spec, "range:"):
		bounds := strings.Split(strings.TrimPrefix(spec, "range:"), ",")
		if len(bounds) != shards-1 {
			return nil, fmt.Errorf("placement: range spec has %d split points, want %d for %d shards",
				len(bounds), shards-1, shards)
		}
		return Range(bounds...), nil
	default:
		return nil, fmt.Errorf("placement: unknown policy spec %q (want \"hash\" or \"range:b1,b2,...\")", spec)
	}
}

// --- shard-homed name derivation ---------------------------------------------

// probeLimit bounds the name search: under a pathological policy (e.g. a
// range split that no key with the given prefix can cross) the wanted shard
// may be unreachable, and the caller needs a failure, not a spin.
const probeLimit = 1 << 20

// KeyedNames returns the first n names of the form prefix+k (k = 0, 1, ...)
// whose derived key — keyFor applied to the name — is homed on shard. It is
// the one shared implementation of "find me accounts that live on shard s"
// used by workload generators, benches and tests; ok is false when the probe
// limit is exhausted first (the shard is unreachable with this prefix under
// this policy).
func KeyedNames(p Policy, shard int, prefix string, keyFor func(string) string, n int) (names []string, ok bool) {
	for k := 0; len(names) < n; k++ {
		if k >= probeLimit {
			return names, false
		}
		name := prefix + strconv.Itoa(k)
		if p.ShardFor(keyFor(name)) == shard {
			names = append(names, name)
		}
	}
	return names, true
}

// KeyedName is KeyedNames for a single name.
func KeyedName(p Policy, shard int, prefix string, keyFor func(string) string) (string, bool) {
	names, ok := KeyedNames(p, shard, prefix, keyFor, 1)
	if !ok {
		return "", false
	}
	return names[0], true
}

// --- shard-to-node binding ---------------------------------------------------

// Map binds a Policy to the database servers owning each shard: nodes[s]
// serves shard s. It is immutable and safe for concurrent use.
type Map struct {
	policy Policy
	nodes  []id.NodeID
}

// NewMap binds policy to nodes; len(nodes) must equal policy.Shards().
func NewMap(policy Policy, nodes []id.NodeID) (*Map, error) {
	if policy == nil {
		return nil, fmt.Errorf("placement: nil policy")
	}
	if len(nodes) != policy.Shards() {
		return nil, fmt.Errorf("placement: policy splits %d shards over %d nodes",
			policy.Shards(), len(nodes))
	}
	seen := make(map[id.NodeID]bool, len(nodes))
	for _, n := range nodes {
		if n.IsZero() {
			return nil, fmt.Errorf("placement: zero node id")
		}
		if seen[n] {
			return nil, fmt.Errorf("placement: node %s owns two shards", n)
		}
		seen[n] = true
	}
	return &Map{policy: policy, nodes: append([]id.NodeID(nil), nodes...)}, nil
}

// Policy returns the partitioner.
func (m *Map) Policy() Policy { return m.policy }

// Shards returns the number of shards.
func (m *Map) Shards() int { return len(m.nodes) }

// ShardFor returns the home shard of key.
func (m *Map) ShardFor(key string) int { return m.policy.ShardFor(key) }

// NodeFor returns the database server owning shard s.
func (m *Map) NodeFor(s int) id.NodeID { return m.nodes[s] }

// Home returns the database server owning key's home shard.
func (m *Map) Home(key string) id.NodeID { return m.nodes[m.policy.ShardFor(key)] }

// Nodes returns the shard-ordered database servers.
func (m *Map) Nodes() []id.NodeID { return append([]id.NodeID(nil), m.nodes...) }

// String renders the map for logs, e.g. "hash over 4 shards".
func (m *Map) String() string {
	return fmt.Sprintf("%s over %d shards", m.policy, len(m.nodes))
}

// --- epoch-stamped replica-group view ----------------------------------------

// View is an application server's mutable, epoch-stamped picture of the data
// tier's replica groups. The immutable Map keeps routing keys to each shard's
// primary-of-record (the node that owned the shard at boot, and the identity
// under which the shard appears in participant dlists); the View tracks which
// group member currently serves that shard. Epochs start at 1 (the boot
// primary) and only strictly higher epochs advance a shard — a deposed
// primary's stale claim can never roll the view back. Safe for concurrent
// use.
//
// A deployment with ReplicaFactor 1 runs with no View at all (nil), which is
// the paper-exact single-server behaviour.
type View struct {
	mu      sync.Mutex
	shards  []viewShard
	ofNode  map[id.NodeID]int // group member -> shard ordinal
	changes uint64
}

type viewShard struct {
	members []id.NodeID // replica group, promotion order; members[0] is the boot primary
	primary id.NodeID
	epoch   uint64
}

// NewView builds a view over the given replica groups: groups[s] lists shard
// s's members in promotion order, groups[s][0] being the boot primary (the
// node Map routes the shard to). Every group must be non-empty and no node
// may appear in two groups.
func NewView(groups [][]id.NodeID) (*View, error) {
	v := &View{ofNode: make(map[id.NodeID]int)}
	for s, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("placement: shard %d has an empty replica group", s)
		}
		for _, n := range g {
			if n.IsZero() {
				return nil, fmt.Errorf("placement: zero node id in shard %d's group", s)
			}
			if prev, dup := v.ofNode[n]; dup {
				return nil, fmt.Errorf("placement: node %s is in the groups of shards %d and %d", n, prev, s)
			}
			v.ofNode[n] = s
		}
		v.shards = append(v.shards, viewShard{
			members: append([]id.NodeID(nil), g...),
			primary: g[0],
			epoch:   1,
		})
	}
	return v, nil
}

// Shards returns the number of replica groups.
func (v *View) Shards() int { return len(v.shards) }

// ShardOf returns the shard whose replica group contains node.
func (v *View) ShardOf(node id.NodeID) (int, bool) {
	s, ok := v.ofNode[node]
	return s, ok
}

// Members returns shard s's replica group in promotion order.
func (v *View) Members(s int) []id.NodeID {
	return append([]id.NodeID(nil), v.shards[s].members...)
}

// Primary returns the current primary and epoch of shard s.
func (v *View) Primary(s int) (id.NodeID, uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.shards[s].primary, v.shards[s].epoch
}

// Current translates a group member to the current primary of its shard: a
// request addressed to the boot primary (or any other member) is served by
// whoever holds the shard now. Nodes outside every group map to themselves.
func (v *View) Current(node id.NodeID) id.NodeID {
	s, ok := v.ofNode[node]
	if !ok {
		return node
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.shards[s].primary
}

// IsCurrent reports whether node is the current primary of its shard. Nodes
// outside every group — not data-tier replicas at all — report true, so the
// check never rejects traffic the view knows nothing about.
func (v *View) IsCurrent(node id.NodeID) bool {
	s, ok := v.ofNode[node]
	if !ok {
		return true
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.shards[s].primary == node
}

// Advance installs primary as shard s's owner under epoch. Strictly higher
// epochs always win; an announcement at the CURRENT epoch wins only when it
// names a lower node id than the installed primary — concurrent false
// suspicions can promote two backups at the same epoch, and the lower id
// (the group's rank order) is the deterministic tie winner every replica
// converges on. The return reports whether the view moved. The primary must
// be a member of the shard's group (a malformed announcement is rejected,
// not installed).
func (v *View) Advance(s int, epoch uint64, primary id.NodeID) bool {
	if s < 0 || s >= len(v.shards) {
		return false
	}
	if got, ok := v.ofNode[primary]; !ok || got != s {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	sh := &v.shards[s]
	if epoch < sh.epoch || (epoch == sh.epoch && primary.Index >= sh.primary.Index) {
		return false
	}
	sh.epoch = epoch
	sh.primary = primary
	v.changes++
	return true
}

// Changes counts accepted Advance calls — the number of primary hand-overs
// this view has observed (tests and benches assert on it).
func (v *View) Changes() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.changes
}

// String renders the view's current primaries, e.g. "0:db-4@e2 1:db-2@e1".
func (v *View) String() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var b strings.Builder
	for s, sh := range v.shards {
		if s > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%s@e%d", s, sh.primary, sh.epoch)
	}
	return b.String()
}
