// Package placement is the key-routing layer of the sharded database tier:
// it maps business-data keys to shards and shards to the database servers
// that own them.
//
// The paper presents its protocol against a per-request dlist of database
// servers but measures a deployment where that list is every server. With
// placement, the dlist becomes the set of shards a transaction actually
// touched: the application server routes each data operation to the key's
// home shard, records the touched set, and runs prepare/terminate against
// only those servers. Adding database servers then adds commit capacity
// instead of commit latency.
//
// Two partitioners are provided: Hash (FNV-1a modulo the shard count — the
// default, load-spreading choice) and Range (ordered split points — the
// choice when key locality matters, e.g. range scans per shard). Both are
// pure functions of the key, so every application server computes the same
// home shard with no coordination and no routing state to recover after a
// crash.
package placement

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"etx/internal/id"
)

// Policy maps keys to shard ordinals in [0, Shards()).
type Policy interface {
	// Shards returns the number of shards the policy splits keys over.
	Shards() int
	// ShardFor returns the home shard of key.
	ShardFor(key string) int
	// String renders the policy in the spec form Parse accepts.
	String() string
}

// --- hash partitioner --------------------------------------------------------

type hashPolicy struct {
	n int
}

// Hash returns the FNV-1a hash partitioner over n shards (n >= 1).
func Hash(n int) Policy {
	if n < 1 {
		n = 1
	}
	return hashPolicy{n: n}
}

// Shards implements Policy.
func (p hashPolicy) Shards() int { return p.n }

// ShardFor implements Policy.
func (p hashPolicy) ShardFor(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.n))
}

// String implements Policy.
func (p hashPolicy) String() string { return "hash" }

// --- range partitioner -------------------------------------------------------

type rangePolicy struct {
	bounds []string // sorted lower bounds of shards 1..n-1
}

// Range returns the ordered partitioner with the given split points: keys
// below bounds[0] live on shard 0, keys in [bounds[i], bounds[i+1]) on shard
// i+1, keys at or above the last bound on the last shard. It splits over
// len(bounds)+1 shards.
func Range(bounds ...string) Policy {
	bs := append([]string(nil), bounds...)
	sort.Strings(bs)
	return rangePolicy{bounds: bs}
}

// Shards implements Policy.
func (p rangePolicy) Shards() int { return len(p.bounds) + 1 }

// ShardFor implements Policy.
func (p rangePolicy) ShardFor(key string) int {
	// The home shard is the number of split points at or below the key.
	return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > key })
}

// String implements Policy.
func (p rangePolicy) String() string { return "range:" + strings.Join(p.bounds, ",") }

// --- spec parsing ------------------------------------------------------------

// Parse builds a policy from its flag form: "hash" (the default when spec is
// empty) or "range:b1,b2,...". shards is the deployment's shard count; a
// range spec must carry exactly shards-1 split points.
func Parse(spec string, shards int) (Policy, error) {
	if shards < 1 {
		return nil, fmt.Errorf("placement: need at least 1 shard, got %d", shards)
	}
	switch {
	case spec == "" || spec == "hash":
		return Hash(shards), nil
	case strings.HasPrefix(spec, "range:"):
		bounds := strings.Split(strings.TrimPrefix(spec, "range:"), ",")
		if len(bounds) != shards-1 {
			return nil, fmt.Errorf("placement: range spec has %d split points, want %d for %d shards",
				len(bounds), shards-1, shards)
		}
		return Range(bounds...), nil
	default:
		return nil, fmt.Errorf("placement: unknown policy spec %q (want \"hash\" or \"range:b1,b2,...\")", spec)
	}
}

// --- shard-homed name derivation ---------------------------------------------

// probeLimit bounds the name search: under a pathological policy (e.g. a
// range split that no key with the given prefix can cross) the wanted shard
// may be unreachable, and the caller needs a failure, not a spin.
const probeLimit = 1 << 20

// KeyedNames returns the first n names of the form prefix+k (k = 0, 1, ...)
// whose derived key — keyFor applied to the name — is homed on shard. It is
// the one shared implementation of "find me accounts that live on shard s"
// used by workload generators, benches and tests; ok is false when the probe
// limit is exhausted first (the shard is unreachable with this prefix under
// this policy).
func KeyedNames(p Policy, shard int, prefix string, keyFor func(string) string, n int) (names []string, ok bool) {
	for k := 0; len(names) < n; k++ {
		if k >= probeLimit {
			return names, false
		}
		name := prefix + strconv.Itoa(k)
		if p.ShardFor(keyFor(name)) == shard {
			names = append(names, name)
		}
	}
	return names, true
}

// KeyedName is KeyedNames for a single name.
func KeyedName(p Policy, shard int, prefix string, keyFor func(string) string) (string, bool) {
	names, ok := KeyedNames(p, shard, prefix, keyFor, 1)
	if !ok {
		return "", false
	}
	return names[0], true
}

// --- shard-to-node binding ---------------------------------------------------

// Map binds a Policy to the database servers owning each shard: nodes[s]
// serves shard s. It is immutable and safe for concurrent use.
type Map struct {
	policy Policy
	nodes  []id.NodeID
}

// NewMap binds policy to nodes; len(nodes) must equal policy.Shards().
func NewMap(policy Policy, nodes []id.NodeID) (*Map, error) {
	if policy == nil {
		return nil, fmt.Errorf("placement: nil policy")
	}
	if len(nodes) != policy.Shards() {
		return nil, fmt.Errorf("placement: policy splits %d shards over %d nodes",
			policy.Shards(), len(nodes))
	}
	seen := make(map[id.NodeID]bool, len(nodes))
	for _, n := range nodes {
		if n.IsZero() {
			return nil, fmt.Errorf("placement: zero node id")
		}
		if seen[n] {
			return nil, fmt.Errorf("placement: node %s owns two shards", n)
		}
		seen[n] = true
	}
	return &Map{policy: policy, nodes: append([]id.NodeID(nil), nodes...)}, nil
}

// Policy returns the partitioner.
func (m *Map) Policy() Policy { return m.policy }

// Shards returns the number of shards.
func (m *Map) Shards() int { return len(m.nodes) }

// ShardFor returns the home shard of key.
func (m *Map) ShardFor(key string) int { return m.policy.ShardFor(key) }

// NodeFor returns the database server owning shard s.
func (m *Map) NodeFor(s int) id.NodeID { return m.nodes[s] }

// Home returns the database server owning key's home shard.
func (m *Map) Home(key string) id.NodeID { return m.nodes[m.policy.ShardFor(key)] }

// Nodes returns the shard-ordered database servers.
func (m *Map) Nodes() []id.NodeID { return append([]id.NodeID(nil), m.nodes...) }

// String renders the map for logs, e.g. "hash over 4 shards".
func (m *Map) String() string {
	return fmt.Sprintf("%s over %d shards", m.policy, len(m.nodes))
}
