package placement

import (
	"fmt"
	"testing"

	"etx/internal/id"
)

func TestHashCoversAllShardsDeterministically(t *testing.T) {
	p := Hash(8)
	if p.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", p.Shards())
	}
	hit := make(map[int]int)
	for i := 0; i < 1024; i++ {
		key := fmt.Sprintf("acct/u%04d", i)
		s := p.ShardFor(key)
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range for %q", s, key)
		}
		if s != p.ShardFor(key) {
			t.Fatalf("ShardFor(%q) not deterministic", key)
		}
		hit[s]++
	}
	for s := 0; s < 8; s++ {
		if hit[s] == 0 {
			t.Errorf("shard %d never hit over 1024 keys", s)
		}
	}
}

func TestRangeBoundaries(t *testing.T) {
	p := Range("g", "n", "t")
	if p.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", p.Shards())
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"fzz", 0},
		{"g", 1}, {"golf", 1}, {"mzz", 1},
		{"n", 2}, {"s", 2},
		{"t", 3}, {"zebra", 3},
	}
	for _, c := range cases {
		if got := p.ShardFor(c.key); got != c.want {
			t.Errorf("ShardFor(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestParse(t *testing.T) {
	if _, err := Parse("", 4); err != nil {
		t.Errorf("empty spec: %v", err)
	}
	if p, err := Parse("hash", 4); err != nil || p.Shards() != 4 {
		t.Errorf("hash spec: %v (%v)", p, err)
	}
	if p, err := Parse("range:g,n,t", 4); err != nil || p.Shards() != 4 {
		t.Errorf("range spec: %v (%v)", p, err)
	}
	if _, err := Parse("range:g", 4); err == nil {
		t.Error("range with wrong split-point count must fail")
	}
	if _, err := Parse("zoned", 4); err == nil {
		t.Error("unknown policy must fail")
	}
	if _, err := Parse("hash", 0); err == nil {
		t.Error("zero shards must fail")
	}
}

func TestKeyedNames(t *testing.T) {
	keyFor := func(name string) string { return "acct/" + name }
	p := Hash(4)
	for s := 0; s < 4; s++ {
		names, ok := KeyedNames(p, s, "u", keyFor, 3)
		if !ok || len(names) != 3 {
			t.Fatalf("shard %d: names=%v ok=%v", s, names, ok)
		}
		for _, n := range names {
			if p.ShardFor(keyFor(n)) != s {
				t.Errorf("name %q homed on %d, want %d", n, p.ShardFor(keyFor(n)), s)
			}
		}
	}
	// An unreachable shard must fail instead of probing forever: every
	// "acct/..." key sorts below "zzz", so shard 1 has no such keys.
	if name, ok := KeyedName(Range("zzz"), 1, "u", keyFor); ok {
		t.Errorf("unreachable shard produced %q", name)
	}
}

func TestMapBindsShardsToNodes(t *testing.T) {
	nodes := []id.NodeID{id.DBServer(1), id.DBServer(2), id.DBServer(3), id.DBServer(4)}
	m, err := NewMap(Hash(4), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("k%d", i)
		if got, want := m.Home(key), nodes[m.ShardFor(key)]; got != want {
			t.Fatalf("Home(%q) = %s, want %s", key, got, want)
		}
	}
	if _, err := NewMap(Hash(3), nodes); err == nil {
		t.Error("shard/node count mismatch must fail")
	}
	if _, err := NewMap(Hash(2), []id.NodeID{id.DBServer(1), id.DBServer(1)}); err == nil {
		t.Error("duplicate node must fail")
	}
}
