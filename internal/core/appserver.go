package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/queue"
	"etx/internal/transport"
	"etx/internal/woregister"
)

// Logic is the business logic the paper abstracts as compute(): it performs
// transient data manipulations against the database tier through tx and
// returns a result. It must not commit anything — commitment is the
// protocol's job — and it may be invoked several times for the same logical
// request (once per try), so its effects must live entirely inside the
// transaction branch. A returned error aborts the try with the paper's
// (nil, abort) decision.
type Logic interface {
	Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error)
}

// LogicFunc adapts a function to the Logic interface.
type LogicFunc func(ctx context.Context, tx *Tx, req []byte) ([]byte, error)

// Compute implements Logic.
func (f LogicFunc) Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
	return f(ctx, tx, req)
}

// AppServerConfig parameterizes an application-server process.
type AppServerConfig struct {
	// Self identifies the server.
	Self id.NodeID
	// AppServers is the full middle tier, identically ordered everywhere;
	// AppServers[0] is the default primary and round-1 consensus coordinator.
	AppServers []id.NodeID
	// DataServers is the database tier: every database server. The paper's
	// per-request dlist is no longer this whole list — it is the set of
	// shards a try touched, routed through Placement.
	DataServers []id.NodeID
	// Placement maps keys to their home database server. When nil, a hash
	// placement over DataServers is installed, so the keyed Tx API works on
	// any deployment. Every application server must be configured with the
	// same placement.
	Placement *placement.Map
	// View, when non-nil, is the epoch-stamped replica view of the data tier:
	// it translates a boot-time shard identity (what Placement and dlists
	// record) into the shard's current primary, and it carries the epoch that
	// fences a deposed primary out of the commit path. nil — the default and
	// the ReplicaFactor=1 deployment — keeps paper-exact routing: every
	// message goes to the placement-routed node itself, with no translation,
	// no epoch guard and no retries. Every application server must share one
	// View instance per process group (or keep them converged via NewPrimary
	// broadcasts).
	View *placement.View
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Logic is the business logic run by the compute thread.
	Logic Logic
	// Detector overrides the built-in heartbeat detector (tests inject
	// scripted suspicions). When nil a heartbeat ◊P detector runs.
	Detector fd.Detector
	// HeartbeatInterval and SuspectTimeout tune the built-in detector.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// ConsensusPoll is the safety-net interval at which blocked consensus
	// phases re-check the failure detector. 0 lets the consensus layer pick:
	// with a notifying detector (the built-in heartbeat) blocked phases wake
	// on message arrival and suspicion transitions, and the poll is a 25ms
	// backstop rather than a busy loop.
	ConsensusPoll time.Duration
	// ResendInterval is the protocol-level retransmission period of
	// Prepare/Decide rounds. Defaults to 100ms.
	ResendInterval time.Duration
	// CleanInterval is the cleaning thread's scan period. Defaults to 25ms.
	CleanInterval time.Duration
	// ComputeTimeout bounds one compute() invocation. Defaults to 5s.
	ComputeTimeout time.Duration
	// Workers is the number of compute threads. The paper runs exactly one;
	// values >1 are a documented generalization. Defaults to 1.
	Workers int
	// Terminators is the size of the background termination pool: decided
	// tries are driven to their participants by these goroutines instead of
	// the compute workers, so a database that crashed and never recovers
	// stalls at most this many terminations — never a compute thread.
	// Every result delivery rides a terminator, so the pool must keep up
	// with the compute tier: defaults to max(4, Workers).
	Terminators int
	// CommitCacheSize caps the committed-decision cache and the cleaning
	// thread's dedup cache (oldest entries evicted first). Defaults to 4096.
	CommitCacheSize int
	// BatchWindow enables outbound aggregation of the commit path's database
	// fan-out: Prepare and Decide sends to the same participant buffer for up
	// to this window (or until MaxBatch of them are pending) and leave as one
	// Batch envelope, so the participant can serve them as a group-commit
	// cohort sharing one forced log write. 0 (the default) sends every
	// message directly — the pre-batching behaviour.
	BatchWindow time.Duration
	// MaxBatch caps one outbound Batch envelope. Defaults to 64 when
	// BatchWindow is set.
	MaxBatch int
	// CohortWindow switches the wo-register layer to cohort consensus: the
	// server's concurrent register writes (regA claims, regD decisions)
	// share batch-consensus slots instead of running one consensus instance
	// each, cutting consensus messages and instances per commit by the
	// cohort size. The window is the extra time a fresh cohort stays open
	// for followers (under load cohorts fill while the previous slot is in
	// flight). 0 — the default — keeps the paper's one-instance-per-write
	// discipline. Every application server must use the same setting.
	CohortWindow time.Duration
	// MaxCohort caps the register ops proposed in one consensus slot.
	// Defaults to 64 when CohortWindow is set.
	MaxCohort int
	// AdaptiveWindows makes the batching caps self-tuning: the server
	// samples its in-flight request depth (the same arrival signal the
	// stable store's group-commit combiner observes) and collapses the
	// outbound-batch and cohort caps to one at depth 1 — no waiting peer
	// exists, so a window would be pure added latency — while widening them
	// toward MaxBatch/MaxCohort under deep pipelining. When set,
	// BatchWindow defaults to 500µs and CohortWindow to 100µs if unset.
	// Adaptation tunes timing only; protocol semantics are unchanged (see
	// the package comment).
	AdaptiveWindows bool
	// RetainSlots bounds the cohort-consensus batch log: each server
	// piggybacks its applied slot watermark on consensus messages and
	// heartbeats, and decided slots below the cluster-wide minimum minus
	// this retention tail are truncated (laggards past the tail catch up
	// via checkpoint state transfer instead of decision replay). 0 — the
	// default — retains every decided slot forever, the pre-GC behaviour.
	// Only meaningful with CohortWindow set; every application server must
	// use the same setting.
	RetainSlots int
	// Hooks carries optional instrumentation and crash injection.
	Hooks *Hooks
}

func (c *AppServerConfig) setDefaults() {
	if c.ResendInterval <= 0 {
		c.ResendInterval = 100 * time.Millisecond
	}
	if c.CleanInterval <= 0 {
		c.CleanInterval = 25 * time.Millisecond
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Terminators <= 0 {
		c.Terminators = 4
		if c.Workers > c.Terminators {
			c.Terminators = c.Workers
		}
	}
	if c.CommitCacheSize <= 0 {
		c.CommitCacheSize = 4096
	}
	if c.AdaptiveWindows {
		if c.BatchWindow <= 0 {
			c.BatchWindow = 500 * time.Microsecond
		}
		if c.CohortWindow <= 0 {
			c.CohortWindow = 100 * time.Microsecond
		}
	}
	if c.BatchWindow > 0 && c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.CohortWindow > 0 && c.MaxCohort <= 0 {
		c.MaxCohort = 64
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 6 * c.HeartbeatInterval
	}
}

// AppServer is the paper's application-server process (Figures 4-6). It is
// stateless in the paper's sense: everything it holds is soft state
// reconstructible from the wo-registers and the databases; no disk is used.
type AppServer struct {
	cfg   AppServerConfig
	place *placement.Map
	view  *placement.View // nil on unreplicated deployments

	cons *consensus.Node
	regs *woregister.Registers
	hb   *fd.Heartbeat // nil when an external detector is injected
	det  fd.Detector

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	computeQ *queue.Queue[msg.Request]

	pendingMu sync.Mutex
	pending   map[id.ResultID]bool

	// committed caches decided requests for client retransmissions. It is
	// capped (FIFO eviction via commitOrder) and pruned by Retire.
	commitMu    sync.Mutex
	committed   map[id.RequestKey]cachedDecision
	commitOrder []id.RequestKey

	// cleaned is the cleaning thread's dedup set, capped like committed.
	cleanMu    sync.Mutex
	cleaned    map[id.ResultID]bool
	cleanOrder []id.ResultID

	// termQ feeds the background terminator pool; terming dedups in-flight
	// terminations per try.
	termQ   *queue.Queue[termJob]
	termMu  sync.Mutex
	terming map[id.ResultID]bool

	// agg, when non-nil, batches outbound Prepare/Decide fan-out per
	// participant (AppServerConfig.BatchWindow).
	agg *outAgg

	// depthEWMA smooths the sampled in-flight depth for the adaptive
	// windows (nil unless AdaptiveWindows).
	depthEWMA *metrics.EWMA

	calls  callRouter
	execID atomic.Uint64

	// staleRejects counts data-tier messages dropped by the epoch guard: a
	// vote or ack from a node the view says is no longer its shard's primary.
	// Non-zero after a promotion proves the fence actually fired.
	staleRejects metrics.Counter
	// execRetries counts Exec/GetFast calls re-routed mid-wait because the
	// view moved their shard to a new primary.
	execRetries metrics.Counter
}

// termJob is one decided try awaiting termination at its participants.
type termJob struct {
	rid id.ResultID
	dec msg.Decision
}

type cachedDecision struct {
	try uint64
	dec msg.Decision
}

// NewAppServer creates an application-server process. Call Start to run it.
func NewAppServer(cfg AppServerConfig) (*AppServer, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("core: AppServer needs an Endpoint")
	}
	if cfg.Logic == nil {
		return nil, errors.New("core: AppServer needs Logic")
	}
	if len(cfg.AppServers) == 0 || len(cfg.DataServers) == 0 {
		return nil, errors.New("core: AppServer needs non-empty server lists")
	}
	cfg.setDefaults()

	place := cfg.Placement
	if place == nil {
		var err error
		place, err = placement.NewMap(placement.Hash(len(cfg.DataServers)), cfg.DataServers)
		if err != nil {
			return nil, fmt.Errorf("core: default placement: %w", err)
		}
	} else {
		inTier := make(map[id.NodeID]bool, len(cfg.DataServers))
		for _, db := range cfg.DataServers {
			inTier[db] = true
		}
		for _, db := range place.Nodes() {
			if !inTier[db] {
				return nil, fmt.Errorf("core: placement routes to %s, which is not in DataServers", db)
			}
		}
	}

	s := &AppServer{
		cfg:       cfg,
		place:     place,
		view:      cfg.View,
		computeQ:  queue.New[msg.Request](),
		pending:   make(map[id.ResultID]bool),
		committed: make(map[id.RequestKey]cachedDecision),
		cleaned:   make(map[id.ResultID]bool),
		termQ:     queue.New[termJob](),
		terming:   make(map[id.ResultID]bool),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.calls.init()
	var depth func() int
	if cfg.AdaptiveWindows {
		s.depthEWMA = metrics.NewEWMA(0.125)
		depth = s.inflightDepth
	}
	if cfg.BatchWindow > 0 {
		s.agg = newOutAgg(cfg.Endpoint, cfg.BatchWindow, cfg.MaxBatch)
		s.agg.depth = depth
	}

	if cfg.Detector != nil {
		s.det = cfg.Detector
	} else {
		s.hb = fd.NewHeartbeat(fd.Config{
			Self:     cfg.Self,
			Peers:    cfg.AppServers,
			Interval: cfg.HeartbeatInterval,
			Timeout:  cfg.SuspectTimeout,
			Send: func(to id.NodeID, p msg.Payload) error {
				return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
			},
			// The consensus node is created a few lines below; heartbeats
			// only start flowing once Start runs, well after it exists.
			Watermark: func() uint64 {
				if s.cons == nil {
					return 0
				}
				return s.cons.Applied()
			},
		})
		s.det = s.hb
	}

	cons, err := consensus.New(consensus.Config{
		Self:        cfg.Self,
		Peers:       cfg.AppServers,
		Detector:    s.det,
		Poll:        cfg.ConsensusPoll,
		RetainSlots: cfg.RetainSlots,
		Send: func(to id.NodeID, p msg.Payload) error {
			return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: appserver consensus: %w", err)
	}
	s.cons = cons
	if cfg.CohortWindow > 0 {
		s.regs, err = woregister.NewBatched(cons, woregister.Options{
			CohortWindow: cfg.CohortWindow,
			MaxCohort:    cfg.MaxCohort,
			Depth:        depth,
			Self:         cfg.Self,
			Peers:        cfg.AppServers,
			Detector:     s.det,
			Send: func(to id.NodeID, p msg.Payload) error {
				return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
			},
		})
		if err != nil {
			cons.Stop()
			return nil, fmt.Errorf("core: appserver registers: %w", err)
		}
	} else {
		s.regs = woregister.New(cons)
	}
	return s, nil
}

// Registers exposes the server's wo-register view (tests, oracles).
func (s *AppServer) Registers() *woregister.Registers { return s.regs }

// Placement exposes the key-routing map of the deployment.
func (s *AppServer) Placement() *placement.Map { return s.place }

// View exposes the replica view of the data tier (nil when unreplicated).
func (s *AppServer) View() *placement.View { return s.view }

// AppServerStats snapshots the server's replication-path counters.
type AppServerStats struct {
	// StaleRejects counts data-tier messages dropped by the epoch guard
	// because the sender is no longer its shard's primary.
	StaleRejects uint64
	// ExecRetries counts Exec/GetFast calls re-routed to a newly promoted
	// primary while waiting for a reply.
	ExecRetries uint64
}

// Stats snapshots the server's replication-path counters.
func (s *AppServer) Stats() AppServerStats {
	return AppServerStats{
		StaleRejects: s.staleRejects.Load(),
		ExecRetries:  s.execRetries.Load(),
	}
}

// Retire drops all local state of a finished logical request: its cached
// committed decision, the cleaning thread's dedup entries, and the registers
// of every try up to maxTry — including undecided register instances (a try
// whose proposer crashed between propose and decide never decides, and its
// instance would otherwise sit in the consensus maps forever). The paper
// leaves this garbage collection open (Section 5); it is only safe once the
// client is known to have delivered the result and will not retransmit — the
// ablation benchmark quantifies the memory it reclaims.
func (s *AppServer) Retire(req id.RequestKey, maxTry uint64) {
	s.commitMu.Lock()
	delete(s.committed, req)
	s.commitMu.Unlock()
	for try := uint64(1); try <= maxTry; try++ {
		rid := id.ResultID{Client: req.Client, Seq: req.Seq, Try: try}
		s.cleanMu.Lock()
		delete(s.cleaned, rid)
		s.cleanMu.Unlock()
		s.regs.Retire(rid)
	}
}

// Detector exposes the failure detector in use.
func (s *AppServer) Detector() fd.Detector { return s.det }

// ConsensusStats exposes the consensus node's protocol counters (instances,
// rounds, messages, fast-path hits, batch-log watermarks) for benchmarks and
// diagnostics.
func (s *AppServer) ConsensusStats() consensus.Stats { return s.cons.Stats() }

// InstanceState exposes the live round and coordinator of an undecided
// consensus instance (tests assert retirement leaves no instance behind;
// DebugTry renders it for humans).
func (s *AppServer) InstanceState(key msg.RegKey) (round uint32, coord id.NodeID, ok bool) {
	return s.cons.InstanceState(key)
}

// Start launches the demultiplexer, the compute thread(s), the terminator
// pool and the cleaning thread — the cobegin of Figure 4.
func (s *AppServer) Start() {
	if s.hb != nil {
		s.hb.Start(s.ctx)
	}
	s.wg.Add(1)
	go s.demux()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.computeThread()
	}
	for i := 0; i < s.cfg.Terminators; i++ {
		s.wg.Add(1)
		go s.terminatorThread()
	}
	s.wg.Add(1)
	go s.cleanThread()
}

// Stop terminates every goroutine of the server.
func (s *AppServer) Stop() {
	s.cancel()
	if s.agg != nil {
		s.agg.stop()
	}
	s.computeQ.Close()
	s.termQ.Close()
	s.regs.Stop()
	s.cons.Stop()
	s.wg.Wait()
	if s.hb != nil {
		s.hb.Wait()
	}
}

// demux routes incoming messages to the consensus node, the failure
// detector, the compute queue and the pending-call router.
func (s *AppServer) demux() {
	defer s.wg.Done()
	for {
		select {
		case env, ok := <-s.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			if b, ok := env.Payload.(msg.Batch); ok {
				// A database server's batched votes/acks: route each member
				// as if it had arrived on its own.
				for _, p := range b.Msgs {
					s.handlePayload(env.From, p)
				}
				continue
			}
			s.handlePayload(env.From, env.Payload)
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *AppServer) handlePayload(from id.NodeID, payload msg.Payload) {
	switch m := payload.(type) {
	case msg.Heartbeat:
		if s.hb != nil {
			s.hb.Observe(from)
		}
		// The applied batch-log watermark rides the heartbeat; hand it to
		// the consensus node so truncation advances even between commits.
		s.cons.ObserveWatermark(from, m.WM)
	case msg.Estimate, msg.Propose, msg.CAck, msg.CNack, msg.CDecision, msg.Checkpoint:
		s.cons.Handle(from, m)
	case msg.Request:
		s.enqueue(m)
	case msg.VoteMsg:
		if s.staleSender(from) {
			return
		}
		s.calls.routeVote(from, m)
	case msg.AckDecide:
		if s.staleSender(from) {
			return
		}
		s.calls.routeAck(from, m)
	case msg.Ready:
		if s.staleSender(from) {
			return
		}
		s.calls.routeReady(from, m.Inc)
	case msg.ExecReply:
		if s.staleSender(from) {
			return
		}
		s.calls.routeExecReply(m)
	case msg.NewPrimary:
		s.observeNewPrimary(from, m)
	case msg.RegOps:
		// A peer's forwarded write cohort: ride this server's sequencer.
		s.regs.EnqueueRemote(from, m.Ops)
	case msg.Result, msg.Exec, msg.Prepare, msg.Decide, msg.Commit1P, msg.RData,
		msg.RAck, msg.Batch, msg.PBStart, msg.PBStartAck, msg.PBOutcome, msg.PBOutcomeAck,
		msg.ReplRecord, msg.ReplAck:
		// Explicitly not ours: Result targets clients, the exec/commit-path
		// and transport-batch kinds target database servers or the reliable
		// channel below this demux, the PB* kinds belong to the
		// primary-backup baseline, and the Repl* kinds flow inside a shard's
		// replica group. Listing them keeps this switch exhaustive, so
		// routing a future kind is a conscious decision here.
	}
}

// staleSender is the epoch guard of the commit path: on a replicated
// deployment, a vote, ack, Ready or Exec reply from a data-tier node that the
// view no longer considers its shard's primary is dropped, and the sender is
// told who owns its shard now (epoch-stamped, so the deposed node fences
// itself). This closes the split-brain window: a primary that was falsely
// suspected keeps executing until the NewPrimary correction reaches it, but
// nothing it says after its successor's epoch reached this server can commit.
func (s *AppServer) staleSender(from id.NodeID) bool {
	if s.view == nil {
		return false
	}
	sh, ok := s.view.ShardOf(from)
	if !ok || s.view.IsCurrent(from) {
		return false
	}
	s.staleRejects.Inc()
	cur, ep := s.view.Primary(sh)
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: from, Payload: msg.NewPrimary{
		Shard: uint64(sh), Epoch: ep, Primary: cur,
	}})
	return true
}

// observeNewPrimary advances the replica view on a promotion announcement.
// Announcements are idempotent and may arrive out of order; only a strictly
// higher epoch moves the view. A node claiming a shard it lost (its
// announcement carries an epoch at or below the view's) is corrected with the
// current ownership so it deposes itself.
func (s *AppServer) observeNewPrimary(from id.NodeID, m msg.NewPrimary) {
	if s.view == nil || int(m.Shard) < 0 || int(m.Shard) >= s.view.Shards() {
		return
	}
	if s.view.Advance(int(m.Shard), m.Epoch, m.Primary) {
		return
	}
	cur, ep := s.view.Primary(int(m.Shard))
	if from == m.Primary && cur != from {
		_ = s.cfg.Endpoint.Send(msg.Envelope{To: from, Payload: msg.NewPrimary{
			Shard: m.Shard, Epoch: ep, Primary: cur,
		}})
	}
}

// sendDB sends one commit-path message (Prepare/Decide) to a database
// server, through the outbound aggregator when batching is on. On a
// replicated deployment the boot-time shard identity recorded in dlists is
// translated to the shard's current primary at send time, so every
// protocol-level resend (prepare and terminate rounds tick through here)
// re-resolves routing for free after a promotion.
func (s *AppServer) sendDB(db id.NodeID, p msg.Payload) {
	if s.view != nil {
		db = s.view.Current(db)
	}
	if s.agg != nil {
		s.agg.send(db, p)
		return
	}
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: db, Payload: p})
}

// enqueue admits a request to the compute queue, deduplicating tries already
// queued or being executed (client retransmissions).
func (s *AppServer) enqueue(req msg.Request) {
	s.pendingMu.Lock()
	if s.pending[req.RID] {
		s.pendingMu.Unlock()
		return
	}
	s.pending[req.RID] = true
	s.pendingMu.Unlock()
	s.computeQ.Push(req)
}

func (s *AppServer) clearPending(rid id.ResultID) {
	s.pendingMu.Lock()
	delete(s.pending, rid)
	s.pendingMu.Unlock()
}

// inflightDepth samples the number of requests admitted and not yet
// terminated — the pipelining depth the adaptive windows key on. The
// instantaneous count is folded into an EWMA and the larger of the two is
// returned, so a momentary trough between bursts does not collapse the
// windows mid-load while a fresh burst widens them immediately.
func (s *AppServer) inflightDepth() int {
	s.pendingMu.Lock()
	n := len(s.pending)
	s.pendingMu.Unlock()
	s.depthEWMA.Observe(float64(n))
	if sm := int(s.depthEWMA.Value() + 0.5); sm > n {
		return sm
	}
	return n
}

// computeThread is the paper's computation thread (Figure 5): it serves
// queued requests one at a time.
func (s *AppServer) computeThread() {
	defer s.wg.Done()
	for {
		for {
			req, ok := s.computeQ.Pop()
			if !ok {
				break
			}
			s.handleRequest(req)
		}
		if s.computeQ.Closed() {
			return
		}
		select {
		case <-s.computeQ.Out():
		case <-s.ctx.Done():
			return
		}
	}
}

// handleRequest executes Figure 5 for one incoming [Request, request, j].
func (s *AppServer) handleRequest(req msg.Request) {
	rid := req.RID
	defer s.clearPending(rid)

	// Figure 5, lines 3-4: a committed decision for this request is simply
	// re-sent (the client retransmitted because the result got lost).
	s.commitMu.Lock()
	cached, haveCached := s.committed[rid.Request()]
	s.commitMu.Unlock()
	if haveCached && cached.try == rid.Try {
		s.sendResult(rid, cached.dec)
		return
	}

	// A try whose decision is already in regD (e.g. the cleaning thread
	// finished it) is re-terminated: decides are idempotent at the
	// databases and the client deduplicates results.
	if dec, ok := s.regs.ReadD(rid); ok {
		s.enqueueTerminate(rid, dec)
		return
	}

	// Figure 5, line 6: claim the try in regA.
	t0 := s.cfg.Hooks.now()
	winner, err := s.regs.WriteA(s.ctx, rid, s.cfg.Self)
	if err != nil {
		return // shutting down
	}
	s.cfg.Hooks.since(rid, SpanLogStart, t0)
	s.cfg.Hooks.crash(PointAfterRegA, rid)
	if winner != s.cfg.Self {
		// Figure 5, line 7: another server owns this try; it (or its
		// cleaner) will answer the client.
		return
	}

	// Figure 5, lines 8-9: compute, then run the voting phase.
	decision := msg.Decision{Outcome: msg.OutcomeAbort} // (nil, abort)
	cctx, cancel := context.WithTimeout(s.ctx, s.cfg.ComputeTimeout)
	tx := &Tx{s: s, rid: rid}
	t0 = s.cfg.Hooks.now()
	result, err := s.cfg.Logic.Compute(cctx, tx, req.Body)
	cancel()
	s.cfg.Hooks.since(rid, SpanSQL, t0)
	s.cfg.Hooks.crash(PointAfterCompute, rid)
	// The decision carries the try's dlist — the shards the logic touched —
	// whether it commits or aborts: termination (here, at a cleaner, or at a
	// retransmission handler on another server) must reach exactly those
	// branches, and nothing else.
	decision.Participants = tx.participants()
	if err == nil {
		decision.Result = result
		t0 = s.cfg.Hooks.now()
		decision.Outcome = s.prepare(rid, tx)
		s.cfg.Hooks.since(rid, SpanPrepare, t0)
	}
	s.cfg.Hooks.crash(PointAfterPrepare, rid)

	// Figure 5, line 10: the wo-register arbitrates with any cleaner.
	t0 = s.cfg.Hooks.now()
	final, err := s.regs.WriteD(s.ctx, rid, decision)
	if err != nil {
		return
	}
	s.cfg.Hooks.since(rid, SpanLogOutcome, t0)
	s.cfg.Hooks.crash(PointAfterRegD, rid)

	// Figure 5, line 11 — handed to the terminator pool so this worker is
	// free to serve the next request while the decision is driven to the
	// participants in the background.
	s.enqueueTerminate(rid, final)
}

// answersFor reports whether a reply from `from` answers for participant db:
// either it is db itself, or — on a replicated deployment — it is the current
// primary of db's replica group. A promoted primary's votes and acks are
// credited to the boot-time identity the dlist records; its votes still carry
// its own (higher) incarnation, so an in-flight try whose Execs ran on the
// old primary aborts on the incarnation check exactly as if the database had
// restarted.
func (s *AppServer) answersFor(from, db id.NodeID) bool {
	if from == db {
		return true
	}
	if s.view == nil {
		return false
	}
	shf, okf := s.view.ShardOf(from)
	shd, okd := s.view.ShardOf(db)
	return okf && okd && shf == shd && s.view.IsCurrent(from)
}

// creditFor translates a reply's sender to the participant slot it answers
// for (see answersFor), or reports that it answers for none of parts.
func (s *AppServer) creditFor(from id.NodeID, parts []id.NodeID) (id.NodeID, bool) {
	for _, db := range parts {
		if s.answersFor(from, db) {
			return db, true
		}
	}
	return from, false
}

// prepare implements Figure 4's prepare(): a voting round over the try's
// participants — the shards the business logic touched — not the whole
// database tier. Commit requires a yes vote from every participant, each
// from the same incarnation the business logic executed against; a Ready
// (recovery notification) in place of a vote means the server lost its
// branch, so the try aborts. A try that touched nothing has nothing to vote
// on; a try confined to one shard takes the single-exchange fast path.
func (s *AppServer) prepare(rid id.ResultID, tx *Tx) msg.Outcome {
	parts := tx.participants()
	switch len(parts) {
	case 0:
		return msg.OutcomeCommit
	case 1:
		return s.prepareOne(rid, tx, parts[0])
	}

	col := s.calls.addCollector(rid)
	defer s.calls.removeCollector(col)

	type answer struct {
		vote  msg.Vote
		inc   uint64
		ready bool
	}
	answers := make(map[id.NodeID]answer, len(parts))
	sendTo := func(only map[id.NodeID]answer) {
		for _, db := range parts {
			if _, done := only[db]; done {
				continue
			}
			s.sendDB(db, msg.Prepare{RID: rid})
		}
	}
	sendTo(nil)

	ticker := time.NewTicker(s.cfg.ResendInterval)
	defer ticker.Stop()
	for len(answers) < len(parts) {
		select {
		case ev := <-col.ch:
			// Ready notifications fan out from every database server;
			// only participants (or their current primaries) answer this
			// round.
			slot, ok := s.creditFor(ev.from, parts)
			if !ok {
				break
			}
			if _, done := answers[slot]; done {
				break
			}
			switch ev.kind {
			case evVote:
				answers[slot] = answer{vote: ev.vote, inc: ev.inc}
			case evReady:
				answers[slot] = answer{ready: true}
			}
		case <-ticker.C:
			sendTo(answers)
		case <-s.ctx.Done():
			return msg.OutcomeAbort
		}
	}
	for db, a := range answers {
		if a.ready || a.vote != msg.VoteYes {
			return msg.OutcomeAbort
		}
		want, ok := tx.incarnation(db)
		if !ok || a.inc != want {
			// Either no Exec against this participant ever completed (the
			// branch cannot be validated), or the server crashed between
			// compute() and prepare(): its branch (and unprepared work) is
			// gone and the vote is from a later incarnation's empty branch.
			// Committing would lose the writes, so the try aborts and will
			// be recomputed.
			return msg.OutcomeAbort
		}
	}
	return msg.OutcomeCommit
}

// prepareOne is the one-shard fast path of prepare(): a single-shard try
// skips the cross-shard vote collection entirely and runs one Prepare/Vote
// exchange with its home shard — two messages, independent of how many
// database servers the deployment has.
func (s *AppServer) prepareOne(rid id.ResultID, tx *Tx, db id.NodeID) msg.Outcome {
	want, ok := tx.incarnation(db)
	if !ok {
		// The branch was touched but no Exec completed; it cannot be
		// validated, so the try aborts (termination still reaches db).
		return msg.OutcomeAbort
	}
	col := s.calls.addCollector(rid)
	defer s.calls.removeCollector(col)

	send := func() {
		s.sendDB(db, msg.Prepare{RID: rid})
	}
	send()
	ticker := time.NewTicker(s.cfg.ResendInterval)
	defer ticker.Stop()
	for {
		select {
		case ev := <-col.ch:
			if !s.answersFor(ev.from, db) {
				break
			}
			switch ev.kind {
			case evVote:
				if ev.vote == msg.VoteYes && ev.inc == want {
					return msg.OutcomeCommit
				}
				return msg.OutcomeAbort
			case evReady:
				return msg.OutcomeAbort
			}
		case <-ticker.C:
			send()
		case <-s.ctx.Done():
			return msg.OutcomeAbort
		}
	}
}

// enqueueTerminate hands a decided try to the terminator pool, deduplicating
// tries whose termination is already queued or running.
func (s *AppServer) enqueueTerminate(rid id.ResultID, dec msg.Decision) {
	s.termMu.Lock()
	if s.terming[rid] {
		s.termMu.Unlock()
		return
	}
	s.terming[rid] = true
	s.termMu.Unlock()
	if !s.termQ.Push(termJob{rid: rid, dec: dec}) {
		s.termMu.Lock()
		delete(s.terming, rid)
		s.termMu.Unlock()
	}
}

// terminatorThread drains the termination queue. The pool is the bounded
// stand-in for the unbounded blocking the paper's Figure 4 tolerates: a
// database that crashed and never recovers stalls a terminator goroutine,
// not a compute worker.
func (s *AppServer) terminatorThread() {
	defer s.wg.Done()
	for {
		for {
			job, ok := s.termQ.Pop()
			if !ok {
				break
			}
			s.terminate(job.rid, job.dec)
			s.termMu.Lock()
			delete(s.terming, job.rid)
			s.termMu.Unlock()
		}
		if s.termQ.Closed() {
			return
		}
		select {
		case <-s.termQ.Out():
		case <-s.ctx.Done():
			return
		}
	}
}

// terminate implements Figure 4's terminate(): drive the outcome to the
// try's participants until all acknowledge (re-sending to servers that
// announce recovery with Ready), then report the decision to the client. A
// decision whose dlist is unknown — a cleaner's abort of a try whose
// executor crashed before recording what it touched — falls back to every
// database server, which is the pre-sharding behaviour and always safe.
func (s *AppServer) terminate(rid id.ResultID, dec msg.Decision) {
	t0 := s.cfg.Hooks.now()
	targets := dec.Participants
	if targets == nil {
		targets = s.cfg.DataServers
	}
	if len(targets) > 0 {
		col := s.calls.addCollector(rid)
		acked := make(map[id.NodeID]bool, len(targets))
		send := func(db id.NodeID) {
			s.sendDB(db, msg.Decide{RID: rid, O: dec.Outcome})
		}
		for _, db := range targets {
			send(db)
		}
		ticker := time.NewTicker(s.cfg.ResendInterval)
		for len(acked) < len(targets) {
			select {
			case ev := <-col.ch:
				slot, ok := s.creditFor(ev.from, targets)
				if !ok {
					break
				}
				switch ev.kind {
				case evAck:
					acked[slot] = true
				case evReady:
					if !acked[slot] {
						send(slot)
					}
				}
			case <-ticker.C:
				for _, db := range targets {
					if !acked[db] {
						send(db)
					}
				}
			case <-s.ctx.Done():
				ticker.Stop()
				s.calls.removeCollector(col)
				return
			}
		}
		ticker.Stop()
		s.calls.removeCollector(col)
	}
	s.cfg.Hooks.since(rid, SpanCommit, t0)

	if dec.Outcome == msg.OutcomeCommit {
		s.cacheCommit(rid, dec)
	}
	s.cfg.Hooks.crash(PointBeforeResult, rid)
	s.sendResult(rid, dec)
}

// fifoAdmit records a newly inserted key's position in a capped cache's
// insertion order and evicts through the callback until the order fits the
// cap again. It is the one implementation of the FIFO discipline both the
// committed-decision cache and the cleaning dedup set follow; eviction of a
// key Retire already pruned is a harmless no-op delete. The caller holds
// the cache's lock.
func fifoAdmit[K comparable](order []K, cap int, key K, evict func(K)) []K {
	order = append(order, key)
	for len(order) > cap {
		evict(order[0])
		order = order[1:]
	}
	return order
}

// cacheCommit records a committed decision for client retransmissions,
// evicting the oldest entries beyond the configured cap.
func (s *AppServer) cacheCommit(rid id.ResultID, dec msg.Decision) {
	key := rid.Request()
	s.commitMu.Lock()
	if _, ok := s.committed[key]; !ok {
		s.commitOrder = fifoAdmit(s.commitOrder, s.cfg.CommitCacheSize, key,
			func(old id.RequestKey) { delete(s.committed, old) })
	}
	s.committed[key] = cachedDecision{try: rid.Try, dec: dec}
	s.commitMu.Unlock()
}

func (s *AppServer) sendResult(rid id.ResultID, dec msg.Decision) {
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
}

// cleanThread is the paper's cleaning thread (Figure 6): for every suspected
// peer, abort-or-finish every try that peer owns in regA.
func (s *AppServer) cleanThread() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.CleanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.cleanSweep()
		case <-s.ctx.Done():
			return
		}
	}
}

// cleanSweep performs one pass of Figure 6's outer loop.
func (s *AppServer) cleanSweep() {
	for _, ai := range s.cfg.AppServers {
		if ai == s.cfg.Self || !s.det.Suspects(ai) {
			continue
		}
		tries := s.regs.KnownTries()
		sort.Slice(tries, func(i, j int) bool { return tries[i].Less(tries[j]) })
		for _, rid := range tries {
			if s.wasCleaned(rid) {
				continue
			}
			owner, ok := s.regs.ReadA(rid)
			if !ok || owner != ai {
				continue
			}
			// Figure 6, lines 7-8: try to abort; the write-once register
			// returns the executor's decision if it got there first, in
			// which case we finish its commit instead. The cleaner's own
			// abort carries no dlist (the crashed executor never recorded
			// one), so termination of a cleaner-won abort falls back to
			// every database server; an executor decision read back from
			// regD carries the participants it recorded.
			dec, err := s.regs.WriteD(s.ctx, rid, msg.Decision{Outcome: msg.OutcomeAbort})
			if err != nil {
				return // shutting down
			}
			s.enqueueTerminate(rid, dec)
			s.markCleaned(rid)
		}
	}
}

// wasCleaned reports whether the cleaning thread already handled rid.
func (s *AppServer) wasCleaned(rid id.ResultID) bool {
	s.cleanMu.Lock()
	defer s.cleanMu.Unlock()
	return s.cleaned[rid]
}

// markCleaned records rid in the cleaning dedup set, evicting the oldest
// entries beyond the configured cap.
func (s *AppServer) markCleaned(rid id.ResultID) {
	s.cleanMu.Lock()
	if !s.cleaned[rid] {
		s.cleanOrder = fifoAdmit(s.cleanOrder, s.cfg.CommitCacheSize, rid,
			func(old id.ResultID) { delete(s.cleaned, old) })
		s.cleaned[rid] = true
	}
	s.cleanMu.Unlock()
}

// DebugTry renders this server's view of one try for liveness diagnostics:
// register contents, queue membership and the failure-detector verdicts the
// cleaning thread acts on. It takes no locks beyond the caches' own.
func (s *AppServer) DebugTry(rid id.ResultID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s view of %s:", s.cfg.Self, rid)
	// Register contents, annotated with live consensus-instance state (round
	// and coordinator) when a write is still in flight — the evidence the
	// soak-hang diagnostics need to see where a stuck try is blocked.
	inflight := func(key msg.RegKey) string {
		if round, coord, ok := s.cons.InstanceState(key); ok {
			return fmt.Sprintf("(inflight round=%d coord=%s)", round, coord)
		}
		return ""
	}
	if owner, ok := s.regs.ReadA(rid); ok {
		fmt.Fprintf(&b, " regA=%s", owner)
	} else {
		fmt.Fprintf(&b, " regA=unset%s", inflight(msg.RegKey{Array: msg.RegA, RID: rid}))
	}
	if dec, ok := s.regs.ReadD(rid); ok {
		fmt.Fprintf(&b, " regD=%s(participants=%v)", dec.Outcome, dec.Participants)
	} else {
		fmt.Fprintf(&b, " regD=unset%s", inflight(msg.RegKey{Array: msg.RegD, RID: rid}))
	}
	s.pendingMu.Lock()
	pending := s.pending[rid]
	s.pendingMu.Unlock()
	s.termMu.Lock()
	terming := s.terming[rid]
	s.termMu.Unlock()
	s.commitMu.Lock()
	_, cached := s.committed[rid.Request()]
	s.commitMu.Unlock()
	fmt.Fprintf(&b, " pending=%v terminating=%v cached=%v cleaned=%v",
		pending, terming, cached, s.wasCleaned(rid))
	var suspected []id.NodeID
	for _, ai := range s.cfg.AppServers {
		if ai != s.cfg.Self && s.det.Suspects(ai) {
			suspected = append(suspected, ai)
		}
	}
	fmt.Fprintf(&b, " suspects=%v", suspected)
	fmt.Fprintf(&b, " consensus{%s}", s.cons.Stats())
	if ws, ok := wireStats(s.cfg.Endpoint); ok {
		fmt.Fprintf(&b, " wire{%s}", ws)
	}
	return b.String()
}

// wireStats extracts wire-pressure counters when the transport exposes them
// (real TCP deployments), unwrapping reliable-channel layers along the way.
// Interface assertions keep the protocol packages free of a dependency on
// any concrete transport.
func wireStats(ep transport.Endpoint) (string, bool) {
	type statser interface{ WireStats() string }
	type unwrapper interface{ Inner() transport.Endpoint }
	for ep != nil {
		if s, ok := ep.(statser); ok {
			return s.WireStats(), true
		}
		u, ok := ep.(unwrapper)
		if !ok {
			break
		}
		ep = u.Inner()
	}
	return "", false
}

// --- outbound batching -------------------------------------------------------

// outAgg coalesces the commit path's outbound fan-out: Prepare/Decide sends
// to the same database server buffer for up to a window (or a size cap) and
// leave as one msg.Batch envelope. The receiver serves the batch as one
// group-commit cohort, so the window trades a little request latency for a
// large reduction in forced log writes and per-message transport overhead.
type outAgg struct {
	ep     transport.Endpoint
	window time.Duration
	max    int
	// depth, when non-nil, samples the in-flight pipelining depth and the
	// effective batch cap adapts to it (AdaptiveWindows): cap 1 at depth 1
	// (flush immediately, no window latency), widening toward max as the
	// pipeline deepens.
	depth func() int

	mu     sync.Mutex
	closed bool
	pend   map[id.NodeID]*aggBuf
}

type aggBuf struct {
	msgs  []msg.Payload
	timer *time.Timer
}

func newOutAgg(ep transport.Endpoint, window time.Duration, max int) *outAgg {
	return &outAgg{ep: ep, window: window, max: max, pend: make(map[id.NodeID]*aggBuf)}
}

// send buffers p for db, flushing when the batch cap is reached; the first
// message of a buffer arms the window timer that flushes the rest.
func (a *outAgg) send(db id.NodeID, p msg.Payload) {
	// Sample the depth before taking a.mu: inflightDepth takes the server's
	// pendingMu and lock nesting stays flat.
	max := a.max
	if a.depth != nil {
		max = adaptiveCap(a.max, a.depth())
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = a.ep.Send(msg.Envelope{To: db, Payload: p})
		return
	}
	b := a.pend[db]
	if b == nil {
		b = &aggBuf{}
		a.pend[db] = b
	}
	b.msgs = append(b.msgs, p)
	if len(b.msgs) >= max {
		msgs := b.msgs
		b.msgs = nil
		if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
		a.mu.Unlock()
		a.flush(db, msgs)
		return
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(a.window, func() { a.flushDest(db) })
	}
	a.mu.Unlock()
}

// flushDest is the timer path: it claims whatever is pending for db.
func (a *outAgg) flushDest(db id.NodeID) {
	a.mu.Lock()
	b := a.pend[db]
	if b == nil || len(b.msgs) == 0 {
		if b != nil {
			b.timer = nil
		}
		a.mu.Unlock()
		return
	}
	msgs := b.msgs
	b.msgs = nil
	b.timer = nil
	a.mu.Unlock()
	a.flush(db, msgs)
}

func (a *outAgg) flush(db id.NodeID, msgs []msg.Payload) {
	if len(msgs) == 1 {
		_ = a.ep.Send(msg.Envelope{To: db, Payload: msgs[0]})
		return
	}
	_ = a.ep.Send(msg.Envelope{To: db, Payload: msg.Batch{Msgs: msgs}})
}

// adaptiveCap sizes a batch cap to the observed in-flight depth: depth 1
// collapses batching entirely (an appended message flushes at once, so the
// window never adds latency), deeper pipelines widen toward the configured
// cap. Because the collapse is append-then-flush rather than a bypass,
// buffered and unbuffered sends can never reorder.
func adaptiveCap(configured, depth int) int {
	if depth <= 1 {
		return 1
	}
	m := 2 * depth
	if m < 8 {
		m = 8
	}
	if m > configured {
		m = configured
	}
	return m
}

// stop flushes every pending buffer and sends all later traffic directly.
func (a *outAgg) stop() {
	a.mu.Lock()
	a.closed = true
	type rest struct {
		db   id.NodeID
		msgs []msg.Payload
	}
	var out []rest
	for db, b := range a.pend {
		if b.timer != nil {
			b.timer.Stop()
		}
		if len(b.msgs) > 0 {
			out = append(out, rest{db: db, msgs: b.msgs})
		}
	}
	a.pend = make(map[id.NodeID]*aggBuf)
	a.mu.Unlock()
	for _, r := range out {
		a.flush(r.db, r.msgs)
	}
}

// --- business-data access for Logic -----------------------------------------

// Tx is the handle through which Logic manipulates the database tier inside
// one try's transaction branch. It is not safe for concurrent use by
// multiple goroutines (compute() is a single logical thread, as in the
// paper).
//
// The keyed methods (Get, Put, Add, CheckAtLeast, Do) route each operation
// to the key's home shard through the deployment's placement map and are the
// preferred surface: a transaction that stays on one shard commits through
// the one-shard fast path regardless of how many database servers exist.
// Exec addresses a database server directly for logics that manage their own
// placement. Either way the touched servers are recorded as the try's
// participant set — the paper's dlist — and commitment involves only them.
type Tx struct {
	s   *AppServer
	rid id.ResultID
	// touched and incs are small linear-scan sets rather than maps: a try
	// touches a handful of shards at most, and two map allocations per try
	// were measurable on the batched hot path.
	touched []id.NodeID
	incs    []dbInc
}

// dbInc records the incarnation observed at the first completed Exec
// against one database server.
type dbInc struct {
	db  id.NodeID
	inc uint64
}

// RID returns the try this transaction belongs to.
func (t *Tx) RID() id.ResultID { return t.rid }

// DBs returns the database servers of the deployment.
func (t *Tx) DBs() []id.NodeID { return t.s.cfg.DataServers }

// Home returns the database server owning key's home shard.
func (t *Tx) Home(key string) id.NodeID { return t.s.place.Home(key) }

// Placement returns the deployment's key-routing map.
func (t *Tx) Placement() *placement.Map { return t.s.place }

// participants returns the try's dlist: every database server this
// transaction sent an operation to, in deterministic order. Servers are
// recorded at send time, so a branch opened by an Exec whose reply was lost
// is still aborted at termination.
func (t *Tx) participants() []id.NodeID {
	out := make([]id.NodeID, len(t.touched))
	copy(out, t.touched)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// touch records db in the participant set.
func (t *Tx) touch(db id.NodeID) {
	for _, d := range t.touched {
		if d == db {
			return
		}
	}
	t.touched = append(t.touched, db)
}

// incarnation returns the incarnation recorded at the first Exec against db.
func (t *Tx) incarnation(db id.NodeID) (uint64, bool) {
	for _, e := range t.incs {
		if e.db == db {
			return e.inc, true
		}
	}
	return 0, false
}

// Do routes one operation on key to its home shard.
func (t *Tx) Do(ctx context.Context, key string, op msg.Op) (msg.OpResult, error) {
	op.Key = key
	return t.Exec(ctx, t.Home(key), op)
}

// Get reads key on its home shard, returning the raw value and its integer
// interpretation.
func (t *Tx) Get(ctx context.Context, key string) ([]byte, int64, error) {
	rep, err := t.Do(ctx, key, msg.Op{Code: msg.OpGet})
	if err != nil {
		return nil, 0, err
	}
	if !rep.OK {
		return nil, 0, fmt.Errorf("core: get %q: %s", key, rep.Err)
	}
	return rep.Val, rep.Num, nil
}

// Put writes val to key on its home shard.
func (t *Tx) Put(ctx context.Context, key string, val []byte) error {
	rep, err := t.Do(ctx, key, msg.Op{Code: msg.OpPut, Val: val})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("core: put %q: %s", key, rep.Err)
	}
	return nil
}

// Add atomically adds delta to the integer at key on its home shard and
// returns the new value.
func (t *Tx) Add(ctx context.Context, key string, delta int64) (int64, error) {
	rep, err := t.Do(ctx, key, msg.Op{Code: msg.OpAdd, Delta: delta})
	if err != nil {
		return 0, err
	}
	if !rep.OK {
		return 0, fmt.Errorf("core: add %q: %s", key, rep.Err)
	}
	return rep.Num, nil
}

// CheckAtLeast installs a commitment-time guard on key's home shard: if the
// integer at key is below min, the shard refuses to commit the try.
func (t *Tx) CheckAtLeast(ctx context.Context, key string, min int64) error {
	rep, err := t.Do(ctx, key, msg.Op{Code: msg.OpCheckGE, Delta: min})
	if err != nil {
		return err
	}
	if !rep.OK {
		return fmt.Errorf("core: check %q: %s", key, rep.Err)
	}
	return nil
}

// GetFast reads key's last committed value on its home shard through the
// read-only fast path: the shard answers from its committed snapshot at a
// batch boundary, without locks, without opening a transaction branch, and
// without enlisting the shard in the try's participant set — so the read
// never enters the commit path. The value is a consistent committed
// snapshot, not a serializable read inside the try: it may trail the try's
// own uncommitted writes and the in-flight batch. Use it for read-only
// business logic that tolerates snapshot staleness; use Get for reads the
// try's serialization must cover.
func (t *Tx) GetFast(ctx context.Context, key string) ([]byte, int64, error) {
	db := t.Home(key)
	rep, err := t.s.execCall(ctx, db, msg.Exec{RID: t.rid, Op: msg.Op{Code: msg.OpSnapRead, Key: key}})
	if err != nil {
		return nil, 0, fmt.Errorf("core: snap read on %s: %w", db, err)
	}
	if !rep.Rep.OK {
		return nil, 0, fmt.Errorf("core: snap read %q: %s", key, rep.Rep.Err)
	}
	return rep.Rep.Val, rep.Rep.Num, nil
}

// Exec runs one data operation on db inside this try's branch. A failed
// operation is reported in the OpResult (business-level failure: lock
// timeout, check violation); an error return means the call itself could not
// complete (timeout, shutdown, database restarted mid-transaction).
func (t *Tx) Exec(ctx context.Context, db id.NodeID, op msg.Op) (msg.OpResult, error) {
	t.touch(db)
	rep, err := t.s.execCall(ctx, db, msg.Exec{RID: t.rid, Op: op})
	if err != nil {
		return msg.OpResult{}, err
	}
	if prev, ok := t.incarnation(db); !ok {
		t.incs = append(t.incs, dbInc{db: db, inc: rep.Inc})
	} else if prev != rep.Inc {
		return rep.Rep, fmt.Errorf("core: database %s restarted mid-transaction (incarnation %d -> %d)", db, prev, rep.Inc)
	}
	return rep.Rep, nil
}

// execResendCap bounds how many times one Exec call may be re-sent after the
// replica view moved its shard to a new primary. Re-sends happen only on a
// primary change — never to the same node, because Exec is not idempotent on
// a live branch — so the cap is about runaway view churn, not timeouts.
const execResendCap = 8

// execCall runs one Exec exchange against db's shard. On an unreplicated
// deployment (nil view) it is exactly the paper's single send-and-wait. On a
// replicated one the send goes to the shard's current primary, and while
// waiting the call polls the view with exponential backoff: if a promotion
// re-homed the shard, the operation is re-sent to the new primary — and only
// then, so a slow-but-alive primary is never asked to execute twice. The
// reply carries the incarnation of whichever replica answered; the caller's
// incarnation pinning turns a mid-try switch into an abort-and-recompute.
func (s *AppServer) execCall(ctx context.Context, db id.NodeID, ex msg.Exec) (msg.ExecReply, error) {
	ex.CallID = s.execID.Add(1)
	ch := s.calls.addExec(ex.CallID)
	defer s.calls.removeExec(ex.CallID)

	target := db
	if s.view != nil {
		target = s.view.Current(db)
	}
	if err := s.cfg.Endpoint.Send(msg.Envelope{To: target, Payload: ex}); err != nil {
		return msg.ExecReply{}, fmt.Errorf("core: exec on %s: %w", db, err)
	}

	if s.view == nil {
		select {
		case rep := <-ch:
			return rep, nil
		case <-ctx.Done():
			return msg.ExecReply{}, fmt.Errorf("core: exec on %s: %w", db, ctx.Err())
		case <-s.ctx.Done():
			return msg.ExecReply{}, errors.New("core: server stopping")
		}
	}

	poll := s.cfg.ResendInterval
	timer := time.NewTimer(poll)
	defer timer.Stop()
	resends := 0
	for {
		select {
		case rep := <-ch:
			return rep, nil
		case <-timer.C:
			if cur := s.view.Current(db); cur != target {
				if resends >= execResendCap {
					return msg.ExecReply{}, fmt.Errorf("core: exec on %s: shard primary moved %d times without answering", db, resends)
				}
				resends++
				s.execRetries.Inc()
				target = cur
				if err := s.cfg.Endpoint.Send(msg.Envelope{To: target, Payload: ex}); err != nil {
					return msg.ExecReply{}, fmt.Errorf("core: exec on %s: %w", db, err)
				}
				poll = s.cfg.ResendInterval
			} else if poll < 8*s.cfg.ResendInterval {
				poll *= 2
			}
			timer.Reset(poll)
		case <-ctx.Done():
			return msg.ExecReply{}, fmt.Errorf("core: exec on %s: %w", db, ctx.Err())
		case <-s.ctx.Done():
			return msg.ExecReply{}, errors.New("core: server stopping")
		}
	}
}

// --- pending-call routing ----------------------------------------------------

type colEventKind uint8

const (
	evVote colEventKind = iota + 1
	evAck
	evReady
)

type colEvent struct {
	kind colEventKind
	from id.NodeID
	vote msg.Vote
	inc  uint64
}

type collector struct {
	rid id.ResultID
	ch  chan colEvent
}

// callRouter correlates replies from database servers with the waiting
// prepare/terminate rounds and Exec calls. Ready notifications fan out to
// every active collector, like the paper's "(receive ... or [Ready])" waits.
type callRouter struct {
	mu       sync.Mutex
	execs    map[uint64]chan msg.ExecReply
	cols     map[id.ResultID]map[*collector]bool
	pool     sync.Pool // recycled collectors; every request makes two
	execPool sync.Pool // recycled exec-reply channels; every data op makes one
}

func (r *callRouter) init() {
	r.execs = make(map[uint64]chan msg.ExecReply)
	r.cols = make(map[id.ResultID]map[*collector]bool)
	r.pool.New = func() any {
		// The buffer only needs to absorb one round's answers from every
		// participant plus stray Ready fan-out; a protocol-level resend
		// recovers anything dropped beyond that.
		return &collector{ch: make(chan colEvent, 32)}
	}
}

func (r *callRouter) addCollector(rid id.ResultID) *collector {
	col := r.pool.Get().(*collector)
	col.rid = rid
	r.mu.Lock()
	set, ok := r.cols[rid]
	if !ok {
		set = make(map[*collector]bool, 1)
		r.cols[rid] = set
	}
	set[col] = true
	r.mu.Unlock()
	return col
}

func (r *callRouter) removeCollector(col *collector) {
	r.mu.Lock()
	if set, ok := r.cols[col.rid]; ok {
		delete(set, col)
		if len(set) == 0 {
			delete(r.cols, col.rid)
		}
	}
	r.mu.Unlock()
	// Safe to recycle: route() only sends while holding r.mu with the
	// collector registered, so after removal the channel is quiescent; drain
	// whatever was queued before handing it to the next request.
	for {
		select {
		case <-col.ch:
		default:
			r.pool.Put(col)
			return
		}
	}
}

func (r *callRouter) routeVote(from id.NodeID, m msg.VoteMsg) {
	r.route(m.RID, colEvent{kind: evVote, from: from, vote: m.V, inc: m.Inc})
}

func (r *callRouter) routeAck(from id.NodeID, m msg.AckDecide) {
	r.route(m.RID, colEvent{kind: evAck, from: from})
}

func (r *callRouter) route(rid id.ResultID, ev colEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for col := range r.cols[rid] {
		select {
		case col.ch <- ev:
		default: // collector overwhelmed; protocol-level resends recover
		}
	}
}

func (r *callRouter) routeReady(from id.NodeID, inc uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, set := range r.cols {
		for col := range set {
			select {
			case col.ch <- colEvent{kind: evReady, from: from, inc: inc}:
			default:
			}
		}
	}
}

func (r *callRouter) addExec(callID uint64) chan msg.ExecReply {
	var ch chan msg.ExecReply
	if v := r.execPool.Get(); v != nil {
		ch = v.(chan msg.ExecReply)
	} else {
		ch = make(chan msg.ExecReply, 2)
	}
	r.mu.Lock()
	r.execs[callID] = ch
	r.mu.Unlock()
	return ch
}

func (r *callRouter) removeExec(callID uint64) {
	r.mu.Lock()
	ch := r.execs[callID]
	delete(r.execs, callID)
	r.mu.Unlock()
	if ch == nil {
		return
	}
	// Safe to recycle: routeExecReply sends while holding r.mu with the call
	// registered, so after removal the channel is quiescent; drain stray
	// duplicate replies before handing it to the next call.
	for {
		select {
		case <-ch:
		default:
			r.execPool.Put(ch)
			return
		}
	}
}

func (r *callRouter) routeExecReply(m msg.ExecReply) {
	r.mu.Lock()
	// The non-blocking send stays under the lock: once removeExec has run,
	// nothing may touch the channel again (it is recycled).
	if ch, ok := r.execs[m.CallID]; ok {
		select {
		case ch <- m:
		default: // duplicate reply
		}
	}
	r.mu.Unlock()
}
