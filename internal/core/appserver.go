package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/queue"
	"etx/internal/transport"
	"etx/internal/woregister"
)

// Logic is the business logic the paper abstracts as compute(): it performs
// transient data manipulations against the database tier through tx and
// returns a result. It must not commit anything — commitment is the
// protocol's job — and it may be invoked several times for the same logical
// request (once per try), so its effects must live entirely inside the
// transaction branch. A returned error aborts the try with the paper's
// (nil, abort) decision.
type Logic interface {
	Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error)
}

// LogicFunc adapts a function to the Logic interface.
type LogicFunc func(ctx context.Context, tx *Tx, req []byte) ([]byte, error)

// Compute implements Logic.
func (f LogicFunc) Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
	return f(ctx, tx, req)
}

// AppServerConfig parameterizes an application-server process.
type AppServerConfig struct {
	// Self identifies the server.
	Self id.NodeID
	// AppServers is the full middle tier, identically ordered everywhere;
	// AppServers[0] is the default primary and round-1 consensus coordinator.
	AppServers []id.NodeID
	// DataServers is the paper's dlist: every database server.
	DataServers []id.NodeID
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Logic is the business logic run by the compute thread.
	Logic Logic
	// Detector overrides the built-in heartbeat detector (tests inject
	// scripted suspicions). When nil a heartbeat ◊P detector runs.
	Detector fd.Detector
	// HeartbeatInterval and SuspectTimeout tune the built-in detector.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// ConsensusPoll is the failure-detector polling interval inside
	// consensus waits. Defaults to 1ms.
	ConsensusPoll time.Duration
	// ResendInterval is the protocol-level retransmission period of
	// Prepare/Decide rounds. Defaults to 100ms.
	ResendInterval time.Duration
	// CleanInterval is the cleaning thread's scan period. Defaults to 25ms.
	CleanInterval time.Duration
	// ComputeTimeout bounds one compute() invocation. Defaults to 5s.
	ComputeTimeout time.Duration
	// Workers is the number of compute threads. The paper runs exactly one;
	// values >1 are a documented generalization. Defaults to 1.
	Workers int
	// Hooks carries optional instrumentation and crash injection.
	Hooks *Hooks
}

func (c *AppServerConfig) setDefaults() {
	if c.ConsensusPoll <= 0 {
		c.ConsensusPoll = time.Millisecond
	}
	if c.ResendInterval <= 0 {
		c.ResendInterval = 100 * time.Millisecond
	}
	if c.CleanInterval <= 0 {
		c.CleanInterval = 25 * time.Millisecond
	}
	if c.ComputeTimeout <= 0 {
		c.ComputeTimeout = 5 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 6 * c.HeartbeatInterval
	}
}

// AppServer is the paper's application-server process (Figures 4-6). It is
// stateless in the paper's sense: everything it holds is soft state
// reconstructible from the wo-registers and the databases; no disk is used.
type AppServer struct {
	cfg AppServerConfig

	cons *consensus.Node
	regs *woregister.Registers
	hb   *fd.Heartbeat // nil when an external detector is injected
	det  fd.Detector

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	computeQ *queue.Queue[msg.Request]

	pendingMu sync.Mutex
	pending   map[id.ResultID]bool

	commitMu  sync.Mutex
	committed map[id.RequestKey]cachedDecision

	calls  callRouter
	execID atomic.Uint64
}

type cachedDecision struct {
	try uint64
	dec msg.Decision
}

// NewAppServer creates an application-server process. Call Start to run it.
func NewAppServer(cfg AppServerConfig) (*AppServer, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("core: AppServer needs an Endpoint")
	}
	if cfg.Logic == nil {
		return nil, errors.New("core: AppServer needs Logic")
	}
	if len(cfg.AppServers) == 0 || len(cfg.DataServers) == 0 {
		return nil, errors.New("core: AppServer needs non-empty server lists")
	}
	cfg.setDefaults()

	s := &AppServer{
		cfg:       cfg,
		computeQ:  queue.New[msg.Request](),
		pending:   make(map[id.ResultID]bool),
		committed: make(map[id.RequestKey]cachedDecision),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.calls.init()

	if cfg.Detector != nil {
		s.det = cfg.Detector
	} else {
		s.hb = fd.NewHeartbeat(fd.Config{
			Self:     cfg.Self,
			Peers:    cfg.AppServers,
			Interval: cfg.HeartbeatInterval,
			Timeout:  cfg.SuspectTimeout,
			Send: func(to id.NodeID, p msg.Payload) error {
				return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
			},
		})
		s.det = s.hb
	}

	cons, err := consensus.New(consensus.Config{
		Self:     cfg.Self,
		Peers:    cfg.AppServers,
		Detector: s.det,
		Poll:     cfg.ConsensusPoll,
		Send: func(to id.NodeID, p msg.Payload) error {
			return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("core: appserver consensus: %w", err)
	}
	s.cons = cons
	s.regs = woregister.New(cons)
	return s, nil
}

// Registers exposes the server's wo-register view (tests, oracles).
func (s *AppServer) Registers() *woregister.Registers { return s.regs }

// Retire drops all local state of a finished logical request: its cached
// committed decision and the registers of every try up to maxTry. The paper
// leaves this garbage collection open (Section 5); it is only safe once the
// client is known to have delivered the result and will not retransmit —
// the ablation benchmark quantifies the memory it reclaims.
func (s *AppServer) Retire(req id.RequestKey, maxTry uint64) {
	s.commitMu.Lock()
	delete(s.committed, req)
	s.commitMu.Unlock()
	for try := uint64(1); try <= maxTry; try++ {
		s.regs.Retire(id.ResultID{Client: req.Client, Seq: req.Seq, Try: try})
	}
}

// Detector exposes the failure detector in use.
func (s *AppServer) Detector() fd.Detector { return s.det }

// Start launches the demultiplexer, the compute thread(s) and the cleaning
// thread — the cobegin of Figure 4.
func (s *AppServer) Start() {
	if s.hb != nil {
		s.hb.Start(s.ctx)
	}
	s.wg.Add(1)
	go s.demux()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.computeThread()
	}
	s.wg.Add(1)
	go s.cleanThread()
}

// Stop terminates every goroutine of the server.
func (s *AppServer) Stop() {
	s.cancel()
	s.computeQ.Close()
	s.cons.Stop()
	s.wg.Wait()
	if s.hb != nil {
		s.hb.Wait()
	}
}

// demux routes incoming messages to the consensus node, the failure
// detector, the compute queue and the pending-call router.
func (s *AppServer) demux() {
	defer s.wg.Done()
	for {
		select {
		case env, ok := <-s.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			switch m := env.Payload.(type) {
			case msg.Heartbeat:
				if s.hb != nil {
					s.hb.Observe(env.From)
				}
			case msg.Estimate, msg.Propose, msg.CAck, msg.CNack, msg.CDecision:
				s.cons.Handle(env.From, m)
			case msg.Request:
				s.enqueue(m)
			case msg.VoteMsg:
				s.calls.routeVote(env.From, m)
			case msg.AckDecide:
				s.calls.routeAck(env.From, m)
			case msg.Ready:
				s.calls.routeReady(env.From, m.Inc)
			case msg.ExecReply:
				s.calls.routeExecReply(m)
			}
		case <-s.ctx.Done():
			return
		}
	}
}

// enqueue admits a request to the compute queue, deduplicating tries already
// queued or being executed (client retransmissions).
func (s *AppServer) enqueue(req msg.Request) {
	s.pendingMu.Lock()
	if s.pending[req.RID] {
		s.pendingMu.Unlock()
		return
	}
	s.pending[req.RID] = true
	s.pendingMu.Unlock()
	s.computeQ.Push(req)
}

func (s *AppServer) clearPending(rid id.ResultID) {
	s.pendingMu.Lock()
	delete(s.pending, rid)
	s.pendingMu.Unlock()
}

// computeThread is the paper's computation thread (Figure 5): it serves
// queued requests one at a time.
func (s *AppServer) computeThread() {
	defer s.wg.Done()
	for {
		for {
			req, ok := s.computeQ.Pop()
			if !ok {
				break
			}
			s.handleRequest(req)
		}
		if s.computeQ.Closed() {
			return
		}
		select {
		case <-s.computeQ.Out():
		case <-s.ctx.Done():
			return
		}
	}
}

// handleRequest executes Figure 5 for one incoming [Request, request, j].
func (s *AppServer) handleRequest(req msg.Request) {
	rid := req.RID
	defer s.clearPending(rid)

	// Figure 5, lines 3-4: a committed decision for this request is simply
	// re-sent (the client retransmitted because the result got lost).
	s.commitMu.Lock()
	cached, haveCached := s.committed[rid.Request()]
	s.commitMu.Unlock()
	if haveCached && cached.try == rid.Try {
		s.sendResult(rid, cached.dec)
		return
	}

	// A try whose decision is already in regD (e.g. the cleaning thread
	// finished it) is re-terminated: decides are idempotent at the
	// databases and the client deduplicates results.
	if dec, ok := s.regs.ReadD(rid); ok {
		s.terminate(rid, dec)
		return
	}

	// Figure 5, line 6: claim the try in regA.
	t0 := time.Now()
	winner, err := s.regs.WriteA(s.ctx, rid, s.cfg.Self)
	if err != nil {
		return // shutting down
	}
	s.cfg.Hooks.span(rid, SpanLogStart, time.Since(t0))
	s.cfg.Hooks.crash(PointAfterRegA, rid)
	if winner != s.cfg.Self {
		// Figure 5, line 7: another server owns this try; it (or its
		// cleaner) will answer the client.
		return
	}

	// Figure 5, lines 8-9: compute, then run the voting phase.
	decision := msg.Decision{Outcome: msg.OutcomeAbort} // (nil, abort)
	cctx, cancel := context.WithTimeout(s.ctx, s.cfg.ComputeTimeout)
	tx := &Tx{s: s, rid: rid, incs: make(map[id.NodeID]uint64)}
	t0 = time.Now()
	result, err := s.cfg.Logic.Compute(cctx, tx, req.Body)
	cancel()
	s.cfg.Hooks.span(rid, SpanSQL, time.Since(t0))
	s.cfg.Hooks.crash(PointAfterCompute, rid)
	if err == nil {
		decision.Result = result
		t0 = time.Now()
		decision.Outcome = s.prepare(rid, tx)
		s.cfg.Hooks.span(rid, SpanPrepare, time.Since(t0))
	}
	s.cfg.Hooks.crash(PointAfterPrepare, rid)

	// Figure 5, line 10: the wo-register arbitrates with any cleaner.
	t0 = time.Now()
	final, err := s.regs.WriteD(s.ctx, rid, decision)
	if err != nil {
		return
	}
	s.cfg.Hooks.span(rid, SpanLogOutcome, time.Since(t0))
	s.cfg.Hooks.crash(PointAfterRegD, rid)

	// Figure 5, line 11.
	s.terminate(rid, final)
}

// prepare implements Figure 4's prepare(): a voting round over every
// database server. Commit requires a yes vote from every server, each from
// the same incarnation the business logic executed against; a Ready
// (recovery notification) in place of a vote means the server lost its
// branch, so the try aborts.
func (s *AppServer) prepare(rid id.ResultID, tx *Tx) msg.Outcome {
	col := s.calls.addCollector(rid)
	defer s.calls.removeCollector(col)

	type answer struct {
		vote  msg.Vote
		inc   uint64
		ready bool
	}
	answers := make(map[id.NodeID]answer, len(s.cfg.DataServers))
	sendTo := func(only map[id.NodeID]answer) {
		for _, db := range s.cfg.DataServers {
			if _, done := only[db]; done {
				continue
			}
			_ = s.cfg.Endpoint.Send(msg.Envelope{To: db, Payload: msg.Prepare{RID: rid}})
		}
	}
	sendTo(nil)

	ticker := time.NewTicker(s.cfg.ResendInterval)
	defer ticker.Stop()
	for len(answers) < len(s.cfg.DataServers) {
		select {
		case ev := <-col.ch:
			if _, done := answers[ev.from]; done {
				break
			}
			switch ev.kind {
			case evVote:
				answers[ev.from] = answer{vote: ev.vote, inc: ev.inc}
			case evReady:
				answers[ev.from] = answer{ready: true}
			}
		case <-ticker.C:
			sendTo(answers)
		case <-s.ctx.Done():
			return msg.OutcomeAbort
		}
	}
	for db, a := range answers {
		if a.ready || a.vote != msg.VoteYes {
			return msg.OutcomeAbort
		}
		if want, touched := tx.incarnation(db); touched && a.inc != want {
			// The server crashed between compute() and prepare(): its
			// branch (and unprepared work) is gone. The vote we got is from
			// a later incarnation's empty branch; committing would lose the
			// writes, so the try aborts and will be recomputed.
			return msg.OutcomeAbort
		}
	}
	return msg.OutcomeCommit
}

// terminate implements Figure 4's terminate(): drive the outcome to every
// database server until all acknowledge (re-sending to servers that announce
// recovery with Ready), then report the decision to the client.
func (s *AppServer) terminate(rid id.ResultID, dec msg.Decision) {
	t0 := time.Now()
	col := s.calls.addCollector(rid)

	acked := make(map[id.NodeID]bool, len(s.cfg.DataServers))
	send := func(db id.NodeID) {
		_ = s.cfg.Endpoint.Send(msg.Envelope{To: db, Payload: msg.Decide{RID: rid, O: dec.Outcome}})
	}
	for _, db := range s.cfg.DataServers {
		send(db)
	}
	ticker := time.NewTicker(s.cfg.ResendInterval)
	for len(acked) < len(s.cfg.DataServers) {
		select {
		case ev := <-col.ch:
			switch ev.kind {
			case evAck:
				acked[ev.from] = true
			case evReady:
				if !acked[ev.from] {
					send(ev.from)
				}
			}
		case <-ticker.C:
			for _, db := range s.cfg.DataServers {
				if !acked[db] {
					send(db)
				}
			}
		case <-s.ctx.Done():
			ticker.Stop()
			s.calls.removeCollector(col)
			return
		}
	}
	ticker.Stop()
	s.calls.removeCollector(col)
	s.cfg.Hooks.span(rid, SpanCommit, time.Since(t0))

	if dec.Outcome == msg.OutcomeCommit {
		s.commitMu.Lock()
		s.committed[rid.Request()] = cachedDecision{try: rid.Try, dec: dec}
		s.commitMu.Unlock()
	}
	s.cfg.Hooks.crash(PointBeforeResult, rid)
	s.sendResult(rid, dec)
}

func (s *AppServer) sendResult(rid id.ResultID, dec msg.Decision) {
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
}

// cleanThread is the paper's cleaning thread (Figure 6): for every suspected
// peer, abort-or-finish every try that peer owns in regA.
func (s *AppServer) cleanThread() {
	defer s.wg.Done()
	cleaned := make(map[id.ResultID]bool)
	ticker := time.NewTicker(s.cfg.CleanInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.cleanSweep(cleaned)
		case <-s.ctx.Done():
			return
		}
	}
}

// cleanSweep performs one pass of Figure 6's outer loop.
func (s *AppServer) cleanSweep(cleaned map[id.ResultID]bool) {
	for _, ai := range s.cfg.AppServers {
		if ai == s.cfg.Self || !s.det.Suspects(ai) {
			continue
		}
		tries := s.regs.KnownTries()
		sort.Slice(tries, func(i, j int) bool { return tries[i].Less(tries[j]) })
		for _, rid := range tries {
			if cleaned[rid] {
				continue
			}
			owner, ok := s.regs.ReadA(rid)
			if !ok || owner != ai {
				continue
			}
			// Figure 6, lines 7-8: try to abort; the write-once register
			// returns the executor's decision if it got there first, in
			// which case we finish its commit instead.
			dec, err := s.regs.WriteD(s.ctx, rid, msg.Decision{Outcome: msg.OutcomeAbort})
			if err != nil {
				return // shutting down
			}
			s.terminate(rid, dec)
			cleaned[rid] = true
		}
	}
}

// --- business-data access for Logic -----------------------------------------

// Tx is the handle through which Logic manipulates the database tier inside
// one try's transaction branch. It is not safe for concurrent use by
// multiple goroutines (compute() is a single logical thread, as in the
// paper).
type Tx struct {
	s    *AppServer
	rid  id.ResultID
	incs map[id.NodeID]uint64
}

// RID returns the try this transaction belongs to.
func (t *Tx) RID() id.ResultID { return t.rid }

// DBs returns the database servers of the deployment.
func (t *Tx) DBs() []id.NodeID { return t.s.cfg.DataServers }

// incarnation returns the incarnation recorded at the first Exec against db.
func (t *Tx) incarnation(db id.NodeID) (uint64, bool) {
	inc, ok := t.incs[db]
	return inc, ok
}

// Exec runs one data operation on db inside this try's branch. A failed
// operation is reported in the OpResult (business-level failure: lock
// timeout, check violation); an error return means the call itself could not
// complete (timeout, shutdown, database restarted mid-transaction).
func (t *Tx) Exec(ctx context.Context, db id.NodeID, op msg.Op) (msg.OpResult, error) {
	callID := t.s.execID.Add(1)
	ch := t.s.calls.addExec(callID)
	defer t.s.calls.removeExec(callID)
	err := t.s.cfg.Endpoint.Send(msg.Envelope{To: db, Payload: msg.Exec{RID: t.rid, CallID: callID, Op: op}})
	if err != nil {
		return msg.OpResult{}, fmt.Errorf("core: exec on %s: %w", db, err)
	}
	select {
	case rep := <-ch:
		if prev, ok := t.incs[db]; !ok {
			t.incs[db] = rep.Inc
		} else if prev != rep.Inc {
			return rep.Rep, fmt.Errorf("core: database %s restarted mid-transaction (incarnation %d -> %d)", db, prev, rep.Inc)
		}
		return rep.Rep, nil
	case <-ctx.Done():
		return msg.OpResult{}, fmt.Errorf("core: exec on %s: %w", db, ctx.Err())
	case <-t.s.ctx.Done():
		return msg.OpResult{}, errors.New("core: server stopping")
	}
}

// --- pending-call routing ----------------------------------------------------

type colEventKind uint8

const (
	evVote colEventKind = iota + 1
	evAck
	evReady
)

type colEvent struct {
	kind colEventKind
	from id.NodeID
	vote msg.Vote
	inc  uint64
}

type collector struct {
	rid id.ResultID
	ch  chan colEvent
}

// callRouter correlates replies from database servers with the waiting
// prepare/terminate rounds and Exec calls. Ready notifications fan out to
// every active collector, like the paper's "(receive ... or [Ready])" waits.
type callRouter struct {
	mu    sync.Mutex
	execs map[uint64]chan msg.ExecReply
	cols  map[id.ResultID]map[*collector]bool
}

func (r *callRouter) init() {
	r.execs = make(map[uint64]chan msg.ExecReply)
	r.cols = make(map[id.ResultID]map[*collector]bool)
}

func (r *callRouter) addCollector(rid id.ResultID) *collector {
	col := &collector{rid: rid, ch: make(chan colEvent, 256)}
	r.mu.Lock()
	set, ok := r.cols[rid]
	if !ok {
		set = make(map[*collector]bool, 1)
		r.cols[rid] = set
	}
	set[col] = true
	r.mu.Unlock()
	return col
}

func (r *callRouter) removeCollector(col *collector) {
	r.mu.Lock()
	if set, ok := r.cols[col.rid]; ok {
		delete(set, col)
		if len(set) == 0 {
			delete(r.cols, col.rid)
		}
	}
	r.mu.Unlock()
}

func (r *callRouter) routeVote(from id.NodeID, m msg.VoteMsg) {
	r.route(m.RID, colEvent{kind: evVote, from: from, vote: m.V, inc: m.Inc})
}

func (r *callRouter) routeAck(from id.NodeID, m msg.AckDecide) {
	r.route(m.RID, colEvent{kind: evAck, from: from})
}

func (r *callRouter) route(rid id.ResultID, ev colEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for col := range r.cols[rid] {
		select {
		case col.ch <- ev:
		default: // collector overwhelmed; protocol-level resends recover
		}
	}
}

func (r *callRouter) routeReady(from id.NodeID, inc uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, set := range r.cols {
		for col := range set {
			select {
			case col.ch <- colEvent{kind: evReady, from: from, inc: inc}:
			default:
			}
		}
	}
}

func (r *callRouter) addExec(callID uint64) chan msg.ExecReply {
	ch := make(chan msg.ExecReply, 2)
	r.mu.Lock()
	r.execs[callID] = ch
	r.mu.Unlock()
	return ch
}

func (r *callRouter) removeExec(callID uint64) {
	r.mu.Lock()
	delete(r.execs, callID)
	r.mu.Unlock()
}

func (r *callRouter) routeExecReply(m msg.ExecReply) {
	r.mu.Lock()
	ch, ok := r.execs[m.CallID]
	r.mu.Unlock()
	if ok {
		select {
		case ch <- m:
		default: // duplicate reply
		}
	}
}
