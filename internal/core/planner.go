// Queue-oriented deterministic batch execution (DataServerConfig.QueueExec):
// the planner below partitions each drained mailbox batch's data operations
// into per-key FIFO queues, and one runner goroutine per touched key drains
// its queue serially while disjoint keys proceed in parallel. Same-key
// conflicts are impossible by construction — the plan, not a lock table, is
// the serialization artifact — so the engine executes every operation without
// a single lockmgr acquisition (see internal/xadb/spec.go for the
// commitment-time safety net that makes the speculation sound).
package core

import (
	"sort"

	"etx/internal/msg"
	"etx/internal/queue"
)

// keyPlan is one key's slice of a batch plan: the operations touching key,
// in deterministic execution order.
type keyPlan struct {
	key  string
	jobs []execJob
}

// planBatch partitions a drained batch's data operations into per-key FIFO
// queues ordered by a deterministic priority: try order (ResultID order, the
// same total order the commit path's consensus already fixes), with one
// branch's own operations kept in call order. Planning is a pure function of
// the batch's contents — the same batch plans identically on every replica
// and on every re-plan, which is what makes queue execution deterministic.
// Operations without a key (pure cost-model work) have no conflict footprint
// and are returned separately for the unordered worker pool.
func planBatch(jobs []execJob) (keyed []keyPlan, keyless []execJob) {
	byKey := make(map[string][]execJob)
	for _, j := range jobs {
		if j.m.Op.Key == "" {
			keyless = append(keyless, j)
			continue
		}
		byKey[j.m.Op.Key] = append(byKey[j.m.Op.Key], j)
	}
	keyed = make([]keyPlan, 0, len(byKey))
	for key, js := range byKey {
		sort.SliceStable(js, func(a, b int) bool { return execPriority(js[a], js[b]) })
		keyed = append(keyed, keyPlan{key: key, jobs: js})
	}
	sort.Slice(keyed, func(a, b int) bool { return keyed[a].key < keyed[b].key })
	return keyed, keyless
}

// execPriority is the deterministic queue order: ResultID order between
// tries, call order within one try.
func execPriority(a, b execJob) bool {
	if a.m.RID != b.m.RID {
		return a.m.RID.Less(b.m.RID)
	}
	return a.m.CallID < b.m.CallID
}

// keyRun is one key's run queue: operations arrive in plan order and a
// single runner goroutine drains them, so same-key operations never overlap.
type keyRun struct {
	q    *queue.Queue[execJob]
	busy bool // a runner goroutine is draining; DataServer.runMu serializes access
}

// runPlanned plans one drained batch's operations and hands each per-key
// queue to its key's runner, starting one for keys that are idle. Keyless
// operations go to the unordered worker pool.
func (d *DataServer) runPlanned(jobs []execJob) {
	if len(jobs) == 0 {
		return
	}
	keyed, keyless := planBatch(jobs)
	d.plannedBatches.Inc()
	d.plannedOps.Add(uint64(len(jobs) - len(keyless)))
	for _, j := range keyless {
		d.execQ.Push(j)
	}
	d.runMu.Lock()
	defer d.runMu.Unlock()
	for _, p := range keyed {
		kr := d.runs[p.key]
		if kr == nil {
			kr = &keyRun{q: queue.New[execJob]()}
			d.runs[p.key] = kr
		}
		for _, j := range p.jobs {
			kr.q.Push(j)
		}
		if !kr.busy {
			kr.busy = true
			d.wg.Add(1)
			go d.runKey(p.key, kr)
		}
	}
}

// runKey drains one key's run queue serially, retiring the queue when it
// empties; a later batch touching the key starts a fresh runner. Pushes
// happen under runMu, so the empty re-check under runMu cannot lose a job
// that raced with the final Pop.
func (d *DataServer) runKey(key string, kr *keyRun) {
	defer d.wg.Done()
	//etxlint:allow golifecycle — self-retiring runner: drains its key queue and deletes itself when empty; Exec observes d.ctx so a cancelled server drains fast and Stop's wg.Wait outlasts it
	for {
		job, ok := kr.q.Pop()
		if !ok {
			d.runMu.Lock()
			if kr.q.Len() == 0 {
				kr.busy = false
				delete(d.runs, key)
				d.runMu.Unlock()
				return
			}
			d.runMu.Unlock()
			continue
		}
		rep := d.cfg.Engine.Exec(d.ctx, job.m.RID, job.m.Op)
		d.reply(job.from, msg.ExecReply{RID: job.m.RID, CallID: job.m.CallID, Rep: rep, Inc: d.cfg.Engine.Incarnation()})
	}
}
