package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/xadb"
)

func testNet(t *testing.T) *transport.MemNetwork {
	t.Helper()
	net := transport.NewMemNetwork(transport.Options{})
	t.Cleanup(net.Close)
	return net
}

func attach(t *testing.T, net *transport.MemNetwork, n id.NodeID) transport.Endpoint {
	t.Helper()
	ep, err := net.Attach(n)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func noopLogic() Logic {
	return LogicFunc(func(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
}

func TestAppServerConfigValidation(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.AppServer(1))
	apps := []id.NodeID{id.AppServer(1)}
	dbs := []id.NodeID{id.DBServer(1)}
	cases := []struct {
		name string
		cfg  AppServerConfig
	}{
		{"no endpoint", AppServerConfig{Self: id.AppServer(1), AppServers: apps, DataServers: dbs, Logic: noopLogic()}},
		{"no logic", AppServerConfig{Self: id.AppServer(1), AppServers: apps, DataServers: dbs, Endpoint: ep}},
		{"no app servers", AppServerConfig{Self: id.AppServer(1), DataServers: dbs, Endpoint: ep, Logic: noopLogic()}},
		{"no db servers", AppServerConfig{Self: id.AppServer(1), AppServers: apps, Endpoint: ep, Logic: noopLogic()}},
	}
	for _, tc := range cases {
		if _, err := NewAppServer(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	srv, err := NewAppServer(AppServerConfig{
		Self: id.AppServer(1), AppServers: apps, DataServers: dbs, Endpoint: ep, Logic: noopLogic(),
	})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	srv.Start()
	srv.Stop()
}

func TestDataServerConfigValidation(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.DBServer(1))
	engine, err := xadb.Open(stablestore.New(0), xadb.Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDataServer(DataServerConfig{Self: id.DBServer(1), Endpoint: ep}); err == nil {
		t.Error("missing engine accepted")
	}
	if _, err := NewDataServer(DataServerConfig{Self: id.DBServer(1), Engine: engine}); err == nil {
		t.Error("missing endpoint accepted")
	}
	srv, err := NewDataServer(DataServerConfig{Self: id.DBServer(1), Engine: engine, Endpoint: ep})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	srv.Stop()
}

func TestClientConfigValidation(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	if _, err := NewClient(ClientConfig{Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}}); err == nil {
		t.Error("missing endpoint accepted")
	}
	if _, err := NewClient(ClientConfig{Self: id.Client(1), Endpoint: ep}); err == nil {
		t.Error("missing app servers accepted")
	}
}

// echoServer answers every request with a committed copy of its body.
func echoServer(t *testing.T, net *transport.MemNetwork, n id.NodeID) {
	t.Helper()
	ep := attach(t, net, n)
	go func() {
		for env := range ep.Recv() {
			req, ok := env.Payload.(msg.Request)
			if !ok {
				continue
			}
			ep.Send(msg.Envelope{To: env.From, Payload: msg.Result{
				RID: req.RID, Dec: msg.Decision{Result: req.Body, Outcome: msg.OutcomeCommit}}})
		}
	}()
}

func TestClientPipelinesConcurrentIssues(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	echoServer(t, net, id.AppServer(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: ep,
		Backoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	const n = 32
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(fmt.Sprintf("request-%d", i))
			res, err := cl.Issue(ctx, body)
			if err != nil {
				t.Errorf("issue %d: %v", i, err)
				return
			}
			if string(res) != string(body) {
				t.Errorf("issue %d got %q", i, res)
			}
		}()
	}
	wg.Wait()
	ds := cl.Delivered()
	if len(ds) != n {
		t.Fatalf("delivered %d results, want %d", len(ds), n)
	}
	seqs := make(map[uint64]bool)
	for _, d := range ds {
		if seqs[d.RID.Seq] {
			t.Fatalf("sequence %d delivered twice", d.RID.Seq)
		}
		seqs[d.RID.Seq] = true
	}
}

func TestClientIssueAsyncCancelReleasesSlot(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: ep,
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	f, err := cl.IssueAsync(ctx, []byte("r")) // nobody answers; it just retries
	if err != nil {
		t.Fatal(err)
	}
	if n := cl.InFlight(); n != 1 {
		t.Fatalf("InFlight = %d, want 1", n)
	}
	cancel()
	if _, err := f.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled future: %v, want context.Canceled", err)
	}
	if n := cl.InFlight(); n != 0 {
		t.Fatalf("InFlight after cancel = %d, want 0 (slot leaked)", n)
	}
}

func TestClientMaxInFlightAppliesBackpressure(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: ep,
		Backoff: 10 * time.Millisecond, MaxInFlight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cl.IssueAsync(ctx, []byte("first")); err != nil { // never answered
		t.Fatal(err)
	}
	short, cancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel2()
	if _, err := cl.IssueAsync(short, []byte("second")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-cap issue: %v, want deadline exceeded while blocked on the cap", err)
	}
}

func TestClientStopsOnContextCancel(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: ep,
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("r")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("issue on dead deployment: %v, want deadline exceeded", err)
	}
}

func TestClientIgnoresStaleAndForeignResults(t *testing.T) {
	net := testNet(t)
	clEP := attach(t, net, id.Client(1))
	appEP := attach(t, net, id.AppServer(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: clEP,
		Backoff: time.Hour, // no broadcasts: only the direct conversation
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// The fake app server answers the first request with a stale try, a
	// foreign request's result, then the real answer.
	go func() {
		for env := range appEP.Recv() {
			req, ok := env.Payload.(msg.Request)
			if !ok {
				continue
			}
			stale := req.RID
			stale.Try += 7
			appEP.Send(msg.Envelope{To: env.From, Payload: msg.Result{
				RID: stale, Dec: msg.Decision{Result: []byte("stale"), Outcome: msg.OutcomeCommit}}})
			foreign := req.RID
			foreign.Seq += 99
			appEP.Send(msg.Envelope{To: env.From, Payload: msg.Result{
				RID: foreign, Dec: msg.Decision{Result: []byte("foreign"), Outcome: msg.OutcomeCommit}}})
			appEP.Send(msg.Envelope{To: env.From, Payload: msg.Result{
				RID: req.RID, Dec: msg.Decision{Result: []byte("real"), Outcome: msg.OutcomeCommit}}})
			return
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := cl.Issue(ctx, []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "real" {
		t.Fatalf("client accepted %q", res)
	}
	deliveries := cl.Delivered()
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %v", deliveries)
	}
}

func TestClientStepsTriesOnAbort(t *testing.T) {
	net := testNet(t)
	clEP := attach(t, net, id.Client(1))
	appEP := attach(t, net, id.AppServer(1))
	cl, err := NewClient(ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{id.AppServer(1)}, Endpoint: clEP,
		Backoff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	go func() {
		for env := range appEP.Recv() {
			req, ok := env.Payload.(msg.Request)
			if !ok {
				continue
			}
			dec := msg.Decision{Outcome: msg.OutcomeAbort}
			if req.RID.Try >= 3 {
				dec = msg.Decision{Result: []byte("third time lucky"), Outcome: msg.OutcomeCommit}
			}
			appEP.Send(msg.Envelope{To: env.From, Payload: msg.Result{RID: req.RID, Dec: dec}})
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := cl.Issue(ctx, []byte("r"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "third time lucky" {
		t.Fatalf("res = %q", res)
	}
	ds := cl.Delivered()
	if len(ds) != 1 || ds[0].Tries != 3 {
		t.Fatalf("deliveries = %+v, want try 3", ds)
	}
}

func TestHooksNilSafety(t *testing.T) {
	var h *Hooks
	h.span(id.ResultID{}, SpanSQL, time.Second) // must not panic
	h.crash(PointAfterRegA, id.ResultID{})
	h2 := &Hooks{}
	h2.span(id.ResultID{}, SpanSQL, time.Second)
	h2.crash(PointAfterRegA, id.ResultID{})
}

func TestAppServerRetireDropsState(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.AppServer(1))
	srv, err := NewAppServer(AppServerConfig{
		Self:        id.AppServer(1),
		AppServers:  []id.NodeID{id.AppServer(1)},
		DataServers: []id.NodeID{id.DBServer(1)},
		Endpoint:    ep,
		Logic:       noopLogic(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	// Single-replica consensus decides instantly: write both registers.
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	ctx := context.Background()
	if _, err := srv.Registers().WriteA(ctx, rid, id.AppServer(1)); err != nil {
		t.Fatal(err)
	}
	if len(srv.Registers().KnownTries()) != 1 {
		t.Fatal("register write not visible")
	}
	srv.Retire(rid.Request(), rid.Try)
	if len(srv.Registers().KnownTries()) != 0 {
		t.Fatal("Retire left register state behind")
	}
}

// TestDecisionCachesAreBounded: the committed-decision cache and the
// cleaning thread's dedup set must not grow without bound — the oldest
// entries are evicted past the cap, and Retire prunes both eagerly.
func TestDecisionCachesAreBounded(t *testing.T) {
	const cap = 8
	net := testNet(t)
	ep := attach(t, net, id.AppServer(1))
	srv, err := NewAppServer(AppServerConfig{
		Self:            id.AppServer(1),
		AppServers:      []id.NodeID{id.AppServer(1)},
		DataServers:     []id.NodeID{id.DBServer(1)},
		Endpoint:        ep,
		Logic:           noopLogic(),
		CommitCacheSize: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5*cap; seq++ {
		rid := id.ResultID{Client: id.Client(1), Seq: seq, Try: 1}
		srv.cacheCommit(rid, msg.Decision{Outcome: msg.OutcomeCommit})
		srv.markCleaned(rid)
	}
	srv.commitMu.Lock()
	nCommitted := len(srv.committed)
	srv.commitMu.Unlock()
	if nCommitted > cap {
		t.Errorf("committed cache holds %d entries, cap is %d", nCommitted, cap)
	}
	srv.cleanMu.Lock()
	nCleaned := len(srv.cleaned)
	srv.cleanMu.Unlock()
	if nCleaned > cap {
		t.Errorf("cleaned set holds %d entries, cap is %d", nCleaned, cap)
	}

	// The newest entry survived FIFO eviction and Retire prunes it.
	last := id.ResultID{Client: id.Client(1), Seq: 5 * cap, Try: 1}
	srv.commitMu.Lock()
	_, cached := srv.committed[last.Request()]
	srv.commitMu.Unlock()
	if !cached {
		t.Fatal("newest decision evicted before older ones")
	}
	if !srv.wasCleaned(last) {
		t.Fatal("newest cleaned entry evicted before older ones")
	}
	srv.Retire(last.Request(), last.Try)
	srv.commitMu.Lock()
	_, cached = srv.committed[last.Request()]
	srv.commitMu.Unlock()
	if cached {
		t.Error("Retire left the committed decision behind")
	}
	if srv.wasCleaned(last) {
		t.Error("Retire left the cleaned entry behind")
	}
}
