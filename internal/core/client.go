package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// ClientConfig parameterizes a client process.
type ClientConfig struct {
	// Self identifies the client.
	Self id.NodeID
	// AppServers is the full middle tier; AppServers[0] is the default
	// primary that receives the initial send (Figure 2).
	AppServers []id.NodeID
	// Endpoint is the client's network attachment.
	Endpoint transport.Endpoint
	// Backoff is the paper's thePeriod: how long to wait for the primary
	// before broadcasting the request to all application servers.
	// Defaults to 150ms.
	Backoff time.Duration
	// Rebroadcast is the interval at which an unanswered broadcast is
	// repeated. The paper's Figure 2 waits forever after the first
	// broadcast, relying on reliable channels; periodic retransmission is
	// the practical equivalent its prose describes. Defaults to Backoff.
	Rebroadcast time.Duration
	// MaxInFlight caps the number of concurrently outstanding requests.
	// When the cap is reached, Issue and IssueAsync block until a slot
	// frees (back-pressure, not an error). 0 means unlimited.
	MaxInFlight int
	// SeqBase is the starting sequence number. Exactly-once state is keyed
	// by (Self, seq) across the whole deployment, so a fresh process
	// reusing a node identity must not reuse sequence numbers of an
	// earlier incarnation or it will be handed the old incarnation's
	// cached results. Long-lived deployments set a per-process base (e.g.
	// a timestamp); the in-process simulation keeps the deterministic 0.
	SeqBase uint64
	// DiscardDeliveries disables the in-memory log of delivered results
	// that backs the Delivered oracle. Production clients set it to avoid
	// unbounded growth; the simulation keeps the log for CheckProperties.
	DiscardDeliveries bool
	// SlowTry, when set, is called (at most once per request) when an Issue
	// carrying a context deadline has burned more than half of its time
	// budget without delivering — whether one try stalled or many quick
	// aborted tries ate the budget; the reported rid is the try awaited at
	// that moment. The client logs its own in-flight table alongside; the
	// hook lets a harness add the servers' view, so a stall leaves evidence
	// instead of a bare "context deadline exceeded".
	SlowTry func(rid id.ResultID, waited time.Duration)
	// Hooks carries optional instrumentation.
	Hooks *Hooks
}

// Client implements the paper's client algorithm (Figure 2), generalized to
// many concurrent requests: each logical request runs its own instance of the
// paper's state machine — send to the primary, back off, broadcast,
// retransmit, step tries on abort — keyed by its sequence number, so any
// number of goroutines can pipeline requests through one client process. The
// paper presents the algorithm for a single outstanding request "without loss
// of generality"; the sequence number in every ResultID is exactly what makes
// the generalization sound, because servers and the oracle already treat
// (client, seq) as the exactly-once unit.
type Client struct {
	cfg ClientConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	sem chan struct{} // nil when MaxInFlight == 0

	mu       sync.Mutex
	stopped  bool             // guarded by mu
	seq      uint64           // guarded by mu
	inflight map[uint64]*call // guarded by mu

	deliveredMu sync.Mutex
	delivered   []Delivery // guarded by deliveredMu
}

// call is the routing slot of one in-flight request: the try currently
// awaited and the channel its decision is delivered on. Both fields are
// guarded by Client.mu and replaced on every try.
type call struct {
	rid id.ResultID
	ch  chan msg.Decision
}

// Delivery records one result the client delivered, for the validity oracle.
type Delivery struct {
	RID    id.ResultID
	Result []byte
	Tries  uint64
	// Participants is the committed try's dlist as reported by the decision:
	// the database servers the oracle must find the commit at.
	Participants []id.NodeID
}

// ErrStopped reports an Issue attempted on (or interrupted by) a stopped
// client.
var ErrStopped = errors.New("core: client stopped")

// NewClient creates a client process and starts its receive loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("core: Client needs an Endpoint")
	}
	if len(cfg.AppServers) == 0 {
		return nil, errors.New("core: Client needs at least one application server")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 150 * time.Millisecond
	}
	if cfg.Rebroadcast <= 0 {
		cfg.Rebroadcast = cfg.Backoff
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		seq:      cfg.SeqBase,
		inflight: make(map[uint64]*call),
	}
	if cfg.MaxInFlight > 0 {
		c.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// Stop terminates the client's receive loop. In-flight Issues fail with
// ErrStopped.
func (c *Client) Stop() {
	// The flag keeps later IssueAsync calls from racing a wg.Add against
	// wg.Wait: once it is set no request goroutine is ever spawned again.
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
}

// InFlight returns the number of currently outstanding requests.
func (c *Client) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// Delivered returns every result this client has delivered (oracle support).
func (c *Client) Delivered() []Delivery {
	c.deliveredMu.Lock()
	defer c.deliveredMu.Unlock()
	out := make([]Delivery, len(c.delivered))
	copy(out, c.delivered)
	return out
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	for {
		select {
		case env, ok := <-c.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			res, ok := env.Payload.(msg.Result)
			if !ok {
				continue
			}
			c.mu.Lock()
			// Route by sequence number to the in-flight request, then accept
			// only the result of the try currently awaited; stale
			// retransmissions and duplicates are dropped (at-most-once use
			// of each decision).
			if cl, ok := c.inflight[res.RID.Seq]; ok && cl.rid == res.RID {
				select {
				case cl.ch <- res.Dec:
				default: // duplicate for the same try; first one suffices
				}
			}
			c.mu.Unlock()
		case <-c.ctx.Done():
			return
		}
	}
}

// Future is the handle of one asynchronous Issue. It resolves exactly once.
type Future struct {
	done chan struct{}
	res  []byte
	err  error
}

// Done is closed when the future has resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the future resolves and returns the committed result.
func (f *Future) Result() ([]byte, error) {
	<-f.done
	return f.res, f.err
}

// Wait is Result with a context escape hatch: it returns ctx.Err() if ctx is
// done first. The underlying request keeps running under the context it was
// issued with.
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Issue implements the paper's issue() primitive: it blocks until a committed
// result for the request is delivered, ctx is cancelled (the model's client
// crash), or the client is stopped. It is safe to call from any number of
// goroutines; each call pipelines an independent request.
func (c *Client) Issue(ctx context.Context, request []byte) ([]byte, error) {
	f, err := c.IssueAsync(ctx, request)
	if err != nil {
		return nil, err
	}
	return f.Result()
}

// IssueAsync submits a request without waiting for its result and returns a
// Future that resolves when the committed result arrives, ctx is cancelled,
// or the client is stopped. Cancelling ctx releases the request's in-flight
// slot; the request then executes at most once.
func (c *Client) IssueAsync(ctx context.Context, request []byte) (*Future, error) {
	if err := c.acquire(ctx); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		c.release()
		return nil, ErrStopped
	}
	c.seq++
	seq := c.seq
	cl := &call{}
	c.inflight[seq] = cl
	// Inside the lock: Stop sets stopped under the same lock before it
	// waits, and the recvLoop keeps the counter above zero until then.
	c.wg.Add(1)
	c.mu.Unlock()

	f := &Future{done: make(chan struct{})}
	go func() {
		defer c.wg.Done()
		res, err := c.run(ctx, seq, cl, request)
		c.mu.Lock()
		delete(c.inflight, seq)
		c.mu.Unlock()
		c.release()
		f.res, f.err = res, err
		close(f.done)
	}()
	return f, nil
}

// IssueBatch pipelines all requests concurrently and blocks until every one
// has resolved. Results are positional. The first error encountered is
// returned; positions that failed hold nil.
func (c *Client) IssueBatch(ctx context.Context, requests [][]byte) ([][]byte, error) {
	futures := make([]*Future, len(requests))
	results := make([][]byte, len(requests))
	var firstErr error
	for i, req := range requests {
		f, err := c.IssueAsync(ctx, req)
		if err != nil {
			firstErr = err
			break
		}
		futures[i] = f
	}
	for i, f := range futures {
		if f == nil {
			continue
		}
		res, err := f.Result()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		results[i] = res
	}
	return results, firstErr
}

// acquire takes an in-flight slot, blocking when MaxInFlight is reached.
func (c *Client) acquire(ctx context.Context) error {
	select {
	case <-c.ctx.Done():
		return ErrStopped
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if c.sem == nil {
		return nil
	}
	select {
	case c.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.ctx.Done():
		return ErrStopped
	}
}

func (c *Client) release() {
	if c.sem != nil {
		<-c.sem
	}
}

// reportSlowTry logs the liveness evidence for a try that has burned half of
// its deadline with no decision — the stalled try plus this client's whole
// in-flight table — then hands off to the SlowTry hook so a harness can add
// the application servers' register and cleaner state.
func (c *Client) reportSlowTry(rid id.ResultID, waited time.Duration) {
	c.mu.Lock()
	table := make([]id.ResultID, 0, len(c.inflight))
	for _, cl := range c.inflight {
		table = append(table, cl.rid)
	}
	c.mu.Unlock()
	sort.Slice(table, func(i, j int) bool { return table[i].Less(table[j]) })
	log.Printf("core: liveness: %s waited %v (half its deadline) with no decision; in-flight tries: %v",
		rid, waited.Round(time.Millisecond), table)
	if c.cfg.SlowTry != nil {
		c.cfg.SlowTry(rid, waited)
	}
}

// run drives one logical request through the paper's per-request state
// machine: try after try until a committed decision is delivered.
func (c *Client) run(ctx context.Context, seq uint64, cl *call, request []byte) ([]byte, error) {
	start := time.Now()
	primary := c.cfg.AppServers[0]
	slow := newSlowWatch(ctx)
	defer slow.stop()
	for try := uint64(1); ; try++ {
		rid := id.ResultID{Client: c.cfg.Self, Seq: seq, Try: try}
		ch := make(chan msg.Decision, 1)
		c.mu.Lock()
		cl.rid, cl.ch = rid, ch
		c.mu.Unlock()

		req := msg.Request{RID: rid, Body: request}
		// Initial send to the default primary only (failure-free fast path).
		if err := c.cfg.Endpoint.Send(msg.Envelope{To: primary, Payload: req}); err != nil {
			return nil, fmt.Errorf("core: issue: %w", err)
		}

		dec, err := c.awaitDecision(ctx, rid, req, ch, slow)
		if err != nil {
			return nil, err
		}
		if dec.Outcome == msg.OutcomeCommit {
			c.cfg.Hooks.span(rid, SpanTotal, time.Since(start))
			if !c.cfg.DiscardDeliveries {
				c.deliveredMu.Lock()
				c.delivered = append(c.delivered, Delivery{
					RID: rid, Result: dec.Result, Tries: try, Participants: dec.Participants,
				})
				c.deliveredMu.Unlock()
			}
			return dec.Result, nil
		}
		// Abort: step to the next try (Figure 2, line 10).
	}
}

// slowWatch arms the liveness diagnostics of one logical request: a single
// timer at half of the context's time budget, shared across the request's
// tries — so a hang that burns the deadline through many quick aborted
// tries fires just like a single stalled try does.
type slowWatch struct {
	timer *time.Timer
	ch    <-chan time.Time
	start time.Time
}

func newSlowWatch(ctx context.Context) *slowWatch {
	w := &slowWatch{start: time.Now()}
	if dl, ok := ctx.Deadline(); ok {
		if budget := time.Until(dl); budget > 0 {
			w.timer = time.NewTimer(budget / 2)
			w.ch = w.timer.C
		}
	}
	return w
}

func (w *slowWatch) stop() {
	if w.timer != nil {
		w.timer.Stop()
	}
}

// awaitDecision waits for the decision of rid: first a back-off period
// listening for the primary, then a broadcast to all application servers,
// repeated every Rebroadcast interval. A request that consumes half of its
// context deadline without delivering triggers the liveness diagnostics.
func (c *Client) awaitDecision(ctx context.Context, rid id.ResultID, req msg.Request, ch chan msg.Decision, slow *slowWatch) (msg.Decision, error) {
	timer := time.NewTimer(c.cfg.Backoff)
	defer timer.Stop()
	for {
		select {
		case dec := <-ch:
			return dec, nil
		case <-slow.ch:
			slow.ch = nil // once per request
			c.reportSlowTry(rid, time.Since(slow.start))
		case <-timer.C:
			// Back-off expired: send to every application server (Figure 2,
			// line 6), and keep re-sending — the practical form of the
			// paper's reliable-channel retransmission.
			if err := transport.Broadcast(c.cfg.Endpoint, c.cfg.AppServers, req); err != nil {
				return msg.Decision{}, fmt.Errorf("core: issue broadcast: %w", err)
			}
			timer.Reset(c.cfg.Rebroadcast)
		case <-ctx.Done():
			return msg.Decision{}, fmt.Errorf("core: issue %s: %w", rid, ctx.Err())
		case <-c.ctx.Done():
			return msg.Decision{}, ErrStopped
		}
	}
}
