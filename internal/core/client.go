package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// ClientConfig parameterizes a client process.
type ClientConfig struct {
	// Self identifies the client.
	Self id.NodeID
	// AppServers is the full middle tier; AppServers[0] is the default
	// primary that receives the initial send (Figure 2).
	AppServers []id.NodeID
	// Endpoint is the client's network attachment.
	Endpoint transport.Endpoint
	// Backoff is the paper's thePeriod: how long to wait for the primary
	// before broadcasting the request to all application servers.
	// Defaults to 150ms.
	Backoff time.Duration
	// Rebroadcast is the interval at which an unanswered broadcast is
	// repeated. The paper's Figure 2 waits forever after the first
	// broadcast, relying on reliable channels; periodic retransmission is
	// the practical equivalent its prose describes. Defaults to Backoff.
	Rebroadcast time.Duration
	// Hooks carries optional instrumentation.
	Hooks *Hooks
}

// Client implements the paper's client algorithm (Figure 2): issue a request,
// retransmit until a result arrives, deliver only committed results, step to
// the next try on abort.
type Client struct {
	cfg ClientConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	seq     uint64
	issuing bool
	waitRID id.ResultID
	waitCh  chan msg.Decision

	deliveredMu sync.Mutex
	delivered   []Delivery
}

// Delivery records one result the client delivered, for the validity oracle.
type Delivery struct {
	RID    id.ResultID
	Result []byte
	Tries  uint64
}

// ErrBusy reports a second concurrent Issue; the paper's client issues
// requests one at a time.
var ErrBusy = errors.New("core: client already has a request in flight")

// NewClient creates a client process and starts its receive loop.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Endpoint == nil {
		return nil, errors.New("core: Client needs an Endpoint")
	}
	if len(cfg.AppServers) == 0 {
		return nil, errors.New("core: Client needs at least one application server")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 150 * time.Millisecond
	}
	if cfg.Rebroadcast <= 0 {
		cfg.Rebroadcast = cfg.Backoff
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{cfg: cfg, ctx: ctx, cancel: cancel}
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// Stop terminates the client's receive loop. In-flight Issues fail.
func (c *Client) Stop() {
	c.cancel()
	c.wg.Wait()
}

// Delivered returns every result this client has delivered (oracle support).
func (c *Client) Delivered() []Delivery {
	c.deliveredMu.Lock()
	defer c.deliveredMu.Unlock()
	out := make([]Delivery, len(c.delivered))
	copy(out, c.delivered)
	return out
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	for {
		select {
		case env, ok := <-c.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			res, ok := env.Payload.(msg.Result)
			if !ok {
				continue
			}
			c.mu.Lock()
			// Accept only the result of the try currently awaited; stale
			// retransmissions and duplicates are dropped (at-most-once use
			// of each decision).
			if c.issuing && res.RID == c.waitRID {
				select {
				case c.waitCh <- res.Dec:
				default: // duplicate for the same try; first one suffices
				}
			}
			c.mu.Unlock()
		case <-c.ctx.Done():
			return
		}
	}
}

// Issue implements the paper's issue() primitive: it blocks until a committed
// result for the request is delivered, ctx is cancelled (the model's client
// crash), or the client is stopped. It returns the committed result.
func (c *Client) Issue(ctx context.Context, request []byte) ([]byte, error) {
	c.mu.Lock()
	if c.issuing {
		c.mu.Unlock()
		return nil, ErrBusy
	}
	c.issuing = true
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.issuing = false
		c.mu.Unlock()
	}()

	start := time.Now()
	primary := c.cfg.AppServers[0]
	for try := uint64(1); ; try++ {
		rid := id.ResultID{Client: c.cfg.Self, Seq: seq, Try: try}
		ch := make(chan msg.Decision, 1)
		c.mu.Lock()
		c.waitRID = rid
		c.waitCh = ch
		c.mu.Unlock()

		req := msg.Request{RID: rid, Body: request}
		// Initial send to the default primary only (failure-free fast path).
		if err := c.cfg.Endpoint.Send(msg.Envelope{To: primary, Payload: req}); err != nil {
			return nil, fmt.Errorf("core: issue: %w", err)
		}

		dec, err := c.awaitDecision(ctx, rid, req, ch)
		if err != nil {
			return nil, err
		}
		if dec.Outcome == msg.OutcomeCommit {
			c.cfg.Hooks.span(rid, SpanTotal, time.Since(start))
			c.deliveredMu.Lock()
			c.delivered = append(c.delivered, Delivery{RID: rid, Result: dec.Result, Tries: try})
			c.deliveredMu.Unlock()
			return dec.Result, nil
		}
		// Abort: step to the next try (Figure 2, line 10).
	}
}

// awaitDecision waits for the decision of rid: first a back-off period
// listening for the primary, then a broadcast to all application servers,
// repeated every Rebroadcast interval.
func (c *Client) awaitDecision(ctx context.Context, rid id.ResultID, req msg.Request, ch chan msg.Decision) (msg.Decision, error) {
	timer := time.NewTimer(c.cfg.Backoff)
	defer timer.Stop()
	for {
		select {
		case dec := <-ch:
			return dec, nil
		case <-timer.C:
			// Back-off expired: send to every application server (Figure 2,
			// line 6), and keep re-sending — the practical form of the
			// paper's reliable-channel retransmission.
			if err := transport.Broadcast(c.cfg.Endpoint, c.cfg.AppServers, req); err != nil {
				return msg.Decision{}, fmt.Errorf("core: issue broadcast: %w", err)
			}
			timer.Reset(c.cfg.Rebroadcast)
		case <-ctx.Done():
			return msg.Decision{}, fmt.Errorf("core: issue %s: %w", rid, ctx.Err())
		case <-c.ctx.Done():
			return msg.Decision{}, errors.New("core: client stopped")
		}
	}
}
