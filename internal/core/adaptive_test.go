package core

import (
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// captureEP is a transport.Endpoint that records what Send emits.
type captureEP struct {
	self id.NodeID
	ch   chan msg.Envelope
}

func newCaptureEP(self id.NodeID) *captureEP {
	return &captureEP{self: self, ch: make(chan msg.Envelope, 256)}
}

func (c *captureEP) ID() id.NodeID { return c.self }
func (c *captureEP) Send(env msg.Envelope) error {
	c.ch <- env
	return nil
}
func (c *captureEP) Recv() <-chan msg.Envelope { return c.ch }
func (c *captureEP) Close() error              { return nil }

var _ transport.Endpoint = (*captureEP)(nil)

// TestAdaptiveCap pins the window-sizing curve: collapse to 1 at depth <= 1,
// then at least 8 and roughly 2x the depth, never past the configured cap.
func TestAdaptiveCap(t *testing.T) {
	cases := []struct {
		configured, depth, want int
	}{
		{64, 0, 1},
		{64, 1, 1},
		{64, 2, 8},  // floor: small pipelines still batch usefully
		{64, 4, 8},  // 2*4 = 8, at the floor
		{64, 8, 16}, // 2x headroom over the observed depth
		{64, 32, 64},
		{64, 64, 64}, // clamped to the configured cap
		{4, 64, 4},   // the configured cap always wins
	}
	for _, c := range cases {
		if got := adaptiveCap(c.configured, c.depth); got != c.want {
			t.Errorf("adaptiveCap(%d, %d) = %d, want %d", c.configured, c.depth, got, c.want)
		}
	}
}

// TestOutAggCollapsesAtDepthOne: with a depth sampler reporting a lone
// request, an hour-long window must add zero latency — the message flushes
// immediately, unbatched, exactly as if aggregation were off.
func TestOutAggCollapsesAtDepthOne(t *testing.T) {
	ep := newCaptureEP(id.AppServer(1))
	agg := newOutAgg(ep, time.Hour, 64)
	agg.depth = func() int { return 1 }
	defer agg.stop()

	db := id.DBServer(1)
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	agg.send(db, msg.Prepare{RID: rid})

	select {
	case env := <-ep.ch:
		if env.To != db {
			t.Errorf("To = %v", env.To)
		}
		if p, ok := env.Payload.(msg.Prepare); !ok || p.RID != rid {
			t.Errorf("payload = %#v, want the unbatched Prepare", env.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("depth-1 send buffered behind the window instead of flushing")
	}
}

// TestOutAggWidensAtDepth64: a deep pipeline must fill the full configured
// cap and leave as one msg.Batch — no premature flushes fragmenting it.
func TestOutAggWidensAtDepth64(t *testing.T) {
	const capMsgs = 64
	ep := newCaptureEP(id.AppServer(1))
	agg := newOutAgg(ep, time.Hour, capMsgs)
	agg.depth = func() int { return 64 }
	defer agg.stop()

	db := id.DBServer(1)
	for i := 0; i < capMsgs-1; i++ {
		rid := id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}
		agg.send(db, msg.Prepare{RID: rid})
	}
	select {
	case env := <-ep.ch:
		t.Fatalf("flushed %#v before the cap was reached", env.Payload)
	case <-time.After(50 * time.Millisecond):
	}

	rid := id.ResultID{Client: id.Client(1), Seq: capMsgs - 1, Try: 1}
	agg.send(db, msg.Prepare{RID: rid})
	select {
	case env := <-ep.ch:
		b, ok := env.Payload.(msg.Batch)
		if !ok {
			t.Fatalf("payload = %#v, want one msg.Batch", env.Payload)
		}
		if len(b.Msgs) != capMsgs {
			t.Errorf("batch carries %d msgs, want %d", len(b.Msgs), capMsgs)
		}
		for i, p := range b.Msgs {
			if pr, ok := p.(msg.Prepare); !ok || pr.RID.Seq != uint64(i) {
				t.Errorf("batch msg %d = %#v: order not preserved", i, p)
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cap-filling send never flushed")
	}
}

// TestOutAggAdaptiveNeverReorders: alternating sampled depths (a burst
// draining to a lone request and back) must never reorder messages to the
// same destination — the collapse is append-then-flush, not a bypass. The
// hour-long window keeps every flush on the sending goroutine, so arrival
// order is deterministic and any bypass would surface as a jumped sequence.
func TestOutAggAdaptiveNeverReorders(t *testing.T) {
	depth := 8
	ep := newCaptureEP(id.AppServer(1))
	agg := newOutAgg(ep, time.Hour, 64)
	agg.depth = func() int { return depth }
	defer agg.stop()

	db := id.DBServer(1)
	const total = 199 // last index is a depth-1 flush point: nothing left buffered
	go func() {
		for i := 0; i < total; i++ {
			if i%3 == 0 {
				depth = 1 // flush point: everything buffered leaves now
			} else {
				depth = 8
			}
			rid := id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}
			agg.send(db, msg.Prepare{RID: rid})
		}
	}()

	next := uint64(0)
	deadline := time.After(10 * time.Second)
	for next < total {
		select {
		case env := <-ep.ch:
			var msgs []msg.Payload
			switch p := env.Payload.(type) {
			case msg.Batch:
				msgs = p.Msgs
			default:
				msgs = []msg.Payload{p}
			}
			for _, p := range msgs {
				pr, ok := p.(msg.Prepare)
				if !ok {
					t.Fatalf("payload %#v", p)
				}
				if pr.RID.Seq != next {
					t.Fatalf("seq %d arrived when %d was expected: reordered", pr.RID.Seq, next)
				}
				next++
			}
		case <-deadline:
			t.Fatalf("only %d/%d messages arrived", next, total)
		}
	}
}
