package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/xadb"
)

// plannerBatch builds a representative drained batch: several tries from
// several clients, each issuing a few operations over a small hot key set,
// plus keyless cost-model work.
func plannerBatch() []execJob {
	var jobs []execJob
	keys := []string{"acct/a", "acct/b", "acct/c"}
	for cl := 1; cl <= 3; cl++ {
		for seq := uint64(1); seq <= 4; seq++ {
			rid := id.ResultID{Client: id.Client(cl), Seq: seq, Try: 1}
			for call := uint64(1); call <= 3; call++ {
				op := msg.Op{Code: msg.OpAdd, Key: keys[int(seq+call)%len(keys)], Delta: 1}
				if call == 3 {
					op = msg.Op{Code: msg.OpSleep} // keyless: no conflict footprint
				}
				jobs = append(jobs, execJob{from: id.AppServer(cl), m: msg.Exec{RID: rid, CallID: call, Op: op}})
			}
		}
	}
	return jobs
}

// TestPlanBatchDeterministic is the planner property test: planning is a pure
// function of the batch's *contents* — re-planning the same batch, or
// planning any permutation of it (two replicas drain the same operations in
// different arrival orders), yields the identical plan: same keys in the same
// order, same per-key queue orders, same keyless residue set.
func TestPlanBatchDeterministic(t *testing.T) {
	base := plannerBatch()
	wantKeyed, wantKeyless := planBatch(append([]execJob(nil), base...))

	// Re-planning the identical batch is exact, keyless order included.
	againKeyed, againKeyless := planBatch(append([]execJob(nil), base...))
	if !reflect.DeepEqual(wantKeyed, againKeyed) || !reflect.DeepEqual(wantKeyless, againKeyless) {
		t.Fatal("re-planning the same batch produced a different plan")
	}

	keylessSet := func(js []execJob) map[string]bool {
		m := make(map[string]bool, len(js))
		for _, j := range js {
			m[fmt.Sprintf("%+v", j.m)] = true
		}
		return m
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]execJob(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		keyed, keyless := planBatch(perm)
		if !reflect.DeepEqual(wantKeyed, keyed) {
			t.Fatalf("trial %d: permuted batch planned differently:\nwant %+v\ngot  %+v", trial, wantKeyed, keyed)
		}
		// Keyless operations have no ordering contract (the worker pool is
		// unordered), only a membership one.
		if !reflect.DeepEqual(keylessSet(wantKeyless), keylessSet(keyless)) {
			t.Fatalf("trial %d: keyless residue diverged", trial)
		}
	}

	// The plan's own invariants: keys strictly ascending, per-key jobs in
	// strictly ascending (ResultID, CallID) priority, nothing lost.
	total := 0
	for i, p := range wantKeyed {
		if i > 0 && wantKeyed[i-1].key >= p.key {
			t.Errorf("plan keys out of order: %q before %q", wantKeyed[i-1].key, p.key)
		}
		total += len(p.jobs)
		for j := 1; j < len(p.jobs); j++ {
			if !execPriority(p.jobs[j-1], p.jobs[j]) {
				t.Errorf("key %q: jobs %d,%d out of priority order", p.key, j-1, j)
			}
			if p.jobs[j].m.Op.Key != p.key {
				t.Errorf("key %q holds a job for key %q", p.key, p.jobs[j].m.Op.Key)
			}
		}
	}
	if total+len(wantKeyless) != len(base) {
		t.Errorf("plan covers %d+%d jobs, batch had %d", total, len(wantKeyless), len(base))
	}
}

// TestPlanExecutionReplicasByteIdentical is the replica-determinism half of
// the property: two independent queue-mode engines that execute the same
// plan — per-key order respected, but the keys themselves visited in
// *opposite* orders, as two replicas' schedulers legitimately may — and then
// commit the tries in ResultID order, end in byte-identical stores.
func TestPlanExecutionReplicasByteIdentical(t *testing.T) {
	batch := plannerBatch()
	keyed, _ := planBatch(append([]execJob(nil), batch...))

	seed := []kv.Write{
		{Key: "acct/a", Val: kv.EncodeInt(100)},
		{Key: "acct/b", Val: kv.EncodeInt(100)},
		{Key: "acct/c", Val: kv.EncodeInt(100)},
	}
	run := func(reverseKeys bool) []kv.Write {
		e, err := xadb.Open(stablestore.New(0), xadb.Config{Self: id.DBServer(1), QueueExec: true})
		if err != nil {
			t.Fatal(err)
		}
		e.Seed(seed)
		ctx := context.Background()
		plan := append([]keyPlan(nil), keyed...)
		if reverseKeys {
			for i, j := 0, len(plan)-1; i < j; i, j = i+1, j-1 {
				plan[i], plan[j] = plan[j], plan[i]
			}
		}
		rids := make(map[id.ResultID]bool)
		for _, p := range plan {
			for _, j := range p.jobs {
				if rep := e.Exec(ctx, j.m.RID, j.m.Op); !rep.OK {
					t.Fatalf("exec %v on %q failed: %s", j.m.RID, p.key, rep.Err)
				}
				rids[j.m.RID] = true
			}
		}
		// Commit in ResultID order — the total order the commit path's
		// consensus fixes — so every vote gate's predecessors are decided
		// before the vote is requested.
		var order []id.ResultID
		for rid := range rids {
			order = append(order, rid)
		}
		for i := range order {
			for j := i + 1; j < len(order); j++ {
				if order[j].Less(order[i]) {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, rid := range order {
			if v := e.Vote(rid); v != msg.VoteYes {
				t.Fatalf("vote %v = %v, want yes", rid, v)
			}
			if o := e.Decide(rid, msg.OutcomeCommit); o != msg.OutcomeCommit {
				t.Fatalf("decide %v = %v, want commit", rid, o)
			}
		}
		if st := e.LockStats(); st.Acquires != 0 {
			t.Fatalf("queue-mode engine acquired %d locks", st.Acquires)
		}
		return e.Store().Snapshot()
	}

	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("replica snapshots differ in size: %d vs %d keys", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || !bytes.Equal(a[i].Val, b[i].Val) {
			t.Errorf("replica state diverged at %q: %x vs %q=%x", a[i].Key, a[i].Val, b[i].Key, b[i].Val)
		}
	}
	// Sanity: the run did something — the snapshot differs from the seed.
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", seed) {
		t.Error("execution left the seed untouched; the batch was not applied")
	}
}
