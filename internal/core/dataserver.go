package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/id"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/queue"
	"etx/internal/repl"
	"etx/internal/transport"
	"etx/internal/xadb"
)

// DataServerConfig parameterizes a database-server process.
type DataServerConfig struct {
	// Self identifies the server.
	Self id.NodeID
	// AppServers is the middle tier (recipients of Ready notifications).
	AppServers []id.NodeID
	// Engine is the opened transactional engine (recovery already ran in
	// xadb.Open).
	Engine *xadb.Engine
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Recovery distinguishes a recovery start from the initial start, like
	// the recovery parameter of Figure 3: when true the server announces
	// [Ready] to all application servers.
	Recovery bool
	// MaxBatch caps how many queued messages one drain of the mailbox serves
	// as a group: the Prepares and Decides of a drained batch share one
	// forced log write through the engine's batched entry points, and their
	// votes/acks travel back in one Batch envelope per application server.
	// Values <= 1 (the default) serve every message individually — the
	// pre-group-commit behaviour.
	MaxBatch int
	// ExecWorkers sizes the pool serving business-data operations. Execs run
	// off the serve loop because one blocked on a lock must not delay the
	// Decide(abort) that would release it; a fixed pool keeps that isolation
	// without spawning a goroutine per operation on the hot path. Defaults
	// to 64 (worst case a pool's worth of lock-waiters delays further Execs,
	// never votes or decides). In queue mode the pool serves only keyless
	// operations; keyed ones run on per-key runners.
	ExecWorkers int
	// QueueExec switches the server to queue-oriented deterministic batch
	// execution: each mailbox drain's data operations are planned into
	// per-key FIFO queues executed without lock-manager acquisition (per-key
	// serial, disjoint keys parallel; see planner.go), and snapshot reads
	// are answered at the batch boundary. Forced on when the engine itself
	// runs in queue mode — a speculative engine without the planner's
	// per-key serialization would be unsound. Off — the default — keeps the
	// paper-exact lock-managed execution.
	QueueExec bool
	// Repl, when the shard is replicated, is the primary's record streamer:
	// the server routes incoming msg.ReplAck to it. Nil on an unreplicated
	// server (and on every deployment with ReplicaFactor 1).
	Repl *repl.Streamer
	// Epoch is the shard epoch this server serves at: 1 for a boot primary,
	// the promotion epoch for a promoted backup. NewPrimary announcements
	// depose the server only when they carry a later epoch (or the same
	// epoch from a lower-id winner of a concurrent-promotion tie). Zero
	// defaults to 1.
	Epoch uint64
}

// DataServer is the paper's database-server process (Figure 3): a pure
// server that votes on and decides results, and additionally executes the
// business logic's data operations (the paper folds those into compute()).
type DataServer struct {
	cfg DataServerConfig

	execQ *queue.Queue[execJob]

	// Per-key run queues of the queue-execution mode (planner.go).
	runMu sync.Mutex
	runs  map[string]*keyRun

	// Queue-execution counters (snapshot via Stats).
	plannedBatches metrics.Counter
	plannedOps     metrics.Counter
	snapReads      metrics.Counter
	gatedVotes     metrics.Counter

	// lastServe is the wall-clock nanosecond of the most recent mailbox
	// activity, read by Drain to find a quiet point for graceful shutdown.
	lastServe atomic.Int64

	// deposed is set when a NewPrimary announcement names another node as
	// this shard's primary: a later epoch exists, so this server stops
	// serving the 2PC surface (its in-flight votes are already rejected by
	// the application tier's epoch guard; the flag just stops it burning
	// work and, on a false suspicion, ends the split-brain window).
	deposed atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// DataServerStats is a snapshot of the server's queue-execution counters.
type DataServerStats struct {
	// PlannedBatches counts mailbox drains that went through the planner.
	PlannedBatches uint64
	// PlannedOps counts keyed operations routed through per-key run queues.
	PlannedOps uint64
	// SnapReads counts read-only fast-path answers served at batch
	// boundaries.
	SnapReads uint64
	// GatedVotes counts votes resolved off the drain path because chain
	// predecessors were still undecided.
	GatedVotes uint64
}

// Stats snapshots the queue-execution counters (all zero with QueueExec
// off).
func (d *DataServer) Stats() DataServerStats {
	return DataServerStats{
		PlannedBatches: d.plannedBatches.Load(),
		PlannedOps:     d.plannedOps.Load(),
		SnapReads:      d.snapReads.Load(),
		GatedVotes:     d.gatedVotes.Load(),
	}
}

// String renders the counters for liveness dumps.
func (s DataServerStats) String() string {
	return fmt.Sprintf("queue{batches=%d ops=%d snapreads=%d gated=%d}",
		s.PlannedBatches, s.PlannedOps, s.SnapReads, s.GatedVotes)
}

// DebugStats renders the server's execution-mode counters next to the
// engine's lock-contention and speculation stats, for liveness diagnostics
// and bench reports.
func (d *DataServer) DebugStats() string {
	return fmt.Sprintf("%s: %s locks{%s} %s",
		d.cfg.Self, d.Stats(), d.cfg.Engine.LockStats(), d.cfg.Engine.SpecStats())
}

// execJob is one queued business-data operation.
type execJob struct {
	from id.NodeID
	m    msg.Exec
}

// NewDataServer creates a database-server process. Call Start to run it.
func NewDataServer(cfg DataServerConfig) (*DataServer, error) {
	if cfg.Engine == nil {
		return nil, errors.New("core: DataServer needs an Engine")
	}
	if cfg.Endpoint == nil {
		return nil, errors.New("core: DataServer needs an Endpoint")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1
	}
	if cfg.ExecWorkers <= 0 {
		cfg.ExecWorkers = 64
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.Engine.QueueExec() {
		// A speculative engine is only sound under the planner's per-key
		// serialization; never run one behind the lock-mode exec pool.
		cfg.QueueExec = true
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &DataServer{
		cfg:    cfg,
		execQ:  queue.New[execJob](),
		runs:   make(map[string]*keyRun),
		ctx:    ctx,
		cancel: cancel,
	}
	d.lastServe.Store(time.Now().UnixNano())
	return d, nil
}

// Start launches the server loop. If this is a recovery start it first
// notifies all application servers with [Ready] (Figure 3, lines 1-2).
func (d *DataServer) Start() {
	if d.cfg.Recovery {
		_ = transport.Broadcast(d.cfg.Endpoint, d.cfg.AppServers,
			msg.Ready{Inc: d.cfg.Engine.Incarnation()})
	}
	d.wg.Add(1)
	go d.loop()
	for i := 0; i < d.cfg.ExecWorkers; i++ {
		d.wg.Add(1)
		go d.execWorker()
	}
}

// Stop terminates the server loop and waits for in-flight handlers.
func (d *DataServer) Stop() {
	d.cancel()
	d.execQ.Close()
	d.wg.Wait()
}

// Drain blocks until the server has been quiet — an empty mailbox and no
// message served — for the given period, or until max elapses. It is the
// graceful-shutdown half of Stop: a binary that traps SIGTERM calls Drain
// first so in-flight Prepare/Decide rounds finish and their forced log
// records land, then Stop, then a final stable-store Sync. Drain never
// rejects new work by itself; the operator is expected to have stopped (or
// be about to stop) the traffic source.
func (d *DataServer) Drain(quiet, max time.Duration) {
	if quiet <= 0 {
		quiet = 50 * time.Millisecond
	}
	deadline := time.Now().Add(max)
	for {
		idle := time.Duration(time.Now().UnixNano() - d.lastServe.Load())
		if idle >= quiet && len(d.cfg.Endpoint.Recv()) == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			return
		}
		wait := quiet - idle
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-time.After(wait):
		case <-d.ctx.Done():
			return
		}
	}
}

// execWorker serves queued business-data operations.
func (d *DataServer) execWorker() {
	defer d.wg.Done()
	for {
		for {
			job, ok := d.execQ.Pop()
			if !ok {
				break
			}
			rep := d.cfg.Engine.Exec(d.ctx, job.m.RID, job.m.Op)
			d.reply(job.from, msg.ExecReply{RID: job.m.RID, CallID: job.m.CallID, Rep: rep, Inc: d.cfg.Engine.Incarnation()})
		}
		if d.execQ.Closed() {
			return
		}
		select {
		case <-d.execQ.Out():
		case <-d.ctx.Done():
			return
		}
	}
}

// Engine exposes the underlying engine (tests, oracles).
func (d *DataServer) Engine() *xadb.Engine { return d.cfg.Engine }

// Deposed reports whether a later-epoch primary has taken this server's
// shard over (tests assert a falsely suspected primary fences itself).
func (d *DataServer) Deposed() bool { return d.deposed.Load() }

func (d *DataServer) loop() {
	defer d.wg.Done()
	for {
		select {
		case env, ok := <-d.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			batch := d.drain(env)
			d.lastServe.Store(time.Now().UnixNano())
			// Each drained batch is served on its own goroutine, and Execs
			// get further goroutines of their own: an Exec blocked on a lock
			// must not delay the Decide(abort) that would release it.
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				d.serveBatch(batch)
			}()
		case <-d.ctx.Done():
			return
		}
	}
}

// drain opportunistically empties the mailbox behind first, up to the batch
// cap, without blocking: whatever queued up while the previous batch was
// being served is exactly the group-commit cohort. The cap counts messages,
// not envelopes — a Batch envelope counts as its member count, so an
// aggregating middle tier cannot inflate one engine batch to cap² messages
// (the last envelope may overshoot the cap by its own size).
func (d *DataServer) drain(first msg.Envelope) []msg.Envelope {
	batch := []msg.Envelope{first}
	n := msgCount(first)
	for n < d.cfg.MaxBatch {
		select {
		case env, ok := <-d.cfg.Endpoint.Recv():
			if !ok {
				return batch
			}
			batch = append(batch, env)
			n += msgCount(env)
		default:
			return batch
		}
	}
	return batch
}

// msgCount is an envelope's weight against the drain cap.
func msgCount(env msg.Envelope) int {
	if b, ok := env.Payload.(msg.Batch); ok {
		return len(b.Msgs)
	}
	return 1
}

// serveBatch serves one drained batch: Batch envelopes are flattened, the
// Prepares and Decides are run through the engine's batched entry points so
// their records share one forced write, and replies to the same application
// server coalesce into one Batch envelope. Decides run before Prepares so an
// abort releases locks a vote in the same batch may be queued behind.
func (d *DataServer) serveBatch(envs []msg.Envelope) {
	var prepFrom, decFrom []id.NodeID
	var prepRIDs []id.ResultID
	var decReqs []xadb.DecideReq
	var execs []execJob // queue mode: planned after the drain is demuxed
	var snapFrom []id.NodeID
	var snaps []msg.Exec // queue mode: answered at the batch boundary

	handle := func(from id.NodeID, p msg.Payload) {
		switch m := p.(type) {
		case msg.Exec:
			if d.deposed.Load() {
				return // fenced: a later-epoch primary serves this shard now
			}
			switch {
			case d.cfg.QueueExec && m.Op.Code == msg.OpSnapRead:
				snapFrom = append(snapFrom, from)
				snaps = append(snaps, m)
			case d.cfg.QueueExec:
				execs = append(execs, execJob{from: from, m: m})
			default:
				d.execQ.Push(execJob{from: from, m: m})
			}
		case msg.Prepare:
			if d.deposed.Load() {
				return
			}
			prepFrom = append(prepFrom, from)
			prepRIDs = append(prepRIDs, m.RID)
		case msg.Decide:
			if d.deposed.Load() {
				return
			}
			decFrom = append(decFrom, from)
			decReqs = append(decReqs, xadb.DecideReq{RID: m.RID, O: m.O})
		case msg.Commit1P:
			if d.deposed.Load() {
				return
			}
			// Single-phase commit for the unreliable baseline (Figure 7a).
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				o := d.cfg.Engine.CommitDirect(m.RID)
				d.reply(from, msg.AckDecide{RID: m.RID, O: o})
			}()
		case msg.ReplAck:
			if d.cfg.Repl != nil {
				d.cfg.Repl.HandleAck(from, m)
			}
		case msg.NewPrimary:
			// Only replica-group members and stale claimants receive this.
			// Another node announcing a strictly later epoch owns the shard:
			// fence ourselves. Concurrent false suspicions can promote two
			// backups at the SAME epoch; the tie resolves to the lower node
			// id (group rank is ascending id), so exactly one of the two
			// deposes and the other keeps serving — matching the tie-break
			// placement.View.Advance applies on the application servers.
			if m.Primary != d.cfg.Self &&
				(m.Epoch > d.cfg.Epoch ||
					(m.Epoch == d.cfg.Epoch && m.Primary.Index < d.cfg.Self.Index)) {
				d.deposed.Store(true)
			}
		case msg.Request, msg.Result, msg.Heartbeat, msg.Estimate, msg.Propose,
			msg.CAck, msg.CNack, msg.CDecision, msg.Checkpoint, msg.VoteMsg,
			msg.AckDecide, msg.Ready, msg.ExecReply, msg.RegOps,
			msg.RData, msg.RAck, msg.Batch, msg.PBStart, msg.PBStartAck,
			msg.PBOutcome, msg.PBOutcomeAck, msg.ReplRecord:
			// Database servers are pure servers: requests/results belong to
			// the client edge, consensus and register traffic to the
			// application tier, RData/RAck/Batch to the transport layers
			// below this demux, PB* to the primary-backup baseline, and
			// ReplRecord to backup appliers (a deposed predecessor's stale
			// stream is ignored here). Nested Batch payloads are flattened by
			// the caller, never here.
		}
	}
	for _, env := range envs {
		if b, ok := env.Payload.(msg.Batch); ok {
			for _, p := range b.Msgs {
				handle(env.From, p)
			}
			continue
		}
		handle(env.From, env.Payload)
	}

	replies := make(map[id.NodeID][]msg.Payload)
	if len(decReqs) > 0 || len(prepRIDs) > 0 {
		outs, votes, gated := d.cfg.Engine.DecideAndVoteBatchSpec(decReqs, prepRIDs)
		for i, o := range outs {
			replies[decFrom[i]] = append(replies[decFrom[i]], msg.AckDecide{RID: decReqs[i].RID, O: o})
		}
		skip := make(map[int]bool, len(gated))
		for _, i := range gated {
			skip[i] = true
		}
		for i, v := range votes {
			if skip[i] {
				continue
			}
			replies[prepFrom[i]] = append(replies[prepFrom[i]], msg.VoteMsg{RID: prepRIDs[i], V: v, Inc: d.cfg.Engine.Incarnation()})
		}
		// Gated votes (queue mode: chain predecessors still undecided)
		// resolve off the drain path, each on its own goroutine, so one
		// gated try cannot stall the rest of the batch's replies. The wait
		// inside Vote is bounded by the engine's lock-timeout.
		for _, i := range gated {
			d.gatedVotes.Inc()
			i := i
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				v := d.cfg.Engine.Vote(prepRIDs[i])
				d.reply(prepFrom[i], msg.VoteMsg{RID: prepRIDs[i], V: v, Inc: d.cfg.Engine.Incarnation()})
			}()
		}
	}
	for to, msgs := range replies {
		if len(msgs) == 1 {
			d.reply(to, msgs[0])
			continue
		}
		d.reply(to, msg.Batch{Msgs: msgs})
	}
	// Batch boundary: the drain's decides have applied, so the committed
	// store is a fully-executed-batch snapshot — answer the read-only fast
	// path from it, then hand the keyed operations to their run queues.
	for i, m := range snaps {
		d.snapReads.Inc()
		d.reply(snapFrom[i], msg.ExecReply{RID: m.RID, CallID: m.CallID,
			Rep: d.cfg.Engine.SnapRead(m.Op.Key), Inc: d.cfg.Engine.Incarnation()})
	}
	d.runPlanned(execs)
}

func (d *DataServer) reply(to id.NodeID, p msg.Payload) {
	_ = d.cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p})
}
