package core

import (
	"context"
	"errors"
	"sync"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
	"etx/internal/xadb"
)

// DataServerConfig parameterizes a database-server process.
type DataServerConfig struct {
	// Self identifies the server.
	Self id.NodeID
	// AppServers is the middle tier (recipients of Ready notifications).
	AppServers []id.NodeID
	// Engine is the opened transactional engine (recovery already ran in
	// xadb.Open).
	Engine *xadb.Engine
	// Endpoint is the server's network attachment.
	Endpoint transport.Endpoint
	// Recovery distinguishes a recovery start from the initial start, like
	// the recovery parameter of Figure 3: when true the server announces
	// [Ready] to all application servers.
	Recovery bool
}

// DataServer is the paper's database-server process (Figure 3): a pure
// server that votes on and decides results, and additionally executes the
// business logic's data operations (the paper folds those into compute()).
type DataServer struct {
	cfg DataServerConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewDataServer creates a database-server process. Call Start to run it.
func NewDataServer(cfg DataServerConfig) (*DataServer, error) {
	if cfg.Engine == nil {
		return nil, errors.New("core: DataServer needs an Engine")
	}
	if cfg.Endpoint == nil {
		return nil, errors.New("core: DataServer needs an Endpoint")
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &DataServer{cfg: cfg, ctx: ctx, cancel: cancel}, nil
}

// Start launches the server loop. If this is a recovery start it first
// notifies all application servers with [Ready] (Figure 3, lines 1-2).
func (d *DataServer) Start() {
	if d.cfg.Recovery {
		_ = transport.Broadcast(d.cfg.Endpoint, d.cfg.AppServers,
			msg.Ready{Inc: d.cfg.Engine.Incarnation()})
	}
	d.wg.Add(1)
	go d.loop()
}

// Stop terminates the server loop and waits for in-flight handlers.
func (d *DataServer) Stop() {
	d.cancel()
	d.wg.Wait()
}

// Engine exposes the underlying engine (tests, oracles).
func (d *DataServer) Engine() *xadb.Engine { return d.cfg.Engine }

func (d *DataServer) loop() {
	defer d.wg.Done()
	for {
		select {
		case env, ok := <-d.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			// Each message is served on its own goroutine: an Exec blocked on
			// a lock must not delay the Decide(abort) that would release it.
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				d.serve(env)
			}()
		case <-d.ctx.Done():
			return
		}
	}
}

func (d *DataServer) serve(env msg.Envelope) {
	reply := func(p msg.Payload) {
		_ = d.cfg.Endpoint.Send(msg.Envelope{To: env.From, Payload: p})
	}
	switch m := env.Payload.(type) {
	case msg.Exec:
		rep := d.cfg.Engine.Exec(d.ctx, m.RID, m.Op)
		reply(msg.ExecReply{RID: m.RID, CallID: m.CallID, Rep: rep, Inc: d.cfg.Engine.Incarnation()})
	case msg.Prepare:
		v := d.cfg.Engine.Vote(m.RID)
		reply(msg.VoteMsg{RID: m.RID, V: v, Inc: d.cfg.Engine.Incarnation()})
	case msg.Decide:
		o := d.cfg.Engine.Decide(m.RID, m.O)
		reply(msg.AckDecide{RID: m.RID, O: o})
	case msg.Commit1P:
		// Single-phase commit for the unreliable baseline (Figure 7a).
		o := d.cfg.Engine.CommitDirect(m.RID)
		reply(msg.AckDecide{RID: m.RID, O: o})
	default:
		// Database servers are pure servers: everything else is ignored.
	}
}
