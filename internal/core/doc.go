// Package core implements the paper's e-Transaction protocol — the client
// algorithm of Figure 2, the database-server algorithm of Figure 3, and the
// application-server algorithm of Figures 4-6 (compute thread, cleaning
// thread, prepare() and terminate()) — over the substrates in the sibling
// packages: wo-registers on Chandra–Toueg consensus, an eventually-perfect
// heartbeat failure detector, and XA database engines.
//
// The package generalizes the paper's single-client/single-request
// presentation in the ways DESIGN.md documents: registers and transaction
// branches are keyed by ResultID (client, request sequence, try), the client
// rebroadcasts periodically instead of waiting forever after its first
// broadcast, and the cleaning thread scans the set of register keys the
// replica has seen instead of an unbounded array.
//
// With a batch window configured the commit path additionally runs group
// commit end to end: application servers aggregate Prepare/Decide fan-out to
// the same participant into msg.Batch envelopes, database servers drain
// their mailbox and serve those rounds through the engine's batched entry
// points, and the stable store combines the resulting forced writes into
// shared fsyncs. Batching changes no span semantics — SpanPrepare and
// SpanCommit still bound the same exchanges; the shared fsync simply makes
// them cheaper per request — so the Figure 8 rows remain comparable with
// batching on or off.
//
// AppServerConfig.AdaptiveWindows makes every batching knob self-tuning: the
// server samples its own in-flight request depth (EWMA-smoothed) and sizes
// the outbound-aggregation cap, the cohort-sequencer cap and hold, and the
// store's group-commit window to it — collapsing to unbatched behaviour for
// a lone request, widening toward the configured caps under pipelining.
// Adaptation changes timing only, never protocol semantics: the messages,
// register writes and forced-log rules are identical at every depth, so a
// deployment with windows at 0 and adaptation off remains exactly the
// paper's protocol, and an adaptive one is the same protocol with different
// batch boundaries.
//
// The database server runs one of two execution modes. Lock mode (the
// default) is the paper's discipline: strict two-phase locking in the engine,
// an exclusive lock held from a key's first Exec until Decide. Queue mode
// (DataServerConfig.QueueExec, forced on when the engine itself was opened
// speculative) plans every drained mailbox batch into per-key FIFO run queues
// ordered deterministically — try order by ResultID, call order within a
// try — and drains each key's queue with a dedicated runner goroutine,
// disjoint keys in parallel, with zero lock-manager acquisitions; the
// engine's commitment-time vote gates (internal/xadb/spec.go) keep the
// speculation sound. OpSnapRead operations are split out of the drain and
// answered at the batch boundary, after the drain's decides apply, so
// Tx.GetFast sees a consistent last-executed-batch snapshot without entering
// the commit path. The planner lives in planner.go; Stats counts its batches
// and operations, snapshot reads and gated votes.
//
// On a replicated data tier (internal/repl) recovery has a second entry
// point. A shard primary streams every log record it appends to its group's
// backup appliers; when the primary is suspected, the promoted backup runs
// the *same* recovery path as a restarted server — replay the write-ahead
// log, re-seed in-doubt branches with their locks, announce the new
// incarnation — except the log it replays is the one the stream built on its
// own stable store. The data server then guards the 2PC surface with a
// deposed flag (a NewPrimary announcement naming another node stops it
// serving Exec/Prepare/Decide), and the application server routes through
// the shared placement.View: outgoing messages to a boot identity are
// translated to the shard's current primary, incoming votes/acks/replies
// from a stale primary are rejected by epoch (AppServerStats.StaleRejects)
// and answered with a correction, and Exec calls re-send — to the new target
// only, never twice to the same node — when the view changes under a
// bounded-backoff retry loop. None of this machinery exists when the
// deployment is unreplicated: AppServerConfig.View and
// DataServerConfig.Repl are nil and every code path is the paper's.
//
// Memory is bounded by two garbage-collection layers, both extensions of
// the treatment the paper defers in Section 5. Per request, Retire discards
// the commit cache, cleaning dedup entries and both wo-registers of every
// try — including undecided register instances, via the consensus layer's
// Abandon — once the client is known past retransmitting. Per batch-log
// slot (cohort consensus), AppServerConfig.RetainSlots switches on the
// watermark protocol: every server piggybacks its applied slot watermark on
// consensus messages and heartbeats, decided slots below the cluster-wide
// minimum minus the retention tail are truncated, and a replica that falls
// below the truncation floor is caught up by checkpoint state transfer
// (msg.Checkpoint) instead of decision replay. DebugTry prints the applied
// watermark, floor and live-slot gauge with the consensus counters.
//
// The package's concurrency and wire conventions are machine-checked by the
// etxlint suite (internal/lint, run via cmd/etxlint and CI's lint job):
// fields annotated `// guarded by mu` must be touched only under that
// mutex and no blocking call may run while one is held (lockheld), the
// demux switches over msg.Payload must stay exhaustive — ignored kinds are
// listed explicitly, never left to default (kindswitch) — and wall-clock
// reads are confined to injected clocks outside the protocol-identity
// packages (wallclock).
//
// One of those conventions is load-bearing enough to state as an invariant
// here: epoch fencing. Any message that carries an Epoch, Inc(arnation) or
// WM field is an assertion about *when* its sender held a role, and a
// handler must compare that field against its local fenced state — the
// shard epoch adopted from the last NewPrimary, the incarnation from the
// last announcement, the applied watermark — before letting the message
// mutate anything. Asynchrony means a deposed primary's votes, stream
// records and heartbeats can arrive arbitrarily late; a handler that
// applies them unfenced resurrects the old incarnation's authority and
// splits the group (the PR 9 stale-primary-vote bug was exactly this).
// The epochfence analyzer enforces the shape mechanically: fence first,
// or delegate the whole payload to a function that does, or carry an
// //etxlint:allow epochfence annotation explaining why fencing happened
// upstream.
package core

import (
	"time"

	"etx/internal/id"
)

// Span names the protocol components whose latency the hooks report; they
// correspond 1:1 to the rows of the paper's Figure 8.
type Span string

// Spans reported by the application server and client.
const (
	// SpanSQL is the business logic's data manipulation (Figure 8 "SQL").
	SpanSQL Span = "SQL"
	// SpanPrepare is the voting round at the databases (Figure 8 "prepare").
	SpanPrepare Span = "prepare"
	// SpanCommit is the decide/ack round at the databases (Figure 8 "commit").
	SpanCommit Span = "commit"
	// SpanLogStart is recording who executes the try: the regA write for the
	// replicated protocol, the forced start record for 2PC (Figure 8
	// "log-start").
	SpanLogStart Span = "log-start"
	// SpanLogOutcome is recording the decision: the regD write for the
	// replicated protocol, the forced outcome record for 2PC (Figure 8
	// "log-outcome").
	SpanLogOutcome Span = "log-outcome"
	// SpanStart and SpanEnd are the client-side request marshalling and
	// result delivery costs (Figure 8 "start"/"end").
	SpanStart Span = "start"
	SpanEnd   Span = "end"
	// SpanTotal is the client-observed end-to-end latency.
	SpanTotal Span = "total"
)

// CrashPoint names instants in the executor's path where tests inject
// crashes; they correspond to the failure scenarios of Figure 1 (c) and (d)
// and the failover experiment grid.
type CrashPoint string

// Crash points, in protocol order.
const (
	PointBeforeRegA   CrashPoint = "before-regA"
	PointAfterRegA    CrashPoint = "after-regA"
	PointAfterCompute CrashPoint = "after-compute"
	PointAfterPrepare CrashPoint = "after-prepare"
	PointAfterRegD    CrashPoint = "after-regD"
	PointBeforeResult CrashPoint = "before-result"
)

// Hooks carries optional instrumentation. All fields may be nil.
type Hooks struct {
	// Span reports a component latency for one try.
	Span func(rid id.ResultID, span Span, d time.Duration)
	// Crash is called at each CrashPoint of the executor path; tests use it
	// to take the server down at exact protocol instants.
	Crash func(point CrashPoint, rid id.ResultID)
}

func (h *Hooks) span(rid id.ResultID, s Span, d time.Duration) {
	if h != nil && h.Span != nil {
		h.Span(rid, s, d)
	}
}

// timing reports whether span measurements are consumed at all: the executor
// path skips its time.Now pairs otherwise (they are measurable overhead on
// the batched hot path).
func (h *Hooks) timing() bool { return h != nil && h.Span != nil }

// now returns the current time when spans are consumed, and the zero time
// otherwise.
func (h *Hooks) now() time.Time {
	if h.timing() {
		return time.Now()
	}
	return time.Time{}
}

// since mirrors time.Since for timestamps produced by now.
func (h *Hooks) since(rid id.ResultID, s Span, t0 time.Time) {
	if h.timing() {
		h.Span(rid, s, time.Since(t0))
	}
}

func (h *Hooks) crash(p CrashPoint, rid id.ResultID) {
	if h != nil && h.Crash != nil {
		h.Crash(p, rid)
	}
}
