package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/xadb"
)

// TestClientSlowTryDiagnostics: a try that burns half its deadline with no
// decision fires the SlowTry hook exactly once per try, roughly at the
// halfway point, with the stalled try's identity.
func TestClientSlowTryDiagnostics(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	// No server is attached: the request stalls forever.
	var fired atomic.Int32
	var gotRID atomic.Value
	cl, err := NewClient(ClientConfig{
		Self:       id.Client(1),
		AppServers: []id.NodeID{id.AppServer(1)},
		Endpoint:   ep,
		Backoff:    10 * time.Millisecond,
		SlowTry: func(rid id.ResultID, waited time.Duration) {
			fired.Add(1)
			gotRID.Store(rid)
			if waited < 100*time.Millisecond {
				t.Errorf("SlowTry fired after only %v", waited)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("stall")); err == nil {
		t.Fatal("Issue succeeded with no server attached")
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("SlowTry fired %d times in %v, want 1", got, time.Since(start))
	}
	rid, _ := gotRID.Load().(id.ResultID)
	if rid.Client != id.Client(1) || rid.Seq != 1 || rid.Try != 1 {
		t.Errorf("SlowTry rid = %v", rid)
	}
}

// TestClientSlowTryFiresOnRetryLivelock: a hang made of many quick aborted
// tries (no single try ever waits long) must still fire the diagnostics at
// half the request's budget — the soak-test stall can take either shape.
func TestClientSlowTryFiresOnRetryLivelock(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	// A server that aborts every try immediately.
	srvEP := attach(t, net, id.AppServer(1))
	go func() {
		for env := range srvEP.Recv() {
			req, ok := env.Payload.(msg.Request)
			if !ok {
				continue
			}
			srvEP.Send(msg.Envelope{To: env.From, Payload: msg.Result{
				RID: req.RID, Dec: msg.Decision{Outcome: msg.OutcomeAbort}}})
		}
	}()
	var fired atomic.Int32
	cl, err := NewClient(ClientConfig{
		Self:       id.Client(1),
		AppServers: []id.NodeID{id.AppServer(1)},
		Endpoint:   ep,
		Backoff:    5 * time.Millisecond,
		SlowTry:    func(id.ResultID, time.Duration) { fired.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("livelock")); err == nil {
		t.Fatal("Issue succeeded against an always-abort server")
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("SlowTry fired %d times across the aborted tries, want 1", got)
	}
}

// TestClientSlowTrySilentOnFastPath: a request that commits promptly never
// triggers the diagnostics.
func TestClientSlowTrySilentOnFastPath(t *testing.T) {
	net := testNet(t)
	ep := attach(t, net, id.Client(1))
	echoServer(t, net, id.AppServer(1))
	var fired atomic.Int32
	cl, err := NewClient(ClientConfig{
		Self:       id.Client(1),
		AppServers: []id.NodeID{id.AppServer(1)},
		Endpoint:   ep,
		SlowTry:    func(id.ResultID, time.Duration) { fired.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("quick")); err != nil {
		t.Fatal(err)
	}
	if got := fired.Load(); got != 0 {
		t.Errorf("SlowTry fired %d times on the fast path", got)
	}
}

// TestAppServerDebugTry: the liveness dump names the register, queue and
// suspicion state a stalled try's investigation needs.
func TestAppServerDebugTry(t *testing.T) {
	net := testNet(t)
	engine, err := xadb.Open(stablestore.New(0), xadb.Config{Self: id.DBServer(1)})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDataServer(DataServerConfig{
		Self:       id.DBServer(1),
		AppServers: []id.NodeID{id.AppServer(1)},
		Engine:     engine,
		Endpoint:   attach(t, net, id.DBServer(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Start()
	defer db.Stop()
	srv, err := NewAppServer(AppServerConfig{
		Self:        id.AppServer(1),
		AppServers:  []id.NodeID{id.AppServer(1)},
		DataServers: []id.NodeID{id.DBServer(1)},
		Endpoint:    attach(t, net, id.AppServer(1)),
		Logic:       noopLogic(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()

	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	if s := srv.DebugTry(rid); s == "" {
		t.Fatal("empty DebugTry for an unknown try")
	}
	// Drive one request through, then the dump must show the decided regD.
	cl, err := NewClient(ClientConfig{
		Self:       id.Client(1),
		AppServers: []id.NodeID{id.AppServer(1)},
		Endpoint:   attach(t, net, id.Client(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.Issue(ctx, []byte("go")); err != nil {
		t.Fatal(err)
	}
	dump := srv.DebugTry(rid)
	for _, want := range []string{"regA=" + id.AppServer(1).String(), "regD=" + msg.OutcomeCommit.String()} {
		if !containsStr(dump, want) {
			t.Errorf("DebugTry = %q, missing %q", dump, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
