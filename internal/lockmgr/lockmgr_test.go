package lockmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
)

func tx(n uint64) id.ResultID {
	return id.ResultID{Client: id.Client(1), Seq: n, Try: 1}
}

func TestExclusiveBlocksSecondAcquirer(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, tx(1), "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	err := m.Acquire(short, tx(2), "k", Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("second exclusive acquire: %v, want ErrTimeout", err)
	}
	m.ReleaseAll(tx(1))
	if err := m.Acquire(ctx, tx(2), "k", Exclusive); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	ctx := context.Background()
	for i := uint64(1); i <= 3; i++ {
		if err := m.Acquire(ctx, tx(i), "k", Shared); err != nil {
			t.Fatalf("shared acquire %d: %v", i, err)
		}
	}
	// An exclusive must wait for all of them.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := m.Acquire(short, tx(9), "k", Exclusive); !errors.Is(err, ErrTimeout) {
		t.Fatalf("exclusive over shared: %v, want ErrTimeout", err)
	}
}

func TestReentrantAcquire(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, tx(1), "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Same transaction re-acquiring in any mode is a no-op.
	if err := m.Acquire(ctx, tx(1), "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, tx(1), "k", Shared); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := New()
	ctx := context.Background()
	if err := m.Acquire(ctx, tx(1), "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, tx(1), "k", Exclusive); err != nil {
		t.Fatalf("sole-holder upgrade: %v", err)
	}
	if mode, _ := m.HeldMode(tx(1), "k"); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := New()
	ctx := context.Background()
	m.Acquire(ctx, tx(1), "k", Shared)
	m.Acquire(ctx, tx(2), "k", Shared)
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(ctx, tx(1), "k", Exclusive)
	}()
	select {
	case err := <-done:
		t.Fatalf("upgrade succeeded with another reader present: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(tx(2))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upgrade after reader left: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("upgrade never granted")
	}
}

func TestFIFOFairnessNoOvertaking(t *testing.T) {
	m := New()
	ctx := context.Background()
	m.Acquire(ctx, tx(1), "k", Exclusive)

	order := make(chan uint64, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(ctx, tx(2), "k", Exclusive); err == nil {
			order <- 2
			m.ReleaseAll(tx(2))
		}
	}()
	time.Sleep(10 * time.Millisecond) // ensure tx2 queues first
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Acquire(ctx, tx(3), "k", Exclusive); err == nil {
			order <- 3
			m.ReleaseAll(tx(3))
		}
	}()
	time.Sleep(10 * time.Millisecond)
	// A newcomer shared lock must not overtake the queued exclusives.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := m.Acquire(short, tx(4), "k", Shared); !errors.Is(err, ErrTimeout) {
		t.Fatalf("shared overtook queued exclusives: %v", err)
	}
	m.ReleaseAll(tx(1))
	wg.Wait()
	close(order)
	var got []uint64
	for v := range order {
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("grant order = %v, want [2 3]", got)
	}
}

func TestDeadlockResolvedByTimeout(t *testing.T) {
	m := New()
	ctx := context.Background()
	m.Acquire(ctx, tx(1), "a", Exclusive)
	m.Acquire(ctx, tx(2), "b", Exclusive)

	// tx1 wants b, tx2 wants a: classic deadlock; both time out.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		c, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		errs[0] = m.Acquire(c, tx(1), "b", Exclusive)
	}()
	go func() {
		defer wg.Done()
		c, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		errs[1] = m.Acquire(c, tx(2), "a", Exclusive)
	}()
	wg.Wait()
	if !errors.Is(errs[0], ErrTimeout) || !errors.Is(errs[1], ErrTimeout) {
		t.Fatalf("deadlock not resolved: %v / %v", errs[0], errs[1])
	}
	// After both abort (release), the keys are free.
	m.ReleaseAll(tx(1))
	m.ReleaseAll(tx(2))
	if err := m.Acquire(ctx, tx(3), "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, tx(3), "b", Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestAbandonedWaiterDoesNotBlockGrants(t *testing.T) {
	m := New()
	ctx := context.Background()
	m.Acquire(ctx, tx(1), "k", Exclusive)
	// tx2 queues then gives up.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	m.Acquire(short, tx(2), "k", Exclusive)
	cancel()
	// tx3 queues and must be granted once tx1 releases, despite the corpse
	// of tx2 ahead of it.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, tx(3), "k", Exclusive) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(tx(1))
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("grant blocked by abandoned waiter")
	}
}

func TestReleaseAllReleasesEverything(t *testing.T) {
	m := New()
	ctx := context.Background()
	m.Acquire(ctx, tx(1), "a", Exclusive)
	m.Acquire(ctx, tx(1), "b", Shared)
	if got := m.Held(tx(1)); len(got) != 2 {
		t.Fatalf("Held = %v", got)
	}
	m.ReleaseAll(tx(1))
	if got := m.Held(tx(1)); len(got) != 0 {
		t.Fatalf("Held after release = %v", got)
	}
	if err := m.Acquire(ctx, tx(2), "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, tx(2), "b", Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllUnknownTxIsNoop(t *testing.T) {
	m := New()
	m.ReleaseAll(tx(42)) // must not panic
}

func TestConcurrentStress(t *testing.T) {
	m := New()
	keys := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			txn := id.ResultID{Client: id.Client(i + 1), Seq: 1, Try: 1}
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				k1, k2 := keys[(i+j)%4], keys[(i+j+1)%4]
				if m.Acquire(ctx, txn, k1, Shared) == nil {
					m.Acquire(ctx, txn, k2, Exclusive)
				}
				m.ReleaseAll(txn)
				cancel()
			}
		}()
	}
	wg.Wait()
	// Everything must be free afterwards.
	ctx := context.Background()
	probe := tx(999)
	for _, k := range keys {
		if err := m.Acquire(ctx, probe, k, Exclusive); err != nil {
			t.Fatalf("key %q still locked after stress: %v", k, err)
		}
	}
}
