// Package lockmgr provides strict two-phase locking for the database engine,
// implementing the serializability the paper assumes ("We assume the
// existence of some serializability protocol [3]").
//
// Locks are per-key, shared or exclusive, granted in FIFO order to prevent
// starvation. Deadlocks are resolved by timeout: Acquire takes a context and
// fails when it is cancelled, after which the engine aborts the transaction
// branch — matching how the paper's protocol treats any compute() failure
// (the try aborts and the client retries a fresh try).
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/metrics"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes.
const (
	Shared Mode = iota + 1
	Exclusive
)

// String returns "shared" or "exclusive".
func (m Mode) String() string {
	switch m {
	case Shared:
		return "shared"
	case Exclusive:
		return "exclusive"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ErrTimeout reports an Acquire that gave up waiting (deadlock resolution).
var ErrTimeout = errors.New("lockmgr: lock wait timed out")

// Manager is a lock table. The zero value is not usable; call New.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[id.ResultID]map[string]Mode // per-transaction held keys

	// Contention counters (snapshot via Stats): every Acquire call, the
	// subset that had to queue, the waits abandoned on timeout, and the
	// cumulative time spent queued. The queue-execution experiments compare
	// these across execution modes — queue mode must show zero acquires.
	acquires  metrics.Counter
	waits     metrics.Counter
	timeouts  metrics.Counter
	waitNanos metrics.Counter
}

// Stats is a snapshot of the manager's contention counters.
type Stats struct {
	// Acquires counts every Acquire call (including re-acquisitions of an
	// already-held lock).
	Acquires uint64
	// Waits counts acquisitions that found the lock unavailable and queued.
	Waits uint64
	// Timeouts counts waits abandoned on context expiry (deadlock
	// resolution by abort-and-retry).
	Timeouts uint64
	// WaitTime is the cumulative time acquirers spent queued.
	WaitTime time.Duration
}

// Stats snapshots the contention counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquires: m.acquires.Load(),
		Waits:    m.waits.Load(),
		Timeouts: m.timeouts.Load(),
		WaitTime: time.Duration(m.waitNanos.Load()),
	}
}

// Sub returns s - base, for measuring a bounded interval.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Acquires: s.Acquires - base.Acquires,
		Waits:    s.Waits - base.Waits,
		Timeouts: s.Timeouts - base.Timeouts,
		WaitTime: s.WaitTime - base.WaitTime,
	}
}

// String renders the counters for liveness dumps.
func (s Stats) String() string {
	return fmt.Sprintf("acquires=%d waits=%d timeouts=%d waited=%s",
		s.Acquires, s.Waits, s.Timeouts, s.WaitTime)
}

type lockState struct {
	holders map[id.ResultID]Mode
	queue   []*waiter
}

type waiter struct {
	tx      id.ResultID
	mode    Mode
	granted chan struct{}
	gone    bool // abandoned (timeout); skip when granting
}

// New creates an empty lock manager.
func New() *Manager {
	return &Manager{
		locks: make(map[string]*lockState),
		held:  make(map[id.ResultID]map[string]Mode),
	}
}

// Acquire takes key in the given mode on behalf of tx, blocking until granted
// or ctx is done. Re-acquiring an already-held lock is a no-op; holding a
// shared lock and requesting exclusive attempts an upgrade.
func (m *Manager) Acquire(ctx context.Context, tx id.ResultID, key string, mode Mode) error {
	m.acquires.Inc()
	m.mu.Lock()
	ls, ok := m.locks[key]
	if !ok {
		ls = &lockState{holders: make(map[id.ResultID]Mode)}
		m.locks[key] = ls
	}

	if cur, holds := ls.holders[tx]; holds {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already sufficient
		}
		// Upgrade shared -> exclusive: immediate if sole holder.
		if len(ls.holders) == 1 {
			ls.holders[tx] = Exclusive
			m.recordLocked(tx, key, Exclusive)
			m.mu.Unlock()
			return nil
		}
		// Otherwise wait like everyone else; the shared lock stays held, so
		// two upgraders deadlock — the timeout resolves that, as documented.
	} else if m.grantableLocked(ls, tx, mode) {
		ls.holders[tx] = mode
		m.recordLocked(tx, key, mode)
		m.mu.Unlock()
		return nil
	}

	w := &waiter{tx: tx, mode: mode, granted: make(chan struct{})}
	ls.queue = append(ls.queue, w)
	m.mu.Unlock()
	m.waits.Inc()
	waitStart := time.Now()

	select {
	case <-w.granted:
		m.waitNanos.Add(uint64(time.Since(waitStart)))
		return nil
	case <-ctx.Done():
		m.waitNanos.Add(uint64(time.Since(waitStart)))
		m.mu.Lock()
		select {
		case <-w.granted:
			// Granted concurrently with cancellation: keep the lock.
			m.mu.Unlock()
			return nil
		default:
		}
		w.gone = true
		m.promoteLocked(key, ls)
		m.mu.Unlock()
		m.timeouts.Inc()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return fmt.Errorf("%w: %s on %q", ErrTimeout, mode, key)
		}
		return fmt.Errorf("lockmgr: acquire %q: %w", key, ctx.Err())
	}
}

// grantableLocked reports whether tx may take key in mode right now:
// compatible with all holders and not overtaking earlier waiters.
func (m *Manager) grantableLocked(ls *lockState, tx id.ResultID, mode Mode) bool {
	for _, w := range ls.queue {
		if !w.gone {
			return false // FIFO fairness: queue is not empty
		}
	}
	if len(ls.holders) == 0 {
		return true
	}
	if mode == Exclusive {
		return false
	}
	for holder, hm := range ls.holders {
		if hm == Exclusive && holder != tx {
			return false
		}
	}
	return true
}

// promoteLocked grants queued waiters that have become compatible.
func (m *Manager) promoteLocked(key string, ls *lockState) {
	// Compact abandoned waiters first.
	live := ls.queue[:0]
	for _, w := range ls.queue {
		if !w.gone {
			live = append(live, w)
		}
	}
	ls.queue = live

	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if cur, holds := ls.holders[w.tx]; holds && w.mode == Exclusive && cur == Shared {
			// Pending upgrade: grant only when sole holder.
			if len(ls.holders) != 1 {
				return
			}
			ls.holders[w.tx] = Exclusive
			m.recordLocked(w.tx, key, Exclusive)
		} else {
			granted := len(ls.holders) == 0
			if !granted && w.mode == Shared {
				granted = true
				for _, hm := range ls.holders {
					if hm == Exclusive {
						granted = false
					}
				}
			}
			if !granted {
				return
			}
			ls.holders[w.tx] = w.mode
			m.recordLocked(w.tx, key, w.mode)
		}
		ls.queue = ls.queue[1:]
		close(w.granted)
		if w.mode == Exclusive {
			return // nothing after an exclusive grant can proceed
		}
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, key)
	}
}

func (m *Manager) recordLocked(tx id.ResultID, key string, mode Mode) {
	byKey, ok := m.held[tx]
	if !ok {
		byKey = make(map[string]Mode)
		m.held[tx] = byKey
	}
	byKey[key] = mode
}

// ReleaseAll drops every lock held by tx and wakes eligible waiters. The
// engine calls it at commit/abort (strict 2PL: no early release).
func (m *Manager) ReleaseAll(tx id.ResultID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byKey := m.held[tx]
	delete(m.held, tx)
	for key := range byKey {
		ls, ok := m.locks[key]
		if !ok {
			continue
		}
		delete(ls.holders, tx)
		m.promoteLocked(key, ls)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(m.locks, key)
		}
	}
}

// Held returns the keys tx currently holds, sorted (observability/tests).
func (m *Manager) Held(tx id.ResultID) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.held[tx]))
	for k := range m.held[tx] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HeldMode returns the mode tx holds on key, if any.
func (m *Manager) HeldMode(tx id.ResultID, key string) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[tx][key]
	return mode, ok
}
