// Package trace counts the communication of protocol runs: which message
// kinds crossed which tier boundaries and in how many sequential bursts.
// It regenerates the message-pattern content of the paper's Figure 1
// (protocol executions) and Figure 7 (communication steps of the four
// compared protocols).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// Collector records send events from a network sniffer.
type Collector struct {
	mu     sync.Mutex
	events []transport.SniffEvent
	filter func(transport.SniffEvent) bool
}

// New creates a collector and attaches it to the network. The optional
// filter limits which events are recorded (nil records protocol messages,
// skipping heartbeats, consensus decisions relays are kept).
func New(net *transport.MemNetwork, filter func(transport.SniffEvent) bool) *Collector {
	c := &Collector{filter: filter}
	net.AddSniffer(func(ev transport.SniffEvent) {
		if ev.Dropped {
			return
		}
		if c.filter != nil && !c.filter(ev) {
			return
		}
		c.mu.Lock()
		c.events = append(c.events, ev)
		c.mu.Unlock()
	})
	return c
}

// ProtocolOnly is a filter keeping protocol traffic and dropping the
// periodic background noise (heartbeats).
func ProtocolOnly(ev transport.SniffEvent) bool {
	return ev.Payload.Kind() != msg.KindHeartbeat
}

// Reset clears recorded events (call between experiment phases).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// snapshot returns a copy of the recorded events.
func (c *Collector) snapshot() []transport.SniffEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]transport.SniffEvent, len(c.events))
	copy(out, c.events)
	return out
}

// Events returns a copy of the recorded events in timeline order (for
// analyses beyond counts, e.g. per-register sender sets).
func (c *Collector) Events() []transport.SniffEvent { return c.snapshot() }

// Counts returns the number of sent messages per kind.
func (c *Collector) Counts() map[msg.Kind]int {
	out := make(map[msg.Kind]int)
	for _, ev := range c.snapshot() {
		out[ev.Payload.Kind()]++
	}
	return out
}

// Total returns the number of recorded messages, optionally restricted to
// the given kinds.
func (c *Collector) Total(kinds ...msg.Kind) int {
	if len(kinds) == 0 {
		return len(c.snapshot())
	}
	want := make(map[msg.Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	n := 0
	for _, ev := range c.snapshot() {
		if want[ev.Payload.Kind()] {
			n++
		}
	}
	return n
}

// Step is one burst of the protocol timeline: consecutive messages of the
// same kind crossing the same tier boundary, collapsed — which is exactly
// what one arrow group in the paper's diagrams depicts.
type Step struct {
	Kind  msg.Kind
	From  id.Role
	To    id.Role
	Count int
}

// String renders a step like "Prepare appserver->dbserver x3".
func (s Step) String() string {
	return fmt.Sprintf("%s %s->%s x%d", s.Kind, s.From, s.To, s.Count)
}

// Steps collapses the recorded timeline into bursts. In a failure-free run
// this reproduces the arrow groups of Figures 1 and 7 (e.g. for the
// replicated protocol: Request, Propose(regA), Ack, Exec..., Prepare, Vote,
// Propose(regD), Ack, Decide, AckDecide, Result).
func (c *Collector) Steps() []Step {
	var steps []Step
	for _, ev := range c.snapshot() {
		k := ev.Payload.Kind()
		if n := len(steps); n > 0 &&
			steps[n-1].Kind == k &&
			steps[n-1].From == ev.From.Role &&
			steps[n-1].To == ev.To.Role {
			steps[n-1].Count++
			continue
		}
		steps = append(steps, Step{Kind: k, From: ev.From.Role, To: ev.To.Role, Count: 1})
	}
	return steps
}

// CriticalSteps returns the number of collapsed bursts — the paper's
// "communication steps" for a failure-free run.
func (c *Collector) CriticalSteps() int { return len(c.Steps()) }

// FormatCounts renders per-kind counts sorted by kind for stable output.
func FormatCounts(counts map[msg.Kind]int) string {
	kinds := make([]msg.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	for i, k := range kinds {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s:%d", k, counts[k])
	}
	return b.String()
}
