package trace

import (
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

func rid() id.ResultID { return id.ResultID{Client: id.Client(1), Seq: 1, Try: 1} }

func sendAll(t *testing.T, net *transport.MemNetwork, sends []msg.Envelope) {
	t.Helper()
	eps := make(map[id.NodeID]transport.Endpoint)
	ep := func(n id.NodeID) transport.Endpoint {
		if e, ok := eps[n]; ok {
			return e
		}
		e, err := net.Attach(n)
		if err != nil {
			t.Fatal(err)
		}
		eps[n] = e
		// Drain so the recv pumps never back up.
		go func() {
			for range e.Recv() { //nolint:revive // draining
			}
		}()
		return e
	}
	for _, env := range sends {
		ep(env.To) // ensure the destination exists
		if err := ep(env.From).Send(env); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // keep timeline order deterministic
	}
}

func TestCountsAndTotal(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	c := New(net, nil)
	sendAll(t, net, []msg.Envelope{
		{From: id.Client(1), To: id.AppServer(1), Payload: msg.Request{RID: rid()}},
		{From: id.AppServer(1), To: id.DBServer(1), Payload: msg.Prepare{RID: rid()}},
		{From: id.DBServer(1), To: id.AppServer(1), Payload: msg.VoteMsg{RID: rid(), V: msg.VoteYes}},
		{From: id.AppServer(1), To: id.Client(1), Payload: msg.Result{RID: rid()}},
	})
	counts := c.Counts()
	if counts[msg.KindRequest] != 1 || counts[msg.KindPrepare] != 1 ||
		counts[msg.KindVote] != 1 || counts[msg.KindResult] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if c.Total() != 4 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Total(msg.KindPrepare, msg.KindVote) != 2 {
		t.Fatalf("filtered total = %d", c.Total(msg.KindPrepare, msg.KindVote))
	}
}

func TestProtocolOnlyFilterDropsHeartbeats(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	c := New(net, ProtocolOnly)
	sendAll(t, net, []msg.Envelope{
		{From: id.AppServer(1), To: id.AppServer(2), Payload: msg.Heartbeat{Seq: 1}},
		{From: id.Client(1), To: id.AppServer(1), Payload: msg.Request{RID: rid()}},
	})
	if c.Total() != 1 {
		t.Fatalf("total = %d, heartbeat must be filtered", c.Total())
	}
}

func TestStepsCollapseBursts(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	c := New(net, nil)
	sendAll(t, net, []msg.Envelope{
		{From: id.AppServer(1), To: id.DBServer(1), Payload: msg.Prepare{RID: rid()}},
		{From: id.AppServer(1), To: id.DBServer(2), Payload: msg.Prepare{RID: rid()}},
		{From: id.AppServer(1), To: id.DBServer(3), Payload: msg.Prepare{RID: rid()}},
		{From: id.DBServer(1), To: id.AppServer(1), Payload: msg.VoteMsg{RID: rid(), V: msg.VoteYes}},
		{From: id.DBServer(2), To: id.AppServer(1), Payload: msg.VoteMsg{RID: rid(), V: msg.VoteYes}},
	})
	steps := c.Steps()
	if len(steps) != 2 {
		t.Fatalf("steps = %v, want 2 collapsed bursts", steps)
	}
	if steps[0].Kind != msg.KindPrepare || steps[0].Count != 3 {
		t.Errorf("step 0 = %v", steps[0])
	}
	if steps[1].Kind != msg.KindVote || steps[1].Count != 2 {
		t.Errorf("step 1 = %v", steps[1])
	}
	if c.CriticalSteps() != 2 {
		t.Errorf("critical steps = %d", c.CriticalSteps())
	}
	if steps[0].String() == "" {
		t.Error("step string empty")
	}
}

func TestResetClears(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	c := New(net, nil)
	sendAll(t, net, []msg.Envelope{
		{From: id.Client(1), To: id.AppServer(1), Payload: msg.Request{RID: rid()}},
	})
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("total after reset = %d", c.Total())
	}
}

func TestFormatCountsStable(t *testing.T) {
	counts := map[msg.Kind]int{msg.KindResult: 1, msg.KindRequest: 2}
	s := FormatCounts(counts)
	if s != "Request:2  Result:1" {
		t.Fatalf("FormatCounts = %q", s)
	}
}
