package wal

import (
	"bytes"
	"testing"
	"testing/quick"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/stablestore"
)

func rid(seq, try uint64) id.ResultID {
	return id.ResultID{Client: id.Client(1), Seq: seq, Try: try}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecSnapshot, Writes: []kv.Write{{Key: "acct/1", Val: kv.EncodeInt(100)}}},
		{Type: RecPrepared, RID: rid(1, 1), Writes: []kv.Write{{Key: "a", Val: []byte("x")}, {Key: "b", Val: nil}}},
		{Type: RecCommitted, RID: rid(1, 1)},
		{Type: RecAborted, RID: rid(2, 3)},
	}
	for _, rec := range recs {
		back, err := Decode(Encode(rec))
		if err != nil {
			t.Fatalf("%v: %v", rec.Type, err)
		}
		if back.Type != rec.Type || back.RID != rec.RID || len(back.Writes) != len(rec.Writes) {
			t.Fatalf("round trip mangled %+v -> %+v", rec, back)
		}
		for i := range rec.Writes {
			if back.Writes[i].Key != rec.Writes[i].Key || !bytes.Equal(back.Writes[i].Val, rec.Writes[i].Val) {
				t.Fatalf("write %d mangled", i)
			}
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(typ uint8, seq, try uint64, keys []string, vals [][]byte) bool {
		rec := Record{Type: RecType(typ%4 + 1), RID: rid(seq, try)}
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			rec.Writes = append(rec.Writes, kv.Write{Key: k, Val: v})
		}
		back, err := Decode(Encode(rec))
		if err != nil {
			return false
		}
		if back.Type != rec.Type || back.RID != rec.RID || len(back.Writes) != len(rec.Writes) {
			return false
		}
		for i := range rec.Writes {
			if back.Writes[i].Key != rec.Writes[i].Key || !bytes.Equal(back.Writes[i].Val, rec.Writes[i].Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	cases := [][]byte{nil, {1}, {99, 1, 2, 3}, Encode(Record{Type: RecCommitted, RID: rid(1, 1)})[:3]}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode succeeded on garbage", i)
		}
	}
	// Trailing bytes must be rejected.
	good := Encode(Record{Type: RecAborted, RID: rid(1, 1)})
	if _, err := Decode(append(good, 0)); err == nil {
		t.Error("Decode accepted trailing bytes")
	}
}

func TestLogAppendScan(t *testing.T) {
	st := stablestore.New(0)
	l := New(st)
	l.Append(Record{Type: RecSnapshot, Writes: []kv.Write{{Key: "k", Val: []byte("0")}}}, false)
	l.Append(Record{Type: RecPrepared, RID: rid(1, 1), Writes: []kv.Write{{Key: "k", Val: []byte("1")}}}, true)
	l.Append(Record{Type: RecCommitted, RID: rid(1, 1)}, true)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	rv, err := l.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.InDoubt) != 0 {
		t.Fatalf("InDoubt = %v, want none", rv.InDoubt)
	}
	if !rv.Committed[rid(1, 1)] {
		t.Fatal("commit record lost")
	}
	// Image = snapshot then committed write-set.
	if len(rv.Image) != 2 || string(rv.Image[1].Val) != "1" {
		t.Fatalf("Image = %v", rv.Image)
	}
}

func TestScanFindsInDoubtBranches(t *testing.T) {
	st := stablestore.New(0)
	l := New(st)
	l.Append(Record{Type: RecPrepared, RID: rid(1, 1), Writes: []kv.Write{{Key: "a", Val: []byte("1")}}}, true)
	l.Append(Record{Type: RecPrepared, RID: rid(2, 1), Writes: []kv.Write{{Key: "b", Val: []byte("2")}}}, true)
	l.Append(Record{Type: RecAborted, RID: rid(2, 1)}, false)
	rv, err := l.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.InDoubt) != 1 {
		t.Fatalf("InDoubt = %v, want exactly the undecided branch", rv.InDoubt)
	}
	ws, ok := rv.InDoubt[rid(1, 1)]
	if !ok || len(ws) != 1 || ws[0].Key != "a" {
		t.Fatalf("in-doubt branch lost its write-set: %v", rv.InDoubt)
	}
	if !rv.Aborted[rid(2, 1)] {
		t.Fatal("aborted branch not recorded")
	}
	// Aborted writes must not reach the image.
	for _, w := range rv.Image {
		if w.Key == "b" {
			t.Fatal("aborted write leaked into the image")
		}
	}
}

func TestScanSurvivesCrashRecoveryCycle(t *testing.T) {
	// Simulate: prepare, crash, recover (scan), commit, crash, recover.
	st := stablestore.New(0)
	l1 := New(st)
	l1.Append(Record{Type: RecSnapshot, Writes: []kv.Write{{Key: "acct", Val: kv.EncodeInt(100)}}}, false)
	l1.Append(Record{Type: RecPrepared, RID: rid(1, 1), Writes: []kv.Write{{Key: "acct", Val: kv.EncodeInt(90)}}}, true)
	// Crash: new Log over the same store.
	l2 := New(st)
	rv, err := l2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rv.InDoubt[rid(1, 1)]; !ok {
		t.Fatal("prepared branch lost across crash")
	}
	l2.Append(Record{Type: RecCommitted, RID: rid(1, 1)}, true)
	// Second crash.
	l3 := New(st)
	rv, err = l3.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.InDoubt) != 0 {
		t.Fatal("committed branch still in doubt after second recovery")
	}
	var acct []byte
	for _, w := range rv.Image {
		if w.Key == "acct" {
			acct = w.Val
		}
	}
	v, err := kv.DecodeInt(acct)
	if err != nil || v != 90 {
		t.Fatalf("recovered balance = %d (%v), want 90", v, err)
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, tt := range []struct {
		t    RecType
		want string
	}{
		{RecSnapshot, "snapshot"}, {RecPrepared, "prepared"},
		{RecCommitted, "committed"}, {RecAborted, "aborted"}, {RecType(9), "rectype(9)"},
	} {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
