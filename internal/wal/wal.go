// Package wal implements the write-ahead log of a database server. It gives
// the engine the two durability guarantees the paper's protocol relies on:
//
//   - a branch that voted yes (prepared) survives crashes with its write-set,
//     so a later Decide(commit) can still be honoured — the XA contract behind
//     the paper's vote()/decide() primitives and its "good database servers"
//     assumption;
//   - committed write-sets can be replayed to rebuild the volatile store
//     after recovery.
//
// Records are binary-encoded onto a stablestore log. Prepared and commit
// records are forced (synchronous), mirroring Oracle's behaviour in the
// paper's measurements; that forced-write cost is what the Figure-8 rows
// "prepare" and "commit" are made of.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/stablestore"
)

// RecType discriminates log records.
type RecType uint8

// Record types.
const (
	// RecSnapshot carries a full store image (initial seeding/checkpoint).
	RecSnapshot RecType = iota + 1
	// RecPrepared marks a branch prepared (voted yes) and carries its
	// write-set. Forced.
	RecPrepared
	// RecCommitted marks a branch committed. Forced.
	RecCommitted
	// RecAborted marks a branch aborted. Not forced (presumed abort).
	RecAborted
)

// String returns the record type mnemonic.
func (t RecType) String() string {
	switch t {
	case RecSnapshot:
		return "snapshot"
	case RecPrepared:
		return "prepared"
	case RecCommitted:
		return "committed"
	case RecAborted:
		return "aborted"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one WAL entry.
type Record struct {
	Type   RecType
	RID    id.ResultID // transaction branch (zero for snapshots)
	Writes []kv.Write  // after-images (prepared, snapshot)
}

// ErrCorrupt reports an undecodable record.
var ErrCorrupt = errors.New("wal: corrupt record")

// logName is the stablestore log the WAL occupies.
const logName = "wal"

// Log is a database server's write-ahead log on top of its stable storage.
type Log struct {
	st *stablestore.Store
}

// New opens the WAL stored in st (creating it on first use).
func New(st *stablestore.Store) *Log {
	return &Log{st: st}
}

// Append encodes and appends rec; force selects a synchronous write.
func (l *Log) Append(rec Record, force bool) {
	l.st.Append(logName, Encode(rec), force)
}

// AppendRaw appends an already-encoded record verbatim. The replication
// backup applier uses it so the record bytes a primary streamed land on the
// backup's log byte-identical (no decode/re-encode round trip on the apply
// path).
func (l *Log) AppendRaw(enc []byte, force bool) {
	l.st.Append(logName, enc, force)
}

// Truncate discards the whole log. A backup adopting a new primary's stream
// truncates before applying the full resync, so its log converges on the new
// primary's exactly.
func (l *Log) Truncate() {
	l.st.TruncateLog(logName)
}

// Records decodes the whole log in append order.
func (l *Log) Records() ([]Record, error) {
	raw := l.st.ReadLog(logName)
	out := make([]Record, 0, len(raw))
	for i, b := range raw {
		rec, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("wal: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Len returns the number of records in the log.
func (l *Log) Len() int { return l.st.LogLen(logName) }

// Encode serializes a record.
func Encode(rec Record) []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(rec.Type))
	buf = append(buf, byte(rec.RID.Client.Role))
	buf = binary.AppendVarint(buf, int64(rec.RID.Client.Index))
	buf = binary.AppendUvarint(buf, rec.RID.Seq)
	buf = binary.AppendUvarint(buf, rec.RID.Try)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Writes)))
	for _, w := range rec.Writes {
		buf = binary.AppendUvarint(buf, uint64(len(w.Key)))
		buf = append(buf, w.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(w.Val)))
		buf = append(buf, w.Val...)
	}
	return buf
}

// Decode parses Encode's output.
func Decode(b []byte) (Record, error) {
	var rec Record
	if len(b) < 2 {
		return rec, ErrCorrupt
	}
	rec.Type = RecType(b[0])
	rec.RID.Client.Role = id.Role(b[1])
	off := 2
	idx, n := binary.Varint(b[off:])
	if n <= 0 {
		return rec, ErrCorrupt
	}
	off += n
	rec.RID.Client.Index = int(idx)
	seq, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return rec, ErrCorrupt
	}
	off += n
	rec.RID.Seq = seq
	try, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return rec, ErrCorrupt
	}
	off += n
	rec.RID.Try = try
	count, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return rec, ErrCorrupt
	}
	off += n
	if count > uint64(len(b)) { // each write needs at least 2 bytes
		return rec, ErrCorrupt
	}
	rec.Writes = make([]kv.Write, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(b[off:])
		if n <= 0 || off+n+int(klen) > len(b) {
			return rec, ErrCorrupt
		}
		off += n
		key := string(b[off : off+int(klen)])
		off += int(klen)
		vlen, n := binary.Uvarint(b[off:])
		if n <= 0 || off+n+int(vlen) > len(b) {
			return rec, ErrCorrupt
		}
		off += n
		val := make([]byte, vlen)
		copy(val, b[off:off+int(vlen)])
		off += int(vlen)
		rec.Writes = append(rec.Writes, kv.Write{Key: key, Val: val})
	}
	if off != len(b) {
		return rec, ErrCorrupt
	}
	return rec, nil
}

// Recovery is the outcome of scanning a WAL: the rebuilt store image, the
// branches that were prepared but never decided (in-doubt, must be restored
// with their locks), and the set of decided branches (for idempotent Decide).
type Recovery struct {
	Image     []kv.Write                 // snapshot ⊕ committed write-sets, in order
	InDoubt   map[id.ResultID][]kv.Write // prepared, no commit/abort record
	Committed map[id.ResultID]bool
	Aborted   map[id.ResultID]bool
}

// Scan replays the log into a Recovery.
func (l *Log) Scan() (*Recovery, error) {
	recs, err := l.Records()
	if err != nil {
		return nil, err
	}
	rv := &Recovery{
		InDoubt:   make(map[id.ResultID][]kv.Write),
		Committed: make(map[id.ResultID]bool),
		Aborted:   make(map[id.ResultID]bool),
	}
	prepared := make(map[id.ResultID][]kv.Write)
	for _, rec := range recs {
		switch rec.Type {
		case RecSnapshot:
			rv.Image = append(rv.Image[:0], rec.Writes...)
		case RecPrepared:
			prepared[rec.RID] = rec.Writes
		case RecCommitted:
			rv.Committed[rec.RID] = true
			if ws, ok := prepared[rec.RID]; ok {
				rv.Image = append(rv.Image, ws...)
				delete(prepared, rec.RID)
			}
		case RecAborted:
			rv.Aborted[rec.RID] = true
			delete(prepared, rec.RID)
		default:
			return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, rec.Type)
		}
	}
	for rid, ws := range prepared {
		rv.InDoubt[rid] = ws
	}
	return rv, nil
}
