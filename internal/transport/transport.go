// Package transport abstracts the message-passing network of the paper's
// system model (Section 2): a finite set of processes exchanging uniquely
// identified messages, where processes may crash and (for database servers)
// recover.
//
// Two implementations exist: the in-memory network in this package, which
// supports calibrated per-link latency, loss, duplication, partitions and
// crash isolation (the substrate for all tests and for the Figure-8 cost
// model), and a TCP implementation in the tcptransport subpackage for real
// multi-process deployment.
package transport

import (
	"errors"

	"etx/internal/id"
	"etx/internal/msg"
)

// Endpoint is one process's attachment to the network.
//
// Send is asynchronous and never blocks on the destination; delivery follows
// the network's fault model. Recv yields incoming envelopes; the channel is
// closed when the endpoint is closed or its node crashes.
type Endpoint interface {
	// ID returns the node this endpoint belongs to.
	ID() id.NodeID
	// Send enqueues env for delivery. env.From is forced to this endpoint's
	// node. It returns an error only if the endpoint is closed.
	Send(env msg.Envelope) error
	// Recv returns the stream of delivered envelopes.
	Recv() <-chan msg.Envelope
	// Close detaches the endpoint; subsequent Sends fail and Recv is closed.
	Close() error
}

// PendingCounter is implemented by endpoints that can report how many
// delivered messages are waiting unread (the in-memory endpoint does). The
// replication layer's promotion drain asserts on it when available; endpoints
// that cannot know (e.g. TCP) simply don't implement it and the drain falls
// back to a quiet period.
type PendingCounter interface {
	// Pending counts messages delivered but not yet read from Recv.
	Pending() int
}

// Network hands out endpoints for nodes.
type Network interface {
	// Attach creates (or re-creates, after a crash) the endpoint of node.
	// Re-attaching an alive node replaces its previous endpoint; the old one
	// is closed. The fresh endpoint starts with an empty inbox, modelling the
	// loss of volatile state across a crash.
	Attach(node id.NodeID) (Endpoint, error)
}

// Errors returned by endpoints.
var (
	// ErrClosed reports a send on a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
)

// Broadcast sends the payload from ep to every node in dests. Failed sends
// (closed endpoint) abort with the error; network-level loss is silent by
// design, as in the paper's model.
func Broadcast(ep Endpoint, dests []id.NodeID, p msg.Payload) error {
	for _, d := range dests {
		if err := ep.Send(msg.Envelope{From: ep.ID(), To: d, Payload: p}); err != nil {
			return err
		}
	}
	return nil
}
