package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/queue"
)

// LatencyFunc computes the one-way delivery latency for a message. It lets
// the benchmark harness inject the paper's calibrated per-link costs (e.g.
// client<->appserver RPC ≈ 2.5 ms one way, appserver<->appserver ≈ 2.2 ms).
type LatencyFunc func(from, to id.NodeID, p msg.Payload) time.Duration

// Sniffer observes every send attempt; the trace package uses it to count the
// communication steps of Figures 1 and 7.
type Sniffer func(ev SniffEvent)

// SniffEvent describes one send attempt on the in-memory network.
type SniffEvent struct {
	Time    time.Time
	From    id.NodeID
	To      id.NodeID
	Payload msg.Payload
	Dropped bool // true if the fault model discarded the message at send time
}

// Options configures a MemNetwork. The zero value gives a perfect network
// with zero configured latency.
type Options struct {
	// DefaultLatency is the one-way delivery latency when Latency is nil.
	DefaultLatency time.Duration
	// Jitter adds a uniform random [0, Jitter) to every delivery.
	Jitter time.Duration
	// LossProb is the probability a message is silently dropped.
	LossProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// Latency, if set, overrides DefaultLatency per message.
	Latency LatencyFunc
	// Seed seeds the fault model's RNG; 0 means a fixed default seed so runs
	// are reproducible unless explicitly varied.
	Seed int64
}

// MemNetwork is an in-process Network with configurable latency and fault
// injection. It models the paper's asynchronous message-passing system:
// messages can be delayed, lost (when configured), and duplicated; crashed
// nodes neither send nor receive; a node re-attaching after a crash starts
// with an empty inbox (volatile state is lost), and messages that were in
// flight to it when it crashed are discarded.
//
// A single scheduler goroutine drains a time-ordered heap of pending
// deliveries, so in the absence of jitter each link is FIFO.
type MemNetwork struct {
	opts Options

	mu       sync.Mutex
	rng      *rand.Rand
	nodes    map[id.NodeID]*memEndpoint
	down     map[id.NodeID]bool
	epoch    map[id.NodeID]uint64 // bumped on Crash; stale deliveries are dropped
	blocked  map[linkKey]bool
	pending  deliveryHeap
	seq      uint64 // tiebreak for equal delivery times: preserves send order
	sniffers []Sniffer
	closed   bool

	wake chan struct{}
	done chan struct{}
	idle *sync.Cond // broadcast when the pending heap empties
}

type linkKey struct{ from, to id.NodeID }

type delivery struct {
	at    time.Time
	seq   uint64
	epoch uint64 // destination epoch at send time
	env   msg.Envelope
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// NewMemNetwork creates an in-memory network and starts its scheduler.
func NewMemNetwork(opts Options) *MemNetwork {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	n := &MemNetwork{
		opts:    opts,
		rng:     rand.New(rand.NewSource(seed)),
		nodes:   make(map[id.NodeID]*memEndpoint),
		down:    make(map[id.NodeID]bool),
		epoch:   make(map[id.NodeID]uint64),
		blocked: make(map[linkKey]bool),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	n.idle = sync.NewCond(&n.mu)
	go n.scheduler()
	return n
}

// scheduler delivers pending messages in (time, send-order) order.
func (n *MemNetwork) scheduler() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		now := time.Now()
		var due []delivery
		for len(n.pending) > 0 && !n.pending[0].at.After(now) {
			due = append(due, heap.Pop(&n.pending).(delivery))
		}
		var wait time.Duration = time.Hour
		if len(n.pending) > 0 {
			wait = time.Until(n.pending[0].at)
			if wait < 0 {
				wait = 0
			}
		} else if len(due) == 0 {
			n.idle.Broadcast()
		}
		n.mu.Unlock()

		for _, d := range due {
			n.deliver(d)
		}
		if len(due) > 0 {
			continue // re-check immediately; more may be due
		}

		// Short waits are yield-polled for delivery-time precision (the
		// calibrated cost model depends on it; time.Sleep granularity on
		// coarse-timer kernels is ~1ms). The poll watches the wake channel
		// so a newly sent message with a nearer deadline is picked up
		// immediately.
		if wait > 0 && wait < 3*time.Millisecond {
			target := time.Now().Add(wait)
			for time.Now().Before(target) {
				select {
				case <-n.wake:
					target = time.Now() // re-evaluate the heap now
				default:
					runtime.Gosched()
				}
			}
			continue
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-n.wake:
		case <-timer.C:
		case <-n.done:
			return
		}
	}
}

func (n *MemNetwork) wakeup() {
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// Attach implements Network.
func (n *MemNetwork) Attach(node id.NodeID) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if old, ok := n.nodes[node]; ok {
		old.shutdown()
	}
	ep := newMemEndpoint(n, node)
	n.nodes[node] = ep
	delete(n.down, node)
	return ep, nil
}

// Crash marks node down: its endpoint closes, messages in flight to it are
// discarded, and sends from it fail. Call Attach to bring the node back with
// a fresh (empty) endpoint.
func (n *MemNetwork) Crash(node id.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[node] = true
	n.epoch[node]++
	if ep, ok := n.nodes[node]; ok {
		ep.shutdown()
		delete(n.nodes, node)
	}
}

// Down reports whether node is currently crashed.
func (n *MemNetwork) Down(node id.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[node]
}

// SetBlocked blocks or unblocks the directed link from->to (partition
// injection). Blocked links silently drop messages, like the paper's link
// failures before they are "eventually repaired".
func (n *MemNetwork) SetBlocked(from, to id.NodeID, blocked bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if blocked {
		n.blocked[linkKey{from, to}] = true
	} else {
		delete(n.blocked, linkKey{from, to})
	}
}

// Partition bidirectionally blocks every link between the two groups.
func (n *MemNetwork) Partition(a, b []id.NodeID) {
	for _, x := range a {
		for _, y := range b {
			n.SetBlocked(x, y, true)
			n.SetBlocked(y, x, true)
		}
	}
}

// Heal removes every blocked link.
func (n *MemNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[linkKey]bool)
}

// AddSniffer registers a send observer. Sniffers run synchronously on the
// sender's goroutine; they must be fast and must not call back into the
// network.
func (n *MemNetwork) AddSniffer(s Sniffer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sniffers = append(n.sniffers, s)
}

// InFlightFrom counts scheduler-pending deliveries on the directed link
// from->to that will still be delivered (the destination is up and has not
// re-attached since they were sent). The replication layer's promotion drain
// uses it: once the suspected primary is down, its count is monotonically
// non-increasing, so a backup can wait for the primary's in-flight stream
// tail deterministically instead of guessing with a quiet period.
func (n *MemNetwork) InFlightFrom(from, to id.NodeID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[to] {
		return 0
	}
	count := 0
	for _, d := range n.pending {
		if d.env.From == from && d.env.To == to && d.epoch == n.epoch[to] {
			count++
		}
	}
	return count
}

// Quiesce blocks until no deliveries are pending (useful in tests that want
// the network drained before asserting).
func (n *MemNetwork) Quiesce() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.pending) > 0 && !n.closed {
		//etxlint:allow lockheld — sync.Cond.Wait releases n.mu while parked; this is the canonical condition-wait shape
		n.idle.Wait()
	}
}

// Close shuts the network down, closing all endpoints and discarding pending
// deliveries.
func (n *MemNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, ep := range n.nodes {
		ep.shutdown()
	}
	n.nodes = make(map[id.NodeID]*memEndpoint)
	n.pending = nil
	n.idle.Broadcast()
	n.mu.Unlock()
	close(n.done)
}

// send applies the fault model and schedules delivery.
func (n *MemNetwork) send(env msg.Envelope) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.down[env.From] {
		n.mu.Unlock()
		return ErrClosed
	}
	drop := n.blocked[linkKey{env.From, env.To}] ||
		(n.opts.LossProb > 0 && n.rng.Float64() < n.opts.LossProb)
	dup := !drop && n.opts.DupProb > 0 && n.rng.Float64() < n.opts.DupProb

	for _, s := range n.sniffers {
		s(SniffEvent{Time: time.Now(), From: env.From, To: env.To, Payload: env.Payload, Dropped: drop})
	}
	if drop {
		n.mu.Unlock()
		return nil
	}

	copies := 1
	if dup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		lat := n.opts.DefaultLatency
		if n.opts.Latency != nil {
			lat = n.opts.Latency(env.From, env.To, env.Payload)
		}
		if n.opts.Jitter > 0 {
			lat += time.Duration(n.rng.Int63n(int64(n.opts.Jitter)))
		}
		n.seq++
		heap.Push(&n.pending, delivery{
			at:    time.Now().Add(lat),
			seq:   n.seq,
			epoch: n.epoch[env.To],
			env:   env,
		})
	}
	n.mu.Unlock()
	n.wakeup()
	return nil
}

// deliver hands the message to the destination endpoint if the node is up and
// has not crashed since the message was sent.
func (n *MemNetwork) deliver(d delivery) {
	n.mu.Lock()
	ep, ok := n.nodes[d.env.To]
	stale := n.down[d.env.To] || n.epoch[d.env.To] != d.epoch
	n.mu.Unlock()
	if !ok || stale {
		return
	}
	ep.push(d.env)
}

// memEndpoint is the in-memory Endpoint.
type memEndpoint struct {
	net  *MemNetwork
	node id.NodeID

	inbox *queue.Queue[msg.Envelope]
	recv  chan msg.Envelope
	done  chan struct{}

	// inHand is 1 while the pump holds a message popped from the inbox but
	// not yet handed to the recv channel; Pending counts it so a message is
	// never momentarily invisible to drain checks.
	inHand atomic.Int32

	mu     sync.Mutex
	closed bool
}

func newMemEndpoint(n *MemNetwork, node id.NodeID) *memEndpoint {
	ep := &memEndpoint{
		net:   n,
		node:  node,
		inbox: queue.New[msg.Envelope](),
		recv:  make(chan msg.Envelope, 64),
		done:  make(chan struct{}),
	}
	go ep.pump()
	return ep
}

// pump moves messages from the unbounded inbox to the bounded recv channel so
// slow consumers never cause sender-side drops.
func (ep *memEndpoint) pump() {
	defer close(ep.recv)
	for {
		for {
			ep.inHand.Store(1)
			env, ok := ep.inbox.Pop()
			if !ok {
				ep.inHand.Store(0)
				break
			}
			select {
			case ep.recv <- env:
				ep.inHand.Store(0)
			case <-ep.done:
				ep.inHand.Store(0)
				return
			}
		}
		select {
		case <-ep.inbox.Out():
			if ep.inbox.Closed() && ep.inbox.Len() == 0 {
				return
			}
		case <-ep.done:
			return
		}
	}
}

func (ep *memEndpoint) push(env msg.Envelope) {
	ep.inbox.Push(env)
}

// ID implements Endpoint.
func (ep *memEndpoint) ID() id.NodeID { return ep.node }

// Send implements Endpoint.
func (ep *memEndpoint) Send(env msg.Envelope) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return fmt.Errorf("%w (%s)", ErrClosed, ep.node)
	}
	ep.mu.Unlock()
	env.From = ep.node
	return ep.net.send(env)
}

// Recv implements Endpoint.
func (ep *memEndpoint) Recv() <-chan msg.Envelope { return ep.recv }

// Pending counts messages delivered to this endpoint but not yet read from
// Recv. It implements PendingCounter; together with InFlightFrom it lets the
// replication layer's promotion drain prove the mailbox empty.
func (ep *memEndpoint) Pending() int {
	return ep.inbox.Len() + len(ep.recv) + int(ep.inHand.Load())
}

// Close implements Endpoint.
func (ep *memEndpoint) Close() error {
	ep.net.mu.Lock()
	if cur, ok := ep.net.nodes[ep.node]; ok && cur == ep {
		delete(ep.net.nodes, ep.node)
	}
	ep.net.mu.Unlock()
	ep.shutdown()
	return nil
}

// shutdown closes the endpoint's channels. Safe to call multiple times and
// with or without net.mu held.
func (ep *memEndpoint) shutdown() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	ep.closed = true
	ep.inbox.Close()
	close(ep.done)
}

// Compile-time interface checks.
var (
	_ Network  = (*MemNetwork)(nil)
	_ Endpoint = (*memEndpoint)(nil)
)
