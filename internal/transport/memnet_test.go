package transport

import (
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
)

func recvOne(t *testing.T, ep Endpoint, within time.Duration) msg.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed while waiting for a message")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for a message")
	}
	panic("unreachable")
}

func TestDeliverBasic(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, err := net.Attach(id.Client(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(id.AppServer(1))
	if err != nil {
		t.Fatal(err)
	}
	want := msg.Heartbeat{Seq: 7}
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: want}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, time.Second)
	if env.From != a.ID() || env.To != b.ID() {
		t.Errorf("bad addressing: %v", env)
	}
	if hb, ok := env.Payload.(msg.Heartbeat); !ok || hb.Seq != 7 {
		t.Errorf("payload = %#v, want %#v", env.Payload, want)
	}
}

func TestSendForcesFromField(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, _ := net.Attach(id.Client(1))
	b, _ := net.Attach(id.Client(2))
	// Spoof the From field; the network must overwrite it.
	if err := a.Send(msg.Envelope{From: id.AppServer(9), To: b.ID(), Payload: msg.Heartbeat{}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, time.Second)
	if env.From != a.ID() {
		t.Errorf("From = %v, want %v (spoofing must be impossible)", env.From, a.ID())
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	net := NewMemNetwork(Options{DefaultLatency: 5 * time.Millisecond})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	// Crash b while a message is in flight: it must not be delivered even
	// after b re-attaches.
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	net.Crash(b.ID())
	if !net.Down(b.ID()) {
		t.Fatal("Down must report crashed node")
	}
	// Old endpoint's recv closes.
	select {
	case _, ok := <-b.Recv():
		if ok {
			t.Fatal("crashed endpoint delivered a message")
		}
	case <-time.After(time.Second):
		t.Fatal("crashed endpoint did not close")
	}
	b2, err := net.Attach(id.AppServer(2))
	if err != nil {
		t.Fatal(err)
	}
	// In-flight message from before the crash must not appear.
	select {
	case env := <-b2.Recv():
		t.Fatalf("stale pre-crash message delivered: %v", env)
	case <-time.After(30 * time.Millisecond):
	}
	// New sends do arrive.
	if err := a.Send(msg.Envelope{To: b2.ID(), Payload: msg.Heartbeat{Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b2, time.Second)
	if hb := env.Payload.(msg.Heartbeat); hb.Seq != 2 {
		t.Errorf("got seq %d, want 2", hb.Seq)
	}
}

func TestCrashedNodeCannotSend(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	net.Attach(id.AppServer(2))
	net.Crash(a.ID())
	if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: msg.Heartbeat{}}); err == nil {
		t.Fatal("send from crashed node must fail")
	}
}

func TestBlockedLinkDrops(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	net.SetBlocked(a.ID(), b.ID(), true)
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("blocked link delivered")
	case <-time.After(30 * time.Millisecond):
	}
	// Reverse direction is unaffected.
	if err := b.Send(msg.Envelope{To: a.ID(), Payload: msg.Heartbeat{Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, time.Second)
	// Heal restores the link.
	net.Heal()
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: 3}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
}

func TestPartitionBlocksBothWays(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	net.Partition([]id.NodeID{a.ID()}, []id.NodeID{b.ID()})
	a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{}})
	b.Send(msg.Envelope{To: a.ID(), Payload: msg.Heartbeat{}})
	select {
	case <-a.Recv():
		t.Fatal("partitioned link delivered to a")
	case <-b.Recv():
		t.Fatal("partitioned link delivered to b")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestLossProbabilityDropsRoughly(t *testing.T) {
	net := NewMemNetwork(Options{LossProb: 0.5, Seed: 42})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	const n = 400
	for i := 0; i < n; i++ {
		a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: uint64(i)}})
	}
	got := 0
	deadline := time.After(2 * time.Second)
collect:
	for {
		select {
		case <-b.Recv():
			got++
		case <-deadline:
			break collect
		case <-time.After(50 * time.Millisecond):
			break collect
		}
	}
	if got < n/4 || got > 3*n/4 {
		t.Errorf("with 50%% loss, delivered %d of %d", got, n)
	}
}

func TestDuplicationDelivers(t *testing.T) {
	net := NewMemNetwork(Options{DupProb: 1.0, Seed: 3})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: 5}})
	recvOne(t, b, time.Second)
	recvOne(t, b, time.Second) // the duplicate
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const lat = 40 * time.Millisecond
	net := NewMemNetwork(Options{DefaultLatency: lat})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	start := time.Now()
	a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{}})
	recvOne(t, b, time.Second)
	if el := time.Since(start); el < lat {
		t.Errorf("delivered after %v, want >= %v", el, lat)
	}
}

func TestLatencyFuncPerLink(t *testing.T) {
	slow := id.DBServer(1)
	net := NewMemNetwork(Options{
		Latency: func(from, to id.NodeID, p msg.Payload) time.Duration {
			if to == slow {
				return 50 * time.Millisecond
			}
			return 0
		},
	})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	fast, _ := net.Attach(id.AppServer(2))
	slowEP, _ := net.Attach(slow)

	start := time.Now()
	a.Send(msg.Envelope{To: fast.ID(), Payload: msg.Heartbeat{}})
	recvOne(t, fast, time.Second)
	if el := time.Since(start); el > 20*time.Millisecond {
		t.Errorf("fast link took %v", el)
	}
	start = time.Now()
	a.Send(msg.Envelope{To: slow, Payload: msg.Heartbeat{}})
	recvOne(t, slowEP, time.Second)
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("slow link took %v, want >= 50ms", el)
	}
}

func TestPerLinkOrderIsFIFOWithoutJitter(t *testing.T) {
	net := NewMemNetwork(Options{DefaultLatency: time.Millisecond})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	b, _ := net.Attach(id.AppServer(2))
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: uint64(i)}})
	}
	for i := 0; i < n; i++ {
		env := recvOne(t, b, time.Second)
		if hb := env.Payload.(msg.Heartbeat); hb.Seq != uint64(i) {
			t.Fatalf("message %d arrived out of order (seq %d)", i, hb.Seq)
		}
	}
}

func TestSnifferSeesTraffic(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	var mu sync.Mutex
	var events []SniffEvent
	net.AddSniffer(func(ev SniffEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	a, _ := net.Attach(id.Client(1))
	b, _ := net.Attach(id.AppServer(1))
	a.Send(msg.Envelope{To: b.ID(), Payload: msg.Request{RID: id.ResultID{Client: a.ID(), Seq: 1, Try: 1}}})
	recvOne(t, b, time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("sniffer saw %d events, want 1", len(events))
	}
	if events[0].Payload.Kind() != msg.KindRequest || events[0].Dropped {
		t.Errorf("bad sniff event: %+v", events[0])
	}
}

func TestBroadcastHelper(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	a, _ := net.Attach(id.AppServer(1))
	var eps []Endpoint
	var dests []id.NodeID
	for i := 1; i <= 3; i++ {
		ep, _ := net.Attach(id.DBServer(i))
		eps = append(eps, ep)
		dests = append(dests, ep.ID())
	}
	if err := Broadcast(a, dests, msg.Ready{Inc: 1}); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps {
		env := recvOne(t, ep, time.Second)
		if env.Payload.Kind() != msg.KindReady {
			t.Errorf("got %v", env)
		}
	}
}

func TestCloseIsIdempotentAndStopsSends(t *testing.T) {
	net := NewMemNetwork(Options{})
	a, _ := net.Attach(id.AppServer(1))
	net.Close()
	net.Close() // second close must not panic
	if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: msg.Heartbeat{}}); err == nil {
		t.Fatal("send after network close must fail")
	}
	if _, err := net.Attach(id.AppServer(3)); err == nil {
		t.Fatal("attach after close must fail")
	}
}

func TestReattachReplacesEndpoint(t *testing.T) {
	net := NewMemNetwork(Options{})
	defer net.Close()
	old, _ := net.Attach(id.AppServer(1))
	neu, _ := net.Attach(id.AppServer(1))
	// Old endpoint must be closed.
	select {
	case _, ok := <-old.Recv():
		if ok {
			t.Fatal("old endpoint received after re-attach")
		}
	case <-time.After(time.Second):
		t.Fatal("old endpoint not closed on re-attach")
	}
	b, _ := net.Attach(id.AppServer(2))
	b.Send(msg.Envelope{To: id.AppServer(1), Payload: msg.Heartbeat{Seq: 3}})
	env := recvOne(t, neu, time.Second)
	if hb := env.Payload.(msg.Heartbeat); hb.Seq != 3 {
		t.Errorf("new endpoint got %v", env)
	}
}
