//go:build !etx_nowritev

package tcptransport

import (
	"net"
	"time"
)

// vectoredWrites reports which flush implementation this binary carries;
// tests use it to gate zero-copy assertions.
const vectoredWrites = true

// flush hands one queue drain to the kernel in a single vectored write
// (writev via net.Buffers): the frames are scatter-gathered directly from
// the pooled buffers, no coalescing copy. The whole flush runs under
// WriteTimeout so a peer that stops reading trips the deadline instead of
// wedging the writer.
func (ep *Endpoint) flush(c net.Conn, frames []*[]byte) error {
	if err := c.SetWriteDeadline(time.Now().Add(ep.cfg.WriteTimeout)); err != nil {
		return err
	}
	var total uint64
	if len(frames) == 1 {
		// One frame: a plain write is the same syscall count with less setup.
		f := *frames[0]
		if _, err := c.Write(f); err != nil {
			return err
		}
		total = uint64(len(f))
	} else {
		// net.Buffers.WriteTo consumes (modifies) the slice, so build a
		// fresh header array per flush; the frame payloads themselves are
		// referenced, not copied.
		bufs := make(net.Buffers, len(frames))
		for i, f := range frames {
			bufs[i] = *f
			total += uint64(len(*f))
		}
		if _, err := bufs.WriteTo(c); err != nil {
			return err
		}
	}
	ep.writevCalls.Inc()
	ep.framesSent.Add(uint64(len(frames)))
	ep.bytesSent.Add(total)
	return nil
}
