package tcptransport_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/rchan"
	"etx/internal/stablestore"
	"etx/internal/transport/tcptransport"
	"etx/internal/xadb"
)

// TestFullProtocolOverTCP runs the complete e-Transaction stack over real
// loopback TCP: three application servers, one file-backed database server,
// one client — the same wiring the cmd/ binaries use.
func TestFullProtocolOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}

	// Reserve addresses by listening on :0 for every node, in two passes so
	// the address book is complete before protocol endpoints start.
	appIDs := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	dbID := id.DBServer(1)
	clID := id.Client(1)

	eps := make(map[id.NodeID]*tcptransport.Endpoint)
	book := make(map[id.NodeID]string)
	for _, n := range append(append([]id.NodeID{}, appIDs...), dbID, clID) {
		ep, err := tcptransport.Listen(tcptransport.Config{Self: n, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[n] = ep
		book[n] = ep.Addr()
	}
	for _, ep := range eps {
		ep.SetPeers(book)
	}

	// Database server on a real journal file.
	store, err := stablestore.OpenFile(filepath.Join(t.TempDir(), "db.journal"), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.CloseFile() })
	engine, err := xadb.Open(store, xadb.Config{Self: dbID})
	if err != nil {
		t.Fatal(err)
	}
	engine.Seed([]kv.Write{{Key: "acct/alice", Val: kv.EncodeInt(100)}})
	dbSrv, err := core.NewDataServer(core.DataServerConfig{
		Self: dbID, AppServers: appIDs, Engine: engine,
		Endpoint: rchan.Wrap(eps[dbID], 50*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	dbSrv.Start()
	t.Cleanup(dbSrv.Stop)

	// Application servers.
	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		amount, err := strconv.ParseInt(string(req), 10, 64)
		if err != nil {
			return nil, err
		}
		rep, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpAdd, Key: "acct/alice", Delta: amount})
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", rep.Num)), nil
	})
	for _, appID := range appIDs {
		srv, err := core.NewAppServer(core.AppServerConfig{
			Self: appID, AppServers: appIDs, DataServers: []id.NodeID{dbID},
			Endpoint:       rchan.Wrap(eps[appID], 50*time.Millisecond),
			Logic:          logic,
			SuspectTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}

	// Client.
	cl, err := core.NewClient(core.ClientConfig{
		Self: clID, AppServers: appIDs,
		Endpoint: rchan.Wrap(eps[clID], 50*time.Millisecond),
		Backoff:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i <= 3; i++ {
		res, err := cl.Issue(ctx, []byte("-10"))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := fmt.Sprintf("%d", 100-10*i); string(res) != want {
			t.Fatalf("request %d -> %q, want %q", i, res, want)
		}
	}
	if n, _ := engine.Store().GetInt("acct/alice"); n != 70 {
		t.Fatalf("balance = %d, want exactly three withdrawals", n)
	}
}
