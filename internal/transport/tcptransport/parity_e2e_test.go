package tcptransport_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/rchan"
	"etx/internal/stablestore"
	"etx/internal/transport/tcptransport"
	"etx/internal/xadb"
)

// runBankWorkload stands up the full batched stack over loopback TCP with the
// given per-flush frame cap and runs a deterministic bank workload: worker i
// withdraws from its own account rounds times, sequentially. It returns every
// reply in (worker, round) order plus the final balances.
func runBankWorkload(t *testing.T, maxWritev int) (replies []string, balances []int64) {
	t.Helper()
	appIDs := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	dbID := id.DBServer(1)
	clID := id.Client(1)

	eps := make(map[id.NodeID]*tcptransport.Endpoint)
	book := make(map[id.NodeID]string)
	for _, n := range append(append([]id.NodeID{}, appIDs...), dbID, clID) {
		ep, err := tcptransport.Listen(tcptransport.Config{Self: n, Listen: "127.0.0.1:0", MaxWritev: maxWritev})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[n] = ep
		book[n] = ep.Addr()
	}
	for _, ep := range eps {
		ep.SetPeers(book)
	}

	store := stablestore.New(500 * time.Microsecond)
	store.SetBatchWindow(500 * time.Microsecond)
	engine, err := xadb.Open(store, xadb.Config{Self: dbID})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 3
	seed := make([]kv.Write, workers)
	for i := range seed {
		seed[i] = kv.Write{Key: fmt.Sprintf("acct/a%02d", i), Val: kv.EncodeInt(100)}
	}
	engine.Seed(seed)
	dbSrv, err := core.NewDataServer(core.DataServerConfig{
		Self: dbID, AppServers: appIDs, Engine: engine,
		Endpoint: rchan.Wrap(eps[dbID], 50*time.Millisecond),
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dbSrv.Start()
	t.Cleanup(dbSrv.Stop)

	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		rep, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpAdd, Key: string(req), Delta: -1})
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", rep.Num)), nil
	})
	for _, appID := range appIDs {
		srv, err := core.NewAppServer(core.AppServerConfig{
			Self: appID, AppServers: appIDs, DataServers: []id.NodeID{dbID},
			Endpoint:       rchan.Wrap(eps[appID], 50*time.Millisecond),
			Logic:          logic,
			SuspectTimeout: 300 * time.Millisecond,
			Workers:        workers,
			BatchWindow:    500 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}

	cl, err := core.NewClient(core.ClientConfig{
		Self: clID, AppServers: appIDs,
		Endpoint: rchan.Wrap(eps[clID], 50*time.Millisecond),
		Backoff:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make([][]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		key := fmt.Sprintf("acct/a%02d", i)
		out[i] = make([]string, rounds)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := cl.Issue(ctx, []byte(key))
				if err != nil {
					t.Errorf("%s round %d: %v", key, r, err)
					return
				}
				out[i][r] = string(res)
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < workers; i++ {
		replies = append(replies, out[i]...)
		n, _ := engine.Store().GetInt(fmt.Sprintf("acct/a%02d", i))
		balances = append(balances, n)
	}
	return replies, balances
}

// TestWritevParityWithPerFrameWrites is the e2e parity gate of the transport
// rewrite: the batched commit path must produce byte-identical outcomes
// whether frames cross the wire one write per frame (MaxWritev 1 — the
// historical transport's behaviour) or packed many to a writev. Vectoring is
// a kernel-boundary optimization; nothing above the framing layer may be able
// to tell the difference.
func TestWritevParityWithPerFrameWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}
	perFrameReplies, perFrameBalances := runBankWorkload(t, 1)
	writevReplies, writevBalances := runBankWorkload(t, 64)

	if len(perFrameReplies) != len(writevReplies) {
		t.Fatalf("reply counts differ: %d vs %d", len(perFrameReplies), len(writevReplies))
	}
	for i := range perFrameReplies {
		if perFrameReplies[i] != writevReplies[i] {
			t.Errorf("reply %d: per-frame %q, writev %q", i, perFrameReplies[i], writevReplies[i])
		}
	}
	for i := range perFrameBalances {
		if perFrameBalances[i] != writevBalances[i] {
			t.Errorf("balance %d: per-frame %d, writev %d", i, perFrameBalances[i], writevBalances[i])
		}
	}
	// The workload is deterministic, so pin the absolute values too: each
	// account sees exactly rounds sequential withdrawals from 100.
	for i, r := range perFrameReplies {
		want := fmt.Sprintf("%d", 99-i%3)
		if r != want {
			t.Errorf("reply %d = %q, want %q", i, r, want)
		}
	}
	for i, b := range perFrameBalances {
		if b != 97 {
			t.Errorf("balance %d = %d, want 97", i, b)
		}
	}
}
