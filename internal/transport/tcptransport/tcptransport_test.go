package tcptransport

import (
	"bytes"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/lint/leakcheck"
	"etx/internal/msg"
	"etx/internal/rchan"
)

// pairUp creates two connected endpoints on loopback. Every test that goes
// through it also asserts that Close reaps the accept/read/write goroutines
// (the leak class the golifecycle analyzer guards statically).
func pairUp(t *testing.T, a, b id.NodeID) (*Endpoint, *Endpoint) {
	t.Helper()
	leakcheck.Check(t)
	epA, err := Listen(Config{Self: a, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	epB, err := Listen(Config{Self: b, Listen: "127.0.0.1:0", Peers: map[id.NodeID]string{a: epA.Addr()}})
	if err != nil {
		epA.Close()
		t.Fatal(err)
	}
	epA.SetPeers(map[id.NodeID]string{b: epB.Addr()})
	t.Cleanup(func() {
		epA.Close()
		epB.Close()
	})
	return epA, epB
}

func recvOne(t *testing.T, ep *Endpoint, within time.Duration) msg.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("endpoint closed")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for delivery")
	}
	panic("unreachable")
}

func TestRoundTripOverTCP(t *testing.T) {
	a, b := pairUp(t, id.AppServer(1), id.DBServer(1))
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Prepare{RID: rid}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 5*time.Second)
	if env.From != a.ID() {
		t.Errorf("From = %v", env.From)
	}
	if p, ok := env.Payload.(msg.Prepare); !ok || p.RID != rid {
		t.Errorf("payload = %#v", env.Payload)
	}
	// And the reverse direction (separate connection).
	if err := b.Send(msg.Envelope{To: a.ID(), Payload: msg.VoteMsg{RID: rid, V: msg.VoteYes, Inc: 1}}); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, a, 5*time.Second)
	if v, ok := env.Payload.(msg.VoteMsg); !ok || v.V != msg.VoteYes {
		t.Errorf("payload = %#v", env.Payload)
	}
}

func TestLargePayload(t *testing.T) {
	a, b := pairUp(t, id.AppServer(1), id.AppServer(2))
	body := bytes.Repeat([]byte("x"), 1<<20)
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Request{RID: rid, Body: body}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 10*time.Second)
	req := env.Payload.(msg.Request)
	if !bytes.Equal(req.Body, body) {
		t.Fatal("1 MiB payload mangled")
	}
}

func TestSendToUnreachablePeerIsFairLoss(t *testing.T) {
	ep, err := Listen(Config{
		Self: id.AppServer(1), Listen: "127.0.0.1:0",
		Peers:       map[id.NodeID]string{id.AppServer(2): "127.0.0.1:1"}, // nothing listens there
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	// Fair loss: no error, message silently dropped.
	if err := ep.Send(msg.Envelope{To: id.AppServer(2), Payload: msg.Heartbeat{Seq: 1}}); err != nil {
		t.Fatalf("fair-loss send returned %v", err)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	a, b := pairUp(t, id.AppServer(1), id.AppServer(2))
	bAddr := b.Addr()
	if err := a.Send(msg.Envelope{To: b.ID(), Payload: msg.Heartbeat{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 5*time.Second)

	// Restart b on the same address.
	b.Close()
	b2, err := Listen(Config{Self: id.AppServer(2), Listen: bAddr, Peers: map[id.NodeID]string{a.ID(): a.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	// The first send may be lost on the dead connection; retry until the
	// fresh connection delivers (exactly what rchan automates).
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.Send(msg.Envelope{To: b2.ID(), Payload: msg.Heartbeat{Seq: 2}})
		select {
		case env := <-b2.Recv():
			if hb, ok := env.Payload.(msg.Heartbeat); ok && hb.Seq == 2 {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("never reconnected")
		}
	}
}

func TestReliableChannelsOverTCP(t *testing.T) {
	rawA, rawB := pairUp(t, id.AppServer(1), id.AppServer(2))
	a := rchan.Wrap(rawA, 50*time.Millisecond)
	b := rchan.Wrap(rawB, 50*time.Millisecond)
	defer a.Close()
	defer b.Close()

	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	for i := 0; i < 20; i++ {
		if err := a.Send(msg.Envelope{To: rawB.ID(), Payload: msg.Decide{RID: rid, O: msg.OutcomeCommit}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatal("closed early")
			}
			if env.Payload.Kind() != msg.KindDecide {
				t.Fatalf("unexpected payload %v", env.Payload.Kind())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
}

func TestParsePeers(t *testing.T) {
	book, err := ParsePeers(id.RoleAppServer, "1=127.0.0.1:7101,2=127.0.0.1:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 2 || book[id.AppServer(1)] != "127.0.0.1:7101" {
		t.Fatalf("book = %v", book)
	}
	if _, err := ParsePeers(id.RoleAppServer, "nonsense"); err == nil {
		t.Fatal("malformed spec accepted")
	}
	empty, err := ParsePeers(id.RoleAppServer, "")
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v %v", empty, err)
	}
}

func TestMerge(t *testing.T) {
	m := Merge(
		map[id.NodeID]string{id.AppServer(1): "a"},
		map[id.NodeID]string{id.DBServer(1): "b"},
		nil,
	)
	if len(m) != 2 {
		t.Fatalf("merge = %v", m)
	}
}
