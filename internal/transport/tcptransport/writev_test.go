package tcptransport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
)

// TestMultiFrameDrainPreservesBoundaries hammers one link with concurrent
// senders and varied frame sizes so the writer's opportunistic drain flushes
// many frames per writev, then verifies every envelope arrives intact: the
// scatter-gather path must preserve frame boundaries exactly (no byte of one
// frame bleeding into the next) with zero coalescing copies.
func TestMultiFrameDrainPreservesBoundaries(t *testing.T) {
	a, b := pairUp(t, id.AppServer(1), id.AppServer(2))

	const senders = 4
	const perSender = 150
	const total = senders * perSender

	// Varied sizes: tiny frames that pack many to a drain, frames that
	// outgrow the initial pool buffer, and one class above retainedReadBuf to
	// cross the receiver's one-shot-allocation path.
	sizes := []int{16, 300, 5000, retainedReadBuf + 512}

	bodyFor := func(worker, i int) []byte {
		body := make([]byte, sizes[(worker+i)%len(sizes)])
		pat := byte(worker*31 + i)
		for j := range body {
			body[j] = pat + byte(j)
		}
		return body
	}

	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				rid := id.ResultID{Client: id.Client(w + 1), Seq: uint64(i), Try: 1}
				env := msg.Envelope{To: b.ID(), Payload: msg.Request{RID: rid, Body: bodyFor(w, i)}}
				if err := a.Send(env); err != nil {
					t.Errorf("send %d/%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	seen := make(map[id.ResultID]bool)
	deadline := time.After(30 * time.Second)
	for len(seen) < total {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatal("receiver closed early")
			}
			req, okr := env.Payload.(msg.Request)
			if !okr {
				t.Fatalf("unexpected payload %T", env.Payload)
			}
			w, i := req.RID.Client.Index-1, int(req.RID.Seq)
			want := bodyFor(w, i)
			if len(req.Body) != len(want) {
				t.Fatalf("frame (%d,%d): body %d bytes, want %d", w, i, len(req.Body), len(want))
			}
			for j := range want {
				if req.Body[j] != want[j] {
					t.Fatalf("frame (%d,%d): byte %d = %#x, want %#x (boundary bleed)", w, i, j, req.Body[j], want[j])
				}
			}
			if seen[req.RID] {
				t.Fatalf("frame (%d,%d) delivered twice", w, i)
			}
			seen[req.RID] = true
		case <-deadline:
			t.Fatalf("only %d/%d frames delivered", len(seen), total)
		}
	}

	st := a.Stats()
	if st.FramesSent != total {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, total)
	}
	if st.QueueDrops != 0 {
		t.Errorf("QueueDrops = %d on an uncontended link", st.QueueDrops)
	}
	if st.WritevCalls == 0 || st.WritevCalls > st.FramesSent {
		t.Errorf("WritevCalls = %d (FramesSent %d)", st.WritevCalls, st.FramesSent)
	}
	if Vectored() && st.Coalesced != 0 {
		t.Errorf("Coalesced = %d on the writev path, want 0 copies", st.Coalesced)
	}
	if rb := b.Stats(); rb.FramesRecv != total {
		t.Errorf("receiver FramesRecv = %d, want %d", rb.FramesRecv, total)
	}
}

// rawReader accepts one connection and hands it back; the caller controls
// exactly when and how fast bytes are read off the wire.
func rawListener(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln, ln.Addr().String()
}

// TestPooledFramesNotReusedWhileQueued pins the ownership rule of the frame
// pool: a frame handed to a writer queue belongs to that writer until the
// kernel flush that consumes it. The slow peer's reader stalls so large
// frames pile up queued and mid-flush while concurrent senders churn the pool
// hard on a fast peer; the raw bytes read off the slow link afterwards must
// still decode to exactly the envelopes that were enqueued.
func TestPooledFramesNotReusedWhileQueued(t *testing.T) {
	slowLn, slowAddr := rawListener(t)
	fastLn, fastAddr := rawListener(t)

	slowPeer, fastPeer := id.AppServer(2), id.AppServer(3)
	ep, err := Listen(Config{
		Self: id.AppServer(1), Listen: "127.0.0.1:0",
		Peers:        map[id.NodeID]string{slowPeer: slowAddr, fastPeer: fastAddr},
		QueueDepth:   4096,             // never drop: every frame must eventually cross
		WriteTimeout: 60 * time.Second, // backpressure, not the deadline, stalls this link
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Fast peer: drain and discard as quickly as possible, recycling the
	// endpoint's pooled frames at full speed.
	go func() {
		c, err := fastLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
	}()

	const slowFrames = 64
	const slowBody = 256 << 10 // 16 MiB total: far beyond loopback socket buffers
	const churnFrames = 2000

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := slowLn.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // big frames into the stalled link
		defer wg.Done()
		body := make([]byte, slowBody)
		for i := 0; i < slowFrames; i++ {
			for j := range body {
				body[j] = byte(i)
			}
			rid := id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}
			if err := ep.Send(msg.Envelope{To: slowPeer, Payload: msg.Request{RID: rid, Body: body}}); err != nil {
				t.Errorf("slow send %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // pool churn on the fast link
		defer wg.Done()
		body := make([]byte, 512)
		for i := 0; i < churnFrames; i++ {
			rid := id.ResultID{Client: id.Client(9), Seq: uint64(i), Try: 1}
			if err := ep.Send(msg.Envelope{To: fastPeer, Payload: msg.Request{RID: rid, Body: body}}); err != nil {
				t.Errorf("churn send %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	// Only now start reading the stalled link: everything still queued (or
	// blocked mid-flush) was exposed to the churn above while waiting.
	var conn net.Conn
	select {
	case conn = <-accepted:
	case <-time.After(10 * time.Second):
		t.Fatal("slow peer never dialed")
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))

	got := make(map[uint64]bool)
	var lenBuf [4]byte
	buf := make([]byte, slowBody+1024)
	for len(got) < slowFrames {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			t.Fatalf("after %d/%d frames: %v", len(got), slowFrames, err)
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if int(n) > len(buf) {
			t.Fatalf("frame length %d exceeds any sent frame", n)
		}
		if _, err := io.ReadFull(conn, buf[:n]); err != nil {
			t.Fatalf("frame body: %v", err)
		}
		env, err := msg.Decode(buf[:n])
		if err != nil {
			t.Fatalf("frame %d corrupted: %v", len(got), err)
		}
		req, ok := env.Payload.(msg.Request)
		if !ok {
			t.Fatalf("unexpected payload %T", env.Payload)
		}
		if len(req.Body) != slowBody {
			t.Fatalf("seq %d: body %d bytes, want %d", req.RID.Seq, len(req.Body), slowBody)
		}
		pat := byte(req.RID.Seq)
		for j, bb := range req.Body {
			if bb != pat {
				t.Fatalf("seq %d: byte %d = %#x, want %#x (pooled frame reused while queued)", req.RID.Seq, j, bb, pat)
			}
		}
		if got[req.RID.Seq] {
			t.Fatalf("seq %d delivered twice", req.RID.Seq)
		}
		got[req.RID.Seq] = true
	}
	if st := ep.Stats(); st.QueueDrops != 0 {
		t.Errorf("QueueDrops = %d, want 0 (queue sized for the whole workload)", st.QueueDrops)
	}
}

// TestWriteDeadlineDropsStalledPeer verifies the WriteTimeout satellite: a
// peer that accepts the connection but never reads must trip the write
// deadline, get its connection dropped (counted), and — once a live peer
// returns on the same address — the writer must redial and deliver again.
func TestWriteDeadlineDropsStalledPeer(t *testing.T) {
	stalledLn, stalledAddr := rawListener(t)
	peer := id.AppServer(2)

	ep, err := Listen(Config{
		Self: id.AppServer(1), Listen: "127.0.0.1:0",
		Peers:        map[id.NodeID]string{peer: stalledAddr},
		WriteTimeout: 150 * time.Millisecond,
		DialTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Accept and then do nothing: the kernel buffers fill, the flush blocks,
	// the deadline fires. A tiny receive window makes that quick.
	var stalledConns []net.Conn
	var stalledMu sync.Mutex
	go func() {
		for {
			c, err := stalledLn.Accept()
			if err != nil {
				return
			}
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetReadBuffer(4 << 10)
			}
			stalledMu.Lock()
			stalledConns = append(stalledConns, c)
			stalledMu.Unlock()
		}
	}()

	body := make([]byte, 256<<10)
	deadline := time.Now().Add(15 * time.Second)
	for ep.Stats().ConnDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("deadline never tripped: %s", ep.Stats())
		}
		rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
		ep.Send(msg.Envelope{To: peer, Payload: msg.Request{RID: rid, Body: body}})
		time.Sleep(10 * time.Millisecond)
	}

	// Replace the black hole with a live endpoint on the same address; the
	// persistent writer must redial and deliver.
	stalledLn.Close()
	stalledMu.Lock()
	for _, c := range stalledConns {
		c.Close()
	}
	stalledMu.Unlock()

	var live *Endpoint
	for attempt := 0; ; attempt++ {
		live, err = Listen(Config{Self: peer, Listen: stalledAddr})
		if err == nil {
			break
		}
		if attempt > 50 {
			t.Fatalf("rebind %s: %v", stalledAddr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer live.Close()

	redial := time.After(15 * time.Second)
	for seq := uint64(1); ; seq++ {
		ep.Send(msg.Envelope{To: peer, Payload: msg.Heartbeat{Seq: seq}})
		select {
		case env, ok := <-live.Recv():
			if !ok {
				t.Fatal("live endpoint closed")
			}
			if _, isHB := env.Payload.(msg.Heartbeat); isHB {
				if drops := ep.Stats().ConnDrops; drops < 1 {
					t.Fatalf("ConnDrops = %d after a tripped deadline", drops)
				}
				return // redelivered after the drop: redial works
			}
		case <-time.After(100 * time.Millisecond):
		}
		select {
		case <-redial:
			t.Fatalf("never redelivered after deadline drop: %s", ep.Stats())
		default:
		}
	}
}

// TestFramesPerWritev pins the amortization metric's edge cases.
func TestFramesPerWritev(t *testing.T) {
	if got := (Stats{}).FramesPerWritev(); got != 0 {
		t.Errorf("zero-call FramesPerWritev = %v", got)
	}
	s := Stats{FramesSent: 96, WritevCalls: 3}
	if got := s.FramesPerWritev(); got != 32 {
		t.Errorf("FramesPerWritev = %v, want 32", got)
	}
	if str := s.String(); str == "" {
		t.Error("empty Stats.String")
	}
}
