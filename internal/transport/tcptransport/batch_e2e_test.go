package tcptransport_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/rchan"
	"etx/internal/stablestore"
	"etx/internal/transport/tcptransport"
	"etx/internal/xadb"
)

// TestBatchedCommitPathOverTCP runs the stack over real loopback TCP with the
// whole batching stack on — group-commit combiner at the store, batched serve
// loop at the database server, outbound aggregation at the application
// servers — and pipelined concurrent requests, verifying Batch envelopes
// survive the codec/framing path and that fsyncs were genuinely shared.
func TestBatchedCommitPathOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}

	appIDs := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	dbID := id.DBServer(1)
	clID := id.Client(1)

	eps := make(map[id.NodeID]*tcptransport.Endpoint)
	book := make(map[id.NodeID]string)
	for _, n := range append(append([]id.NodeID{}, appIDs...), dbID, clID) {
		ep, err := tcptransport.Listen(tcptransport.Config{Self: n, Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[n] = ep
		book[n] = ep.Addr()
	}
	for _, ep := range eps {
		ep.SetPeers(book)
	}

	store, err := stablestore.OpenFile(filepath.Join(t.TempDir(), "db.journal"), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.CloseFile() })
	store.SetBatchWindow(500 * time.Microsecond)
	engine, err := xadb.Open(store, xadb.Config{Self: dbID})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	seed := make([]kv.Write, workers)
	for i := range seed {
		seed[i] = kv.Write{Key: fmt.Sprintf("acct/a%02d", i), Val: kv.EncodeInt(100)}
	}
	engine.Seed(seed)
	dbSrv, err := core.NewDataServer(core.DataServerConfig{
		Self: dbID, AppServers: appIDs, Engine: engine,
		Endpoint: rchan.Wrap(eps[dbID], 50*time.Millisecond),
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dbSrv.Start()
	t.Cleanup(dbSrv.Stop)

	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		rep, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpAdd, Key: string(req), Delta: -1})
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d", rep.Num)), nil
	})
	for _, appID := range appIDs {
		srv, err := core.NewAppServer(core.AppServerConfig{
			Self: appID, AppServers: appIDs, DataServers: []id.NodeID{dbID},
			Endpoint:       rchan.Wrap(eps[appID], 50*time.Millisecond),
			Logic:          logic,
			SuspectTimeout: 300 * time.Millisecond,
			Workers:        workers,
			BatchWindow:    500 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}

	cl, err := core.NewClient(core.ClientConfig{
		Self: clID, AppServers: appIDs,
		Endpoint: rchan.Wrap(eps[clID], 50*time.Millisecond),
		Backoff:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	syncBase, forceBase := store.Syncs(), store.ForcedWrites()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		key := fmt.Sprintf("acct/a%02d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res, err := cl.Issue(ctx, []byte(key)); err != nil {
				errs <- fmt.Errorf("%s: %w", key, err)
			} else if string(res) != "99" {
				errs <- fmt.Errorf("%s -> %q, want 99", key, res)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for i := 0; i < workers; i++ {
		if n, _ := engine.Store().GetInt(fmt.Sprintf("acct/a%02d", i)); n != 99 {
			t.Errorf("acct/a%02d = %d, want exactly one withdrawal", i, n)
		}
	}
	syncs := store.Syncs() - syncBase
	forces := store.ForcedWrites() - forceBase
	if forces == 0 {
		t.Fatal("no forced writes recorded")
	}
	// Unbatched, the 16 commits would pay 32 fsyncs (prepare + commit each).
	// Batched — drained mailbox batches sharing Syncs, Syncs sharing device
	// forces — they must land far below one fsync per commit.
	if syncs >= workers {
		t.Errorf("Syncs = %d for %d commits (ForcedWrites = %d): nothing combined over TCP", syncs, workers, forces)
	}
}
