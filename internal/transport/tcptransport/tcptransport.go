// Package tcptransport implements the transport abstraction over real TCP,
// for multi-process deployments (the cmd/ binaries). Frames are
// length-prefixed msg.Encode payloads; each direction of a link dials its
// own connection lazily and drops messages on connection failure — the
// fair-loss behaviour the reliable-channel layer (internal/rchan) is
// designed to sit on.
package tcptransport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/queue"
	"etx/internal/transport"
)

// maxFrame bounds a frame to guard against corrupted length prefixes.
const maxFrame = 32 << 20

// Config parameterizes a TCP endpoint.
type Config struct {
	// Self is this process's identity.
	Self id.NodeID
	// Listen is the local listen address (host:port).
	Listen string
	// Peers maps every other node to its listen address.
	Peers map[id.NodeID]string
	// DialTimeout bounds connection attempts. Default 2s.
	DialTimeout time.Duration
}

// Endpoint is a TCP-backed transport.Endpoint.
type Endpoint struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	conns    map[id.NodeID]*peerConn
	accepted map[net.Conn]bool

	inbox  *queue.Queue[msg.Envelope]
	recv   chan msg.Envelope
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once
}

// peerConn is an outgoing connection with a write lock: concurrent Sends to
// the same peer serialize per frame, so frames from different goroutines
// never interleave on the stream (a partial interleaved write would corrupt
// the framing and tear the connection down).
type peerConn struct {
	mu sync.Mutex
	c  net.Conn
}

// framePool recycles frame buffers across Sends; the batched hot path sends
// thousands of envelopes per second and must not allocate one slice each.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// Listen starts a TCP endpoint for cfg.Self on cfg.Listen.
func Listen(cfg Config) (*Endpoint, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Listen, err)
	}
	ep := &Endpoint{
		cfg:      cfg,
		ln:       ln,
		conns:    make(map[id.NodeID]*peerConn),
		accepted: make(map[net.Conn]bool),
		inbox:    queue.New[msg.Envelope](),
		recv:     make(chan msg.Envelope, 64),
		done:     make(chan struct{}),
	}
	ep.wg.Add(2)
	go ep.acceptLoop()
	go ep.pump()
	return ep, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ep *Endpoint) Addr() string { return ep.ln.Addr().String() }

// SetPeers replaces the address book. Two-pass wiring support: listen on
// ":0" everywhere first, gather the bound addresses, then install the
// complete book before the protocol starts.
func (ep *Endpoint) SetPeers(book map[id.NodeID]string) {
	cp := make(map[id.NodeID]string, len(book))
	for k, v := range book {
		cp[k] = v
	}
	ep.mu.Lock()
	ep.cfg.Peers = cp
	ep.mu.Unlock()
}

// ID implements transport.Endpoint.
func (ep *Endpoint) ID() id.NodeID { return ep.cfg.Self }

// Recv implements transport.Endpoint.
func (ep *Endpoint) Recv() <-chan msg.Envelope { return ep.recv }

// Close implements transport.Endpoint.
func (ep *Endpoint) Close() error {
	var err error
	ep.closed.Do(func() {
		close(ep.done)
		err = ep.ln.Close()
		ep.mu.Lock()
		for _, pc := range ep.conns {
			pc.c.Close()
		}
		ep.conns = make(map[id.NodeID]*peerConn)
		// Incoming connections must be closed too or their read loops would
		// block in Read forever and Wait would never return.
		for c := range ep.accepted {
			c.Close()
		}
		ep.accepted = make(map[net.Conn]bool)
		ep.mu.Unlock()
		ep.inbox.Close()
		ep.wg.Wait()
	})
	return err
}

// Send implements transport.Endpoint. Failures to reach the peer silently
// drop the message (fair-loss link); the connection is discarded so the next
// send redials. The frame buffer is pooled and the envelope encoded in
// place, so the steady state allocates nothing per send.
func (ep *Endpoint) Send(env msg.Envelope) error {
	select {
	case <-ep.done:
		return transport.ErrClosed
	default:
	}
	env.From = ep.cfg.Self
	bufp := framePool.Get().(*[]byte)
	// Reserve the 4-byte length prefix, then encode directly behind it.
	frame := append((*bufp)[:0], 0, 0, 0, 0)
	frame, err := msg.AppendEncode(frame, env)
	if err != nil {
		framePool.Put(bufp)
		return fmt.Errorf("tcptransport: encode: %w", err)
	}
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	pc, err := ep.conn(env.To)
	if err == nil {
		pc.mu.Lock()
		_, werr := pc.c.Write(frame)
		pc.mu.Unlock()
		if werr != nil {
			ep.dropConn(env.To, pc) // broken link: fair loss
		}
	}
	*bufp = frame[:0]
	framePool.Put(bufp)
	return nil // unreachable peer: fair loss
}

// conn returns (dialing if needed) the outgoing connection to peer.
func (ep *Endpoint) conn(peer id.NodeID) (*peerConn, error) {
	ep.mu.Lock()
	if pc, ok := ep.conns[peer]; ok {
		ep.mu.Unlock()
		return pc, nil
	}
	addr, ok := ep.cfg.Peers[peer]
	ep.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcptransport: no address for %s", peer)
	}
	c, err := net.DialTimeout("tcp", addr, ep.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if existing, ok := ep.conns[peer]; ok {
		c.Close()
		return existing, nil
	}
	pc := &peerConn{c: c}
	ep.conns[peer] = pc
	return pc, nil
}

func (ep *Endpoint) dropConn(peer id.NodeID, pc *peerConn) {
	pc.c.Close()
	ep.mu.Lock()
	if ep.conns[peer] == pc {
		delete(ep.conns, peer)
	}
	ep.mu.Unlock()
}

func (ep *Endpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		ep.accepted[c] = true
		ep.mu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.readLoop(c)
		}()
	}
}

// readLoop decodes frames from one incoming connection until it breaks.
func (ep *Endpoint) readLoop(c net.Conn) {
	defer func() {
		c.Close()
		ep.mu.Lock()
		delete(ep.accepted, c)
		ep.mu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		select {
		case <-ep.done:
			return
		default:
		}
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		env, err := msg.Decode(buf)
		if err != nil {
			continue // corrupted frame: drop, keep the stream
		}
		ep.inbox.Push(env)
	}
}

// pump moves delivered messages to the recv channel.
func (ep *Endpoint) pump() {
	defer ep.wg.Done()
	defer close(ep.recv)
	for {
		for {
			env, ok := ep.inbox.Pop()
			if !ok {
				break
			}
			select {
			case ep.recv <- env:
			case <-ep.done:
				return
			}
		}
		select {
		case <-ep.inbox.Out():
			if ep.inbox.Closed() && ep.inbox.Len() == 0 {
				return
			}
		case <-ep.done:
			return
		}
	}
}

// ParsePeers parses an address book of the form "1=host:port,2=host:port"
// for the given role (cmd flag support).
func ParsePeers(role id.Role, spec string) (map[id.NodeID]string, error) {
	out := make(map[id.NodeID]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range splitComma(spec) {
		var idx int
		var addr string
		if n, err := fmt.Sscanf(part, "%d=%s", &idx, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("tcptransport: malformed peer %q (want index=host:port)", part)
		}
		out[id.NodeID{Role: role, Index: idx}] = addr
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// SortedPeers returns the node ids of an address book ordered by (role,
// index) — the deterministic membership order every process must agree on
// (AppServers[0] is the default primary and round-1 consensus coordinator).
func SortedPeers(book map[id.NodeID]string) []id.NodeID {
	out := make([]id.NodeID, 0, len(book))
	for k := range book {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Merge combines address books.
func Merge(books ...map[id.NodeID]string) map[id.NodeID]string {
	out := make(map[id.NodeID]string)
	for _, b := range books {
		for k, v := range b {
			out[k] = v
		}
	}
	return out
}

// Compile-time interface check.
var _ transport.Endpoint = (*Endpoint)(nil)
