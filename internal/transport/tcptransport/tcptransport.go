// Package tcptransport implements the transport abstraction over real TCP,
// for multi-process deployments (the cmd/ binaries). Frames are
// length-prefixed msg.Encode payloads; each direction of a link dials its
// own connection lazily and drops messages on connection failure — the
// fair-loss behaviour the reliable-channel layer (internal/rchan) is
// designed to sit on.
//
// # Send path
//
// Send never touches the socket. It encodes the envelope into a pooled
// frame and hands the frame to the destination peer's writer goroutine
// through a bounded queue, returning immediately: a stalled or unreachable
// peer can never wedge a sending goroutine. The writer drains whatever is
// queued and flushes the whole drain to the kernel in one scatter-gather
// writev (net.Buffers) without coalescing the frames through a copy; a
// build-tagged fallback (-tags etx_nowritev, writev_fallback.go) coalesces
// into a single buffered write for platforms where writev buys nothing.
// Every kernel flush runs under Config.WriteTimeout — a peer that accepts
// the connection but stops reading trips the deadline, the connection is
// dropped (fair loss, same as the redial-on-error path) and the next drain
// redials. A full queue likewise drops the frame rather than blocking the
// sender. Receive-side framing reads into a recycled per-connection buffer
// (msg.Decode copies every variable-length field out, so reuse is safe).
//
// Wire pressure is counted (frames/bytes in both directions, kernel
// flushes, queue drops, connection drops, coalescing copies — zero on the
// writev path) and exposed through Stats/WireStats.
package tcptransport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/queue"
	"etx/internal/transport"
)

// maxFrame bounds a frame to guard against corrupted length prefixes.
const maxFrame = 32 << 20

// retainedReadBuf caps the receive buffer a connection keeps across frames;
// frames above it get a one-shot allocation instead of pinning megabytes on
// every idle connection.
const retainedReadBuf = 64 << 10

// Config parameterizes a TCP endpoint.
type Config struct {
	// Self is this process's identity.
	Self id.NodeID
	// Listen is the local listen address (host:port).
	Listen string
	// Peers maps every other node to its listen address.
	Peers map[id.NodeID]string
	// DialTimeout bounds connection attempts. Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one kernel flush (the writev covering a whole
	// queue drain). A peer that stops reading trips the deadline and the
	// connection is dropped — fair loss — instead of wedging the writer
	// while frames pile up behind it. Default 5s.
	WriteTimeout time.Duration
	// QueueDepth bounds each peer's outbound frame queue; a send finding
	// the queue full drops the frame (fair loss, counted). Default 1024.
	QueueDepth int
	// MaxWritev caps the frames one kernel flush covers. Default 64;
	// 1 reproduces the historical one-write-per-frame transport (the
	// wire benchmark's baseline).
	MaxWritev int
}

func (c *Config) setDefaults() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxWritev <= 0 {
		c.MaxWritev = 64
	}
}

// Endpoint is a TCP-backed transport.Endpoint.
type Endpoint struct {
	cfg Config
	ln  net.Listener

	// dialCtx cancels in-flight dials on Close so a writer blocked in a
	// connection attempt cannot delay teardown.
	dialCtx    context.Context
	dialCancel context.CancelFunc

	mu       sync.Mutex
	shut     bool // guarded by mu — Close has begun; no new writers
	writers  map[id.NodeID]*peerConn
	accepted map[net.Conn]bool

	inbox  *queue.Queue[msg.Envelope]
	recv   chan msg.Envelope
	done   chan struct{}
	wg     sync.WaitGroup
	closed sync.Once

	// Wire counters, snapshotted by Stats (etxlint statswired).
	framesSent  metrics.Counter
	bytesSent   metrics.Counter
	framesRecv  metrics.Counter
	bytesRecv   metrics.Counter
	writevCalls metrics.Counter // kernel flushes (one writev per queue drain)
	coalesced   metrics.Counter // frames copied into a coalescing buffer (fallback only)
	queueDrops  metrics.Counter // frames dropped on a full peer queue
	connDrops   metrics.Counter // connections dropped on write error or deadline
	queued      metrics.Gauge   // frames currently queued across peers
}

// peerConn is one peer's writer: a bounded frame queue drained by a
// dedicated goroutine that owns the outgoing connection. The writer
// persists across redials; only the connection is dropped on error.
type peerConn struct {
	peer id.NodeID
	q    chan *[]byte

	mu sync.Mutex
	c  net.Conn // guarded by mu — live conn, nil between drops and redials
}

func (pc *peerConn) conn() net.Conn {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.c
}

func (pc *peerConn) setConn(c net.Conn) {
	pc.mu.Lock()
	pc.c = c
	pc.mu.Unlock()
}

// closeConn drops the live connection (if any); the writer redials on the
// next drain.
func (pc *peerConn) closeConn() {
	pc.mu.Lock()
	c := pc.c
	pc.c = nil
	pc.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// framePool recycles frame buffers across Sends; the batched hot path sends
// thousands of envelopes per second and must not allocate one slice each.
// Ownership transfers with the frame: Send fills a frame and enqueues it,
// the writer returns it to the pool only after the kernel flush that
// consumed it (or Send itself, when the queue is full).
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func putFrame(f *[]byte) {
	*f = (*f)[:0]
	framePool.Put(f)
}

// Listen starts a TCP endpoint for cfg.Self on cfg.Listen.
func Listen(cfg Config) (*Endpoint, error) {
	cfg.setDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcptransport: listen %s: %w", cfg.Listen, err)
	}
	ep := &Endpoint{
		cfg:      cfg,
		ln:       ln,
		writers:  make(map[id.NodeID]*peerConn),
		accepted: make(map[net.Conn]bool),
		inbox:    queue.New[msg.Envelope](),
		recv:     make(chan msg.Envelope, 64),
		done:     make(chan struct{}),
	}
	ep.dialCtx, ep.dialCancel = context.WithCancel(context.Background())
	ep.wg.Add(2)
	go ep.acceptLoop()
	go ep.pump()
	return ep, nil
}

// Addr returns the bound listen address (useful with ":0").
func (ep *Endpoint) Addr() string { return ep.ln.Addr().String() }

// SetPeers replaces the address book. Two-pass wiring support: listen on
// ":0" everywhere first, gather the bound addresses, then install the
// complete book before the protocol starts.
func (ep *Endpoint) SetPeers(book map[id.NodeID]string) {
	cp := make(map[id.NodeID]string, len(book))
	for k, v := range book {
		cp[k] = v
	}
	ep.mu.Lock()
	ep.cfg.Peers = cp
	ep.mu.Unlock()
}

// ID implements transport.Endpoint.
func (ep *Endpoint) ID() id.NodeID { return ep.cfg.Self }

// Recv implements transport.Endpoint.
func (ep *Endpoint) Recv() <-chan msg.Envelope { return ep.recv }

// Close implements transport.Endpoint.
func (ep *Endpoint) Close() error {
	var err error
	ep.closed.Do(func() {
		ep.mu.Lock()
		ep.shut = true
		ep.mu.Unlock()
		close(ep.done)
		ep.dialCancel()
		err = ep.ln.Close()
		ep.mu.Lock()
		for _, pc := range ep.writers {
			pc.closeConn()
		}
		// Incoming connections must be closed too or their read loops would
		// block in Read forever and Wait would never return.
		for c := range ep.accepted {
			c.Close()
		}
		ep.accepted = make(map[net.Conn]bool)
		ep.mu.Unlock()
		ep.inbox.Close()
		ep.wg.Wait()
		// The writers have exited; recycle whatever they left queued.
		ep.mu.Lock()
		for _, pc := range ep.writers {
			for {
				select {
				case f := <-pc.q:
					putFrame(f)
				default:
					goto drained
				}
			}
		drained:
		}
		ep.writers = make(map[id.NodeID]*peerConn)
		ep.mu.Unlock()
	})
	return err
}

// Send implements transport.Endpoint. It encodes the envelope into a pooled
// frame and enqueues it on the destination's writer without ever blocking:
// an unreachable, stalled or backlogged peer silently drops the message
// (fair-loss link). The steady state allocates nothing per send.
func (ep *Endpoint) Send(env msg.Envelope) error {
	select {
	case <-ep.done:
		return transport.ErrClosed
	default:
	}
	env.From = ep.cfg.Self
	bufp := framePool.Get().(*[]byte)
	// Reserve the 4-byte length prefix, then encode directly behind it.
	frame := append((*bufp)[:0], 0, 0, 0, 0)
	frame, err := msg.AppendEncode(frame, env)
	if err != nil {
		putFrame(bufp)
		return fmt.Errorf("tcptransport: encode: %w", err)
	}
	binary.BigEndian.PutUint32(frame, uint32(len(frame)-4))
	*bufp = frame
	pc, err := ep.writer(env.To)
	if err != nil {
		putFrame(bufp)
		return err
	}
	select {
	case pc.q <- bufp:
		ep.queued.Inc()
	default:
		// Bounded queue full: the peer is slower than the senders. Fair loss.
		ep.queueDrops.Inc()
		putFrame(bufp)
	}
	return nil
}

// writer returns (starting if needed) the writer goroutine for peer. The
// writer outlives individual connections: it redials after drops and exits
// only when the endpoint closes.
func (ep *Endpoint) writer(peer id.NodeID) (*peerConn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.shut {
		return nil, transport.ErrClosed
	}
	pc := ep.writers[peer]
	if pc == nil {
		pc = &peerConn{peer: peer, q: make(chan *[]byte, ep.cfg.QueueDepth)}
		ep.writers[peer] = pc
		ep.wg.Add(1)
		go ep.writeLoop(pc)
	}
	return pc, nil
}

// writeLoop drains one peer's frame queue and flushes each drain to the
// kernel in a single vectored write. Dial failures and write errors drop
// the drained frames (fair loss) and the next drain starts over with a
// fresh connection attempt.
func (ep *Endpoint) writeLoop(pc *peerConn) {
	defer ep.wg.Done()
	defer pc.closeConn()
	frames := make([]*[]byte, 0, ep.cfg.MaxWritev)
	for {
		frames = frames[:0]
		select {
		case f := <-pc.q:
			frames = append(frames, f)
		case <-ep.done:
			return
		}
		// Opportunistic drain: everything queued behind the first frame
		// rides the same kernel flush.
	drain:
		for len(frames) < ep.cfg.MaxWritev {
			select {
			case f := <-pc.q:
				frames = append(frames, f)
			default:
				break drain
			}
		}
		ep.queued.Add(-int64(len(frames)))
		c := pc.conn()
		if c == nil {
			c = ep.dial(pc)
		}
		if c != nil {
			if err := ep.flush(c, frames); err != nil {
				// Broken or stalled link (the deadline fired): fair loss.
				ep.connDrops.Inc()
				pc.closeConn()
			}
		}
		for _, f := range frames {
			putFrame(f)
		}
	}
}

// dial attempts the outgoing connection for pc, returning nil on failure
// (the drained frames are then dropped — fair loss).
func (ep *Endpoint) dial(pc *peerConn) net.Conn {
	ep.mu.Lock()
	addr, ok := ep.cfg.Peers[pc.peer]
	ep.mu.Unlock()
	if !ok {
		return nil
	}
	d := net.Dialer{Timeout: ep.cfg.DialTimeout}
	c, err := d.DialContext(ep.dialCtx, "tcp", addr)
	if err != nil {
		return nil
	}
	pc.setConn(c)
	return c
}

func (ep *Endpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		c, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		ep.accepted[c] = true
		ep.mu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.readLoop(c)
		}()
	}
}

// readLoop decodes frames from one incoming connection until it breaks.
// Frames are read into a recycled per-connection buffer: msg.Decode copies
// every variable-length field out of its input, so reusing the buffer for
// the next frame can never corrupt a delivered envelope.
func (ep *Endpoint) readLoop(c net.Conn) {
	defer func() {
		c.Close()
		ep.mu.Lock()
		delete(ep.accepted, c)
		ep.mu.Unlock()
	}()
	var lenBuf [4]byte
	buf := make([]byte, 4096)
	for {
		select {
		case <-ep.done:
			return
		default:
		}
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		b := buf
		if int(n) > len(b) {
			if n <= retainedReadBuf {
				buf = make([]byte, retainedReadBuf)
				b = buf
			} else {
				// Oversize frame: one-shot allocation, the retained buffer
				// stays small.
				b = make([]byte, n)
			}
		}
		b = b[:n]
		if _, err := io.ReadFull(c, b); err != nil {
			return
		}
		ep.framesRecv.Inc()
		ep.bytesRecv.Add(uint64(n) + 4)
		env, err := msg.Decode(b)
		if err != nil {
			continue // corrupted frame: drop, keep the stream
		}
		ep.inbox.Push(env)
	}
}

// pump moves delivered messages to the recv channel.
func (ep *Endpoint) pump() {
	defer ep.wg.Done()
	defer close(ep.recv)
	for {
		for {
			env, ok := ep.inbox.Pop()
			if !ok {
				break
			}
			select {
			case ep.recv <- env:
			case <-ep.done:
				return
			}
		}
		select {
		case <-ep.inbox.Out():
			if ep.inbox.Closed() && ep.inbox.Len() == 0 {
				return
			}
		case <-ep.done:
			return
		}
	}
}

// Stats is a point-in-time snapshot of an endpoint's wire counters.
type Stats struct {
	FramesSent  uint64 // frames handed to the kernel
	BytesSent   uint64 // bytes handed to the kernel (prefix included)
	FramesRecv  uint64 // frames read off incoming connections
	BytesRecv   uint64 // bytes read off incoming connections (prefix included)
	WritevCalls uint64 // kernel flushes: one vectored write per queue drain
	Coalesced   uint64 // frames copied through a coalescing buffer (0 on the writev path)
	QueueDrops  uint64 // frames dropped because a peer queue was full
	ConnDrops   uint64 // connections dropped on write error or expired deadline
	Queued      int64  // frames currently queued across all peers
}

// Stats snapshots the endpoint's wire counters.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		FramesSent:  ep.framesSent.Load(),
		BytesSent:   ep.bytesSent.Load(),
		FramesRecv:  ep.framesRecv.Load(),
		BytesRecv:   ep.bytesRecv.Load(),
		WritevCalls: ep.writevCalls.Load(),
		Coalesced:   ep.coalesced.Load(),
		QueueDrops:  ep.queueDrops.Load(),
		ConnDrops:   ep.connDrops.Load(),
		Queued:      ep.queued.Load(),
	}
}

// FramesPerWritev returns the mean frames one kernel flush covered — the
// vectored-write amortization factor (1.0 means every frame paid its own
// syscall).
func (s Stats) FramesPerWritev() float64 {
	if s.WritevCalls == 0 {
		return 0
	}
	return float64(s.FramesSent) / float64(s.WritevCalls)
}

// String renders the snapshot on one line.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d/%dB recv=%d/%dB writev=%d (%.1f frames/call) coalesced=%d qdrop=%d cdrop=%d queued=%d",
		s.FramesSent, s.BytesSent, s.FramesRecv, s.BytesRecv,
		s.WritevCalls, s.FramesPerWritev(), s.Coalesced, s.QueueDrops, s.ConnDrops, s.Queued)
}

// Vectored reports whether this binary's flush path is the scatter-gather
// writev implementation (false under -tags etx_nowritev); benchmarks gate
// their zero-copy assertions on it.
func Vectored() bool { return vectoredWrites }

// WireStats renders the current wire counters for liveness diagnostics;
// core.DebugTry folds it into its dump through an interface assertion, so
// the protocol packages need no dependency on this one.
func (ep *Endpoint) WireStats() string { return ep.Stats().String() }

// ParsePeers parses an address book of the form "1=host:port,2=host:port"
// for the given role (cmd flag support).
func ParsePeers(role id.Role, spec string) (map[id.NodeID]string, error) {
	out := make(map[id.NodeID]string)
	if spec == "" {
		return out, nil
	}
	for _, part := range splitComma(spec) {
		var idx int
		var addr string
		if n, err := fmt.Sscanf(part, "%d=%s", &idx, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("tcptransport: malformed peer %q (want index=host:port)", part)
		}
		out[id.NodeID{Role: role, Index: idx}] = addr
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// SortedPeers returns the node ids of an address book ordered by (role,
// index) — the deterministic membership order every process must agree on
// (AppServers[0] is the default primary and round-1 consensus coordinator).
func SortedPeers(book map[id.NodeID]string) []id.NodeID {
	out := make([]id.NodeID, 0, len(book))
	for k := range book {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Merge combines address books.
func Merge(books ...map[id.NodeID]string) map[id.NodeID]string {
	out := make(map[id.NodeID]string)
	for _, b := range books {
		for k, v := range b {
			out[k] = v
		}
	}
	return out
}

// Compile-time interface check.
var _ transport.Endpoint = (*Endpoint)(nil)
