//go:build etx_nowritev

package tcptransport

import (
	"net"
	"time"
)

// vectoredWrites reports which flush implementation this binary carries;
// tests use it to gate zero-copy assertions.
const vectoredWrites = false

// flush is the coalescing fallback for platforms where vectored writes buy
// nothing: one queue drain is copied into a scratch buffer and handed to
// the kernel with a single plain write. Still one syscall per drain and
// still under WriteTimeout — only the zero-copy property is given up, and
// the coalesced counter records every frame that paid the copy.
func (ep *Endpoint) flush(c net.Conn, frames []*[]byte) error {
	if err := c.SetWriteDeadline(time.Now().Add(ep.cfg.WriteTimeout)); err != nil {
		return err
	}
	var total uint64
	if len(frames) == 1 {
		f := *frames[0]
		if _, err := c.Write(f); err != nil {
			return err
		}
		total = uint64(len(f))
	} else {
		scratch := framePool.Get().(*[]byte)
		buf := (*scratch)[:0]
		for _, f := range frames {
			buf = append(buf, *f...)
		}
		*scratch = buf
		ep.coalesced.Add(uint64(len(frames)))
		_, err := c.Write(buf)
		putFrame(scratch)
		if err != nil {
			return err
		}
		total = uint64(len(buf))
	}
	ep.writevCalls.Inc()
	ep.framesSent.Add(uint64(len(frames)))
	ep.bytesSent.Add(total)
	return nil
}
