package latcost

import (
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/msg"
)

func TestPaperModelScales(t *testing.T) {
	full := Paper(1.0)
	half := Paper(0.5)
	if full.SQLWork != 185*time.Millisecond {
		t.Errorf("SQLWork = %v", full.SQLWork)
	}
	if half.SQLWork*2 != full.SQLWork {
		t.Errorf("scaling broken: %v vs %v", half.SQLWork, full.SQLWork)
	}
	if full.CoordForce != 12500*time.Microsecond {
		t.Errorf("CoordForce = %v", full.CoordForce)
	}
}

func TestPaperModelDefaultScale(t *testing.T) {
	m := Paper(0)
	if m.Scale != 0.02 {
		t.Errorf("default scale = %v", m.Scale)
	}
	if m.SQLWork <= 0 {
		t.Error("costs must be positive at default scale")
	}
}

func TestLatencyFuncTierPairs(t *testing.T) {
	m := Paper(1.0)
	f := m.LatencyFunc()
	hb := msg.Heartbeat{}
	tests := []struct {
		from, to id.NodeID
		want     time.Duration
	}{
		{id.AppServer(1), id.AppServer(2), m.AppApp},
		{id.AppServer(1), id.DBServer(1), m.AppDB},
		{id.DBServer(1), id.AppServer(2), m.AppDB},
		{id.Client(1), id.AppServer(1), m.ClientApp},
		{id.AppServer(1), id.Client(1), m.ClientApp},
	}
	for _, tt := range tests {
		if got := f(tt.from, tt.to, hb); got != tt.want {
			t.Errorf("latency %v->%v = %v, want %v", tt.from, tt.to, got, tt.want)
		}
	}
}

func TestModelPredictsPaperShape(t *testing.T) {
	// Analytic sanity check of the calibration BEFORE running the full
	// simulation: component sums must order baseline < AR < 2PC with AR
	// overhead in the low-to-mid teens and 2PC clearly above it.
	m := Paper(1.0)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	rtt := func(oneWay time.Duration) float64 { return 2 * ms(oneWay) }
	sql := ms(m.SQLWork) + 2*rtt(m.AppDB) // sleep op + add op round trips
	commitRound := rtt(m.AppDB) + ms(m.DBForce)
	prepareRound := rtt(m.AppDB) + ms(m.DBForce)
	regWrite := rtt(m.AppApp)
	clientEnds := ms(m.ClientStart) + ms(m.ClientEnd) + rtt(m.ClientApp)

	baseline := clientEnds + sql + commitRound
	ar := clientEnds + sql + 2*regWrite + prepareRound + commitRound
	twoPC := clientEnds + sql + 2*ms(m.CoordForce) + prepareRound + commitRound

	if !(baseline < ar && ar < twoPC) {
		t.Fatalf("ordering broken: baseline=%.1f ar=%.1f 2pc=%.1f", baseline, ar, twoPC)
	}
	arOver := (ar - baseline) / baseline * 100
	pcOver := (twoPC - baseline) / baseline * 100
	if arOver < 8 || arOver > 20 {
		t.Errorf("AR overhead %.1f%%, want in the paper's ballpark (16%%)", arOver)
	}
	if pcOver < arOver+3 {
		t.Errorf("2PC overhead %.1f%% must clearly exceed AR's %.1f%%", pcOver, arOver)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	h := r.Hooks()
	h.Span(rid, core.SpanSQL, 10*time.Millisecond)
	h.Span(rid, core.SpanSQL, 20*time.Millisecond)
	h.Span(rid, core.SpanPrepare, 5*time.Millisecond)
	if got := r.Mean(core.SpanSQL); got != 15 {
		t.Errorf("SQL mean = %v", got)
	}
	if got := r.Mean(core.SpanPrepare); got != 5 {
		t.Errorf("prepare mean = %v", got)
	}
	if got := r.Mean(core.SpanCommit); got != 0 {
		t.Errorf("unobserved span mean = %v", got)
	}
	if s := r.Summary(core.SpanSQL); s.N != 2 {
		t.Errorf("summary n = %d", s.N)
	}
}

func TestProfile(t *testing.T) {
	empty, err := Profile("")
	if err != nil || empty.Latency != nil || empty.Jitter != 0 {
		t.Errorf("empty profile = %+v, %v; want zero options", empty, err)
	}
	lan, err := Profile("lan")
	if err != nil || lan.Latency == nil {
		t.Fatalf("lan profile: %+v, %v", lan, err)
	}
	if d := lan.Latency(id.AppServer(1), id.DBServer(1), nil); d != 150*time.Microsecond {
		t.Errorf("lan app-db latency = %v", d)
	}
	wan, err := Profile("wan")
	if err != nil || wan.Latency == nil {
		t.Fatalf("wan profile: %+v, %v", wan, err)
	}
	if d := wan.Latency(id.Client(1), id.AppServer(1), nil); d != 8*time.Millisecond {
		t.Errorf("wan client-app latency = %v", d)
	}
	if wan.Jitter <= lan.Jitter {
		t.Errorf("wan jitter %v must exceed lan's %v", wan.Jitter, lan.Jitter)
	}
	if _, err := Profile("dialup"); err == nil {
		t.Error("unknown profile accepted")
	}
}
