// Package latcost is the calibrated component cost model behind the
// reproduction of the paper's Figure 8. The paper measured its protocols on
// HP C180 workstations, Orbix RPC and Oracle 8.0.3; none of that hardware or
// software is available, so — per the substitution rules in DESIGN.md — the
// model injects the paper's measured component costs into the simulated
// substrate:
//
//	component              paper measurement           injected as
//	-------------------------------------------------------------------------
//	Orbix RPC round trip   "about 3-5 ms"              per-link one-way latency
//	SQL manipulation       ≈187 ms (baseline col.)     OpSleep work at the db
//	db prepare/commit      ≈19/18.6 ms                 forced-WAL latency at db
//	forced coordinator log 12.5/12.7 ms (2PC col.)     forced write at app server
//	client start/end       3.4/3.4 ms                  client-side marshalling sleep
//
// Absolute numbers reproduce only the *shape* (who wins, by what factor);
// the Scale knob shrinks everything proportionally so a full Figure-8 run
// takes seconds instead of minutes while leaving ratios untouched.
package latcost

import (
	"fmt"
	"sync"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/transport"
)

// Model holds the injected component costs. All durations are already
// scaled.
type Model struct {
	// Scale records the multiplier the model was built with.
	Scale float64

	// One-way network latencies per tier pair.
	ClientApp time.Duration // client <-> application server
	AppApp    time.Duration // application server <-> application server
	AppDB     time.Duration // application server <-> database server

	// SQLWork is the database-side data-manipulation time per request.
	SQLWork time.Duration
	// DBForce is the database's forced-log (fsync) latency, paid once at
	// prepare and once at commit.
	DBForce time.Duration
	// CoordForce is the 2PC coordinator's forced-log latency (local disk).
	CoordForce time.Duration
	// ClientStart and ClientEnd are the client-side marshalling costs.
	ClientStart time.Duration
	ClientEnd   time.Duration
}

// Paper returns the model calibrated to the paper's Figure 8, scaled by
// scale (1.0 = the paper's real-time costs; 0.02 is a practical default that
// finishes a full table run in seconds).
func Paper(scale float64) Model {
	if scale <= 0 {
		scale = 0.02
	}
	ms := func(v float64) time.Duration {
		return time.Duration(v * scale * float64(time.Millisecond))
	}
	return Model{
		Scale:       scale,
		ClientApp:   ms(2.5), // "other" ≈ 5 ms round trip
		AppApp:      ms(2.2), // regA/regD write ≈ 4.5 ms round trip
		AppDB:       ms(1.5),
		SQLWork:     ms(185),
		DBForce:     ms(15.5), // commit ≈ 18.6 = RTT(3) + force
		CoordForce:  ms(12.5),
		ClientStart: ms(3.4),
		ClientEnd:   ms(3.4),
	}
}

// LAN returns a network-only model for a modern datacenter LAN: sub-
// millisecond one-way latencies, no injected compute or disk costs (the
// benchmark supplies its own). Used by etxbench's -net lan profile.
func LAN() Model {
	return Model{
		Scale:     1,
		ClientApp: 250 * time.Microsecond,
		AppApp:    150 * time.Microsecond,
		AppDB:     150 * time.Microsecond,
	}
}

// WAN returns a network-only model for a metro/regional WAN: single-digit-
// millisecond one-way latencies between tiers. Used by etxbench's -net wan
// profile.
func WAN() Model {
	return Model{
		Scale:     1,
		ClientApp: 8 * time.Millisecond,
		AppApp:    5 * time.Millisecond,
		AppDB:     5 * time.Millisecond,
	}
}

// Profile maps an etxbench -net name to memnet transport options carrying
// the corresponding latency model and a proportionate jitter. The empty
// name returns zero options (the experiment's own defaults).
func Profile(name string) (transport.Options, error) {
	switch name {
	case "":
		return transport.Options{}, nil
	case "lan":
		return transport.Options{Latency: LAN().LatencyFunc(), Jitter: 50 * time.Microsecond}, nil
	case "wan":
		return transport.Options{Latency: WAN().LatencyFunc(), Jitter: 2 * time.Millisecond}, nil
	default:
		return transport.Options{}, fmt.Errorf("latcost: unknown net profile %q (want lan or wan)", name)
	}
}

// LatencyFunc returns the per-link one-way latency function for the
// in-memory network. Messages between unknown role pairs travel at the
// client-app latency.
func (m Model) LatencyFunc() transport.LatencyFunc {
	return func(from, to id.NodeID, p msg.Payload) time.Duration {
		switch {
		case from.Role == id.RoleAppServer && to.Role == id.RoleAppServer:
			return m.AppApp
		case (from.Role == id.RoleAppServer && to.Role == id.RoleDBServer) ||
			(from.Role == id.RoleDBServer && to.Role == id.RoleAppServer):
			return m.AppDB
		default:
			return m.ClientApp
		}
	}
}

// Recorder accumulates per-component latency samples reported through
// core.Hooks; one Recorder underlies one column of the Figure-8 table.
type Recorder struct {
	mu    sync.Mutex
	spans map[core.Span]*metrics.Sample
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{spans: make(map[core.Span]*metrics.Sample)}
}

// Observe records one component measurement.
func (r *Recorder) Observe(rid id.ResultID, span core.Span, d time.Duration) {
	r.sample(span).AddDuration(d)
}

// Reset discards every recorded sample (warm-up separation).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = make(map[core.Span]*metrics.Sample)
	r.mu.Unlock()
}

// Hooks returns instrumentation hooks feeding this recorder.
func (r *Recorder) Hooks() *core.Hooks {
	return &core.Hooks{Span: r.Observe}
}

// Sample returns the sample for one component (created on demand).
func (r *Recorder) sample(span core.Span) *metrics.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.spans[span]
	if !ok {
		s = metrics.NewSample()
		r.spans[span] = s
	}
	return s
}

// Mean returns the mean of one component in milliseconds (0 if never
// observed).
func (r *Recorder) Mean(span core.Span) float64 {
	r.mu.Lock()
	s, ok := r.spans[span]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return s.Mean()
}

// Summary returns the full digest for one component.
func (r *Recorder) Summary(span core.Span) metrics.Summary {
	return r.sample(span).Summarize()
}
