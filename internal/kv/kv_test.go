package kv

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPutDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put("k", []byte("v"))
	if v, ok := s.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	s.Delete("k")
	if _, ok := s.Get("k"); ok {
		t.Fatal("Delete left the key behind")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPutAndGetCopy(t *testing.T) {
	s := New()
	in := []byte("orig")
	s.Put("k", in)
	in[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "orig" {
		t.Fatal("Put aliased caller's buffer")
	}
	v[0] = 'Y'
	v2, _ := s.Get("k")
	if string(v2) != "orig" {
		t.Fatal("Get aliased internal buffer")
	}
}

func TestApplyWriteSet(t *testing.T) {
	s := New()
	s.Put("a", []byte("old"))
	s.Apply([]Write{{Key: "a", Val: []byte("new")}, {Key: "b", Val: []byte("fresh")}})
	if v, _ := s.Get("a"); string(v) != "new" {
		t.Fatal("Apply did not overwrite")
	}
	if v, _ := s.Get("b"); string(v) != "fresh" {
		t.Fatal("Apply did not insert")
	}
}

func TestSnapshotAndReset(t *testing.T) {
	s := New()
	s.Put("b", []byte("2"))
	s.Put("a", []byte("1"))
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Key != "a" || snap[1].Key != "b" {
		t.Fatalf("Snapshot not key-sorted: %v", snap)
	}
	s2 := New()
	s2.Put("junk", []byte("x"))
	s2.Reset(snap)
	if s2.Len() != 2 {
		t.Fatalf("Reset kept extra keys: %d", s2.Len())
	}
	if v, _ := s2.Get("a"); string(v) != "1" {
		t.Fatal("Reset lost data")
	}
}

func TestIntHelpers(t *testing.T) {
	s := New()
	if v, err := s.GetInt("missing"); err != nil || v != 0 {
		t.Fatalf("GetInt(missing) = (%d,%v), want (0,nil)", v, err)
	}
	s.PutInt("n", -42)
	if v, err := s.GetInt("n"); err != nil || v != -42 {
		t.Fatalf("GetInt = (%d,%v)", v, err)
	}
	s.Put("bad", []byte{1, 2})
	if _, err := s.GetInt("bad"); err == nil {
		t.Fatal("GetInt on malformed value must fail")
	}
}

func TestIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecodeInt(EncodeInt(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotResetRoundTripProperty(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		s := New()
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			s.Put(k, v)
		}
		s2 := New()
		s2.Reset(s.Snapshot())
		if s2.Len() != s.Len() {
			return false
		}
		for _, w := range s.Snapshot() {
			v, ok := s2.Get(w.Key)
			if !ok || !bytes.Equal(v, w.Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.PutInt("ctr", int64(j))
				s.Get("ctr")
				s.Snapshot()
			}
		}()
	}
	wg.Wait()
}
