// Package kv is the volatile in-memory data store of a database server: the
// table space that the paper's SQL manipulations read and write. Durability
// is not kv's job — the transactional engine (internal/xadb) logs committed
// write-sets to stable storage and rebuilds the kv store during recovery.
package kv

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Write is one after-image: the value Key will hold if the surrounding
// transaction commits.
type Write struct {
	Key string
	Val []byte
}

// Store is a concurrency-safe string->bytes map with numeric helpers.
// The zero value is not usable; call New.
type Store struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// New creates an empty store.
func New() *Store {
	return &Store{m: make(map[string][]byte)}
}

// Get returns the value at key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// Put sets key to val.
func (s *Store) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
}

// Delete removes key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Apply installs a write-set atomically with respect to other Store calls.
func (s *Store) Apply(ws []Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range ws {
		cp := make([]byte, len(w.Val))
		copy(cp, w.Val)
		s.m[w.Key] = cp
	}
}

// Snapshot returns a deterministic (key-sorted) copy of the full contents.
func (s *Store) Snapshot() []Write {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Write, 0, len(keys))
	for _, k := range keys {
		v := s.m[k]
		cp := make([]byte, len(v))
		copy(cp, v)
		out = append(out, Write{Key: k, Val: cp})
	}
	return out
}

// Reset replaces the entire contents with the given snapshot.
func (s *Store) Reset(ws []Write) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string][]byte, len(ws))
	for _, w := range ws {
		cp := make([]byte, len(w.Val))
		copy(cp, w.Val)
		s.m[w.Key] = cp
	}
}

// GetInt reads key as an int64 (missing keys read as 0).
func (s *Store) GetInt(key string) (int64, error) {
	v, ok := s.Get(key)
	if !ok {
		return 0, nil
	}
	return DecodeInt(v)
}

// PutInt stores an int64 at key.
func (s *Store) PutInt(key string, v int64) {
	s.Put(key, EncodeInt(v))
}

// EncodeInt serializes an int64 for storage.
func EncodeInt(v int64) []byte {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(v))
	return buf
}

// DecodeInt parses EncodeInt's output.
func DecodeInt(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("kv: integer value has %d bytes, want 8", len(b))
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}
