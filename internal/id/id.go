// Package id defines the typed identifiers used throughout the e-Transaction
// stack: node identities for the three tiers (clients, application servers,
// database servers) and result identifiers.
//
// The paper (Frølund & Guerraoui, DSN 2000) presents its protocol for a single
// client issuing a single request "without loss of generality"; a practical
// library must multiplex many clients and many requests. A ResultID therefore
// carries the full coordinate of one *try*: which client, which request
// sequence number at that client, and which attempt (the paper's "j"). The
// pair (Client, Seq) identifies the logical request; Try identifies one
// physical transaction attempt for it. Exactly-once (property A.2) is enforced
// per (Client, Seq): at most one Try ever commits.
package id

import (
	"fmt"
	"strconv"
	"strings"
)

// Role distinguishes the three tiers of the architecture.
type Role uint8

// Roles start at 1 so the zero value is invalid and detectable.
const (
	RoleClient Role = iota + 1
	RoleAppServer
	RoleDBServer
)

// String returns a short human-readable tag for the role.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleAppServer:
		return "appserver"
	case RoleDBServer:
		return "dbserver"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Valid reports whether r is one of the three defined roles.
func (r Role) Valid() bool {
	return r == RoleClient || r == RoleAppServer || r == RoleDBServer
}

// NodeID identifies one process in the system. It is comparable and usable as
// a map key. The zero value is invalid.
type NodeID struct {
	Role  Role
	Index int
}

// Client returns the NodeID of the i-th client (i starts at 1).
func Client(i int) NodeID { return NodeID{Role: RoleClient, Index: i} }

// AppServer returns the NodeID of the i-th application server (i starts at 1).
func AppServer(i int) NodeID { return NodeID{Role: RoleAppServer, Index: i} }

// DBServer returns the NodeID of the i-th database server (i starts at 1).
func DBServer(i int) NodeID { return NodeID{Role: RoleDBServer, Index: i} }

// IsZero reports whether n is the zero (invalid) NodeID.
func (n NodeID) IsZero() bool { return n.Role == 0 && n.Index == 0 }

// Less orders NodeIDs by (role, index): the canonical node ordering every
// deterministic enumeration uses — sorted peer books, participant dlists,
// cleaning-thread scans.
func (n NodeID) Less(o NodeID) bool {
	if n.Role != o.Role {
		return n.Role < o.Role
	}
	return n.Index < o.Index
}

// String renders the node id as, e.g., "appserver-2".
func (n NodeID) String() string {
	if n.IsZero() {
		return "node(zero)"
	}
	return n.Role.String() + "-" + strconv.Itoa(n.Index)
}

// ParseNodeID parses the String form back into a NodeID. It accepts the exact
// output of NodeID.String ("role-index").
func ParseNodeID(s string) (NodeID, error) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return NodeID{}, fmt.Errorf("id: malformed node id %q", s)
	}
	idx, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return NodeID{}, fmt.Errorf("id: malformed node index in %q: %w", s, err)
	}
	var role Role
	switch s[:i] {
	case "client":
		role = RoleClient
	case "appserver":
		role = RoleAppServer
	case "dbserver":
		role = RoleDBServer
	default:
		return NodeID{}, fmt.Errorf("id: unknown role in %q", s)
	}
	return NodeID{Role: role, Index: idx}, nil
}

// RequestKey identifies one logical request: the unit over which exactly-once
// is guaranteed.
type RequestKey struct {
	Client NodeID
	Seq    uint64
}

// String renders the request key as, e.g., "client-1/7".
func (k RequestKey) String() string {
	return k.Client.String() + "/" + strconv.FormatUint(k.Seq, 10)
}

// ResultID identifies one physical try of a logical request. It corresponds to
// the paper's result identifier j, extended with the client/request coordinate
// so that many requests can be in flight concurrently.
type ResultID struct {
	Client NodeID
	Seq    uint64
	Try    uint64
}

// Request returns the logical-request key this try belongs to.
func (r ResultID) Request() RequestKey { return RequestKey{Client: r.Client, Seq: r.Seq} }

// String renders the result id as, e.g., "client-1/7#3".
func (r ResultID) String() string {
	return r.Request().String() + "#" + strconv.FormatUint(r.Try, 10)
}

// Less orders ResultIDs lexicographically by (client, seq, try). It provides a
// deterministic iteration order for cleaning and reporting.
func (r ResultID) Less(o ResultID) bool {
	if r.Client != o.Client {
		return r.Client.Less(o.Client)
	}
	if r.Seq != o.Seq {
		return r.Seq < o.Seq
	}
	return r.Try < o.Try
}
