package id

import (
	"testing"
	"testing/quick"
)

func TestRoleString(t *testing.T) {
	tests := []struct {
		role Role
		want string
	}{
		{RoleClient, "client"},
		{RoleAppServer, "appserver"},
		{RoleDBServer, "dbserver"},
		{Role(0), "role(0)"},
		{Role(99), "role(99)"},
	}
	for _, tt := range tests {
		if got := tt.role.String(); got != tt.want {
			t.Errorf("Role(%d).String() = %q, want %q", tt.role, got, tt.want)
		}
	}
}

func TestRoleValid(t *testing.T) {
	if !RoleClient.Valid() || !RoleAppServer.Valid() || !RoleDBServer.Valid() {
		t.Error("defined roles must be valid")
	}
	if Role(0).Valid() || Role(42).Valid() {
		t.Error("undefined roles must be invalid")
	}
}

func TestNodeIDConstructors(t *testing.T) {
	tests := []struct {
		got  NodeID
		want NodeID
	}{
		{Client(1), NodeID{RoleClient, 1}},
		{AppServer(3), NodeID{RoleAppServer, 3}},
		{DBServer(2), NodeID{RoleDBServer, 2}},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("constructor gave %v, want %v", tt.got, tt.want)
		}
	}
}

func TestNodeIDStringParseRoundTrip(t *testing.T) {
	nodes := []NodeID{Client(1), Client(999), AppServer(1), AppServer(7), DBServer(4)}
	for _, n := range nodes {
		s := n.String()
		back, err := ParseNodeID(s)
		if err != nil {
			t.Fatalf("ParseNodeID(%q): %v", s, err)
		}
		if back != n {
			t.Errorf("round trip %v -> %q -> %v", n, s, back)
		}
	}
}

func TestParseNodeIDErrors(t *testing.T) {
	for _, s := range []string{"", "client", "frobnicator-1", "client-x", "-3"} {
		if _, err := ParseNodeID(s); err == nil {
			t.Errorf("ParseNodeID(%q) succeeded, want error", s)
		}
	}
}

func TestNodeIDIsZero(t *testing.T) {
	var z NodeID
	if !z.IsZero() {
		t.Error("zero NodeID must report IsZero")
	}
	if Client(1).IsZero() {
		t.Error("client-1 must not report IsZero")
	}
	if z.String() != "node(zero)" {
		t.Errorf("zero NodeID String = %q", z.String())
	}
}

func TestResultIDString(t *testing.T) {
	r := ResultID{Client: Client(2), Seq: 7, Try: 3}
	if got, want := r.String(), "client-2/7#3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := r.Request().String(), "client-2/7"; got != want {
		t.Errorf("Request().String() = %q, want %q", got, want)
	}
}

func TestResultIDRequestGroups(t *testing.T) {
	a := ResultID{Client: Client(1), Seq: 1, Try: 1}
	b := ResultID{Client: Client(1), Seq: 1, Try: 2}
	c := ResultID{Client: Client(1), Seq: 2, Try: 1}
	if a.Request() != b.Request() {
		t.Error("tries of the same request must share a RequestKey")
	}
	if a.Request() == c.Request() {
		t.Error("different requests must not share a RequestKey")
	}
}

func TestResultIDLessIsStrictTotalOrder(t *testing.T) {
	// Less must be irreflexive, asymmetric and transitive on a sample set.
	ids := []ResultID{
		{Client: Client(1), Seq: 1, Try: 1},
		{Client: Client(1), Seq: 1, Try: 2},
		{Client: Client(1), Seq: 2, Try: 1},
		{Client: Client(2), Seq: 1, Try: 1},
		{Client: AppServer(1), Seq: 0, Try: 0},
	}
	for i, a := range ids {
		if a.Less(a) {
			t.Errorf("Less must be irreflexive: %v", a)
		}
		for j, b := range ids {
			if i == j {
				continue
			}
			if a.Less(b) && b.Less(a) {
				t.Errorf("Less must be asymmetric: %v vs %v", a, b)
			}
			if !a.Less(b) && !b.Less(a) && a != b {
				t.Errorf("Less must totally order distinct ids: %v vs %v", a, b)
			}
			for _, c := range ids {
				if a.Less(b) && b.Less(c) && !a.Less(c) {
					t.Errorf("Less must be transitive: %v < %v < %v", a, b, c)
				}
			}
		}
	}
}

func TestResultIDLessProperty(t *testing.T) {
	// Property: Less agrees with comparing String() forms only when client
	// ids are equal width; instead verify antisymmetry on random pairs.
	f := func(s1, s2, t1, t2 uint64, i1, i2 uint8) bool {
		a := ResultID{Client: Client(int(i1)), Seq: s1, Try: t1}
		b := ResultID{Client: Client(int(i2)), Seq: s2, Try: t2}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
