package fd

import (
	"context"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// wire connects two Heartbeat detectors through a MemNetwork.
type wire struct {
	net *transport.MemNetwork
	eps map[id.NodeID]transport.Endpoint
	hbs map[id.NodeID]*Heartbeat
	wg  sync.WaitGroup
}

func newWire(t *testing.T, cfgTweak func(*Config), nodes ...id.NodeID) *wire {
	t.Helper()
	w := &wire{
		net: transport.NewMemNetwork(transport.Options{}),
		eps: make(map[id.NodeID]transport.Endpoint),
		hbs: make(map[id.NodeID]*Heartbeat),
	}
	t.Cleanup(w.net.Close)
	for _, n := range nodes {
		ep, err := w.net.Attach(n)
		if err != nil {
			t.Fatal(err)
		}
		w.eps[n] = ep
		cfg := Config{
			Self:      n,
			Peers:     nodes,
			Interval:  5 * time.Millisecond,
			Timeout:   25 * time.Millisecond,
			Increment: 10 * time.Millisecond,
			Send: func(to id.NodeID, p msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: p})
			},
		}
		if cfgTweak != nil {
			cfgTweak(&cfg)
		}
		w.hbs[n] = NewHeartbeat(cfg)
	}
	// Demux loop per node: feed heartbeats into the detector.
	for _, n := range nodes {
		n := n
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			for env := range w.eps[n].Recv() {
				if env.Payload.Kind() == msg.KindHeartbeat {
					w.hbs[n].Observe(env.From)
				}
			}
		}()
	}
	return w
}

func (w *wire) start(ctx context.Context) {
	for _, h := range w.hbs {
		h.Start(ctx)
	}
}

func eventually(t *testing.T, within time.Duration, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition never held within %v: %s", within, desc)
}

func TestNoSuspicionAmongCorrectProcesses(t *testing.T) {
	a1, a2, a3 := id.AppServer(1), id.AppServer(2), id.AppServer(3)
	w := newWire(t, nil, a1, a2, a3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.start(ctx)
	time.Sleep(100 * time.Millisecond)
	for self, h := range w.hbs {
		for peer := range w.hbs {
			if self != peer && h.Suspects(peer) {
				t.Errorf("%v wrongly suspects %v", self, peer)
			}
		}
	}
	cancel()
	for _, h := range w.hbs {
		h.Wait()
	}
}

func TestCompletenessCrashedPeerIsSuspected(t *testing.T) {
	a1, a2 := id.AppServer(1), id.AppServer(2)
	w := newWire(t, nil, a1, a2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.start(ctx)
	time.Sleep(30 * time.Millisecond)
	w.net.Crash(a2)
	eventually(t, time.Second, func() bool { return w.hbs[a1].Suspects(a2) },
		"a1 suspects crashed a2")
	// Completeness is permanent: still suspected later.
	time.Sleep(50 * time.Millisecond)
	if !w.hbs[a1].Suspects(a2) {
		t.Error("suspicion of a crashed peer must be permanent")
	}
	if got := w.hbs[a1].Suspected(); len(got) != 1 || got[0] != a2 {
		t.Errorf("Suspected() = %v, want [appserver-2]", got)
	}
}

func TestAccuracyTimeoutGrowsAfterFalseSuspicion(t *testing.T) {
	a1, a2 := id.AppServer(1), id.AppServer(2)
	w := newWire(t, nil, a1, a2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.start(ctx)
	time.Sleep(20 * time.Millisecond)

	// Induce a false suspicion by blocking a2 -> a1, then heal.
	before := w.hbs[a1].PeerTimeout(a2)
	w.net.SetBlocked(a2, a1, true)
	eventually(t, time.Second, func() bool { return w.hbs[a1].Suspects(a2) },
		"a1 suspects silenced a2")
	w.net.SetBlocked(a2, a1, false)
	eventually(t, time.Second, func() bool { return !w.hbs[a1].Suspects(a2) },
		"suspicion lifts once heartbeats resume")
	eventually(t, time.Second, func() bool { return w.hbs[a1].PeerTimeout(a2) > before },
		"timeout grows after a false suspicion (eventual accuracy)")
}

func TestSelfAndStrangersNeverSuspected(t *testing.T) {
	a1, a2 := id.AppServer(1), id.AppServer(2)
	w := newWire(t, nil, a1, a2)
	h := w.hbs[a1]
	if h.Suspects(a1) {
		t.Error("a node must not suspect itself")
	}
	if h.Suspects(id.DBServer(9)) {
		t.Error("unmonitored nodes must not be suspected")
	}
	// Observing a stranger must not register it.
	h.Observe(id.DBServer(9))
	if h.Suspects(id.DBServer(9)) {
		t.Error("observed stranger must remain unmonitored")
	}
}

func TestGracePeriodBeforeFirstHeartbeat(t *testing.T) {
	// A freshly created detector must not suspect peers immediately, even if
	// no heartbeat was ever received.
	h := NewHeartbeat(Config{
		Self:    id.AppServer(1),
		Peers:   []id.NodeID{id.AppServer(1), id.AppServer(2)},
		Timeout: 200 * time.Millisecond,
		Send:    func(id.NodeID, msg.Payload) error { return nil },
	})
	if h.Suspects(id.AppServer(2)) {
		t.Error("peer suspected during grace period")
	}
}

func TestPerfectDetectorTracksGroundTruth(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	a1, a2 := id.AppServer(1), id.AppServer(2)
	net.Attach(a1)
	net.Attach(a2)
	p := &Perfect{Truth: net, Peers: []id.NodeID{a1, a2}}
	if p.Suspects(a1) || p.Suspects(a2) {
		t.Error("perfect detector suspects live nodes")
	}
	net.Crash(a2)
	if !p.Suspects(a2) {
		t.Error("perfect detector misses a crash")
	}
	if got := p.Suspected(); len(got) != 1 || got[0] != a2 {
		t.Errorf("Suspected() = %v", got)
	}
}

func TestScriptedDetectorOverridesAndFallsBack(t *testing.T) {
	base := NewScripted()
	base.Set(id.AppServer(3), true)
	s := &Scripted{Base: base}
	s.suspected = make(map[id.NodeID]bool)

	if !s.Suspects(id.AppServer(3)) {
		t.Error("must fall back to base detector")
	}
	s.Set(id.AppServer(3), false)
	if s.Suspects(id.AppServer(3)) {
		t.Error("override must win over base")
	}
	s.Set(id.AppServer(1), true)
	if !s.Suspects(id.AppServer(1)) {
		t.Error("explicit suspicion ignored")
	}
	s.Clear(id.AppServer(3))
	if !s.Suspects(id.AppServer(3)) {
		t.Error("Clear must restore base behaviour")
	}
	got := s.Suspected()
	if len(got) != 2 {
		t.Errorf("Suspected() = %v, want two nodes", got)
	}
}

// TestHeartbeatCarriesWatermark: the consensus layer's applied watermark is
// sampled at each beat and rides the heartbeat, so batch-log truncation
// advances even with no consensus traffic in flight.
func TestHeartbeatCarriesWatermark(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	wm := uint64(7)
	h := NewHeartbeat(Config{
		Self:     id.AppServer(1),
		Peers:    []id.NodeID{id.AppServer(1), id.AppServer(2)},
		Interval: time.Millisecond,
		Send: func(to id.NodeID, p msg.Payload) error {
			hb, ok := p.(msg.Heartbeat)
			if !ok {
				t.Errorf("sent %T, want Heartbeat", p)
				return nil
			}
			mu.Lock()
			got = append(got, hb.WM)
			mu.Unlock()
			return nil
		},
		Watermark: func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return wm
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	h.Start(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		if n >= 2 {
			wm = 9 // the next beats must sample the new level
		}
		done := n >= 2 && got[n-1] == 9
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeats never carried the updated watermark")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	h.Wait()
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 7 {
		t.Errorf("first heartbeat carried WM %d, want 7", got[0])
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Interval <= 0 || c.Timeout <= 0 || c.Increment <= 0 || c.MaxTimeout <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if c.Timeout < c.Interval {
		t.Error("default timeout must exceed the heartbeat interval")
	}
}
