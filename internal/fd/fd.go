// Package fd implements the failure-detection schemes of the paper
// (Section 5, "On the failure detection schemes"):
//
//  1. Among application servers, an eventually-perfect detector (◊P in the
//     sense of Chandra & Toueg): Heartbeat sends periodic beacons and
//     suspects peers whose beacons stop; its per-peer timeout grows on every
//     false suspicion, so in a partially synchronous run there is a time
//     after which no correct process is suspected (accuracy) while crashed
//     processes are permanently suspected (completeness).
//  2. A Perfect detector backed by ground truth (only the primary-backup
//     baseline needs it; the paper stresses that requiring it is a weakness).
//  3. A Scripted detector for tests and experiments that inject false
//     suspicions on demand.
//
// Failure detection between the other tiers is structural, as in the paper:
// clients use timeouts (client protocol), and database servers announce
// recovery with Ready messages rather than being monitored.
package fd

import (
	"context"
	"sort"
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
)

// Detector answers the paper's suspect() predicate.
type Detector interface {
	// Suspects reports whether node is currently suspected to have crashed.
	Suspects(node id.NodeID) bool
	// Suspected returns a sorted snapshot of all currently suspected nodes.
	Suspected() []id.NodeID
}

// Notifier is implemented by detectors that can announce suspicion-state
// transitions. Subscribe registers a wake channel: whenever the suspected
// set may have changed, the detector performs a non-blocking send on every
// subscribed channel (subscribers use capacity-1 channels as level-triggered
// wakeups). Consensus uses this to sleep in blocked phases instead of
// re-polling Suspects on a timer.
type Notifier interface {
	Subscribe(ch chan<- struct{})
	Unsubscribe(ch chan<- struct{})
}

// notifySet is the shared subscription registry of the Notifier
// implementations.
type notifySet struct {
	mu   sync.Mutex
	subs map[chan<- struct{}]struct{}
}

func (s *notifySet) Subscribe(ch chan<- struct{}) {
	s.mu.Lock()
	if s.subs == nil {
		s.subs = make(map[chan<- struct{}]struct{})
	}
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
}

func (s *notifySet) Unsubscribe(ch chan<- struct{}) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}

// notify performs the non-blocking wakeup fan-out.
func (s *notifySet) notify() {
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// SendFunc transmits a payload to a peer; Heartbeat uses it so it can share
// the owning node's endpoint instead of owning one.
type SendFunc func(to id.NodeID, p msg.Payload) error

// Config parameterizes a Heartbeat detector.
type Config struct {
	// Self is the monitoring node (excluded from suspicion).
	Self id.NodeID
	// Peers are the monitored nodes (heartbeats are exchanged with them).
	Peers []id.NodeID
	// Send transmits heartbeats; required.
	Send SendFunc
	// Interval between heartbeat broadcasts. Defaults to 10ms.
	Interval time.Duration
	// Timeout is the initial per-peer suspicion timeout. Defaults to
	// 6*Interval.
	Timeout time.Duration
	// Increment is added to a peer's timeout each time it proves a suspicion
	// wrong, making the detector eventually perfect. Defaults to Interval.
	Increment time.Duration
	// MaxTimeout caps the adaptive growth. Defaults to 100*Timeout.
	MaxTimeout time.Duration
	// Watermark, when set, is sampled at every beat and piggybacked on the
	// outgoing heartbeats (msg.Heartbeat.WM): the consensus layer's applied
	// batch-log watermark rides the liveness beacon, so batch-log truncation
	// keeps advancing even when no consensus traffic is in flight.
	Watermark func() uint64
	// Now is the clock the detector reads. Defaults to time.Now; tests and
	// deterministic harnesses inject their own. All suspicion arithmetic
	// goes through it, so a simulated clock fully controls the detector.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 6 * c.Interval
	}
	if c.Increment <= 0 {
		c.Increment = c.Interval
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 100 * c.Timeout
	}
	if c.Now == nil {
		c.Now = time.Now //etxlint:allow wallclock — the injected clock's default; every other read goes through cfg.Now
	}
	return c
}

// Heartbeat is the eventually-perfect detector used among application
// servers. Construct with NewHeartbeat, feed incoming heartbeats to Observe,
// and run Start in the node's lifetime context.
type Heartbeat struct {
	cfg Config

	mu        sync.Mutex
	lastSeen  map[id.NodeID]time.Time     // guarded by mu
	timeout   map[id.NodeID]time.Duration // guarded by mu
	wasSusp   map[id.NodeID]bool          // guarded by mu; last published state, for adaptive growth
	announced map[id.NodeID]bool          // guarded by mu; last notified state, for transition wakeups
	seq       uint64                      // guarded by mu

	ns notifySet

	wg sync.WaitGroup
}

// NewHeartbeat creates a heartbeat detector. Peers get a grace period of one
// full timeout from construction before they can be suspected.
func NewHeartbeat(cfg Config) *Heartbeat {
	cfg = cfg.withDefaults()
	h := &Heartbeat{
		cfg:       cfg,
		lastSeen:  make(map[id.NodeID]time.Time, len(cfg.Peers)),
		timeout:   make(map[id.NodeID]time.Duration, len(cfg.Peers)),
		wasSusp:   make(map[id.NodeID]bool, len(cfg.Peers)),
		announced: make(map[id.NodeID]bool, len(cfg.Peers)),
	}
	now := cfg.Now()
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		h.lastSeen[p] = now
		h.timeout[p] = cfg.Timeout
	}
	return h
}

// Start launches the heartbeat broadcaster; it stops when ctx is cancelled.
// Wait for termination with Wait.
func (h *Heartbeat) Start(ctx context.Context) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		ticker := time.NewTicker(h.cfg.Interval)
		defer ticker.Stop()
		for {
			h.beat()
			h.announce()
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()
}

// Wait blocks until the broadcaster goroutine has exited.
func (h *Heartbeat) Wait() { h.wg.Wait() }

func (h *Heartbeat) beat() {
	h.mu.Lock()
	h.seq++
	seq := h.seq
	h.mu.Unlock()
	var wm uint64
	if h.cfg.Watermark != nil {
		wm = h.cfg.Watermark()
	}
	for _, p := range h.cfg.Peers {
		if p == h.cfg.Self {
			continue
		}
		// Send errors mean we are shutting down or crashed; the detector has
		// nothing useful to do with them.
		_ = h.cfg.Send(p, msg.Heartbeat{Seq: seq, WM: wm})
	}
}

// Observe records an incoming heartbeat from a peer. If the peer was
// suspected, the suspicion was false: its timeout grows (◊P accuracy) and
// subscribers are woken (the suspected set shrank).
func (h *Heartbeat) Observe(from id.NodeID) {
	h.mu.Lock()
	if _, monitored := h.lastSeen[from]; !monitored {
		h.mu.Unlock()
		return
	}
	if h.wasSusp[from] {
		h.wasSusp[from] = false
		if t := h.timeout[from] + h.cfg.Increment; t <= h.cfg.MaxTimeout {
			h.timeout[from] = t
		}
	}
	h.lastSeen[from] = h.cfg.Now()
	changed := h.announced[from]
	if changed {
		h.announced[from] = false
	}
	h.mu.Unlock()
	if changed {
		h.ns.notify()
	}
}

// announce re-evaluates every peer's suspicion and wakes subscribers on any
// transition; the broadcaster ticker drives it, so a crash is announced
// within one heartbeat interval of the timeout expiring.
func (h *Heartbeat) announce() {
	h.mu.Lock()
	now := h.cfg.Now()
	changed := false
	for p := range h.lastSeen {
		s := h.suspectsLocked(p, now)
		if h.announced[p] != s {
			h.announced[p] = s
			changed = true
		}
	}
	h.mu.Unlock()
	if changed {
		h.ns.notify()
	}
}

// Subscribe implements Notifier.
func (h *Heartbeat) Subscribe(ch chan<- struct{}) { h.ns.Subscribe(ch) }

// Unsubscribe implements Notifier.
func (h *Heartbeat) Unsubscribe(ch chan<- struct{}) { h.ns.Unsubscribe(ch) }

// Suspects implements Detector.
func (h *Heartbeat) Suspects(node id.NodeID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.suspectsLocked(node, h.cfg.Now())
}

func (h *Heartbeat) suspectsLocked(node id.NodeID, now time.Time) bool {
	last, monitored := h.lastSeen[node]
	if !monitored {
		return false
	}
	susp := now.Sub(last) > h.timeout[node]
	if susp {
		h.wasSusp[node] = true
	}
	return susp
}

// Suspected implements Detector.
func (h *Heartbeat) Suspected() []id.NodeID {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.cfg.Now()
	var out []id.NodeID
	for p := range h.lastSeen {
		if h.suspectsLocked(p, now) {
			out = append(out, p)
		}
	}
	sortNodes(out)
	return out
}

// PeerTimeout returns the current adaptive timeout for a peer (observability
// for tests and the failover experiments).
func (h *Heartbeat) PeerTimeout(node id.NodeID) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.timeout[node]
}

// GroundTruth exposes the real up/down state of nodes; the in-memory network
// implements it. Only the Perfect detector (primary-backup baseline) may use
// it — the paper's own protocol never needs ground truth.
type GroundTruth interface {
	Down(node id.NodeID) bool
}

// Perfect is a detector with perfect completeness and accuracy, implemented
// by consulting ground truth. The primary-backup baseline of Figure 7(c)
// requires it; a false suspicion there leads to inconsistency, which is the
// paper's argument for the asynchronous scheme.
type Perfect struct {
	Truth GroundTruth
	Peers []id.NodeID
}

// Suspects implements Detector.
func (p *Perfect) Suspects(node id.NodeID) bool { return p.Truth.Down(node) }

// Suspected implements Detector.
func (p *Perfect) Suspected() []id.NodeID {
	var out []id.NodeID
	for _, n := range p.Peers {
		if p.Truth.Down(n) {
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

// Scripted is a detector whose suspicions are set explicitly by tests and
// experiments (e.g. to inject false suspicions, or to wrap another detector
// with overrides).
type Scripted struct {
	mu        sync.Mutex
	suspected map[id.NodeID]bool
	// Base, if non-nil, is consulted for nodes without an explicit override.
	Base Detector

	ns notifySet
}

// NewScripted creates an empty scripted detector.
func NewScripted() *Scripted {
	return &Scripted{suspected: make(map[id.NodeID]bool)}
}

// Set forces the suspicion state of node and wakes subscribers.
func (s *Scripted) Set(node id.NodeID, suspected bool) {
	s.mu.Lock()
	s.suspected[node] = suspected
	s.mu.Unlock()
	s.ns.notify()
}

// Clear removes the override for node, falling back to Base.
func (s *Scripted) Clear(node id.NodeID) {
	s.mu.Lock()
	delete(s.suspected, node)
	s.mu.Unlock()
	s.ns.notify()
}

// Subscribe implements Notifier. When Base is itself a Notifier the channel
// is registered there too, so base-detector transitions wake the subscriber
// as well as scripted overrides.
func (s *Scripted) Subscribe(ch chan<- struct{}) {
	s.ns.Subscribe(ch)
	if n, ok := s.Base.(Notifier); ok {
		n.Subscribe(ch)
	}
}

// Unsubscribe implements Notifier.
func (s *Scripted) Unsubscribe(ch chan<- struct{}) {
	s.ns.Unsubscribe(ch)
	if n, ok := s.Base.(Notifier); ok {
		n.Unsubscribe(ch)
	}
}

// Suspects implements Detector.
func (s *Scripted) Suspects(node id.NodeID) bool {
	s.mu.Lock()
	v, ok := s.suspected[node]
	s.mu.Unlock()
	if ok {
		return v
	}
	if s.Base != nil {
		return s.Base.Suspects(node)
	}
	return false
}

// Suspected implements Detector.
func (s *Scripted) Suspected() []id.NodeID {
	seen := make(map[id.NodeID]bool)
	var out []id.NodeID
	s.mu.Lock()
	for n, v := range s.suspected {
		seen[n] = true
		if v {
			out = append(out, n)
		}
	}
	s.mu.Unlock()
	if s.Base != nil {
		for _, n := range s.Base.Suspected() {
			if !seen[n] {
				out = append(out, n)
			}
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []id.NodeID) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Role != ns[j].Role {
			return ns[i].Role < ns[j].Role
		}
		return ns[i].Index < ns[j].Index
	})
}

// Compile-time interface checks.
var (
	_ Detector = (*Heartbeat)(nil)
	_ Detector = (*Perfect)(nil)
	_ Detector = (*Scripted)(nil)
	_ Notifier = (*Heartbeat)(nil)
	_ Notifier = (*Scripted)(nil)
)
