//go:build race

package bench

// raceEnabled reports that the race detector is active: its instrumentation
// inflates in-memory round trips severalfold, so timing-shape assertions are
// skipped (functional assertions still run).
const raceEnabled = true
