package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/latcost"
	"etx/internal/transport"
	"etx/internal/workload"
)

// --- EXP-PL: pipelined throughput — 1 client × K in flight vs K clients -----

// PipelineRow is one client shape's measured throughput.
type PipelineRow struct {
	Clients  int
	InFlight int
	Requests int
	Elapsed  time.Duration
}

// Throughput returns requests per (scaled) second.
func (r PipelineRow) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Pipeline reports pipelined against sequential client throughput.
type Pipeline struct {
	Scale float64
	K     int
	Rows  []PipelineRow
}

// RunPipeline measures the same total number of requests through three client
// shapes: one client issuing sequentially (the paper's Figure-2 algorithm),
// one client with K requests pipelined on its single connection, and K
// clients of one in-flight request each. The comparison isolates what
// multiplexing buys: the pipelined shape rides one connection and one
// sequence-number space yet keeps the middle tier as busy as K independent
// clients do.
func RunPipeline(scale float64, requests, k int) (*Pipeline, error) {
	if scale <= 0 {
		scale = 0.05
	}
	if k <= 0 {
		k = 16
	}
	if requests <= 0 {
		requests = 4 * k
	}
	model := latcost.Paper(scale)
	out := &Pipeline{Scale: scale, K: k}
	shapes := []struct {
		clients  int
		inflight int
	}{
		{1, 1},
		{1, k},
		{k, 1},
	}
	for _, sh := range shapes {
		elapsed, err := onePipelineRun(model, sh.clients, sh.inflight, requests)
		if err != nil {
			return nil, errf("pipeline %dx%d: %w", sh.clients, sh.inflight, err)
		}
		out.Rows = append(out.Rows, PipelineRow{
			Clients: sh.clients, InFlight: sh.inflight, Requests: requests, Elapsed: elapsed,
		})
	}
	return out, nil
}

// onePipelineRun drives `requests` total requests through `clients` client
// processes with `inflight` outstanding per client and times the whole run.
func onePipelineRun(model latcost.Model, clients, inflight, requests int) (time.Duration, error) {
	total := estimatedTotal(model)
	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net: transport.Options{
			Latency: model.LatencyFunc(),
			Seed:    1,
		},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		}),
		ForceLatency: model.DBForce,
		Seed:         benchSeed(),
		// Enough compute threads that the middle tier, not the client shape,
		// is never the artificial bottleneck.
		Workers: inflight * clients,

		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    50 * total,
		ResendInterval:    100 * total,
		CleanInterval:     25 * time.Millisecond,
		ClientBackoff:     20 * total,
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	})
	if err != nil {
		return 0, err
	}
	defer c.Stop()

	deadline := time.Duration(requests+10) * 300 * estimatedTotal(model)
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	// Warm-up request per client, outside the timer.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, benchRequest()); err != nil {
			return 0, err
		}
	}

	// All workers pull from one shared counter so every shape issues exactly
	// `requests` requests, evenly balanced, regardless of divisibility.
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients*inflight)
	t0 := time.Now()
	for i := 1; i <= clients; i++ {
		cl := c.Client(i)
		for w := 0; w < inflight; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for next.Add(1) <= int64(requests) {
					if _, err := cl.Issue(ctx, benchRequest()); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return 0, fmt.Errorf("oracle: %s", rep)
	}
	return elapsed, nil
}

// String renders the pipeline report.
func (p *Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipelined throughput (scale %.3f; %d requests per row)\n", p.Scale, p.Rows[0].Requests)
	fmt.Fprintf(&b, "%-26s %12s %14s %10s\n", "client shape", "elapsed (ms)", "req/s (scaled)", "speedup")
	base := p.Rows[0].Throughput()
	for _, r := range p.Rows {
		shape := fmt.Sprintf("%d client x %d in-flight", r.Clients, r.InFlight)
		fmt.Fprintf(&b, "%-26s %12.1f %14.1f %9.1fx\n",
			shape, float64(r.Elapsed)/1e6, r.Throughput(), r.Throughput()/base)
	}
	b.WriteString("(one pipelined client rides a single connection and sequence-number space\n" +
		" yet keeps the middle tier as busy as the same number of independent clients)\n")
	return b.String()
}
