package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/trace"
	"etx/internal/transport"
	"etx/internal/workload"
)

// PatienceRow is one client-patience setting: how long the client waits for
// the default primary before broadcasting to every application server.
type PatienceRow struct {
	// Backoff as a fraction of the failure-free request latency.
	BackoffFraction float64
	// Messages per request (mean), counting protocol traffic only.
	Messages float64
	// RegARaces is the mean number of distinct application servers competing
	// for regA per request (1 = pure primary-backup regime; ~replicas =
	// active-replication regime).
	RegARaces float64
	Latency   metrics.Summary
}

// Patience reproduces the paper's Section 5 observation: "with a 'patient'
// client ... our replication scheme tends to be similar to a primary-backup
// scheme; with an 'impatient' client ... all application servers try to
// concurrently commit or abort a result ... like in an active replication
// scheme". Sweeping the client's back-off exposes the morphing.
type Patience struct {
	Scale float64
	Rows  []PatienceRow
}

// RunPatience sweeps the client's back-off period from far below the
// failure-free latency (impatient: every request is broadcast, all replicas
// race on regA) to far above it (patient: the primary runs alone).
//
// The regA race is only open for about one app-app round trip (≈4.4 ms in
// the paper's time base) after the primary receives the request — far below
// what scaled-down costs and kernel timer resolution can express. This
// experiment therefore runs at the paper's real-time network costs with the
// SQL work shortened tenfold so a full sweep still takes under a second;
// the scale argument is accepted for interface uniformity but ignored.
func RunPatience(_ float64, requests int) (*Patience, error) {
	if requests <= 0 {
		requests = 8
	}
	model := latcost.Paper(1.0)
	model.SQLWork /= 10
	out := &Patience{Scale: 1.0}
	// Below ~0.03 of the total, the broadcast beats the primary's round-1
	// Propose to the backups and they propose themselves (visible racing);
	// after that window they join the existing consensus instance silently.
	for _, frac := range []float64{0.01, 0.1, 2, 20} {
		row, err := onePatienceRun(model, frac, requests)
		if err != nil {
			return nil, errf("patience %.2f: %w", frac, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func onePatienceRun(model latcost.Model, frac float64, requests int) (*PatienceRow, error) {
	total := estimatedTotal(model)
	backoff := time.Duration(float64(total) * frac)
	if backoff < time.Millisecond {
		backoff = time.Millisecond
	}
	cfg := cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Net:         transport.Options{Latency: model.LatencyFunc()},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		}),
		ForceLatency: model.DBForce,
		Seed:         benchSeed(),

		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    100 * total,
		ResendInterval:    100 * total,
		CleanInterval:     25 * time.Millisecond,
		ClientBackoff:     backoff,
		// Faithful to Figure 2: one broadcast after the back-off, then wait
		// (the long rebroadcast is only the liveness net).
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	col := trace.New(c.Net, trace.ProtocolOnly)
	lats := metrics.NewSample()
	races := 0
	msgs := 0
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := 0; i < requests; i++ {
		col.Reset()
		t0 := time.Now()
		if _, err := c.Client(1).Issue(ctx, benchRequest()); err != nil {
			return nil, err
		}
		lats.AddDuration(time.Since(t0))
		time.Sleep(5 * time.Millisecond) // absorb trailing traffic
		c.Net.Quiesce()
		msgs += col.Total()
		races += regAWriters(col, uint64(i+1))
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return nil, errf("oracle: %s", rep)
	}
	return &PatienceRow{
		BackoffFraction: frac,
		Messages:        float64(msgs) / float64(requests),
		RegARaces:       float64(races) / float64(requests),
		Latency:         lats.Summarize(),
	}, nil
}

// regAWriters counts the distinct application servers that proposed or
// estimated in the regA instances of request seq — the competitors for
// executing the try.
func regAWriters(col *trace.Collector, seq uint64) int {
	writers := make(map[id.NodeID]bool)
	for _, ev := range col.Events() {
		var reg msg.RegKey
		//etxlint:allow kindswitch — trace filter: only the two estimate-bearing kinds carry the regA key this metric counts
		switch p := ev.Payload.(type) {
		case msg.Propose:
			reg = p.Reg
		case msg.Estimate:
			reg = p.Reg
		default:
			continue
		}
		if reg.Array == msg.RegA && reg.RID.Seq == seq {
			writers[ev.From] = true
		}
	}
	return len(writers)
}

// String renders the patience sweep.
func (p *Patience) String() string {
	var b strings.Builder
	b.WriteString("Client patience sweep (real-time network costs, SQL/10): primary-backup <-> active replication\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s\n", "backoff/latency", "msgs/req", "regA racers", "latency (ms)")
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%-18.2f %12.1f %12.1f %14.1f\n",
			r.BackoffFraction, r.Messages, r.RegARaces, r.Latency.Mean/p.Scale)
	}
	b.WriteString("(impatient clients broadcast early: every replica races on regA, like\n" +
		" active replication; patient clients leave the primary alone, like\n" +
		" primary-backup — the paper's Section 5 observation)\n")
	return b.String()
}
