package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/transport"
	"etx/internal/workload"
)

// --- EXP-SH: shard scaling — throughput vs database-tier size ---------------
//
// The experiment that justifies the sharded data tier: the same pipelined
// bank workload is driven against deployments of 1, 2, 4 and 8 key-sharded
// database servers, under two key distributions. "uniform" draws accounts
// homed across every shard; "skewed" draws accounts that all live on shard
// 0. Because commitment runs against the participant set (one shard for
// every bank transaction), uniform throughput rises with the shard count —
// each shard's forced-log device serializes only its own commits — while
// skewed throughput stays pinned at single-shard capacity, showing that
// placement, not the protocol, is the lever. The per-request Prepare/Decide
// counts certify the routing: a single-shard transaction on an 8-shard tier
// must send each to exactly 1 engine, where the pre-sharding broadcast sent
// 8.

// ShardRow is one (shard count, distribution) cell of the experiment.
type ShardRow struct {
	Shards       int           `json:"shards"`
	Distribution string        `json:"distribution"`
	Requests     int           `json:"requests"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	// PreparesPerReq and DecidesPerReq are the mean number of database
	// servers sent a Prepare (resp. Decide) per committed request — the
	// participant-routing certificate: 1.0 means single-shard commits
	// touched exactly one engine regardless of tier size.
	PreparesPerReq float64 `json:"prepares_per_req"`
	DecidesPerReq  float64 `json:"decides_per_req"`
	// Throughput is requests per (scaled) second.
	Throughput float64 `json:"throughput_rps"`
}

// ShardScaling is the experiment report.
type ShardScaling struct {
	Scale    float64    `json:"scale"`
	InFlight int        `json:"in_flight"`
	Rows     []ShardRow `json:"rows"`
}

// ShardsConfig parameterizes RunShards. Zero values take defaults; Quick
// shrinks everything for CI smoke runs.
type ShardsConfig struct {
	Scale    float64
	Requests int   // per row
	InFlight int   // total concurrent requests across all clients
	Shards   []int // tier sizes to sweep
	Quick    bool
}

func (c *ShardsConfig) setDefaults() {
	if c.Quick {
		if c.Scale <= 0 {
			c.Scale = 0.02
		}
		if c.Requests <= 0 {
			c.Requests = 120
		}
		if c.InFlight <= 0 {
			c.InFlight = 24
		}
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Requests <= 0 {
		c.Requests = 360
	}
	if c.InFlight <= 0 {
		c.InFlight = 32
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
}

// RunShards measures throughput and per-request commit fan-out across
// database-tier sizes and key distributions.
func RunShards(cfg ShardsConfig) (*ShardScaling, error) {
	cfg.setDefaults()
	model := latcost.Paper(cfg.Scale)
	out := &ShardScaling{Scale: cfg.Scale, InFlight: cfg.InFlight}
	for _, n := range cfg.Shards {
		for _, dist := range []string{"uniform", "skewed"} {
			row, err := oneShardRun(model, n, dist, cfg.Requests, cfg.InFlight)
			if err != nil {
				return nil, errf("shards %d/%s: %w", n, dist, err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// shardAccounts builds the account pools: size accounts homed across all
// shards ("uniform") and size accounts all homed on shard 0 ("skewed"),
// under the same hash placement the cluster routes by. Pools are larger
// than the in-flight window and drawn round-robin, so concurrent requests
// never contend on a key — the measured bottleneck is the commit path, not
// lock waits.
func shardAccounts(shards, size int) (uniform, skewed []string) {
	for i := 0; len(uniform) < size; i++ {
		uniform = append(uniform, fmt.Sprintf("u%04d", i))
	}
	skewed, _ = placement.KeyedNames(placement.Hash(shards), 0, "h",
		func(n string) string { return "acct/" + n }, size)
	return uniform, skewed
}

// oneShardRun drives one (shard count, distribution) cell.
func oneShardRun(model latcost.Model, shards int, dist string, requests, inflight int) (ShardRow, error) {
	const clients = 4
	poolSize := 8 * inflight
	uniform, skewed := shardAccounts(shards, poolSize)
	pool := uniform
	if dist == "skewed" {
		pool = skewed
	}
	seed := make(map[string]int64, 2*poolSize)
	for _, a := range append(append([]string(nil), uniform...), skewed...) {
		seed[a] = 1 << 40
	}

	total := estimatedTotal(model)
	c, err := cluster.New(cluster.Config{
		AppServers: 3,
		Shards:     shards,
		Clients:    clients,
		Net: transport.Options{
			Latency: model.LatencyFunc(),
			Seed:    int64(shards),
		},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			// The commit path is under measurement, not simulated SQL time.
			return workload.Bank(ctx, tx, req, 0)
		}),
		ForceLatency: model.DBForce,
		Seed:         workload.BankSeed(seed),
		// The middle tier must never be the artificial bottleneck.
		Workers:     inflight,
		Terminators: inflight,

		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    50 * total,
		ResendInterval:    100 * total,
		CleanInterval:     25 * time.Millisecond,
		ClientBackoff:     20 * total,
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	})
	if err != nil {
		return ShardRow{}, err
	}
	defer c.Stop()

	// Count Prepare/Decide fan-out to the database tier on the wire.
	var prepares, decides atomic.Int64
	c.Net.AddSniffer(func(ev transport.SniffEvent) {
		if ev.Dropped || ev.To.Role != id.RoleDBServer {
			return
		}
		//etxlint:allow kindswitch — wire-tap counter for the two commit fan-out kinds this benchmark measures
		switch ev.Payload.Kind() {
		case msg.KindPrepare:
			prepares.Add(1)
		case msg.KindDecide:
			decides.Add(1)
		}
	})

	deadline := time.Duration(requests+10) * 300 * total
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[i%len(pool)], Amount: -1})
	}

	// Warm-up outside the timer and the message counts.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, reqFor(i)); err != nil {
			return ShardRow{}, err
		}
	}
	prepBase, decBase := prepares.Load(), decides.Load()

	var next atomic.Int64
	var wg sync.WaitGroup
	perClient := inflight / clients
	if perClient < 1 {
		perClient = 1
	}
	// Capacity must cover every worker actually spawned (perClient is
	// floored to 1, so this can exceed inflight): a failing worker must
	// never block on reporting.
	errs := make(chan error, clients*perClient)
	t0 := time.Now()
	for i := 1; i <= clients; i++ {
		cl := c.Client(i)
		for w := 0; w < perClient; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1)
					if i > int64(requests) {
						return
					}
					if _, err := cl.Issue(ctx, reqFor(int(i))); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return ShardRow{}, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return ShardRow{}, fmt.Errorf("oracle: %s", rep)
	}
	row := ShardRow{
		Shards:         shards,
		Distribution:   dist,
		Requests:       requests,
		Elapsed:        elapsed,
		PreparesPerReq: float64(prepares.Load()-prepBase) / float64(requests),
		DecidesPerReq:  float64(decides.Load()-decBase) / float64(requests),
	}
	if elapsed > 0 {
		row.Throughput = float64(requests) / elapsed.Seconds()
	}
	return row, nil
}

// Row returns the cell for (shards, distribution), or nil.
func (s *ShardScaling) Row(shards int, dist string) *ShardRow {
	for i := range s.Rows {
		if s.Rows[i].Shards == shards && s.Rows[i].Distribution == dist {
			return &s.Rows[i]
		}
	}
	return nil
}

// String renders the report.
func (s *ShardScaling) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shard scaling (scale %.3f; %d requests per row, %d in flight)\n",
		s.Scale, s.Rows[0].Requests, s.InFlight)
	fmt.Fprintf(&b, "%-8s %-10s %12s %14s %12s %12s\n",
		"shards", "keys", "elapsed (ms)", "req/s (scaled)", "prepares/req", "decides/req")
	var base float64
	for _, r := range s.Rows {
		if r.Shards == 1 && r.Distribution == "uniform" {
			base = r.Throughput
		}
	}
	for _, r := range s.Rows {
		speed := ""
		if base > 0 {
			speed = fmt.Sprintf(" (%.1fx)", r.Throughput/base)
		}
		fmt.Fprintf(&b, "%-8d %-10s %12.1f %14.1f %12.2f %12.2f%s\n",
			r.Shards, r.Distribution, float64(r.Elapsed)/1e6, r.Throughput,
			r.PreparesPerReq, r.DecidesPerReq, speed)
	}
	b.WriteString("(commitment runs against the participant set: prepares/req stays at 1 as\n" +
		" shards are added, uniform throughput scales with the tier, skewed keys pin\n" +
		" it to one shard's forced-log capacity)\n")
	return b.String()
}
