package bench

import (
	"strings"
	"testing"

	"etx/internal/msg"
)

// The experiment tests run at a small scale so the whole file finishes in a
// few seconds while still asserting every shape claim under reproduction.

func TestFigure8ReproducesPaperShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-shape assertions are meaningless under the race detector's overhead")
	}
	// A single scheduler hiccup on a loaded one-core machine can blow a
	// column's confidence interval without touching the shape; re-measure
	// once before treating noise as failure.
	var f *Figure8
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		f, err = RunFigure8(Figure8Config{Scale: 0.02, Requests: 12, Warmup: 2})
		if err != nil {
			t.Fatal(err)
		}
		noisy := false
		for _, col := range []Figure8Column{f.Baseline, f.AR, f.TwoPC} {
			if col.TotalCI90 > 0.1*col.Total {
				noisy = true
			}
		}
		if !noisy {
			break
		}
		t.Logf("attempt %d noisy (CIs %.1f/%.1f/%.1f), re-measuring",
			attempt+1, f.Baseline.TotalCI90, f.AR.TotalCI90, f.TwoPC.TotalCI90)
	}
	t.Logf("\n%s", f)

	// Ordering: baseline < AR < 2PC (who wins).
	if !(f.Baseline.Total < f.AR.Total && f.AR.Total < f.TwoPC.Total) {
		t.Fatalf("total ordering broken: baseline=%.1f AR=%.1f 2PC=%.1f",
			f.Baseline.Total, f.AR.Total, f.TwoPC.Total)
	}
	// Magnitudes: AR overhead in the paper's ballpark (16%), clearly below
	// 2PC's (23%).
	if f.AR.Overhead < 5 || f.AR.Overhead > 25 {
		t.Errorf("AR overhead %.1f%%, want near the paper's 16%%", f.AR.Overhead)
	}
	if f.TwoPC.Overhead <= f.AR.Overhead+2 {
		t.Errorf("2PC overhead %.1f%% must clearly exceed AR's %.1f%%",
			f.TwoPC.Overhead, f.AR.Overhead)
	}
	// Mechanism: AR's log rows are in-memory register rounds, much cheaper
	// than 2PC's forced disk writes (the paper's "we save about 25ms" point).
	if f.AR.LogStart >= f.TwoPC.LogStart || f.AR.LogOutcome >= f.TwoPC.LogOutcome {
		t.Errorf("AR log rows (%.1f/%.1f) must undercut 2PC's (%.1f/%.1f)",
			f.AR.LogStart, f.AR.LogOutcome, f.TwoPC.LogStart, f.TwoPC.LogOutcome)
	}
	// The baseline has no prepare phase and no logs.
	if f.Baseline.Prepare != 0 || f.Baseline.LogStart != 0 || f.Baseline.LogOutcome != 0 {
		t.Errorf("baseline must have empty prepare/log rows: %+v", f.Baseline)
	}
	// The paper's methodology: CI width under 10% of the mean (already
	// re-measured once above if a scheduling outlier hit a column).
	for _, col := range []Figure8Column{f.Baseline, f.AR, f.TwoPC} {
		if col.TotalCI90 > 0.1*col.Total {
			t.Errorf("%s: CI ±%.1f exceeds 10%% of mean %.1f even after re-measuring",
				col.Protocol, col.TotalCI90, col.Total)
		}
	}
}

func TestFigure7MessagePatterns(t *testing.T) {
	f, err := RunFigure7(0.01)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	byName := make(map[string]ProtocolTrace)
	for _, p := range f.Protocols {
		name := p.Name
		if idx := strings.IndexByte(name, ' '); idx > 0 {
			name = name[:idx]
		}
		byName[name] = p
	}
	base, ok1 := byName[ProtocolBaseline]
	twoPC, ok2 := byName[Protocol2PC]
	pb, ok3 := byName[ProtocolPB]
	ar, ok4 := byName[ProtocolAR]
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("missing protocols in report: %v", f.Protocols)
	}
	// The diagrams' ordering of communication complexity.
	if !(base.Messages < twoPC.Messages && twoPC.Messages < pb.Messages && pb.Messages < ar.Messages) {
		t.Errorf("message ordering broken: baseline=%d 2PC=%d PB=%d AR=%d",
			base.Messages, twoPC.Messages, pb.Messages, ar.Messages)
	}
	// Structural checks straight off Figure 7: the baseline has no prepare,
	// 2PC adds prepare/vote, PB adds the start/outcome records, AR adds the
	// consensus traffic of the two register writes.
	if base.Counts[kindOf("Prepare")] != 0 {
		t.Error("baseline must not prepare")
	}
	if twoPC.Counts[kindOf("Prepare")] != 1 || twoPC.Counts[kindOf("Vote")] != 1 {
		t.Errorf("2PC prepare/vote counts: %v", twoPC.Counts)
	}
	if pb.Counts[kindOf("PBStart")] != 1 || pb.Counts[kindOf("PBOutcome")] != 1 {
		t.Errorf("PB start/outcome counts: %v", pb.Counts)
	}
	if ar.Counts[kindOf("Propose")] == 0 || ar.Counts[kindOf("Decision")] == 0 {
		t.Errorf("AR consensus traffic missing: %v", ar.Counts)
	}
}

func TestFigure1Scenarios(t *testing.T) {
	f, err := RunFigure1(0.01)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if len(f.Scenarios) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(f.Scenarios))
	}
	// (a) one try; (b) two tries; (c) fail-over yet still try 1 (the
	// crashed primary's result survives through regD); (d) two tries.
	wantTries := []uint64{1, 2, 1, 2}
	for i, sc := range f.Scenarios {
		if sc.Tries != wantTries[i] {
			t.Errorf("%s: tries = %d, want %d", sc.Name, sc.Tries, wantTries[i])
		}
	}
	if !f.Scenarios[2].CrashRan || !f.Scenarios[3].CrashRan {
		t.Error("fail-over scenarios must actually crash the primary")
	}
}

func TestFailoverLatencyDominatedBySuspicion(t *testing.T) {
	f, err := RunFailover(FailoverConfig{Scale: 0.01, Runs: 2, SuspectTimeout: 25 * 1e6})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", f)
	if len(f.Rows) != 5 {
		t.Fatalf("want 5 crash points, got %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.Latency.Mean <= f.NoCrash.Mean {
			t.Errorf("%s: failover latency %.1fms not above failure-free %.1fms",
				r.Point, r.Latency.Mean, f.NoCrash.Mean)
		}
	}
}

func TestSuspicionExperimentSeparatesProtocols(t *testing.T) {
	s, err := RunSuspicion(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s)
	if s.PBInconsistent == 0 {
		t.Error("primary-backup must show inconsistencies under false suspicion")
	}
	if s.ARInconsistent != 0 {
		t.Errorf("AR showed %d inconsistencies; the wo-registers must prevent all", s.ARInconsistent)
	}
	if s.ARDeliveredAll != s.Runs {
		t.Errorf("AR delivered %d/%d runs", s.ARDeliveredAll, s.Runs)
	}
}

func TestWORegisterMicrobench(t *testing.T) {
	w, err := RunWORegister(0.01, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", w)
	if w.Uncontended.Mean <= 0 || w.Contended.Mean <= 0 {
		t.Error("empty samples")
	}
}

func TestGCAblationReclaimsRegisters(t *testing.T) {
	g, err := RunGCAblation(40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", g)
	if g.KeysWith >= g.KeysWithout {
		t.Errorf("retirement must reduce retained keys: with=%d without=%d",
			g.KeysWith, g.KeysWithout)
	}
	if g.KeysWithout == 0 {
		t.Error("without retirement, register keys must accumulate")
	}
}

func TestPatienceSweepMorphsRegimes(t *testing.T) {
	p, err := RunPatience(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", p)
	if len(p.Rows) != 4 {
		t.Fatalf("want 4 patience settings, got %d", len(p.Rows))
	}
	impatient := p.Rows[0]
	patient := p.Rows[len(p.Rows)-1]
	// Impatient clients broadcast: more replicas race on regA and more
	// messages fly; patient clients leave the primary alone.
	if impatient.RegARaces <= patient.RegARaces {
		t.Errorf("regA racers: impatient %.1f <= patient %.1f; the regimes must differ",
			impatient.RegARaces, patient.RegARaces)
	}
	if patient.RegARaces > 1.5 {
		t.Errorf("patient regime should be primary-backup-like, got %.1f racers", patient.RegARaces)
	}
	if impatient.Messages <= patient.Messages {
		t.Errorf("messages: impatient %.1f <= patient %.1f", impatient.Messages, patient.Messages)
	}
}

func TestShardScalingRoutesToParticipants(t *testing.T) {
	s, err := RunShards(ShardsConfig{Scale: 0.01, Requests: 48, InFlight: 12, Shards: []int{1, 8}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s)
	if len(s.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(s.Rows))
	}
	wide := s.Row(8, "uniform")
	if wide == nil {
		t.Fatal("missing 8-shard uniform row")
	}
	// The routing certificate: a single-shard transaction on an 8-shard
	// tier must issue Prepare and Decide to exactly 1 engine, not 8. A
	// handful of protocol-level resends under scheduler noise is tolerated;
	// a broadcast would put these at 8.0.
	if wide.PreparesPerReq > 1.5 {
		t.Errorf("8-shard uniform prepares/req = %.2f, want ~1 (participant set, not broadcast)", wide.PreparesPerReq)
	}
	if wide.DecidesPerReq > 1.5 {
		t.Errorf("8-shard uniform decides/req = %.2f, want ~1", wide.DecidesPerReq)
	}
	if raceEnabled {
		return // timing-shape assertions are meaningless under the race detector
	}
	narrow := s.Row(1, "uniform")
	if wide.Throughput < narrow.Throughput {
		t.Errorf("throughput must not fall as shards are added: 1 shard %.1f, 8 shards %.1f",
			narrow.Throughput, wide.Throughput)
	}
}

// TestConsensusBenchShape asserts the cohort-consensus certificates on a
// small run: window 0 reproduces today's per-write instance counts (two
// local consensus proposals per commit, exactly), and cohort batching pays
// strictly fewer consensus messages and instances per commit.
func TestConsensusBenchShape(t *testing.T) {
	rep, err := RunConsensus(ConsensusConfig{Quick: true, Requests: 200, InFlights: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	off, on := rep.Row(16, false), rep.Row(16, true)
	if off == nil || on == nil {
		t.Fatal("missing rows")
	}
	// Window 0 parity: one consensus instance per register write — the regA
	// claim and the regD decision — and nothing else in a failure-free run.
	if off.InstancesPerCommit < 1.99 || off.InstancesPerCommit > 2.1 {
		t.Errorf("window 0 ran %.2f instances/commit, want 2.00 (one per register write)", off.InstancesPerCommit)
	}
	if on.MsgsPerCommit >= off.MsgsPerCommit {
		t.Errorf("cohort batching did not cut consensus messages: %.2f vs %.2f", on.MsgsPerCommit, off.MsgsPerCommit)
	}
	if on.InstancesPerCommit >= off.InstancesPerCommit/2 {
		t.Errorf("cohort batching barely shared instances: %.2f vs %.2f", on.InstancesPerCommit, off.InstancesPerCommit)
	}
	if off.FastPathRate < 0.99 || on.FastPathRate < 0.99 {
		t.Errorf("failure-free runs must ride the round-1 fast path: off=%.2f on=%.2f", off.FastPathRate, on.FastPathRate)
	}
	if raceEnabled {
		return // timing-shape assertions are meaningless under the race detector
	}
	if on.Throughput < off.Throughput {
		t.Errorf("cohort batching lost throughput at depth 16: %.1f vs %.1f", on.Throughput, off.Throughput)
	}
}

func TestScalingRuns(t *testing.T) {
	s, err := RunScaling(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s)
	if len(s.Rows) != 5 {
		t.Fatalf("want 5 deployment shapes, got %d", len(s.Rows))
	}
}

// kindOf maps a kind name back to its Kind (test helper).
func kindOf(name string) msg.Kind {
	for i := 1; i < 64; i++ {
		if msg.Kind(i).String() == name {
			return msg.Kind(i)
		}
	}
	return 0
}
