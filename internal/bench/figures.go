package bench

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/msg"
	"etx/internal/trace"
	"etx/internal/transport"
	"etx/internal/workload"
)

// ProtocolTrace is one protocol's communication pattern for a single
// failure-free request: the collapsed timeline (one entry per arrow group of
// the paper's diagrams), per-kind message counts and the total.
type ProtocolTrace struct {
	Name     string
	Steps    []trace.Step
	Counts   map[msg.Kind]int
	Messages int
}

// Figure7 is the reproduction of the paper's Figure 7: the communication
// steps of the four protocols in failure-free executions.
type Figure7 struct {
	Protocols []ProtocolTrace
}

// RunFigure7 traces one failure-free request through each protocol.
func RunFigure7(scale float64) (*Figure7, error) {
	model := latcost.Paper(scale)
	out := &Figure7{}

	// Baseline (Figure 7a) and 2PC (Figure 7b).
	for _, p := range []struct {
		name  string
		build func(latcost.Model, *latcost.Recorder) (*soloRig, error)
	}{
		{ProtocolBaseline, newBaselineRig},
		{Protocol2PC, newTwoPCRig},
	} {
		rig, err := p.build(model, nil)
		if err != nil {
			return nil, errf("figure7 %s: %w", p.name, err)
		}
		col := trace.New(rig.net, trace.ProtocolOnly)
		ctx, cancel := context.WithTimeout(context.Background(), 300*estimatedTotal(model))
		dec, err := rig.client.Call(ctx, benchRequest())
		cancel()
		if err != nil || !dec.Committed() {
			rig.stop()
			return nil, errf("figure7 %s request failed: %v (%v)", p.name, err, dec)
		}
		rig.net.Quiesce()
		out.Protocols = append(out.Protocols, ProtocolTrace{
			Name: p.name, Steps: col.Steps(), Counts: col.Counts(), Messages: col.Total(),
		})
		rig.stop()
	}

	// Primary-backup (Figure 7c).
	pb, err := newPBRig(model, nil, nil)
	if err != nil {
		return nil, errf("figure7 PB: %w", err)
	}
	pbCol := trace.New(pb.net, trace.ProtocolOnly)
	ctx, cancel := context.WithTimeout(context.Background(), 300*estimatedTotal(model))
	if _, err := pb.client.Issue(ctx, benchRequest()); err != nil {
		cancel()
		pb.stop()
		return nil, errf("figure7 PB request: %w", err)
	}
	cancel()
	pb.net.Quiesce()
	out.Protocols = append(out.Protocols, ProtocolTrace{
		Name: ProtocolPB, Steps: pbCol.Steps(), Counts: pbCol.Counts(), Messages: pbCol.Total(),
	})
	pb.stop()

	// Asynchronous replication (Figure 7d = Figure 1a).
	arTrace, _, err := traceARScenario(model, nil, nil)
	if err != nil {
		return nil, err
	}
	out.Protocols = append(out.Protocols, *arTrace)
	return out, nil
}

// traceARScenario runs one request through an AR cluster with optional crash
// hooks and an optional post-setup callback, returning the trace and the
// number of tries the client needed.
func traceARScenario(model latcost.Model, hooks func(self id.NodeID, c *atomic.Pointer[cluster.Cluster]) *core.Hooks,
	logic core.Logic) (*ProtocolTrace, *core.Client, error) {
	var cRef atomic.Pointer[cluster.Cluster]
	if logic == nil {
		logic = core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		})
	}
	total := estimatedTotal(model)
	cfg := cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Net:         transport.Options{Latency: model.LatencyFunc()},
		Logic:       logic,
		Seed:        benchSeed(),

		HeartbeatInterval: 2 * time.Millisecond,
		SuspectTimeout:    16 * time.Millisecond,
		ResendInterval:    100 * total,
		CleanInterval:     2 * time.Millisecond,
		ClientBackoff:     20 * total,
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	}
	if hooks != nil {
		cfg.Hooks = func(self id.NodeID) *core.Hooks { return hooks(self, &cRef) }
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, nil, errf("AR scenario rig: %w", err)
	}
	cRef.Store(c)
	defer c.Stop()

	col := trace.New(c.Net, trace.ProtocolOnly)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Client(1).Issue(ctx, benchRequest()); err != nil {
		return nil, nil, errf("AR scenario request: %w", err)
	}
	time.Sleep(10 * time.Millisecond) // let trailing acks land
	c.Net.Quiesce()
	if rep := c.CheckProperties(); !rep.Ok() {
		return nil, nil, errf("AR scenario oracle: %s", rep)
	}
	deliveries := c.Client(1).Delivered()
	tries := uint64(0)
	if len(deliveries) > 0 {
		tries = deliveries[0].Tries
	}
	return &ProtocolTrace{
		Name:     fmt.Sprintf("%s (tries=%d)", ProtocolAR, tries),
		Steps:    col.Steps(),
		Counts:   col.Counts(),
		Messages: col.Total(),
	}, c.Client(1), nil
}

// String renders the Figure 7 report.
func (f *Figure7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — communication of the protocols, one failure-free request\n")
	for _, p := range f.Protocols {
		fmt.Fprintf(&b, "\n%s: %d messages, %d steps\n", p.Name, p.Messages, len(p.Steps))
		fmt.Fprintf(&b, "  by kind: %s\n", trace.FormatCounts(p.Counts))
		for i, s := range p.Steps {
			fmt.Fprintf(&b, "  step %2d: %s\n", i+1, s)
		}
	}
	return b.String()
}

// Figure1Scenario is one of the paper's Figure 1 executions.
type Figure1Scenario struct {
	Name     string
	Trace    ProtocolTrace
	Outcome  string
	Tries    uint64
	CrashRan bool
}

// Figure1 is the reproduction of the paper's Figure 1: the protocol's
// message pattern in the four canonical executions.
type Figure1 struct {
	Scenarios []Figure1Scenario
}

// RunFigure1 exercises the four executions of Figure 1: failure-free commit,
// failure-free abort (the databases refuse the first try), fail-over with
// commit (primary crashes after regD), and fail-over with abort (primary
// crashes before regD).
func RunFigure1(scale float64) (*Figure1, error) {
	model := latcost.Paper(scale)
	out := &Figure1{}

	// (a) Failure-free run with commit.
	tr, cl, err := traceARScenario(model, nil, nil)
	if err != nil {
		return nil, err
	}
	out.Scenarios = append(out.Scenarios, scenarioOf("(a) failure-free commit", tr, cl, false))

	// (b) Failure-free run with abort: the databases refuse try 1.
	var attempt atomic.Int64
	abortOnce := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		if attempt.Add(1) == 1 {
			if _, err := tx.Exec(ctx, tx.DBs()[0], msg.Op{Code: msg.OpCheckGE, Key: "acct/" + seedAccount, Delta: 1 << 62}); err != nil {
				return nil, err
			}
			return []byte("refused"), nil
		}
		return workload.Bank(ctx, tx, req, 0)
	})
	tr, cl, err = traceARScenario(model, nil, abortOnce)
	if err != nil {
		return nil, err
	}
	out.Scenarios = append(out.Scenarios, scenarioOf("(b) abort then retried commit", tr, cl, false))

	// (c) Fail-over with commit; (d) fail-over with abort.
	for _, sc := range []struct {
		name  string
		point core.CrashPoint
	}{
		{"(c) fail-over with commit (crash after regD write)", core.PointAfterRegD},
		{"(d) fail-over with abort (crash after prepare)", core.PointAfterPrepare},
	} {
		var fired atomic.Bool
		hooks := func(self id.NodeID, cRef *atomic.Pointer[cluster.Cluster]) *core.Hooks {
			if self != id.AppServer(1) {
				return nil
			}
			return &core.Hooks{Crash: func(p core.CrashPoint, rid id.ResultID) {
				if p == sc.point && rid.Try == 1 && fired.CompareAndSwap(false, true) {
					cRef.Load().CrashApp(1)
				}
			}}
		}
		tr, cl, err := traceARScenario(model, hooks, nil)
		if err != nil {
			return nil, errf("figure1 %s: %w", sc.name, err)
		}
		s := scenarioOf(sc.name, tr, cl, fired.Load())
		out.Scenarios = append(out.Scenarios, s)
	}
	return out, nil
}

func scenarioOf(name string, tr *ProtocolTrace, cl *core.Client, crashed bool) Figure1Scenario {
	s := Figure1Scenario{Name: name, Trace: *tr, Outcome: "commit", CrashRan: crashed}
	if ds := cl.Delivered(); len(ds) > 0 {
		s.Tries = ds[0].Tries
	}
	return s
}

// String renders the Figure 1 report.
func (f *Figure1) String() string {
	var b strings.Builder
	b.WriteString("Figure 1 — protocol executions (message patterns)\n")
	for _, s := range f.Scenarios {
		fmt.Fprintf(&b, "\n%s: delivered after %d tries, %d messages\n", s.Name, s.Tries, s.Trace.Messages)
		fmt.Fprintf(&b, "  by kind: %s\n", trace.FormatCounts(s.Trace.Counts))
	}
	return b.String()
}
