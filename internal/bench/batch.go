package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/latcost"
	"etx/internal/transport"
	"etx/internal/workload"
)

// --- EXP-BA: group commit — fsyncs per commit vs pipelined clients -----------
//
// The experiment that justifies group commit. On one shard with a nonzero
// fsync cost, the commit path pays two forced log writes per request
// (prepare + commit), and PR 2 deliberately serialized them per store: with
// K pipelined clients the forces queue back-to-back, so throughput is pinned
// at 1/(2*fsync) regardless of K. The group-commit combiner lets one fsync
// durably cover a whole cohort of concurrent forced writes, and the batched
// serve loop and outbound aggregation shrink the per-message overhead around
// it: the same workload then shows fsyncs-per-commit far below 1 and
// throughput that scales with the pipelining depth instead of the device.

// BatchRow is one (pipelining depth, batching on/off) cell.
type BatchRow struct {
	Batching bool          `json:"batching"`
	Window   time.Duration `json:"window_ns"`
	InFlight int           `json:"in_flight"`
	Requests int           `json:"requests"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Throughput is committed requests per (scaled) second.
	Throughput float64 `json:"throughput_rps"`
	// FsyncsPerCommit is the number of device forces actually paid per
	// committed request — the group-commit certificate: 2.0 without
	// batching (prepare + commit), far below 1 with it.
	FsyncsPerCommit float64 `json:"fsyncs_per_commit"`
	// ForcedPerCommit is the number of forced-write *requests* per commit;
	// mailbox batching lowers it below 2.0 because a drained batch of
	// prepares (or decides) issues one shared Sync.
	ForcedPerCommit float64 `json:"forced_writes_per_commit"`
	// MeanBatch is forced requests per fsync — the mean group-commit cohort.
	MeanBatch float64 `json:"mean_batch"`
}

// BatchReport is the experiment report.
type BatchReport struct {
	Scale float64       `json:"scale"`
	Fsync time.Duration `json:"fsync_ns"`
	Rows  []BatchRow    `json:"rows"`
}

// BatchConfig parameterizes RunBatch. Zero values take defaults; Quick
// shrinks everything for CI smoke runs.
type BatchConfig struct {
	Scale     float64
	Requests  int   // per row
	InFlights []int // pipelining depths to sweep
	Quick     bool
}

func (c *BatchConfig) setDefaults() {
	if c.Quick {
		if c.Scale <= 0 {
			c.Scale = 0.02
		}
		if c.Requests <= 0 {
			c.Requests = 160
		}
		if len(c.InFlights) == 0 {
			c.InFlights = []int{1, 32}
		}
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Requests <= 0 {
		c.Requests = 320
	}
	if len(c.InFlights) == 0 {
		c.InFlights = []int{1, 8, 32}
	}
}

// RunBatch measures throughput and forced-write cost per commit on a single
// shard, with the batching stack off (window 0, today's serialized forces)
// and on.
func RunBatch(cfg BatchConfig) (*BatchReport, error) {
	cfg.setDefaults()
	model := latcost.Paper(cfg.Scale)
	out := &BatchReport{Scale: cfg.Scale, Fsync: model.DBForce}
	for _, inflight := range cfg.InFlights {
		for _, batching := range []bool{false, true} {
			window := time.Duration(0)
			if batching {
				// The window only matters on an idle device: under load the
				// cohort stays open while the previous fsync is in flight, so
				// a small fraction of the fsync cost suffices.
				window = model.DBForce / 8
			}
			row, err := oneBatchRun(model, window, inflight, cfg.Requests)
			if err != nil {
				return nil, errf("batch inflight=%d batching=%v: %w", inflight, batching, err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// oneBatchRun drives one cell: `requests` bank transactions against a
// one-shard tier at the given pipelining depth.
func oneBatchRun(model latcost.Model, window time.Duration, inflight, requests int) (BatchRow, error) {
	const clients = 4
	poolSize := 8 * inflight
	pool := make([]string, poolSize)
	seed := make(map[string]int64, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("gc%04d", i)
		seed[pool[i]] = 1 << 40
	}

	total := estimatedTotal(model)
	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net: transport.Options{
			Latency: model.LatencyFunc(),
			Seed:    int64(inflight + 1),
		},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			// The commit path is under measurement, not simulated SQL time.
			return workload.Bank(ctx, tx, req, 0)
		}),
		ForceLatency: model.DBForce,
		BatchWindow:  window,
		Seed:         workload.BankSeed(seed),
		// The middle tier must never be the artificial bottleneck.
		Workers:     inflight,
		Terminators: inflight,

		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    50 * total,
		ResendInterval:    100 * total,
		CleanInterval:     25 * time.Millisecond,
		ClientBackoff:     20 * total,
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	})
	if err != nil {
		return BatchRow{}, err
	}
	defer c.Stop()

	deadline := time.Duration(requests+10) * 300 * total
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[i%len(pool)], Amount: -1})
	}

	// Warm-up outside the timer and the counters.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, reqFor(i)); err != nil {
			return BatchRow{}, err
		}
	}
	st := c.Engine(1).StableStore()
	syncBase, forcedBase := st.Syncs(), st.ForcedWrites()

	// Exactly `inflight` concurrent issuers, spread round-robin over the
	// client processes, so the row's label is the measured depth (an
	// in-flight of 1 really is serial issue).
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	t0 := time.Now()
	for w := 0; w < inflight; w++ {
		cl := c.Client(w%clients + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(requests) {
					return
				}
				if _, err := cl.Issue(ctx, reqFor(int(i))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return BatchRow{}, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return BatchRow{}, fmt.Errorf("oracle: %s", rep)
	}
	syncs := float64(st.Syncs() - syncBase)
	forced := float64(st.ForcedWrites() - forcedBase)
	row := BatchRow{
		Batching:        window > 0,
		Window:          window,
		InFlight:        inflight,
		Requests:        requests,
		Elapsed:         elapsed,
		FsyncsPerCommit: syncs / float64(requests),
		ForcedPerCommit: forced / float64(requests),
	}
	if elapsed > 0 {
		row.Throughput = float64(requests) / elapsed.Seconds()
	}
	if syncs > 0 {
		row.MeanBatch = forced / syncs
	}
	return row, nil
}

// Row returns the cell for (inflight, batching), or nil.
func (b *BatchReport) Row(inflight int, batching bool) *BatchRow {
	for i := range b.Rows {
		if b.Rows[i].InFlight == inflight && b.Rows[i].Batching == batching {
			return &b.Rows[i]
		}
	}
	return nil
}

// String renders the report.
func (b *BatchReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Group commit (scale %.3f; fsync %.2f ms; %d requests per row, 1 shard)\n",
		b.Scale, float64(b.Fsync)/1e6, b.Rows[0].Requests)
	fmt.Fprintf(&s, "%-10s %-9s %12s %14s %12s %12s %10s\n",
		"in-flight", "batching", "elapsed (ms)", "req/s (scaled)", "fsyncs/req", "forced/req", "batch")
	for _, r := range b.Rows {
		speed := ""
		if r.Batching {
			if off := b.Row(r.InFlight, false); off != nil && off.Throughput > 0 {
				speed = fmt.Sprintf(" (%.1fx)", r.Throughput/off.Throughput)
			}
		}
		mode := "off"
		if r.Batching {
			mode = "on"
		}
		fmt.Fprintf(&s, "%-10d %-9s %12.1f %14.1f %12.2f %12.2f %10.1f%s\n",
			r.InFlight, mode, float64(r.Elapsed)/1e6, r.Throughput,
			r.FsyncsPerCommit, r.ForcedPerCommit, r.MeanBatch, speed)
	}
	s.WriteString("(without batching every commit pays two serialized fsyncs — prepare and\n" +
		" commit — so pipelining cannot raise throughput past the log device; with the\n" +
		" combiner one fsync covers a whole cohort and throughput follows the clients)\n")
	return s.String()
}
