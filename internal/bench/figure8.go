package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/spin"
)

// Figure8Config parameterizes the reproduction of the paper's Figure 8
// table ("Comparing the latency of the protocols").
type Figure8Config struct {
	// Scale is the cost-model multiplier (1.0 = the paper's real-time
	// costs). Default 0.05.
	Scale float64
	// Requests per protocol column (after warm-up). Default 30, matching
	// "we executed multiple identical transactions".
	Requests int
	// Warmup requests excluded from the measurement. Default 3.
	Warmup int
	// AppServers is the AR replication degree. Default 3 (tolerates one
	// crash with a majority, the paper's analytic setting).
	AppServers int
}

func (c *Figure8Config) setDefaults() {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Requests <= 0 {
		c.Requests = 30
	}
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	if c.AppServers <= 0 {
		c.AppServers = 3
	}
}

// Figure8Column is one protocol column of the table, in milliseconds of the
// paper's (unscaled) time base.
type Figure8Column struct {
	Protocol   string
	Start      float64
	End        float64
	Commit     float64
	Prepare    float64
	SQL        float64
	LogStart   float64
	LogOutcome float64
	Other      float64
	Total      float64
	TotalCI90  float64
	// Overhead is the cost of reliability relative to the baseline column,
	// in percent.
	Overhead float64
}

// Figure8 is the reproduced table: baseline, AR (the paper's protocol) and
// 2PC columns, exactly the rows of the paper's Figure 8.
type Figure8 struct {
	Scale    float64
	Requests int
	Baseline Figure8Column
	AR       Figure8Column
	TwoPC    Figure8Column
}

// PaperFigure8 returns the table as published (milliseconds), for
// side-by-side comparison in reports and EXPERIMENTS.md.
func PaperFigure8() Figure8 {
	return Figure8{
		Scale: 1.0,
		Baseline: Figure8Column{
			Protocol: ProtocolBaseline,
			Start:    3.4, End: 3.4, Commit: 18.6, Prepare: 0, SQL: 187.0,
			LogStart: 0, LogOutcome: 0, Other: 5.0, Total: 217.4, Overhead: 0,
		},
		AR: Figure8Column{
			Protocol: ProtocolAR,
			Start:    3.5, End: 3.5, Commit: 18.8, Prepare: 19.0, SQL: 193.2,
			LogStart: 4.5, LogOutcome: 4.7, Other: 5.1, Total: 252.3, Overhead: 16,
		},
		TwoPC: Figure8Column{
			Protocol: Protocol2PC,
			Start:    3.5, End: 3.4, Commit: 17.5, Prepare: 21.2, SQL: 190.6,
			LogStart: 12.5, LogOutcome: 12.7, Other: 5.1, Total: 266.5, Overhead: 23,
		},
	}
}

// RunFigure8 measures the three protocols on the calibrated cost model and
// assembles the table.
func RunFigure8(cfg Figure8Config) (*Figure8, error) {
	cfg.setDefaults()
	model := latcost.Paper(cfg.Scale)

	baselineCol, err := runSoloColumn(ProtocolBaseline, model, cfg, newBaselineRig)
	if err != nil {
		return nil, err
	}
	arCol, err := runARColumn(model, cfg)
	if err != nil {
		return nil, err
	}
	twoPCCol, err := runSoloColumn(Protocol2PC, model, cfg, newTwoPCRig)
	if err != nil {
		return nil, err
	}

	overhead := func(c *Figure8Column) {
		if baselineCol.Total > 0 {
			c.Overhead = (c.Total - baselineCol.Total) / baselineCol.Total * 100
		}
	}
	overhead(&arCol)
	overhead(&twoPCCol)

	return &Figure8{
		Scale:    cfg.Scale,
		Requests: cfg.Requests,
		Baseline: baselineCol,
		AR:       arCol,
		TwoPC:    twoPCCol,
	}, nil
}

// runSoloColumn measures a single-server protocol (baseline or 2PC).
func runSoloColumn(name string, model latcost.Model, cfg Figure8Config,
	build func(latcost.Model, *latcost.Recorder) (*soloRig, error)) (Figure8Column, error) {
	rec := latcost.NewRecorder()
	rig, err := build(model, rec)
	if err != nil {
		return Figure8Column{}, errf("%s rig: %w", name, err)
	}
	defer rig.stop()

	totals := metrics.NewSample()
	deadline := 300 * estimatedTotal(model)
	for i := 0; i < cfg.Warmup+cfg.Requests; i++ {
		if i == cfg.Warmup {
			rec.Reset()
			totals = metrics.NewSample()
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		spin.Sleep(model.ClientStart)
		dec, err := rig.client.Call(ctx, benchRequest())
		cancel()
		if err != nil {
			return Figure8Column{}, errf("%s request %d: %w", name, i, err)
		}
		if !dec.Committed() {
			return Figure8Column{}, errf("%s request %d aborted", name, i)
		}
		spin.Sleep(model.ClientEnd)
		total := time.Since(t0)
		rec.Observe(zeroRID(), core.SpanStart, model.ClientStart)
		rec.Observe(zeroRID(), core.SpanEnd, model.ClientEnd)
		totals.AddDuration(total)
	}
	return assembleColumn(name, model, rec, totals), nil
}

// runARColumn measures the replicated protocol through a full cluster.
func runARColumn(model latcost.Model, cfg Figure8Config) (Figure8Column, error) {
	rec := latcost.NewRecorder()
	c, err := arDeployment(model, cfg.AppServers, 1, rec, 1)
	if err != nil {
		return Figure8Column{}, errf("AR rig: %w", err)
	}
	defer c.Stop()

	totals := metrics.NewSample()
	deadline := 300 * estimatedTotal(model)
	for i := 0; i < cfg.Warmup+cfg.Requests; i++ {
		if i == cfg.Warmup {
			rec.Reset()
			totals = metrics.NewSample()
		}
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		t0 := time.Now()
		spin.Sleep(model.ClientStart)
		res, err := c.Client(1).Issue(ctx, benchRequest())
		cancel()
		if err != nil {
			return Figure8Column{}, errf("AR request %d: %w", i, err)
		}
		if len(res) == 0 {
			return Figure8Column{}, errf("AR request %d returned an empty result", i)
		}
		spin.Sleep(model.ClientEnd)
		total := time.Since(t0)
		rec.Observe(zeroRID(), core.SpanStart, model.ClientStart)
		rec.Observe(zeroRID(), core.SpanEnd, model.ClientEnd)
		totals.AddDuration(total)
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return Figure8Column{}, errf("AR oracle violations: %s", rep)
	}
	return assembleColumn(ProtocolAR, model, rec, totals), nil
}

func zeroRID() id.ResultID { return id.ResultID{} }

// assembleColumn converts scaled measurements back to the paper's time base
// and derives the "other" row as the unaccounted remainder, exactly like the
// paper ("the amount of time which is unaccounted for after allocating the
// response time to the listed components").
func assembleColumn(name string, model latcost.Model, rec *latcost.Recorder, totals *metrics.Sample) Figure8Column {
	unscale := 1.0 / model.Scale
	col := Figure8Column{
		Protocol:   name,
		Start:      rec.Mean(core.SpanStart) * unscale,
		End:        rec.Mean(core.SpanEnd) * unscale,
		Commit:     rec.Mean(core.SpanCommit) * unscale,
		Prepare:    rec.Mean(core.SpanPrepare) * unscale,
		SQL:        rec.Mean(core.SpanSQL) * unscale,
		LogStart:   rec.Mean(core.SpanLogStart) * unscale,
		LogOutcome: rec.Mean(core.SpanLogOutcome) * unscale,
		Total:      totals.Mean() * unscale,
		TotalCI90:  totals.CI90() * unscale,
	}
	accounted := col.Start + col.End + col.Commit + col.Prepare + col.SQL + col.LogStart + col.LogOutcome
	col.Other = col.Total - accounted
	return col
}

// String renders the table in the paper's layout.
func (f *Figure8) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — latency of the protocols (milliseconds, paper time base; scale %.3f, %d requests/protocol)\n",
		f.Scale, f.Requests)
	fmt.Fprintf(&b, "%-20s %10s %10s %10s\n", "protocol", "baseline", "AR", "2PC")
	row := func(label string, sel func(Figure8Column) float64) {
		fmt.Fprintf(&b, "%-20s %10.1f %10.1f %10.1f\n",
			label, sel(f.Baseline), sel(f.AR), sel(f.TwoPC))
	}
	row("start", func(c Figure8Column) float64 { return c.Start })
	row("end", func(c Figure8Column) float64 { return c.End })
	row("commit", func(c Figure8Column) float64 { return c.Commit })
	row("prepare", func(c Figure8Column) float64 { return c.Prepare })
	row("SQL", func(c Figure8Column) float64 { return c.SQL })
	row("log-start", func(c Figure8Column) float64 { return c.LogStart })
	row("log-outcome", func(c Figure8Column) float64 { return c.LogOutcome })
	row("other", func(c Figure8Column) float64 { return c.Other })
	row("total", func(c Figure8Column) float64 { return c.Total })
	fmt.Fprintf(&b, "%-20s %9.0f%% %9.1f%% %9.1f%%\n", "cost of reliability",
		f.Baseline.Overhead, f.AR.Overhead, f.TwoPC.Overhead)
	fmt.Fprintf(&b, "(90%% CI of totals: baseline ±%.1f, AR ±%.1f, 2PC ±%.1f)\n",
		f.Baseline.TotalCI90, f.AR.TotalCI90, f.TwoPC.TotalCI90)
	return b.String()
}
