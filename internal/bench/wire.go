package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/transport/tcptransport"
	"etx/internal/workload"
)

// --- EXP-WI: zero-copy vectored transport + adaptive windows ------------------
//
// Two sections, one per half of the transport rework. The wire section is a
// raw-transport microbenchmark over real TCP loopback: a sender pushes
// frames at a fixed pipelining depth through the per-peer writer, once with
// vectored flushes (one writev per queue drain) and once with the flush cap
// pinned to one frame — the historical one-write-per-frame transport — so
// the frames-per-second and syscall columns of a depth are directly
// comparable. The zero-copy property is counter-verified every run: on the
// writev build the coalesced counter must stay at 0. The windows section
// runs the full commit path on a memnet cluster and sweeps the batching
// policy — static windows of three magnitudes against the adaptive mode —
// at depth 1 and at depth: adaptive must match the best static cell at both
// ends, which no single static window does (window 0 loses throughput at
// depth, a wide window pays its full width at depth 1).

// WireRow is one (mode, depth) cell of the raw-transport section.
type WireRow struct {
	Mode     string        `json:"mode"` // "perframe" | "writev"
	InFlight int           `json:"in_flight"`
	Frames   int           `json:"frames"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// FramesPerSec is delivered frames per second.
	FramesPerSec float64 `json:"frames_per_sec"`
	// WritevCalls is the kernel flushes the sender paid; FramesPerWritev is
	// the amortization factor (1.0 = every frame paid its own syscall).
	WritevCalls     uint64  `json:"writev_calls"`
	FramesPerWritev float64 `json:"frames_per_writev"`
	// Coalesced counts frames copied through a coalescing buffer — 0 on the
	// scatter-gather path, counter-verified.
	Coalesced uint64 `json:"coalesced_frames"`
	// QueueDrops counts frames dropped on a full writer queue (0 in this
	// paced run).
	QueueDrops uint64 `json:"queue_drops"`
}

// WindowRow is one (policy, depth) cell of the adaptive-windows section.
type WindowRow struct {
	Mode     string        `json:"mode"` // "static-0" | "static-100us" | "static-2ms" | "adaptive"
	InFlight int           `json:"in_flight"`
	Requests int           `json:"requests"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Throughput is committed requests per second.
	Throughput float64 `json:"throughput_rps"`
	// P50 and P99 are client-observed commit latencies in ms.
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

// WireReport is the experiment report.
type WireReport struct {
	Wire    []WireRow   `json:"wire"`
	Windows []WindowRow `json:"windows"`
	// Net is the -net profile of the windows section ("" = zero-latency).
	Net string `json:"net,omitempty"`
}

// WireConfig parameterizes RunWire. Zero values take defaults; Quick
// shrinks everything for CI smoke runs.
type WireConfig struct {
	Frames    int    // raw frames per wire cell
	Requests  int    // committed requests per windows cell
	InFlights []int  // pipelining depths to sweep
	Net       string // latcost profile for the windows section: "", "lan", "wan"
	Quick     bool
}

func (c *WireConfig) setDefaults() {
	if c.Quick {
		if c.Frames <= 0 {
			c.Frames = 4000
		}
		if c.Requests <= 0 {
			c.Requests = 160
		}
		if len(c.InFlights) == 0 {
			c.InFlights = []int{1, 32}
		}
	}
	if c.Frames <= 0 {
		c.Frames = 20000
	}
	if c.Requests <= 0 {
		c.Requests = 500
	}
	if len(c.InFlights) == 0 {
		c.InFlights = []int{1, 32, 64}
	}
}

// windowPolicies are the batching policies of the windows section. The
// static magnitudes bracket the trade: 0 is the paper-exact no-batching
// mode, 100µs is the tuned always-on setting the earlier experiments use,
// 2ms is a wide window that maximizes sharing.
var windowPolicies = []struct {
	name          string
	batch, cohort time.Duration
	adaptive      bool
}{
	{"static-0", 0, 0, false},
	{"static-100us", 100 * time.Microsecond, 100 * time.Microsecond, false},
	{"static-2ms", 2 * time.Millisecond, 2 * time.Millisecond, false},
	{"adaptive", 0, 0, true},
}

// RunWire measures the raw transport and the batching policies.
func RunWire(cfg WireConfig) (*WireReport, error) {
	cfg.setDefaults()
	out := &WireReport{Net: cfg.Net}
	runs := 2
	if cfg.Quick {
		runs = 1
	}
	for _, inflight := range cfg.InFlights {
		for _, mode := range []string{"perframe", "writev"} {
			var best WireRow
			for r := 0; r < runs; r++ {
				row, err := oneWireRun(mode, inflight, cfg.Frames)
				if err != nil {
					return nil, errf("wire inflight=%d mode=%s: %w", inflight, mode, err)
				}
				if r == 0 || row.FramesPerSec > best.FramesPerSec {
					best = row
				}
			}
			out.Wire = append(out.Wire, best)
		}
	}
	for _, inflight := range cfg.InFlights {
		for _, pol := range windowPolicies {
			var best WindowRow
			for r := 0; r < runs; r++ {
				row, err := oneWindowRun(pol.name, pol.batch, pol.cohort, pol.adaptive, inflight, cfg.Requests, cfg.Net)
				if err != nil {
					return nil, errf("wire windows inflight=%d mode=%s: %w", inflight, pol.name, err)
				}
				if r == 0 || row.Throughput > best.Throughput {
					best = row
				}
			}
			out.Windows = append(out.Windows, best)
		}
	}
	return out, nil
}

// oneWireRun pushes `frames` envelopes through a real TCP loopback link at
// the given pipelining depth. The sender self-paces on receiver delivery
// (a token per outstanding frame), so the writer queue never overflows and
// every frame's cost is measured, not dropped.
func oneWireRun(mode string, inflight, frames int) (WireRow, error) {
	maxWritev := 64
	if mode == "perframe" {
		maxWritev = 1
	}
	mk := func(n int) (*tcptransport.Endpoint, error) {
		return tcptransport.Listen(tcptransport.Config{
			Self:       id.Client(n),
			Listen:     "127.0.0.1:0",
			QueueDepth: inflight + 8,
			MaxWritev:  maxWritev,
		})
	}
	snd, err := mk(1)
	if err != nil {
		return WireRow{}, err
	}
	defer snd.Close()
	rcv, err := mk(2)
	if err != nil {
		return WireRow{}, err
	}
	defer rcv.Close()
	book := map[id.NodeID]string{snd.ID(): snd.Addr(), rcv.ID(): rcv.Addr()}
	snd.SetPeers(book)
	rcv.SetPeers(book)

	// A mid-size frame: large enough that per-frame syscall overhead is not
	// the only cost, small enough that the link never saturates loopback
	// bandwidth before it saturates on syscalls.
	body := make([]byte, 256)
	for i := range body {
		body[i] = byte(i)
	}

	tokens := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		tokens <- struct{}{}
	}
	recvErr := make(chan error, 1)
	go func() {
		deadline := time.After(60 * time.Second)
		for i := 0; i < frames; i++ {
			select {
			case <-rcv.Recv():
				tokens <- struct{}{}
			case <-deadline:
				recvErr <- fmt.Errorf("receiver stalled at frame %d/%d", i, frames)
				return
			}
		}
		recvErr <- nil
	}()

	rid := id.ResultID{Client: snd.ID(), Seq: 1, Try: 1}
	t0 := time.Now()
	for i := 0; i < frames; i++ {
		<-tokens
		if err := snd.Send(msg.Envelope{To: rcv.ID(), Payload: msg.Request{RID: rid, Body: body}}); err != nil {
			return WireRow{}, err
		}
	}
	if err := <-recvErr; err != nil {
		return WireRow{}, err
	}
	elapsed := time.Since(t0)

	st := snd.Stats()
	if st.QueueDrops != 0 {
		return WireRow{}, fmt.Errorf("paced run dropped %d frames on the writer queue", st.QueueDrops)
	}
	if tcptransport.Vectored() && st.Coalesced != 0 {
		// The zero-copy property the experiment exists to demonstrate,
		// verified on every run: the writev path never coalesces.
		return WireRow{}, fmt.Errorf("writev build coalesced %d frames", st.Coalesced)
	}
	if mode == "writev" && inflight >= 32 && st.FramesPerWritev() <= 1.0 {
		return WireRow{}, fmt.Errorf("depth-%d writev run amortized nothing (%.2f frames/flush over %d flushes)",
			inflight, st.FramesPerWritev(), st.WritevCalls)
	}
	row := WireRow{
		Mode:            mode,
		InFlight:        inflight,
		Frames:          frames,
		Elapsed:         elapsed,
		WritevCalls:     st.WritevCalls,
		FramesPerWritev: st.FramesPerWritev(),
		Coalesced:       st.Coalesced,
		QueueDrops:      st.QueueDrops,
	}
	if elapsed > 0 {
		row.FramesPerSec = float64(frames) / elapsed.Seconds()
	}
	return row, nil
}

// oneWindowRun drives one windows cell: `requests` bank transactions against
// a one-shard tier at the given pipelining depth under one batching policy.
func oneWindowRun(mode string, batch, cohort time.Duration, adaptive bool, inflight, requests int, netName string) (WindowRow, error) {
	const clients = 4
	poolSize := 8 * inflight
	pool := make([]string, poolSize)
	seed := make(map[string]int64, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("wi%04d", i)
		seed[pool[i]] = 1 << 40
	}

	netOpts, err := latcost.Profile(netName)
	if err != nil {
		return WindowRow{}, err
	}
	netOpts.Seed = int64(inflight + 1)

	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net:         netOpts,
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, 0)
		}),
		// A real (simulated) forced-write cost: the batch window's whole
		// purpose is sharing this, so a free log device would hide the trade
		// the sweep measures.
		ForceLatency:    500 * time.Microsecond,
		BatchWindow:     batch,
		CohortWindow:    cohort,
		AdaptiveWindows: adaptive,
		DrainBatch:      64,
		Seed:            workload.BankSeed(seed),
		Workers:         inflight,
		Terminators:     inflight,

		// Generous protocol timers: the run is failure-free and nothing may
		// fire spuriously under CPU load.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Second,
		ResendInterval:    5 * time.Second,
		CleanInterval:     50 * time.Millisecond,
		ClientBackoff:     5 * time.Second,
		ClientRebroadcast: 5 * time.Second,
		ComputeTimeout:    30 * time.Second,
	})
	if err != nil {
		return WindowRow{}, err
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[i%poolSize], Amount: -1})
	}

	// Warm-up outside the timer.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, reqFor(i)); err != nil {
			return WindowRow{}, err
		}
	}
	lat := metrics.NewSample()

	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	t0 := time.Now()
	for w := 0; w < inflight; w++ {
		cl := c.Client(w%clients + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(requests) {
					return
				}
				s0 := time.Now()
				if _, err := cl.Issue(ctx, reqFor(int(i))); err != nil {
					errs <- err
					return
				}
				lat.AddDuration(time.Since(s0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return WindowRow{}, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return WindowRow{}, fmt.Errorf("oracle: %s", rep)
	}
	row := WindowRow{
		Mode:     mode,
		InFlight: inflight,
		Requests: requests,
		Elapsed:  elapsed,
		P50:      lat.Percentile(50),
		P99:      lat.Percentile(99),
	}
	if elapsed > 0 {
		row.Throughput = float64(requests) / elapsed.Seconds()
	}
	return row, nil
}

// WireCell returns the wire-section cell for (inflight, mode), or nil.
func (b *WireReport) WireCell(inflight int, mode string) *WireRow {
	for i := range b.Wire {
		r := &b.Wire[i]
		if r.InFlight == inflight && r.Mode == mode {
			return r
		}
	}
	return nil
}

// WindowCell returns the windows-section cell for (inflight, mode), or nil.
func (b *WireReport) WindowCell(inflight int, mode string) *WindowRow {
	for i := range b.Windows {
		r := &b.Windows[i]
		if r.InFlight == inflight && r.Mode == mode {
			return r
		}
	}
	return nil
}

// String renders the report.
func (b *WireReport) String() string {
	var s strings.Builder
	if len(b.Wire) > 0 {
		fmt.Fprintf(&s, "Vectored transport (%d frames per cell, 256 B bodies, real TCP loopback; writev build: %v)\n",
			b.Wire[0].Frames, tcptransport.Vectored())
		fmt.Fprintf(&s, "%-10s %-9s %12s %12s %12s %14s %10s\n",
			"in-flight", "mode", "elapsed (ms)", "frames/s", "flushes", "frames/flush", "coalesced")
		for _, r := range b.Wire {
			speed := ""
			if r.Mode == "writev" {
				if pf := b.WireCell(r.InFlight, "perframe"); pf != nil && pf.FramesPerSec > 0 {
					speed = fmt.Sprintf(" (%.1fx)", r.FramesPerSec/pf.FramesPerSec)
				}
			}
			fmt.Fprintf(&s, "%-10d %-9s %12.1f %12.0f %12d %14.1f %10d%s\n",
				r.InFlight, r.Mode, float64(r.Elapsed)/1e6, r.FramesPerSec,
				r.WritevCalls, r.FramesPerWritev, r.Coalesced, speed)
		}
	}
	if len(b.Windows) > 0 {
		net := b.Net
		if net == "" {
			net = "zero-latency"
		}
		fmt.Fprintf(&s, "Batching windows (%d requests per cell; 3 app servers, 1 shard, %s memnet, 500µs force)\n",
			b.Windows[0].Requests, net)
		fmt.Fprintf(&s, "%-10s %-14s %12s %10s %10s %10s\n",
			"in-flight", "policy", "elapsed (ms)", "req/s", "p50 (ms)", "p99 (ms)")
		for _, r := range b.Windows {
			note := ""
			if r.Mode == "adaptive" {
				bestStatic := 0.0
				for _, o := range b.Windows {
					if o.InFlight == r.InFlight && o.Mode != "adaptive" && o.Throughput > bestStatic {
						bestStatic = o.Throughput
					}
				}
				if bestStatic > 0 {
					note = fmt.Sprintf(" (%.2fx best static)", r.Throughput/bestStatic)
				}
			}
			fmt.Fprintf(&s, "%-10d %-14s %12.1f %10.1f %10.2f %10.2f%s\n",
				r.InFlight, r.Mode, float64(r.Elapsed)/1e6, r.Throughput, r.P50, r.P99, note)
		}
	}
	s.WriteString("(perframe pins the flush cap at one frame — the historical one-write-per-frame\n" +
		" transport — so the writev rows isolate scatter-gather amortization; zero\n" +
		" coalescing copies is counter-verified every run. In the windows section no\n" +
		" static window wins both depth columns: adaptive collapses its caps at depth 1\n" +
		" and widens them under pipelining, tracking the best static cell at each end)\n")
	return s.String()
}
