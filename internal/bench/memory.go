package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/transport"
	"etx/internal/workload"
)

// --- EXP-MEM: bounded batch-log memory ----------------------------------------
//
// The experiment behind checkpointed truncation. Cohort consensus retains
// every decided batch-log slot, so a long-running server leaks one slot
// entry (a whole encoded cohort) per decided slot until OOM — the Section-5
// garbage-collection problem the paper defers, surfacing at the batch log
// instead of the registers. With RetainSlots set, replicas advertise their
// applied watermark and truncate below the cluster-wide minimum; the
// decided-slot map then holds the retention tail plus in-flight slots no
// matter how many commits flow. The headline is the slot-curve column: flat
// with GC on, linear with it off. Requests are retired as they complete in
// both modes, so the per-register maps stay comparable and the difference is
// the batch log itself.

// MemoryRow is one retention mode's measurement.
type MemoryRow struct {
	RetainSlots int           `json:"retain_slots"`
	Commits     int           `json:"commits"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Throughput  float64       `json:"throughput_rps"`
	// SlotCurve samples the worst per-replica live-slot gauge at each
	// quarter of the run (25%, 50%, 75%, 100% of commits): the memory
	// trajectory in four points.
	SlotCurve []uint64 `json:"slot_curve"`
	// MaxLiveSlots and FinalLiveSlots bound the decided-slot map (worst
	// replica) during and after the run; SlotsPruned counts truncations.
	MaxLiveSlots   uint64 `json:"max_live_slots"`
	FinalLiveSlots uint64 `json:"final_live_slots"`
	SlotsPruned    uint64 `json:"slots_pruned"`
	// CheckpointsServed counts state transfers (0 in a failure-free run).
	CheckpointsServed uint64 `json:"checkpoints_served"`
	// HeapDeltaKB is the post-run heap growth over the warm baseline
	// (runtime.ReadMemStats after a forced GC), middle tier plus harness.
	HeapDeltaKB uint64 `json:"heap_delta_kb"`
}

// MemoryReport is the experiment report.
type MemoryReport struct {
	Rows []MemoryRow `json:"rows"`
}

// MemoryConfig parameterizes RunMemory. Zero values take defaults; Quick
// shrinks the run for CI smoke.
type MemoryConfig struct {
	Commits  int
	InFlight int
	Retain   int // retention tail of the GC-on row
	Quick    bool
}

func (c *MemoryConfig) setDefaults() {
	if c.Quick {
		if c.Commits <= 0 {
			c.Commits = 5000
		}
	}
	if c.Commits <= 0 {
		c.Commits = 100000
	}
	if c.InFlight <= 0 {
		c.InFlight = 32
	}
	if c.Retain <= 0 {
		c.Retain = 64
	}
}

// RunMemory drives the same commit volume with batch-log truncation off
// (RetainSlots 0, today's unbounded retention) and on, reporting the
// decided-slot trajectory and heap growth of each mode.
func RunMemory(cfg MemoryConfig) (*MemoryReport, error) {
	cfg.setDefaults()
	out := &MemoryReport{}
	for _, retain := range []int{0, cfg.Retain} {
		row, err := oneMemoryRun(retain, cfg.InFlight, cfg.Commits)
		if err != nil {
			return nil, errf("memory retain=%d: %w", retain, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// maxLiveSlots returns the worst per-replica live-slot gauge.
func maxLiveSlots(c *cluster.Cluster) uint64 {
	var worst uint64
	for i := 1; i <= 3; i++ {
		if a := c.App(i); a != nil {
			if st := a.ConsensusStats(); st.LiveSlots > worst {
				worst = st.LiveSlots
			}
		}
	}
	return worst
}

func oneMemoryRun(retain, inflight, commits int) (MemoryRow, error) {
	// One client per worker: each worker's requests get consecutive
	// sequence numbers on its own client, so completed requests can be
	// retired deterministically (maxTry 2 covers the failure-free run with
	// margin; retirement is the register-level GC this experiment holds
	// constant across both modes).
	poolSize := 8 * inflight
	pool := make([]string, poolSize)
	seed := make(map[string]int64, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("mm%04d", i)
		seed[pool[i]] = 1 << 40
	}
	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     inflight,
		Net:         transport.Options{Seed: int64(retain + 1)},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, 0)
		}),
		CohortWindow: cohortBenchWindow,
		RetainSlots:  retain,
		DrainBatch:   64,
		Seed:         workload.BankSeed(seed),
		Workers:      inflight,
		Terminators:  inflight,

		// Failure-free by design; nothing may fire spuriously under load.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Second,
		ResendInterval:    5 * time.Second,
		CleanInterval:     50 * time.Millisecond,
		ClientBackoff:     5 * time.Second,
		ClientRebroadcast: 5 * time.Second,
		ComputeTimeout:    30 * time.Second,
	})
	if err != nil {
		return MemoryRow{}, err
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Second)
	defer cancel()
	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[i%len(pool)], Amount: -1})
	}

	// Warm-up (one request per client) outside the timer and baseline.
	for w := 0; w < inflight; w++ {
		if _, err := c.Client(w+1).Issue(ctx, reqFor(w)); err != nil {
			return MemoryRow{}, err
		}
		c.Retire(id.RequestKey{Client: id.Client(w + 1), Seq: 1}, 2)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	row := MemoryRow{RetainSlots: retain, Commits: commits, SlotCurve: make([]uint64, 4)}
	var done atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	perWorker := commits / inflight
	t0 := time.Now()
	for w := 0; w < inflight; w++ {
		w := w
		cl := c.Client(w + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := cl.Issue(ctx, reqFor(w*perWorker+i)); err != nil {
					errs <- err
					return
				}
				// The warm-up was seq 1; this request is seq i+2.
				c.Retire(id.RequestKey{Client: id.Client(w + 1), Seq: uint64(i + 2)}, 2)
				done.Add(1)
			}
		}()
	}
	// Sample the slot gauge while the run progresses: the curve (and its
	// maximum) is the experiment's point.
	total := int64(perWorker * inflight)
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		next := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			live := maxLiveSlots(c)
			if live > row.MaxLiveSlots {
				row.MaxLiveSlots = live
			}
			d := done.Load()
			for next < 4 && d >= (int64(next)+1)*total/4 {
				row.SlotCurve[next] = live
				next++
			}
			if d >= total {
				for ; next < 4; next++ {
					row.SlotCurve[next] = live
				}
				return
			}
		}
	}()
	wg.Wait()
	row.Elapsed = time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return MemoryRow{}, err
	}
	<-samplerDone
	if rep := c.CheckProperties(); !rep.Ok() {
		return MemoryRow{}, fmt.Errorf("oracle: %s", rep)
	}

	// Let the final watermarks ride a few heartbeats, then settle the books.
	time.Sleep(100 * time.Millisecond)
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		row.HeapDeltaKB = (after.HeapAlloc - before.HeapAlloc) / 1024
	}
	row.FinalLiveSlots = maxLiveSlots(c)
	for i := 1; i <= 3; i++ {
		st := c.App(i).ConsensusStats()
		row.SlotsPruned += st.SlotsPruned
		row.CheckpointsServed += st.CheckpointsServed
	}
	row.Commits = int(total)
	if row.Elapsed > 0 {
		row.Throughput = float64(total) / row.Elapsed.Seconds()
	}
	return row, nil
}

// Row returns the measurement for a retention setting, or nil.
func (m *MemoryReport) Row(retain int) *MemoryRow {
	for i := range m.Rows {
		if m.Rows[i].RetainSlots == retain {
			return &m.Rows[i]
		}
	}
	return nil
}

// String renders the report.
func (m *MemoryReport) String() string {
	var s strings.Builder
	if len(m.Rows) == 0 {
		return "no rows"
	}
	fmt.Fprintf(&s, "Bounded batch-log memory (%d commits per row; 3 app servers, 1 shard, cohort consensus on)\n",
		m.Rows[0].Commits)
	fmt.Fprintf(&s, "%-12s %10s %26s %10s %10s %8s %14s\n",
		"retain-slots", "req/s", "slot curve 25/50/75/100%", "max slots", "final", "pruned", "heap delta KiB")
	for _, r := range m.Rows {
		mode := fmt.Sprintf("%d", r.RetainSlots)
		if r.RetainSlots == 0 {
			mode = "0 (GC off)"
		}
		curve := fmt.Sprintf("%d/%d/%d/%d", r.SlotCurve[0], r.SlotCurve[1], r.SlotCurve[2], r.SlotCurve[3])
		fmt.Fprintf(&s, "%-12s %10.1f %26s %10d %10d %8d %14d\n",
			mode, r.Throughput, curve, r.MaxLiveSlots, r.FinalLiveSlots, r.SlotsPruned, r.HeapDeltaKB)
	}
	s.WriteString("(with GC off the decided-slot map grows linearly with commits — the paper's\n" +
		" deferred Section-5 leak, relocated to the batch log; with a retention tail the\n" +
		" curve is flat: replicas advertise applied watermarks, slots below the cluster\n" +
		" minimum are truncated, and laggards catch up via checkpoint state transfer)\n")
	return s.String()
}
