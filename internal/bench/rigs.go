// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (Appendix 3), plus the
// extension experiments DESIGN.md's index lists (failover response time,
// scaling, false-suspicion robustness, wo-register microbenchmarks and the
// garbage-collection ablation).
//
// Each experiment builds fresh deployments on the in-memory network with the
// calibrated latcost model, runs the paper's bank workload, and reports
// paper-style tables. Absolute values depend on the Scale knob; the claims
// under reproduction are about shape: ordering, ratios and crossover points.
package bench

import (
	"context"
	"fmt"
	"time"

	"etx/internal/baseline"
	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/latcost"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/workload"
	"etx/internal/xadb"
)

// Protocol names used across reports.
const (
	ProtocolBaseline = "baseline"
	ProtocolAR       = "AR" // the paper's asynchronous-replication protocol
	Protocol2PC      = "2PC"
	ProtocolPB       = "primary-backup"
)

// seedAccount is the bank account every latency experiment updates.
const seedAccount = "bench"

func benchSeed() []kv.Write {
	return workload.BankSeed(map[string]int64{seedAccount: 1 << 40})
}

func benchRequest() []byte {
	return workload.EncodeBank(workload.BankRequest{Account: seedAccount, Amount: -1})
}

// arDeployment builds an AR cluster calibrated with the model.
func arDeployment(model latcost.Model, appServers, dbServers int, rec *latcost.Recorder, netSeed int64) (*cluster.Cluster, error) {
	total := estimatedTotal(model)
	cfg := cluster.Config{
		AppServers:  appServers,
		DataServers: dbServers,
		Net: transport.Options{
			Latency: model.LatencyFunc(),
			Seed:    netSeed,
		},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		}),
		ForceLatency: model.DBForce,
		Seed:         benchSeed(),

		// Keep background machinery out of the measured path: suspicions and
		// protocol resends must never fire in a failure-free run.
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    50 * total,
		ResendInterval:    100 * total,
		CleanInterval:     25 * time.Millisecond,
		ClientBackoff:     20 * total,
		ClientRebroadcast: 20 * total,
		ComputeTimeout:    200 * total,
	}
	if rec != nil {
		cfg.Hooks = func(self id.NodeID) *core.Hooks { return rec.Hooks() }
	}
	return cluster.New(cfg)
}

// estimatedTotal approximates one failure-free request's latency, used to
// derive safe timeout knobs.
func estimatedTotal(m latcost.Model) time.Duration {
	t := m.ClientStart + m.ClientEnd + m.SQLWork +
		2*m.ClientApp + 8*m.AppDB + 4*m.AppApp + 2*m.DBForce
	if t < 5*time.Millisecond {
		t = 5 * time.Millisecond
	}
	return t
}

// soloRig hosts one non-replicated protocol (baseline or 2PC): its
// application server, the database tier, and a one-shot client.
type soloRig struct {
	net    *transport.MemNetwork
	client *baseline.OneShotClient
	stops  []func()
}

func (r *soloRig) stop() {
	for i := len(r.stops) - 1; i >= 0; i-- {
		r.stops[i]()
	}
	r.net.Close()
}

// newSoloRig wires the database tier and the given server constructor.
func newSoloRig(model latcost.Model, dbServers int, build func(ep transport.Endpoint, dbs []id.NodeID) (startStop, error)) (*soloRig, error) {
	rig := &soloRig{net: transport.NewMemNetwork(transport.Options{Latency: model.LatencyFunc()})}
	var dbs []id.NodeID
	for i := 1; i <= dbServers; i++ {
		dbID := id.DBServer(i)
		dbs = append(dbs, dbID)
		ep, err := rig.net.Attach(dbID)
		if err != nil {
			rig.stop()
			return nil, err
		}
		engine, err := xadb.Open(stablestore.New(model.DBForce), xadb.Config{Self: dbID})
		if err != nil {
			rig.stop()
			return nil, err
		}
		engine.Seed(benchSeed())
		srv, err := core.NewDataServer(core.DataServerConfig{Self: dbID, Engine: engine, Endpoint: ep})
		if err != nil {
			rig.stop()
			return nil, err
		}
		srv.Start()
		rig.stops = append(rig.stops, srv.Stop)
	}

	appID := id.AppServer(1)
	appEP, err := rig.net.Attach(appID)
	if err != nil {
		rig.stop()
		return nil, err
	}
	srv, err := build(appEP, dbs)
	if err != nil {
		rig.stop()
		return nil, err
	}
	srv.Start()
	rig.stops = append(rig.stops, srv.Stop)

	clEP, err := rig.net.Attach(id.Client(1))
	if err != nil {
		rig.stop()
		return nil, err
	}
	rig.client = baseline.NewOneShotClient(id.Client(1), appID, clEP)
	return rig, nil
}

type startStop interface {
	Start()
	Stop()
}

// newBaselineRig builds the Figure 7(a) deployment.
func newBaselineRig(model latcost.Model, rec *latcost.Recorder) (*soloRig, error) {
	return newSoloRig(model, 1, func(ep transport.Endpoint, dbs []id.NodeID) (startStop, error) {
		var hooks *core.Hooks
		if rec != nil {
			hooks = rec.Hooks()
		}
		return baseline.NewUnreliableServer(baseline.UnreliableConfig{
			Self: ep.ID(), DataServers: dbs, Endpoint: ep,
			Logic: baseline.LogicFunc(func(ctx context.Context, tx *baseline.Tx, req []byte) ([]byte, error) {
				return workload.Bank(ctx, tx, req, model.SQLWork)
			}),
			Resend: 100 * estimatedTotal(model),
			Hooks:  hooks,
		})
	})
}

// newTwoPCRig builds the Figure 7(b) deployment.
func newTwoPCRig(model latcost.Model, rec *latcost.Recorder) (*soloRig, error) {
	return newSoloRig(model, 1, func(ep transport.Endpoint, dbs []id.NodeID) (startStop, error) {
		var hooks *core.Hooks
		if rec != nil {
			hooks = rec.Hooks()
		}
		return baseline.NewTwoPCServer(baseline.TwoPCConfig{
			Self: ep.ID(), DataServers: dbs, Endpoint: ep,
			Logic: baseline.LogicFunc(func(ctx context.Context, tx *baseline.Tx, req []byte) ([]byte, error) {
				return workload.Bank(ctx, tx, req, model.SQLWork)
			}),
			Log:    stablestore.New(model.CoordForce),
			Resend: 100 * estimatedTotal(model),
			Hooks:  hooks,
		})
	})
}

// pbRig hosts the Figure 7(c) primary-backup pair.
type pbRig struct {
	net     *transport.MemNetwork
	client  *core.Client
	servers map[id.NodeID]*baseline.PBServer
	engines map[id.NodeID]*xadb.Engine
	stops   []func()
}

func (r *pbRig) stop() {
	for i := len(r.stops) - 1; i >= 0; i-- {
		r.stops[i]()
	}
	r.net.Close()
}

// newPBRig builds the primary-backup deployment. detFor overrides the
// failure detector per server (nil = perfect detection from network ground
// truth).
func newPBRig(model latcost.Model, hooks map[id.NodeID]*core.Hooks, detFor func(self, peer id.NodeID, net *transport.MemNetwork) fd.Detector) (*pbRig, error) {
	rig := &pbRig{
		net:     transport.NewMemNetwork(transport.Options{Latency: model.LatencyFunc()}),
		servers: make(map[id.NodeID]*baseline.PBServer),
		engines: make(map[id.NodeID]*xadb.Engine),
	}
	dbID := id.DBServer(1)
	dbEP, err := rig.net.Attach(dbID)
	if err != nil {
		rig.stop()
		return nil, err
	}
	engine, err := xadb.Open(stablestore.New(model.DBForce), xadb.Config{Self: dbID})
	if err != nil {
		rig.stop()
		return nil, err
	}
	engine.Seed(benchSeed())
	dbSrv, err := core.NewDataServer(core.DataServerConfig{Self: dbID, Engine: engine, Endpoint: dbEP})
	if err != nil {
		rig.stop()
		return nil, err
	}
	dbSrv.Start()
	rig.stops = append(rig.stops, dbSrv.Stop)
	rig.engines[dbID] = engine

	a1, a2 := id.AppServer(1), id.AppServer(2)
	for _, pair := range []struct {
		self, peer id.NodeID
		primary    bool
	}{{a1, a2, true}, {a2, a1, false}} {
		ep, err := rig.net.Attach(pair.self)
		if err != nil {
			rig.stop()
			return nil, err
		}
		var det fd.Detector
		if detFor != nil {
			det = detFor(pair.self, pair.peer, rig.net)
		}
		if det == nil {
			det = &fd.Perfect{Truth: rig.net, Peers: []id.NodeID{pair.peer}}
		}
		srv, err := baseline.NewPBServer(baseline.PBConfig{
			Self: pair.self, Peer: pair.peer, Primary: pair.primary,
			DataServers: []id.NodeID{dbID}, Endpoint: ep,
			Logic: baseline.LogicFunc(func(ctx context.Context, tx *baseline.Tx, req []byte) ([]byte, error) {
				return workload.Bank(ctx, tx, req, model.SQLWork)
			}),
			Detector:         det,
			Resend:           100 * estimatedTotal(model),
			TakeoverInterval: 2 * time.Millisecond,
			Hooks:            hooks[pair.self],
		})
		if err != nil {
			rig.stop()
			return nil, err
		}
		srv.Start()
		rig.stops = append(rig.stops, srv.Stop)
		rig.servers[pair.self] = srv
	}

	clEP, err := rig.net.Attach(id.Client(1))
	if err != nil {
		rig.stop()
		return nil, err
	}
	total := estimatedTotal(model)
	cl, err := core.NewClient(core.ClientConfig{
		Self: id.Client(1), AppServers: []id.NodeID{a1, a2}, Endpoint: clEP,
		Backoff: 20 * total, Rebroadcast: 20 * total,
	})
	if err != nil {
		rig.stop()
		return nil, err
	}
	rig.stops = append(rig.stops, cl.Stop)
	rig.client = cl
	return rig, nil
}

// errf wraps experiment failures uniformly.
func errf(format string, args ...any) error {
	return fmt.Errorf("bench: "+format, args...)
}
