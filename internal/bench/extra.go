package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/consensus"
	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/transport"
	"etx/internal/workload"
)

// --- EXP-SC: overhead vs replication degree and database count --------------

// ScalingRow is one deployment size's mean latency.
type ScalingRow struct {
	AppServers  int
	DataServers int
	Latency     metrics.Summary
}

// Scaling reports latency as the middle tier and the database tier grow.
type Scaling struct {
	Scale float64
	Rows  []ScalingRow
}

// RunScaling measures the replicated protocol at 3/5/7 application servers
// and 1..3 database servers.
func RunScaling(scale float64, requests int) (*Scaling, error) {
	if scale <= 0 {
		scale = 0.05
	}
	if requests <= 0 {
		requests = 10
	}
	model := latcost.Paper(scale)
	out := &Scaling{Scale: scale}
	for _, shape := range []struct{ apps, dbs int }{
		{3, 1}, {5, 1}, {7, 1}, {3, 2}, {3, 3},
	} {
		c, err := arDeployment(model, shape.apps, shape.dbs, nil, 1)
		if err != nil {
			return nil, errf("scaling %d/%d: %w", shape.apps, shape.dbs, err)
		}
		lats := metrics.NewSample()
		deadline := 300 * estimatedTotal(model)
		for i := 0; i < requests; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			t0 := time.Now()
			_, err := c.Client(1).Issue(ctx, benchRequest())
			cancel()
			if err != nil {
				c.Stop()
				return nil, errf("scaling %d/%d request %d: %w", shape.apps, shape.dbs, i, err)
			}
			if i > 0 { // skip the cold first request
				lats.AddDuration(time.Since(t0))
			}
		}
		c.Stop()
		out.Rows = append(out.Rows, ScalingRow{
			AppServers: shape.apps, DataServers: shape.dbs, Latency: lats.Summarize(),
		})
	}
	return out, nil
}

// String renders the scaling report.
func (s *Scaling) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Latency vs deployment size (scale %.3f; paper time base)\n", s.Scale)
	fmt.Fprintf(&b, "%-12s %-12s %12s\n", "app servers", "db servers", "mean (ms)")
	for _, r := range s.Rows {
		// Measurements are in scaled milliseconds; divide by the scale to
		// report in the paper's time base like every other table.
		fmt.Fprintf(&b, "%-12d %-12d %12.1f\n", r.AppServers, r.DataServers, r.Latency.Mean/s.Scale)
	}
	b.WriteString("(the voting and decide rounds broadcast to every database; the register\n" +
		" writes need one majority round trip regardless of replica count)\n")
	return b.String()
}

// --- EXP-FS: false suspicions — AR stays safe, primary-backup does not ------

// Suspicion reports how many runs of each protocol produced an inconsistency
// under injected false suspicions.
type Suspicion struct {
	Runs           int
	PBInconsistent int
	ARInconsistent int
	ARDeliveredAll int
	PBDescription  string
}

// RunSuspicion injects a false suspicion of the live primary mid-protocol in
// both the primary-backup scheme and the replicated protocol, many times,
// and counts observable inconsistencies (server-believed outcome differing
// from the database-recorded outcome, or oracle violations).
func RunSuspicion(scale float64, runs int) (*Suspicion, error) {
	if scale <= 0 {
		scale = 0.02
	}
	if runs <= 0 {
		runs = 10
	}
	model := latcost.Paper(scale)
	out := &Suspicion{Runs: runs,
		PBDescription: "primary believes commit while the database aborted (lost result)"}

	for i := 0; i < runs; i++ {
		bad, err := onePBSuspicionRun(model)
		if err != nil {
			return nil, errf("suspicion PB run %d: %w", i, err)
		}
		if bad {
			out.PBInconsistent++
		}
	}
	for i := 0; i < runs; i++ {
		delivered, bad, err := oneARSuspicionRun(model)
		if err != nil {
			return nil, errf("suspicion AR run %d: %w", i, err)
		}
		if bad {
			out.ARInconsistent++
		}
		if delivered {
			out.ARDeliveredAll++
		}
	}
	return out, nil
}

// onePBSuspicionRun reproduces the deterministic false-suspicion window in
// the primary-backup scheme and reports whether the inconsistency appeared.
func onePBSuspicionRun(model latcost.Model) (bool, error) {
	backupDet := fd.NewScripted()
	var once atomic.Bool
	hooks := map[id.NodeID]*core.Hooks{
		id.AppServer(1): {Crash: func(p core.CrashPoint, rid id.ResultID) {
			if p == core.PointAfterPrepare && once.CompareAndSwap(false, true) {
				backupDet.Set(id.AppServer(1), true)
				time.Sleep(30 * time.Millisecond) // give the backup time to "clean up"
			}
		}},
	}
	rig, err := newPBRig(model, hooks, func(self, peer id.NodeID, net *transport.MemNetwork) fd.Detector {
		if self == id.AppServer(2) {
			return backupDet
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	defer rig.stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := rig.client.Issue(ctx, benchRequest()); err != nil {
		return false, err
	}
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dec, ok := rig.servers[id.AppServer(1)].RecordedOutcome(rid); ok {
			dbOutcome := rig.engines[id.DBServer(1)].Outcomes()[rid]
			return dec.Outcome == msg.OutcomeCommit && dbOutcome == msg.OutcomeAbort, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false, errf("PB primary never recorded an outcome")
}

// oneARSuspicionRun injects the same false suspicion into the replicated
// protocol: the cleaner races the live executor, the wo-register arbitrates.
func oneARSuspicionRun(model latcost.Model) (delivered, inconsistent bool, err error) {
	dets := make(map[id.NodeID]*fd.Scripted)
	total := estimatedTotal(model)
	c, buildErr := arDeploymentWithDetectors(model, dets)
	if buildErr != nil {
		return false, false, buildErr
	}
	defer c.Stop()

	// False suspicion storm against the live primary, lifted later
	// (eventual accuracy).
	dets[id.AppServer(2)].Set(id.AppServer(1), true)
	dets[id.AppServer(3)].Set(id.AppServer(1), true)
	go func() {
		time.Sleep(40 * total)
		dets[id.AppServer(2)].Set(id.AppServer(1), false)
		dets[id.AppServer(3)].Set(id.AppServer(1), false)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, issueErr := c.Client(1).Issue(ctx, benchRequest())
	rep := c.CheckProperties()
	return issueErr == nil, !rep.Ok(), nil
}

// arDeploymentWithDetectors builds an AR cluster with scripted detectors and
// an aggressive cleaner, so injected suspicions bite quickly.
func arDeploymentWithDetectors(model latcost.Model, dets map[id.NodeID]*fd.Scripted) (*cluster.Cluster, error) {
	total := estimatedTotal(model)
	return cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Net:         transport.Options{Latency: model.LatencyFunc()},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		}),
		ForceLatency: model.DBForce,
		Seed:         benchSeed(),

		ResendInterval:    100 * total,
		CleanInterval:     2 * time.Millisecond,
		ClientBackoff:     4 * total,
		ClientRebroadcast: 4 * total,
		ComputeTimeout:    200 * total,
		Detector: func(self id.NodeID) fd.Detector {
			d := fd.NewScripted()
			dets[self] = d
			return d
		},
	})
}

// String renders the suspicion report.
func (s *Suspicion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "False-suspicion robustness (%d runs per protocol)\n", s.Runs)
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "protocol", "inconsistent", "delivered")
	fmt.Fprintf(&b, "%-18s %14d %14s\n", ProtocolPB, s.PBInconsistent, "n/a")
	fmt.Fprintf(&b, "%-18s %14d %14d\n", ProtocolAR, s.ARInconsistent, s.ARDeliveredAll)
	fmt.Fprintf(&b, "(PB inconsistency: %s;\n AR tolerates unreliable failure detection by construction)\n", s.PBDescription)
	return b.String()
}

// --- EXP-WO: wo-register microbenchmark --------------------------------------

// WORegister reports write latency of the register substrate.
type WORegister struct {
	Replicas    int
	Uncontended metrics.Summary
	Contended   metrics.Summary
}

// RunWORegister measures wo-register writes over a consensus group with the
// calibrated app-app latency: the uncontended case (coordinator writes, the
// paper's single-round-trip fast path) and the contended case (all replicas
// write simultaneously).
func RunWORegister(scale float64, replicas, writes int) (*WORegister, error) {
	if scale <= 0 {
		scale = 0.05
	}
	if replicas <= 0 {
		replicas = 3
	}
	if writes <= 0 {
		writes = 20
	}
	model := latcost.Paper(scale)
	rig, err := newConsensusRig(model, replicas)
	if err != nil {
		return nil, err
	}
	defer rig.stop()

	out := &WORegister{Replicas: replicas}
	unc := metrics.NewSample()
	ctx := context.Background()
	for i := 0; i < writes; i++ {
		key := msg.RegKey{Array: msg.RegA, RID: id.ResultID{Client: id.Client(1), Seq: uint64(i), Try: 1}}
		t0 := time.Now()
		if _, err := rig.nodes[0].Propose(ctx, key, []byte("v")); err != nil {
			return nil, errf("woregister uncontended write %d: %w", i, err)
		}
		unc.AddDuration(time.Since(t0))
	}
	out.Uncontended = unc.Summarize()

	con := metrics.NewSample()
	for i := 0; i < writes; i++ {
		key := msg.RegKey{Array: msg.RegD, RID: id.ResultID{Client: id.Client(2), Seq: uint64(i), Try: 1}}
		t0 := time.Now()
		errs := make(chan error, len(rig.nodes))
		for r, n := range rig.nodes {
			go func(r int, n *consensus.Node) {
				_, err := n.Propose(ctx, key, []byte{byte(r)})
				errs <- err
			}(r, n)
		}
		for range rig.nodes {
			if err := <-errs; err != nil {
				return nil, errf("woregister contended write %d: %w", i, err)
			}
		}
		con.AddDuration(time.Since(t0))
	}
	out.Contended = con.Summarize()
	return out, nil
}

// String renders the microbenchmark report.
func (w *WORegister) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wo-register write latency (%d replicas)\n", w.Replicas)
	fmt.Fprintf(&b, "%-14s %s\n", "uncontended:", w.Uncontended)
	fmt.Fprintf(&b, "%-14s %s\n", "contended:", w.Contended)
	b.WriteString("(the uncontended coordinator write is the paper's one-round-trip fast path)\n")
	return b.String()
}

// consensusRig wires bare consensus nodes for microbenchmarks.
type consensusRig struct {
	net   *transport.MemNetwork
	nodes []*consensus.Node
	stops []func()
}

func (r *consensusRig) stop() {
	for i := len(r.stops) - 1; i >= 0; i-- {
		r.stops[i]()
	}
	r.net.Close()
}

func newConsensusRig(model latcost.Model, replicas int) (*consensusRig, error) {
	rig := &consensusRig{net: transport.NewMemNetwork(transport.Options{Latency: model.LatencyFunc()})}
	var peers []id.NodeID
	for i := 1; i <= replicas; i++ {
		peers = append(peers, id.AppServer(i))
	}
	for _, p := range peers {
		ep, err := rig.net.Attach(p)
		if err != nil {
			rig.stop()
			return nil, err
		}
		node, err := consensus.New(consensus.Config{
			Self: p, Peers: peers, Detector: fd.NewScripted(),
			Poll: 500 * time.Microsecond,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
		})
		if err != nil {
			rig.stop()
			return nil, err
		}
		rig.nodes = append(rig.nodes, node)
		rig.stops = append(rig.stops, node.Stop)
		done := make(chan struct{})
		go func(ep transport.Endpoint, node *consensus.Node) {
			defer close(done)
			for env := range ep.Recv() {
				node.Handle(env.From, env.Payload)
			}
		}(ep, node)
		epRef := ep
		rig.stops = append(rig.stops, func() {
			epRef.Close()
			<-done
		})
	}
	return rig, nil
}

// --- EXP-GC: register retirement ablation ------------------------------------

// GCAblation reports register-state growth with and without retirement.
type GCAblation struct {
	Requests         int
	KeysWithout      int
	KeysWith         int
	HeapDeltaWithout uint64
	HeapDeltaWith    uint64
}

// RunGCAblation issues many requests with and without the Retire extension
// and reports retained register keys (summed over replicas) and heap growth,
// quantifying the garbage-collection concern the paper defers in Section 5.
func RunGCAblation(requests int) (*GCAblation, error) {
	if requests <= 0 {
		requests = 150
	}
	out := &GCAblation{Requests: requests}
	for _, retire := range []bool{false, true} {
		model := latcost.Paper(0.001) // latency is irrelevant here
		c, err := arDeployment(model, 3, 1, nil, 1)
		if err != nil {
			return nil, errf("gc ablation: %w", err)
		}
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		ctx := context.Background()
		for i := 0; i < requests; i++ {
			if _, err := c.Client(1).Issue(ctx, benchRequest()); err != nil {
				c.Stop()
				return nil, errf("gc ablation request %d: %w", i, err)
			}
			if retire {
				c.Retire(id.RequestKey{Client: id.Client(1), Seq: uint64(i + 1)}, 1)
			}
		}
		keys := 0
		for i := 1; i <= 3; i++ {
			if app := c.App(i); app != nil {
				keys += len(app.Registers().KnownTries())
			}
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		heap := uint64(0)
		if after.HeapAlloc > before.HeapAlloc {
			heap = after.HeapAlloc - before.HeapAlloc
		}
		if retire {
			out.KeysWith = keys
			out.HeapDeltaWith = heap
		} else {
			out.KeysWithout = keys
			out.HeapDeltaWithout = heap
		}
		c.Stop()
	}
	return out, nil
}

// String renders the ablation report.
func (g *GCAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Register garbage-collection ablation (%d requests)\n", g.Requests)
	fmt.Fprintf(&b, "%-22s %14s %16s\n", "variant", "register keys", "heap delta (KiB)")
	fmt.Fprintf(&b, "%-22s %14d %16d\n", "no retirement (paper)", g.KeysWithout, g.HeapDeltaWithout/1024)
	fmt.Fprintf(&b, "%-22s %14d %16d\n", "with retirement", g.KeysWith, g.HeapDeltaWith/1024)
	b.WriteString("(retirement is safe once the client acknowledged delivery — the timed\n" +
		" guarantee the paper says a complete treatment would need)\n")
	return b.String()
}
