package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/workload"
)

// --- EXP-QU: queue-oriented deterministic execution ---------------------------
//
// The experiment that justifies retiring the lock manager from the hot path.
// In lock mode a hot key serializes conflicting tries across their whole
// commit path: the exclusive lock taken at Exec is held until Decide, so the
// per-conflict serial section includes two Exec round trips, the Prepare
// round trip and the regD consensus — on a LAN, several message delays per
// conflicting try. Queue mode executes each drained batch's operations
// through per-key FIFO run queues (disjoint keys in parallel, same key serial
// by plan order) with zero lockmgr acquisitions; conflicting tries overlap
// speculatively, their Prepares are already parked at the engine, and only
// the commit decision itself — the vote gate on chain predecessors — remains
// ordered, so a conflict costs one vote reply plus the regD consensus. The
// sweep runs on a LAN-like substrate (queueNetLatency per hop, free log
// device) and crosses pipelining depth × key skew (uniform vs Zipf hot-key)
// × execution mode on the same deterministic request stream, so the lock and
// queue cells of a row are directly comparable. Queue cells are
// counter-verified to have executed without a single lock acquisition.

// QueueRow is one (depth, skew, mode) cell.
type QueueRow struct {
	Mode     string        `json:"mode"` // "lock" | "queue"
	Skew     string        `json:"skew"` // "uniform" | "zipf"
	InFlight int           `json:"in_flight"`
	Requests int           `json:"requests"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Throughput is committed requests per second.
	Throughput float64 `json:"throughput_rps"`
	// LocksPerCommit is lockmgr acquisitions per committed request
	// (0 in queue mode, counter-verified).
	LocksPerCommit float64 `json:"lock_acquires_per_commit"`
	// LockWaitMsPerCommit is cumulative lock-queue wait per committed
	// request, in ms.
	LockWaitMsPerCommit float64 `json:"lock_wait_ms_per_commit"`
	// GatedPerCommit is queue-mode vote gates that had to wait on chain
	// predecessors, per committed request.
	GatedPerCommit float64 `json:"gated_votes_per_commit"`
	// P50 and P99 are client-observed commit latencies in ms.
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

// QueueReport is the experiment report.
type QueueReport struct {
	Rows []QueueRow `json:"rows"`
}

// QueueConfig parameterizes RunQueue. Zero values take defaults; Quick
// shrinks everything for CI smoke runs.
type QueueConfig struct {
	Requests  int    // per row
	InFlights []int  // pipelining depths to sweep
	Net       string // latcost profile overriding the default LAN: "", "lan", "wan"
	Quick     bool
}

func (c *QueueConfig) setDefaults() {
	if c.Quick {
		if c.Requests <= 0 {
			c.Requests = 120
		}
		if len(c.InFlights) == 0 {
			c.InFlights = []int{1, 32}
		}
	}
	if c.Requests <= 0 {
		c.Requests = 400
	}
	if len(c.InFlights) == 0 {
		c.InFlights = []int{1, 8, 32, 64}
	}
}

// queueZipfS is the Zipf exponent of the hot-key skew: most of the stream
// lands on a handful of accounts, the hottest one dominating (~40% of
// requests hit the single hottest key).
const queueZipfS = 1.5

// queueNetLatency is the one-way message latency of the sweep's substrate.
// The lock manager's cost is a *critical-path* cost — a hot key's conflicting
// tries serialize across Exec→Decide, several message delays each — so the
// substrate must charge for message delays or the sweep would only measure
// middle-tier CPU. Half a millisecond per hop models the paper's LAN.
const queueNetLatency = 500 * time.Microsecond

// queueStream precomputes the account index of every request so the lock and
// queue cells of one (depth, skew) row replay the identical stream — the
// deterministic plan input, and the fair comparison.
func queueStream(skew string, n, poolSize int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	if skew == "zipf" {
		z := rand.NewZipf(rng, queueZipfS, 1, uint64(poolSize-1))
		for i := range out {
			out[i] = int(z.Uint64())
		}
		return out
	}
	for i := range out {
		out[i] = rng.Intn(poolSize)
	}
	return out
}

// RunQueue measures throughput, lock contention and commit latency on one
// shard with three application servers, sweeping pipelining depth × key skew
// × execution mode (strict 2PL vs queue-oriented deterministic).
func RunQueue(cfg QueueConfig) (*QueueReport, error) {
	cfg.setDefaults()
	out := &QueueReport{}
	// Best of two runs per cell (one in quick mode): a stray GC cycle or
	// scheduler hiccup otherwise dominates cell-to-cell comparisons.
	runs := 2
	if cfg.Quick {
		runs = 1
	}
	for _, inflight := range cfg.InFlights {
		for _, skew := range []string{"uniform", "zipf"} {
			poolSize := 8 * inflight
			// +len(queue warm-up) requests are drawn but only `Requests`
			// are measured; the stream is a function of (depth, skew) only,
			// never of the mode.
			stream := queueStream(skew, cfg.Requests+8, poolSize, int64(inflight)*7919+int64(len(skew)))
			for _, mode := range []string{"lock", "queue"} {
				var best QueueRow
				for r := 0; r < runs; r++ {
					row, err := oneQueueRun(mode, skew, stream, inflight, cfg.Requests, poolSize, cfg.Net)
					if err != nil {
						return nil, errf("queue inflight=%d skew=%s mode=%s: %w", inflight, skew, mode, err)
					}
					if r == 0 || row.Throughput > best.Throughput {
						best = row
					}
				}
				out.Rows = append(out.Rows, best)
			}
		}
	}
	return out, nil
}

// oneQueueRun drives one cell: `requests` single-account bank withdrawals
// against a one-shard tier at the given pipelining depth.
func oneQueueRun(mode, skew string, stream []int, inflight, requests, poolSize int, netName string) (QueueRow, error) {
	const clients = 4
	pool := make([]string, poolSize)
	seed := make(map[string]int64, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("qx%04d", i)
		seed[pool[i]] = 1 << 40
	}

	// A LAN-like network and a free log device: the per-conflict cost is
	// then the message delays on the lock-hold (or vote-gate) critical
	// path, which is what the sweep isolates. -net swaps in a latcost
	// profile (per-tier latencies plus jitter) instead.
	netOpts, err := latcost.Profile(netName)
	if err != nil {
		return QueueRow{}, err
	}
	netOpts.Seed = int64(inflight + 1)
	if netOpts.Latency == nil {
		netOpts.DefaultLatency = queueNetLatency
	}

	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net:         netOpts,
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, 0)
		}),
		QueueExec: mode == "queue",
		// Windowless mailbox-drain batching for both modes: queue execution
		// plans the drained batch, lock mode serves it through the batched
		// engine entry points — the PR 3/4 baseline.
		DrainBatch:  64,
		Seed:        workload.BankSeed(seed),
		Workers:     inflight,
		Terminators: inflight,
		// A generous lock/vote-gate bound: at depth 64 a hot key queues a
		// full pipeline of conflicting tries, and this sweep measures
		// steady-state throughput, not timeout-abort churn (the deadlock
		// bound still backstops liveness).
		LockTimeout: 10 * time.Second,

		// Generous protocol timers: the run is failure-free and nothing may
		// fire spuriously under CPU load.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Second,
		ResendInterval:    5 * time.Second,
		CleanInterval:     50 * time.Millisecond,
		ClientBackoff:     5 * time.Second,
		ClientRebroadcast: 5 * time.Second,
		ComputeTimeout:    30 * time.Second,
	})
	if err != nil {
		return QueueRow{}, err
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[stream[i%len(stream)]], Amount: -1})
	}

	// Warm-up outside the timer and the counters, on the tail of the stream.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, reqFor(requests+i)); err != nil {
			return QueueRow{}, err
		}
	}
	engine := c.Engine(1)
	lockBase := engine.LockStats()
	specBase := engine.SpecStats()
	lat := metrics.NewSample()

	// Exactly `inflight` concurrent issuers, spread round-robin over the
	// client processes, all draining one shared deterministic stream.
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	t0 := time.Now()
	for w := 0; w < inflight; w++ {
		cl := c.Client(w%clients + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(requests) {
					return
				}
				s0 := time.Now()
				if _, err := cl.Issue(ctx, reqFor(int(i))); err != nil {
					errs <- err
					return
				}
				lat.AddDuration(time.Since(s0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return QueueRow{}, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return QueueRow{}, fmt.Errorf("oracle: %s", rep)
	}
	lockDelta := engine.LockStats().Sub(lockBase)
	specDelta := engine.SpecStats()
	if mode == "queue" && lockDelta.Acquires != 0 {
		// The property the experiment exists to demonstrate, verified on
		// every run: queue mode never touches the lock manager.
		return QueueRow{}, fmt.Errorf("queue mode acquired %d locks (%s)", lockDelta.Acquires, lockDelta)
	}
	row := QueueRow{
		Mode:                mode,
		Skew:                skew,
		InFlight:            inflight,
		Requests:            requests,
		Elapsed:             elapsed,
		LocksPerCommit:      float64(lockDelta.Acquires) / float64(requests),
		LockWaitMsPerCommit: float64(lockDelta.WaitTime) / 1e6 / float64(requests),
		GatedPerCommit:      float64(specDelta.Deferred-specBase.Deferred) / float64(requests),
		P50:                 lat.Percentile(50),
		P99:                 lat.Percentile(99),
	}
	if elapsed > 0 {
		row.Throughput = float64(requests) / elapsed.Seconds()
	}
	return row, nil
}

// Row returns the cell for (inflight, skew, mode), or nil.
func (b *QueueReport) Row(inflight int, skew, mode string) *QueueRow {
	for i := range b.Rows {
		r := &b.Rows[i]
		if r.InFlight == inflight && r.Skew == skew && r.Mode == mode {
			return r
		}
	}
	return nil
}

// String renders the report.
func (b *QueueReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Queue-oriented deterministic execution (%d requests per row; 3 app servers, 1 shard, %s/hop LAN, free log)\n",
		b.Rows[0].Requests, queueNetLatency)
	fmt.Fprintf(&s, "%-8s %-10s %-6s %12s %10s %10s %12s %10s %10s %10s\n",
		"skew", "in-flight", "mode", "elapsed (ms)", "req/s", "locks/req", "wait ms/req", "gated/req", "p50 (ms)", "p99 (ms)")
	for _, r := range b.Rows {
		speed := ""
		if r.Mode == "queue" {
			if lock := b.Row(r.InFlight, r.Skew, "lock"); lock != nil && lock.Throughput > 0 {
				speed = fmt.Sprintf(" (%.1fx)", r.Throughput/lock.Throughput)
			}
		}
		fmt.Fprintf(&s, "%-8s %-10d %-6s %12.1f %10.1f %10.2f %12.3f %10.2f %10.2f %10.2f%s\n",
			r.Skew, r.InFlight, r.Mode, float64(r.Elapsed)/1e6, r.Throughput,
			r.LocksPerCommit, r.LockWaitMsPerCommit, r.GatedPerCommit, r.P50, r.P99, speed)
	}
	s.WriteString("(lock mode holds a hot key's exclusive lock from Exec to Decide, so conflicting\n" +
		" tries serialize across the whole commit path; queue mode executes per-key FIFO\n" +
		" queues speculatively with zero lock acquisitions — counter-verified every run —\n" +
		" and only the commit decision itself stays ordered via vote gates on chain\n" +
		" predecessors, which is why the Zipf hot-key rows gain the most at depth)\n")
	return s.String()
}
