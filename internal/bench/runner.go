package bench

import (
	"context"

	"etx/internal/latcost"
)

// Runner is a running deployment of one protocol with a uniform
// issue-one-request surface, used by the repository-level testing.B
// benchmarks.
type Runner struct {
	issue func(ctx context.Context) error
	stop  func()
}

// Issue runs one committed request end to end.
func (r *Runner) Issue(ctx context.Context) error { return r.issue(ctx) }

// Stop tears the deployment down.
func (r *Runner) Stop() { r.stop() }

// NewRunner builds a deployment of the named protocol (ProtocolBaseline,
// Protocol2PC, ProtocolPB or ProtocolAR) on the cost model at the given
// scale.
func NewRunner(protocol string, scale float64) (*Runner, error) {
	model := latcost.Paper(scale)
	switch protocol {
	case ProtocolBaseline, Protocol2PC:
		build := newBaselineRig
		if protocol == Protocol2PC {
			build = newTwoPCRig
		}
		rig, err := build(model, nil)
		if err != nil {
			return nil, err
		}
		return &Runner{
			issue: func(ctx context.Context) error {
				dec, err := rig.client.Call(ctx, benchRequest())
				if err != nil {
					return err
				}
				if !dec.Committed() {
					return errf("%s request aborted", protocol)
				}
				return nil
			},
			stop: rig.stop,
		}, nil
	case ProtocolPB:
		rig, err := newPBRig(model, nil, nil)
		if err != nil {
			return nil, err
		}
		return &Runner{
			issue: func(ctx context.Context) error {
				_, err := rig.client.Issue(ctx, benchRequest())
				return err
			},
			stop: rig.stop,
		}, nil
	case ProtocolAR:
		c, err := arDeployment(model, 3, 1, nil, 1)
		if err != nil {
			return nil, err
		}
		return &Runner{
			issue: func(ctx context.Context) error {
				_, err := c.Client(1).Issue(ctx, benchRequest())
				return err
			},
			stop: c.Stop,
		}, nil
	default:
		return nil, errf("unknown protocol %q", protocol)
	}
}
