package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/placement"
)

// DataTierFailover reports the replicated-data-tier scenario of the failover
// experiment: a sharded deployment with ReplicaFactor-sized replica groups
// runs under pipelined load, one shard primary is killed mid-run, and the
// heartbeat detector drives a backup promotion while the other shards keep
// committing. The interesting numbers are the throughput floor (the worst
// completion window — the dip during the promotion, which must stay above
// zero) and the drain-to-takeover promotion latency.
type DataTierFailover struct {
	// Deployment shape.
	Shards   int
	Replicas int
	Clients  int
	Depth    int // aggregate in-flight request depth
	// Run length and volume.
	Duration time.Duration
	Requests int
	// Throughput is the overall commit rate (requests/second).
	Throughput float64
	// Window is the completion-counting window; MinWindow/MaxWindow are the
	// worst and best windows and ZeroWindows counts empty ones (a healthy
	// failover has none: the surviving shards commit right through the
	// promotion).
	Window      time.Duration
	MinWindow   int
	MaxWindow   int
	ZeroWindows int
	// Promotions counts primary take-overs (exactly 1: the killed shard's
	// first backup); PromotionLatency is its drain-to-takeover time.
	Promotions       int
	PromotionLatency time.Duration
	// StaleRejects counts messages from the deposed primary the application
	// servers rejected by epoch.
	StaleRejects uint64
}

// dataTierConfig shapes the kill-primary run.
type dataTierConfig struct {
	shards   int
	replicas int
	clients  int
	perGoros int // issuing goroutines per client
	duration time.Duration
	window   time.Duration
	suspect  time.Duration
}

func dataTierShape(quick bool) dataTierConfig {
	cfg := dataTierConfig{
		shards:   2,
		replicas: 3,
		clients:  4,
		perGoros: 8, // 4 clients x 8 goroutines = depth 32
		duration: 4 * time.Second,
		window:   200 * time.Millisecond,
		// The suspicion timeout must tolerate scheduling under depth-32
		// load on a saturated box — too tight and a live primary's beacons
		// arrive late enough to trigger false promotions across shards.
		suspect: 150 * time.Millisecond,
	}
	if quick {
		cfg.duration = 1500 * time.Millisecond
		cfg.replicas = 2
		cfg.suspect = 100 * time.Millisecond
	}
	return cfg
}

// runDataTierFailover builds a replicated sharded cluster, drives pipelined
// transfer load, kills the shard-0 primary a third of the way in, and lets
// the group's own heartbeat detector (no scripted suspicion) discover the
// crash and promote the backup.
func runDataTierFailover(quick bool) (*DataTierFailover, error) {
	shape := dataTierShape(quick)
	S := shape.shards

	// Two accounts per shard, found by probing the hash placement with
	// candidate names; every request transfers 1 between its shard's pair,
	// so the A.1 conservation oracle has teeth and every transaction stays
	// on the one-shard fast path.
	policy := placement.Hash(S)
	type pair struct{ src, dst string }
	pairs := make([]pair, S)
	filled := 0
	for i := 0; filled < S; i++ {
		key := fmt.Sprintf("acct/p%d", i)
		s := policy.ShardFor(key)
		switch {
		case pairs[s].src == "":
			pairs[s].src = key
		case pairs[s].dst == "":
			pairs[s].dst = key
			filled++
		}
	}
	seed := make([]kv.Write, 0, 2*S)
	for _, p := range pairs {
		seed = append(seed, kv.Write{Key: p.src, Val: kv.EncodeInt(1000)})
		seed = append(seed, kv.Write{Key: p.dst, Val: kv.EncodeInt(1000)})
	}

	c, err := cluster.New(cluster.Config{
		AppServers:    3,
		DataServers:   S,
		Shards:        S,
		ReplicaFactor: shape.replicas,
		Clients:       shape.clients,
		Seed:          seed,
		Workers:       4,
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			src, dst, ok := strings.Cut(string(req), ">")
			if !ok {
				return nil, fmt.Errorf("bad request %q", req)
			}
			if rep, err := tx.Do(ctx, src, msg.Op{Code: msg.OpAdd, Delta: -1}); err != nil {
				return nil, err
			} else if !rep.OK {
				return nil, fmt.Errorf("debit %s: %s", src, rep.Err)
			}
			if rep, err := tx.Do(ctx, dst, msg.Op{Code: msg.OpAdd, Delta: 1}); err != nil {
				return nil, err
			} else if !rep.OK {
				return nil, fmt.Errorf("credit %s: %s", dst, rep.Err)
			}
			return []byte("ok"), nil
		}),
		HeartbeatInterval: shape.suspect / 8,
		SuspectTimeout:    shape.suspect,
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var doneMu sync.Mutex
	var doneAt []time.Duration
	start := time.Now()
	stopIssuing := start.Add(shape.duration)
	killAt := shape.duration / 3

	var wg sync.WaitGroup
	issueErr := make(chan error, shape.clients*shape.perGoros)
	for cl := 1; cl <= shape.clients; cl++ {
		client := c.Client(cl)
		for g := 0; g < shape.perGoros; g++ {
			wg.Add(1)
			p := pairs[(cl+g)%S]
			req := []byte(p.src + ">" + p.dst)
			go func() {
				defer wg.Done()
				for time.Now().Before(stopIssuing) {
					if _, err := client.Issue(ctx, req); err != nil {
						issueErr <- err
						return
					}
					doneMu.Lock()
					doneAt = append(doneAt, time.Since(start))
					doneMu.Unlock()
				}
			}()
		}
	}

	// Kill the shard-0 primary mid-run; the group's heartbeat detector, not
	// a scripted one, must notice and promote.
	time.Sleep(killAt)
	c.CrashDB(1)
	wg.Wait()
	close(issueErr)
	if err := <-issueErr; err != nil {
		return nil, fmt.Errorf("issue under failover: %w", err)
	}
	elapsed := time.Since(start)
	if rep := c.CheckProperties(); !rep.Ok() {
		return nil, errf("oracle after failover: %s", rep)
	}

	out := &DataTierFailover{
		Shards:   S,
		Replicas: shape.replicas,
		Clients:  shape.clients,
		Depth:    shape.clients * shape.perGoros,
		Duration: elapsed,
		Requests: len(doneAt),
		Window:   shape.window,
	}
	if elapsed > 0 {
		out.Throughput = float64(len(doneAt)) / elapsed.Seconds()
	}
	nw := int(elapsed/shape.window) + 1
	windows := make([]int, nw)
	for _, d := range doneAt {
		windows[int(d/shape.window)]++
	}
	out.MinWindow = -1
	for _, n := range windows {
		if n == 0 {
			out.ZeroWindows++
		}
		if out.MinWindow < 0 || n < out.MinWindow {
			out.MinWindow = n
		}
		if n > out.MaxWindow {
			out.MaxWindow = n
		}
	}
	promos, lats := c.Promotions()
	out.Promotions = promos
	if len(lats) > 0 {
		out.PromotionLatency = lats[0]
	}
	out.StaleRejects = c.StaleRejects()
	if promos != 1 {
		return nil, errf("expected exactly one promotion, saw %d", promos)
	}
	return out, nil
}

// String renders the data-tier section of the failover report.
func (d *DataTierFailover) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data-tier failover: kill 1 of %d shard primaries (replica factor %d) under depth-%d load\n",
		d.Shards, d.Replicas, d.Depth)
	fmt.Fprintf(&b, "  %d requests in %v (%.0f req/s)\n", d.Requests, d.Duration.Round(time.Millisecond), d.Throughput)
	fmt.Fprintf(&b, "  completions per %v window: min %d, max %d, zero windows %d\n",
		d.Window, d.MinWindow, d.MaxWindow, d.ZeroWindows)
	fmt.Fprintf(&b, "  promotions %d, drain-to-takeover latency %v, stale-epoch rejections %d\n",
		d.Promotions, d.PromotionLatency, d.StaleRejects)
	return b.String()
}
