package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/consensus"
	"etx/internal/core"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/workload"
)

// --- EXP-CO: cohort consensus — instances and messages per commit -------------
//
// The experiment that justifies cohort consensus. After PR 3 the data tier
// pays a fraction of an fsync per commit, so the commit path's dominant cost
// is the application-server tier: every try runs two full Chandra–Toueg
// instances (the regA claim and the regD decision), each O(n) messages and a
// goroutine of bookkeeping on every replica. This experiment pushes the
// post-group-commit premise to its limit — a free log device and a perfect
// zero-latency network — so the throughput ceiling is set entirely by the
// protocol work the middle tier itself performs per commit: consensus
// messages moved, instances run, rounds driven. With cohort batching a
// sequencer folds the concurrent register writes of K pipelined requests
// into shared batch-consensus slots — one instance per cohort — so that work
// falls by the cohort size while the decided registers (and the A.1 oracle)
// are unchanged. Window 0 reproduces the one-instance-per-write discipline
// exactly: its instances-per-commit column shows the two local proposals
// every commit pays today.

// ConsensusRow is one (pipelining depth, cohort on/off) cell.
type ConsensusRow struct {
	Cohort   bool          `json:"cohort"`
	Window   time.Duration `json:"window_ns"`
	InFlight int           `json:"in_flight"`
	Requests int           `json:"requests"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Throughput is committed requests per second.
	Throughput float64 `json:"throughput_rps"`
	// MsgsPerCommit is the number of consensus messages the whole middle
	// tier sent per committed request.
	MsgsPerCommit float64 `json:"consensus_msgs_per_commit"`
	// InstancesPerCommit is the number of consensus instances run on behalf
	// of register writes (local proposals: per-write instances at window 0,
	// batch slots with cohort batching) per committed request.
	InstancesPerCommit float64 `json:"consensus_instances_per_commit"`
	// FastPathRate is the fraction of proposals that took the round-1
	// coordinator fast path (1.0 in a failure-free run led by the primary).
	FastPathRate float64 `json:"fast_path_rate"`
	// P50 and P99 are client-observed commit latencies in ms.
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

// ConsensusReport is the experiment report.
type ConsensusReport struct {
	Rows []ConsensusRow `json:"rows"`
}

// ConsensusConfig parameterizes RunConsensus. Zero values take defaults;
// Quick shrinks everything for CI smoke runs.
type ConsensusConfig struct {
	Requests  int    // per row
	InFlights []int  // pipelining depths to sweep
	Net       string // latcost profile overriding the zero-latency default: "", "lan", "wan"
	Quick     bool
}

func (c *ConsensusConfig) setDefaults() {
	if c.Quick {
		if c.Requests <= 0 {
			c.Requests = 400
		}
		if len(c.InFlights) == 0 {
			c.InFlights = []int{1, 16}
		}
	}
	if c.Requests <= 0 {
		c.Requests = 2400
	}
	if len(c.InFlights) == 0 {
		c.InFlights = []int{1, 8, 16, 32, 64}
	}
}

// cohortBenchWindow is the sequencer window of the batched rows. Under load
// it is immaterial (a cohort stays open for the whole in-flight slot ahead
// of it); idle, it is the price of admission for sharing.
const cohortBenchWindow = 100 * time.Microsecond

// RunConsensus measures throughput, consensus cost per commit and commit
// latency on one shard with three application servers, with cohort
// consensus off (window 0, one instance per register write) and on.
func RunConsensus(cfg ConsensusConfig) (*ConsensusReport, error) {
	cfg.setDefaults()
	out := &ConsensusReport{}
	// Each cell reports the better of two runs (one in quick mode): the
	// sweep is CPU-bound by design, so a stray GC cycle or scheduler hiccup
	// on a loaded machine otherwise dominates cell-to-cell comparisons.
	runs := 2
	if cfg.Quick {
		runs = 1
	}
	for _, inflight := range cfg.InFlights {
		for _, cohort := range []bool{false, true} {
			window := time.Duration(0)
			if cohort {
				window = cohortBenchWindow
			}
			var best ConsensusRow
			for r := 0; r < runs; r++ {
				row, err := oneConsensusRun(window, inflight, cfg.Requests, cfg.Net)
				if err != nil {
					return nil, errf("consensus inflight=%d cohort=%v: %w", inflight, cohort, err)
				}
				if r == 0 || row.Throughput > best.Throughput {
					best = row
				}
			}
			out.Rows = append(out.Rows, best)
		}
	}
	return out, nil
}

// middleTierStats sums the consensus counters over the three app servers.
func middleTierStats(c *cluster.Cluster) consensus.Stats {
	var total consensus.Stats
	for i := 1; i <= 3; i++ {
		if a := c.App(i); a != nil {
			st := a.ConsensusStats()
			total.Instances += st.Instances
			total.Proposes += st.Proposes
			total.Rounds += st.Rounds
			total.Messages += st.Messages
			total.FastPath += st.FastPath
			total.BatchOps += st.BatchOps
			total.Resends += st.Resends
		}
	}
	return total
}

// oneConsensusRun drives one cell: `requests` bank transactions against a
// one-shard tier at the given pipelining depth.
func oneConsensusRun(window time.Duration, inflight, requests int, netName string) (ConsensusRow, error) {
	const clients = 4
	poolSize := 8 * inflight
	pool := make([]string, poolSize)
	seed := make(map[string]int64, poolSize)
	for i := range pool {
		pool[i] = fmt.Sprintf("cc%04d", i)
		seed[pool[i]] = 1 << 40
	}

	// A perfect zero-latency network and a free log device: what remains
	// is the protocol work itself, which is what the sweep isolates. -net
	// swaps in a latcost profile (per-tier latencies plus jitter) instead.
	netOpts, err := latcost.Profile(netName)
	if err != nil {
		return ConsensusRow{}, err
	}
	netOpts.Seed = int64(inflight + 1)

	c, err := cluster.New(cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net:         netOpts,
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, 0)
		}),
		CohortWindow: window,
		// Windowless mailbox-drain batching at the database server, for both
		// rows: coalesced vote/ack envelopes keep the shared data-tier path
		// off the critical core (the sweep isolates the middle tier).
		DrainBatch:  64,
		Seed:        workload.BankSeed(seed),
		Workers:     inflight,
		Terminators: inflight,

		// Generous protocol timers: the run is failure-free and nothing may
		// fire spuriously under CPU load.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Second,
		ResendInterval:    5 * time.Second,
		CleanInterval:     50 * time.Millisecond,
		ClientBackoff:     5 * time.Second,
		ClientRebroadcast: 5 * time.Second,
		ComputeTimeout:    30 * time.Second,
	})
	if err != nil {
		return ConsensusRow{}, err
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	reqFor := func(i int) []byte {
		return workload.EncodeBank(workload.BankRequest{Account: pool[i%len(pool)], Amount: -1})
	}

	// Warm-up outside the timer and the counters.
	for i := 1; i <= clients; i++ {
		if _, err := c.Client(i).Issue(ctx, reqFor(i)); err != nil {
			return ConsensusRow{}, err
		}
	}
	base := middleTierStats(c)
	lat := metrics.NewSample()

	// Exactly `inflight` concurrent issuers, spread round-robin over the
	// client processes, so the row's label is the measured depth.
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	t0 := time.Now()
	for w := 0; w < inflight; w++ {
		cl := c.Client(w%clients + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(requests) {
					return
				}
				s0 := time.Now()
				if _, err := cl.Issue(ctx, reqFor(int(i))); err != nil {
					errs <- err
					return
				}
				lat.AddDuration(time.Since(s0))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	if err := <-errs; err != nil {
		return ConsensusRow{}, err
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return ConsensusRow{}, fmt.Errorf("oracle: %s", rep)
	}
	delta := middleTierStats(c).Sub(base)
	row := ConsensusRow{
		Cohort:             window > 0,
		Window:             window,
		InFlight:           inflight,
		Requests:           requests,
		Elapsed:            elapsed,
		MsgsPerCommit:      float64(delta.Messages) / float64(requests),
		InstancesPerCommit: float64(delta.Proposes) / float64(requests),
		P50:                lat.Percentile(50),
		P99:                lat.Percentile(99),
	}
	if delta.Proposes > 0 {
		row.FastPathRate = float64(delta.FastPath) / float64(delta.Proposes)
	}
	if elapsed > 0 {
		row.Throughput = float64(requests) / elapsed.Seconds()
	}
	return row, nil
}

// Row returns the cell for (inflight, cohort), or nil.
func (b *ConsensusReport) Row(inflight int, cohort bool) *ConsensusRow {
	for i := range b.Rows {
		if b.Rows[i].InFlight == inflight && b.Rows[i].Cohort == cohort {
			return &b.Rows[i]
		}
	}
	return nil
}

// String renders the report.
func (b *ConsensusReport) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Cohort consensus (%d requests per row; 3 app servers, 1 shard, zero-cost net/log)\n",
		b.Rows[0].Requests)
	fmt.Fprintf(&s, "%-10s %-7s %12s %10s %10s %12s %9s %10s %10s\n",
		"in-flight", "cohort", "elapsed (ms)", "req/s", "msgs/req", "instances/req", "fastpath", "p50 (ms)", "p99 (ms)")
	for _, r := range b.Rows {
		speed := ""
		if r.Cohort {
			if off := b.Row(r.InFlight, false); off != nil && off.Throughput > 0 {
				speed = fmt.Sprintf(" (%.1fx)", r.Throughput/off.Throughput)
			}
		}
		mode := "off"
		if r.Cohort {
			mode = "on"
		}
		fmt.Fprintf(&s, "%-10d %-7s %12.1f %10.1f %10.2f %12.2f %9.2f %10.2f %10.2f%s\n",
			r.InFlight, mode, float64(r.Elapsed)/1e6, r.Throughput,
			r.MsgsPerCommit, r.InstancesPerCommit, r.FastPathRate, r.P50, r.P99, speed)
	}
	s.WriteString("(window 0 runs one consensus instance per register write — two per commit —\n" +
		" exactly as the paper prescribes; with cohort batching a sequencer folds the\n" +
		" concurrent regA/regD writes into shared batch slots, so the middle tier's\n" +
		" instances and messages per commit fall by the cohort size; at depth 1 the\n" +
		" window only adds latency, which is why cohort batching is off by default)\n")
	return s.String()
}
