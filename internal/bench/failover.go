package bench

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"etx/internal/cluster"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/latcost"
	"etx/internal/metrics"
	"etx/internal/transport"
	"etx/internal/workload"
)

// FailoverConfig parameterizes the failure-response-time experiment — the
// evaluation the paper explicitly defers ("for a complete evaluation ... one
// obviously needs to consider the actual response-time of the protocol in
// the case of various failure alternatives").
type FailoverConfig struct {
	// Scale is the cost-model multiplier. Default 0.05.
	Scale float64
	// Runs per crash point. Default 5 (every run builds a fresh cluster;
	// application servers do not recover in the model).
	Runs int
	// SuspectTimeout is the ◊P detector's suspicion timeout; failover time
	// is dominated by it. Default 20ms.
	SuspectTimeout time.Duration
	// Quick shrinks the data-tier kill-primary scenario (and the per-point
	// run count) for CI smoke runs.
	Quick bool
}

func (c *FailoverConfig) setDefaults() {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Runs <= 0 {
		c.Runs = 5
		if c.Quick {
			c.Runs = 2
		}
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 20 * time.Millisecond
	}
}

// FailoverRow is the client-observed latency when the primary crashes at one
// protocol point.
type FailoverRow struct {
	Point   string
	Latency metrics.Summary
	// Tries is the mean number of tries the client needed.
	Tries float64
}

// Failover is the failure-response-time report.
type Failover struct {
	Scale          float64
	SuspectTimeout time.Duration
	NoCrash        metrics.Summary
	Rows           []FailoverRow
	// DataTier is the replicated-data-tier scenario: kill one shard primary
	// under pipelined load and let a backup promote (see DataTierFailover).
	DataTier *DataTierFailover
}

// RunFailover measures client-observed latency with the primary crashed at
// each point of the executor path, against the failure-free baseline.
func RunFailover(cfg FailoverConfig) (*Failover, error) {
	cfg.setDefaults()
	model := latcost.Paper(cfg.Scale)
	out := &Failover{Scale: cfg.Scale, SuspectTimeout: cfg.SuspectTimeout}

	// Failure-free reference.
	ref := metrics.NewSample()
	for i := 0; i < cfg.Runs; i++ {
		lat, _, err := oneFailoverRun(model, cfg.SuspectTimeout, "")
		if err != nil {
			return nil, err
		}
		ref.AddDuration(lat)
	}
	out.NoCrash = ref.Summarize()

	points := []core.CrashPoint{
		core.PointAfterRegA, core.PointAfterCompute, core.PointAfterPrepare,
		core.PointAfterRegD, core.PointBeforeResult,
	}
	for _, point := range points {
		lats := metrics.NewSample()
		tries := 0.0
		for i := 0; i < cfg.Runs; i++ {
			lat, tr, err := oneFailoverRun(model, cfg.SuspectTimeout, point)
			if err != nil {
				return nil, errf("failover %s run %d: %w", point, i, err)
			}
			lats.AddDuration(lat)
			tries += float64(tr)
		}
		out.Rows = append(out.Rows, FailoverRow{
			Point:   string(point),
			Latency: lats.Summarize(),
			Tries:   tries / float64(cfg.Runs),
		})
	}

	// The replicated data tier: kill one shard primary under load and let
	// the group's heartbeat detector promote a backup.
	dt, err := runDataTierFailover(cfg.Quick)
	if err != nil {
		return nil, fmt.Errorf("data-tier failover: %w", err)
	}
	out.DataTier = dt
	return out, nil
}

// oneFailoverRun builds a fresh cluster, optionally crashes the primary at
// the given point during try 1, and measures the client-observed latency of
// one request. An empty point runs failure-free.
func oneFailoverRun(model latcost.Model, suspect time.Duration, point core.CrashPoint) (time.Duration, uint64, error) {
	var cRef atomic.Pointer[cluster.Cluster]
	var fired atomic.Bool
	total := estimatedTotal(model)
	cfg := cluster.Config{
		AppServers:  3,
		DataServers: 1,
		Net:         transport.Options{Latency: model.LatencyFunc()},
		Logic: core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			return workload.Bank(ctx, tx, req, model.SQLWork)
		}),
		ForceLatency: model.DBForce,
		Seed:         benchSeed(),

		HeartbeatInterval: suspect / 6,
		SuspectTimeout:    suspect,
		ResendInterval:    100 * total,
		CleanInterval:     suspect / 6,
		ClientBackoff:     4 * total,
		ClientRebroadcast: 4 * total,
		ComputeTimeout:    200 * total,
	}
	if point != "" {
		cfg.Hooks = func(self id.NodeID) *core.Hooks {
			if self != id.AppServer(1) {
				return nil
			}
			return &core.Hooks{Crash: func(p core.CrashPoint, rid id.ResultID) {
				if p == point && rid.Try == 1 && fired.CompareAndSwap(false, true) {
					cRef.Load().CrashApp(1)
				}
			}}
		}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	cRef.Store(c)
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	t0 := time.Now()
	if _, err := c.Client(1).Issue(ctx, benchRequest()); err != nil {
		return 0, 0, err
	}
	lat := time.Since(t0)
	if point != "" && !fired.Load() {
		return 0, 0, errf("crash point %s never fired", point)
	}
	if rep := c.CheckProperties(); !rep.Ok() {
		return 0, 0, errf("oracle: %s", rep)
	}
	tries := uint64(1)
	if ds := c.Client(1).Delivered(); len(ds) > 0 {
		tries = ds[0].Tries
	}
	return lat, tries, nil
}

// String renders the failover report.
func (f *Failover) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failover response time (scale %.3f, suspicion timeout %v)\n", f.Scale, f.SuspectTimeout)
	fmt.Fprintf(&b, "%-18s %12s %12s %8s\n", "crash point", "mean (ms)", "p99 (ms)", "tries")
	fmt.Fprintf(&b, "%-18s %12.1f %12.1f %8.1f\n", "none", f.NoCrash.Mean, f.NoCrash.P99, 1.0)
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %8.1f\n", r.Point, r.Latency.Mean, r.Latency.P99, r.Tries)
	}
	b.WriteString("(failover latency ≈ failure-free latency + suspicion timeout + cleaning + retry)\n")
	if f.DataTier != nil {
		b.WriteString("\n")
		b.WriteString(f.DataTier.String())
	}
	return b.String()
}
