package cluster

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/transport"
)

// fastKnobs returns timing parameters small enough for quick tests but large
// enough to be robust under -race.
func fastKnobs(cfg *Config) {
	cfg.HeartbeatInterval = 5 * time.Millisecond
	cfg.SuspectTimeout = 40 * time.Millisecond
	cfg.ConsensusPoll = 500 * time.Microsecond
	cfg.ResendInterval = 30 * time.Millisecond
	cfg.CleanInterval = 10 * time.Millisecond
	cfg.ComputeTimeout = 3 * time.Second
	cfg.ClientBackoff = 50 * time.Millisecond
	cfg.ClientRebroadcast = 50 * time.Millisecond
	cfg.LockTimeout = 150 * time.Millisecond
}

// transferLogic moves `amount` (parsed from the request) from acct/src to
// acct/dst on database 1 and returns the new destination balance.
func transferLogic() core.Logic {
	return core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		amount, err := strconv.ParseInt(string(req), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad request: %w", err)
		}
		db := tx.DBs()[0]
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/src", Delta: -amount}); err != nil {
			return nil, err
		}
		rep, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/dst", Delta: amount})
		if err != nil {
			return nil, err
		}
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpCheckGE, Key: "acct/src", Delta: 0}); err != nil {
			return nil, err
		}
		return []byte(strconv.FormatInt(rep.Num, 10)), nil
	})
}

func seedAccounts(initial int64) []kv.Write {
	return []kv.Write{
		{Key: "acct/src", Val: kv.EncodeInt(initial)},
		{Key: "acct/dst", Val: kv.EncodeInt(0)},
	}
}

func mustBalances(t *testing.T, c *Cluster, db int, wantSrc, wantDst int64) {
	t.Helper()
	e := c.Engine(db)
	src, _ := e.Store().GetInt("acct/src")
	dst, _ := e.Store().GetInt("acct/dst")
	if src != wantSrc || dst != wantDst {
		t.Fatalf("balances src=%d dst=%d, want src=%d dst=%d", src, dst, wantSrc, wantDst)
	}
}

func mustOracle(t *testing.T, c *Cluster) {
	t.Helper()
	if rep := c.CheckProperties(); !rep.Ok() {
		t.Fatalf("oracle violations:\n%s", rep)
	}
}

func issue(t *testing.T, c *Cluster, client int, req string) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Client(client).Issue(ctx, []byte(req))
	if err != nil {
		t.Fatalf("Issue(%q): %v", req, err)
	}
	return res
}

// TestFailureFreeCommit is Figure 1(a): the nice run.
func TestFailureFreeCommit(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res := issue(t, c, 1, "10")
	if string(res) != "10" {
		t.Errorf("result = %q, want new dst balance 10", res)
	}
	mustBalances(t, c, 1, 90, 10)
	mustOracle(t, c)

	// A second request on the same client works and remains exactly-once.
	issue(t, c, 1, "5")
	mustBalances(t, c, 1, 85, 15)
	mustOracle(t, c)
}

// TestUserLevelAbortRetriesUntilCommit is Figure 1(b) followed by the
// footnote-4 behaviour: the databases refuse a result (vote no), the client
// retries behind the scenes, and a later try commits.
func TestUserLevelAbortRetriesUntilCommit(t *testing.T) {
	var attempts atomic.Int64
	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		db := tx.DBs()[0]
		n := attempts.Add(1)
		if n <= 2 {
			// Poison the branch: the database will vote no.
			if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpCheckGE, Key: "acct/src", Delta: 1 << 40}); err != nil {
				return nil, err
			}
			return []byte("will-be-refused"), nil
		}
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/dst", Delta: 7}); err != nil {
			return nil, err
		}
		return []byte("booked"), nil
	})
	cfg := Config{Logic: logic, Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res := issue(t, c, 1, "x")
	if string(res) != "booked" {
		t.Errorf("result = %q", res)
	}
	if got := attempts.Load(); got < 3 {
		t.Errorf("logic ran %d times, want >= 3 (two refused tries)", got)
	}
	dst, _ := c.Engine(1).Store().GetInt("acct/dst")
	if dst != 7 {
		t.Errorf("dst = %d, want exactly one committed attempt", dst)
	}
	mustOracle(t, c)
}

// crashPrimaryAt builds a deployment whose primary (appserver-1) crashes the
// first time the given point is reached on try 1.
func crashPrimaryAt(t *testing.T, point core.CrashPoint) (*Cluster, *atomic.Bool) {
	t.Helper()
	var fired atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Logic: transferLogic(),
		Seed:  seedAccounts(100),
		Hooks: func(self id.NodeID) *core.Hooks {
			if self != id.AppServer(1) {
				return nil
			}
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					if p == point && rid.Try == 1 && fired.CompareAndSwap(false, true) {
						cRef.Load().CrashApp(1)
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	return c, &fired
}

// TestFailoverWithAbort is Figure 1(d): the primary crashes before the
// decision is written; a backup's cleaning thread aborts the try and the
// client's retry commits on a backup — exactly once.
func TestFailoverWithAbort(t *testing.T) {
	for _, point := range []core.CrashPoint{core.PointAfterRegA, core.PointAfterCompute, core.PointAfterPrepare} {
		point := point
		t.Run(string(point), func(t *testing.T) {
			c, fired := crashPrimaryAt(t, point)
			defer c.Stop()
			res := issue(t, c, 1, "10")
			if string(res) != "10" {
				t.Errorf("result = %q", res)
			}
			if !fired.Load() {
				t.Fatal("crash hook never fired")
			}
			mustBalances(t, c, 1, 90, 10)
			mustOracle(t, c)
		})
	}
}

// TestFailoverWithCommit is Figure 1(c): the primary crashes after writing
// (result, commit) into regD but before terminating; the backup's cleaning
// thread reads the committed decision out of the register, finishes the
// commit at the databases, and delivers the crashed primary's result.
func TestFailoverWithCommit(t *testing.T) {
	for _, point := range []core.CrashPoint{core.PointAfterRegD, core.PointBeforeResult} {
		point := point
		t.Run(string(point), func(t *testing.T) {
			c, fired := crashPrimaryAt(t, point)
			defer c.Stop()
			res := issue(t, c, 1, "10")
			if string(res) != "10" {
				t.Errorf("result = %q (must be the crashed primary's computed result)", res)
			}
			if !fired.Load() {
				t.Fatal("crash hook never fired")
			}
			mustBalances(t, c, 1, 90, 10)
			mustOracle(t, c)
			// Exactly-once despite the crash: one committed try only.
			deliveries := c.Client(1).Delivered()
			if len(deliveries) != 1 || deliveries[0].Tries != 1 {
				t.Errorf("deliveries = %+v, want the original try 1", deliveries)
			}
		})
	}
}

// TestRequestsContinueAfterPrimaryCrash: after fail-over the remaining
// majority keeps serving new requests.
func TestRequestsContinueAfterPrimaryCrash(t *testing.T) {
	c, _ := crashPrimaryAt(t, core.PointAfterCompute)
	defer c.Stop()
	issue(t, c, 1, "10")
	// Three more requests against the 2-server middle tier.
	for i := 0; i < 3; i++ {
		issue(t, c, 1, "5")
	}
	mustBalances(t, c, 1, 100-10-15, 25)
	mustOracle(t, c)
}

// TestDBCrashBetweenComputeAndPrepare: the database crashes after the
// business logic ran but before prepare; its unprepared branch evaporates.
// The incarnation check must abort the try instead of committing a lost
// update, and the retry commits exactly once.
func TestDBCrashBetweenComputeAndPrepare(t *testing.T) {
	var fired atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Logic: transferLogic(),
		Seed:  seedAccounts(100),
		Hooks: func(self id.NodeID) *core.Hooks {
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					if p == core.PointAfterCompute && rid.Try == 1 && fired.CompareAndSwap(false, true) {
						c := cRef.Load()
						c.CrashDB(1)
						if err := c.RecoverDB(1); err != nil {
							t.Errorf("recover: %v", err)
						}
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	defer c.Stop()

	res := issue(t, c, 1, "10")
	if string(res) != "10" {
		t.Errorf("result = %q", res)
	}
	if !fired.Load() {
		t.Fatal("db crash hook never fired")
	}
	deliveries := c.Client(1).Delivered()
	if len(deliveries) != 1 || deliveries[0].Tries < 2 {
		t.Errorf("deliveries = %+v, want a retried try (>= 2)", deliveries)
	}
	mustBalances(t, c, 1, 90, 10)
	mustOracle(t, c)
}

// TestDBCrashAfterPrepareCommitsAfterRecovery exercises T.2 and the XA
// durability contract: the database crashes between its yes vote and the
// decide; on recovery its in-doubt branch must commit from the retried
// Decide, and the client's original try succeeds without recomputation.
func TestDBCrashAfterPrepareCommitsAfterRecovery(t *testing.T) {
	var fired atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Logic: transferLogic(),
		Seed:  seedAccounts(100),
		Hooks: func(self id.NodeID) *core.Hooks {
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					if p == core.PointAfterPrepare && rid.Try == 1 && fired.CompareAndSwap(false, true) {
						cRef.Load().CrashDB(1)
						go func() {
							time.Sleep(80 * time.Millisecond)
							if err := cRef.Load().RecoverDB(1); err != nil {
								t.Errorf("recover: %v", err)
							}
						}()
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	defer c.Stop()

	res := issue(t, c, 1, "10")
	if string(res) != "10" {
		t.Errorf("result = %q", res)
	}
	deliveries := c.Client(1).Delivered()
	if len(deliveries) != 1 || deliveries[0].Tries != 1 {
		t.Errorf("deliveries = %+v, want the original try to commit", deliveries)
	}
	mustBalances(t, c, 1, 90, 10)
	mustOracle(t, c)
}

// TestFalseSuspicionIsSafe: a backup permanently (then transiently) suspects
// the live primary, so its cleaning thread races the executor on every try.
// Whatever interleaving happens, the agreement properties must hold and the
// transfer must commit exactly once after accuracy is restored.
func TestFalseSuspicionIsSafe(t *testing.T) {
	dets := make(map[id.NodeID]*fd.Scripted)
	var detMu sync.Mutex
	slowLogic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		db := tx.DBs()[0]
		// Slow compute gives the false-suspicion cleaner time to interfere.
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(30 * time.Millisecond)}); err != nil {
			return nil, err
		}
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/dst", Delta: 1}); err != nil {
			return nil, err
		}
		return []byte("done"), nil
	})
	cfg := Config{
		Logic: slowLogic,
		Seed:  seedAccounts(0),
		Detector: func(self id.NodeID) fd.Detector {
			detMu.Lock()
			defer detMu.Unlock()
			d := fd.NewScripted()
			dets[self] = d
			return d
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// appserver-2 and appserver-3 falsely suspect the primary.
	detMu.Lock()
	dets[id.AppServer(2)].Set(id.AppServer(1), true)
	dets[id.AppServer(3)].Set(id.AppServer(1), true)
	detMu.Unlock()

	// Eventual accuracy: suspicion lifts shortly.
	go func() {
		time.Sleep(250 * time.Millisecond)
		detMu.Lock()
		dets[id.AppServer(2)].Set(id.AppServer(1), false)
		dets[id.AppServer(3)].Set(id.AppServer(1), false)
		detMu.Unlock()
	}()

	res := issue(t, c, 1, "x")
	if string(res) != "done" {
		t.Errorf("result = %q", res)
	}
	dst, _ := c.Engine(1).Store().GetInt("acct/dst")
	if dst != 1 {
		t.Errorf("dst = %d, want exactly-once despite cleaner races", dst)
	}
	mustOracle(t, c)
}

// TestConcurrentClientsConserveMoney: several clients transfer concurrently;
// serializability at the database plus exactly-once end to end must conserve
// the total and account for every delivered result exactly once.
func TestConcurrentClientsConserveMoney(t *testing.T) {
	const clients = 3
	const perClient = 4
	cfg := Config{
		Logic:   transferLogic(),
		Seed:    seedAccounts(1000),
		Clients: clients,
		Workers: 2,
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var wg sync.WaitGroup
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if _, err := c.Client(cl).Issue(ctx, []byte("10")); err != nil {
					t.Errorf("client %d: %v", cl, err)
				}
				cancel()
			}
		}()
	}
	wg.Wait()

	total := int64(clients * perClient * 10)
	mustBalances(t, c, 1, 1000-total, total)
	mustOracle(t, c)
}

// TestMultipleDataServersAtomicity: the travel pattern — bookings span three
// databases; commit must be all-or-nothing across them (V.2/A.3), including
// when one database refuses.
func TestMultipleDataServersAtomicity(t *testing.T) {
	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		dbs := tx.DBs()
		// Book one unit on each of flight, hotel, car.
		for i, key := range []string{"flight", "hotel", "car"} {
			if _, err := tx.Exec(ctx, dbs[i], msg.Op{Code: msg.OpAdd, Key: key, Delta: -1}); err != nil {
				return nil, err
			}
			if _, err := tx.Exec(ctx, dbs[i], msg.Op{Code: msg.OpCheckGE, Key: key, Delta: 0}); err != nil {
				return nil, err
			}
		}
		return []byte("itinerary"), nil
	})
	cfg := Config{
		Logic:       logic,
		DataServers: 3,
		Seed: []kv.Write{
			{Key: "flight", Val: kv.EncodeInt(5)},
			{Key: "hotel", Val: kv.EncodeInt(5)},
			{Key: "car", Val: kv.EncodeInt(5)},
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res := issue(t, c, 1, "trip")
	if string(res) != "itinerary" {
		t.Errorf("result = %q", res)
	}
	// Each database committed its own piece.
	if n, _ := c.Engine(1).Store().GetInt("flight"); n != 4 {
		t.Errorf("flight = %d", n)
	}
	if n, _ := c.Engine(2).Store().GetInt("hotel"); n != 4 {
		t.Errorf("hotel = %d", n)
	}
	if n, _ := c.Engine(3).Store().GetInt("car"); n != 4 {
		t.Errorf("car = %d", n)
	}
	mustOracle(t, c)
}

// TestMultiDBRefusalAbortsEverywhere: when one database votes no, no database
// may commit the try (V.2), and the client eventually gets a sold-out result
// computed the footnote-4 way.
func TestMultiDBRefusalAbortsEverywhere(t *testing.T) {
	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		dbs := tx.DBs()
		// Check availability first (footnote 4: compute a result that can
		// run to completion).
		rep, err := tx.Exec(ctx, dbs[1], msg.Op{Code: msg.OpGet, Key: "hotel"})
		if err != nil {
			return nil, err
		}
		if rep.Num <= 0 {
			return []byte("sold-out"), nil
		}
		for i, key := range []string{"flight", "hotel"} {
			if _, err := tx.Exec(ctx, dbs[i], msg.Op{Code: msg.OpAdd, Key: key, Delta: -1}); err != nil {
				return nil, err
			}
			if _, err := tx.Exec(ctx, dbs[i], msg.Op{Code: msg.OpCheckGE, Key: key, Delta: 0}); err != nil {
				return nil, err
			}
		}
		return []byte("booked"), nil
	})
	cfg := Config{
		Logic:       logic,
		DataServers: 2,
		Seed: []kv.Write{
			{Key: "flight", Val: kv.EncodeInt(5)},
			{Key: "hotel", Val: kv.EncodeInt(0)}, // no hotel rooms
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res := issue(t, c, 1, "trip")
	if string(res) != "sold-out" {
		t.Errorf("result = %q, want the informational sold-out result", res)
	}
	// Nothing was booked anywhere.
	if n, _ := c.Engine(1).Store().GetInt("flight"); n != 5 {
		t.Errorf("flight = %d, want untouched", n)
	}
	mustOracle(t, c)
}

// TestRandomizedCrashSchedules sweeps every crash point over fresh clusters,
// asserting exactly-once and the full oracle each time.
func TestRandomizedCrashSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedule sweep skipped in -short mode")
	}
	points := []core.CrashPoint{
		core.PointAfterRegA, core.PointAfterCompute, core.PointAfterPrepare,
		core.PointAfterRegD, core.PointBeforeResult,
	}
	for _, point := range points {
		point := point
		t.Run(string(point), func(t *testing.T) {
			t.Parallel()
			c, _ := crashPrimaryAt(t, point)
			defer c.Stop()
			issue(t, c, 1, "10")
			issue(t, c, 1, "10") // a second request after the fail-over
			mustBalances(t, c, 1, 80, 20)
			mustOracle(t, c)
		})
	}
}

// TestLossyNetworkStillExactlyOnce: with message loss and duplication at the
// network, the reliable-channel layer (retransmission + dedup) must preserve
// exactly-once end to end — the Section-5 claim about reliable channels.
func TestLossyNetworkStillExactlyOnce(t *testing.T) {
	cfg := Config{
		Logic:      transferLogic(),
		Seed:       seedAccounts(100),
		Net:        transport.Options{LossProb: 0.10, DupProb: 0.10, Seed: 7},
		Reliable:   true,
		Retransmit: 15 * time.Millisecond,
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	issue(t, c, 1, "10")
	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 80, 20)
	mustOracle(t, c)
}

// TestLossyConfigRequiresReliable documents the invariant that raw lossy
// networks are rejected (the paper's protocol assumes reliable channels).
func TestLossyConfigRequiresReliable(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Net: transport.Options{LossProb: 0.5}}
	if _, err := New(cfg); err == nil {
		t.Fatal("lossy network without reliable channels must be rejected")
	}
}
