package cluster

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/xadb"
)

// TestClientCrashReleasesDatabaseResources covers the paper's "If the client
// crashes, the request is executed at-most-once and the database resources
// are eventually released" (Section 5) — T.2's non-blocking promise.
func TestClientCrashReleasesDatabaseResources(t *testing.T) {
	slow := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		db := tx.DBs()[0]
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "hot", Delta: 1}); err != nil {
			return nil, err
		}
		// Hold the lock while the client dies.
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(60 * time.Millisecond)}); err != nil {
			return nil, err
		}
		return []byte("done"), nil
	})
	cfg := Config{Logic: slow}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// The client "crashes" (context cancelled) while the try is mid-flight.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	_, issueErr := c.Client(1).Issue(ctx, []byte("r"))
	cancel()
	if issueErr == nil {
		t.Fatal("issue must fail when the client dies")
	}

	// The executor finishes the try on its own: the database decides and the
	// lock on "hot" is released — a fresh transaction can take it.
	rid2 := id.ResultID{Client: id.Client(99), Seq: 1, Try: 1}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := c.Engine(1).Exec(context.Background(), rid2, msg.Op{Code: msg.OpPut, Key: "hot", Val: []byte("x")})
		if rep.OK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lock never released after client crash: %s", rep.Err)
		}
		c.Engine(1).Decide(rid2, msg.OutcomeAbort)
		rid2.Try++
		time.Sleep(10 * time.Millisecond)
	}

	// At-most-once: the crashed client's request committed at most one try.
	committed := 0
	for rid, o := range c.Engine(1).Outcomes() {
		if rid.Client == id.Client(1) && o == msg.OutcomeCommit {
			committed++
		}
	}
	if committed > 1 {
		t.Fatalf("client crash allowed %d commits", committed)
	}
	mustOracle(t, c)
}

// TestAppServerMinorityPartition: a partitioned (not crashed) application
// server cannot block the majority, and safety holds when the partition
// heals — the asynchronous model's equivalent of a slow node.
func TestAppServerMinorityPartition(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Partition appserver-3 from everyone.
	minority := []id.NodeID{id.AppServer(3)}
	rest := []id.NodeID{id.AppServer(1), id.AppServer(2), id.DBServer(1), id.Client(1)}
	c.Net.Partition(minority, rest)

	issue(t, c, 1, "10")
	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 80, 20)

	// Heal; the rejoined replica learns decisions lazily and further
	// requests still work.
	c.Net.Heal()
	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 70, 30)
	mustOracle(t, c)
}

// TestWorkerPoolAblation: the paper's single compute thread serializes
// same-server requests; the Workers knob (a documented generalization)
// overlaps them. Both must be exactly-once; the pool must not be slower.
func TestWorkerPoolAblation(t *testing.T) {
	run := func(workers int) time.Duration {
		logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
			db := tx.DBs()[0]
			if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(20 * time.Millisecond)}); err != nil {
				return nil, err
			}
			key := "k/" + string(req)
			if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: key, Delta: 1}); err != nil {
				return nil, err
			}
			return req, nil
		})
		cfg := Config{Logic: logic, Clients: 3, Workers: workers}
		fastKnobs(&cfg)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		start := time.Now()
		done := make(chan error, 3)
		for cl := 1; cl <= 3; cl++ {
			cl := cl
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_, err := c.Client(cl).Issue(ctx, []byte(strconv.Itoa(cl)))
				done <- err
			}()
		}
		for i := 0; i < 3; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		el := time.Since(start)
		for cl := 1; cl <= 3; cl++ {
			if n, _ := c.Engine(1).Store().GetInt("k/" + strconv.Itoa(cl)); n != 1 {
				t.Fatalf("workers=%d: k/%d = %d, want exactly-once", workers, cl, n)
			}
		}
		mustOracle(t, c)
		return el
	}
	serial := run(1)
	pooled := run(4)
	t.Logf("3 concurrent clients: workers=1 %v, workers=4 %v", serial, pooled)
	if pooled > serial*2 {
		t.Errorf("worker pool slower than serial: %v vs %v", pooled, serial)
	}
}

// TestIncarnationVisibleThroughDataServer: the Ready notification carries the
// new incarnation; a vote from a different incarnation than the one the
// executor computed against must abort (unit-level check of the wiring the
// integration tests rely on).
func TestIncarnationVisibleThroughDataServer(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	inc1 := c.Engine(1).Incarnation()
	c.CrashDB(1)
	if err := c.RecoverDB(1); err != nil {
		t.Fatal(err)
	}
	if inc2 := c.Engine(1).Incarnation(); inc2 != inc1+1 {
		t.Fatalf("incarnation %d -> %d, want +1", inc1, inc2)
	}
	// The recovered database serves new requests normally.
	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 90, 10)
	mustOracle(t, c)
}

// TestComputeTimeoutAbortsTryAndRetries: a hung business logic must not wedge
// the protocol — the per-try compute budget expires, the try aborts with the
// paper's (nil, abort) decision, and a later try (where the logic behaves)
// commits.
func TestComputeTimeoutAbortsTryAndRetries(t *testing.T) {
	var calls atomic.Int64
	logic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the compute budget expires
			return nil, ctx.Err()
		}
		db := tx.DBs()[0]
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "n", Delta: 1}); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})
	cfg := Config{Logic: logic}
	fastKnobs(&cfg)
	cfg.ComputeTimeout = 60 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	res := issue(t, c, 1, "r")
	if string(res) != "ok" {
		t.Fatalf("res = %q", res)
	}
	if calls.Load() < 2 {
		t.Fatalf("logic ran %d times, want a retry after the hang", calls.Load())
	}
	if n, _ := c.Engine(1).Store().GetInt("n"); n != 1 {
		t.Fatalf("n = %d, want exactly-once", n)
	}
	mustOracle(t, c)
}

// TestRegisterReadEventuallyObservesRemoteWrite checks the wo-register read
// semantics across replicas: a value written on one application server
// eventually becomes readable on every other (the decision broadcast).
func TestRegisterReadEventuallyObservesRemoteWrite(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	issue(t, c, 1, "10") // appserver-1 executes try 1: writes regA and regD
	rid := id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}
	for i := 2; i <= 3; i++ {
		app := c.App(i)
		deadline := time.Now().Add(3 * time.Second)
		for {
			owner, okA := app.Registers().ReadA(rid)
			dec, okD := app.Registers().ReadD(rid)
			if okA && okD {
				if owner != id.AppServer(1) {
					t.Fatalf("replica %d sees owner %v", i, owner)
				}
				if !dec.Committed() {
					t.Fatalf("replica %d sees %v", i, dec)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never observed the registers (A=%v D=%v)", i, okA, okD)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestEngineOutcomesSnapshot guards the oracle's data source.
func TestEngineOutcomesSnapshot(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100)}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	issue(t, c, 1, "10")
	outs := c.Engine(1).Outcomes()
	if len(outs) == 0 {
		t.Fatal("no outcomes recorded")
	}
	// The snapshot is a copy: mutating it must not affect the engine.
	var e *xadb.Engine = c.Engine(1)
	for rid := range outs {
		outs[rid] = msg.OutcomeAbort
	}
	for _, o := range e.Outcomes() {
		if o != msg.OutcomeCommit {
			t.Fatal("snapshot aliased engine state")
		}
	}
}
