package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/kv"
)

// queueTimers widens the fast test timings for hot-key speculative runs.
// Chains stretch a try's prepare→vote path across its predecessors' whole
// commit paths, so the retry machinery must sit well above the chain commit
// latency: a rebroadcast below it spawns duplicate tries that are guaranteed
// to abort (exactly-once picks one winner per request), and in queue mode
// every such abort cascades to the whole dependent chain — a retry storm,
// not liveness. Same discipline as the queue bench's generous timers. The
// vote-gate bound gets a wider berth than the lock timeout for the same
// reason: gates wait on whole commit paths, and these tests measure
// behaviour, not timeout churn.
func queueTimers(cfg *Config) {
	fastKnobs(cfg)
	cfg.LockTimeout = 2 * time.Second
	cfg.SuspectTimeout = 300 * time.Millisecond
	cfg.ResendInterval = 500 * time.Millisecond
	cfg.ClientBackoff = time.Second
	cfg.ClientRebroadcast = time.Second
}

// queueKnobs is queueTimers with queue-oriented deterministic execution on.
func queueKnobs(cfg *Config) {
	queueTimers(cfg)
	cfg.QueueExec = true
}

// queueWorkload drives `requests` pipelined transfers over a deliberately hot
// account set (every transfer debits account 0 — maximal write conflicts) and
// returns the final balances.
func queueWorkload(t *testing.T, c *Cluster, accts []string, requests, inflight int) map[string]int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		req := accts[0] + ":" + accts[1+i%(len(accts)-1)] + ":1"
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	balances := make(map[string]int64, len(accts))
	for _, a := range accts {
		bal, err := c.Engine(1).Store().GetInt("acct/" + a)
		if err != nil {
			t.Fatalf("read %s: %v", a, err)
		}
		balances[a] = bal
	}
	return balances
}

// TestQueueParityWithLockMode runs the same hot-key bank workload through
// strict 2PL and through queue-oriented deterministic execution, and asserts
// they are observationally identical: same final balances, both oracle-clean.
// The queue run must never touch the lock manager (counter-verified) while
// actually planning batches; the lock run must show the acquisitions that
// define today's behaviour — QueueExec off reproduces it exactly.
func TestQueueParityWithLockMode(t *testing.T) {
	const (
		requests = 48
		inflight = 16
		accounts = 8
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("qp%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(100)})
	}

	run := func(queueMode bool) (map[string]int64, core.DataServerStats, uint64) {
		cfg := Config{
			Shards:      1,
			Logic:       transferKeyed(),
			Seed:        seed,
			Workers:     inflight,
			Terminators: inflight,
		}
		if queueMode {
			queueKnobs(&cfg)
		} else {
			queueTimers(&cfg) // same timers and conflict bound, fair comparison
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		balances := queueWorkload(t, c, accts, requests, inflight)
		mustOracle(t, c)
		return balances, c.DataServer(1).Stats(), c.Engine(1).LockStats().Acquires
	}

	lockBal, lockStats, lockAcquires := run(false)
	queueBal, queueStats, queueAcquires := run(true)

	for a, want := range lockBal {
		if got := queueBal[a]; got != want {
			t.Errorf("balance of %s diverged: lock = %d, queue = %d", a, want, got)
		}
	}
	// The property the mode exists for, end to end: a whole contended run
	// without one lock acquisition — and not vacuously, the planner really
	// carried the operations.
	if queueAcquires != 0 {
		t.Errorf("queue mode acquired %d locks, want 0", queueAcquires)
	}
	if queueStats.PlannedBatches == 0 || queueStats.PlannedOps == 0 {
		t.Errorf("queue mode planned nothing: %s", queueStats)
	}
	// Off means off: the lock path runs exactly as before — three keyed
	// operations per commit, each an acquisition — and no batch planning.
	if lockAcquires < 3*requests {
		t.Errorf("lock mode acquired %d locks for %d requests, want >= %d", lockAcquires, requests, 3*requests)
	}
	if lockStats.PlannedBatches != 0 || lockStats.PlannedOps != 0 {
		t.Errorf("lock mode ran the planner: %s", lockStats)
	}
	t.Logf("lock:  %d acquires, %s", lockAcquires, lockStats)
	t.Logf("queue: %d acquires, %s", queueAcquires, queueStats)
}

// TestQueuePrimaryCrashMidRun crashes the primary application server while a
// pipelined hot-key run executes in queue mode. Clients must still commit
// every request exactly once (surviving servers finish or re-execute orphaned
// tries; speculative chains built on aborted tries cascade and retry), money
// must be conserved, the A.1 oracle must hold — and the lock manager must
// still never have been touched.
func TestQueuePrimaryCrashMidRun(t *testing.T) {
	const (
		requests = 24
		inflight = 8
		accounts = 6
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("qc%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(1000)})
	}
	cfg := Config{
		Shards:      1,
		Logic:       transferKeyed(),
		Seed:        seed,
		Workers:     inflight,
		Terminators: inflight,
	}
	queueKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		req := accts[i%accounts] + ":" + accts[(i+1)%accounts] + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
		if i == requests/3 {
			// Mid-run: speculative chains are in flight right now, and some
			// of their tries are about to become orphans.
			c.CrashApp(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var total int64
	for _, a := range accts {
		bal, err := c.Engine(1).Store().GetInt("acct/" + a)
		if err != nil {
			t.Fatalf("read %s: %v", a, err)
		}
		total += bal
	}
	if total != int64(accounts)*1000 {
		t.Errorf("total balance = %d, want %d (money not conserved across the crash)", total, accounts*1000)
	}
	if acq := c.Engine(1).LockStats().Acquires; acq != 0 {
		t.Errorf("queue mode acquired %d locks across the crash, want 0", acq)
	}
	mustOracle(t, c)
}

// snapLogic is transferKeyed plus a read-only fast path: a "read:acct"
// request answers from the engine's last-executed-batch snapshot via
// Tx.GetFast — no branch, no locks, no commit path.
func snapLogic() core.Logic {
	keyed := transferKeyed()
	return core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		if acct, ok := strings.CutPrefix(string(req), "read:"); ok {
			_, bal, err := tx.GetFast(ctx, "acct/"+acct)
			if err != nil {
				return nil, err
			}
			return []byte(strconv.FormatInt(bal, 10)), nil
		}
		return keyed.Compute(ctx, tx, req)
	})
}

// TestQueueSnapReadFastPath commits transfers and then reads a balance
// through the speculative read-only fast path, in both modes: the answer
// must reflect every committed transfer, and in queue mode the read must be
// served as a snapshot read at the batch boundary (counter-verified) — still
// without lock acquisitions.
func TestQueueSnapReadFastPath(t *testing.T) {
	for _, mode := range []string{"lock", "queue"} {
		t.Run(mode, func(t *testing.T) {
			cfg := Config{
				Shards: 1,
				Logic:  snapLogic(),
				Seed: []kv.Write{
					{Key: "acct/sa", Val: kv.EncodeInt(100)},
					{Key: "acct/sb", Val: kv.EncodeInt(100)},
				},
			}
			if mode == "queue" {
				queueKnobs(&cfg)
			} else {
				fastKnobs(&cfg)
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()

			issue(t, c, 1, "sa:sb:10")
			issue(t, c, 1, "sa:sb:5")
			if got := issue(t, c, 1, "read:sa"); string(got) != "85" {
				t.Errorf("fast read of sa = %s, want 85", got)
			}
			if got := issue(t, c, 1, "read:sb"); string(got) != "115" {
				t.Errorf("fast read of sb = %s, want 115", got)
			}
			mustOracle(t, c)
			st := c.DataServer(1).Stats()
			if mode == "queue" {
				if st.SnapReads < 2 {
					t.Errorf("served %d snapshot reads, want >= 2 (%s)", st.SnapReads, st)
				}
				if acq := c.Engine(1).LockStats().Acquires; acq != 0 {
					t.Errorf("queue mode acquired %d locks, want 0", acq)
				}
			}
		})
	}
}
