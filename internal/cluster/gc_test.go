package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/transport"
)

// gcKnobs is cohortKnobs plus batch-log truncation.
func gcKnobs(cfg *Config, retain int) {
	cohortKnobs(cfg)
	cfg.RetainSlots = retain
}

// driveTransfers issues `requests` pipelined disjoint transfers through
// client 1 and fails the test on any error.
func driveTransfers(t *testing.T, c *Cluster, accts []string, requests, inflight int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		req := accts[i%len(accts)] + ":" + accts[(i+1)%len(accts)] + ":1"
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCheckpointCatchUpAfterPartition is the GC-safety half of the cohort
// parity suite: a replica partitioned away while the survivors commit far
// enough to truncate the batch log below its application cursor must catch
// up through checkpoint state transfer after the heal — and converge to
// byte-identical register outcomes for every delivered try, while the
// oracle's agreement and validity properties keep holding.
func TestCheckpointCatchUpAfterPartition(t *testing.T) {
	const (
		retain   = 2
		inflight = 8
		accounts = 6
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("gc%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(1000)})
	}
	cfg := Config{
		Shards:      1,
		Logic:       transferKeyed(),
		Seed:        seed,
		Workers:     inflight,
		Terminators: inflight,
	}
	gcKnobs(&cfg, retain)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Phase 1: everyone healthy.
	driveTransfers(t, c, accts, 12, inflight)

	// Partition the third replica away from the whole world.
	lagged := id.AppServer(3)
	rest := []id.NodeID{id.AppServer(1), id.AppServer(2), id.DBServer(1), id.Client(1)}
	c.Net.Partition([]id.NodeID{lagged}, rest)
	laggedApplied := c.App(3).ConsensusStats().Applied

	// Phase 2: commit until the survivors truncate past the laggard's
	// application cursor — the condition under which decision replay is no
	// longer possible and only checkpoint transfer can help.
	deadline := time.Now().Add(45 * time.Second)
	for c.App(1).ConsensusStats().Floor <= laggedApplied {
		if time.Now().After(deadline) {
			t.Fatalf("survivors never truncated past the laggard (floor=%d, laggard applied=%d)",
				c.App(1).ConsensusStats().Floor, laggedApplied)
		}
		driveTransfers(t, c, accts, 24, inflight)
	}
	if st := c.App(1).ConsensusStats(); st.SlotsPruned == 0 {
		t.Fatalf("floor advanced with no slots pruned: %s", st)
	}

	// Heal and keep committing: the laggard's probes and the survivors'
	// checkpoints must pull it back to the present.
	c.Net.Heal()
	driveTransfers(t, c, accts, 12, inflight)

	deadline = time.Now().Add(30 * time.Second)
	for c.App(3).ConsensusStats().CheckpointsInstalled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("laggard never installed a checkpoint: %s", c.App(3).ConsensusStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Byte-identical convergence: every delivered try's registers must read
	// the same on all three replicas — including tries decided while the
	// laggard was below the truncation floor.
	for _, d := range c.Client(1).Delivered() {
		ref, ok := c.App(1).Registers().ReadD(d.RID)
		if !ok {
			t.Fatalf("primary lost regD[%s]", d.RID)
		}
		for i := 2; i <= 3; i++ {
			app := c.App(i)
			deadline := time.Now().Add(20 * time.Second)
			for {
				dec, ok := app.Registers().ReadD(d.RID)
				if ok {
					if !reflect.DeepEqual(dec, ref) {
						t.Fatalf("replica %d diverged on regD[%s]: %v vs %v", i, d.RID, dec, ref)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("replica %d never converged on regD[%s]", i, d.RID)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	// The laggard's slot map is bounded again (it rejoined the floor).
	lagStats := c.App(3).ConsensusStats()
	if lagStats.Applied <= laggedApplied {
		t.Fatalf("laggard never advanced past its partition-time watermark: %s", lagStats)
	}
	var total int64
	for _, a := range accts {
		bal, err := c.Engine(1).Store().GetInt("acct/" + a)
		if err != nil {
			t.Fatal(err)
		}
		total += bal
	}
	if total != int64(accounts)*1000 {
		t.Errorf("total balance = %d, want %d", total, accounts*1000)
	}
	mustOracle(t, c)
}

// TestBoundedSlotMemorySoak: with truncation on, the decided-slot map of
// every replica stays bounded by the retention tail plus the in-flight
// allowance across thousands of commits — the flat memory curve the GC
// exists for — while the oracle still holds.
func TestBoundedSlotMemorySoak(t *testing.T) {
	const (
		retain   = 8
		inflight = 16
		clients  = 4
		// A slot is in flight from decision to application; at most one
		// proposal is outstanding per server, so anything beyond the tail
		// plus a small multiple of the server count is a leak.
		slotSlack = 32
	)
	requests := 10000
	if testing.Short() {
		requests = 2000
	}
	accts := make([]string, 4*inflight)
	var kvSeed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("bm%04d", i)
		kvSeed = append(kvSeed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(1 << 30)})
	}
	c, err := New(Config{
		AppServers:  3,
		DataServers: 1,
		Clients:     clients,
		Net:         transport.Options{Seed: 11},
		Logic:       transferKeyed(),
		Seed:        kvSeed,
		Shards:      1,
		Workers:     inflight,
		Terminators: inflight,

		CohortWindow: 200 * time.Microsecond,
		RetainSlots:  retain,
		DrainBatch:   64,

		// Failure-free by design: generous timers so CPU load cannot fire
		// spurious suspicions mid-soak.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Second,
		ResendInterval:    5 * time.Second,
		CleanInterval:     50 * time.Millisecond,
		ClientBackoff:     5 * time.Second,
		ClientRebroadcast: 5 * time.Second,
		ComputeTimeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	checkBounded := func(when string) {
		t.Helper()
		for i := 1; i <= 3; i++ {
			if st := c.App(i).ConsensusStats(); st.LiveSlots > retain+slotSlack {
				t.Fatalf("%s: app %d holds %d live slots, want <= %d (+%d in-flight): %s",
					when, i, st.LiveSlots, retain, slotSlack, st)
			}
		}
	}

	var next atomic.Int64
	var done atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, inflight)
	for w := 0; w < inflight; w++ {
		cl := c.Client(w%clients + 1)
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(requests) {
					return
				}
				req := accts[(int(i)+w)%len(accts)] + ":" + accts[(int(i)+w+1)%len(accts)] + ":1"
				if _, err := cl.Issue(ctx, []byte(req)); err != nil {
					errs <- err
					return
				}
				done.Add(1)
			}
		}()
	}
	// Sample the gauge while the soak runs: the bound must hold throughout,
	// not just after a final quiesce.
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for done.Load() < int64(requests) {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			checkBounded(fmt.Sprintf("mid-run (%d commits)", done.Load()))
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	<-sampler

	// Let the final watermarks circulate (they ride the 10ms heartbeats),
	// then the map must sit at the retention tail.
	deadline := time.Now().Add(10 * time.Second)
	for {
		worst := uint64(0)
		for i := 1; i <= 3; i++ {
			if st := c.App(i).ConsensusStats(); st.LiveSlots > worst {
				worst = st.LiveSlots
			}
		}
		if worst <= retain+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot maps never drained to the retention tail (worst %d, want <= %d)", worst, retain+3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var prunedTotal uint64
	for i := 1; i <= 3; i++ {
		st := c.App(i).ConsensusStats()
		prunedTotal += st.SlotsPruned
		t.Logf("app %d: %s", i, st)
	}
	if prunedTotal == 0 {
		t.Fatal("soak ran with no pruning at all; GC never engaged")
	}
	mustOracle(t, c)
}

// TestRetireAbandonsUndecidedInstances extends the crash coverage: after a
// primary crash mid-batch, retirement must leave no consensus instance (or
// decided register) behind for any try of the finished requests —
// InstanceState goes empty, closing the instances/subs leak.
func TestRetireAbandonsUndecidedInstances(t *testing.T) {
	const (
		requests = 24
		inflight = 8
		accounts = 6
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("ra%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(1000)})
	}
	cfg := Config{
		Shards:      1,
		Logic:       transferKeyed(),
		Seed:        seed,
		Workers:     inflight,
		Terminators: inflight,
	}
	cohortKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		req := accts[i%accounts] + ":" + accts[(i+1)%accounts] + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- err
			}
		}()
		if i == requests/3 {
			// Crash the primary mid-batch: in-flight register proposals on
			// the survivors may never decide (the exact leak Retire must
			// now clean via Abandon).
			c.CrashApp(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	mustOracle(t, c)

	// Every request is delivered; the client will never retransmit, so
	// retiring every try of every request is safe — and must empty the
	// consensus maps on the survivors. A delivery's Tries is the highest
	// try the client ever started, so it bounds the register keys.
	deliveries := c.Client(1).Delivered()
	if len(deliveries) != requests {
		t.Fatalf("delivered %d results, want %d", len(deliveries), requests)
	}
	for _, d := range deliveries {
		c.Retire(d.RID.Request(), d.Tries)
	}
	for i := 2; i <= 3; i++ {
		app := c.App(i)
		if app == nil {
			t.Fatalf("app %d unexpectedly down", i)
		}
		for _, d := range deliveries {
			for try := uint64(1); try <= d.Tries; try++ {
				rid := id.ResultID{Client: d.RID.Client, Seq: d.RID.Seq, Try: try}
				for _, key := range []msg.RegKey{
					{Array: msg.RegA, RID: rid},
					{Array: msg.RegD, RID: rid},
				} {
					if _, _, ok := app.InstanceState(key); ok {
						t.Errorf("app %d: instance %s survived Retire", i, key)
					}
				}
				if _, ok := app.Registers().ReadA(rid); ok {
					t.Errorf("app %d: regA[%s] survived Retire", i, rid)
				}
			}
		}
		if known := app.Registers().KnownTries(); len(known) != 0 {
			t.Errorf("app %d still knows %d tries after full retirement: %v", i, len(known), known)
		}
	}
}
