package cluster

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/transport"
)

// TestSoakRandomFaults is the long randomized campaign: concurrent clients
// keep transferring while a fault injector crashes the current primary
// (keeping a majority), crashes and recovers the database, partitions and
// heals links — and at the end every invariant must hold and the books must
// balance exactly.
func TestSoakRandomFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		clients   = 3
		perClient = 6
		amount    = 5
		initial   = int64(100000)
	)
	cfg := Config{
		Logic:   transferLogic(),
		Seed:    seedAccounts(initial),
		Clients: clients,
		Net:     transport.Options{Jitter: 300 * time.Microsecond, Seed: 21},
	}
	fastKnobs(&cfg)
	cfg.ComputeTimeout = 10 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	stop := make(chan struct{})
	var injector sync.WaitGroup
	injector.Add(1)
	go func() {
		defer injector.Done()
		rng := rand.New(rand.NewSource(9))
		crashedApps := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(20+rng.Intn(40)) * time.Millisecond):
			}
			switch rng.Intn(4) {
			case 0:
				// Crash an app server, but never lose the majority: with 3
				// servers we may crash exactly one in the whole run.
				if crashedApps == 0 {
					c.CrashApp(1)
					crashedApps++
				}
			case 1:
				c.CrashDB(1)
				time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
				if err := c.RecoverDB(1); err != nil {
					t.Errorf("recover: %v", err)
					return
				}
			case 2:
				// Transient partition of one backup from everyone else.
				app := id.AppServer(2 + rng.Intn(2))
				var rest []id.NodeID
				for _, n := range c.AppIDs() {
					if n != app {
						rest = append(rest, n)
					}
				}
				rest = append(rest, c.DBIDs()...)
				rest = append(rest, id.Client(1), id.Client(2), id.Client(3))
				c.Net.Partition([]id.NodeID{app}, rest)
				time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
				c.Net.Heal()
			case 3:
				// quiet interval
			}
		}
	}()

	var wg sync.WaitGroup
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				_, err := c.Client(cl).Issue(ctx, []byte(strconv.Itoa(amount)))
				cancel()
				if err != nil {
					t.Errorf("client %d request %d: %v", cl, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	injector.Wait()

	// The database may be down at the end of the campaign; bring it back.
	if c.Engine(1) == nil {
		if err := c.RecoverDB(1); err != nil {
			t.Fatal(err)
		}
	}
	total := int64(clients * perClient * amount)
	mustBalances(t, c, 1, initial-total, total)
	mustOracle(t, c)
}

// TestSoakReplicatedKillPrimary is the replicated-tier soak of the failover
// scenario: concurrent clients keep transferring against a factor-3 replica
// group monitored by the real heartbeat detectors (nothing scripted) while
// the primary is killed mid-campaign. Every request must still commit
// exactly once, progress must never stall for longer than a promotion takes,
// exactly one promotion must happen, and the books must balance on the
// promoted primary.
func TestSoakReplicatedKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		clients   = 3
		perClient = 10
		amount    = 2
		initial   = int64(100000)
	)
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(initial),
		Clients:       clients,
		ReplicaFactor: 3,
		Net:           transport.Options{Jitter: 200 * time.Microsecond, Seed: 33},
	}
	fastKnobs(&cfg)
	cfg.ComputeTimeout = 10 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Completion trace: the longest gap between consecutive commits bounds
	// "throughput never reaches zero" without depending on absolute speed.
	var traceMu sync.Mutex
	var trace []time.Time

	killer := make(chan struct{})
	var killed sync.WaitGroup
	killed.Add(1)
	go func() {
		defer killed.Done()
		select {
		case <-killer:
		case <-time.After(60 * time.Second):
		}
		c.CrashDB(1)
	}()

	var wg sync.WaitGroup
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if cl == 1 && i == perClient/2 {
					close(killer) // kill the primary mid-load, exactly once
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				_, err := c.Client(cl).Issue(ctx, []byte(strconv.Itoa(amount)))
				cancel()
				if err != nil {
					t.Errorf("client %d request %d: %v", cl, i, err)
					return
				}
				traceMu.Lock()
				trace = append(trace, time.Now())
				traceMu.Unlock()
			}
		}()
	}
	wg.Wait()
	killed.Wait()
	if t.Failed() {
		return
	}

	promos, lats := c.Promotions()
	if promos != 1 {
		t.Fatalf("promotions = %d (latencies %v), want exactly 1", promos, lats)
	}
	var worst time.Duration
	for i := 1; i < len(trace); i++ {
		if gap := trace[i].Sub(trace[i-1]); gap > worst {
			worst = gap
		}
	}
	// A promotion costs roughly suspicion + drain; anything near the request
	// deadline means throughput actually hit zero for the duration.
	if worst > 20*time.Second {
		t.Fatalf("commit stream stalled for %v", worst)
	}
	t.Logf("promotion latency %v, worst commit gap %v over %d commits", lats[0], worst, len(trace))

	cur := c.View().Current(id.DBServer(1))
	total := int64(clients * perClient * amount)
	mustBalances(t, c, cur.Index, initial-total, total)
	mustOracle(t, c)
}
