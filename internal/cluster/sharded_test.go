package cluster

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/transport"
)

// findAccount returns an account name whose key is homed on the given shard
// under the hash placement of a `shards`-wide tier.
func findAccount(shards, shard int, tag string) string {
	name, ok := placement.KeyedName(placement.Hash(shards), shard, tag,
		func(n string) string { return "acct/" + n })
	if !ok {
		panic(fmt.Sprintf("no %s* account homed on shard %d/%d", tag, shard, shards))
	}
	return name
}

// transferKeyed moves amount from acct/<src> to acct/<dst> through the keyed
// Tx API: same-shard pairs commit through the one-shard fast path,
// cross-shard pairs produce a two-participant dlist.
func transferKeyed() core.Logic {
	return core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		parts := strings.SplitN(string(req), ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad request %q", req)
		}
		amount, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, err
		}
		if _, err := tx.Add(ctx, "acct/"+parts[0], -amount); err != nil {
			return nil, err
		}
		bal, err := tx.Add(ctx, "acct/"+parts[1], amount)
		if err != nil {
			return nil, err
		}
		if err := tx.CheckAtLeast(ctx, "acct/"+parts[0], 0); err != nil {
			return nil, err
		}
		return []byte(strconv.FormatInt(bal, 10)), nil
	})
}

// TestShardedSingleShardCommitContactsOnlyHomeShard is the participant-set
// certificate at the protocol level: on a 4-shard tier, a transaction that
// stays on one shard must send Prepare and Decide to its home shard and to
// nothing else — the pre-sharding broadcast contacted all 4.
func TestShardedSingleShardCommitContactsOnlyHomeShard(t *testing.T) {
	cfg := Config{Shards: 4, Logic: transferKeyed()}
	fastKnobs(&cfg)
	acct := findAccount(4, 2, "solo")
	cfg.Seed = []kv.Write{{Key: "acct/" + acct, Val: kv.EncodeInt(100)}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var mu sync.Mutex
	targets := make(map[id.NodeID]map[msg.Kind]int)
	c.Net.AddSniffer(func(ev transport.SniffEvent) {
		if ev.Dropped || ev.To.Role != id.RoleDBServer {
			return
		}
		kind := ev.Payload.Kind()
		if kind != msg.KindPrepare && kind != msg.KindDecide {
			return
		}
		mu.Lock()
		if targets[ev.To] == nil {
			targets[ev.To] = make(map[msg.Kind]int)
		}
		targets[ev.To][kind]++
		mu.Unlock()
	})

	if res := issue(t, c, 1, acct+":"+acct+":0"); string(res) != "100" {
		t.Errorf("result = %q, want 100", res)
	}
	home := c.Placement().Home("acct/" + acct)

	mu.Lock()
	defer mu.Unlock()
	for db, kinds := range targets {
		if db != home {
			t.Errorf("non-participant %s received %v (home is %s)", db, kinds, home)
		}
	}
	if targets[home][msg.KindPrepare] == 0 || targets[home][msg.KindDecide] == 0 {
		t.Errorf("home shard %s saw prepare/decide %v, want both", home, targets[home])
	}
	mustOracle(t, c)
}

// TestShardedOracleUnderCrashRecovery drives a mixed single-/cross-shard
// workload over a 4-shard tier while one shard crashes and recovers and the
// primary application server dies mid-commit, then holds the run against
// the paper's properties.
func TestShardedOracleUnderCrashRecovery(t *testing.T) {
	const shards = 4
	// One account per shard, each transfer moves 1 between a deterministic
	// pair (same-shard and cross-shard pairs both occur).
	accts := make([]string, shards)
	for s := 0; s < shards; s++ {
		accts[s] = findAccount(shards, s, fmt.Sprintf("s%d-", s))
	}
	var crashed atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Shards: shards,
		Logic:  transferKeyed(),
		Hooks: func(self id.NodeID) *core.Hooks {
			if self != id.AppServer(1) {
				return nil
			}
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					// Kill the primary mid-commit: the decision is in regD
					// but termination has not started. The surviving
					// servers must finish it against the participants the
					// register records.
					if p == core.PointAfterRegD && rid.Seq >= 4 && crashed.CompareAndSwap(false, true) {
						cRef.Load().CrashApp(1)
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	cfg.Workers = 4
	for _, a := range accts {
		cfg.Seed = append(cfg.Seed, kv.Write{Key: "acct/" + a, Val: kv.EncodeInt(1000)})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const requests = 24
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		src, dst := accts[i%shards], accts[(i+i/shards)%shards]
		req := src + ":" + dst + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
		if i == requests/3 {
			c.CrashDB(2)
		}
		if i == 2*requests/3 {
			if err := c.RecoverDB(2); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(3 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !crashed.Load() {
		t.Error("the primary was never crashed mid-commit")
	}

	// Transfers are conservative: the sum over all shards must be exactly
	// the seeded total (every request committed exactly once).
	var total int64
	for s := 0; s < shards; s++ {
		bal, err := c.Engine(s + 1).Store().GetInt("acct/" + accts[s])
		if err != nil {
			t.Fatalf("read %s: %v", accts[s], err)
		}
		total += bal
	}
	if total != int64(shards)*1000 {
		t.Errorf("total balance = %d, want %d", total, shards*1000)
	}
	mustOracle(t, c)
}

// TestShardedCrossShardAbortsWhenParticipantRestarts: a cross-shard try
// loses one of its two participants between Exec and prepare. The recovered
// incarnation's empty branch must abort the try — on BOTH shards, via the
// participant dlist — and the retry must commit exactly once.
func TestShardedCrossShardAbortsWhenParticipantRestarts(t *testing.T) {
	const shards = 4
	src := findAccount(shards, 0, "x")
	dst := findAccount(shards, 1, "y")
	var fired atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Shards: shards,
		Logic:  transferKeyed(),
		Seed: []kv.Write{
			{Key: "acct/" + src, Val: kv.EncodeInt(100)},
			{Key: "acct/" + dst, Val: kv.EncodeInt(0)},
		},
		Hooks: func(self id.NodeID) *core.Hooks {
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					if p == core.PointAfterCompute && rid.Try == 1 && fired.CompareAndSwap(false, true) {
						// Restart dst's home shard (shard 1 = dbserver-2):
						// its unprepared branch evaporates.
						c := cRef.Load()
						c.CrashDB(2)
						if err := c.RecoverDB(2); err != nil {
							t.Errorf("recover: %v", err)
						}
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	defer c.Stop()

	res := issue(t, c, 1, src+":"+dst+":10")
	if string(res) != "10" {
		t.Errorf("result = %q, want 10", res)
	}
	if !fired.Load() {
		t.Fatal("participant restart hook never fired")
	}
	deliveries := c.Client(1).Delivered()
	if len(deliveries) != 1 || deliveries[0].Tries < 2 {
		t.Errorf("deliveries = %+v, want one delivery after >= 2 tries", deliveries)
	}
	// Exactly-once money movement despite the aborted first try.
	if bal, _ := c.Engine(1).Store().GetInt("acct/" + src); bal != 90 {
		t.Errorf("src balance = %d, want 90", bal)
	}
	if bal, _ := c.Engine(2).Store().GetInt("acct/" + dst); bal != 10 {
		t.Errorf("dst balance = %d, want 10", bal)
	}
	// The first try must have aborted at the surviving participant too (the
	// dlist routed the abort to shard 0, not just the restarted shard 1).
	rid1 := id.ResultID{Client: id.Client(1), Seq: deliveries[0].RID.Seq, Try: 1}
	if o, ok := c.Engine(1).Outcomes()[rid1]; !ok || o != msg.OutcomeAbort {
		t.Errorf("try 1 at src shard: outcome %v (known=%v), want abort", o, ok)
	}
	mustOracle(t, c)
}
