package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx/internal/consensus"
	"etx/internal/kv"
)

// cohortKnobs switches the wo-register layer to cohort consensus on top of
// the usual fast test timings.
func cohortKnobs(cfg *Config) {
	fastKnobs(cfg)
	cfg.ConsensusPoll = 0 // event-driven waits with the safety-net default
	cfg.CohortWindow = 500 * time.Microsecond
}

// consensusTotals sums the consensus counters over every live app server
// (gauges — LiveSlots, Applied, Floor — take the maximum instead).
func consensusTotals(c *Cluster, apps int) consensus.Stats {
	var total consensus.Stats
	for i := 1; i <= apps; i++ {
		if a := c.App(i); a != nil {
			st := a.ConsensusStats()
			total.Instances += st.Instances
			total.Proposes += st.Proposes
			total.Rounds += st.Rounds
			total.Messages += st.Messages
			total.FastPath += st.FastPath
			total.BatchOps += st.BatchOps
			total.Resends += st.Resends
			total.SlotsPruned += st.SlotsPruned
			total.CheckpointsServed += st.CheckpointsServed
			total.CheckpointsInstalled += st.CheckpointsInstalled
			total.Abandoned += st.Abandoned
			total.LiveSlots = max(total.LiveSlots, st.LiveSlots)
			total.Applied = max(total.Applied, st.Applied)
			total.Floor = max(total.Floor, st.Floor)
		}
	}
	return total
}

// runCohortWorkload drives `requests` pipelined disjoint transfers (every
// account pays 1 to the next, round-robin) and returns the per-account
// balances. Identical inputs must produce identical final balances whether
// or not cohort batching is on: every request commits exactly once and the
// adds commute.
func runCohortWorkload(t *testing.T, c *Cluster, accts []string, requests, inflight int) map[string]int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		src := accts[i%len(accts)]
		dst := accts[(i+1)%len(accts)]
		req := src + ":" + dst + ":1"
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	balances := make(map[string]int64, len(accts))
	for _, a := range accts {
		bal, err := c.Engine(1).Store().GetInt("acct/" + a)
		if err != nil {
			t.Fatalf("read %s: %v", a, err)
		}
		balances[a] = bal
	}
	return balances
}

// TestCohortParityWithUnbatched runs the same pipelined workload with cohort
// consensus off (window 0 — today's one-instance-per-write discipline) and
// on, and asserts the decided outcomes match: both runs satisfy the
// A.1/A.2/A.3/V.1 oracle and produce identical balances. The batched run
// must also pay strictly fewer consensus instances and messages, and the
// window-0 run must show the per-write instance counts (two local proposals
// per commit) that define today's behaviour.
func TestCohortParityWithUnbatched(t *testing.T) {
	const (
		requests = 48
		inflight = 16
		accounts = 8
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("co%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(100)})
	}

	run := func(cohort bool, retain int) (map[string]int64, consensus.Stats) {
		cfg := Config{
			Shards:      1,
			Logic:       transferKeyed(),
			Seed:        seed,
			Workers:     inflight,
			Terminators: inflight,
			RetainSlots: retain,
		}
		if cohort {
			cohortKnobs(&cfg)
		} else {
			fastKnobs(&cfg)
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		balances := runCohortWorkload(t, c, accts, requests, inflight)
		mustOracle(t, c)
		return balances, consensusTotals(c, 3)
	}

	plainBal, plainStats := run(false, 0)
	cohortBal, cohortStats := run(true, 0)
	// Checkpointed truncation must be invisible to the decided outcomes:
	// the same workload with a small retention tail lands on the same
	// balances (the bounded-memory and catch-up properties have their own
	// suites; parity here is about values, not memory).
	gcBal, gcStats := run(true, 1)

	for a, want := range plainBal {
		if got := cohortBal[a]; got != want {
			t.Errorf("balance of %s diverged: window 0 = %d, cohort = %d", a, want, got)
		}
		if got := gcBal[a]; got != want {
			t.Errorf("balance of %s diverged under truncation: window 0 = %d, cohort+GC = %d", a, want, got)
		}
	}
	// Window 0 parity: the executor runs one instance per register write —
	// two local proposals per commit (retries under false suspicion can only
	// add more).
	if plainStats.Proposes < 2*requests {
		t.Errorf("window 0 ran %d proposals for %d requests, want >= %d (2 per commit)",
			plainStats.Proposes, requests, 2*requests)
	}
	if cohortStats.Proposes >= plainStats.Proposes {
		t.Errorf("cohort batching did not share instances: %d proposals vs %d unbatched",
			cohortStats.Proposes, plainStats.Proposes)
	}
	if cohortStats.Messages >= plainStats.Messages {
		t.Errorf("cohort batching did not cut consensus messages: %d vs %d unbatched",
			cohortStats.Messages, plainStats.Messages)
	}
	if cohortStats.BatchOps == 0 {
		t.Error("no register ops were decided through batch slots; cohort path never engaged")
	}
	// RetainSlots=0 is the pre-GC behaviour exactly: no floor movement, no
	// pruning, no checkpoints.
	if plainStats.SlotsPruned != 0 || plainStats.Floor != 0 || plainStats.CheckpointsServed != 0 {
		t.Errorf("window 0 ran GC machinery: %s", plainStats)
	}
	if cohortStats.SlotsPruned != 0 || cohortStats.Floor != 0 {
		t.Errorf("cohort without RetainSlots ran GC machinery: %s", cohortStats)
	}
	t.Logf("window 0:  %s", plainStats)
	t.Logf("cohort:    %s", cohortStats)
	t.Logf("cohort+gc: %s", gcStats)
}

// TestCohortPrimaryCrashMidBatch crashes the primary application server —
// the preferred sequencer and round-1 slot coordinator — while a pipelined
// run is in flight. Every request must still commit exactly once (clients
// fail over, surviving servers re-execute or finish the orphaned tries, and
// cohorts re-route to the next sequencer), money must be conserved, and the
// A.1 oracle must hold over the batched decisions.
func TestCohortPrimaryCrashMidBatch(t *testing.T) {
	const (
		requests = 24
		inflight = 8
		accounts = 6
	)
	accts := make([]string, accounts)
	var seed []kv.Write
	for i := range accts {
		accts[i] = fmt.Sprintf("cx%02d", i)
		seed = append(seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(1000)})
	}
	cfg := Config{
		Shards:      1,
		Logic:       transferKeyed(),
		Seed:        seed,
		Workers:     inflight,
		Terminators: inflight,
	}
	cohortKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		src := accts[i%accounts]
		dst := accts[(i+1)%accounts]
		req := src + ":" + dst + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
		if i == requests/3 {
			// Mid-batch: cohorts are in flight on the primary right now.
			c.CrashApp(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var total int64
	for _, a := range accts {
		bal, err := c.Engine(1).Store().GetInt("acct/" + a)
		if err != nil {
			t.Fatalf("read %s: %v", a, err)
		}
		total += bal
	}
	if total != int64(accounts)*1000 {
		t.Errorf("total balance = %d, want %d (money not conserved across the crash)", total, accounts*1000)
	}
	mustOracle(t, c)
}
