package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"etx/internal/kv"
)

// batchKnobs switches the whole commit path to group commit and batching on
// top of the usual fast test timings.
func batchKnobs(cfg *Config) {
	fastKnobs(cfg)
	cfg.BatchWindow = 500 * time.Microsecond
}

// TestBatchingEngagesAndHoldsOracle: on one shard with a real fsync cost and
// 32 pipelined requests, the group-commit combiner must actually combine —
// fewer device forces than forced writes — while every request commits
// exactly once and the A.1/A.2/A.3/V.1 oracle holds.
func TestBatchingEngagesAndHoldsOracle(t *testing.T) {
	const requests = 32
	cfg := Config{
		Shards:       1,
		Logic:        transferKeyed(),
		ForceLatency: 2 * time.Millisecond,
		Workers:      requests,
		Terminators:  requests,
	}
	batchKnobs(&cfg)
	accts := make([]string, requests)
	for i := range accts {
		accts[i] = fmt.Sprintf("b%02d", i)
		cfg.Seed = append(cfg.Seed, kv.Write{Key: "acct/" + accts[i], Val: kv.EncodeInt(100)})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st := c.Engine(1).StableStore()
	syncBase, forceBase := st.Syncs(), st.ForcedWrites()

	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		// Disjoint same-shard pairs (self-transfer): no lock contention, one
		// participant each — the commit path is the only bottleneck.
		req := accts[i] + ":" + accts[i] + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	syncs := st.Syncs() - syncBase
	forces := st.ForcedWrites() - forceBase
	if syncs == 0 {
		t.Fatal("no device forces recorded: the commit path did not run")
	}
	// Serialized, every commit pays two device forces (prepare + commit).
	// Combining — whether through the force combiner (many forced writes
	// sharing a sync) or the batched vote/decide entry points (one Sync
	// covering a drained batch's unforced appends) — must land far below
	// that; anywhere near 2*requests means nothing combined.
	if syncs >= int64(requests) {
		t.Errorf("Syncs = %d for %d requests (forced writes = %d): group commit never combined", syncs, requests, forces)
	}
	mustOracle(t, c)
}

// TestBatchingShardedOracleUnderCrashRecovery reruns the sharded
// crash/recovery suite with the batching stack on: a 4-shard tier, mixed
// same- and cross-shard transfers, a database crash and recovery mid-run.
// Batched votes, acks and group-committed records must preserve money
// conservation and the oracle.
func TestBatchingShardedOracleUnderCrashRecovery(t *testing.T) {
	const shards = 4
	accts := make([]string, shards)
	for s := 0; s < shards; s++ {
		accts[s] = findAccount(shards, s, fmt.Sprintf("g%d-", s))
	}
	cfg := Config{
		Shards:       shards,
		Logic:        transferKeyed(),
		ForceLatency: time.Millisecond,
		Workers:      4,
	}
	batchKnobs(&cfg)
	for _, a := range accts {
		cfg.Seed = append(cfg.Seed, kv.Write{Key: "acct/" + a, Val: kv.EncodeInt(1000)})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const requests = 24
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		src, dst := accts[i%shards], accts[(i+i/shards)%shards]
		req := src + ":" + dst + ":1"
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Client(1).Issue(ctx, []byte(req)); err != nil {
				errs <- fmt.Errorf("issue %s: %w", req, err)
			}
		}()
		if i == requests/3 {
			c.CrashDB(2)
		}
		if i == 2*requests/3 {
			if err := c.RecoverDB(2); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(3 * time.Millisecond)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var total int64
	for s := 0; s < shards; s++ {
		bal, err := c.Engine(s + 1).Store().GetInt("acct/" + accts[s])
		if err != nil {
			t.Fatalf("read %s: %v", accts[s], err)
		}
		total += bal
	}
	if total != int64(shards)*1000 {
		t.Errorf("total balance = %d, want %d", total, shards*1000)
	}
	mustOracle(t, c)
}
