package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
)

// replDetectors builds a per-node scripted-detector registry for the data
// tier, so tests trigger promotions deterministically instead of waiting for
// heartbeat timeouts.
type replDetectors struct {
	mu   sync.Mutex
	dets map[id.NodeID]*fd.Scripted
}

func newReplDetectors() *replDetectors {
	return &replDetectors{dets: make(map[id.NodeID]*fd.Scripted)}
}

func (r *replDetectors) factory() func(self id.NodeID) fd.Detector {
	return func(self id.NodeID) fd.Detector {
		r.mu.Lock()
		defer r.mu.Unlock()
		if d, ok := r.dets[self]; ok {
			return d
		}
		d := fd.NewScripted()
		r.dets[self] = d
		return d
	}
}

// suspectEverywhere makes every data-tier detector suspect node.
func (r *replDetectors) suspectEverywhere(node id.NodeID, suspected bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, d := range r.dets {
		d.Set(node, suspected)
	}
}

// waitPromotions blocks until the cluster reports at least n completed
// promotions.
func waitPromotions(t *testing.T, c *Cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got, _ := c.Promotions(); got >= n {
			return
		}
		if time.Now().After(deadline) {
			got, _ := c.Promotions()
			t.Fatalf("promotions = %d, want >= %d", got, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaFactorOneIsUnchanged pins the off switch: ReplicaFactor 1 (or
// unset) instantiates none of the replication machinery and behaves exactly
// like the pre-replication deployment.
func TestReplicaFactorOneIsUnchanged(t *testing.T) {
	cfg := Config{Logic: transferLogic(), Seed: seedAccounts(100), ReplicaFactor: 1}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if c.View() != nil {
		t.Fatal("ReplicaFactor 1 must not build a replica view")
	}
	if c.Streamer(1) != nil {
		t.Fatal("ReplicaFactor 1 must not build a streamer")
	}
	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 90, 10)
	mustOracle(t, c)
	if n := c.StaleRejects(); n != 0 {
		t.Fatalf("stale rejects = %d on an unreplicated deployment", n)
	}
}

// TestBackupsApplyStream: on a replicated shard, committed effects appear in
// every live backup's write-ahead log (via the stream), so the group's
// storage converges without the backups taking any part in 2PC.
func TestBackupsApplyStream(t *testing.T) {
	dets := newReplDetectors()
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(100),
		ReplicaFactor: 3,
		DBDetector:    dets.factory(),
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	issue(t, c, 1, "10")
	issue(t, c, 1, "5")
	mustBalances(t, c, 1, 85, 15)

	// The primary streamed everything; wait until both backups drained it.
	st := c.Streamer(1)
	if st == nil {
		t.Fatal("primary has no streamer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Lag() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream lag stuck at %d", st.Lag())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, i := range []int{2, 3} {
		b := c.Backup(i)
		if b == nil {
			t.Fatalf("db-%d is not running as a backup", i)
		}
		if _, seq := b.Applied(); seq != st.Seq() {
			t.Fatalf("backup db-%d applied through %d, stream at %d", i, seq, st.Seq())
		}
	}
	mustOracle(t, c)
}

// TestKillPrimaryPromotesBackup is the tentpole scenario in miniature: the
// shard's primary is crashed, the deterministic successor replays its log
// tail and takes over, the application tier re-routes by epoch, and
// committed state survives byte-exact — conservation holds on the promoted
// node.
func TestKillPrimaryPromotesBackup(t *testing.T) {
	dets := newReplDetectors()
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(100),
		ReplicaFactor: 3,
		DBDetector:    dets.factory(),
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	issue(t, c, 1, "10")
	mustBalances(t, c, 1, 90, 10)

	c.CrashDB(1)
	dets.suspectEverywhere(id.DBServer(1), true)
	waitPromotions(t, c, 1)

	// db-2 is the deterministic successor (lowest-ranked live member).
	if got := c.View().Current(id.DBServer(1)); got != id.DBServer(2) {
		t.Fatalf("shard promoted to %s, want db-2", got)
	}
	if _, ep := c.View().Primary(0); ep != 2 {
		t.Fatalf("epoch = %d, want 2", ep)
	}

	// The promoted primary serves new requests against the replicated state.
	issue(t, c, 1, "5")
	issue(t, c, 1, "5")
	mustBalances(t, c, 2, 80, 20)
	mustOracle(t, c)

	if n, lats := c.Promotions(); n != 1 {
		t.Fatalf("promotions = %d (latencies %v), want exactly 1", n, lats)
	}
}

// TestPromotionCommitsInDoubtBranch is the replay guarantee under 2PC: the
// primary crashes after voting yes but before the decide reaches it. The
// prepared record was streamed before the vote left, so the promoted backup
// holds the branch in-doubt; the retried Decide commits it there, and the
// client's original try succeeds without recomputation — same result, not
// re-execution.
func TestPromotionCommitsInDoubtBranch(t *testing.T) {
	dets := newReplDetectors()
	var fired atomic.Bool
	var cRef atomic.Pointer[Cluster]
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(100),
		ReplicaFactor: 2,
		DBDetector:    dets.factory(),
		Hooks: func(self id.NodeID) *core.Hooks {
			return &core.Hooks{
				Crash: func(p core.CrashPoint, rid id.ResultID) {
					if p == core.PointAfterPrepare && rid.Try == 1 && fired.CompareAndSwap(false, true) {
						c := cRef.Load()
						c.CrashDB(1)
						dets.suspectEverywhere(id.DBServer(1), true)
					}
				},
			}
		},
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cRef.Store(c)
	defer c.Stop()

	res := issue(t, c, 1, "10")
	if string(res) != "10" {
		t.Errorf("result = %q", res)
	}
	if !fired.Load() {
		t.Fatal("crash hook never fired")
	}
	waitPromotions(t, c, 1)
	deliveries := c.Client(1).Delivered()
	if len(deliveries) != 1 || deliveries[0].Tries != 1 {
		t.Errorf("deliveries = %+v, want the original try committed via replay, not recomputed", deliveries)
	}
	mustBalances(t, c, 2, 90, 10)
	mustOracle(t, c)
}

// TestFalseSuspicionFencedByEpoch: the primary is alive but the backup's
// detector wrongly suspects it. The backup promotes; the application tier
// advances to the higher epoch, rejects the stale primary's in-flight
// replies (staleRejects > 0), and the correction deposes the old primary so
// it stops serving. Exactly-once must survive the split-brain window.
func TestFalseSuspicionFencedByEpoch(t *testing.T) {
	dets := newReplDetectors()
	slowLogic := core.LogicFunc(func(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
		db := tx.DBs()[0]
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(120 * time.Millisecond)}); err != nil {
			return nil, err
		}
		if _, err := tx.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/dst", Delta: 1}); err != nil {
			return nil, err
		}
		return []byte("done"), nil
	})
	cfg := Config{
		Logic:         slowLogic,
		Seed:          seedAccounts(0),
		ReplicaFactor: 2,
		DBDetector:    dets.factory(),
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Fire the false suspicion while the op sleeps inside the live primary,
	// so its reply lands after the view has moved on.
	go func() {
		time.Sleep(30 * time.Millisecond)
		dets.suspectEverywhere(id.DBServer(1), true)
	}()

	res := issue(t, c, 1, "x")
	if string(res) != "done" {
		t.Errorf("result = %q", res)
	}
	waitPromotions(t, c, 1)

	// The fence fired: stale replies were rejected by epoch…
	deadline := time.Now().Add(5 * time.Second)
	for c.StaleRejects() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no stale-epoch rejections despite a deposed live primary")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// …and the correction deposed the old primary.
	srv := c.DataServer(1)
	if srv == nil {
		t.Fatal("old primary's server vanished")
	}
	for !srv.Deposed() {
		if time.Now().After(deadline) {
			t.Fatal("old primary never deposed itself")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Exactly-once: the effect exists exactly once on the serving replica.
	dst, _ := c.Engine(2).Store().GetInt("acct/dst")
	if dst != 1 {
		t.Errorf("dst = %d on promoted primary, want exactly-once", dst)
	}
	mustOracle(t, c)
}

// TestKillPrimaryUnderLoad crashes a primary while several clients pipeline
// transfers. Every request must still complete exactly-once, conservation
// must hold on the promoted replica, and exactly one promotion must happen.
func TestKillPrimaryUnderLoad(t *testing.T) {
	const clients = 3
	const perClient = 6
	dets := newReplDetectors()
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(1000),
		Clients:       clients,
		Workers:       2,
		ReplicaFactor: 2,
		DBDetector:    dets.factory(),
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	var wg sync.WaitGroup
	for cl := 1; cl <= clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				if _, err := c.Client(cl).Issue(ctx, []byte("10")); err != nil {
					t.Errorf("client %d: %v", cl, err)
				}
				cancel()
			}
		}()
	}

	// Kill the primary mid-load.
	time.Sleep(60 * time.Millisecond)
	c.CrashDB(1)
	dets.suspectEverywhere(id.DBServer(1), true)
	waitPromotions(t, c, 1)
	wg.Wait()

	total := int64(clients * perClient * 10)
	mustBalances(t, c, 2, 1000-total, total)
	mustOracle(t, c)
	if n, _ := c.Promotions(); n != 1 {
		t.Fatalf("promotions = %d, want exactly 1", n)
	}
}

// TestRecoveredPrimaryRejoinsAsBackup: a deposed primary that comes back
// after a promotion rejoins its group as a backup, adopts the new primary's
// stream (full resync) and converges on the serving replica's log.
func TestRecoveredPrimaryRejoinsAsBackup(t *testing.T) {
	dets := newReplDetectors()
	cfg := Config{
		Logic:         transferLogic(),
		Seed:          seedAccounts(100),
		ReplicaFactor: 2,
		DBDetector:    dets.factory(),
	}
	fastKnobs(&cfg)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	issue(t, c, 1, "10")
	c.CrashDB(1)
	dets.suspectEverywhere(id.DBServer(1), true)
	waitPromotions(t, c, 1)
	issue(t, c, 1, "5")
	mustBalances(t, c, 2, 85, 15)

	// The old primary recovers: accuracy is restored and it rejoins as a
	// backup of the promoted primary.
	dets.suspectEverywhere(id.DBServer(1), false)
	if err := c.RecoverDB(1); err != nil {
		t.Fatal(err)
	}
	if c.Backup(1) == nil {
		t.Fatal("recovered deposed primary must rejoin as a backup")
	}

	issue(t, c, 1, "5")
	mustBalances(t, c, 2, 80, 20)

	// The rejoined backup converges on the serving primary's stream.
	st := c.Streamer(2)
	if st == nil {
		t.Fatal("promoted primary has no streamer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, seq := c.Backup(1).Applied()
		if st.Lag() == 0 && seq == st.Seq() && seq > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined backup stuck: applied %d, stream %d, lag %d", seq, st.Seq(), st.Lag())
		}
		time.Sleep(2 * time.Millisecond)
	}
	mustOracle(t, c)
}
