// Package cluster assembles full in-process deployments of the e-Transaction
// stack — m application servers, n database servers, k clients over one
// in-memory network — and provides the fault-injection controls and the
// correctness oracle the integration tests and experiments use.
//
// Failure model knobs follow the paper's Section 2: application servers and
// clients crash (and stay down — a majority of app servers must survive),
// database servers crash and recover with their stable storage intact.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
	"etx/internal/placement"
	"etx/internal/rchan"
	"etx/internal/repl"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/wal"
	"etx/internal/xadb"
)

// Config parameterizes a deployment.
type Config struct {
	// AppServers is the middle-tier size (default 3: tolerate one crash with
	// a majority, as in the paper's analysis).
	AppServers int
	// DataServers is the database-tier size (default 1, the paper's setup).
	DataServers int
	// Shards splits the database tier into key-homed shards: it sets the
	// database-tier size (DataServers must be 0 or equal), installs keyed
	// placement on every application server, and seeds each database with
	// only the keys it owns. 0 keeps the paper's unsharded tier, where every
	// database receives the full seed image.
	Shards int
	// Placement overrides the partitioner for a sharded deployment (default
	// hash). Its Shards() must equal Shards.
	Placement placement.Policy
	// Clients is the front-tier size (default 1).
	Clients int
	// Net configures the in-memory network.
	Net transport.Options
	// Reliable wraps every endpoint in the reliable-channel layer
	// (retransmission + duplicate suppression). Required for correctness
	// whenever Net configures loss or duplication; harmless otherwise.
	Reliable bool
	// Retransmit is the reliable-channel resend period (default 25ms).
	Retransmit time.Duration
	// Logic is the business logic installed on every application server.
	Logic core.Logic
	// ForceLatency is the simulated fsync cost of database stable storage.
	ForceLatency time.Duration
	// BatchWindow switches the whole commit path to group commit and message
	// batching: the databases' stable stores combine concurrent forced
	// writes into shared fsyncs (window = leader accumulation time), the
	// database servers drain their mailboxes and serve Prepare/Decide as
	// batches, and the application servers aggregate commit fan-out to the
	// same participant into Batch envelopes. 0 (the default) keeps the
	// serialized one-fsync-per-forced-write behaviour.
	BatchWindow time.Duration
	// MaxBatch caps group-commit cohorts, mailbox drains and outbound Batch
	// envelopes (default 64; only meaningful with BatchWindow set).
	MaxBatch int
	// DrainBatch independently enables the database servers' windowless
	// mailbox-drain batching (serve a whole drained batch of Prepares and
	// Decides through the engine's batched entry points, one reply envelope
	// per app server) without the rest of the BatchWindow stack. The drain
	// never waits, so it has no latency cost. 0 follows BatchWindow.
	DrainBatch int
	// CohortWindow switches the application servers' wo-register layer to
	// cohort consensus: concurrent register writes share batch-consensus
	// slots (one instance per cohort) instead of running one consensus
	// instance each. 0 (the default) keeps the paper's one-instance-per-
	// write discipline. The knob is deployment-wide: every application
	// server gets the same setting.
	CohortWindow time.Duration
	// MaxCohort caps the register ops in one consensus slot (default 64;
	// only meaningful with CohortWindow set).
	MaxCohort int
	// AdaptiveWindows makes every batching window self-tuning: application
	// servers sample their in-flight depth and collapse outbound-batch and
	// cohort caps to one at depth 1 while widening them under pipelining,
	// and the databases' stable stores run a minimal group-commit window so
	// lone writers never pay leader accumulation. When set, BatchWindow
	// defaults to 500µs and CohortWindow to 100µs if unset. Deployment-wide.
	AdaptiveWindows bool
	// RetainSlots bounds the cohort-consensus batch log by checkpointed
	// truncation: decided slots below the cluster-wide minimum applied
	// watermark minus this retention tail are pruned, and laggards past the
	// tail catch up via checkpoint state transfer. 0 (the default) retains
	// every decided slot forever. Deployment-wide, like CohortWindow.
	RetainSlots int
	// LockTimeout is the databases' lock-wait bound.
	LockTimeout time.Duration
	// QueueExec switches the database tier to queue-oriented deterministic
	// batch execution: each engine runs speculative per-key chains instead
	// of the lock manager (internal/xadb/spec.go) and each data server
	// plans its mailbox drains into per-key run queues
	// (internal/core/planner.go). Off — the default — keeps the paper-exact
	// strict-2PL execution.
	QueueExec bool
	// Seed is the initial content of every database.
	Seed []kv.Write
	// ReplicaFactor gives every shard a replica group of this size: the boot
	// primary plus ReplicaFactor-1 asynchronous backups (internal/repl), with
	// detector-driven promotion when the primary is suspected. Backup member
	// k (1-based) of shard s (0-based) runs as DBServer(s+1+k*S) where S is
	// the shard count, so the boot primaries keep their unreplicated
	// identities. 1 — the default — is the paper-exact unreplicated tier:
	// none of the replication machinery is instantiated and every code path
	// is byte-identical to the pre-replication behaviour.
	ReplicaFactor int
	// DBDetector, if set, overrides the failure detector each backup monitors
	// its replica group with (tests inject fd.Scripted for deterministic
	// promotions). Nil runs heartbeat detectors inside each group.
	DBDetector func(self id.NodeID) fd.Detector

	// Knobs forwarded to the processes (zero = package defaults).
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	ConsensusPoll     time.Duration
	ResendInterval    time.Duration
	CleanInterval     time.Duration
	ComputeTimeout    time.Duration
	ClientBackoff     time.Duration
	ClientRebroadcast time.Duration
	ClientMaxInFlight int
	Workers           int
	Terminators       int

	// Hooks, if set, supplies per-application-server instrumentation.
	Hooks func(self id.NodeID) *core.Hooks
	// Detector, if set, overrides the failure detector per app server.
	Detector func(self id.NodeID) fd.Detector
}

type dbNode struct {
	srv      *core.DataServer
	engine   *xadb.Engine
	store    *stablestore.Store
	streamer *repl.Streamer // nil when unreplicated
}

// repNode is a shard backup: a stream applier over its own stable storage.
type repNode struct {
	b     *repl.Backup
	store *stablestore.Store
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config

	Net *transport.MemNetwork

	appIDs    []id.NodeID
	dbIDs     []id.NodeID
	clientIDs []id.NodeID
	pmap      *placement.Map

	// view and groups exist only on replicated deployments (ReplicaFactor >
	// 1). The single View instance is shared by every application server and
	// the cluster itself, so routing and the oracle always agree on shard
	// ownership.
	view   *placement.View
	groups [][]id.NodeID

	mu      sync.Mutex
	apps    map[id.NodeID]*core.AppServer
	dbs     map[id.NodeID]*dbNode
	reps    map[id.NodeID]*repNode
	clients map[id.NodeID]*core.Client

	replMu      sync.Mutex
	promotions  int
	promoteLats []time.Duration

	computedMu sync.Mutex
	computed   map[id.ResultID]bool // V.1 oracle: tries the logic computed

	stopOnce sync.Once
	stopWG   sync.WaitGroup
}

// New builds and starts a deployment.
func New(cfg Config) (*Cluster, error) {
	if cfg.AppServers <= 0 {
		cfg.AppServers = 3
	}
	if cfg.Shards > 0 {
		if cfg.DataServers > 0 && cfg.DataServers != cfg.Shards {
			return nil, fmt.Errorf("cluster: DataServers (%d) conflicts with Shards (%d)",
				cfg.DataServers, cfg.Shards)
		}
		cfg.DataServers = cfg.Shards
	}
	if cfg.DataServers <= 0 {
		cfg.DataServers = 1
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Logic == nil {
		return nil, errors.New("cluster: Logic is required")
	}
	if (cfg.Net.LossProb > 0 || cfg.Net.DupProb > 0) && !cfg.Reliable {
		return nil, errors.New("cluster: a lossy/duplicating network requires Reliable channels")
	}
	if cfg.AdaptiveWindows {
		// Mirror the app servers' own defaulting so maxBatch() and the
		// stores see the effective windows.
		if cfg.BatchWindow <= 0 {
			cfg.BatchWindow = 500 * time.Microsecond
		}
		if cfg.CohortWindow <= 0 {
			cfg.CohortWindow = 100 * time.Microsecond
		}
	}
	if cfg.ReplicaFactor <= 0 {
		cfg.ReplicaFactor = 1
	}
	c := &Cluster{
		cfg:      cfg,
		Net:      transport.NewMemNetwork(cfg.Net),
		apps:     make(map[id.NodeID]*core.AppServer),
		dbs:      make(map[id.NodeID]*dbNode),
		reps:     make(map[id.NodeID]*repNode),
		clients:  make(map[id.NodeID]*core.Client),
		computed: make(map[id.ResultID]bool),
	}
	for i := 1; i <= cfg.AppServers; i++ {
		c.appIDs = append(c.appIDs, id.AppServer(i))
	}
	for i := 1; i <= cfg.DataServers; i++ {
		c.dbIDs = append(c.dbIDs, id.DBServer(i))
	}
	for i := 1; i <= cfg.Clients; i++ {
		c.clientIDs = append(c.clientIDs, id.Client(i))
	}

	// Every deployment gets a placement map (so the keyed Tx API always
	// works); only Shards > 0 additionally switches on per-shard seeding.
	policy := cfg.Placement
	if policy == nil {
		policy = placement.Hash(cfg.DataServers)
	}
	pmap, err := placement.NewMap(policy, c.dbIDs)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c.pmap = pmap

	// Replica groups: boot primary DBServer(s+1) plus backups at
	// DBServer(s+1+k*S), in promotion order. Backups start before the
	// primaries so the seed snapshot streams straight into live appliers.
	if cfg.ReplicaFactor > 1 {
		S := cfg.DataServers
		for s := 0; s < S; s++ {
			group := make([]id.NodeID, 0, cfg.ReplicaFactor)
			for k := 0; k < cfg.ReplicaFactor; k++ {
				group = append(group, id.DBServer(s+1+k*S))
			}
			c.groups = append(c.groups, group)
		}
		c.view, err = placement.NewView(c.groups)
		if err != nil {
			return nil, fmt.Errorf("cluster: replica view: %w", err)
		}
		for s, group := range c.groups {
			for _, m := range group[1:] {
				if err := c.startBackup(s, m, stablestore.New(cfg.ForceLatency)); err != nil {
					c.Stop()
					return nil, err
				}
			}
		}
	}

	for _, dbID := range c.dbIDs {
		if err := c.startDB(dbID, stablestore.New(cfg.ForceLatency), false); err != nil {
			c.Stop()
			return nil, err
		}
	}
	for _, appID := range c.appIDs {
		if err := c.startApp(appID); err != nil {
			c.Stop()
			return nil, err
		}
	}
	for _, clID := range c.clientIDs {
		if err := c.startClient(clID); err != nil {
			c.Stop()
			return nil, err
		}
	}
	return c, nil
}

// loggedLogic wraps the configured logic to record computed tries (V.1).
type loggedLogic struct {
	c     *Cluster
	inner core.Logic
}

// Compute implements core.Logic.
func (l *loggedLogic) Compute(ctx context.Context, tx *core.Tx, req []byte) ([]byte, error) {
	l.c.computedMu.Lock()
	l.c.computed[tx.RID()] = true
	l.c.computedMu.Unlock()
	return l.inner.Compute(ctx, tx, req)
}

// attach connects a node to the network, adding the reliable-channel layer
// when configured.
func (c *Cluster) attach(node id.NodeID) (transport.Endpoint, error) {
	ep, err := c.Net.Attach(node)
	if err != nil {
		return nil, fmt.Errorf("cluster: attach %s: %w", node, err)
	}
	if c.cfg.Reliable {
		return rchan.Wrap(ep, c.cfg.Retransmit), nil
	}
	return ep, nil
}

// maxBatch resolves the effective batch cap: 0 (batching off) unless a
// batch window is configured.
func (c *Cluster) maxBatch() int {
	if c.cfg.BatchWindow <= 0 {
		return 0
	}
	if c.cfg.MaxBatch > 0 {
		return c.cfg.MaxBatch
	}
	return 64
}

func (c *Cluster) startDB(dbID id.NodeID, store *stablestore.Store, recovery bool) error {
	ep, err := c.attach(dbID)
	if err != nil {
		return err
	}
	// A boot primary serves at epoch 1; a recovered server that is still its
	// shard's current primary re-serves at the view's current epoch.
	epoch := uint64(1)
	if c.view != nil {
		if sh, ok := c.view.ShardOf(dbID); ok {
			if cur, e := c.view.Primary(sh); cur == dbID {
				epoch = e
			}
		}
	}
	return c.startDBOn(dbID, ep, store, recovery, epoch)
}

// startDBOn starts a serving database server on an already-attached endpoint
// (a promoted backup hands its endpoint over so announcements sent after
// take-over still go out).
func (c *Cluster) startDBOn(dbID id.NodeID, ep transport.Endpoint, store *stablestore.Store, recovery bool, epoch uint64) error {
	store.SetBatchWindow(c.cfg.BatchWindow)
	store.SetMaxBatch(c.maxBatch())
	// Adaptive deployments keep the full accumulation window for pipelined
	// forces but let a lone group-commit leader skip it (the combiner's own
	// in-flight count is the depth signal), so depth-1 commits pay no
	// leader sleep.
	store.SetAdaptive(c.cfg.AdaptiveWindows)

	// On a replicated deployment the primary streams every appended log
	// record to its group peers (the stream identity is the engine's
	// incarnation, stamped after Open below).
	var streamer *repl.Streamer
	if c.view != nil {
		if sh, ok := c.view.ShardOf(dbID); ok {
			var peers []id.NodeID
			for _, m := range c.groups[sh] {
				if m != dbID {
					peers = append(peers, m)
				}
			}
			streamer = repl.NewStreamer(repl.StreamerConfig{
				Self:    dbID,
				Backups: peers,
				Send: func(to id.NodeID, p msg.Payload) error {
					return ep.Send(msg.Envelope{To: to, Payload: p})
				},
				HeartbeatInterval: c.cfg.HeartbeatInterval,
			})
		}
	}

	xcfg := xadb.Config{Self: dbID, LockTimeout: c.cfg.LockTimeout, QueueExec: c.cfg.QueueExec}
	if streamer != nil {
		xcfg.Replicate = streamer.Replicate
	}
	engine, err := xadb.Open(store, xcfg)
	if err != nil {
		return fmt.Errorf("cluster: open engine %s: %w", dbID, err)
	}
	if streamer != nil {
		streamer.SetInc(engine.Incarnation())
		if recovery {
			// A recovered or promoted primary starts a fresh stream: prime it
			// with the full log so backups adopting the stream resync on it
			// from scratch.
			recs, err := wal.New(store).Records()
			if err != nil {
				return fmt.Errorf("cluster: prime stream %s: %w", dbID, err)
			}
			streamer.Prime(recs)
		}
		streamer.Start()
	}
	if !recovery && len(c.cfg.Seed) > 0 {
		engine.Seed(c.seedFor(dbID))
	}
	drain := c.cfg.DrainBatch
	if drain <= 0 {
		drain = c.maxBatch()
	}
	srv, err := core.NewDataServer(core.DataServerConfig{
		Self:       dbID,
		AppServers: c.appIDs,
		Engine:     engine,
		Endpoint:   ep,
		Recovery:   recovery,
		MaxBatch:   drain,
		QueueExec:  c.cfg.QueueExec,
		Repl:       streamer,
		Epoch:      epoch,
	})
	if err != nil {
		return err
	}
	srv.Start()
	c.mu.Lock()
	c.dbs[dbID] = &dbNode{srv: srv, engine: engine, store: store, streamer: streamer}
	c.mu.Unlock()
	return nil
}

// startBackup starts (or restarts, with its surviving store) the backup
// applier of shard sh on node self.
func (c *Cluster) startBackup(sh int, self id.NodeID, store *stablestore.Store) error {
	ep, err := c.attach(self)
	if err != nil {
		return err
	}
	var det fd.Detector
	if c.cfg.DBDetector != nil {
		det = c.cfg.DBDetector(self)
	}
	// The in-memory network can prove the deposed primary's stream tail has
	// fully landed (nothing in flight on the link, nothing unread in the
	// mailbox), making the promotion drain exact. The raw endpoint implements
	// PendingCounter; the reliable-channel wrapper does not, and falls back
	// to the quiet-period drain.
	var drained func(id.NodeID) bool
	if pc, ok := ep.(transport.PendingCounter); ok {
		drained = func(old id.NodeID) bool {
			return c.Net.InFlightFrom(old, self) == 0 && pc.Pending() == 0
		}
	}
	curPrimary, curEpoch := c.view.Primary(sh)
	b := repl.NewBackup(repl.BackupConfig{
		Self:              self,
		Shard:             sh,
		Group:             c.groups[sh],
		AppServers:        c.appIDs,
		Endpoint:          ep,
		Store:             store,
		InitEpoch:         curEpoch,
		InitPrimary:       curPrimary,
		Detector:          det,
		HeartbeatInterval: c.cfg.HeartbeatInterval,
		SuspectTimeout:    c.cfg.SuspectTimeout,
		Drained:           drained,
		TakeOver: func(epoch uint64) error {
			if err := c.startDBOn(self, ep, store, true, epoch); err != nil {
				return err
			}
			// Flip the shared view last: the server is up, so traffic routed
			// by the new epoch finds it serving.
			c.view.Advance(sh, epoch, self)
			return nil
		},
		OnPromote: func(lat time.Duration) {
			c.replMu.Lock()
			c.promotions++
			c.promoteLats = append(c.promoteLats, lat)
			c.replMu.Unlock()
		},
	})
	b.Start()
	c.mu.Lock()
	c.reps[self] = &repNode{b: b, store: store}
	c.mu.Unlock()
	return nil
}

func (c *Cluster) startApp(appID id.NodeID) error {
	ep, err := c.attach(appID)
	if err != nil {
		return err
	}
	var hooks *core.Hooks
	if c.cfg.Hooks != nil {
		hooks = c.cfg.Hooks(appID)
	}
	var det fd.Detector
	if c.cfg.Detector != nil {
		det = c.cfg.Detector(appID)
	}
	srv, err := core.NewAppServer(core.AppServerConfig{
		Self:              appID,
		AppServers:        c.appIDs,
		DataServers:       c.dbIDs,
		Placement:         c.pmap,
		View:              c.view,
		Endpoint:          ep,
		Logic:             &loggedLogic{c: c, inner: c.cfg.Logic},
		Detector:          det,
		HeartbeatInterval: c.cfg.HeartbeatInterval,
		SuspectTimeout:    c.cfg.SuspectTimeout,
		ConsensusPoll:     c.cfg.ConsensusPoll,
		ResendInterval:    c.cfg.ResendInterval,
		CleanInterval:     c.cfg.CleanInterval,
		ComputeTimeout:    c.cfg.ComputeTimeout,
		Workers:           c.cfg.Workers,
		Terminators:       c.cfg.Terminators,
		BatchWindow:       c.cfg.BatchWindow,
		MaxBatch:          c.maxBatch(),
		CohortWindow:      c.cfg.CohortWindow,
		MaxCohort:         c.cfg.MaxCohort,
		AdaptiveWindows:   c.cfg.AdaptiveWindows,
		RetainSlots:       c.cfg.RetainSlots,
		Hooks:             hooks,
	})
	if err != nil {
		return err
	}
	srv.Start()
	c.mu.Lock()
	c.apps[appID] = srv
	c.mu.Unlock()
	return nil
}

func (c *Cluster) startClient(clID id.NodeID) error {
	ep, err := c.attach(clID)
	if err != nil {
		return err
	}
	cl, err := core.NewClient(core.ClientConfig{
		Self:        clID,
		AppServers:  c.appIDs,
		Endpoint:    ep,
		Backoff:     c.cfg.ClientBackoff,
		Rebroadcast: c.cfg.ClientRebroadcast,
		MaxInFlight: c.cfg.ClientMaxInFlight,
		// Liveness evidence: a try that burns half its deadline dumps every
		// live application server's view of it next to the client's own
		// in-flight table (the client logs that itself).
		SlowTry: func(rid id.ResultID, waited time.Duration) {
			c.mu.Lock()
			apps := make([]*core.AppServer, 0, len(c.apps))
			for _, a := range c.apps {
				apps = append(apps, a)
			}
			srvs := make([]*core.DataServer, 0, len(c.dbs))
			for _, n := range c.dbs {
				if n.srv != nil {
					srvs = append(srvs, n.srv)
				}
			}
			c.mu.Unlock()
			for _, a := range apps {
				log.Printf("cluster: liveness: %s", a.DebugTry(rid))
			}
			// The database tier's view: lock contention and speculation
			// counters tell a stuck try blocked on data apart from one
			// blocked in the commit path.
			for _, srv := range srvs {
				log.Printf("cluster: liveness: %s", srv.DebugStats())
			}
		},
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.clients[clID] = cl
	c.mu.Unlock()
	return nil
}

// Client returns the i-th client (1-based).
func (c *Cluster) Client(i int) *core.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[id.Client(i)]
}

// App returns the i-th application server (1-based), or nil if crashed.
func (c *Cluster) App(i int) *core.AppServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.apps[id.AppServer(i)]
}

// Engine returns the i-th database engine (1-based).
func (c *Cluster) Engine(i int) *xadb.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.dbs[id.DBServer(i)]; ok {
		return n.engine
	}
	return nil
}

// DataServer returns the i-th database server front end (1-based), or nil —
// tests assert on its execution-mode counters.
func (c *Cluster) DataServer(i int) *core.DataServer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.dbs[id.DBServer(i)]; ok {
		return n.srv
	}
	return nil
}

// AppIDs returns the middle-tier membership.
func (c *Cluster) AppIDs() []id.NodeID { return append([]id.NodeID(nil), c.appIDs...) }

// DBIDs returns the database-tier membership.
func (c *Cluster) DBIDs() []id.NodeID { return append([]id.NodeID(nil), c.dbIDs...) }

// Placement returns the deployment's key-routing map.
func (c *Cluster) Placement() *placement.Map { return c.pmap }

// View returns the replica view of the data tier (nil when ReplicaFactor=1).
func (c *Cluster) View() *placement.View { return c.view }

// Groups returns the replica groups in promotion order (nil when
// unreplicated).
func (c *Cluster) Groups() [][]id.NodeID {
	out := make([][]id.NodeID, len(c.groups))
	for i, g := range c.groups {
		out[i] = append([]id.NodeID(nil), g...)
	}
	return out
}

// Backup returns the i-th node's backup applier (1-based node index; nil if
// the node is not running as a backup).
func (c *Cluster) Backup(i int) *repl.Backup {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.reps[id.DBServer(i)]; ok {
		return r.b
	}
	return nil
}

// Streamer returns the i-th node's replication streamer (1-based; nil unless
// the node is a serving primary on a replicated deployment).
func (c *Cluster) Streamer(i int) *repl.Streamer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.dbs[id.DBServer(i)]; ok {
		return n.streamer
	}
	return nil
}

// Promotions reports how many promotions completed and their latencies
// (suspicion observed -> NewPrimary announced).
func (c *Cluster) Promotions() (int, []time.Duration) {
	c.replMu.Lock()
	defer c.replMu.Unlock()
	return c.promotions, append([]time.Duration(nil), c.promoteLats...)
}

// StaleRejects sums the application servers' epoch-guard rejections — data-
// tier messages dropped because their sender had been deposed.
func (c *Cluster) StaleRejects() uint64 {
	c.mu.Lock()
	apps := make([]*core.AppServer, 0, len(c.apps))
	for _, a := range c.apps {
		apps = append(apps, a)
	}
	c.mu.Unlock()
	var n uint64
	for _, a := range apps {
		n += a.Stats().StaleRejects
	}
	return n
}

// Sharded reports whether the database tier is key-sharded (per-shard
// seeding, keyed routing as the intended data surface).
func (c *Cluster) Sharded() bool { return c.cfg.Shards > 0 }

// seedFor returns the portion of the configured seed that dbID owns: the
// full image on an unsharded tier, the home-shard subset on a sharded one.
func (c *Cluster) seedFor(dbID id.NodeID) []kv.Write {
	if !c.Sharded() {
		return c.cfg.Seed
	}
	var out []kv.Write
	for _, w := range c.cfg.Seed {
		if c.pmap.Home(w.Key) == dbID {
			out = append(out, w)
		}
	}
	return out
}

// CrashApp crashes the i-th application server: it is isolated from the
// network immediately; its goroutines are stopped in the background (they
// can no longer affect the world). Application servers do not recover in the
// paper's model.
func (c *Cluster) CrashApp(i int) {
	appID := id.AppServer(i)
	c.Net.Crash(appID)
	c.mu.Lock()
	srv := c.apps[appID]
	delete(c.apps, appID)
	c.mu.Unlock()
	if srv != nil {
		c.stopWG.Add(1)
		go func() {
			defer c.stopWG.Done()
			srv.Stop()
		}()
	}
}

// CrashDB crashes the i-th database-tier node — a serving primary or a shard
// backup — keeping its stable storage for a later RecoverDB.
func (c *Cluster) CrashDB(i int) {
	dbID := id.DBServer(i)
	c.Net.Crash(dbID)
	c.mu.Lock()
	n := c.dbs[dbID]
	if n != nil {
		n.srv = nilStop(n.srv, &c.stopWG)
		n.engine = nil
		if n.streamer != nil {
			st := n.streamer
			n.streamer = nil
			c.stopWG.Add(1)
			go func() {
				defer c.stopWG.Done()
				st.Stop()
			}()
		}
	}
	r := c.reps[dbID]
	if r != nil && r.b != nil {
		b := r.b
		r.b = nil
		c.stopWG.Add(1)
		go func() {
			defer c.stopWG.Done()
			b.Stop()
		}()
	}
	c.mu.Unlock()
}

func nilStop(srv *core.DataServer, wg *sync.WaitGroup) *core.DataServer {
	if srv != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Stop()
		}()
	}
	return nil
}

// RecoverDB restarts the i-th database-tier node on its surviving stable
// storage. On an unreplicated deployment — or when the node is still its
// shard's current primary — the fresh server runs recovery and announces
// [Ready]. A node whose shard was promoted away from it (or that was a
// backup all along) rejoins as a backup: it adopts the current primary's
// stream, which resyncs its log from scratch.
func (c *Cluster) RecoverDB(i int) error {
	dbID := id.DBServer(i)
	c.mu.Lock()
	var store *stablestore.Store
	if n, ok := c.dbs[dbID]; ok {
		store = n.store
	} else if r, ok := c.reps[dbID]; ok {
		store = r.store
	}
	c.mu.Unlock()
	if store == nil {
		return fmt.Errorf("cluster: unknown database %s", dbID)
	}
	if c.view != nil {
		if sh, ok := c.view.ShardOf(dbID); ok && !c.view.IsCurrent(dbID) {
			return c.startBackup(sh, dbID, store)
		}
	}
	return c.startDB(dbID, store, true)
}

// Retire drops per-request register and cache state on every live
// application server (the Section-5 garbage-collection extension). Only call
// it for requests whose results the client has delivered.
func (c *Cluster) Retire(req id.RequestKey, maxTry uint64) {
	c.mu.Lock()
	apps := make([]*core.AppServer, 0, len(c.apps))
	for _, a := range c.apps {
		apps = append(apps, a)
	}
	c.mu.Unlock()
	for _, a := range apps {
		a.Retire(req, maxTry)
	}
}

// Stop tears the whole deployment down.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		clients := c.clients
		apps := c.apps
		dbs := c.dbs
		reps := c.reps
		c.clients = map[id.NodeID]*core.Client{}
		c.apps = map[id.NodeID]*core.AppServer{}
		c.dbs = map[id.NodeID]*dbNode{}
		c.reps = map[id.NodeID]*repNode{}
		c.mu.Unlock()
		for _, cl := range clients {
			cl.Stop()
		}
		for _, a := range apps {
			a.Stop()
		}
		for _, d := range dbs {
			if d.srv != nil {
				d.srv.Stop()
			}
			if d.streamer != nil {
				d.streamer.Stop()
			}
		}
		for _, r := range reps {
			if r.b != nil {
				r.b.Stop()
			}
		}
		c.Net.Close()
		c.stopWG.Wait()
	})
}

// --- correctness oracle ------------------------------------------------------

// OracleReport is the verdict of CheckProperties.
type OracleReport struct {
	Violations []string
}

// Ok reports whether no property was violated.
func (r OracleReport) Ok() bool { return len(r.Violations) == 0 }

// String lists the violations.
func (r OracleReport) String() string {
	if r.Ok() {
		return "all properties hold"
	}
	out := ""
	for _, v := range r.Violations {
		out += v + "\n"
	}
	return out
}

// CheckProperties asserts the paper's agreement and validity properties over
// the current state of the deployment:
//
//	A.1  every delivered result is committed by its participants: no
//	     database server that knows the try decided anything but commit,
//	     and — when the whole tier is up — at least one committed it
//	A.2  at most one try per logical request is committed anywhere
//	A.3  no two database servers decided differently on the same try
//	V.1  every delivered result belongs to a try the business logic computed
//
// A.1 is stated over the servers that know the try because commitment is
// routed to the try's participant set (the paper's dlist), not broadcast:
// on a sharded tier a single-shard commit legitimately exists on exactly
// one server. (T.1/T.2 are liveness: the tests assert them by bounded
// waiting; V.2 is enforced structurally in the engine and checked by its
// unit tests.)
func (c *Cluster) CheckProperties() OracleReport {
	var rep OracleReport

	c.mu.Lock()
	engines := make(map[id.NodeID]*xadb.Engine, len(c.dbs))
	for dbID, n := range c.dbs {
		if n.engine != nil {
			engines[dbID] = n.engine
		}
	}
	clients := make([]*core.Client, 0, len(c.clients))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	c.mu.Unlock()

	// Gather decided outcomes per try per database.
	type verdicts map[id.NodeID]msg.Outcome
	byTry := make(map[id.ResultID]verdicts)
	for dbID, e := range engines {
		for rid, o := range e.Outcomes() {
			v, ok := byTry[rid]
			if !ok {
				v = make(verdicts)
				byTry[rid] = v
			}
			v[dbID] = o
		}
	}

	// A.3: all verdicts for a try agree.
	tries := make([]id.ResultID, 0, len(byTry))
	for rid := range byTry {
		tries = append(tries, rid)
	}
	sort.Slice(tries, func(i, j int) bool { return tries[i].Less(tries[j]) })
	committedPerRequest := make(map[id.RequestKey][]id.ResultID)
	for _, rid := range tries {
		var first msg.Outcome
		firstSet := false
		anyCommit := false
		for _, o := range byTry[rid] {
			if !firstSet {
				first, firstSet = o, true
			} else if o != first {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("A.3 violated: databases disagree on %s", rid))
				break
			}
			if o == msg.OutcomeCommit {
				anyCommit = true
			}
		}
		if anyCommit {
			k := rid.Request()
			committedPerRequest[k] = append(committedPerRequest[k], rid)
		}
	}

	// A.2: at most one committed try per logical request.
	for k, rids := range committedPerRequest {
		if len(rids) > 1 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("A.2 violated: request %s committed %d tries: %v", k, len(rids), rids))
		}
	}

	// A.1 + V.1 over every delivery of every client.
	c.computedMu.Lock()
	computed := make(map[id.ResultID]bool, len(c.computed))
	for rid := range c.computed {
		computed[rid] = true
	}
	c.computedMu.Unlock()
	allUp := len(engines) == len(c.dbIDs)
	// Snapshot every engine's outcomes once: Outcomes() clones its map, and
	// cloning per delivered result would make the oracle quadratic in the
	// run length.
	outcomes := make(map[id.NodeID]map[id.ResultID]msg.Outcome, len(engines))
	for dbID, e := range engines {
		outcomes[dbID] = e.Outcomes()
	}
	for _, cl := range clients {
		for _, d := range cl.Delivered() {
			// No server anywhere may have decided a delivered try as
			// anything but commit.
			known := false
			for dbID, outs := range outcomes {
				o, ok := outs[d.RID]
				if !ok {
					continue
				}
				known = true
				if o != msg.OutcomeCommit {
					rep.Violations = append(rep.Violations,
						fmt.Sprintf("A.1 violated: delivered %s decided %s at %s", d.RID, o, dbID))
				}
			}
			if d.Participants != nil {
				// The delivered decision names its dlist: termination
				// acknowledged the commit at every one of these servers
				// before the result went out, so every live one must hold
				// it (commit records are forced before the ack, so
				// recovery cannot lose them). On a replicated tier the
				// dlist names boot-time shard identities; the commit is
				// held by whichever group member serves the shard now.
				for _, p := range d.Participants {
					cur := p
					if c.view != nil {
						cur = c.view.Current(p)
					}
					outs, up := outcomes[cur]
					if !up {
						continue
					}
					if o, ok := outs[d.RID]; !ok || o != msg.OutcomeCommit {
						rep.Violations = append(rep.Violations,
							fmt.Sprintf("A.1 violated: delivered %s not committed at participant %s (serving as %s)", d.RID, p, cur))
					}
				}
			} else if !known && allUp {
				// Decisions without a dlist (pre-dlist deliveries) fall
				// back to existence: with every database up, a delivered
				// result must be committed somewhere.
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("A.1 violated: delivered %s committed at no database server", d.RID))
			}
			if !computed[d.RID] {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("V.1 violated: delivered %s was never computed by any app server", d.RID))
			}
		}
	}
	return rep
}
