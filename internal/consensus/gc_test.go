package consensus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// decideSlots drives `count` batch-log slots to a decision from node 0, each
// carrying one register write, and waits until every node has applied them
// all (watermark == count).
func decideSlots(t *testing.T, r *rig, count int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= count; i++ {
		ops := []msg.RegOp{{Reg: regKey(msg.RegD, uint64(i)), Val: []byte(fmt.Sprintf("dec-%d", i))}}
		slot := msg.SlotKey(r.nodes[r.peers[0]].LowestUndecidedSlot())
		if _, err := r.nodes[r.peers[0]].Propose(ctx, slot, msg.EncodeRegOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range r.peers {
		waitApplied(t, r.nodes[p], uint64(count))
	}
}

func waitApplied(t *testing.T, n *Node, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for n.Applied() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%v applied watermark stuck at %d, want >= %d", n.cfg.Self, n.Applied(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// syncWatermarks hand-delivers every node's applied watermark to every other
// (the production path piggybacks it on traffic; a quiesced test rig has
// none).
func syncWatermarks(r *rig) {
	for _, p := range r.peers {
		wm := r.nodes[p].Applied()
		for _, q := range r.peers {
			if q != p {
				r.nodes[q].ObserveWatermark(p, wm)
			}
		}
	}
}

// TestSlotPruningBelowMinWatermark: once every node has applied a prefix of
// the batch log, slots below the cluster minimum minus the retention tail
// are pruned, the floor advances, and the register effects survive.
func TestSlotPruningBelowMinWatermark(t *testing.T) {
	const retain, slots = 2, 10
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	decideSlots(t, r, slots)
	syncWatermarks(r)

	for _, p := range r.peers {
		n := r.nodes[p]
		st := n.Stats()
		if want := uint64(slots - retain); st.Floor != want {
			t.Errorf("%v: floor = %d, want %d", p, st.Floor, want)
		}
		if st.SlotsPruned == 0 {
			t.Errorf("%v: no slots pruned", p)
		}
		if st.LiveSlots > retain {
			t.Errorf("%v: %d live slots, want <= %d", p, st.LiveSlots, retain)
		}
		// Pruned slots are gone; tail slots and all register effects remain.
		if _, ok := n.Decided(msg.SlotKey(1)); ok {
			t.Errorf("%v: slot 1 survived pruning", p)
		}
		if _, ok := n.Decided(msg.SlotKey(slots)); !ok {
			t.Errorf("%v: tail slot %d was pruned", p, slots)
		}
		for i := 1; i <= slots; i++ {
			if v, ok := n.Decided(regKey(msg.RegD, uint64(i))); !ok || string(v) != fmt.Sprintf("dec-%d", i) {
				t.Errorf("%v: register %d lost by pruning (%q, %v)", p, i, v, ok)
			}
		}
	}
}

// TestRetainZeroKeepsEverySlot: RetainSlots 0 must reproduce the unbounded
// retention exactly — no floor movement, no pruning, every slot held.
func TestRetainZeroKeepsEverySlot(t *testing.T) {
	const slots = 8
	r := newRig(t, 3, transport.Options{})
	decideSlots(t, r, slots)
	syncWatermarks(r)
	for _, p := range r.peers {
		st := r.nodes[p].Stats()
		if st.Floor != 0 || st.SlotsPruned != 0 {
			t.Errorf("%v: GC ran with RetainSlots=0 (floor=%d pruned=%d)", p, st.Floor, st.SlotsPruned)
		}
		if st.LiveSlots != slots {
			t.Errorf("%v: %d live slots, want all %d retained", p, st.LiveSlots, slots)
		}
	}
}

// TestSuspectedPeerDoesNotHoldFloor: a crashed (suspected) peer must not
// pin the truncation floor at its last watermark forever.
func TestSuspectedPeerDoesNotHoldFloor(t *testing.T) {
	const retain, slots = 1, 6
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	decideSlots(t, r, slots)

	// Node 3 crashes; the survivors suspect it and prune without it.
	r.crash(r.peers[2])
	syncWatermarks(r)
	for _, p := range r.peers[:2] {
		st := r.nodes[p].Stats()
		if want := uint64(slots - retain); st.Floor != want {
			t.Errorf("%v: floor = %d, want %d despite the crashed peer", p, st.Floor, want)
		}
	}
}

// TestCheckpointTransferCatchesUpLaggard: a node partitioned below the
// truncation floor must converge to byte-identical register state through
// checkpoint state transfer — its gap proposal is answered with the floor
// and the applied effects, never with a re-decision.
func TestCheckpointTransferCatchesUpLaggard(t *testing.T) {
	const retain, slots = 1, 8
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	late := r.peers[2]
	others := []id.NodeID{r.peers[0], r.peers[1]}

	r.net.Partition([]id.NodeID{late}, others)
	// The survivors must suspect the partitioned node or it pins the floor.
	for _, p := range others {
		r.dets[p].Set(late, true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= slots; i++ {
		ops := []msg.RegOp{{Reg: regKey(msg.RegD, uint64(i)), Val: []byte(fmt.Sprintf("dec-%d", i))}}
		slot := msg.SlotKey(r.nodes[r.peers[0]].LowestUndecidedSlot())
		if _, err := r.nodes[r.peers[0]].Propose(ctx, slot, msg.EncodeRegOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range others {
		waitApplied(t, r.nodes[p], slots)
		wm := r.nodes[p].Applied()
		for _, q := range others {
			if q != p {
				r.nodes[q].ObserveWatermark(p, wm)
			}
		}
	}
	if floor := r.nodes[r.peers[0]].Floor(); floor != slots-retain {
		t.Fatalf("survivor floor = %d, want %d", floor, slots-retain)
	}
	if r.nodes[late].Applied() != 0 {
		t.Fatal("partitioned node advanced; test premise broken")
	}

	// Heal. The laggard's own gap proposal (the sequencer path) lands below
	// the floor and must come back as a checkpoint, not a decision replay.
	r.net.Heal()
	for _, p := range others {
		r.dets[p].Clear(late)
	}
	got, err := r.nodes[late].Propose(ctx, msg.SlotKey(r.nodes[late].LowestUndecidedSlot()),
		msg.EncodeRegOps([]msg.RegOp{{Reg: regKey(msg.RegA, 99), Val: []byte("mine")}}))
	if err != nil && !errors.Is(err, ErrSlotTruncated) {
		t.Fatal(err)
	}
	if err == nil {
		if ops, derr := msg.DecodeRegOps(got); derr != nil || len(ops) != 0 {
			t.Fatalf("stranded gap proposal resolved with %v/%v, want the empty fast-forward value", ops, derr)
		}
	}

	// The laggard fast-forwards past the floor and holds byte-identical
	// register state for every pruned slot's effect.
	waitApplied(t, r.nodes[late], slots-retain)
	if st := r.nodes[late].Stats(); st.CheckpointsInstalled == 0 {
		t.Error("laggard never installed a checkpoint")
	}
	ref := r.nodes[r.peers[0]]
	for i := 1; i <= slots; i++ {
		k := regKey(msg.RegD, uint64(i))
		want, _ := ref.Decided(k)
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, ok := r.nodes[late].Decided(k)
			if ok {
				if !bytes.Equal(v, want) {
					t.Fatalf("register %d diverged after checkpoint: %q vs %q", i, v, want)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("laggard never learned register %d", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if st := r.nodes[r.peers[0]].Stats(); st.CheckpointsServed == 0 {
		if st2 := r.nodes[r.peers[1]].Stats(); st2.CheckpointsServed == 0 {
			t.Error("no node served a checkpoint; the transfer path was not exercised")
		}
	}
}

// TestGapProbeWithinTailUsesDecisionReplay: a laggard within the retention
// tail is served by CDecision replay (with the burst), not by checkpoint.
func TestGapProbeWithinTailUsesDecisionReplay(t *testing.T) {
	const retain, slots = 16, 6
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	late := r.peers[2]
	others := []id.NodeID{r.peers[0], r.peers[1]}

	r.net.Partition([]id.NodeID{late}, others)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= slots; i++ {
		ops := []msg.RegOp{{Reg: regKey(msg.RegD, uint64(i)), Val: []byte(fmt.Sprintf("dec-%d", i))}}
		slot := msg.SlotKey(r.nodes[r.peers[0]].LowestUndecidedSlot())
		if _, err := r.nodes[r.peers[0]].Propose(ctx, slot, msg.EncodeRegOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range others {
		waitApplied(t, r.nodes[p], slots)
	}
	r.net.Heal()

	// The watermark observation alone (as piggybacked on any message) must
	// trigger the gap probe and pull the whole tail across.
	r.nodes[late].ObserveWatermark(r.peers[0], r.nodes[r.peers[0]].Applied())
	waitApplied(t, r.nodes[late], slots)
	st := r.nodes[late].Stats()
	if st.CheckpointsInstalled != 0 {
		t.Errorf("laggard within the tail installed a checkpoint (floor transfer), want replay only")
	}
	for i := 1; i <= slots; i++ {
		if v, ok := r.nodes[late].Decided(regKey(msg.RegD, uint64(i))); !ok || string(v) != fmt.Sprintf("dec-%d", i) {
			t.Errorf("register %d missing after replay catch-up (%q, %v)", i, v, ok)
		}
	}
}

// TestQuiescentCatchUpBeyondOneBurst: a laggard many more slots behind than
// one gap-burst, in a cluster that has gone quiet (watermarks static), must
// still catch up fully — the probe re-arms on repeated observations of the
// same watermark, it is not gated on the watermark advancing.
func TestQuiescentCatchUpBeyondOneBurst(t *testing.T) {
	const retain, slots = 256, 3*gapBurst + 5
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	late := r.peers[2]
	others := []id.NodeID{r.peers[0], r.peers[1]}

	r.net.Partition([]id.NodeID{late}, others)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i <= slots; i++ {
		ops := []msg.RegOp{{Reg: regKey(msg.RegD, uint64(i)), Val: []byte(fmt.Sprintf("dec-%d", i))}}
		slot := msg.SlotKey(r.nodes[r.peers[0]].LowestUndecidedSlot())
		if _, err := r.nodes[r.peers[0]].Propose(ctx, slot, msg.EncodeRegOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range others {
		waitApplied(t, r.nodes[p], slots)
	}
	r.net.Heal()

	// The cluster is quiescent: deliver the SAME static watermark over and
	// over (heartbeats of an idle deployment). One burst covers gapBurst
	// slots, so full catch-up requires the probe to keep re-arming.
	wm := r.nodes[r.peers[0]].Applied()
	deadline := time.Now().Add(30 * time.Second)
	for r.nodes[late].Applied() < slots {
		r.nodes[late].ObserveWatermark(r.peers[0], wm)
		if time.Now().After(deadline) {
			t.Fatalf("laggard stalled at %d/%d applied under a static watermark", r.nodes[late].Applied(), slots)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 1; i <= slots; i++ {
		if v, ok := r.nodes[late].Decided(regKey(msg.RegD, uint64(i))); !ok || string(v) != fmt.Sprintf("dec-%d", i) {
			t.Fatalf("register %d missing after quiescent catch-up (%q, %v)", i, v, ok)
		}
	}
}

// TestAbandonReleasesUndecidedInstance: an instance that can never decide
// (its quorum is gone) is discarded by Abandon — the retirement path — and
// its Propose caller resolves with ErrAbandoned.
func TestAbandonReleasesUndecidedInstance(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	p := r.peers[0]
	r.net.Partition([]id.NodeID{p}, []id.NodeID{r.peers[1], r.peers[2]})

	k := regKey(msg.RegA, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := r.nodes[p].Propose(context.Background(), k, []byte("stuck"))
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := r.nodes[p].InstanceState(k); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("instance never started")
		}
		time.Sleep(time.Millisecond)
	}

	r.nodes[p].Abandon(k)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAbandoned) {
			t.Fatalf("Propose returned %v, want ErrAbandoned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Propose never unblocked after Abandon")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := r.nodes[p].InstanceState(k); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("instance survived Abandon")
		}
		time.Sleep(time.Millisecond)
	}
	if st := r.nodes[p].Stats(); st.Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", st.Abandoned)
	}
	// Abandon also drops a decided value (the Forget half of retirement).
	r.net.Heal()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	k2 := regKey(msg.RegA, 2)
	if _, err := r.nodes[p].Propose(ctx, k2, []byte("v")); err != nil {
		t.Fatal(err)
	}
	r.nodes[p].Abandon(k2)
	if _, ok := r.nodes[p].Decided(k2); ok {
		t.Error("decided value survived Abandon")
	}
}

// TestProposeBelowFloorRejected: the sequencer contract — proposing at or
// below the truncation floor is refused, never re-decided.
func TestProposeBelowFloorRejected(t *testing.T) {
	const retain, slots = 1, 5
	r := newRigRetain(t, 3, transport.Options{}, 200*time.Microsecond, retain)
	decideSlots(t, r, slots)
	syncWatermarks(r)
	n0 := r.nodes[r.peers[0]]
	if n0.Floor() == 0 {
		t.Fatal("floor never advanced; test premise broken")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := n0.Propose(ctx, msg.SlotKey(1), []byte("zombie")); !errors.Is(err, ErrSlotTruncated) {
		t.Fatalf("Propose below the floor returned %v, want ErrSlotTruncated", err)
	}
	if got := n0.LowestUndecidedSlot(); got <= n0.Floor() {
		t.Fatalf("LowestUndecidedSlot = %d, at or below floor %d", got, n0.Floor())
	}
}
