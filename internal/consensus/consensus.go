// Package consensus implements Chandra–Toueg ◊S rotating-coordinator
// consensus among the application servers, the substrate the paper assumes
// for its wo-registers ("every application server would have a copy of the
// register ... writing a value comes down to proposing that value for the
// consensus protocol, e.g. [4]").
//
// One Node runs on each application server and multiplexes any number of
// independent consensus instances, keyed by msg.RegKey (one instance per
// wo-register). The algorithm per instance is the classic one from
// Chandra & Toueg, "Unreliable failure detectors for reliable distributed
// systems" (JACM 1996):
//
//	round r (r = 1, 2, ...), coordinator c = peers[(r-1) mod n]:
//	 phase 1: every process sends its estimate (value, ts) to c
//	 phase 2: c gathers a majority of estimates, picks the one with the
//	          highest ts, and proposes it to all
//	 phase 3: each process waits for c's proposal (adopt + ack) or until it
//	          suspects c (nack), then moves to round r+1
//	 phase 4: if c gathers a majority of acks it decides and reliably
//	          broadcasts the decision
//
// Safety (agreement, validity) holds with any failure-detector behaviour;
// termination needs a majority of correct processes and the eventual accuracy
// of the detector — exactly the paper's correctness assumptions.
//
// Processes walk rounds strictly sequentially (no round skipping): the
// liveness argument of CT depends on every correct process eventually sending
// its phase-1 estimate for every round it passes through.
package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/queue"
)

// SendFunc transmits a payload to a peer.
type SendFunc func(to id.NodeID, p msg.Payload) error

// Config parameterizes a consensus Node.
type Config struct {
	// Self is this process.
	Self id.NodeID
	// Peers is the full, identically-ordered membership on every process
	// (it must include Self). peers[0] is the round-1 coordinator; the
	// paper makes that the default primary application server so that a
	// failure-free register write costs a single round trip.
	Peers []id.NodeID
	// Send transmits consensus messages. Messages to Self short-circuit and
	// never touch Send.
	Send SendFunc
	// Detector provides the suspect() predicate (◊P suffices for ◊S).
	Detector fd.Detector
	// Poll is how often a blocked phase re-checks the failure detector.
	// Defaults to 1ms.
	Poll time.Duration
}

func (c Config) validate() error {
	if !c.Self.Role.Valid() {
		return errors.New("consensus: invalid Self")
	}
	if c.Send == nil {
		return errors.New("consensus: Send is required")
	}
	if c.Detector == nil {
		return errors.New("consensus: Detector is required")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return errors.New("consensus: Peers must contain Self")
	}
	return nil
}

// ErrStopped is returned by Propose when the node shuts down mid-wait.
var ErrStopped = errors.New("consensus: node stopped")

// Node multiplexes consensus instances for one process.
type Node struct {
	cfg  Config
	maj  int
	poll time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	stopped   bool
	instances map[msg.RegKey]*instance
	decided   map[msg.RegKey][]byte
	relayed   map[msg.RegKey]bool
	subs      map[msg.RegKey][]chan []byte
}

// New creates a consensus node. Call Stop when done to release its
// goroutines.
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Poll <= 0 {
		cfg.Poll = time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Node{
		cfg:       cfg,
		maj:       len(cfg.Peers)/2 + 1,
		poll:      cfg.Poll,
		ctx:       ctx,
		cancel:    cancel,
		instances: make(map[msg.RegKey]*instance),
		decided:   make(map[msg.RegKey][]byte),
		relayed:   make(map[msg.RegKey]bool),
		subs:      make(map[msg.RegKey][]chan []byte),
	}, nil
}

// Stop shuts down all instance goroutines and fails pending Proposes with
// ErrStopped.
func (n *Node) Stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.cancel()
	n.wg.Wait()
}

// Propose submits val for the instance key and blocks until that instance
// decides (returning the decided value, which may differ from val), the
// caller's ctx is cancelled, or the node stops.
func (n *Node) Propose(ctx context.Context, key msg.RegKey, val []byte) ([]byte, error) {
	if v, ok := n.Decided(key); ok {
		return v, nil
	}
	inst := n.getInstance(key, true)
	if inst == nil {
		// Decided between the check and instance creation.
		if v, ok := n.Decided(key); ok {
			return v, nil
		}
		return nil, ErrStopped
	}
	inst.propose(val)
	select {
	case <-inst.done:
		return inst.result, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("consensus: propose %s: %w", key, ctx.Err())
	case <-n.ctx.Done():
		return nil, ErrStopped
	}
}

// Decided returns the decided value of an instance, if any. It implements
// the weak read of the paper's wo-register: it may lag behind a decision made
// elsewhere, but repeated calls eventually observe it (decision broadcasts).
func (n *Node) Decided(key msg.RegKey) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.decided[key]
	return v, ok
}

// Watch returns a channel that receives the decided value of key (buffered;
// at most one send). If the instance already decided, the value is delivered
// immediately.
func (n *Node) Watch(key msg.RegKey) <-chan []byte {
	ch := make(chan []byte, 1)
	n.mu.Lock()
	if v, ok := n.decided[key]; ok {
		n.mu.Unlock()
		ch <- v
		return ch
	}
	n.subs[key] = append(n.subs[key], ch)
	n.mu.Unlock()
	return ch
}

// Forget discards the decided value of an instance, freeing its memory.
// This implements the garbage collection the paper defers in Section 5: it
// is only safe once the client can no longer retransmit the corresponding
// request (the at-most-once guarantee is conditioned on exactly that, as the
// paper notes). Forgetting an undecided instance is a no-op.
func (n *Node) Forget(key msg.RegKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.decided[key]; !ok {
		return
	}
	delete(n.decided, key)
	delete(n.relayed, key)
}

// Keys returns every register key this node has ever seen (decided or in
// flight). The cleaning thread scans this in place of the paper's unbounded
// register-array walk.
func (n *Node) Keys() []msg.RegKey {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]msg.RegKey, 0, len(n.decided)+len(n.instances))
	seen := make(map[msg.RegKey]bool, len(n.decided))
	for k := range n.decided {
		out = append(out, k)
		seen[k] = true
	}
	for k := range n.instances {
		if !seen[k] {
			out = append(out, k)
		}
	}
	return out
}

// Handle ingests one consensus message (Estimate, Propose, CAck, CNack,
// CDecision); the owning node's demux loop calls it.
func (n *Node) Handle(from id.NodeID, p msg.Payload) {
	switch m := p.(type) {
	case msg.CDecision:
		n.learn(m.Reg, m.Val)
	case msg.Estimate:
		n.dispatch(from, m.Reg, p)
	case msg.Propose:
		n.dispatch(from, m.Reg, p)
	case msg.CAck:
		n.dispatch(from, m.Reg, p)
	case msg.CNack:
		n.dispatch(from, m.Reg, p)
	}
}

func (n *Node) dispatch(from id.NodeID, key msg.RegKey, p msg.Payload) {
	n.mu.Lock()
	if v, ok := n.decided[key]; ok {
		n.mu.Unlock()
		// Help laggards: answer any chatter about a decided instance with
		// the decision itself.
		_ = n.cfg.Send(from, msg.CDecision{Reg: key, Val: v})
		return
	}
	n.mu.Unlock()
	inst := n.getInstance(key, true)
	if inst == nil {
		return
	}
	inst.inbox.Push(inMsg{from: from, p: p})
}

// learn records a decision (local or remote) and relays it once to all peers
// (the reliable-broadcast echo).
func (n *Node) learn(key msg.RegKey, val []byte) {
	n.mu.Lock()
	if _, ok := n.decided[key]; ok {
		n.mu.Unlock()
		return
	}
	n.decided[key] = val
	inst := n.instances[key]
	subs := n.subs[key]
	delete(n.subs, key)
	relay := !n.relayed[key]
	n.relayed[key] = true
	n.mu.Unlock()

	if inst != nil {
		inst.finish(val)
	}
	for _, ch := range subs {
		ch <- val
	}
	if relay {
		for _, p := range n.cfg.Peers {
			if p == n.cfg.Self {
				continue
			}
			_ = n.cfg.Send(p, msg.CDecision{Reg: key, Val: val})
		}
	}
}

// getInstance returns the live instance for key, creating and starting it if
// needed. Returns nil if the node is stopped or the key already decided
// (when create is true the decided check must be done by the caller).
func (n *Node) getInstance(key msg.RegKey, create bool) *instance {
	n.mu.Lock()
	defer n.mu.Unlock()
	if inst, ok := n.instances[key]; ok {
		return inst
	}
	if !create {
		return nil
	}
	if _, ok := n.decided[key]; ok {
		return nil
	}
	if n.stopped {
		return nil
	}
	inst := newInstance(n, key)
	n.instances[key] = inst
	n.wg.Add(1)
	go inst.run(n.ctx)
	return inst
}

// forget drops the instance bookkeeping after it decided (its memory of
// per-round tallies is released; the decided value stays).
func (n *Node) forget(key msg.RegKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.instances, key)
}

// send transmits to a peer, short-circuiting self-sends straight back into
// Handle so a register write by the round-1 coordinator costs exactly one
// network round trip, as the paper's analysis assumes.
func (n *Node) send(to id.NodeID, p msg.Payload) {
	if to == n.cfg.Self {
		n.Handle(n.cfg.Self, p)
		return
	}
	_ = n.cfg.Send(to, p)
}

// --- instance ---------------------------------------------------------------

type inMsg struct {
	from id.NodeID
	p    msg.Payload
}

type estVal struct {
	val []byte
	ts  uint32
}

// instance is one consensus execution. All protocol state is confined to the
// run goroutine; cross-goroutine interaction happens via inbox, proposeCh and
// done.
type instance struct {
	node *Node
	key  msg.RegKey

	inbox *queue.Queue[inMsg]

	proposeMu sync.Mutex
	proposal  []byte
	hasProp   bool
	propWake  chan struct{}

	done   chan struct{} // closed once result is set
	result []byte
	dOnce  sync.Once

	// goroutine-local protocol state
	est       []byte
	hasEst    bool
	ts        uint32
	round     uint32
	estimates map[uint32]map[id.NodeID]estVal
	proposals map[uint32][]byte
	replies   map[uint32]map[id.NodeID]bool // sender -> isAck
	decided   bool
}

func newInstance(n *Node, key msg.RegKey) *instance {
	return &instance{
		node:      n,
		key:       key,
		inbox:     queue.New[inMsg](),
		propWake:  make(chan struct{}, 1),
		done:      make(chan struct{}),
		estimates: make(map[uint32]map[id.NodeID]estVal),
		proposals: make(map[uint32][]byte),
		replies:   make(map[uint32]map[id.NodeID]bool),
	}
}

// propose records the local proposal (first one wins locally) and wakes the
// run loop.
func (inst *instance) propose(val []byte) {
	inst.proposeMu.Lock()
	if !inst.hasProp {
		inst.proposal = val
		inst.hasProp = true
	}
	inst.proposeMu.Unlock()
	select {
	case inst.propWake <- struct{}{}:
	default:
	}
}

// finish publishes the decided value and unblocks waiters. Called by
// Node.learn (possibly from another goroutine than run).
func (inst *instance) finish(val []byte) {
	inst.dOnce.Do(func() {
		inst.result = val
		close(inst.done)
	})
}

func (inst *instance) coord(r uint32) id.NodeID {
	peers := inst.node.cfg.Peers
	return peers[int((r-1)%uint32(len(peers)))]
}

// drain processes every queued message. It returns false if the instance is
// finished (decided externally).
func (inst *instance) drain() bool {
	select {
	case <-inst.done:
		return false
	default:
	}
	for {
		m, ok := inst.inbox.Pop()
		if !ok {
			return true
		}
		switch p := m.p.(type) {
		case msg.Estimate:
			byNode, ok := inst.estimates[p.Round]
			if !ok {
				byNode = make(map[id.NodeID]estVal)
				inst.estimates[p.Round] = byNode
			}
			if _, dup := byNode[m.from]; !dup {
				byNode[m.from] = estVal{val: p.Est, ts: p.TS}
			}
		case msg.Propose:
			if _, dup := inst.proposals[p.Round]; !dup {
				inst.proposals[p.Round] = p.Val
			}
		case msg.CAck:
			inst.reply(p.Round, m.from, true)
		case msg.CNack:
			inst.reply(p.Round, m.from, false)
		}
	}
}

func (inst *instance) reply(round uint32, from id.NodeID, ack bool) {
	byNode, ok := inst.replies[round]
	if !ok {
		byNode = make(map[id.NodeID]bool)
		inst.replies[round] = byNode
	}
	if _, dup := byNode[from]; !dup {
		byNode[from] = ack
	}
}

// block waits for new input: a message, a local proposal, a poll tick (to
// re-check the failure detector) or shutdown. Returns false on shutdown or
// external decision.
func (inst *instance) block(ctx context.Context, timer *time.Timer) bool {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(inst.node.poll)
	select {
	case <-inst.inbox.Out():
		return true
	case <-inst.propWake:
		return true
	case <-timer.C:
		return true
	case <-inst.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// run executes the CT round structure until a decision is reached or the
// node stops.
func (inst *instance) run(ctx context.Context) {
	defer inst.node.wg.Done()
	defer inst.node.forget(inst.key)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	self := inst.node.cfg.Self
	maj := inst.node.maj

	// Acquire an initial estimate: the local proposal, or the first value
	// observed in any incoming estimate/proposal.
	for !inst.hasEst {
		if !inst.drain() {
			return
		}
		inst.proposeMu.Lock()
		if inst.hasProp {
			inst.est, inst.hasEst, inst.ts = inst.proposal, true, 0
		}
		inst.proposeMu.Unlock()
		if !inst.hasEst {
			inst.adoptFromMessages()
		}
		if inst.hasEst {
			break
		}
		if !inst.block(ctx, timer) {
			return
		}
	}

	for {
		inst.round++
		r := inst.round
		c := inst.coord(r)

		// Phase 1 + 2. In round 1 a coordinator that is up to date can skip
		// gathering estimates: no value can be locked before round 1, so its
		// own estimate is safe to propose directly. This is the optimization
		// the paper's analysis assumes ("in a nice run, it takes only a round
		// trip for the first primary to write into the register"). In every
		// other case the estimate is broadcast to all peers — the coordinator
		// tallies it, and it simultaneously announces the instance to passive
		// replicas so that they join and keep every round live.
		var proposedVal []byte
		_, haveProposal := inst.proposals[r]
		switch {
		case c == self && r == 1:
			proposedVal = inst.est
			for _, p := range inst.node.cfg.Peers {
				inst.node.send(p, msg.Propose{Reg: inst.key, Round: r, Val: proposedVal})
			}
		case haveProposal:
			// The round's proposal is already in hand (we joined late): our
			// phase-1 estimate could no longer influence it, so skip the
			// broadcast and fall through to phase 3.
		default:
			for _, p := range inst.node.cfg.Peers {
				inst.node.send(p, msg.Estimate{Reg: inst.key, Round: r, TS: inst.ts, Est: inst.est})
			}
			if c == self {
				// Phase 2: gather a majority of estimates, propose the freshest.
				for {
					if !inst.drain() {
						return
					}
					if len(inst.estimates[r]) >= maj {
						break
					}
					if !inst.block(ctx, timer) {
						return
					}
				}
				best := estVal{}
				first := true
				for _, ev := range inst.estimates[r] {
					if first || ev.ts > best.ts {
						best = ev
						first = false
					}
				}
				proposedVal = best.val
				for _, p := range inst.node.cfg.Peers {
					inst.node.send(p, msg.Propose{Reg: inst.key, Round: r, Val: proposedVal})
				}
			}
		}

		// Phase 3 (everyone): adopt the coordinator's proposal, or nack if the
		// coordinator is suspected.
		acked := false
		for {
			if !inst.drain() {
				return
			}
			if v, ok := inst.proposals[r]; ok {
				inst.est, inst.ts = v, r
				inst.node.send(c, msg.CAck{Reg: inst.key, Round: r})
				acked = true
				break
			}
			if c != self && inst.node.cfg.Detector.Suspects(c) {
				inst.node.send(c, msg.CNack{Reg: inst.key, Round: r})
				break
			}
			if !inst.block(ctx, timer) {
				return
			}
		}

		// Practical refinement over textbook CT: a participant that acked
		// waits for the decision before starting the next round, advancing
		// early only if it comes to suspect the coordinator or sees evidence
		// of a higher round (the coordinator moved on after a failed round).
		// This removes the round-cycling chatter of eager participants
		// without touching liveness: every exit condition is driven by a
		// message that the assumptions guarantee, or by the detector.
		if acked && c != self {
			for {
				if !inst.drain() {
					return
				}
				if inst.node.cfg.Detector.Suspects(c) || inst.sawRoundAbove(r) {
					break
				}
				if !inst.block(ctx, timer) {
					return
				}
			}
		}

		// Phase 4 (coordinator): a majority of acks decides.
		if c == self {
			if proposedVal == nil {
				proposedVal = inst.proposals[r]
			}
			for {
				if !inst.drain() {
					return
				}
				acks, nacks := 0, 0
				for _, isAck := range inst.replies[r] {
					if isAck {
						acks++
					} else {
						nacks++
					}
				}
				if acks >= maj {
					inst.node.learn(inst.key, proposedVal)
					return
				}
				if acks+nacks >= maj {
					break // round failed; move on
				}
				if !inst.block(ctx, timer) {
					return
				}
			}
		}

		// Release tallies of the finished round.
		delete(inst.estimates, r)
		delete(inst.replies, r)
		delete(inst.proposals, r)
	}
}

// sawRoundAbove reports whether any message for a round greater than r has
// been received (evidence that the group moved past r).
func (inst *instance) sawRoundAbove(r uint32) bool {
	for round := range inst.estimates {
		if round > r {
			return true
		}
	}
	for round := range inst.proposals {
		if round > r {
			return true
		}
	}
	for round := range inst.replies {
		if round > r {
			return true
		}
	}
	return false
}

// adoptFromMessages bootstraps a passive participant's estimate from any
// value-carrying message already received.
func (inst *instance) adoptFromMessages() {
	for _, byNode := range inst.estimates {
		for _, ev := range byNode {
			inst.est, inst.hasEst, inst.ts = ev.val, true, 0
			return
		}
	}
	for _, v := range inst.proposals {
		inst.est, inst.hasEst, inst.ts = v, true, 0
		return
	}
}
