// Package consensus implements Chandra–Toueg ◊S rotating-coordinator
// consensus among the application servers, the substrate the paper assumes
// for its wo-registers ("every application server would have a copy of the
// register ... writing a value comes down to proposing that value for the
// consensus protocol, e.g. [4]").
//
// One Node runs on each application server and multiplexes any number of
// independent consensus instances, keyed by msg.RegKey. Two keyspaces exist:
//
//   - Register instances (regA[j]/regD[j]): one instance per wo-register,
//     the paper's original one-instance-per-write discipline.
//   - Batch-log slots (msg.SlotKey(n)): cohort consensus. The decided value
//     of slot n is an ordered batch of register operations (msg.RegOp); every
//     node applies decided slots strictly in slot order, deciding each named
//     register with the first value written to it across the whole slot
//     sequence. Because application order is the agreed slot order, the
//     first-write-wins outcome of every register is identical on every node
//     — batch consensus preserves wo-register semantics exactly, while one
//     instance commits a whole cohort of writes.
//
// The algorithm per instance is the classic one from Chandra & Toueg,
// "Unreliable failure detectors for reliable distributed systems"
// (JACM 1996):
//
//	round r (r = 1, 2, ...), coordinator c = peers[(r-1) mod n]:
//	 phase 1: every process sends its estimate (value, ts) to c
//	 phase 2: c gathers a majority of estimates, picks the one with the
//	          highest ts, and proposes it to all
//	 phase 3: each process waits for c's proposal (adopt + ack) or until it
//	          suspects c (nack), then moves to round r+1
//	 phase 4: if c gathers a majority of acks it decides and reliably
//	          broadcasts the decision
//
// Two refinements shape the failure-free cost:
//
//   - Round-1 coordinator fast path: no value can carry a timestamp above 0
//     before round 1, so the round-1 coordinator skips phase 1 and proposes
//     its own estimate immediately — the failure-free write is a true single
//     round trip, as the paper's analysis assumes. For batch-log slots the
//     fast-path proposal additionally merges any round-1 estimates already
//     in hand (all timestamps 0, so the union of proposed batches is as
//     valid a proposal as any single one), which folds a concurrent
//     proposer's cohort into the slot instead of forcing it to retry.
//   - Event-driven waits: a blocked phase sleeps until a message arrives
//     (the instance mailbox signals), a local proposal lands, or the failure
//     detector announces a suspicion transition (fd.Notifier). Poll survives
//     only as a safety-net timer for detectors that cannot announce
//     transitions.
//
// # Batch-log truncation
//
// With Config.RetainSlots set, the batch log is garbage-collected by a
// low-watermark protocol (the epoch/checkpoint discipline of STAR-style
// systems): every node piggybacks its applied watermark (the highest slot it
// has applied, nextApply-1) on outgoing consensus messages and on the failure
// detector's heartbeats; each node tracks the minimum watermark across the
// peers it does not suspect, and prunes decided slots at or below that
// minimum minus a retention tail of RetainSlots (kept so ordinary laggards
// are still answered with CDecision replay). A node asked about a slot below
// its truncation floor answers with a msg.Checkpoint — its floor plus the
// register effects it holds — and the laggard installs the effects and
// fast-forwards its application cursor instead of re-deciding the pruned
// prefix. Safety is unchanged: a node that ever acked (locked) or decided a
// slot either still holds that state, or has applied-and-pruned the slot and
// refuses to participate in any fresh instance for it, so no quorum can
// re-decide a pruned slot differently. RetainSlots 0 (the default) disables
// truncation and reproduces the unbounded retention exactly.
//
// Safety (agreement, validity) holds with any failure-detector behaviour;
// termination needs a majority of correct processes and the eventual accuracy
// of the detector — exactly the paper's correctness assumptions.
//
// Processes walk rounds strictly sequentially (no round skipping): the
// liveness argument of CT depends on every correct process eventually sending
// its phase-1 estimate for every round it passes through.
package consensus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/metrics"
	"etx/internal/msg"
	"etx/internal/queue"
)

// SendFunc transmits a payload to a peer.
type SendFunc func(to id.NodeID, p msg.Payload) error

// Config parameterizes a consensus Node.
type Config struct {
	// Self is this process.
	Self id.NodeID
	// Peers is the full, identically-ordered membership on every process
	// (it must include Self). peers[0] is the round-1 coordinator; the
	// paper makes that the default primary application server so that a
	// failure-free register write costs a single round trip.
	Peers []id.NodeID
	// Send transmits consensus messages. Messages to Self short-circuit and
	// never touch Send.
	Send SendFunc
	// Detector provides the suspect() predicate (◊P suffices for ◊S). When
	// it also implements fd.Notifier, blocked phases sleep until a suspicion
	// transition instead of re-polling.
	Detector fd.Detector
	// Poll is the safety-net interval at which a blocked phase re-checks the
	// failure detector. With a notifying detector it defaults to 25ms (a
	// backstop; wakeups are event-driven); otherwise to 1ms (the polling is
	// the only way to observe the detector).
	Poll time.Duration
	// RetainSlots enables checkpointed truncation of the batch log: decided
	// slots at or below the cluster-wide minimum applied watermark minus this
	// retention tail are pruned, and questions about pruned slots are
	// answered with checkpoint state transfer instead of decision replay.
	// 0 (the default) retains every decided slot forever — the pre-GC
	// behaviour, and the paper's deferred Section-5 problem.
	RetainSlots int
	// Now is the clock behind every throttle (probe pacing, checkpoint
	// serving, retransmission). Defaults to time.Now; deterministic
	// harnesses inject their own. Protocol *decisions* never read it —
	// rounds and timestamps are logical — it only paces traffic.
	Now func() time.Time
}

func (c Config) validate() error {
	if !c.Self.Role.Valid() {
		return errors.New("consensus: invalid Self")
	}
	if c.Send == nil {
		return errors.New("consensus: Send is required")
	}
	if c.Detector == nil {
		return errors.New("consensus: Detector is required")
	}
	found := false
	for _, p := range c.Peers {
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return errors.New("consensus: Peers must contain Self")
	}
	return nil
}

// ErrStopped is returned by Propose when the node shuts down mid-wait.
var ErrStopped = errors.New("consensus: node stopped")

// ErrAbandoned is returned by Propose when the instance was discarded by
// Abandon (request retirement) before it decided.
var ErrAbandoned = errors.New("consensus: instance abandoned")

// ErrSlotTruncated is returned by Propose for a batch-log slot at or below
// the local truncation floor: the slot is applied history, and proposing
// there again could only re-litigate it.
var ErrSlotTruncated = errors.New("consensus: slot below truncation floor")

// minResendInterval floors the blocked-phase retransmission cadence: a
// sub-millisecond safety-net poll (legacy non-notifying detectors, tests)
// must re-check the detector that often, but re-broadcasting estimates at
// that rate would amplify one lost message into a flood.
const minResendInterval = 20 * time.Millisecond

// Counters aggregates a node's protocol activity (see Stats).
type Counters struct {
	Instances metrics.Counter // instances started (proposer or passive)
	Proposes  metrics.Counter // local Propose calls that ran an instance
	Rounds    metrics.Counter // rounds entered across all instances
	Messages  metrics.Counter // remote consensus messages sent
	FastPath  metrics.Counter // round-1 coordinator fast-path proposals
	BatchOps  metrics.Counter // register ops decided through applied slots
	Resends   metrics.Counter // safety-net retransmissions from blocked phases

	SlotsPruned    metrics.Counter // batch-log slots truncated below the floor
	CkptServed     metrics.Counter // checkpoint answers sent to laggards
	CkptInstalled  metrics.Counter // checkpoints installed (fast-forwards taken)
	LiveSlots      metrics.Gauge   // decided batch-log slots currently held
	AbandonedInsts metrics.Counter // undecided instances discarded by Abandon
}

// Stats is a point-in-time snapshot of a node's counters. LiveSlots, Applied
// and Floor are gauges (current levels, not cumulative counts).
type Stats struct {
	Instances uint64
	Proposes  uint64
	Rounds    uint64
	Messages  uint64
	FastPath  uint64
	BatchOps  uint64
	Resends   uint64

	SlotsPruned          uint64
	CheckpointsServed    uint64
	CheckpointsInstalled uint64
	Abandoned            uint64
	LiveSlots            uint64 // gauge: decided batch-log slots held right now
	Applied              uint64 // gauge: highest batch-log slot applied (nextApply-1)
	Floor                uint64 // gauge: highest batch-log slot truncated
}

// Sub returns the component-wise difference s - base (benchmark deltas).
// Gauge fields (LiveSlots, Applied, Floor) keep s's absolute value — a
// "delta occupancy" would be meaningless and could underflow.
func (s Stats) Sub(base Stats) Stats {
	return Stats{
		Instances:            s.Instances - base.Instances,
		Proposes:             s.Proposes - base.Proposes,
		Rounds:               s.Rounds - base.Rounds,
		Messages:             s.Messages - base.Messages,
		FastPath:             s.FastPath - base.FastPath,
		BatchOps:             s.BatchOps - base.BatchOps,
		Resends:              s.Resends - base.Resends,
		SlotsPruned:          s.SlotsPruned - base.SlotsPruned,
		CheckpointsServed:    s.CheckpointsServed - base.CheckpointsServed,
		CheckpointsInstalled: s.CheckpointsInstalled - base.CheckpointsInstalled,
		Abandoned:            s.Abandoned - base.Abandoned,
		LiveSlots:            s.LiveSlots,
		Applied:              s.Applied,
		Floor:                s.Floor,
	}
}

// String renders the snapshot for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("instances=%d proposes=%d rounds=%d msgs=%d fastpath=%d batchops=%d resends=%d "+
		"pruned=%d ckpt=%d/%d slots=%d applied=%d floor=%d",
		s.Instances, s.Proposes, s.Rounds, s.Messages, s.FastPath, s.BatchOps, s.Resends,
		s.SlotsPruned, s.CheckpointsServed, s.CheckpointsInstalled, s.LiveSlots, s.Applied, s.Floor)
}

// Node multiplexes consensus instances for one process.
type Node struct {
	cfg  Config
	maj  int
	poll time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	counters Counters

	// appliedWM mirrors nextApply-1 so the send path can stamp outgoing
	// messages with the applied watermark without taking mu.
	appliedWM atomic.Uint64

	// fdCh is the node's single subscription to the detector's transition
	// notifications (nil without fd.Notifier); a long-lived fan-out
	// goroutine broadcasts each signal to every live instance's wake
	// channel. One subscription per node, not per instance: instances come
	// and go thousands of times a second on the batched hot path.
	fdCh chan struct{}

	mu        sync.Mutex
	stopped   bool                         // guarded by mu
	instances map[msg.RegKey]*instance     // guarded by mu
	decided   map[msg.RegKey][]byte        // guarded by mu
	subs      map[msg.RegKey][]chan []byte // guarded by mu

	// Batch-log application state: decided slots are applied strictly in
	// slot order; nextApply is the first unapplied slot.
	//
	// Retention: without RetainSlots, decided slots are kept forever —
	// a laggard's gap proposal is answered with the original decision, and
	// evicting a slot would otherwise let a fresh quorum re-decide it
	// differently. With RetainSlots > 0 the watermark protocol truncates
	// the applied prefix instead: slots at or below floor have been applied
	// by every live peer (minus the retention tail) and are pruned, and any
	// question about them is answered with checkpoint state transfer — the
	// laggard fast-forwards past the floor rather than re-deciding, so
	// agreement is preserved without unbounded memory.
	nextApply uint64 // guarded by mu
	// floor is the truncation floor: every slot <= floor has been pruned
	// (or was never held) and is served via Checkpoint. Invariant:
	// floor < nextApply. Guarded by mu.
	floor uint64
	// peerWM is the latest applied watermark heard from each peer, via the
	// piggyback on consensus messages and heartbeats. Guarded by mu.
	peerWM map[id.NodeID]uint64
	// lastProbe throttles the laggard-side gap probes sent when a peer's
	// watermark shows this node has fallen behind. Guarded by mu.
	lastProbe time.Time
	// lastCkpt throttles checkpoint serving per asking peer (a blocked
	// laggard retransmits its gap proposal on a timer); ckptCache reuses
	// one assembled snapshot for as long as the floor it was cut at stands
	// (see checkpointLocked). All three guarded by mu.
	lastCkpt       map[id.NodeID]time.Time
	ckptCache      *msg.Checkpoint
	ckptCacheFloor uint64
}

// New creates a consensus node. Call Stop when done to release its
// goroutines.
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Poll <= 0 {
		if _, ok := cfg.Detector.(fd.Notifier); ok {
			cfg.Poll = 25 * time.Millisecond
		} else {
			cfg.Poll = time.Millisecond
		}
	}
	if cfg.RetainSlots < 0 {
		cfg.RetainSlots = 0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now //etxlint:allow wallclock — the injected clock's default; every other read goes through n.now
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:       cfg,
		maj:       len(cfg.Peers)/2 + 1,
		poll:      cfg.Poll,
		ctx:       ctx,
		cancel:    cancel,
		instances: make(map[msg.RegKey]*instance),
		decided:   make(map[msg.RegKey][]byte),
		subs:      make(map[msg.RegKey][]chan []byte),
		nextApply: 1,
		peerWM:    make(map[id.NodeID]uint64, len(cfg.Peers)),
		lastCkpt:  make(map[id.NodeID]time.Time, len(cfg.Peers)),
	}
	if notif, ok := cfg.Detector.(fd.Notifier); ok {
		n.fdCh = make(chan struct{}, 1)
		notif.Subscribe(n.fdCh)
		n.wg.Add(1)
		go n.fanoutDetector(notif)
	}
	return n, nil
}

// now reads the injected clock.
func (n *Node) now() time.Time { return n.cfg.Now() }

// fanoutDetector relays the detector's transition signals to every live
// instance's wake channel.
func (n *Node) fanoutDetector(notif fd.Notifier) {
	defer n.wg.Done()
	defer notif.Unsubscribe(n.fdCh)
	for {
		select {
		case <-n.fdCh:
			n.mu.Lock()
			for _, inst := range n.instances {
				select {
				case inst.fdWake <- struct{}{}:
				default:
				}
			}
			n.mu.Unlock()
		case <-n.ctx.Done():
			return
		}
	}
}

// Stop shuts down all instance goroutines and fails pending Proposes with
// ErrStopped.
func (n *Node) Stop() {
	n.mu.Lock()
	n.stopped = true
	n.mu.Unlock()
	n.cancel()
	n.wg.Wait()
}

// Done is closed when the node stops; callers waiting on Watch channels
// select on it to observe shutdown.
func (n *Node) Done() <-chan struct{} { return n.ctx.Done() }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	live := n.counters.LiveSlots.Load()
	if live < 0 {
		live = 0
	}
	n.mu.Lock()
	floor := n.floor
	n.mu.Unlock()
	return Stats{
		Instances:            n.counters.Instances.Load(),
		Proposes:             n.counters.Proposes.Load(),
		Rounds:               n.counters.Rounds.Load(),
		Messages:             n.counters.Messages.Load(),
		FastPath:             n.counters.FastPath.Load(),
		BatchOps:             n.counters.BatchOps.Load(),
		Resends:              n.counters.Resends.Load(),
		SlotsPruned:          n.counters.SlotsPruned.Load(),
		CheckpointsServed:    n.counters.CkptServed.Load(),
		CheckpointsInstalled: n.counters.CkptInstalled.Load(),
		Abandoned:            n.counters.AbandonedInsts.Load(),
		LiveSlots:            uint64(live),
		Applied:              n.appliedWM.Load(),
		Floor:                floor,
	}
}

// Applied returns the node's applied batch-log watermark: the highest slot
// whose register effects have been applied locally (nextApply-1). This is
// the value piggybacked on outgoing consensus messages and heartbeats.
func (n *Node) Applied() uint64 { return n.appliedWM.Load() }

// Floor returns the truncation floor: every batch-log slot at or below it
// has been pruned and is served by checkpoint state transfer.
func (n *Node) Floor() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.floor
}

// Propose submits val for the instance key and blocks until that instance
// decides (returning the decided value, which may differ from val), the
// caller's ctx is cancelled, or the node stops.
func (n *Node) Propose(ctx context.Context, key msg.RegKey, val []byte) ([]byte, error) {
	if v, ok := n.Decided(key); ok {
		return v, nil
	}
	if key.Array == msg.RegBatch {
		n.mu.Lock()
		truncated := key.Slot <= n.floor
		n.mu.Unlock()
		if truncated {
			return nil, fmt.Errorf("propose %s: %w", key, ErrSlotTruncated)
		}
	}
	inst := n.getInstance(key, true)
	if inst == nil {
		// Decided between the check and instance creation.
		if v, ok := n.Decided(key); ok {
			return v, nil
		}
		return nil, ErrStopped
	}
	n.counters.Proposes.Inc()
	inst.propose(val)
	select {
	case <-inst.done:
		if inst.result == nil {
			return nil, fmt.Errorf("propose %s: %w", key, ErrAbandoned)
		}
		return inst.result, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("consensus: propose %s: %w", key, ctx.Err())
	case <-n.ctx.Done():
		return nil, ErrStopped
	}
}

// Decided returns the decided value of an instance, if any. It implements
// the weak read of the paper's wo-register: it may lag behind a decision made
// elsewhere, but repeated calls eventually observe it (decision broadcasts).
func (n *Node) Decided(key msg.RegKey) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.decided[key]
	return v, ok
}

// Watch returns a channel that receives the decided value of key (buffered;
// at most one send). If the instance already decided, the value is delivered
// immediately.
func (n *Node) Watch(key msg.RegKey) <-chan []byte {
	ch := make(chan []byte, 1)
	n.mu.Lock()
	if v, ok := n.decided[key]; ok {
		n.mu.Unlock()
		ch <- v
		return ch
	}
	n.subs[key] = append(n.subs[key], ch)
	n.mu.Unlock()
	return ch
}

// Forget discards the decided value of an instance, freeing its memory.
// This implements the garbage collection the paper defers in Section 5: it
// is only safe once the client can no longer retransmit the corresponding
// request (the at-most-once guarantee is conditioned on exactly that, as the
// paper notes). Forgetting an undecided instance is a no-op; use Abandon to
// also discard in-flight instance state.
func (n *Node) Forget(key msg.RegKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.decided, key)
}

// Abandon discards every trace of a register instance: the decided value (as
// Forget), any undecided in-flight instance, and any watchers. Retirement
// must use this rather than Forget: a register whose proposer crashed between
// propose and decide never decides, so its instance (and its watch
// subscriptions) would otherwise sit in the node's maps forever. The same
// safety condition applies — the client must be past retransmitting — and
// under it nobody is waiting on the abandoned instance; a straggling Propose
// caller gets ErrAbandoned. Batch-log slots are never abandoned (their
// lifecycle is the watermark protocol's).
//
// Known (inherited) race: a CDecision for the retired register still in
// flight at Abandon time re-records it on arrival — a forgotten key is
// indistinguishable from a never-seen one, and treating it as the latter is
// what laggard help depends on. The leak is one entry per such message, and
// the window is the transport's in-flight horizon, not the request lifetime;
// distinguishing the cases would take tombstones, i.e. the memory this call
// exists to free. Forget had the same window.
func (n *Node) Abandon(key msg.RegKey) {
	if key.Array == msg.RegBatch {
		return
	}
	n.mu.Lock()
	delete(n.decided, key)
	inst := n.instances[key]
	delete(n.instances, key)
	delete(n.subs, key)
	n.mu.Unlock()
	if inst != nil {
		n.counters.AbandonedInsts.Inc()
		// A nil result marks abandonment: the run goroutine drains out and
		// exits, and Propose waiters resolve with ErrAbandoned.
		inst.finish(nil)
	}
}

// LowestUndecidedSlot returns the lowest batch-log slot this node has no
// decision for — the slot a cohort sequencer should propose its next batch
// at. An application gap (a decided slot blocked behind a missing one) is
// returned first, so a proposal there doubles as the gap-fill probe: peers
// that already decided the slot answer with its decision.
func (n *Node) LowestUndecidedSlot() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.nextApply
	for {
		if _, ok := n.decided[msg.SlotKey(s)]; !ok {
			return s
		}
		s++
	}
}

// Keys returns every register key this node has ever seen (decided or in
// flight), excluding batch-log slots. The cleaning thread scans this in
// place of the paper's unbounded register-array walk.
func (n *Node) Keys() []msg.RegKey {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]msg.RegKey, 0, len(n.decided)+len(n.instances))
	seen := make(map[msg.RegKey]bool, len(n.decided))
	for k := range n.decided {
		if k.Array == msg.RegBatch {
			continue
		}
		out = append(out, k)
		seen[k] = true
	}
	for k := range n.instances {
		if k.Array == msg.RegBatch || seen[k] {
			continue
		}
		out = append(out, k)
	}
	return out
}

// InstanceState reports the live round and coordinator of an undecided
// instance (liveness diagnostics: DebugTry uses it to show where a stuck
// register write is blocked). ok is false when no instance is running.
func (n *Node) InstanceState(key msg.RegKey) (round uint32, coord id.NodeID, ok bool) {
	n.mu.Lock()
	inst := n.instances[key]
	n.mu.Unlock()
	if inst == nil {
		return 0, id.NodeID{}, false
	}
	r := inst.roundNow.Load()
	if r == 0 {
		r = 1 // still acquiring an estimate; round 1 is next
	}
	return r, inst.coord(r), true
}

// Handle ingests one consensus message (Estimate, Propose, CAck, CNack,
// CDecision, Checkpoint); the owning node's demux loop calls it. The applied
// watermark piggybacked on every consensus message feeds the truncation
// protocol as a side effect.
func (n *Node) Handle(from id.NodeID, p msg.Payload) {
	//etxlint:allow kindswitch — Handle's contract is the five consensus kinds; the owning demux routes everything else
	switch m := p.(type) {
	case msg.CDecision:
		n.ObserveWatermark(from, m.WM)
		n.learn(m.Reg, m.Val)
	case msg.Estimate:
		n.ObserveWatermark(from, m.WM)
		n.dispatch(from, m.Reg, p)
	case msg.Propose:
		n.ObserveWatermark(from, m.WM)
		n.dispatch(from, m.Reg, p)
	case msg.CAck:
		n.ObserveWatermark(from, m.WM)
		n.dispatch(from, m.Reg, p)
	case msg.CNack:
		n.ObserveWatermark(from, m.WM)
		n.dispatch(from, m.Reg, p)
	case msg.Checkpoint:
		n.installCheckpoint(m)
	}
}

// gapBurst caps how many consecutive decided slots a node replays in answer
// to one batch-log gap probe: a laggard within the retention tail catches up
// a window of slots per probe instead of one.
const gapBurst = 32

// probeInterval throttles the laggard-side gap probes (watermark
// observations arrive with every heartbeat and consensus message).
const probeInterval = 25 * time.Millisecond

// ckptServeInterval throttles checkpoint serving per asking peer: a blocked
// laggard retransmits on a timer, and every retransmission would otherwise
// ship a full register snapshot.
const ckptServeInterval = 50 * time.Millisecond

// ObserveWatermark records a peer's applied batch-log watermark (piggybacked
// on consensus messages and forwarded by the demux loop from heartbeats),
// advances truncation if the cluster-wide minimum moved, and — when the
// watermark shows this node has fallen behind — probes the peer for the
// first unapplied slot. The probe is an empty round-1 estimate: a peer that
// still holds the slot answers with the decision (and a burst of successors),
// one that has truncated it answers with a checkpoint.
func (n *Node) ObserveWatermark(from id.NodeID, wm uint64) {
	if wm == 0 || from == n.cfg.Self {
		return
	}
	n.mu.Lock()
	if wm > n.peerWM[from] {
		// Watermarks are monotone; truncation only needs to re-evaluate
		// when one advances.
		n.peerWM[from] = wm
		n.gcLocked()
	}
	// The probe re-arms on every observation, advanced or not: in a
	// quiescent cluster the peers' watermarks sit still while their
	// heartbeats keep arriving, and a laggard more than one burst behind
	// (or one whose previous probe fell to a fair-loss link) must keep
	// asking until it has caught up.
	var probe msg.Payload
	if wm >= n.nextApply && n.now().Sub(n.lastProbe) >= probeInterval {
		// The peer has applied our first unapplied slot: ask about it.
		n.lastProbe = n.now()
		probe = msg.Estimate{Reg: msg.SlotKey(n.nextApply), Round: 1, TS: 0, Est: msg.EncodeRegOps(nil)}
	}
	n.mu.Unlock()
	if probe != nil {
		n.send(from, probe)
	}
}

// gcLocked advances the truncation floor to the minimum applied watermark
// across live peers minus the retention tail, pruning every decided slot it
// passes. Suspected peers do not hold the floor back (a crashed application
// server never recovers in this model; a falsely suspected one catches up
// through checkpoint transfer). Caller holds n.mu.
func (n *Node) gcLocked() {
	if n.cfg.RetainSlots <= 0 {
		return
	}
	min := n.nextApply - 1
	for _, p := range n.cfg.Peers {
		if p == n.cfg.Self {
			continue
		}
		if n.cfg.Detector.Suspects(p) {
			continue
		}
		if wm := n.peerWM[p]; wm < min {
			min = wm
		}
	}
	if min <= uint64(n.cfg.RetainSlots) {
		return
	}
	newFloor := min - uint64(n.cfg.RetainSlots)
	if newFloor <= n.floor {
		return
	}
	var pruned uint64
	for s := n.floor + 1; s <= newFloor; s++ {
		if _, ok := n.decided[msg.SlotKey(s)]; ok {
			delete(n.decided, msg.SlotKey(s))
			n.counters.LiveSlots.Dec()
			pruned++
		}
	}
	n.floor = newFloor
	if pruned > 0 {
		n.counters.SlotsPruned.Add(pruned)
	}
}

// checkpointLocked assembles the state-transfer answer for a pruned slot:
// the floor plus every register effect this node holds. The snapshot covers
// all applied slots (provenance per slot is not tracked); its size is
// bounded by request retirement (Abandon), the per-register GC layered above.
//
// The snapshot is cached per floor value: any snapshot taken while the
// floor sits at F already contains every effect of slots <= F (they were
// applied before the floor could advance to F), so re-serving it to the
// next asker is as safe as rebuilding — and the rebuild is O(live
// registers) under the node-wide lock, which retrying laggards would
// otherwise pay dozens of times a second. Caller holds n.mu.
func (n *Node) checkpointLocked() msg.Checkpoint {
	if n.ckptCache != nil && n.ckptCacheFloor == n.floor {
		return *n.ckptCache
	}
	ck := msg.Checkpoint{Floor: n.floor}
	ck.Regs = make([]msg.RegOp, 0, len(n.decided))
	for k, v := range n.decided {
		if k.Array == msg.RegBatch {
			continue
		}
		ck.Regs = append(ck.Regs, msg.RegOp{Reg: k, Val: v})
	}
	n.ckptCache, n.ckptCacheFloor = &ck, n.floor
	return ck
}

// installCheckpoint fast-forwards a laggard past a peer's truncation floor:
// the shipped register effects are installed (first write wins, so anything
// already decided locally is untouched), the application cursor jumps to
// floor+1, stranded slot instances at or below the floor are finished (their
// proposers re-enqueue at a live slot), and any decided slots waiting above
// the old gap are applied.
func (n *Node) installCheckpoint(m msg.Checkpoint) {
	n.mu.Lock()
	if m.Floor < n.nextApply {
		// Nothing to skip: we are at or past this peer's floor already.
		n.mu.Unlock()
		return
	}
	var effects []decideEffect
	for _, op := range m.Regs {
		if op.Reg.Array == msg.RegBatch {
			continue // structurally excluded by the codec; belt and braces
		}
		if _, dup := n.decided[op.Reg]; dup {
			continue
		}
		n.decided[op.Reg] = op.Val
		inst := n.instances[op.Reg]
		subs := n.subs[op.Reg]
		if inst == nil && len(subs) == 0 {
			continue
		}
		delete(n.subs, op.Reg)
		effects = append(effects, decideEffect{key: op.Reg, val: op.Val, inst: inst, subs: subs})
	}
	// Drop slots we hold that are now below the floor (decided but never
	// applied: the gap in front of them is what stranded us).
	var pruned uint64
	for s := n.floor + 1; s <= m.Floor; s++ {
		if _, ok := n.decided[msg.SlotKey(s)]; ok {
			delete(n.decided, msg.SlotKey(s))
			n.counters.LiveSlots.Dec()
			pruned++
		}
	}
	if pruned > 0 {
		n.counters.SlotsPruned.Add(pruned)
	}
	if m.Floor > n.floor {
		n.floor = m.Floor
	}
	n.nextApply = m.Floor + 1
	// Slot instances at or below the floor can never decide now (every
	// up-to-date peer answers them with a checkpoint): finish them so their
	// proposing sequencers re-enqueue the surviving ops at a live slot.
	var stranded []*instance
	for k, inst := range n.instances {
		if k.Array == msg.RegBatch && k.Slot <= n.floor {
			stranded = append(stranded, inst)
			delete(n.instances, k)
		}
	}
	effects = n.applyLocked(effects)
	n.gcLocked()
	n.mu.Unlock()

	n.counters.CkptInstalled.Inc()
	for _, inst := range stranded {
		inst.finish(msg.EncodeRegOps(nil))
	}
	n.deliver(effects)
}

func (n *Node) dispatch(from id.NodeID, key msg.RegKey, p msg.Payload) {
	n.mu.Lock()
	if key.Array == msg.RegBatch && key.Slot <= n.floor {
		// The slot is truncated history: state transfer instead of replay.
		if n.now().Sub(n.lastCkpt[from]) < ckptServeInterval {
			n.mu.Unlock()
			return
		}
		n.lastCkpt[from] = n.now()
		ck := n.checkpointLocked()
		n.mu.Unlock()
		n.counters.CkptServed.Inc()
		n.send(from, ck)
		return
	}
	if v, ok := n.decided[key]; ok {
		// Help laggards: answer any chatter about a decided instance with
		// the decision itself. For batch-log slots, replay a burst of
		// consecutive decided slots: the asker is applying in slot order,
		// so the successors are its next questions.
		answers := []msg.CDecision{{Reg: key, Val: v}}
		if key.Array == msg.RegBatch {
			for s := key.Slot + 1; len(answers) < gapBurst; s++ {
				v2, ok := n.decided[msg.SlotKey(s)]
				if !ok {
					break
				}
				answers = append(answers, msg.CDecision{Reg: msg.SlotKey(s), Val: v2})
			}
		}
		n.mu.Unlock()
		for _, a := range answers {
			n.send(from, a)
		}
		return
	}
	n.mu.Unlock()
	inst := n.getInstance(key, true)
	if inst == nil {
		return
	}
	inst.inbox.Push(inMsg{from: from, p: p})
}

// decideEffect is one deferred side effect of recording a decision: waiters
// to resolve and, when relay is set, the reliable-broadcast echo to emit.
type decideEffect struct {
	key   msg.RegKey
	val   []byte
	inst  *instance
	subs  []chan []byte
	relay bool
}

// learn records a decision (local or remote) and relays it once to all peers
// (the reliable-broadcast echo). A batch-log slot decision additionally
// triggers in-order application of every ready slot: the registers named by
// the batches decide first-write-wins, resolving their waiters — without a
// per-register relay, since the slot's own echo carries the information.
func (n *Node) learn(key msg.RegKey, val []byte) {
	n.mu.Lock()
	effects := n.recordLocked(key, val)
	if key.Array == msg.RegBatch {
		// Applying slots moved our watermark; the floor may follow.
		n.gcLocked()
	}
	n.mu.Unlock()
	n.deliver(effects)
}

// deliver resolves the deferred side effects of recorded decisions outside
// the node lock: finishing instances, waking watchers, and emitting the
// reliable-broadcast echo where recordLocked asked for one.
func (n *Node) deliver(effects []decideEffect) {
	for _, e := range effects {
		if e.inst != nil {
			e.inst.finish(e.val)
		}
		for _, ch := range e.subs {
			ch <- e.val
		}
		if e.relay {
			for _, p := range n.cfg.Peers {
				if p == n.cfg.Self {
					continue
				}
				n.send(p, msg.CDecision{Reg: e.key, Val: e.val})
			}
		}
	}
}

// recordLocked stores a decision and collects its deferred side effects.
// The decided guard also dedups the reliable-broadcast echo: a key relays
// exactly once, when it is first recorded. Caller holds n.mu.
func (n *Node) recordLocked(key msg.RegKey, val []byte) []decideEffect {
	if key.Array == msg.RegBatch && key.Slot <= n.floor {
		// A straggling replay of a truncated slot (e.g. a tail-retaining
		// peer's CDecision racing a checkpoint install): its effects are
		// already part of the applied state; re-recording would leak the
		// slot below the floor forever.
		return nil
	}
	if _, ok := n.decided[key]; ok {
		return nil
	}
	n.decided[key] = val
	e := decideEffect{key: key, val: val, inst: n.instances[key], subs: n.subs[key], relay: true}
	delete(n.subs, key)
	out := []decideEffect{e}
	if key.Array == msg.RegBatch {
		n.counters.LiveSlots.Inc()
		out = n.applyLocked(out)
	}
	return out
}

// applyLocked applies every decided-and-ready batch-log slot in slot order,
// appending side effects to out. Each register op decides its register
// unless an earlier slot (or a direct per-register decision learned from a
// peer) got there first — the first-write-wins race is resolved by the
// agreed slot order, so every node computes the same winner. Registers
// decided here do not relay (the slot's own echo carries them), so an effect
// is only recorded when a local instance or watcher is waiting. Caller holds
// n.mu.
func (n *Node) applyLocked(out []decideEffect) []decideEffect {
	defer func() {
		n.appliedWM.Store(n.nextApply - 1)
	}()
	for {
		key := msg.SlotKey(n.nextApply)
		raw, ok := n.decided[key]
		if !ok {
			return out
		}
		if ops, err := msg.DecodeRegOps(raw); err == nil {
			for _, op := range ops {
				if _, dup := n.decided[op.Reg]; dup {
					continue
				}
				n.decided[op.Reg] = op.Val
				n.counters.BatchOps.Inc()
				inst := n.instances[op.Reg]
				subs := n.subs[op.Reg]
				if inst == nil && len(subs) == 0 {
					continue
				}
				delete(n.subs, op.Reg)
				out = append(out, decideEffect{key: op.Reg, val: op.Val, inst: inst, subs: subs})
			}
		}
		n.nextApply++
	}
}

// getInstance returns the live instance for key, creating and starting it if
// needed. Returns nil if the node is stopped or the key already decided
// (when create is true the decided check must be done by the caller).
func (n *Node) getInstance(key msg.RegKey, create bool) *instance {
	n.mu.Lock()
	defer n.mu.Unlock()
	if inst, ok := n.instances[key]; ok {
		return inst
	}
	if !create {
		return nil
	}
	if _, ok := n.decided[key]; ok {
		return nil
	}
	if key.Array == msg.RegBatch && key.Slot <= n.floor {
		// The slot is truncated history; an instance here could try to
		// re-litigate it (the callers check too, but the floor may have
		// advanced since they dropped the lock).
		return nil
	}
	if n.stopped {
		return nil
	}
	inst := newInstance(n, key)
	n.instances[key] = inst
	n.counters.Instances.Inc()
	n.wg.Add(1)
	go inst.run(n.ctx)
	return inst
}

// forget drops the instance bookkeeping after it decided (its memory of
// per-round tallies is released; the decided value stays).
func (n *Node) forget(key msg.RegKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.instances, key)
}

// send transmits to a peer, short-circuiting self-sends straight back into
// Handle so a register write by the round-1 coordinator costs exactly one
// network round trip, as the paper's analysis assumes. Remote sends are
// stamped with the applied watermark (the truncation protocol's piggyback).
func (n *Node) send(to id.NodeID, p msg.Payload) {
	if to == n.cfg.Self {
		n.Handle(n.cfg.Self, p)
		return
	}
	n.counters.Messages.Inc()
	_ = n.cfg.Send(to, n.stamp(p))
}

// stamp copies the applied watermark into an outgoing consensus payload.
func (n *Node) stamp(p msg.Payload) msg.Payload {
	wm := n.appliedWM.Load()
	if wm == 0 {
		return p
	}
	//etxlint:allow kindswitch — stamping only rewrites the WM-bearing consensus kinds; others pass through below
	switch m := p.(type) {
	case msg.Estimate:
		m.WM = wm
		return m
	case msg.Propose:
		m.WM = wm
		return m
	case msg.CAck:
		m.WM = wm
		return m
	case msg.CNack:
		m.WM = wm
		return m
	case msg.CDecision:
		m.WM = wm
		return m
	}
	return p
}

// --- instance ---------------------------------------------------------------

type inMsg struct {
	from id.NodeID
	p    msg.Payload
}

type estVal struct {
	val []byte
	ts  uint32
}

// instance is one consensus execution. All protocol state is confined to the
// run goroutine; cross-goroutine interaction happens via inbox, proposeCh and
// done.
type instance struct {
	node *Node
	key  msg.RegKey

	inbox *queue.Queue[inMsg]

	proposeMu sync.Mutex
	proposal  []byte
	hasProp   bool
	propWake  chan struct{}

	fdWake chan struct{} // suspicion-transition wakeups (nil without Notifier)

	done   chan struct{} // closed once result is set
	result []byte
	dOnce  sync.Once

	roundNow atomic.Uint32 // mirror of round for InstanceState

	lastResend time.Time // throttles blocked-phase retransmissions

	// goroutine-local protocol state. The per-round tally maps are lazily
	// allocated on first use: a fast-path instance that never tallies
	// estimates should not pay for the maps (instances are created
	// thousands of times a second on the hot path).
	est       []byte
	hasEst    bool
	ts        uint32
	round     uint32
	estimates map[uint32]map[id.NodeID]estVal
	proposals map[uint32][]byte
	replies   map[uint32]map[id.NodeID]bool // sender -> isAck
	decided   bool
}

func newInstance(n *Node, key msg.RegKey) *instance {
	inst := &instance{
		node:     n,
		key:      key,
		inbox:    queue.New[inMsg](),
		propWake: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	if n.fdCh != nil {
		inst.fdWake = make(chan struct{}, 1)
	}
	return inst
}

// propose records the local proposal (first one wins locally) and wakes the
// run loop.
func (inst *instance) propose(val []byte) {
	inst.proposeMu.Lock()
	if !inst.hasProp {
		inst.proposal = val
		inst.hasProp = true
	}
	inst.proposeMu.Unlock()
	select {
	case inst.propWake <- struct{}{}:
	default:
	}
}

// finish publishes the decided value and unblocks waiters. Called by
// Node.learn (possibly from another goroutine than run).
func (inst *instance) finish(val []byte) {
	inst.dOnce.Do(func() {
		inst.result = val
		close(inst.done)
	})
}

func (inst *instance) coord(r uint32) id.NodeID {
	peers := inst.node.cfg.Peers
	return peers[int((r-1)%uint32(len(peers)))]
}

// drain processes every queued message. It returns false if the instance is
// finished (decided externally).
func (inst *instance) drain() bool {
	select {
	case <-inst.done:
		return false
	default:
	}
	//etxlint:allow golifecycle — bounded queue drain: every iteration pops until the inbox empties, then returns
	for {
		m, ok := inst.inbox.Pop()
		if !ok {
			return true
		}
		//etxlint:allow kindswitch — the inbox only ever carries the phase messages Handle enqueues
		switch p := m.p.(type) {
		case msg.Estimate:
			byNode, ok := inst.estimates[p.Round]
			if !ok {
				byNode = make(map[id.NodeID]estVal)
				if inst.estimates == nil {
					//etxlint:allow epochfence — inbox payloads were fenced at Node.Handle (ObserveWatermark + slot routing) before enqueue
					inst.estimates = make(map[uint32]map[id.NodeID]estVal)
				}
				inst.estimates[p.Round] = byNode
			}
			if _, dup := byNode[m.from]; !dup {
				byNode[m.from] = estVal{val: p.Est, ts: p.TS}
			}
		case msg.Propose:
			if _, dup := inst.proposals[p.Round]; !dup {
				if inst.proposals == nil {
					//etxlint:allow epochfence — inbox payloads were fenced at Node.Handle (ObserveWatermark + slot routing) before enqueue
					inst.proposals = make(map[uint32][]byte)
				}
				inst.proposals[p.Round] = p.Val
			}
		case msg.CAck:
			inst.reply(p.Round, m.from, true)
		case msg.CNack:
			inst.reply(p.Round, m.from, false)
		}
	}
}

func (inst *instance) reply(round uint32, from id.NodeID, ack bool) {
	byNode, ok := inst.replies[round]
	if !ok {
		byNode = make(map[id.NodeID]bool)
		if inst.replies == nil {
			inst.replies = make(map[uint32]map[id.NodeID]bool)
		}
		inst.replies[round] = byNode
	}
	if _, dup := byNode[from]; !dup {
		byNode[from] = ack
	}
}

// blockEvent is what ended one blocked wait.
type blockEvent uint8

const (
	blockExit    blockEvent = iota // shutdown or external decision
	blockWake                      // message, proposal or detector transition
	blockTimeout                   // safety-net timer: re-check and RETRANSMIT
)

// block waits for new input: a message, a local proposal, a failure-detector
// transition, the safety-net poll tick, or shutdown. With a notifying
// detector the poll timer is a pure backstop; every productive wakeup is
// event-driven. A timeout is reported distinctly so the blocked phase can
// retransmit its outbound message: consensus assumes reliable channels, but
// the links underneath are fair-loss (a transient partition silently drops
// messages), and a dropped estimate, proposal or ack would otherwise stall
// the instance forever despite a live majority.
func (inst *instance) block(ctx context.Context, timer *time.Timer) blockEvent {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	timer.Reset(inst.node.poll)
	if inst.fdWake == nil {
		select {
		case <-inst.inbox.Out():
			return blockWake
		case <-inst.propWake:
			return blockWake
		case <-timer.C:
			return blockTimeout
		case <-inst.done:
			return blockExit
		case <-ctx.Done():
			return blockExit
		}
	}
	select {
	case <-inst.inbox.Out():
		return blockWake
	case <-inst.propWake:
		return blockWake
	case <-inst.fdWake:
		return blockWake
	case <-timer.C:
		return blockTimeout
	case <-inst.done:
		return blockExit
	case <-ctx.Done():
		return blockExit
	}
}

// run executes the CT round structure until a decision is reached or the
// node stops.
func (inst *instance) run(ctx context.Context) {
	defer inst.node.wg.Done()
	defer inst.node.forget(inst.key)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()

	self := inst.node.cfg.Self
	maj := inst.node.maj

	// Acquire an initial estimate: the local proposal, or the first value
	// observed in any incoming estimate/proposal.
	for !inst.hasEst {
		if !inst.drain() {
			return
		}
		inst.proposeMu.Lock()
		if inst.hasProp {
			inst.est, inst.hasEst, inst.ts = inst.proposal, true, 0
		}
		inst.proposeMu.Unlock()
		if !inst.hasEst {
			inst.adoptFromMessages()
		}
		if inst.hasEst {
			break
		}
		if inst.block(ctx, timer) == blockExit {
			return
		}
	}

	for {
		inst.round++
		inst.roundNow.Store(inst.round)
		inst.node.counters.Rounds.Inc()
		r := inst.round
		c := inst.coord(r)

		// Phase 1 + 2. In round 1 a coordinator that is up to date can skip
		// gathering estimates: no value can be locked before round 1, so its
		// own estimate is safe to propose directly. This is the optimization
		// the paper's analysis assumes ("in a nice run, it takes only a round
		// trip for the first primary to write into the register"); for a
		// batch-log slot the fast-path proposal folds in any round-1
		// estimates already received (all timestamps are 0, so a merged
		// batch is as proposable as any single one). In every other case the
		// estimate is broadcast to all peers — the coordinator tallies it,
		// and it simultaneously announces the instance to passive replicas
		// so that they join and keep every round live.
		var proposedVal []byte
		_, haveProposal := inst.proposals[r]
		switch {
		case c == self && r == 1:
			proposedVal = inst.est
			if inst.key.Array == msg.RegBatch {
				proposedVal = mergeBatches(proposedVal, inst.estimates[r])
			}
			inst.node.counters.FastPath.Inc()
			for _, p := range inst.node.cfg.Peers {
				inst.node.send(p, msg.Propose{Reg: inst.key, Round: r, Val: proposedVal})
			}
		case haveProposal:
			// The round's proposal is already in hand (we joined late): our
			// phase-1 estimate could no longer influence it, so skip the
			// broadcast and fall through to phase 3.
		default:
			for _, p := range inst.node.cfg.Peers {
				inst.node.send(p, msg.Estimate{Reg: inst.key, Round: r, TS: inst.ts, Est: inst.est})
			}
			if c == self {
				// Phase 2: gather a majority of estimates, propose the freshest.
				for {
					if !inst.drain() {
						return
					}
					if len(inst.estimates[r]) >= maj {
						break
					}
					switch inst.block(ctx, timer) {
					case blockExit:
						return
					case blockTimeout:
						// Re-announce the round: a participant whose
						// estimate (or whose copy of ours) fell to a
						// fair-loss link re-joins and re-answers.
						inst.resendEstimates(r)
					}
				}
				best := estVal{}
				first := true
				for _, ev := range inst.estimates[r] {
					if first || ev.ts > best.ts {
						best = ev
						first = false
					}
				}
				proposedVal = best.val
				if inst.key.Array == msg.RegBatch && best.ts == 0 {
					// No gathered estimate carries a lock (a decided value
					// would have locked a majority, and any majority
					// intersects ours), so the union of the proposed batches
					// is safe to propose — concurrent cohorts merge instead
					// of fighting over the slot.
					proposedVal = mergeBatches(proposedVal, inst.estimates[r])
				}
				for _, p := range inst.node.cfg.Peers {
					inst.node.send(p, msg.Propose{Reg: inst.key, Round: r, Val: proposedVal})
				}
			}
		}

		// Phase 3 (everyone): adopt the coordinator's proposal, or nack if the
		// coordinator is suspected.
		acked := false
		for {
			if !inst.drain() {
				return
			}
			if v, ok := inst.proposals[r]; ok {
				inst.est, inst.ts = v, r
				inst.node.send(c, msg.CAck{Reg: inst.key, Round: r})
				acked = true
				break
			}
			if c != self && inst.node.cfg.Detector.Suspects(c) {
				inst.node.send(c, msg.CNack{Reg: inst.key, Round: r})
				break
			}
			switch inst.block(ctx, timer) {
			case blockExit:
				return
			case blockTimeout:
				// Our estimate may never have reached the coordinator (its
				// phase-2 gather would stall on a live majority), or the
				// proposal may have been dropped on its way to us (a decided
				// coordinator answers chatter with the decision).
				inst.resendEstimates(r)
			}
		}

		// Practical refinement over textbook CT: a participant that acked
		// waits for the decision before starting the next round, advancing
		// early only if it comes to suspect the coordinator or sees evidence
		// of a higher round (the coordinator moved on after a failed round).
		// This removes the round-cycling chatter of eager participants
		// without touching liveness: every exit condition is driven by a
		// message that the assumptions guarantee, or by the detector.
		if acked && c != self {
			for {
				if !inst.drain() {
					return
				}
				if inst.node.cfg.Detector.Suspects(c) || inst.sawRoundAbove(r) {
					break
				}
				switch inst.block(ctx, timer) {
				case blockExit:
					return
				case blockTimeout:
					// Our ack (or the decision itself) may have been lost:
					// re-ack. A coordinator still tallying deduplicates; one
					// that already decided answers with the decision.
					if inst.shouldResend() {
						inst.node.counters.Resends.Inc()
						inst.node.send(c, msg.CAck{Reg: inst.key, Round: r})
					}
				}
			}
		}

		// Phase 4 (coordinator): a majority of acks decides.
		if c == self {
			if proposedVal == nil {
				proposedVal = inst.proposals[r]
			}
			for {
				if !inst.drain() {
					return
				}
				acks, nacks := 0, 0
				for _, isAck := range inst.replies[r] {
					if isAck {
						acks++
					} else {
						nacks++
					}
				}
				if acks >= maj {
					inst.node.learn(inst.key, proposedVal)
					return
				}
				if acks+nacks >= maj {
					break // round failed; move on
				}
				switch inst.block(ctx, timer) {
				case blockExit:
					return
				case blockTimeout:
					// A dropped proposal leaves participants blocked in
					// phase 3 with nothing to answer: re-propose.
					if inst.shouldResend() {
						inst.node.counters.Resends.Inc()
						for _, p := range inst.node.cfg.Peers {
							inst.node.send(p, msg.Propose{Reg: inst.key, Round: r, Val: proposedVal})
						}
					}
				}
			}
		}

		// Release tallies of the finished round.
		delete(inst.estimates, r)
		delete(inst.replies, r)
		delete(inst.proposals, r)
	}
}

// shouldResend throttles blocked-phase retransmissions to at most one per
// max(Poll, minResendInterval): the safety-net timer may tick far faster
// than that (legacy 1ms polling), and re-broadcasting on every tick would
// amplify one lost message into a flood.
func (inst *instance) shouldResend() bool {
	interval := inst.node.poll
	if interval < minResendInterval {
		interval = minResendInterval
	}
	now := inst.node.now()
	if !inst.lastResend.IsZero() && now.Sub(inst.lastResend) < interval {
		return false
	}
	inst.lastResend = now
	return true
}

// resendEstimates re-broadcasts this round's phase-1 estimate (the
// safety-net retransmission of blocked phases 2 and 3).
func (inst *instance) resendEstimates(r uint32) {
	if !inst.shouldResend() {
		return
	}
	inst.node.counters.Resends.Inc()
	for _, p := range inst.node.cfg.Peers {
		inst.node.send(p, msg.Estimate{Reg: inst.key, Round: r, TS: inst.ts, Est: inst.est})
	}
}

// sawRoundAbove reports whether any message for a round greater than r has
// been received (evidence that the group moved past r).
func (inst *instance) sawRoundAbove(r uint32) bool {
	for round := range inst.estimates {
		if round > r {
			return true
		}
	}
	for round := range inst.proposals {
		if round > r {
			return true
		}
	}
	for round := range inst.replies {
		if round > r {
			return true
		}
	}
	return false
}

// adoptFromMessages bootstraps a passive participant's estimate from any
// value-carrying message already received.
func (inst *instance) adoptFromMessages() {
	for _, byNode := range inst.estimates {
		for _, ev := range byNode {
			inst.est, inst.hasEst, inst.ts = ev.val, true, 0
			return
		}
	}
	for _, v := range inst.proposals {
		inst.est, inst.hasEst, inst.ts = v, true, 0
		return
	}
}

// mergeBatches folds every timestamp-0 batch estimate into base, keeping the
// first op seen per register (base's ops win ties, so the coordinator's own
// cohort keeps its internal order). A value that fails to parse contributes
// nothing; if base itself is corrupt it is returned unchanged — merging is an
// inclusion optimization, never a correctness requirement.
func mergeBatches(base []byte, ests map[id.NodeID]estVal) []byte {
	ops, err := msg.DecodeRegOps(base)
	if err != nil {
		return base
	}
	seen := make(map[msg.RegKey]bool, len(ops))
	for _, op := range ops {
		seen[op.Reg] = true
	}
	merged := false
	for _, ev := range ests {
		if ev.ts != 0 {
			continue
		}
		more, err := msg.DecodeRegOps(ev.val)
		if err != nil {
			continue
		}
		for _, op := range more {
			if seen[op.Reg] {
				continue
			}
			seen[op.Reg] = true
			ops = append(ops, op)
			merged = true
		}
	}
	if !merged {
		return base
	}
	return msg.EncodeRegOps(ops)
}
