package consensus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// rig wires n consensus nodes over a MemNetwork.
type rig struct {
	t     *testing.T
	net   *transport.MemNetwork
	peers []id.NodeID
	nodes map[id.NodeID]*Node
	eps   map[id.NodeID]transport.Endpoint
	dets  map[id.NodeID]*fd.Scripted
	wg    sync.WaitGroup
}

func newRig(t *testing.T, n int, opts transport.Options) *rig {
	t.Helper()
	return newRigWith(t, n, opts, 200*time.Microsecond)
}

func newRigWith(t *testing.T, n int, opts transport.Options, poll time.Duration) *rig {
	t.Helper()
	return newRigRetain(t, n, opts, poll, 0)
}

// newRigRetain is newRigWith with batch-log truncation enabled
// (Config.RetainSlots).
func newRigRetain(t *testing.T, n int, opts transport.Options, poll time.Duration, retain int) *rig {
	t.Helper()
	r := &rig{
		t:     t,
		net:   transport.NewMemNetwork(opts),
		nodes: make(map[id.NodeID]*Node),
		eps:   make(map[id.NodeID]transport.Endpoint),
		dets:  make(map[id.NodeID]*fd.Scripted),
	}
	for i := 1; i <= n; i++ {
		r.peers = append(r.peers, id.AppServer(i))
	}
	for _, p := range r.peers {
		p := p
		ep, err := r.net.Attach(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewScripted()
		node, err := New(Config{
			Self:        p,
			Peers:       r.peers,
			Detector:    det,
			Poll:        poll,
			RetainSlots: retain,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.eps[p] = ep
		r.nodes[p] = node
		r.dets[p] = det
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for env := range ep.Recv() {
				node.Handle(env.From, env.Payload)
			}
		}()
	}
	t.Cleanup(func() {
		for _, nd := range r.nodes {
			nd.Stop()
		}
		r.net.Close()
		r.wg.Wait()
	})
	return r
}

// crash takes a node fully down: network crash plus consensus stop.
func (r *rig) crash(p id.NodeID) {
	r.net.Crash(p)
	r.nodes[p].Stop()
	for _, other := range r.peers {
		if other != p {
			r.dets[other].Set(p, true)
		}
	}
}

func key(try uint64) msg.RegKey {
	return msg.RegKey{Array: msg.RegD, RID: id.ResultID{Client: id.Client(1), Seq: 1, Try: try}}
}

func TestSingleProposerDecidesOwnValue(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := r.nodes[r.peers[0]].Propose(ctx, key(1), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "hello" {
		t.Fatalf("decided %q, want %q (validity: sole proposal must win)", v, "hello")
	}
}

func TestDecisionPropagatesToAllNodes(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := r.nodes[r.peers[1]].Propose(ctx, key(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.peers {
		p := p
		deadline := time.Now().Add(3 * time.Second)
		for {
			if v, ok := r.nodes[p].Decided(key(1)); ok {
				if string(v) != "v" {
					t.Fatalf("%v decided %q, want v", p, v)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%v never learned the decision", p)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestConcurrentProposersAgree(t *testing.T) {
	r := newRig(t, 3, transport.Options{DefaultLatency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	k := key(1)
	results := make([][]byte, len(r.peers))
	var wg sync.WaitGroup
	for i, p := range r.peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.nodes[p].Propose(ctx, k, []byte(fmt.Sprintf("val-%d", i)))
			if err != nil {
				t.Errorf("%v: %v", p, err)
				return
			}
			results[i] = v
		}()
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("agreement violated: %q vs %q", results[0], results[i])
		}
	}
	// Validity: the decided value must be one of the proposals.
	ok := false
	for i := range r.peers {
		if string(results[0]) == fmt.Sprintf("val-%d", i) {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("decided value %q was never proposed", results[0])
	}
}

func TestDecidesAfterCoordinatorCrash(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	// Crash the round-1 coordinator before anyone proposes.
	r.crash(r.peers[0])
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := r.nodes[r.peers[1]].Propose(ctx, key(1), []byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "survivor" {
		t.Fatalf("decided %q", v)
	}
}

func TestSafeUnderFalseSuspicion(t *testing.T) {
	// Every node wrongly suspects everyone: rounds keep failing via nacks
	// until a coordinator round where suspicion is lifted. Safety must hold
	// throughout; to get termination we lift suspicions after a while.
	r := newRig(t, 3, transport.Options{})
	for _, p := range r.peers {
		for _, q := range r.peers {
			if p != q {
				r.dets[p].Set(q, true)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan struct{})
	var v1, v2 []byte
	var err1, err2 error
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); v1, err1 = r.nodes[r.peers[0]].Propose(ctx, key(1), []byte("a")) }()
		go func() { defer wg.Done(); v2, err2 = r.nodes[r.peers[1]].Propose(ctx, key(1), []byte("b")) }()
		wg.Wait()
	}()
	time.Sleep(50 * time.Millisecond)
	for _, p := range r.peers {
		for _, q := range r.peers {
			r.dets[p].Clear(q)
		}
	}
	<-done
	if err1 != nil || err2 != nil {
		t.Fatalf("propose errors: %v / %v", err1, err2)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("agreement violated under false suspicion: %q vs %q", v1, v2)
	}
}

func TestManyInstancesInParallel(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	const instances = 50
	var wg sync.WaitGroup
	errs := make(chan error, instances*len(r.peers))
	for i := 0; i < instances; i++ {
		k := key(uint64(i + 1))
		want := []byte(fmt.Sprintf("i%d", i))
		// A random proposer per instance.
		proposer := r.peers[i%len(r.peers)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := r.nodes[proposer].Propose(ctx, k, want)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(v, want) {
				errs <- fmt.Errorf("instance %s: got %q want %q", k, v, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestProposeOnDecidedInstanceReturnsDecision(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n0 := r.nodes[r.peers[0]]
	if _, err := n0.Propose(ctx, key(1), []byte("first")); err != nil {
		t.Fatal(err)
	}
	v, err := n0.Propose(ctx, key(1), []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "first" {
		t.Fatalf("write-once violated: second propose returned %q", v)
	}
}

func TestLatePartitionedNodeCatchesUp(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	late := r.peers[2]
	others := []id.NodeID{r.peers[0], r.peers[1]}
	r.net.Partition([]id.NodeID{late}, others)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := r.nodes[r.peers[0]].Propose(ctx, key(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.nodes[late].Decided(key(1)); ok {
		t.Fatal("partitioned node cannot have learned the decision")
	}
	r.net.Heal()
	// The late node proposes; the decided peers answer with the decision.
	v, err := r.nodes[late].Propose(ctx, key(1), []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v" {
		t.Fatalf("late node decided %q, want the established value", v)
	}
}

func TestWatchDeliversDecision(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n2 := r.nodes[r.peers[1]]
	ch := n2.Watch(key(1))
	if _, err := r.nodes[r.peers[0]].Propose(ctx, key(1), []byte("w")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-ch:
		if string(v) != "w" {
			t.Fatalf("watch got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never fired")
	}
	// Watch after decision delivers immediately.
	select {
	case v := <-n2.Watch(key(1)):
		if string(v) != "w" {
			t.Fatalf("post-decision watch got %q", v)
		}
	case <-time.After(time.Second):
		t.Fatal("post-decision watch never fired")
	}
}

func TestKeysTracksSeenInstances(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n0 := r.nodes[r.peers[0]]
	if len(n0.Keys()) != 0 {
		t.Fatal("fresh node must have no keys")
	}
	n0.Propose(ctx, key(1), []byte("a"))
	n0.Propose(ctx, key(2), []byte("b"))
	ks := n0.Keys()
	if len(ks) != 2 {
		t.Fatalf("Keys() = %v, want 2 entries", ks)
	}
}

func TestStopUnblocksPropose(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	// Partition the proposer so the instance cannot finish.
	p := r.peers[0]
	r.net.Partition([]id.NodeID{p}, []id.NodeID{r.peers[1], r.peers[2]})
	errCh := make(chan error, 1)
	go func() {
		_, err := r.nodes[p].Propose(context.Background(), key(1), []byte("x"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.nodes[p].Stop()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("got %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Propose never unblocked after Stop")
	}
}

func TestProposeCtxCancel(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	p := r.peers[0]
	r.net.Partition([]id.NodeID{p}, []id.NodeID{r.peers[1], r.peers[2]})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := r.nodes[p].Propose(ctx, key(1), []byte("x"))
	if err == nil {
		t.Fatal("Propose must fail when ctx expires without majority")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Self:     id.AppServer(1),
		Peers:    []id.NodeID{id.AppServer(1)},
		Send:     func(id.NodeID, msg.Payload) error { return nil },
		Detector: fd.NewScripted(),
	}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Self: good.Self, Peers: good.Peers, Detector: good.Detector},                                    // no Send
		{Self: good.Self, Peers: good.Peers, Send: good.Send},                                            // no Detector
		{Self: good.Self, Peers: []id.NodeID{id.AppServer(2)}, Send: good.Send, Detector: good.Detector}, // Self not a peer
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestAgreementUnderRandomizedSchedules runs many instances under jitter,
// random proposers and a mid-run crash of a minority, then asserts agreement
// and validity across all survivors for every instance.
func TestAgreementUnderRandomizedSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized schedule test skipped in -short mode")
	}
	const nodes = 5
	r := newRig(t, nodes, transport.Options{
		DefaultLatency: 100 * time.Microsecond,
		Jitter:         400 * time.Microsecond,
		Seed:           99,
	})
	rng := rand.New(rand.NewSource(5))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const instances = 30
	type out struct {
		inst int
		val  []byte
	}
	results := make(chan out, instances*nodes)
	var wg sync.WaitGroup
	for i := 0; i < instances; i++ {
		k := key(uint64(i + 1))
		// 1..3 random proposers per instance, never including node 5 (which
		// we will crash; a proposal stuck on a crashed node is legitimate).
		nProposers := 1 + rng.Intn(3)
		for j := 0; j < nProposers; j++ {
			p := r.peers[rng.Intn(nodes-1)]
			val := []byte(fmt.Sprintf("i%d-p%d", i, p.Index))
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := r.nodes[p].Propose(ctx, k, val)
				if err != nil {
					t.Errorf("instance %d on %v: %v", i, p, err)
					return
				}
				results <- out{inst: i, val: v}
			}(i)
		}
	}
	// Crash one node (a minority of 5) while instances are running.
	time.Sleep(2 * time.Millisecond)
	r.crash(r.peers[4])

	wg.Wait()
	close(results)
	byInst := make(map[int][]byte)
	for o := range results {
		if prev, ok := byInst[o.inst]; ok {
			if !bytes.Equal(prev, o.val) {
				t.Fatalf("instance %d: agreement violated (%q vs %q)", o.inst, prev, o.val)
			}
		} else {
			byInst[o.inst] = o.val
		}
	}
	if len(byInst) != instances {
		t.Fatalf("only %d/%d instances decided", len(byInst), instances)
	}
}
