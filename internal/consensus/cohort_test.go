package consensus

import (
	"bytes"
	"context"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

func regKey(array msg.RegArray, try uint64) msg.RegKey {
	return msg.RegKey{Array: array, RID: id.ResultID{Client: id.Client(1), Seq: 1, Try: try}}
}

// waitDecided polls until key is decided at node (decisions propagate
// asynchronously via the slot relay).
func waitDecided(t *testing.T, n *Node, key msg.RegKey) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := n.Decided(key); ok {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("%v never decided at %v", key, n.cfg.Self)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSlotBatchDecidesEveryRegister: one batch-consensus slot carrying a
// mixed cohort (a regA claim and a regD decision for different tries) must
// decide both registers on every node, each with its own value.
func TestSlotBatchDecidesEveryRegister(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	kA, kD := regKey(msg.RegA, 1), regKey(msg.RegD, 2)
	ops := []msg.RegOp{
		{Reg: kA, Val: []byte("appserver-1")},
		{Reg: kD, Val: []byte("commit!")},
	}
	dec, err := r.nodes[r.peers[0]].Propose(ctx, msg.SlotKey(1), msg.EncodeRegOps(ops))
	if err != nil {
		t.Fatal(err)
	}
	back, err := msg.DecodeRegOps(dec)
	if err != nil || len(back) != 2 {
		t.Fatalf("decided slot value corrupt: %v / %v", back, err)
	}
	for _, p := range r.peers {
		if v := waitDecided(t, r.nodes[p], kA); !bytes.Equal(v, []byte("appserver-1")) {
			t.Fatalf("%v: regA = %q", p, v)
		}
		if v := waitDecided(t, r.nodes[p], kD); !bytes.Equal(v, []byte("commit!")) {
			t.Fatalf("%v: regD = %q", p, v)
		}
	}
	// Batch slots are internal: the register scan must not surface them.
	for _, k := range r.nodes[r.peers[0]].Keys() {
		if k.Array == msg.RegBatch {
			t.Fatalf("Keys() leaked batch slot %v", k)
		}
	}
}

// TestSlotOrderResolvesWriteRaces: two slots both writing the same register
// must resolve first-write-wins in SLOT order on every node, even when the
// later slot decides first (out-of-order arrival): application holds until
// the gap fills.
func TestSlotOrderResolvesWriteRaces(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	k := regKey(msg.RegD, 1)
	// Slot 2 decides first, carrying the LOSING write...
	if _, err := r.nodes[r.peers[0]].Propose(ctx, msg.SlotKey(2),
		msg.EncodeRegOps([]msg.RegOp{{Reg: k, Val: []byte("late")}})); err != nil {
		t.Fatal(err)
	}
	// ...and must not apply: slot 1 is still undecided.
	if _, ok := r.nodes[r.peers[0]].Decided(k); ok {
		t.Fatal("slot 2 applied ahead of slot 1: slot order violated")
	}
	if got := r.nodes[r.peers[0]].LowestUndecidedSlot(); got != 1 {
		t.Fatalf("LowestUndecidedSlot = %d, want the gap at 1", got)
	}
	// Slot 1 carries the winner.
	if _, err := r.nodes[r.peers[0]].Propose(ctx, msg.SlotKey(1),
		msg.EncodeRegOps([]msg.RegOp{{Reg: k, Val: []byte("first")}})); err != nil {
		t.Fatal(err)
	}
	for _, p := range r.peers {
		if v := waitDecided(t, r.nodes[p], k); !bytes.Equal(v, []byte("first")) {
			t.Fatalf("%v: register = %q, want the slot-1 write", p, v)
		}
	}
}

// TestFastPathCountsAndStats: a failure-free write led by the round-1
// coordinator is one instance, one proposal, one round — and a fast-path
// hit.
func TestFastPathCountsAndStats(t *testing.T) {
	r := newRig(t, 3, transport.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n0 := r.nodes[r.peers[0]]
	if _, err := n0.Propose(ctx, regKey(msg.RegA, 1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := n0.Stats()
	if st.Proposes != 1 || st.FastPath != 1 || st.Instances != 1 || st.Rounds != 1 {
		t.Fatalf("coordinator stats = %+v, want one instance/proposal/round/fast-path", st)
	}
	if st.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

// TestEventDrivenSuspicionWakeup: with the safety-net poll effectively
// disabled (one hour), a phase blocked on a dead coordinator must still
// terminate promptly once the detector announces the suspicion — proof that
// blocked phases wake on detector events, not polling.
func TestEventDrivenSuspicionWakeup(t *testing.T) {
	r := newRigPoll(t, 3, time.Hour)
	dead := r.peers[0] // round-1 coordinator
	r.net.Crash(dead)
	r.nodes[dead].Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan []byte, 1)
	go func() {
		v, err := r.nodes[r.peers[1]].Propose(ctx, regKey(msg.RegD, 1), []byte("survivor"))
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	// Let the proposal block inside round 1 (coordinator dead, not yet
	// suspected), then flip the detectors: the transition signal is the only
	// thing that can wake the blocked phase before the one-hour poll.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("decided before any suspicion: test premise broken")
	default:
	}
	for _, p := range r.peers[1:] {
		r.dets[p].Set(dead, true)
	}
	select {
	case v := <-done:
		if string(v) != "survivor" {
			t.Fatalf("decided %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked phase never woke on the suspicion transition")
	}
}

// TestSurvivesDroppedMessages: consensus assumes reliable channels, but the
// links underneath are fair-loss — a transient partition silently drops
// messages. A round whose estimate or proposal fell into a partition must
// still terminate once the partition heals, recovered by the safety-net
// retransmission of blocked phases (there is no suspicion here: everyone is
// alive the whole time).
func TestSurvivesDroppedMessages(t *testing.T) {
	r := newRigPoll(t, 3, 5*time.Millisecond)
	// Isolate the round-1 coordinator while the other two try to start the
	// instance: their estimates and acks to it (and its proposal to them)
	// are silently dropped, exactly like the soak test's partitions.
	r.net.Partition([]id.NodeID{r.peers[0]}, []id.NodeID{r.peers[1], r.peers[2]})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan []byte, 2)
	for _, p := range []id.NodeID{r.peers[0], r.peers[1]} {
		p := p
		go func() {
			v, err := r.nodes[p].Propose(ctx, regKey(msg.RegA, 1), []byte(p.String()))
			if err != nil {
				t.Errorf("%v: %v", p, err)
			}
			done <- v
		}()
	}
	// Let the round-1 messages fall into the partition, then heal. Nothing
	// but the blocked phases' retransmission can revive the instance: no
	// process crashed, so the detector never fires.
	time.Sleep(30 * time.Millisecond)
	r.net.Heal()

	var vals [][]byte
	for i := 0; i < 2; i++ {
		select {
		case v := <-done:
			vals = append(vals, v)
		case <-time.After(8 * time.Second):
			t.Fatal("instance never recovered from the dropped round-1 messages")
		}
	}
	if !bytes.Equal(vals[0], vals[1]) {
		t.Fatalf("agreement violated after partition: %q vs %q", vals[0], vals[1])
	}
	if st := r.nodes[r.peers[0]].Stats(); st.Resends == 0 {
		if st2 := r.nodes[r.peers[1]].Stats(); st2.Resends == 0 {
			t.Error("no retransmissions recorded; the recovery path was not exercised")
		}
	}
}

// TestMergeBatches covers the round-1 fast-path merge rules directly.
func TestMergeBatches(t *testing.T) {
	k1, k2, k3 := regKey(msg.RegA, 1), regKey(msg.RegA, 2), regKey(msg.RegA, 3)
	base := msg.EncodeRegOps([]msg.RegOp{{Reg: k1, Val: []byte("a")}})
	ests := map[id.NodeID]estVal{
		id.AppServer(2): {val: msg.EncodeRegOps([]msg.RegOp{
			{Reg: k1, Val: []byte("loser")}, // duplicate register: base wins
			{Reg: k2, Val: []byte("b")},
		})},
		id.AppServer(3): {val: msg.EncodeRegOps([]msg.RegOp{{Reg: k3, Val: []byte("c")}}), ts: 2}, // locked: excluded
	}
	merged, err := msg.DecodeRegOps(mergeBatches(base, ests))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[msg.RegKey]string, len(merged))
	for _, op := range merged {
		got[op.Reg] = string(op.Val)
	}
	if len(got) != 2 || got[k1] != "a" || got[k2] != "b" {
		t.Fatalf("merged = %v, want base's k1 plus ts-0 k2 only", got)
	}
	// A corrupt base passes through untouched.
	if out := mergeBatches([]byte{0xff}, ests); !bytes.Equal(out, []byte{0xff}) {
		t.Fatal("corrupt base was rewritten")
	}
}

// newRigPoll is newRig with an explicit safety-net poll.
func newRigPoll(t *testing.T, n int, poll time.Duration) *rig {
	t.Helper()
	return newRigWith(t, n, transport.Options{}, poll)
}
