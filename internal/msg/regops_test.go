package msg

import (
	"bytes"
	"errors"
	"testing"

	"etx/internal/id"
)

func sampleOps() []RegOp {
	rid1 := id.ResultID{Client: id.Client(1), Seq: 7, Try: 1}
	rid2 := id.ResultID{Client: id.Client(2), Seq: 9, Try: 3}
	return []RegOp{
		{Reg: RegKey{Array: RegA, RID: rid1}, Val: []byte("who")},
		{Reg: RegKey{Array: RegD, RID: rid2}, Val: []byte("decision-bytes")},
		{Reg: RegKey{Array: RegA, RID: rid2}, Val: nil},
	}
}

func opsEqual(a, b []RegOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Reg != b[i].Reg || !bytes.Equal(a[i].Val, b[i].Val) {
			return false
		}
	}
	return true
}

func TestRegOpsEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{
		From:    id.AppServer(2),
		To:      id.AppServer(1),
		Payload: RegOps{Ops: sampleOps()},
	}
	buf, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := back.Payload.(RegOps)
	if !ok {
		t.Fatalf("decoded %T, want RegOps", back.Payload)
	}
	if !opsEqual(got.Ops, sampleOps()) {
		t.Fatalf("ops diverged: %v vs %v", got.Ops, sampleOps())
	}
}

func TestSlotKeyRoundTripsInConsensusPayloads(t *testing.T) {
	slot := SlotKey(12345)
	payloads := []Payload{
		Estimate{Reg: slot, Round: 3, TS: 1, Est: []byte("batch")},
		Propose{Reg: slot, Round: 3, Val: []byte("batch")},
		CAck{Reg: slot, Round: 3},
		CNack{Reg: slot, Round: 4},
		CDecision{Reg: slot, Val: []byte("batch")},
	}
	for _, p := range payloads {
		buf, err := Encode(Envelope{From: id.AppServer(1), To: id.AppServer(2), Payload: p})
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		back, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if !payloadEqual(back.Payload, p) {
			t.Fatalf("%T did not round-trip: %#v vs %#v", p, back.Payload, p)
		}
	}
}

func TestRegOpsInsideBatch(t *testing.T) {
	env := Envelope{
		From: id.AppServer(3),
		To:   id.AppServer(1),
		Payload: Batch{Msgs: []Payload{
			RegOps{Ops: sampleOps()},
			Heartbeat{Seq: 9},
		}},
	}
	buf, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := back.Payload.(Batch)
	if !ok || len(b.Msgs) != 2 {
		t.Fatalf("batch did not round-trip: %#v", back.Payload)
	}
	if got, ok := b.Msgs[0].(RegOps); !ok || !opsEqual(got.Ops, sampleOps()) {
		t.Fatalf("member 0 diverged: %#v", b.Msgs[0])
	}
}

func TestEncodeRegOpsRoundTrip(t *testing.T) {
	for _, ops := range [][]RegOp{nil, {}, sampleOps()} {
		buf := EncodeRegOps(ops)
		back, err := DecodeRegOps(buf)
		if err != nil {
			t.Fatalf("ops %v: %v", ops, err)
		}
		if len(back) != len(ops) || (len(ops) > 0 && !opsEqual(back, ops)) {
			t.Fatalf("ops diverged: %v vs %v", back, ops)
		}
	}
}

// TestDecodeRegOpsRejectsMalformed is the fuzz-style table over corrupted
// batch values: the decode path must reject truncation, oversized counts,
// trailing bytes and slot-targeting ops — mirroring the Batch member guards
// — so a corrupt batch can never be half-applied.
func TestDecodeRegOpsRejectsMalformed(t *testing.T) {
	good := EncodeRegOps(sampleOps())
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty-with-count", []byte{3}},                     // count 3, no ops
		{"truncated-mid-op", good[:len(good)-3]},            // op value cut short
		{"oversized-count", []byte{0xff, 0xff, 0xff, 0x7f}}, // count beyond buffer
		{"trailing-bytes", append(append([]byte{}, good...), 0xAA)},
		{"slot-target", EncodeRegOps([]RegOp{{Reg: SlotKey(4), Val: []byte("x")}})},
		{"bare-truncated-varint", []byte{0x80}},
	}
	for _, c := range cases {
		if _, err := DecodeRegOps(c.buf); err == nil {
			t.Errorf("%s: malformed batch value accepted", c.name)
		}
	}
}

// TestDecodeRejectsMalformedRegOpsFrames runs the same table through the
// envelope codec (the path an untrusted TCP peer reaches).
func TestDecodeRejectsMalformedRegOpsFrames(t *testing.T) {
	good, err := Encode(Envelope{From: id.AppServer(1), To: id.AppServer(2), Payload: RegOps{Ops: sampleOps()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("control: %v", err)
	}

	// Trailing bytes after a well-formed RegOps payload.
	if _, err := Decode(append(append([]byte{}, good...), 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Truncations at every boundary must fail cleanly, never panic.
	for i := 1; i < len(good); i++ {
		if _, err := Decode(good[:i]); err == nil {
			// Very short prefixes can accidentally parse as another valid
			// message; a prefix that still claims to be RegOps must not.
			if env, derr := Decode(good[:i]); derr == nil {
				if _, isOps := env.Payload.(RegOps); isOps {
					t.Errorf("truncation at %d accepted as RegOps", i)
				}
			}
		}
	}
	// An oversized op count must be rejected with ErrOversize before any
	// allocation is attempted.
	var w writer
	w.node(id.AppServer(1))
	w.node(id.AppServer(2))
	w.byte(byte(KindRegOps))
	w.uvarint(1 << 40)
	if _, err := Decode(w.buf); !errors.Is(err, ErrOversize) {
		t.Errorf("oversized count: got %v, want ErrOversize", err)
	}
}

// TestDecodeRejectsMalformedCheckpoints: the checkpoint's register-effect
// list goes through the same guarded regOps decode, so a corrupt or
// slot-targeting checkpoint is rejected whole rather than half-installed.
func TestDecodeRejectsMalformedCheckpoints(t *testing.T) {
	good, err := Encode(Envelope{From: id.AppServer(1), To: id.AppServer(2),
		Payload: Checkpoint{Floor: 9, Regs: sampleOps()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(good); err != nil {
		t.Fatalf("control: %v", err)
	}
	if _, err := Decode(append(append([]byte{}, good...), 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := Decode(good[:len(good)-2]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// A checkpoint carrying a batch-slot "effect" is structurally invalid:
	// slots are what checkpoints replace, never what they carry.
	var w writer
	w.node(id.AppServer(1))
	w.node(id.AppServer(2))
	w.byte(byte(KindCheckpoint))
	w.uvarint(9)
	w.regOps([]RegOp{{Reg: SlotKey(3), Val: []byte("x")}})
	if _, err := Decode(w.buf); err == nil {
		t.Error("slot-targeting checkpoint accepted")
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	env := Envelope{From: id.AppServer(1), To: id.DBServer(2), Payload: Prepare{RID: id.ResultID{Client: id.Client(1), Seq: 1, Try: 1}}}
	plain, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	// A reused buffer with a reserved prefix must yield the same bytes after
	// the prefix.
	buf := make([]byte, 4, 64)
	out, err := AppendEncode(buf, env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[4:], plain) {
		t.Fatal("AppendEncode diverged from Encode")
	}
}
