// Package msg defines every message exchanged by the e-Transaction stack and a
// compact self-describing binary codec for them.
//
// The vocabulary mirrors Appendix 1 of the paper plus the messages of the
// substrates the paper assumes: the Chandra–Toueg consensus that implements
// wo-registers (Estimate/Propose/Ack/Nack/Decision), the heartbeat failure
// detector, business-data operations against the database tier (Exec), and the
// reliable-channel layer (RData/RAck) that turns a lossy network into the
// paper's reliable channels.
//
// In-memory transports pass Envelope values directly; the TCP transport uses
// Encode/Decode. The codec is hand-rolled over encoding/binary varints so that
// round-trip behaviour is easy to property-test and no reflection is involved.
package msg

import (
	"fmt"

	"etx/internal/id"
)

// Kind discriminates payload types on the wire.
type Kind uint8

// Message kinds. Values start at 1; the zero Kind is invalid.
const (
	// Three-tier protocol messages (Figures 2-6 of the paper).
	KindRequest   Kind = iota + 1 // client -> app server
	KindResult                    // app server -> client
	KindPrepare                   // app server -> db server (XA prepare)
	KindVote                      // db server -> app server
	KindDecide                    // app server -> db server (XA commit/abort)
	KindAckDecide                 // db server -> app server
	KindReady                     // db server -> app servers, recovery notification
	KindExec                      // app server -> db server, business-data operation
	KindExecReply                 // db server -> app server

	// Consensus messages (wo-register substrate).
	KindEstimate // participant -> round coordinator
	KindPropose  // round coordinator -> all
	KindAck      // participant -> round coordinator
	KindNack     // participant -> round coordinator
	KindDecision // reliable broadcast of the decided value

	// Failure-detector messages.
	KindHeartbeat

	// Reliable-channel framing.
	KindRData
	KindRAck

	// Baseline-protocol messages (Figure 7 a and c): single-phase commit for
	// the unreliable baseline, and the primary-backup start/outcome records.
	KindCommit1P
	KindPBStart
	KindPBStartAck
	KindPBOutcome
	KindPBOutcomeAck

	// Batch framing: several protocol payloads to one destination in one
	// envelope (outbound aggregation and group-commit replies).
	KindBatch

	// Cohort-consensus framing: a forwarded batch of wo-register operations
	// bound for a peer's cohort sequencer.
	KindRegOps

	// Batch-log state transfer: a node asked about a slot it has truncated
	// answers with its floor and the applied register effects.
	KindCheckpoint

	// Data-tier replication: a shard primary streams its write-ahead-log
	// records to the shard's backups (ReplRecord/ReplAck), and a promoted
	// backup announces the shard's new epoch-stamped primary (NewPrimary).
	KindReplRecord
	KindReplAck
	KindNewPrimary
)

// String returns the mnemonic name of the kind.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "Request"
	case KindResult:
		return "Result"
	case KindPrepare:
		return "Prepare"
	case KindVote:
		return "Vote"
	case KindDecide:
		return "Decide"
	case KindAckDecide:
		return "AckDecide"
	case KindReady:
		return "Ready"
	case KindExec:
		return "Exec"
	case KindExecReply:
		return "ExecReply"
	case KindEstimate:
		return "Estimate"
	case KindPropose:
		return "Propose"
	case KindAck:
		return "Ack"
	case KindNack:
		return "Nack"
	case KindDecision:
		return "Decision"
	case KindHeartbeat:
		return "Heartbeat"
	case KindRData:
		return "RData"
	case KindRAck:
		return "RAck"
	case KindCommit1P:
		return "Commit1P"
	case KindPBStart:
		return "PBStart"
	case KindPBStartAck:
		return "PBStartAck"
	case KindPBOutcome:
		return "PBOutcome"
	case KindPBOutcomeAck:
		return "PBOutcomeAck"
	case KindBatch:
		return "Batch"
	case KindRegOps:
		return "RegOps"
	case KindCheckpoint:
		return "Checkpoint"
	case KindReplRecord:
		return "ReplRecord"
	case KindReplAck:
		return "ReplAck"
	case KindNewPrimary:
		return "NewPrimary"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Vote is a database server's answer to a prepare request.
type Vote uint8

// Vote values, per the paper's Vote = {yes, no} domain.
const (
	VoteYes Vote = iota + 1
	VoteNo
)

// String returns "yes" or "no".
func (v Vote) String() string {
	switch v {
	case VoteYes:
		return "yes"
	case VoteNo:
		return "no"
	default:
		return fmt.Sprintf("vote(%d)", uint8(v))
	}
}

// Outcome is the fate of a result (i.e., of its transaction), per the paper's
// Outcome = {commit, abort} domain.
type Outcome uint8

// Outcome values.
const (
	OutcomeCommit Outcome = iota + 1
	OutcomeAbort
)

// String returns "commit" or "abort".
func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeAbort:
		return "abort"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Decision is the pair (result, outcome) the paper stores in regD and returns
// to the client, extended with the try's dlist. The paper's (nil, abort) is
// Decision{Result: nil, Outcome: OutcomeAbort}.
type Decision struct {
	Result  []byte
	Outcome Outcome
	// Participants is the paper's dlist for this try: the database servers
	// the transaction branch touched, which are exactly the servers
	// termination must drive the outcome to. A nil slice means the dlist is
	// unknown (a cleaning thread aborting a try whose executor crashed before
	// recording it) and termination falls back to every database server; an
	// empty non-nil slice means the try touched no data at all.
	Participants []id.NodeID
}

// Committed reports whether the decision carries a committed result.
func (d Decision) Committed() bool { return d.Outcome == OutcomeCommit }

// String renders the decision compactly.
func (d Decision) String() string {
	return fmt.Sprintf("(%dB,%s)", len(d.Result), d.Outcome)
}

// RegArray names one of the two wo-register arrays of the protocol.
type RegArray uint8

// Register arrays: regA holds the executing application server of a try,
// regD holds the decision of a try. RegBatch is not a register array at all
// but the keyspace of cohort consensus: one instance per slot of the shared
// batch log, whose decided value is an ordered RegOp batch applied to the
// real registers in slot order.
const (
	RegA RegArray = iota + 1
	RegD
	RegBatch
)

// String returns "regA", "regD" or "slot".
func (a RegArray) String() string {
	switch a {
	case RegA:
		return "regA"
	case RegD:
		return "regD"
	case RegBatch:
		return "slot"
	default:
		return fmt.Sprintf("reg(%d)", uint8(a))
	}
}

// RegKey identifies one wo-register: one slot of regA or regD for one try.
// It doubles as the consensus instance identifier. A RegBatch key identifies
// one slot of the cohort-consensus batch log instead: Slot is set and RID is
// zero.
type RegKey struct {
	Array RegArray
	RID   id.ResultID
	Slot  uint64
}

// SlotKey returns the instance key of batch-log slot n.
func SlotKey(n uint64) RegKey { return RegKey{Array: RegBatch, Slot: n} }

// String renders the register key, e.g. "regD[client-1/7#3]" or "slot[12]".
func (k RegKey) String() string {
	if k.Array == RegBatch {
		return fmt.Sprintf("slot[%d]", k.Slot)
	}
	return k.Array.String() + "[" + k.RID.String() + "]"
}

// OpCode enumerates the business-data operations a database server executes
// inside a transaction branch. They abstract the SQL statements the paper's
// compute() issues against Oracle.
type OpCode uint8

// Operation codes.
const (
	OpGet     OpCode = iota + 1 // read the value of Key
	OpPut                       // write Val to Key
	OpAdd                       // add Delta to the integer value at Key; returns the new value
	OpCheckGE                   // if integer at Key < Delta, poison the branch (db will vote no)
	OpSleep                     // simulated data-manipulation work of Delta nanoseconds (cost model)
	// OpSnapRead reads Key's last committed value outside any transaction
	// branch: the database server answers it from the committed store at a
	// batch boundary, without locks, without a branch and without entering
	// the commit path (the queue-execution read-only fast path).
	OpSnapRead
)

// String returns the mnemonic of the op code.
func (c OpCode) String() string {
	switch c {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpAdd:
		return "add"
	case OpCheckGE:
		return "checkge"
	case OpSleep:
		return "sleep"
	case OpSnapRead:
		return "snapread"
	default:
		return fmt.Sprintf("op(%d)", uint8(c))
	}
}

// Op is one business-data operation executed within a transaction branch.
type Op struct {
	Code  OpCode
	Key   string
	Delta int64
	Val   []byte
}

// OpResult is the database server's answer to an Op.
type OpResult struct {
	Val []byte // value read (OpGet)
	Num int64  // numeric result (OpAdd: new value; OpGet on int keys)
	OK  bool   // false if the op failed (lock timeout, check violation, ...)
	Err string // human-readable failure cause when !OK
}

// Payload is implemented by every concrete message body.
type Payload interface {
	Kind() Kind
}

// Envelope is one message in flight: addressing plus a typed payload.
type Envelope struct {
	From    id.NodeID
	To      id.NodeID
	Payload Payload
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	return fmt.Sprintf("%s -> %s: %s", e.From, e.To, e.Payload.Kind())
}

// --- Three-tier protocol payloads -----------------------------------------

// Request carries a client request for try RID (the paper's [Request,request,j]).
type Request struct {
	RID  id.ResultID
	Body []byte
}

// Kind implements Payload.
func (Request) Kind() Kind { return KindRequest }

// Result carries the decision for try RID back to the client (the paper's
// [Result,j,decision]).
type Result struct {
	RID id.ResultID
	Dec Decision
}

// Kind implements Payload.
func (Result) Kind() Kind { return KindResult }

// Prepare asks a database server to vote on try RID (the paper's [Prepare,j]).
type Prepare struct {
	RID id.ResultID
}

// Kind implements Payload.
func (Prepare) Kind() Kind { return KindPrepare }

// VoteMsg is a database server's vote for try RID (the paper's [Vote,j,vote]).
// Inc is the server's incarnation number: application servers use it to detect
// that the server crashed (losing unprepared work) between compute() and
// prepare(), which in the paper manifests as a broken database connection.
type VoteMsg struct {
	RID id.ResultID
	V   Vote
	Inc uint64
}

// Kind implements Payload.
func (VoteMsg) Kind() Kind { return KindVote }

// Decide carries the outcome for try RID to a database server (the paper's
// [Decide,j,outcome]).
type Decide struct {
	RID id.ResultID
	O   Outcome
}

// Kind implements Payload.
func (Decide) Kind() Kind { return KindDecide }

// AckDecide acknowledges a Decide (the paper's [AckDecide,j]). O reports the
// outcome the server actually applied, which by property A.3 always equals the
// requested one; carrying it lets tests assert that.
type AckDecide struct {
	RID id.ResultID
	O   Outcome
}

// Kind implements Payload.
func (AckDecide) Kind() Kind { return KindAckDecide }

// Ready is a database server's recovery notification (the paper's [Ready]).
// Inc is the server's new incarnation number.
type Ready struct {
	Inc uint64
}

// Kind implements Payload.
func (Ready) Kind() Kind { return KindReady }

// Exec asks a database server to execute one business-data operation inside
// the transaction branch of try RID. CallID correlates the reply.
type Exec struct {
	RID    id.ResultID
	CallID uint64
	Op     Op
}

// Kind implements Payload.
func (Exec) Kind() Kind { return KindExec }

// ExecReply answers an Exec. Inc is the server's incarnation (see VoteMsg).
type ExecReply struct {
	RID    id.ResultID
	CallID uint64
	Rep    OpResult
	Inc    uint64
}

// Kind implements Payload.
func (ExecReply) Kind() Kind { return KindExecReply }

// --- Consensus payloads (wo-register substrate) ----------------------------

// Estimate is a participant's phase-1 message to the coordinator of Round:
// its current estimate Est, adopted in round TS (0 = initial). WM piggybacks
// the sender's applied batch-log watermark (see Checkpoint).
type Estimate struct {
	Reg   RegKey
	Round uint32
	TS    uint32
	Est   []byte
	WM    uint64
}

// Kind implements Payload.
func (Estimate) Kind() Kind { return KindEstimate }

// Propose is the coordinator's phase-2 proposal for Round. WM piggybacks the
// sender's applied batch-log watermark.
type Propose struct {
	Reg   RegKey
	Round uint32
	Val   []byte
	WM    uint64
}

// Kind implements Payload.
func (Propose) Kind() Kind { return KindPropose }

// CAck is a participant's positive phase-3 answer for Round. WM piggybacks
// the sender's applied batch-log watermark.
type CAck struct {
	Reg   RegKey
	Round uint32
	WM    uint64
}

// Kind implements Payload.
func (CAck) Kind() Kind { return KindAck }

// CNack is a participant's negative phase-3 answer for Round (it suspected the
// coordinator). WM piggybacks the sender's applied batch-log watermark.
type CNack struct {
	Reg   RegKey
	Round uint32
	WM    uint64
}

// Kind implements Payload.
func (CNack) Kind() Kind { return KindNack }

// CDecision reliably broadcasts the decided value of a consensus instance.
// WM piggybacks the sender's applied batch-log watermark.
type CDecision struct {
	Reg RegKey
	Val []byte
	WM  uint64
}

// Kind implements Payload.
func (CDecision) Kind() Kind { return KindDecision }

// --- Failure detector payloads ---------------------------------------------

// Heartbeat is the periodic liveness beacon among application servers. WM
// piggybacks the sender's applied batch-log watermark, so watermarks keep
// flowing (and batch-log truncation keeps making progress) even when no
// consensus traffic is in flight.
type Heartbeat struct {
	Seq uint64
	WM  uint64
}

// Kind implements Payload.
func (Heartbeat) Kind() Kind { return KindHeartbeat }

// --- Reliable-channel framing ----------------------------------------------

// RData wraps an application payload with a per-(sender,receiver) sequence
// number; the reliable-channel layer retransmits it until acknowledged and the
// receiver suppresses duplicates, implementing the paper's reliable channels
// over a lossy network.
type RData struct {
	Seq   uint64
	Inner Payload
}

// Kind implements Payload.
func (RData) Kind() Kind { return KindRData }

// RAck acknowledges receipt of the RData with the same sequence number.
type RAck struct {
	Seq uint64
}

// Kind implements Payload.
func (RAck) Kind() Kind { return KindRAck }

// --- Baseline-protocol payloads ---------------------------------------------

// Commit1P asks a database server for a single-phase commit of try RID (the
// unreliable baseline of Figure 7a: no vote, no replication). Acknowledged
// with AckDecide.
type Commit1P struct {
	RID id.ResultID
}

// Kind implements Payload.
func (Commit1P) Kind() Kind { return KindCommit1P }

// PBStart is the primary-backup scheme's start record (Figure 7c "start"):
// the primary tells the backup a request is in progress before touching the
// databases.
type PBStart struct {
	RID  id.ResultID
	Body []byte
}

// Kind implements Payload.
func (PBStart) Kind() Kind { return KindPBStart }

// PBStartAck acknowledges a PBStart.
type PBStartAck struct {
	RID id.ResultID
}

// Kind implements Payload.
func (PBStartAck) Kind() Kind { return KindPBStartAck }

// PBOutcome is the primary-backup scheme's outcome record (Figure 7c
// "outcome"): the decided result, recorded at the backup before commitment.
type PBOutcome struct {
	RID id.ResultID
	Dec Decision
}

// Kind implements Payload.
func (PBOutcome) Kind() Kind { return KindPBOutcome }

// PBOutcomeAck acknowledges a PBOutcome.
type PBOutcomeAck struct {
	RID id.ResultID
}

// Kind implements Payload.
func (PBOutcomeAck) Kind() Kind { return KindPBOutcomeAck }

// --- Batch framing -----------------------------------------------------------

// Batch packs several payloads bound for the same destination into one
// envelope. Application servers aggregate concurrent Prepare/Decide fan-out
// to the same participant into a Batch; database servers answer a batched
// round with a Batch of votes/acks whose forced log writes shared one device
// force. Receivers treat a Batch exactly as if its members had arrived back
// to back; Batches do not nest.
type Batch struct {
	Msgs []Payload
}

// Kind implements Payload.
func (Batch) Kind() Kind { return KindBatch }

// --- Cohort-consensus framing -------------------------------------------------

// RegOp is one wo-register operation inside a cohort: write Val into the
// register Reg (first write wins). Reg must name a real register (regA or
// regD), never a batch slot.
type RegOp struct {
	Reg RegKey
	Val []byte
}

// RegOps forwards a batch of register operations to a peer's cohort
// sequencer: the sender's writes ride the receiver's next batch-consensus
// slot instead of contending for slots of their own. The receiver
// deduplicates by register, so re-forwarding after a timeout is harmless.
type RegOps struct {
	Ops []RegOp
}

// Kind implements Payload.
func (RegOps) Kind() Kind { return KindRegOps }

// Checkpoint is the batch-log state-transfer answer: a node asked about a
// slot at or below its truncation floor cannot replay the slot's decision
// (it was pruned), so it ships its Floor — every slot <= Floor is applied and
// truncated — plus Regs, the register effects it currently holds. The laggard
// installs the effects, fast-forwards its application cursor past Floor, and
// never re-decides the pruned prefix. Regs must name real registers (regA or
// regD), never batch slots.
type Checkpoint struct {
	Floor uint64
	Regs  []RegOp
}

// Kind implements Payload.
func (Checkpoint) Kind() Kind { return KindCheckpoint }

// --- Data-tier replication ----------------------------------------------------

// ReplRecord streams one write-ahead-log record from a shard primary to a
// backup. Seq is the primary's replication sequence number (1-based,
// contiguous per stream), Inc the primary's current incarnation — the backup
// persists it as an incarnation floor, so a promoted backup always opens with
// a strictly higher incarnation than any the old primary served under — and
// Rec is the wal-encoded record. The primary sends the record to every backup
// before the effect it describes is acknowledged to the application tier, so
// over reliable FIFO channels every acknowledged effect reaches every live
// backup's mailbox.
type ReplRecord struct {
	Seq uint64
	Inc uint64
	Rec []byte
}

// Kind implements Payload.
func (ReplRecord) Kind() Kind { return KindReplRecord }

// ReplAck is a backup's cumulative acknowledgement: every ReplRecord up to
// and including Seq is applied to its log. Replication is asynchronous — the
// primary never waits for it — but the ack stream bounds the observable lag.
type ReplAck struct {
	Seq uint64
}

// Kind implements Payload.
func (ReplAck) Kind() Kind { return KindReplAck }

// NewPrimary announces the current primary of a shard's replica group under
// an epoch: a promoted backup broadcasts it to the application tier and its
// group after taking over, and an application server answers a stale claim
// (Epoch at or below the one it holds, from a server that is not the current
// primary) with its own higher-epoch entry so a deposed primary learns it has
// been passed over. Receivers accept only strictly increasing epochs per
// shard.
type NewPrimary struct {
	Shard   uint64
	Epoch   uint64
	Primary id.NodeID
}

// Kind implements Payload.
func (NewPrimary) Kind() Kind { return KindNewPrimary }

// Compile-time interface compliance checks.
var (
	_ Payload = Request{}
	_ Payload = Result{}
	_ Payload = Prepare{}
	_ Payload = VoteMsg{}
	_ Payload = Decide{}
	_ Payload = AckDecide{}
	_ Payload = Ready{}
	_ Payload = Exec{}
	_ Payload = ExecReply{}
	_ Payload = Estimate{}
	_ Payload = Propose{}
	_ Payload = CAck{}
	_ Payload = CNack{}
	_ Payload = CDecision{}
	_ Payload = Heartbeat{}
	_ Payload = RData{}
	_ Payload = RAck{}
	_ Payload = Commit1P{}
	_ Payload = PBStart{}
	_ Payload = PBStartAck{}
	_ Payload = PBOutcome{}
	_ Payload = PBOutcomeAck{}
	_ Payload = Batch{}
	_ Payload = RegOps{}
	_ Payload = Checkpoint{}
	_ Payload = ReplRecord{}
	_ Payload = ReplAck{}
	_ Payload = NewPrimary{}
)
