package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"etx/internal/id"
)

// Codec errors.
var (
	// ErrTruncated reports a buffer that ended before the message did.
	ErrTruncated = errors.New("msg: truncated message")
	// ErrBadKind reports an unknown payload kind byte.
	ErrBadKind = errors.New("msg: unknown payload kind")
	// ErrOversize reports a length field exceeding the sanity limit.
	ErrOversize = errors.New("msg: oversized field")
)

// maxFieldLen bounds any single variable-length field to guard against
// corrupted length prefixes when decoding from an untrusted stream.
const maxFieldLen = 16 << 20

// Encode serializes an envelope. The format is:
//
//	from-node | to-node | kind byte | payload fields
//
// where nodes are (role byte, varint index) and all integers are
// binary varints. Byte slices and strings are length-prefixed.
func Encode(env Envelope) ([]byte, error) {
	return AppendEncode(nil, env)
}

// AppendEncode serializes an envelope into buf (which may carry reserved
// prefix bytes, e.g. a frame-length slot) and returns the extended slice.
// It lets transports reuse a pooled buffer instead of allocating per send.
func AppendEncode(buf []byte, env Envelope) ([]byte, error) {
	w := writer{buf: buf}
	w.node(env.From)
	w.node(env.To)
	if err := w.payload(env.Payload); err != nil {
		return nil, err
	}
	return w.buf, nil
}

// Decode parses a buffer produced by Encode. It returns ErrTruncated,
// ErrBadKind or ErrOversize (wrapped) on malformed input.
func Decode(b []byte) (Envelope, error) {
	r := reader{buf: b}
	var env Envelope
	env.From = r.node()
	env.To = r.node()
	p, err := r.payloadOrErr()
	if err != nil {
		return Envelope{}, err
	}
	if r.err != nil {
		return Envelope{}, r.err
	}
	if len(r.buf) != r.off {
		return Envelope{}, fmt.Errorf("msg: %d trailing bytes after message", len(r.buf)-r.off)
	}
	env.Payload = p
	return env, nil
}

// --- writer ------------------------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) string(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

func (w *writer) node(n id.NodeID) {
	w.byte(byte(n.Role))
	w.varint(int64(n.Index))
}

func (w *writer) rid(r id.ResultID) {
	w.node(r.Client)
	w.uvarint(r.Seq)
	w.uvarint(r.Try)
}

func (w *writer) regKey(k RegKey) {
	w.byte(byte(k.Array))
	if k.Array == RegBatch {
		w.uvarint(k.Slot)
		return
	}
	w.rid(k.RID)
}

func (w *writer) regOps(ops []RegOp) {
	w.uvarint(uint64(len(ops)))
	for _, op := range ops {
		w.regKey(op.Reg)
		w.bytes(op.Val)
	}
}

func (w *writer) decision(d Decision) {
	w.byte(byte(d.Outcome))
	w.bytes(d.Result)
	// The participant dlist distinguishes nil (unknown — terminate must fall
	// back to every database server) from empty (touched nothing): the
	// marker is 0 for nil, count+1 otherwise.
	if d.Participants == nil {
		w.uvarint(0)
		return
	}
	w.uvarint(uint64(len(d.Participants)) + 1)
	for _, n := range d.Participants {
		w.node(n)
	}
}

func (w *writer) op(o Op) {
	w.byte(byte(o.Code))
	w.string(o.Key)
	w.varint(o.Delta)
	w.bytes(o.Val)
}

func (w *writer) opResult(r OpResult) {
	w.bytes(r.Val)
	w.varint(r.Num)
	w.bool(r.OK)
	w.string(r.Err)
}

func (w *writer) payload(p Payload) error {
	if p == nil {
		return errors.New("msg: nil payload")
	}
	w.byte(byte(p.Kind()))
	switch m := p.(type) {
	case Request:
		w.rid(m.RID)
		w.bytes(m.Body)
	case Result:
		w.rid(m.RID)
		w.decision(m.Dec)
	case Prepare:
		w.rid(m.RID)
	case VoteMsg:
		w.rid(m.RID)
		w.byte(byte(m.V))
		w.uvarint(m.Inc)
	case Decide:
		w.rid(m.RID)
		w.byte(byte(m.O))
	case AckDecide:
		w.rid(m.RID)
		w.byte(byte(m.O))
	case Ready:
		w.uvarint(m.Inc)
	case Exec:
		w.rid(m.RID)
		w.uvarint(m.CallID)
		w.op(m.Op)
	case ExecReply:
		w.rid(m.RID)
		w.uvarint(m.CallID)
		w.opResult(m.Rep)
		w.uvarint(m.Inc)
	case Estimate:
		w.regKey(m.Reg)
		w.uvarint(uint64(m.Round))
		w.uvarint(uint64(m.TS))
		w.bytes(m.Est)
		w.uvarint(m.WM)
	case Propose:
		w.regKey(m.Reg)
		w.uvarint(uint64(m.Round))
		w.bytes(m.Val)
		w.uvarint(m.WM)
	case CAck:
		w.regKey(m.Reg)
		w.uvarint(uint64(m.Round))
		w.uvarint(m.WM)
	case CNack:
		w.regKey(m.Reg)
		w.uvarint(uint64(m.Round))
		w.uvarint(m.WM)
	case CDecision:
		w.regKey(m.Reg)
		w.bytes(m.Val)
		w.uvarint(m.WM)
	case Heartbeat:
		w.uvarint(m.Seq)
		w.uvarint(m.WM)
	case Checkpoint:
		w.uvarint(m.Floor)
		w.regOps(m.Regs)
	case RData:
		w.uvarint(m.Seq)
		return w.payload(m.Inner)
	case Batch:
		w.uvarint(uint64(len(m.Msgs)))
		for _, inner := range m.Msgs {
			if _, nested := inner.(Batch); nested {
				return errors.New("msg: nested Batch")
			}
			if err := w.payload(inner); err != nil {
				return err
			}
		}
	case RAck:
		w.uvarint(m.Seq)
	case RegOps:
		w.regOps(m.Ops)
	case Commit1P:
		w.rid(m.RID)
	case PBStart:
		w.rid(m.RID)
		w.bytes(m.Body)
	case PBStartAck:
		w.rid(m.RID)
	case PBOutcome:
		w.rid(m.RID)
		w.decision(m.Dec)
	case PBOutcomeAck:
		w.rid(m.RID)
	case ReplRecord:
		w.uvarint(m.Seq)
		w.uvarint(m.Inc)
		w.bytes(m.Rec)
	case ReplAck:
		w.uvarint(m.Seq)
	case NewPrimary:
		w.uvarint(m.Shard)
		w.uvarint(m.Epoch)
		w.node(m.Primary)
	default:
		return fmt.Errorf("msg: cannot encode payload type %T", p)
	}
	return nil
}

// --- reader ------------------------------------------------------------

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.fail(ErrOversize)
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *reader) string() string {
	b := r.bytes()
	return string(b)
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) node() id.NodeID {
	role := id.Role(r.byte())
	idx := r.varint()
	if r.err != nil {
		return id.NodeID{}
	}
	if idx > math.MaxInt32 || idx < math.MinInt32 {
		r.fail(ErrOversize)
		return id.NodeID{}
	}
	return id.NodeID{Role: role, Index: int(idx)}
}

func (r *reader) rid() id.ResultID {
	n := r.node()
	seq := r.uvarint()
	try := r.uvarint()
	return id.ResultID{Client: n, Seq: seq, Try: try}
}

func (r *reader) regKey() RegKey {
	a := RegArray(r.byte())
	if a == RegBatch {
		return RegKey{Array: a, Slot: r.uvarint()}
	}
	rid := r.rid()
	return RegKey{Array: a, RID: rid}
}

func (r *reader) regOps() []RegOp {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	// Each op occupies at least two bytes (array byte plus a varint), so a
	// count beyond the remaining buffer is a corrupt length prefix — fail
	// before allocating for it, mirroring the Batch member guard.
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrOversize)
		return nil
	}
	ops := make([]RegOp, 0, n)
	for i := uint64(0); i < n; i++ {
		k := r.regKey()
		v := r.bytes()
		if r.err != nil {
			return nil
		}
		if k.Array == RegBatch {
			// A batch slot is not a register; a batch of writes to batch
			// slots is the RegOps analogue of a nested Batch.
			r.fail(errors.New("msg: RegOp targets a batch slot"))
			return nil
		}
		ops = append(ops, RegOp{Reg: k, Val: v})
	}
	return ops
}

func (r *reader) decision() Decision {
	o := Outcome(r.byte())
	res := r.bytes()
	marker := r.uvarint()
	if r.err != nil || marker == 0 {
		return Decision{Result: res, Outcome: o}
	}
	n := marker - 1
	// Each node occupies at least two bytes, so a count beyond the remaining
	// buffer is a corrupt length prefix — fail before allocating for it.
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrOversize)
		return Decision{}
	}
	parts := make([]id.NodeID, 0, n)
	for i := uint64(0); i < n; i++ {
		parts = append(parts, r.node())
	}
	return Decision{Result: res, Outcome: o, Participants: parts}
}

func (r *reader) op() Op {
	c := OpCode(r.byte())
	k := r.string()
	d := r.varint()
	v := r.bytes()
	return Op{Code: c, Key: k, Delta: d, Val: v}
}

func (r *reader) opResult() OpResult {
	v := r.bytes()
	n := r.varint()
	ok := r.bool()
	e := r.string()
	return OpResult{Val: v, Num: n, OK: ok, Err: e}
}

// EncodeRegOps serializes an ordered register-op batch as a standalone value
// — the proposed (and decided) value of a cohort-consensus slot instance.
func EncodeRegOps(ops []RegOp) []byte {
	var w writer
	w.regOps(ops)
	return w.buf
}

// DecodeRegOps parses EncodeRegOps's output. Like Decode it rejects trailing
// bytes, oversized counts and truncated fields, so a corrupt batch value can
// never be half-applied.
func DecodeRegOps(b []byte) ([]RegOp, error) {
	r := reader{buf: b}
	ops := r.regOps()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("msg: %d trailing bytes after register ops", len(r.buf)-r.off)
	}
	return ops, nil
}

func (r *reader) round() uint32 {
	v := r.uvarint()
	if v > math.MaxUint32 {
		r.fail(ErrOversize)
		return 0
	}
	return uint32(v)
}

func (r *reader) payloadOrErr() (Payload, error) {
	k := Kind(r.byte())
	if r.err != nil {
		return nil, r.err
	}
	var p Payload
	switch k {
	case KindRequest:
		p = Request{RID: r.rid(), Body: r.bytes()}
	case KindResult:
		p = Result{RID: r.rid(), Dec: r.decision()}
	case KindPrepare:
		p = Prepare{RID: r.rid()}
	case KindVote:
		p = VoteMsg{RID: r.rid(), V: Vote(r.byte()), Inc: r.uvarint()}
	case KindDecide:
		p = Decide{RID: r.rid(), O: Outcome(r.byte())}
	case KindAckDecide:
		p = AckDecide{RID: r.rid(), O: Outcome(r.byte())}
	case KindReady:
		p = Ready{Inc: r.uvarint()}
	case KindExec:
		p = Exec{RID: r.rid(), CallID: r.uvarint(), Op: r.op()}
	case KindExecReply:
		p = ExecReply{RID: r.rid(), CallID: r.uvarint(), Rep: r.opResult(), Inc: r.uvarint()}
	case KindEstimate:
		p = Estimate{Reg: r.regKey(), Round: r.round(), TS: r.round(), Est: r.bytes(), WM: r.uvarint()}
	case KindPropose:
		p = Propose{Reg: r.regKey(), Round: r.round(), Val: r.bytes(), WM: r.uvarint()}
	case KindAck:
		p = CAck{Reg: r.regKey(), Round: r.round(), WM: r.uvarint()}
	case KindNack:
		p = CNack{Reg: r.regKey(), Round: r.round(), WM: r.uvarint()}
	case KindDecision:
		p = CDecision{Reg: r.regKey(), Val: r.bytes(), WM: r.uvarint()}
	case KindHeartbeat:
		p = Heartbeat{Seq: r.uvarint(), WM: r.uvarint()}
	case KindCheckpoint:
		p = Checkpoint{Floor: r.uvarint(), Regs: r.regOps()}
	case KindRData:
		seq := r.uvarint()
		inner, err := r.payloadOrErr()
		if err != nil {
			return nil, err
		}
		p = RData{Seq: seq, Inner: inner}
	case KindRAck:
		p = RAck{Seq: r.uvarint()}
	case KindRegOps:
		p = RegOps{Ops: r.regOps()}
	case KindBatch:
		n := r.uvarint()
		if r.err != nil {
			return nil, r.err
		}
		// Each member payload occupies at least one byte, so a count beyond
		// the remaining buffer is a corrupt length prefix.
		if n > uint64(len(r.buf)-r.off) {
			return nil, ErrOversize
		}
		msgs := make([]Payload, 0, n)
		for i := uint64(0); i < n; i++ {
			inner, err := r.payloadOrErr()
			if err != nil {
				return nil, err
			}
			if _, nested := inner.(Batch); nested {
				return nil, errors.New("msg: nested Batch")
			}
			msgs = append(msgs, inner)
		}
		p = Batch{Msgs: msgs}
	case KindCommit1P:
		p = Commit1P{RID: r.rid()}
	case KindPBStart:
		p = PBStart{RID: r.rid(), Body: r.bytes()}
	case KindPBStartAck:
		p = PBStartAck{RID: r.rid()}
	case KindPBOutcome:
		p = PBOutcome{RID: r.rid(), Dec: r.decision()}
	case KindPBOutcomeAck:
		p = PBOutcomeAck{RID: r.rid()}
	case KindReplRecord:
		p = ReplRecord{Seq: r.uvarint(), Inc: r.uvarint(), Rec: r.bytes()}
	case KindReplAck:
		p = ReplAck{Seq: r.uvarint()}
	case KindNewPrimary:
		p = NewPrimary{Shard: r.uvarint(), Epoch: r.uvarint(), Primary: r.node()}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(k))
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}
