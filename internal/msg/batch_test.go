package msg

import (
	"testing"

	"etx/internal/id"
)

// TestBatchRoundTripEmpty pins the edge case of a Batch with no members:
// legal on the wire (an aggregator never produces one, but the codec must
// not choke on it).
func TestBatchRoundTripEmpty(t *testing.T) {
	env := Envelope{From: id.AppServer(1), To: id.DBServer(1), Payload: Batch{}}
	b, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	batch, ok := back.Payload.(Batch)
	if !ok || len(batch.Msgs) != 0 {
		t.Fatalf("empty batch round trip = %#v", back.Payload)
	}
}

// TestBatchRejectsNesting: batches do not nest, on encode or decode.
func TestBatchRejectsNesting(t *testing.T) {
	nested := Batch{Msgs: []Payload{Batch{Msgs: []Payload{Heartbeat{Seq: 1}}}}}
	if _, err := Encode(Envelope{From: id.AppServer(1), To: id.DBServer(1), Payload: nested}); err == nil {
		t.Fatal("encoding a nested Batch succeeded")
	}
	// Hand-craft the wire form the encoder refuses to produce.
	var w writer
	w.node(id.AppServer(1))
	w.node(id.DBServer(1))
	w.byte(byte(KindBatch))
	w.uvarint(1)
	w.byte(byte(KindBatch))
	w.uvarint(0)
	if _, err := Decode(w.buf); err == nil {
		t.Fatal("decoding a nested Batch succeeded")
	}
}

// TestBatchDecodeTruncated: a batch whose member count exceeds the buffer
// fails cleanly instead of allocating for it.
func TestBatchDecodeTruncated(t *testing.T) {
	var w writer
	w.node(id.AppServer(1))
	w.node(id.DBServer(1))
	w.byte(byte(KindBatch))
	w.uvarint(1 << 30)
	if _, err := Decode(w.buf); err == nil {
		t.Fatal("decoding an oversized Batch count succeeded")
	}
}
