package msg

import (
	"reflect"
	"testing"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/wal"
)

// The fuzz targets check the codec's two load-bearing properties against
// arbitrary bytes:
//
//  1. Decode never panics and never half-accepts: any buffer either fails
//     whole or yields a payload every invariant of which holds (no
//     slot-targeting register ops, no nested batches).
//  2. Decoded values round-trip by VALUE: Decode(Encode(Decode(b))) equals
//     Decode(b). Byte-identity is deliberately not asserted — binary.Uvarint
//     accepts non-canonical varint encodings, so two distinct buffers may
//     legitimately decode to the same envelope.
//
// Seed corpora come from the malformed-payload test tables in codec_test.go
// and regops_test.go, so every historical corruption class is a starting
// point for mutation.

// fuzzSeedEnvelopes is one well-formed encoding per interesting payload
// shape (they reuse the round-trip test's representative payloads).
func fuzzSeedEnvelopes(f *testing.F) {
	f.Helper()
	for _, p := range allPayloads() {
		buf, err := Encode(Envelope{From: id.AppServer(1), To: id.AppServer(2), Payload: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
}

func FuzzDecode(f *testing.F) {
	fuzzSeedEnvelopes(f)
	// The malformed table from TestDecodeErrors/TestDecodeOversizeLength.
	good, err := Encode(Envelope{From: id.Client(1), To: id.AppServer(1),
		Payload: Request{RID: rid(1, 1, 1), Body: []byte("hello")}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(good[:1])
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), 0xFF))
	bad := append([]byte{}, good...)
	bad[4] = 0xEE // kind byte sits right after the two node ids
	f.Add(bad)
	var w writer
	w.node(id.Client(1))
	w.node(id.AppServer(1))
	w.byte(byte(KindRequest))
	w.rid(rid(1, 1, 1))
	w.uvarint(1 << 30) // oversize length claim
	f.Add(w.buf)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		checkPayloadInvariants(t, env.Payload)
		buf, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v (%+v)", err, env)
		}
		env2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("value round-trip diverged:\n first: %+v\nsecond: %+v", env, env2)
		}
	})
}

// checkPayloadInvariants asserts the structural invariants the decoder
// promises for accepted payloads.
func checkPayloadInvariants(t *testing.T, p Payload) {
	t.Helper()
	switch m := p.(type) {
	case RegOps:
		for _, op := range m.Ops {
			if op.Reg.Array == RegBatch {
				t.Fatalf("decoder accepted a slot-targeting RegOp: %+v", op)
			}
		}
	case Checkpoint:
		for _, op := range m.Regs {
			if op.Reg.Array == RegBatch {
				t.Fatalf("decoder accepted a slot-targeting checkpoint effect: %+v", op)
			}
		}
	case Batch:
		for _, inner := range m.Msgs {
			if _, nested := inner.(Batch); nested {
				t.Fatal("decoder accepted a nested Batch")
			}
		}
	}
}

func FuzzDecodeRegOps(f *testing.F) {
	// The malformed table from TestDecodeRegOpsRejectsMalformed.
	good := EncodeRegOps(sampleOps())
	f.Add(good)
	f.Add([]byte{3})
	f.Add(good[:len(good)-3])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Add(append(append([]byte{}, good...), 0xAA))
	f.Add(EncodeRegOps([]RegOp{{Reg: SlotKey(4), Val: []byte("x")}}))
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := DecodeRegOps(data)
		if err != nil {
			return
		}
		for _, op := range ops {
			if op.Reg.Array == RegBatch {
				t.Fatalf("DecodeRegOps accepted a slot-targeting op: %+v", op)
			}
		}
		back, err := DecodeRegOps(EncodeRegOps(ops))
		if err != nil {
			t.Fatalf("re-encoded ops do not decode: %v", err)
		}
		if !opsEqual(back, ops) {
			t.Fatalf("value round-trip diverged:\n first: %+v\nsecond: %+v", ops, back)
		}
	})
}

// FuzzDecodeReplRecord targets the replication stream frame: a ReplRecord
// envelope carries opaque WAL bytes (wal.Encode output) that the backup
// appends verbatim and later replays through wal.Decode. The fuzzer checks
// both layers on arbitrary input: the envelope round-trips by value, and the
// inner record bytes are either rejected whole (wal.ErrCorrupt) or decode to
// a record that survives a wal Encode/Decode round trip — a half-accepted
// record would silently diverge a backup's log from its primary's.
func FuzzDecodeReplRecord(f *testing.F) {
	// One seed per representative WAL record shape, from the codec tables:
	// snapshot and prepared records carry after-images, decisions are bare.
	recs := []wal.Record{
		{Type: wal.RecSnapshot, Writes: []kv.Write{{Key: "x", Val: []byte("1")}, {Key: "y", Val: nil}}},
		{Type: wal.RecPrepared, RID: rid(1, 7, 2),
			Writes: []kv.Write{{Key: "acct/1", Val: []byte("credit=5")}}},
		{Type: wal.RecCommitted, RID: rid(1, 7, 2)},
		{Type: wal.RecAborted, RID: rid(2, 1, 1)},
	}
	for i, rec := range recs {
		buf, err := Encode(Envelope{From: id.DBServer(1), To: id.DBServer(2),
			Payload: ReplRecord{Seq: uint64(i + 1), Inc: 3, Rec: wal.Encode(rec)}})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Corrupt variants: truncated record bytes, trailing garbage inside the
	// record, and an empty record — each as a well-formed envelope so the
	// mutation pressure lands on the inner wal frame.
	inner := wal.Encode(recs[1])
	for _, rec := range [][]byte{inner[:len(inner)-2], append(append([]byte{}, inner...), 0xEE), nil} {
		buf, err := Encode(Envelope{From: id.DBServer(1), To: id.DBServer(2),
			Payload: ReplRecord{Seq: 9, Inc: 3, Rec: rec}})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// A hand-built frame claiming more record bytes than it carries.
	var w writer
	w.node(id.DBServer(1))
	w.node(id.DBServer(2))
	w.byte(byte(KindReplRecord))
	w.uvarint(4)       // Seq
	w.uvarint(2)       // Inc
	w.uvarint(1 << 28) // oversize Rec length claim
	f.Add(w.buf)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		rr, ok := env.Payload.(ReplRecord)
		if !ok {
			// Mutation turned it into another kind; FuzzDecode owns those.
			return
		}
		buf, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded ReplRecord does not re-encode: %v (%+v)", err, rr)
		}
		env2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded ReplRecord does not decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("value round-trip diverged:\n first: %+v\nsecond: %+v", env, env2)
		}
		rec, err := wal.Decode(rr.Rec)
		if err != nil {
			return // rejected whole: the backup applier surfaces this on replay
		}
		back, err := wal.Decode(wal.Encode(rec))
		if err != nil {
			t.Fatalf("re-encoded WAL record does not decode: %v (%+v)", err, rec)
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("WAL value round-trip diverged:\n first: %+v\nsecond: %+v", rec, back)
		}
	})
}

func FuzzDecodeCheckpoint(f *testing.F) {
	// The malformed table from TestDecodeRejectsMalformedCheckpoints, all as
	// full envelope frames (the path an untrusted peer reaches).
	good, err := Encode(Envelope{From: id.AppServer(1), To: id.AppServer(2),
		Payload: Checkpoint{Floor: 9, Regs: sampleOps()}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(append(append([]byte{}, good...), 0x01))
	f.Add(good[:len(good)-2])
	var w writer
	w.node(id.AppServer(1))
	w.node(id.AppServer(2))
	w.byte(byte(KindCheckpoint))
	w.uvarint(9)
	w.regOps([]RegOp{{Reg: SlotKey(3), Val: []byte("x")}})
	f.Add(w.buf)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		ck, ok := env.Payload.(Checkpoint)
		if !ok {
			// Mutation turned it into another kind; FuzzDecode owns those.
			return
		}
		for _, op := range ck.Regs {
			if op.Reg.Array == RegBatch {
				t.Fatalf("decoder accepted a slot-targeting checkpoint effect: %+v", op)
			}
		}
		buf, err := Encode(Envelope{From: env.From, To: env.To, Payload: ck})
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-encode: %v", err)
		}
		env2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("value round-trip diverged:\n first: %+v\nsecond: %+v", env, env2)
		}
	})
}
