package msg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"etx/internal/id"
)

func rid(c, s, tr int) id.ResultID {
	return id.ResultID{Client: id.Client(c), Seq: uint64(s), Try: uint64(tr)}
}

// allPayloads returns one representative of every payload type, with
// non-trivial field values.
func allPayloads() []Payload {
	r := rid(1, 7, 3)
	return []Payload{
		Request{RID: r, Body: []byte("book flight LHR->GVA")},
		Result{RID: r, Dec: Decision{Result: []byte("seat 12A"), Outcome: OutcomeCommit}},
		Result{RID: r, Dec: Decision{Result: nil, Outcome: OutcomeAbort}},
		// The participant dlist round-trips, distinguishing nil (unknown;
		// the cases above) from empty (touched nothing) from populated.
		Result{RID: r, Dec: Decision{Result: []byte("ok"), Outcome: OutcomeCommit,
			Participants: []id.NodeID{id.DBServer(2), id.DBServer(5)}}},
		Result{RID: r, Dec: Decision{Outcome: OutcomeCommit, Participants: []id.NodeID{}}},
		Prepare{RID: r},
		VoteMsg{RID: r, V: VoteYes, Inc: 4},
		VoteMsg{RID: r, V: VoteNo, Inc: 0},
		Decide{RID: r, O: OutcomeCommit},
		Decide{RID: r, O: OutcomeAbort},
		AckDecide{RID: r, O: OutcomeCommit},
		Ready{Inc: 9},
		Exec{RID: r, CallID: 42, Op: Op{Code: OpAdd, Key: "acct/1", Delta: -100}},
		Exec{RID: r, CallID: 1, Op: Op{Code: OpPut, Key: "k", Val: []byte{1, 2, 3}}},
		ExecReply{RID: r, CallID: 42, Rep: OpResult{Num: 900, OK: true}, Inc: 2},
		ExecReply{RID: r, CallID: 7, Rep: OpResult{OK: false, Err: "lock timeout"}, Inc: 1},
		Estimate{Reg: RegKey{Array: RegA, RID: r}, Round: 3, TS: 2, Est: []byte("appserver-1")},
		Propose{Reg: RegKey{Array: RegD, RID: r}, Round: 1, Val: []byte("decision")},
		CAck{Reg: RegKey{Array: RegA, RID: r}, Round: 5},
		CNack{Reg: RegKey{Array: RegD, RID: r}, Round: 6},
		CDecision{Reg: RegKey{Array: RegD, RID: r}, Val: []byte("v")},
		Heartbeat{Seq: 1234},
		RData{Seq: 9, Inner: Prepare{RID: r}},
		RData{Seq: 10, Inner: RData{Seq: 11, Inner: Heartbeat{Seq: 1}}},
		RAck{Seq: 9},
		Commit1P{RID: r},
		PBStart{RID: r, Body: []byte("req")},
		PBStartAck{RID: r},
		PBOutcome{RID: r, Dec: Decision{Result: []byte("res"), Outcome: OutcomeCommit}},
		PBOutcomeAck{RID: r},
		Batch{Msgs: []Payload{Prepare{RID: r}, Decide{RID: r, O: OutcomeAbort}}},
		Batch{Msgs: []Payload{
			VoteMsg{RID: r, V: VoteYes, Inc: 2},
			AckDecide{RID: r, O: OutcomeCommit},
			AckDecide{RID: rid(2, 8, 1), O: OutcomeAbort},
		}},
		RData{Seq: 12, Inner: Batch{Msgs: []Payload{Prepare{RID: r}, Prepare{RID: rid(2, 8, 1)}}}},
		Estimate{Reg: SlotKey(17), Round: 1, TS: 0, Est: []byte("batch-value")},
		CDecision{Reg: SlotKey(18), Val: []byte("batch-value")},
		RegOps{Ops: []RegOp{
			{Reg: RegKey{Array: RegA, RID: r}, Val: []byte("who")},
			{Reg: RegKey{Array: RegD, RID: rid(2, 8, 1)}, Val: []byte("dec")},
		}},
		// The watermark piggyback survives on every consensus payload and on
		// heartbeats.
		Estimate{Reg: SlotKey(19), Round: 2, TS: 1, Est: []byte("v"), WM: 42},
		Propose{Reg: SlotKey(19), Round: 2, Val: []byte("v"), WM: 43},
		CAck{Reg: SlotKey(19), Round: 2, WM: 44},
		CNack{Reg: SlotKey(19), Round: 2, WM: 45},
		CDecision{Reg: SlotKey(19), Val: []byte("v"), WM: 46},
		Heartbeat{Seq: 77, WM: 46},
		Checkpoint{Floor: 31, Regs: []RegOp{
			{Reg: RegKey{Array: RegA, RID: r}, Val: []byte("who")},
			{Reg: RegKey{Array: RegD, RID: rid(2, 8, 1)}, Val: []byte("dec")},
		}},
		Checkpoint{Floor: 0, Regs: nil},
		ReplRecord{Seq: 12, Inc: 3, Rec: []byte{2, 1, 0, 7}},
		ReplRecord{Seq: 1, Inc: 1},
		ReplAck{Seq: 12},
		NewPrimary{Shard: 2, Epoch: 5, Primary: id.DBServer(6)},
	}
}

func TestEncodeDecodeRoundTripAllKinds(t *testing.T) {
	for _, p := range allPayloads() {
		env := Envelope{From: id.AppServer(1), To: id.DBServer(2), Payload: p}
		b, err := Encode(env)
		if err != nil {
			t.Fatalf("Encode(%s): %v", p.Kind(), err)
		}
		back, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v", p.Kind(), err)
		}
		if back.From != env.From || back.To != env.To {
			t.Errorf("%s: addressing mangled: %v", p.Kind(), back)
		}
		if !payloadEqual(env.Payload, back.Payload) {
			t.Errorf("%s round trip:\n got %#v\nwant %#v", p.Kind(), back.Payload, env.Payload)
		}
	}
}

// payloadEqual compares payloads treating nil and empty byte slices as equal
// (the codec does not distinguish them, by design).
func payloadEqual(a, b Payload) bool {
	normalize := func(p Payload) Payload {
		switch m := p.(type) {
		case Request:
			if len(m.Body) == 0 {
				m.Body = nil
			}
			return m
		case Result:
			if len(m.Dec.Result) == 0 {
				m.Dec.Result = nil
			}
			return m
		case Exec:
			if len(m.Op.Val) == 0 {
				m.Op.Val = nil
			}
			return m
		case ExecReply:
			if len(m.Rep.Val) == 0 {
				m.Rep.Val = nil
			}
			return m
		case Estimate:
			if len(m.Est) == 0 {
				m.Est = nil
			}
			return m
		case Propose:
			if len(m.Val) == 0 {
				m.Val = nil
			}
			return m
		case CDecision:
			if len(m.Val) == 0 {
				m.Val = nil
			}
			return m
		case RData:
			m.Inner = normalizeInner(m.Inner)
			return m
		case Checkpoint:
			if len(m.Regs) == 0 {
				m.Regs = nil
			}
			return m
		case PBStart:
			if len(m.Body) == 0 {
				m.Body = nil
			}
			return m
		case PBOutcome:
			if len(m.Dec.Result) == 0 {
				m.Dec.Result = nil
			}
			return m
		}
		return p
	}
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalizeInner(p Payload) Payload {
	if rd, ok := p.(RData); ok {
		rd.Inner = normalizeInner(rd.Inner)
		return rd
	}
	return p
}

func TestDecodeErrors(t *testing.T) {
	env := Envelope{From: id.Client(1), To: id.AppServer(1), Payload: Request{RID: rid(1, 1, 1), Body: []byte("hello")}}
	good, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"truncated header", good[:1]},
		{"truncated mid-payload", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte{}, good...), 0xFF)},
		{"bad kind", func() []byte {
			b := append([]byte{}, good...)
			// kind byte sits right after the two node ids (2 bytes role+index each)
			b[4] = 0xEE
			return b
		}()},
	}
	for _, tt := range tests {
		if _, err := Decode(tt.buf); err == nil {
			t.Errorf("%s: Decode succeeded, want error", tt.name)
		}
	}
}

func TestDecodeOversizeLength(t *testing.T) {
	// Hand-craft a Request whose body length prefix claims 1 GiB.
	var w writer
	w.node(id.Client(1))
	w.node(id.AppServer(1))
	w.byte(byte(KindRequest))
	w.rid(rid(1, 1, 1))
	w.uvarint(1 << 30)
	if _, err := Decode(w.buf); err == nil {
		t.Fatal("Decode accepted a 1 GiB length prefix")
	}
}

func TestEncodeNilPayloadFails(t *testing.T) {
	if _, err := Encode(Envelope{From: id.Client(1), To: id.Client(2)}); err == nil {
		t.Fatal("Encode of nil payload must fail")
	}
}

// TestDecodeRandomBytesNeverPanics fuzzes the decoder with random buffers.
func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = Decode(b) // must not panic; error is fine
	}
}

// TestRoundTripPropertyRequest uses testing/quick over Request payload fields.
func TestRoundTripPropertyRequest(t *testing.T) {
	f := func(cidx uint8, seq, try uint64, body []byte) bool {
		env := Envelope{
			From:    id.Client(int(cidx)),
			To:      id.AppServer(1),
			Payload: Request{RID: id.ResultID{Client: id.Client(int(cidx)), Seq: seq, Try: try}, Body: body},
		}
		b, err := Encode(env)
		if err != nil {
			return false
		}
		back, err := Decode(b)
		if err != nil {
			return false
		}
		got := back.Payload.(Request)
		want := env.Payload.(Request)
		return got.RID == want.RID && bytes.Equal(got.Body, want.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRoundTripPropertyEstimate checks consensus message fields survive.
func TestRoundTripPropertyEstimate(t *testing.T) {
	f := func(round, ts uint32, est []byte, arr bool) bool {
		a := RegA
		if arr {
			a = RegD
		}
		env := Envelope{
			From:    id.AppServer(1),
			To:      id.AppServer(2),
			Payload: Estimate{Reg: RegKey{Array: a, RID: rid(1, 2, 3)}, Round: round, TS: ts, Est: est},
		}
		b, err := Encode(env)
		if err != nil {
			return false
		}
		back, err := Decode(b)
		if err != nil {
			return false
		}
		got := back.Payload.(Estimate)
		return got.Reg == env.Payload.(Estimate).Reg && got.Round == round && got.TS == ts && bytes.Equal(got.Est, est)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for _, p := range allPayloads() {
		if s := p.Kind().String(); s == "" || s[0] == 'K' && s[1] == 'i' {
			t.Errorf("Kind %d has no mnemonic: %q", p.Kind(), s)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Error("unknown kind must format numerically")
	}
}

func TestDomainStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{VoteYes.String(), "yes"},
		{VoteNo.String(), "no"},
		{OutcomeCommit.String(), "commit"},
		{OutcomeAbort.String(), "abort"},
		{RegA.String(), "regA"},
		{RegD.String(), "regD"},
		{OpGet.String(), "get"},
		{OpPut.String(), "put"},
		{OpAdd.String(), "add"},
		{OpCheckGE.String(), "checkge"},
		{OpSleep.String(), "sleep"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestDecisionHelpers(t *testing.T) {
	c := Decision{Result: []byte("r"), Outcome: OutcomeCommit}
	a := Decision{Outcome: OutcomeAbort}
	if !c.Committed() || a.Committed() {
		t.Error("Committed() misreports")
	}
	if c.String() == "" || a.String() == "" {
		t.Error("Decision.String must be non-empty")
	}
}

func TestRegKeyString(t *testing.T) {
	k := RegKey{Array: RegD, RID: rid(1, 2, 3)}
	if got, want := k.String(), "regD[client-1/2#3]"; got != want {
		t.Errorf("RegKey.String() = %q, want %q", got, want)
	}
}

func TestEnvelopeString(t *testing.T) {
	env := Envelope{From: id.Client(1), To: id.AppServer(2), Payload: Heartbeat{}}
	if got := env.String(); got != "client-1 -> appserver-2: Heartbeat" {
		t.Errorf("Envelope.String() = %q", got)
	}
}
