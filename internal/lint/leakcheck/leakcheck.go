// Package leakcheck is the dynamic companion to the golifecycle analyzer: a
// goroutine-count leak assertion for tests of long-lived components. The
// analyzer proves every launched loop HAS a shutdown path; this package
// checks the paths are actually TAKEN — a Stop/Close that returns while its
// goroutines live is exactly the leak class both exist for.
//
// Usage:
//
//	func TestServerStops(t *testing.T) {
//		leakcheck.Check(t)
//		srv := New(...)
//		srv.Start()
//		defer srv.Stop()
//		...
//	}
//
// Check snapshots the goroutine count up front and registers a cleanup that
// requires the count to return to the baseline, retrying briefly first:
// runtime shutdown (timer goroutines parking, network pollers unwinding
// after a Close) is asynchronous, so an immediate compare would flake.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// settle is how long the cleanup waits for goroutine counts to drain back
// to the baseline before declaring a leak.
const settle = 2 * time.Second

// Check registers a goroutine-leak assertion on t: at cleanup, the process
// goroutine count must return to (at most) what it was when Check was
// called. Call it first in the test, before the component under test starts
// anything. On failure it reports the full stack dump of every live
// goroutine, which names the leaked loop directly.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(settle)
		n := runtime.NumGoroutine()
		for n > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d before the test, %d after cleanup; live stacks:\n%s", base, n, buf)
		}
	})
}
