// Package lint is the repo's custom static-analysis suite (etxlint): a small
// go/analysis-shaped framework plus analyzers that mechanically enforce the
// protocol's concurrency and wire invariants — the invariant classes behind
// the reproduction's worst historical bugs (a blocked consensus phase holding
// a lock, a message kind added without codec arms, a wall-clock-derived
// incarnation identity, a counter that silently fell out of the stats path).
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built purely on the standard library's go/ast and
// go/types, because this tree builds with no third-party modules. Packages
// are loaded by the go-list driver in load.go and type-checked from source.
//
// # Suppression policy
//
// A diagnostic is suppressed by an annotation on the flagged line or the line
// directly above it:
//
//	//etxlint:allow <analyzer>[,<analyzer>...] — <one-line justification>
//
// The justification is mandatory by convention (reviewed, not parsed): every
// suppression must say why the invariant does not apply, e.g. "the injected
// clock's default" or "device serialization is the point of this lock".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow annotations.
	Name string
	// Doc is a one-paragraph description (shown by etxlint -list).
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// Pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding. Suppressed marks findings covered by an
// //etxlint:allow annotation; RunAnalyzers drops them, RunAnalyzersAll keeps
// them flagged so tooling (etxlint -json) can surface the full picture.
type Diagnostic struct {
	Pos        token.Pos
	Message    string
	Analyzer   string
	Suppressed bool
}

// JSONDiagnostic is the machine-readable form of a Diagnostic, one object per
// line on etxlint -json output. CI parses these to publish annotations, so
// the field set is a compatibility surface: analyzer, file, line, col,
// message, suppressed.
type JSONDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// ToJSON converts a diagnostic to its wire form using fset for position
// resolution.
func (d Diagnostic) ToJSON(fset *token.FileSet) JSONDiagnostic {
	pos := fset.Position(d.Pos)
	return JSONDiagnostic{
		Analyzer:   d.Analyzer,
		File:       pos.Filename,
		Line:       pos.Line,
		Col:        pos.Column,
		Message:    d.Message,
		Suppressed: d.Suppressed,
	}
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// allowRe matches suppression annotations. The annotation must start the
// comment (prose that merely mentions the syntax does not suppress); the
// analyzer list is a comma-separated run of names and everything after it is
// the justification.
var allowRe = regexp.MustCompile(`^//\s*etxlint:allow\s+([\w,-]+)[ \t]*(.*)`)

// Suppression is one //etxlint:allow annotation, as reported by
// etxlint -audit-suppressions.
type Suppression struct {
	File          string   // absolute path of the annotated file
	Line          int      // line the annotation sits on
	Analyzers     []string // analyzer names the annotation covers
	Justification string   // text after the analyzer list, dashes stripped
}

// Suppressions returns every //etxlint:allow annotation in pkg, in file
// order. The justification is the annotation text after the analyzer list
// with any leading dash/em-dash separator removed; an empty justification is
// a policy violation the audit mode turns into a failure.
func Suppressions(pkg *Package) []Suppression {
	var out []Suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				var names []string
				for _, name := range strings.Split(m[1], ",") {
					if name = strings.TrimSpace(name); name != "" {
						names = append(names, name)
					}
				}
				just := strings.TrimSpace(m[2])
				just = strings.TrimLeft(just, "—–-")
				just = strings.TrimSpace(just)
				out = append(out, Suppression{
					File:          pos.Filename,
					Line:          pos.Line,
					Analyzers:     names,
					Justification: just,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// allowedLines returns, per file-and-line, the set of analyzer names allowed
// there. A suppression covers its own line and the line below it, so both
// end-of-line and line-above annotations work.
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	add := func(file string, line int, name string) {
		byLine := out[file]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			out[file] = byLine
		}
		set := byLine[line]
		if set == nil {
			set = make(map[string]bool)
			byLine[line] = set
		}
		set[name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					add(pos.Filename, pos.Line, name)
					add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to pkg and returns the surviving
// diagnostics (suppressions applied), sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAnalyzersAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// RunAnalyzersAll applies every analyzer to pkg and returns every diagnostic,
// sorted by position, with suppressed findings kept and flagged rather than
// dropped. etxlint -json emits this complete view.
func RunAnalyzersAll(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := allowedLines(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.PkgPath,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			pos := pkg.Fset.Position(d.Pos)
			if set := allow[pos.Filename][pos.Line]; set[a.Name] || set["all"] {
				d.Suppressed = true
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockHeld,
		KindSwitch,
		WallClock,
		StatsWired,
		EpochFence,
		AtomicMix,
		GoLifecycle,
	}
}

// --- shared type-query helpers ------------------------------------------

// namedIn reports whether t (after pointer stripping) is the named type
// pkgName.typeName, matching the declaring package by name. Matching by
// package name rather than full import path lets the analyzers run unchanged
// against the analysistest fixture modules, whose import paths differ from
// the real tree; the names involved (sync.Mutex, msg.Kind, metrics.Counter)
// are unambiguous within this repository.
func namedIn(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != typeName {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly behind a
// pointer).
func isMutex(t types.Type) bool {
	return namedIn(t, "sync", "Mutex") || namedIn(t, "sync", "RWMutex")
}

// findImported walks the package import graph (including pkg itself) for a
// package with the given name that satisfies ok, e.g. the msg package that
// actually declares Kind and Payload.
func findImported(pkg *types.Package, name string, ok func(*types.Package) bool) *types.Package {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Name() == name && ok(p) {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}
