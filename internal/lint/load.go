package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Name    string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Errors holds this package's type-check errors. Target packages with
	// errors fail the lint run (the analyzers' type queries would be
	// unreliable on a broken tree).
	Errors []error
}

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (relative to dir) and
// every dependency, returning only the matched packages. It shells out to
// `go list -deps -json`, which emits packages in dependency order, then
// parses and checks each from source with go/types — no compiled export data
// and no third-party loader, so it works in this module's no-dependency
// build. Dependencies are checked with IgnoreFuncBodies (the analyzers only
// look inside the target packages' bodies), which keeps a whole-tree load
// under a couple of seconds. CGO is disabled for the load so every stdlib
// package resolves to its pure-Go variant.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		order = append(order, lp)
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*types.Package, len(order))
	var targets []*Package

	for _, lp := range order {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil {
			if !lp.DepOnly {
				return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var errs []error
		conf := types.Config{
			Importer:         &mapImporter{byPath: byPath, importMap: lp.ImportMap},
			IgnoreFuncBodies: lp.DepOnly,
			FakeImportC:      true,
			Error:            func(err error) { errs = append(errs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if tpkg == nil {
			// Even a broken check normally yields a (partial) package; a nil
			// one would poison every importer below it.
			tpkg = types.NewPackage(lp.ImportPath, lp.Name)
		}
		byPath[lp.ImportPath] = tpkg
		if lp.DepOnly {
			continue
		}
		if len(errs) > 0 {
			return nil, fmt.Errorf("lint: type errors in %s: %v", lp.ImportPath, errs[0])
		}
		targets = append(targets, &Package{
			PkgPath: lp.ImportPath,
			Name:    lp.Name,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Errors:  errs,
		})
	}
	return targets, nil
}

// mapImporter resolves imports against the already-checked package map,
// applying the importing package's vendor ImportMap first (go list reports
// e.g. golang.org/x/net/... -> vendor/golang.org/x/net/... for std vendored
// deps).
type mapImporter struct {
	byPath    map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not loaded (go list dependency order violated?)", path)
}
