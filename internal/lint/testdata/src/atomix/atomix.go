// Package atomix exercises the atomicmix analyzer: memory accessed through
// sync/atomic anywhere in a package must never be read or written plainly
// elsewhere, and typed atomic.* fields must only be touched through their
// method set. The bad shapes reproduce a mixed watermark read — the race
// class the real tree's watermark mirrors are one typo away from.
package atomix

import "sync/atomic"

// node mirrors a consensus node's watermark state: wm is written with
// atomic adds on the hot path; depth is a typed atomic wrapper.
type node struct {
	wm    uint64
	depth atomic.Int64
}

// newNode seeds the watermark before the node is shared; the annotation
// records the single-threaded window (suppression-survival case).
func newNode() *node {
	n := &node{}
	//etxlint:allow atomicmix — constructor runs before any goroutine shares n
	n.wm = 1
	return n
}

// bump is the hot-path atomic write that puts wm in the atomic domain.
func (n *node) bump() {
	atomic.AddUint64(&n.wm, 1)
}

// atomicRead stays inside the domain: clean.
func (n *node) atomicRead() uint64 {
	return atomic.LoadUint64(&n.wm)
}

// mixedRead is the bug shape: a plain read of a field the package writes
// atomically — the race detector only catches it when both paths race in
// one run; the analyzer catches it always.
func (n *node) mixedRead() uint64 {
	return n.wm // want `wm is accessed through sync/atomic elsewhere in this package but used plainly here`
}

// mixedWrite is the write-side bug shape.
func (n *node) mixedWrite() {
	n.wm = 0 // want `wm is accessed through sync/atomic elsewhere in this package but used plainly here`
}

// teardownRead documents an intentionally missing justification so the
// suppression audit fixture test has an empty-justification case to catch.
func (n *node) teardownRead() uint64 {
	//etxlint:allow atomicmix
	return n.wm
}

// depthOps uses the typed wrapper's method set: clean.
func (n *node) depthOps() int64 {
	n.depth.Add(1)
	return n.depth.Load()
}

// copyTyped copies a typed atomic out of its field: the copy races with
// concurrent writers and defeats the wrapper.
func (n *node) copyTyped() int64 {
	d := n.depth // want `atomic-typed field depth used without its atomic method set`
	return d.Load()
}
