// Package stats exercises the statswired analyzer: every metrics field must
// surface through the package's Stats or String function.
package stats

import (
	"fmt"

	"fixtures/metrics"
)

// Counters is the node's counter block. Wired is read by Stats; Dropped was
// added on the hot path and never exported — the rot statswired exists to
// catch.
type Counters struct {
	Wired   metrics.Counter
	Dropped metrics.Counter // want `metrics field Dropped is never read in this package's Stats or String`
	Depth   metrics.Gauge
}

// Stats snapshots the wired counters.
func (c *Counters) Stats() string {
	return fmt.Sprintf("wired=%d depth=%d", c.Wired.Load(), c.Depth.Load())
}
