// Package etx reproduces the shape of the PR 5 replay bug for the wallclock
// analyzer: a client incarnation's sequence base seeded from the wall clock,
// which a backwards clock step (or two dials in one nanosecond) turns into a
// replayed incarnation.
package etx

import (
	"math/rand" // want `import of math/rand in protocol package etx: identities need crypto/rand`
	"time"
)

// Client is a stand-in for the real client handle.
type Client struct {
	SeqBase uint64
	Expiry  time.Time
}

// Dial is the buggy shape: both the time.Now call and the UnixNano
// derivation must be flagged.
func Dial() *Client {
	base := time.Now().UnixNano() // want `time\.Now in protocol package etx` `time\.Time\.UnixNano in protocol package etx`
	return &Client{SeqBase: uint64(base) + uint64(rand.Uint32())}
}

// DialInjected is the fixed shape: the clock arrives injected, and the one
// place that defaults it to time.Now carries the justified suppression.
func DialInjected(now func() time.Time) *Client {
	if now == nil {
		now = time.Now //etxlint:allow wallclock — fixture: the injected clock's default
	}
	return &Client{Expiry: now().Add(time.Second)}
}

// Elapsed must be flagged: time.Since is a hidden time.Now.
func (c *Client) Elapsed() time.Duration {
	return time.Since(c.Expiry) // want `time\.Since in protocol package etx`
}
