// Package lifecycle exercises the golifecycle analyzer: goroutines launched
// from long-lived types (those promising bounded teardown via
// Stop/Close/Shutdown/Wait) must run stoppable loops. The bad shape
// reproduces an unstoppable writer loop — the transport leak class where a
// per-peer writer blocks on its queue forever after Close.
package lifecycle

// Writer mirrors a transport's per-peer writer: long-lived (has Close).
type Writer struct {
	q    chan []byte
	done chan struct{}
}

// Close signals shutdown.
func (w *Writer) Close() { close(w.done) }

// startUnstoppable launches the bug shape: the loop blocks on q with no
// shutdown path, so the goroutine outlives Close forever.
func (w *Writer) startUnstoppable() {
	go w.loopUnstoppable()
}

func (w *Writer) loopUnstoppable() {
	for { // want `goroutine loop launched from a long-lived type has no shutdown path`
		b := <-w.q
		_ = b
	}
}

// startStoppable selects on done: clean.
func (w *Writer) startStoppable() {
	go func() {
		for {
			select {
			case b := <-w.q:
				_ = b
			case <-w.done:
				return
			}
		}
	}()
}

// startRange ranges the queue, which Close's owner closes at shutdown:
// clean (range over a channel terminates on close).
func (w *Writer) startRange() {
	go func() {
		for b := range w.q {
			_ = b
		}
	}()
}

// startCommaOk observes channel close through the comma-ok receive: clean.
func (w *Writer) startCommaOk() {
	go func() {
		for {
			b, ok := <-w.q
			if !ok {
				return
			}
			_ = b
		}
	}()
}

// startJustified is the accept-loop shape: the loop exits through an error
// path the analyzer cannot see, and says so (suppression-survival case).
func (w *Writer) startJustified() {
	go w.loopJustified()
}

func (w *Writer) loopJustified() {
	//etxlint:allow golifecycle — Close unblocks the blocking call, which errors and breaks the loop
	for {
		b := <-w.q
		_ = b
	}
}

// task is not long-lived (no Stop/Close/Shutdown/Wait): its loops are out
// of the analyzer's scope even when unstoppable.
type task struct {
	q chan int
}

func (t *task) start() {
	go func() {
		for {
			v := <-t.q
			_ = v
		}
	}()
}
