// Package msg is a shrunken copy of the real wire package: a Kind
// enumeration and a Payload interface with one implementation per kind. The
// kindswitch analyzer resolves its universe from this package by name.
package msg

// Kind tags a wire payload.
type Kind uint8

const (
	KindA Kind = iota + 1
	KindB
	KindC
)

// Payload is the wire payload interface.
type Payload interface {
	Kind() Kind
}

// A is the KindA payload.
type A struct{}

// B is the KindB payload.
type B struct{}

// C is the KindC payload.
type C struct{}

func (A) Kind() Kind { return KindA }
func (B) Kind() Kind { return KindB }
func (C) Kind() Kind { return KindC }

// String is exhaustive and must not be flagged.
func (k Kind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindC:
		return "C"
	default:
		return "?"
	}
}

// encode is the codec shape that must be flagged: KindC exists but has no
// arm, and the default clause does not excuse it.
func encode(p Payload) byte {
	switch p.(type) { // want `msg\.Payload type switch is not exhaustive: missing C`
	case A:
		return 1
	case B:
		return 2
	default:
		return 0
	}
}

// route is the demux shape that must be flagged: a Kind switch missing two
// arms.
func route(k Kind) bool {
	switch k { // want `msg\.Kind switch is not exhaustive: missing KindB, KindC`
	case KindA:
		return true
	}
	return false
}

// filter is partial by design and carries the justified suppression.
func filter(k Kind) bool {
	//etxlint:allow kindswitch — fixture: trace filter, only KindA matters here
	switch k {
	case KindA:
		return true
	}
	return false
}
