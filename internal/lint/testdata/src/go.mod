// Fixture module for the etxlint analyzer tests. It lives under testdata so
// the parent module's ./... never builds it; the tests load it through the
// same go-list driver that powers cmd/etxlint.
module fixtures

go 1.24
