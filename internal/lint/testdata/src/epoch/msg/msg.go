// Package msg is a shrunken copy of the real wire package for the
// epochfence fixture: a Kind/Payload universe where three payloads carry
// fence fields (Epoch, Inc, WM) and one does not. The analyzer resolves the
// fenced-type universe from this package by name, exactly as it does from
// the real internal/msg.
package msg

// Kind tags a wire payload.
type Kind uint8

// Kinds.
const (
	KindNewPrimary Kind = iota + 1
	KindVote
	KindHeartbeat
	KindRequest
)

// Payload is the wire payload interface.
type Payload interface {
	Kind() Kind
}

// NewPrimary announces a promotion; Epoch is its fence.
type NewPrimary struct {
	Epoch   uint64
	Primary string
}

// VoteMsg carries a vote; Inc is its fence.
type VoteMsg struct {
	RID string
	Inc uint64
}

// Heartbeat carries the applied watermark; WM is its fence.
type Heartbeat struct {
	WM uint64
}

// Request carries no fence field: it must not taint handlers.
type Request struct {
	Body []byte
}

func (NewPrimary) Kind() Kind { return KindNewPrimary }
func (VoteMsg) Kind() Kind    { return KindVote }
func (Heartbeat) Kind() Kind  { return KindHeartbeat }
func (Request) Kind() Kind    { return KindRequest }
