// Package epoch exercises the epochfence analyzer. The bad shapes reproduce
// the stale-primary-vote bug the replicated data tier's epoch fencing
// exists to prevent: a handler that tallies a vote or adopts a promotion
// without comparing the payload's incarnation/epoch against local state.
package epoch

import "fixtures/epoch/msg"

// Server mirrors the app server's promotion-sensitive state.
type Server struct {
	epoch   uint64
	inc     uint64
	wm      uint64
	deposed bool
	primary string
	votes   map[string]bool
}

// onNewPrimaryBlind adopts a promotion announcement without comparing its
// epoch: a stale NewPrimary from a long-deposed node re-promotes it.
func (s *Server) onNewPrimaryBlind(m msg.NewPrimary) {
	s.primary = m.Primary // want `receiver state mutated before fencing msg\.NewPrimary`
	s.deposed = false
}

// onNewPrimaryFenced compares the epoch first: clean.
func (s *Server) onNewPrimaryFenced(m msg.NewPrimary) {
	if m.Epoch <= s.epoch {
		return
	}
	s.epoch = m.Epoch
	s.primary = m.Primary
	s.deposed = false
}

// onVoteStale is the stale-primary-vote shape: a vote from an old
// incarnation is tallied without an incarnation compare, so a deposed
// primary's vote can decide a batch it no longer owns.
func (s *Server) onVoteStale(from string, m msg.VoteMsg) {
	s.votes[from] = true // want `receiver state mutated before fencing msg\.VoteMsg`
}

// onVoteFenced rejects mismatched incarnations before tallying: clean.
func (s *Server) onVoteFenced(from string, m msg.VoteMsg) {
	if m.Inc != s.inc {
		return
	}
	s.votes[from] = true
}

// onVoteDelegated hands the whole payload to a fencing callee: clean (the
// callee owns the obligation).
func (s *Server) onVoteDelegated(from string, m msg.VoteMsg) {
	s.apply(from, m)
}

func (s *Server) apply(from string, m msg.VoteMsg) {
	if m.Inc != s.inc {
		return
	}
	s.votes[from] = true
}

// onVoteAudited is fenced by its caller; the annotation records that and
// must survive (suppression-survival case: no finding escapes).
func (s *Server) onVoteAudited(from string, m msg.VoteMsg) {
	//etxlint:allow epochfence — dispatch loop verifies the incarnation before routing here
	s.votes[from] = true
}

// handle demuxes payloads: the heartbeat case delegates its watermark and
// the promotion case compares (both clean), while the vote case tallies
// blind (finding). The unfenced Request payload must not taint.
func (s *Server) handle(p msg.Payload) {
	switch m := p.(type) {
	case msg.Heartbeat:
		s.observe(m.WM)
	case msg.VoteMsg:
		s.votes[m.RID] = true // want `receiver state mutated before fencing msg\.VoteMsg`
	case msg.NewPrimary:
		if m.Epoch > s.epoch {
			s.epoch = m.Epoch
			s.primary = m.Primary
		}
	case msg.Request:
		s.wm++
	}
}

func (s *Server) observe(wm uint64) {
	if wm > s.wm {
		s.wm = wm
	}
}

// adopt asserts the payload type and adopts without comparing: the taint
// flows through the type assertion.
func (s *Server) adopt(p msg.Payload) {
	m, ok := p.(msg.NewPrimary)
	if !ok {
		return
	}
	s.primary = m.Primary // want `receiver state mutated before fencing msg\.NewPrimary`
}
