// Package locks exercises the lockheld analyzer: blocking operations under a
// held mutex, the defer-unlock and caller-holds conventions, non-blocking
// selects, and the guarded-by annotation audit.
package locks

import (
	"sync"
	"time"
)

// node mimics the consensus node's shape.
type node struct {
	mu    sync.Mutex
	state int // guarded by mu
	bad   int // guarded by missing // want `guarded-by annotation names "missing", which is not a mutex field of this struct`
	ch    chan int
}

// sleepUnderLock is the canonical violation.
func (n *node) sleepUnderLock() {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while n\.mu is held`
	n.mu.Unlock()
}

// sendUnderDefer: defer keeps the lock held to function end.
func (n *node) sendUnderDefer() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ch <- 1 // want `channel send while n\.mu is held`
}

// recvAfterUnlock is clean: the receive happens after the unlock.
func (n *node) recvAfterUnlock() int {
	n.mu.Lock()
	n.state++
	n.mu.Unlock()
	return <-n.ch
}

// proposeUnderLock: a blocking protocol call by name.
func (n *node) proposeUnderLock(p interface{ Propose() }) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p.Propose() // want `call to blocking Propose while n\.mu is held`
}

// pollUnderLock is clean: a select with a default clause never blocks.
func (n *node) pollUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- 1:
	default:
	}
}

// waitUnderLock: a defaultless select blocks while holding the lock.
func (n *node) waitUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `select without a default clause blocks while n\.mu is held`
	case <-n.ch:
	}
}

// branchUnlock is clean: both branches release before the send.
func (n *node) branchUnlock(fast bool) {
	n.mu.Lock()
	if fast {
		n.mu.Unlock()
	} else {
		n.state++
		n.mu.Unlock()
	}
	n.ch <- 1
}

// earlyReturn is clean: the locked path returns before the send.
func (n *node) earlyReturn() {
	n.mu.Lock()
	if n.state > 0 {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	n.ch <- 1
}

// applyLocked runs under the caller's lock by naming convention.
func (n *node) applyLocked() {
	n.ch <- 1 // want `channel send while <receiver lock> is held`
}

// flush runs under n.mu. Caller holds n.mu.
func (n *node) flush() {
	<-n.ch // want `channel receive while n\.mu is held`
}

// goroutineEscape is clean: the spawned goroutine blocks on its own time.
func (n *node) goroutineEscape() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		n.ch <- 1
	}()
}

// suppressed shows a justified allow annotation surviving the filter.
func (n *node) suppressed() {
	n.mu.Lock()
	defer n.mu.Unlock()
	//etxlint:allow lockheld — fixture: serialization under the lock is the point here
	n.ch <- 1
}
