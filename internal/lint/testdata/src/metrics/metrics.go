// Package metrics mirrors the real counters package just enough for the
// statswired analyzer, which matches the Counter/Gauge types by package and
// type name.
package metrics

// Counter is a monotone event counter.
type Counter struct{ v uint64 }

// Inc bumps the counter.
func (c *Counter) Inc() { c.v++ }

// Load reads the counter.
func (c *Counter) Load() uint64 { return c.v }

// Gauge is a point-in-time level.
type Gauge struct{ v int64 }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Load reads the level.
func (g *Gauge) Load() int64 { return g.v }
