package lint

import (
	"go/ast"
	"go/types"
)

// StatsWired keeps observability from silently rotting: every
// metrics.Counter / metrics.Gauge field declared in a package must be read
// somewhere inside that package's Stats or String functions (the export
// surface benchmarks and DebugTry dumps consume). A counter that is
// incremented on the hot path but never snapshotted is indistinguishable
// from one that was never wired at all — this is how per-commit rates
// quietly vanish from the liveness diagnostics.
var StatsWired = &Analyzer{
	Name: "statswired",
	Doc: "every metrics.Counter/metrics.Gauge field must be read inside the declaring package's " +
		"Stats or String function, so counters stay visible to benchmarks and liveness dumps",
	Run: runStatsWired,
}

func runStatsWired(pass *Pass) error {
	// Counter/Gauge fields declared anywhere in this package, by object.
	type fieldInfo struct {
		obj  *types.Var
		name ast.Expr // position anchor
	}
	var fields []fieldInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				t := pass.Info.Types[fld.Type].Type
				if t == nil {
					continue
				}
				if !namedIn(t, "metrics", "Counter") && !namedIn(t, "metrics", "Gauge") {
					continue
				}
				for _, name := range fld.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					fields = append(fields, fieldInfo{obj: obj, name: name})
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return nil
	}

	// Field objects selected inside any function named Stats or String.
	read := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name != "Stats" && fn.Name.Name != "String" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s := pass.Info.Selections[sel]; s != nil {
					if v, ok := s.Obj().(*types.Var); ok {
						read[v] = true
					}
				}
				return true
			})
		}
	}

	for _, fi := range fields {
		if !read[fi.obj] {
			pass.Reportf(fi.name.Pos(), "metrics field %s is never read in this package's Stats or String: wire it into the stats surface or it will silently rot", fi.obj.Name())
		}
	}
	return nil
}
