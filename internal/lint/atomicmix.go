package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags mixed atomic/plain access to the same memory — the race
// class the watermark mirrors and the metrics.EWMA CAS loop are one typo away
// from. Two disciplines are enforced per package:
//
//   - A variable or struct field whose address is passed to a sync/atomic
//     function (atomic.AddUint64(&s.wm, 1), ...) belongs to the atomic domain:
//     every other read or write of it must also go through sync/atomic.
//     A plain `s.wm++` or `if s.wm > x` next to an atomic add is a data race
//     the race detector only catches when both paths fire in one run.
//
//   - A field of one of the typed atomic wrappers (atomic.Int64, ...) must
//     only be touched through its method set (or have its address taken);
//     copying the value out (`wm := s.wm`) both races and go-vet-copies the
//     internal noCopy lock.
//
// Accesses that are provably single-threaded (init before any goroutine
// starts, post-Wait teardown) carry //etxlint:allow atomicmix with a reason.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "memory accessed through sync/atomic must never be read or written plainly elsewhere; " +
		"typed atomic.* fields must only be used through their methods",
	Run: runAtomicMix,
}

// isAtomicPkgFunc reports whether call's callee is a function from
// sync/atomic (AddUint64, LoadPointer, ...).
func isAtomicPkgFunc(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pkgName.Imported().Path() == "sync/atomic"
}

// isTypedAtomic reports whether t (pointer stripped) is one of the typed
// wrappers declared in sync/atomic (atomic.Int64, atomic.Bool, ...).
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// targetVar resolves an expression to the variable object it denotes: a
// struct field selection or a plain identifier. Parens are stripped.
func targetVar(pass *Pass, e ast.Expr) *types.Var {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		// Package-qualified var (pkg.V).
		if v, ok := pass.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[x].(*types.Var); ok {
			return v
		}
	}
	return nil
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect the atomic domain (vars whose address feeds a
	// sync/atomic function) and the set of expression nodes sanctioned by
	// that use, plus sanctioned uses of typed atomic fields (method-call
	// receivers and address-taken operands).
	atomicDomain := make(map[*types.Var]bool)
	sanctioned := make(map[ast.Expr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isAtomicPkgFunc(pass, x) {
					for _, arg := range x.Args {
						u, ok := arg.(*ast.UnaryExpr)
						if !ok || u.Op.String() != "&" {
							continue
						}
						if v := targetVar(pass, u.X); v != nil {
							atomicDomain[v] = true
							sanctioned[u.X] = true
						}
					}
				}
			case *ast.SelectorExpr:
				// sel.X is the receiver of a method call (wm.Load()) or an
				// inner step of a longer chain; both sanction the inner
				// node for typed atomics.
				if s, ok := pass.Info.Selections[x]; ok && s.Kind() == types.MethodVal {
					sanctioned[x.X] = true
				}
			case *ast.UnaryExpr:
				if x.Op.String() == "&" {
					sanctioned[x.X] = true
				}
			case *ast.CompositeLit:
				// Field names in composite literals are initialization,
				// not access.
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						sanctioned[kv.Key] = true
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag offending uses.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			v := targetVar(pass, e)
			if v == nil {
				return true
			}
			if atomicDomain[v] && !sanctioned[e] {
				if _, isIdent := e.(*ast.Ident); isIdent {
					// Idents inside a selector are visited as part of the
					// selector; only flag a bare ident use when the var is
					// not a field (fields are always reached via selector).
					if v.IsField() {
						return true
					}
				}
				pass.Reportf(e.Pos(), "%s is accessed through sync/atomic elsewhere in this package but used plainly here (use the atomic API, or annotate //etxlint:allow atomicmix with a reason)", v.Name())
				return false
			}
			if v.IsField() && isTypedAtomic(v.Type()) && !sanctioned[e] {
				if _, isSel := e.(*ast.SelectorExpr); isSel {
					pass.Reportf(e.Pos(), "atomic-typed field %s used without its atomic method set (Load/Store/...; copying it races and defeats the wrapper — annotate //etxlint:allow atomicmix with a reason if access is provably single-threaded)", v.Name())
					return false
				}
			}
			return true
		})
	}
	return nil
}
