package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EpochFence enforces the promotion-safety discipline from the replicated
// data tier: any method that receives a msg payload carrying an Epoch,
// Incarnation/Inc, or WM field must compare that fence field against local
// state (or hand the field/payload to a callee that does) before it mutates
// receiver state. A handler that mutates first accepts input from a deposed
// primary or a stale incarnation — the silent double-apply class that
// TestReplayedResultsSurvivePromotion pins down dynamically.
//
// The fenced-type universe is resolved from the msg package the same way
// kindswitch resolves the Kind/Payload universe: every Payload implementation
// declaring a field named Epoch, Inc, Incarnation, or WM is fenced. A payload
// value taints a method body when it arrives as a parameter, as a
// single-type type-switch case binding, or via a type assertion; locally
// constructed payloads (outgoing messages) do not taint.
//
// A fence field counts as checked when it appears under a comparison
// operator or in a switch tag, or when the field or the whole payload is
// passed to a call — the last form is delegation: view.Advance(m.Epoch),
// ObserveWatermark(from, m.WM), applyRecord(m) take over the fencing
// obligation. Handlers fenced at a different layer carry
// //etxlint:allow epochfence with a reason.
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc: "methods receiving a msg payload with an Epoch/Inc/Incarnation/WM field must compare it " +
		"against local fenced state (or delegate it) before mutating receiver state",
	Run: runEpochFence,
}

// fenceFieldNames are the field names that make a payload type fenced.
var fenceFieldNames = map[string]bool{
	"Epoch":       true,
	"Inc":         true,
	"Incarnation": true,
	"WM":          true,
}

// resolveFencedTypes enumerates the msg package's Payload implementations
// that carry a fence field, mapping each type to its fence field names.
func resolveFencedTypes(pass *Pass) map[*types.TypeName][]string {
	msgPkg := findImported(pass.Pkg, "msg", func(p *types.Package) bool {
		k, _ := p.Scope().Lookup("Kind").(*types.TypeName)
		pl, _ := p.Scope().Lookup("Payload").(*types.TypeName)
		return k != nil && pl != nil && types.IsInterface(pl.Type()) && !types.IsInterface(k.Type())
	})
	if msgPkg == nil {
		return nil
	}
	payload := msgPkg.Scope().Lookup("Payload").(*types.TypeName)
	iface := payload.Type().Underlying().(*types.Interface)
	out := make(map[*types.TypeName][]string)
	scope := msgPkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || obj == payload || types.IsInterface(obj.Type()) {
			continue
		}
		if !types.Implements(obj.Type(), iface) && !types.Implements(types.NewPointer(obj.Type()), iface) {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var fields []string
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); fenceFieldNames[f.Name()] {
				fields = append(fields, f.Name())
			}
		}
		if len(fields) > 0 {
			sort.Strings(fields)
			out[obj] = fields
		}
	}
	return out
}

// fencedTypeOf returns the fenced type name and fence fields for t (pointer
// stripped), or nil.
func fencedTypeOf(fenced map[*types.TypeName][]string, t types.Type) (*types.TypeName, []string) {
	if t == nil {
		return nil, nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	fields, ok := fenced[named.Obj()]
	if !ok {
		return nil, nil
	}
	return named.Obj(), fields
}

func runEpochFence(pass *Pass) error {
	fenced := resolveFencedTypes(pass)
	if len(fenced) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			checkFencedMethod(pass, fenced, fn)
		}
	}
	return nil
}

// fencedVar is one tainted payload value flowing through a handler body.
// scopeStart/scopeEnd bound where the variable is visible (a type-switch case
// binding only exists inside its case clause), so mutations elsewhere in the
// body are not attributed to it.
type fencedVar struct {
	obj        types.Object
	typeName   string
	fields     []string
	scopeStart token.Pos
	scopeEnd   token.Pos
	guarded    bool
	reported   bool
}

// atomicMutators are write methods on atomic/metrics wrapper fields; calling
// one on receiver state is a mutation like a plain assignment.
var atomicMutators = map[string]bool{
	"Store": true, "Add": true, "Inc": true, "Dec": true, "Set": true,
	"Swap": true, "CompareAndSwap": true, "Observe": true,
}

// isAtomicOrMetrics reports whether t (pointer stripped) is a sync/atomic
// typed wrapper or a type from a package named metrics.
func isAtomicOrMetrics(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic" || obj.Pkg().Name() == "metrics"
}

// checkFencedMethod walks one method body in source order (ast.Inspect
// pre-order), adding fenced payload variables as they come into scope
// (parameters up front, type-switch bindings and type assertions as they
// appear) and requiring each to be checked before the first receiver
// mutation that follows it. Function literals inside the body are walked
// too: they close over both the receiver and the payload.
func checkFencedMethod(pass *Pass, fenced map[*types.TypeName][]string, fn *ast.FuncDecl) {
	var recv types.Object
	if names := fn.Recv.List[0].Names; len(names) > 0 {
		recv = pass.Info.Defs[names[0]]
	}
	if recv == nil {
		return
	}

	vars := make(map[types.Object]*fencedVar)
	addVar := func(obj types.Object, start, end token.Pos) {
		if obj == nil {
			return
		}
		if _, dup := vars[obj]; dup {
			return
		}
		if tn, fields := fencedTypeOf(fenced, obj.Type()); tn != nil {
			vars[obj] = &fencedVar{
				obj: obj, typeName: tn.Name(), fields: fields,
				scopeStart: start, scopeEnd: end,
			}
		}
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			addVar(pass.Info.Defs[name], fn.Body.Pos(), fn.Body.End())
		}
	}

	varOf := func(e ast.Expr) *fencedVar {
		if id, ok := e.(*ast.Ident); ok {
			return vars[pass.Info.Uses[id]]
		}
		return nil
	}
	// fenceFieldSel reports the fenced variable when e is v.F for a fence
	// field F of tracked v.
	fenceFieldSel := func(e ast.Expr) *fencedVar {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		v := varOf(sel.X)
		if v == nil {
			return nil
		}
		for _, f := range v.fields {
			if sel.Sel.Name == f {
				return v
			}
		}
		return nil
	}
	markUnder := func(e ast.Expr, wholeValueCounts bool) {
		ast.Inspect(e, func(n ast.Node) bool {
			ex, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if v := fenceFieldSel(ex); v != nil {
				v.guarded = true
			}
			if wholeValueCounts {
				if v := varOf(ex); v != nil {
					v.guarded = true
				}
			}
			return true
		})
	}

	var rootedAtRecv func(e ast.Expr) bool
	rootedAtRecv = func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.Uses[x] == recv
		case *ast.SelectorExpr:
			return rootedAtRecv(x.X)
		case *ast.IndexExpr:
			return rootedAtRecv(x.X)
		case *ast.StarExpr:
			return rootedAtRecv(x.X)
		case *ast.ParenExpr:
			return rootedAtRecv(x.X)
		}
		return false
	}

	inScope := func(v *fencedVar, pos token.Pos) bool {
		return pos >= v.scopeStart && pos < v.scopeEnd
	}
	report := func(pos token.Pos) {
		for _, v := range vars {
			if v.guarded || v.reported || !inScope(v, pos) {
				continue
			}
			v.reported = true
			pass.Reportf(pos, "receiver state mutated before fencing msg.%s (compare %s.%s against local fenced state, delegate the payload, or annotate //etxlint:allow epochfence with a reason)",
				v.typeName, v.obj.Name(), strings.Join(v.fields, "/"))
		}
	}
	anyUnguarded := func(pos token.Pos) bool {
		for _, v := range vars {
			if !v.guarded && !v.reported && inScope(v, pos) {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				markUnder(x.X, false)
				markUnder(x.Y, false)
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				markUnder(arg, true)
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				markUnder(x.Tag, false)
			}
		case *ast.CaseClause:
			// A single-type case clause of a type switch binds the payload
			// at its concrete type, scoped to the clause body.
			if len(x.List) == 1 {
				addVar(pass.Info.Implicits[x], x.Pos(), x.End())
			}
		case *ast.AssignStmt:
			// A type assertion taints the bound variable.
			if len(x.Rhs) == 1 {
				if ta, ok := x.Rhs[0].(*ast.TypeAssertExpr); ok && ta.Type != nil && len(x.Lhs) > 0 {
					if id, ok := x.Lhs[0].(*ast.Ident); ok {
						addVar(pass.Info.Defs[id], x.Pos(), fn.Body.End())
					}
				}
			}
			// Guards syntactically inside this statement's RHS (a compare
			// or a delegating call) count as before the write; a bare
			// `s.wm = m.WM` adoption does not.
			for _, rhs := range x.Rhs {
				ast.Inspect(rhs, func(m ast.Node) bool {
					switch y := m.(type) {
					case *ast.BinaryExpr:
						switch y.Op {
						case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
							markUnder(y.X, false)
							markUnder(y.Y, false)
						}
					case *ast.CallExpr:
						for _, arg := range y.Args {
							markUnder(arg, true)
						}
					}
					return true
				})
			}
			if anyUnguarded(x.Pos()) {
				for _, lhs := range x.Lhs {
					if rootedAtRecv(lhs) {
						report(x.Pos())
						break
					}
				}
			}
		case *ast.IncDecStmt:
			if anyUnguarded(x.Pos()) && rootedAtRecv(x.X) {
				report(x.Pos())
			}
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && anyUnguarded(x.Pos()) {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && atomicMutators[sel.Sel.Name] {
					// Mutation through an atomic or metrics-wrapper FIELD
					// of the receiver (s.deposed.Store, s.count.Inc) — a
					// write-method call on an arbitrary sub-component is
					// that component's business, not receiver mutation.
					if rootedAtRecv(sel.X) && isAtomicOrMetrics(pass.Info.Types[sel.X].Type) {
						report(x.Pos())
					}
				}
			}
		}
		return true
	})
}
