package lint

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backquoted expectation regexes from a
// `// want `re1` `re2“ comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a fixture source file for `// want` expectations.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	var out []*expectation
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		i := strings.Index(text, "// want ")
		if i < 0 {
			continue
		}
		for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
			}
			out = append(out, &expectation{file: path, line: line, re: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan fixture: %v", err)
	}
	return out
}

// runFixture loads one fixture package through the production go-list driver,
// runs the given analyzers, and checks the diagnostics against the fixture's
// `// want` comments exactly: every want must be hit, every diagnostic must
// be wanted.
func runFixture(t *testing.T, pattern string, analyzers []*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, []string{pattern})
	if err != nil {
		t.Fatalf("Load(%s): %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%s): no packages", pattern)
	}
	for _, pkg := range pkgs {
		var wants []*expectation
		seen := make(map[string]bool)
		for _, f := range pkg.Files {
			path := pkg.Fset.Position(f.Pos()).Filename
			if seen[path] {
				continue
			}
			seen[path] = true
			wants = append(wants, parseWants(t, path)...)
		}
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if w.hit || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.re.MatchString(d.Message) {
					w.hit = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic %s: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

func TestKindSwitchFixture(t *testing.T) { runFixture(t, "./msg", []*Analyzer{KindSwitch}) }

func TestWallClockFixture(t *testing.T) { runFixture(t, "./etx", []*Analyzer{WallClock}) }

func TestLockHeldFixture(t *testing.T) { runFixture(t, "./locks", []*Analyzer{LockHeld}) }

func TestStatsWiredFixture(t *testing.T) { runFixture(t, "./stats", []*Analyzer{StatsWired}) }

// TestEpochFenceFixture pins the stale-primary-vote bug shape: handlers
// that tally votes or adopt promotions without an epoch/incarnation compare
// are caught; fenced, delegated, and justified handlers are not.
func TestEpochFenceFixture(t *testing.T) { runFixture(t, "./epoch/...", []*Analyzer{EpochFence}) }

func TestAtomicMixFixture(t *testing.T) { runFixture(t, "./atomix", []*Analyzer{AtomicMix}) }

func TestGoLifecycleFixture(t *testing.T) { runFixture(t, "./lifecycle", []*Analyzer{GoLifecycle}) }

// TestRunAnalyzersAllKeepsSuppressed checks the -json contract: suppressed
// findings are kept and flagged rather than dropped, and every diagnostic
// round-trips through its JSON wire form unchanged (the CI annotation step
// parses exactly these objects).
func TestRunAnalyzersAllKeepsSuppressed(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, []string{"./lifecycle"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := RunAnalyzersAll(pkg, []*Analyzer{GoLifecycle})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, open int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		} else {
			open++
		}
	}
	if suppressed != 1 || open != 1 {
		t.Fatalf("want 1 suppressed + 1 open finding, got %d suppressed, %d open", suppressed, open)
	}
	for _, d := range diags {
		wire := d.ToJSON(pkg.Fset)
		buf, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var back JSONDiagnostic
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if back != wire {
			t.Errorf("JSON round-trip diverged:\n first: %+v\nsecond: %+v", wire, back)
		}
		if back.File == "" || back.Line == 0 || back.Analyzer != "golifecycle" {
			t.Errorf("wire form missing position/analyzer: %+v", back)
		}
	}
}

// TestSuppressions checks the -audit-suppressions contract: every
// //etxlint:allow annotation is listed with its justification, and an
// annotation with no justification surfaces as empty (the audit mode turns
// that into a failure).
func TestSuppressions(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, []string{"./atomix"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	sup := Suppressions(pkgs[0])
	if len(sup) != 2 {
		t.Fatalf("want 2 suppressions in ./atomix, got %d: %+v", len(sup), sup)
	}
	// File order: the justified constructor seed comes first, the bare
	// teardown annotation second.
	if got := sup[0].Justification; got != "constructor runs before any goroutine shares n" {
		t.Errorf("justification = %q, want the constructor reason", got)
	}
	if sup[1].Justification != "" {
		t.Errorf("bare annotation justification = %q, want empty", sup[1].Justification)
	}
	for _, s := range sup {
		if len(s.Analyzers) != 1 || s.Analyzers[0] != "atomicmix" {
			t.Errorf("analyzers = %v, want [atomicmix]", s.Analyzers)
		}
		if s.File == "" || s.Line == 0 {
			t.Errorf("suppression missing position: %+v", s)
		}
	}
}

// TestSuiteOnFixtures runs the whole suite over every fixture package at
// once, the way cmd/etxlint does: the wants of every analyzer must be
// produced together, and nothing extra.
func TestSuiteOnFixtures(t *testing.T) { runFixture(t, "./...", All()) }

// TestRealTreeClean is the enforcement test: the production tree must be
// free of findings. A regression here means either a genuine invariant
// violation or a missing justified annotation — both want a human look.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
