package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backquoted expectation regexes from a
// `// want `re1` `re2“ comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a fixture source file for `// want` expectations.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	defer f.Close()
	var out []*expectation
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		i := strings.Index(text, "// want ")
		if i < 0 {
			continue
		}
		for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
			}
			out = append(out, &expectation{file: path, line: line, re: re})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan fixture: %v", err)
	}
	return out
}

// runFixture loads one fixture package through the production go-list driver,
// runs the given analyzers, and checks the diagnostics against the fixture's
// `// want` comments exactly: every want must be hit, every diagnostic must
// be wanted.
func runFixture(t *testing.T, pattern string, analyzers []*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, []string{pattern})
	if err != nil {
		t.Fatalf("Load(%s): %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%s): no packages", pattern)
	}
	for _, pkg := range pkgs {
		var wants []*expectation
		seen := make(map[string]bool)
		for _, f := range pkg.Files {
			path := pkg.Fset.Position(f.Pos()).Filename
			if seen[path] {
				continue
			}
			seen[path] = true
			wants = append(wants, parseWants(t, path)...)
		}
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if w.hit || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.re.MatchString(d.Message) {
					w.hit = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic %s: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

func TestKindSwitchFixture(t *testing.T) { runFixture(t, "./msg", []*Analyzer{KindSwitch}) }

func TestWallClockFixture(t *testing.T) { runFixture(t, "./etx", []*Analyzer{WallClock}) }

func TestLockHeldFixture(t *testing.T) { runFixture(t, "./locks", []*Analyzer{LockHeld}) }

func TestStatsWiredFixture(t *testing.T) { runFixture(t, "./stats", []*Analyzer{StatsWired}) }

// TestSuiteOnFixtures runs the whole suite over every fixture package at
// once, the way cmd/etxlint does: the wants of every analyzer must be
// produced together, and nothing extra.
func TestSuiteOnFixtures(t *testing.T) { runFixture(t, "./...", All()) }

// TestRealTreeClean is the enforcement test: the production tree must be
// free of findings. A regression here means either a genuine invariant
// violation or a missing justified annotation — both want a human look.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole tree")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("RunAnalyzers(%s): %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
