package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GoLifecycle enforces that goroutines launched from long-lived components
// can be shut down. A type with a Stop/Close/Shutdown/Wait method promises a
// bounded lifetime; a `go` statement reached from such a type that enters an
// unconditional `for {}` loop must give the loop a way out — a receive from
// a done/ctx/stop channel (directly or in a select arm), a comma-ok receive
// that observes channel close, or a ctx.Err() poll. A loop with none of
// those outlives Close, which is exactly the writer-goroutine leak class the
// transport and replication tiers grew defenses against.
//
// `for range ch` loops are exempt: ranging a channel terminates when the
// channel is closed at shutdown. Conditional `for cond {}` loops are exempt:
// the condition is the exit. Loops that are self-terminating by construction
// (bounded queue drain after Stop, listener Accept that errors on Close)
// carry //etxlint:allow golifecycle with the reason.
var GoLifecycle = &Analyzer{
	Name: "golifecycle",
	Doc: "go statements launched from long-lived types (Stop/Close/Shutdown/Wait) must run stoppable " +
		"loops: select on a done/ctx channel, range a closed-at-shutdown channel, or justify",
	Run: runGoLifecycle,
}

// lifecycleMethods mark a type as long-lived (it promises bounded teardown).
var lifecycleMethods = map[string]bool{
	"Stop": true, "Close": true, "Shutdown": true, "Wait": true,
}

// stopChanRe matches the printed form of a channel operand that plausibly
// carries shutdown intent.
var stopChanRe = regexp.MustCompile(`(?i)(done|stop|quit|clos|ctx|shut|exit|dying|kill)`)

// isLongLived reports whether t (pointer stripped) declares a lifecycle
// method.
func isLongLived(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if lifecycleMethods[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

func runGoLifecycle(pass *Pass) error {
	// Map from function object to its declaration, for resolving the bodies
	// of same-package functions a go statement targets.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, decls, g, fn)
				}
				return true
			})
		}
	}
	return nil
}

// launchedFromLongLived reports whether the go statement belongs to a
// long-lived component: its call target is a method on a long-lived type, or
// (for function literals) the enclosing function is a method on — or returns
// — a long-lived type.
func launchedFromLongLived(pass *Pass, g *ast.GoStmt, encl *ast.FuncDecl) bool {
	// go x.method(...) on a long-lived x.
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && isLongLived(s.Recv()) {
			return true
		}
	}
	if encl == nil {
		return false
	}
	if encl.Recv != nil && len(encl.Recv.List) > 0 {
		if t := pass.Info.Types[encl.Recv.List[0].Type].Type; isLongLived(t) {
			return true
		}
	}
	if encl.Type.Results != nil {
		for _, r := range encl.Type.Results.List {
			if t := pass.Info.Types[r.Type].Type; isLongLived(t) {
				return true
			}
		}
	}
	return false
}

// goTargetBodies returns the bodies the go statement hands control to: the
// launched function literal and/or the bodies of same-package functions it
// calls at depth ≤ 2 (go func(){ ep.readLoop(c) }() reaches readLoop).
func goTargetBodies(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	seen := make(map[*ast.BlockStmt]bool)
	var add func(body *ast.BlockStmt, depth int)
	add = func(body *ast.BlockStmt, depth int) {
		if body == nil || seen[body] {
			return
		}
		seen[body] = true
		out = append(out, body)
		if depth <= 0 {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				obj = pass.Info.Uses[fun]
			case *ast.SelectorExpr:
				obj = pass.Info.Uses[fun.Sel]
			}
			if fn, ok := obj.(*types.Func); ok {
				if d := decls[fn]; d != nil {
					add(d.Body, depth-1)
				}
			}
			return true
		})
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		add(fun.Body, 2)
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if d := decls[fn]; d != nil {
				add(d.Body, 1)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if d := decls[fn]; d != nil {
				add(d.Body, 1)
			}
		}
	}
	return out
}

// exprString renders the ident/selector/call spine of an expression for
// pattern matching (ep.done -> "ep.done", n.ctx.Done() -> "n.ctx.Done").
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X)
	}
	return ""
}

// loopIsStoppable reports whether an unconditional loop body contains a
// shutdown-capable exit: a receive whose operand names a done/ctx/stop
// channel, a comma-ok receive (observes close), or a ctx.Err() poll. The
// exit may live one call deep in a same-package helper (a round loop whose
// block() selects on ctx.Done is stoppable through it).
func loopIsStoppable(pass *Pass, decls map[*types.Func]*ast.FuncDecl, loop *ast.ForStmt) bool {
	return bodyHasStopSignal(pass, decls, loop.Body, 1)
}

func bodyHasStopSignal(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body ast.Node, depth int) bool {
	stoppable := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stoppable {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" && stopChanRe.MatchString(exprString(x.X)) {
				stoppable = true
				return false
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes channel close regardless of name.
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if u, ok := x.Rhs[0].(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
					stoppable = true
					return false
				}
			}
		case *ast.CallExpr:
			// ctx.Err() != nil polls cancellation.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" &&
				stopChanRe.MatchString(exprString(sel.X)) {
				stoppable = true
				return false
			}
			if depth > 0 {
				var obj types.Object
				switch fun := x.Fun.(type) {
				case *ast.Ident:
					obj = pass.Info.Uses[fun]
				case *ast.SelectorExpr:
					obj = pass.Info.Uses[fun.Sel]
				}
				if fn, ok := obj.(*types.Func); ok {
					if d := decls[fn]; d != nil && d.Body != nil && bodyHasStopSignal(pass, decls, d.Body, depth-1) {
						stoppable = true
						return false
					}
				}
			}
		case *ast.RangeStmt:
			// An inner range over a closed-at-shutdown channel with the
			// loop exiting after it still needs an outer-level signal;
			// don't treat inner ranges as exits.
			return true
		}
		return true
	})
	return stoppable
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt, encl *ast.FuncDecl) {
	if !launchedFromLongLived(pass, g, encl) {
		return
	}
	for _, body := range goTargetBodies(pass, decls, g) {
		// Only outermost unconditional loops: an inner `for {}` is reached
		// under the outer loop's control flow and inherits its exits.
		for _, stmt := range body.List {
			loop, ok := stmt.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				continue
			}
			if !loopIsStoppable(pass, decls, loop) {
				pass.Reportf(loop.Pos(), "goroutine loop launched from a long-lived type has no shutdown path (select on a done/ctx/stop channel, range a channel closed at shutdown, or annotate //etxlint:allow golifecycle with a reason)")
			}
		}
	}
}
