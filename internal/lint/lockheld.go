package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockHeld flags potentially-blocking operations reached while a sync.Mutex
// or sync.RWMutex is held: channel sends and receives, selects without a
// default clause, time.Sleep / spin.Sleep, and calls to the protocol's known
// blocking surfaces (Propose, Sync, Send, Wait and their unexported
// spellings). In this codebase every such pairing has been a liveness bug
// waiting to happen — a consensus round that sleeps under Node.mu stalls
// Handle for every peer, and a transport send under a demux lock deadlocks
// against the in-memory network's backpressure.
//
// Tracking is intra-procedural and intentionally conservative-but-quiet:
//
//   - `mu.Lock()` / `mu.RLock()` adds the receiver expression to the held
//     set; `mu.Unlock()` / `mu.RUnlock()` removes it.
//   - `defer mu.Unlock()` marks mu held for the remainder of the function
//     (this also covers the TryLock-then-defer idiom).
//   - A function whose doc comment says "caller holds <mu>" / "caller must
//     hold", or whose name ends in "Locked", starts with a synthetic held
//     lock, so the convention for lock-requiring helpers is machine-checked.
//   - Branches are joined by intersection over paths that fall through;
//     loop and switch bodies are analyzed with a copy of the entry set.
//   - `go func(){...}()` bodies and function literals run on other
//     goroutines or later, so they are skipped.
//   - A select *with* a default clause is a non-blocking poll: neither the
//     select nor its communication clauses are flagged.
//
// The analyzer also audits the `// guarded by <mu>` field-annotation
// convention: every such comment must name a mutex field of the same struct.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: "flag blocking operations (channel ops, defaultless selects, sleeps, Propose/Sync/Send/Wait) " +
		"reached while a sync.Mutex/RWMutex is held, and audit `// guarded by mu` field annotations",
	Run: runLockHeld,
}

// blockingMethods are method names that block (or may block arbitrarily
// long) in this codebase: consensus proposals, stable-storage syncs,
// transport sends and waitgroup/cond waits. Matched by name on any receiver
// — within this repository these names are reserved for blocking surfaces.
var blockingMethods = map[string]bool{
	"Propose": true,
	"Sync":    true,
	"sync":    true,
	"Send":    true,
	"send":    true,
	"Wait":    true,
}

// callerHoldsRe matches the doc-comment convention for helpers that require
// a lock: "caller holds mu", "Caller must hold s.mu", etc.
var callerHoldsRe = regexp.MustCompile(`(?i)caller (?:must )?holds? (\w+(?:\.\w+)*)`)

// guardedByRe matches the field-annotation convention audited below.
var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+(?:\.\w+)*)`)

func runLockHeld(pass *Pass) error {
	auditGuardedBy(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := make(heldSet)
			if name, ok := entryHeldLock(fn); ok {
				held[name] = true
			}
			w := &lockWalker{pass: pass}
			w.block(fn.Body, held)
		}
	}
	return nil
}

// entryHeldLock reports whether fn's contract says it runs with a lock
// already held, and under which name to track it.
func entryHeldLock(fn *ast.FuncDecl) (string, bool) {
	if fn.Doc != nil {
		if m := callerHoldsRe.FindStringSubmatch(fn.Doc.Text()); m != nil {
			return m[1], true
		}
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return "<receiver lock>", true
	}
	return "", false
}

// heldSet is the set of currently-held lock expressions, keyed by their
// printed form ("n.mu", "s.cohortMu", ...).
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func (h heldSet) names() string {
	var ns []string
	for k := range h {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ", ")
}

// replaceWith mutates h in place to equal src.
func (h heldSet) replaceWith(src heldSet) {
	for k := range h {
		if !src[k] {
			delete(h, k)
		}
	}
	for k := range src {
		h[k] = true
	}
}

// intersectInto removes from h every lock not also in other.
func (h heldSet) intersectInto(other heldSet) {
	for k := range h {
		if !other[k] {
			delete(h, k)
		}
	}
}

type lockWalker struct {
	pass *Pass
}

// block runs the statement list, mutating held, and reports whether control
// always leaves the enclosing function/loop (return, branch, panic-like).
func (w *lockWalker) block(b *ast.BlockStmt, held heldSet) bool {
	for _, s := range b.List {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt processes one statement. The return value means "control does not
// fall through to the next statement".
func (w *lockWalker) stmt(s ast.Stmt, held heldSet) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, op, ok := w.lockOp(s.X); ok {
			if op == opLock {
				held[name] = true
			} else {
				delete(held, name)
			}
			return false
		}
		w.expr(s.X, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() => mu is held from here to function end. The
		// deferred call itself runs at return, outside this analysis.
		if name, op, ok := w.lockOp(s.Call); ok && op == opUnlock {
			held[name] = true
		}

	case *ast.GoStmt:
		// Runs on another goroutine; holding a lock here is not blocking.
		// Argument expressions are evaluated now but cannot block.

	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		if len(held) > 0 {
			w.pass.Reportf(s.Arrow, "channel send while %s is held: a full channel stalls every contender on the lock", held.names())
		}

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}

	case *ast.IncDecStmt:
		w.expr(s.X, held)

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto: control leaves this statement list.
		return true

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.BlockStmt:
		return w.block(s, held)

	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := held.clone()
		thenTerm := w.block(s.Body, thenHeld)
		if s.Else != nil {
			elseHeld := held.clone()
			elseTerm := w.stmt(s.Else, elseHeld)
			switch {
			case thenTerm && elseTerm:
				return true
			case thenTerm:
				held.replaceWith(elseHeld)
			case elseTerm:
				held.replaceWith(thenHeld)
			default:
				thenHeld.intersectInto(elseHeld)
				held.replaceWith(thenHeld)
			}
		} else if !thenTerm {
			// Fall-through join: held after = held on entry ∩ held after then.
			held.intersectInto(thenHeld)
		}

	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := held.clone()
		w.block(s.Body, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		// After the loop, conservatively keep the entry set: a zero-iteration
		// loop leaves it unchanged, and lock state is expected to be
		// loop-invariant in this codebase.

	case *ast.RangeStmt:
		w.expr(s.X, held)
		body := held.clone()
		w.block(s.Body, body)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.caseClauses(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.caseClauses(s.Body, held)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.pass.Reportf(s.Select, "select without a default clause blocks while %s is held", held.names())
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// The comm op itself is the select's blocking point, already
			// covered above (or non-blocking when a default exists) — only
			// the clause bodies are analyzed.
			body := held.clone()
			for _, bs := range cc.Body {
				if w.stmt(bs, body) {
					break
				}
			}
		}
	}
	return false
}

// caseClauses analyzes each case body with a copy of the entry held set.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, held heldSet) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e, held)
		}
		caseHeld := held.clone()
		for _, bs := range cc.Body {
			if w.stmt(bs, caseHeld) {
				break
			}
		}
	}
}

// expr reports blocking operations inside an expression: channel receives
// and blocking calls. Function literals are skipped (they run later).
func (w *lockWalker) expr(e ast.Expr, held heldSet) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.pass.Reportf(n.OpPos, "channel receive while %s is held", held.names())
			}
		case *ast.CallExpr:
			w.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags calls to known blocking surfaces while a lock is held.
func (w *lockWalker) checkCall(call *ast.CallExpr, held heldSet) {
	var name string
	var pkgName string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if obj := w.pass.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil {
			if f, ok := obj.(*types.Func); ok && f.Type().(*types.Signature).Recv() == nil {
				pkgName = obj.Pkg().Name()
			}
		}
	case *ast.Ident:
		name = fun.Name
	default:
		return
	}
	switch {
	case name == "Sleep" && (pkgName == "time" || pkgName == "spin"):
		w.pass.Reportf(call.Pos(), "%s.Sleep while %s is held stalls every contender on the lock", pkgName, held.names())
	case blockingMethods[name]:
		w.pass.Reportf(call.Pos(), "call to blocking %s while %s is held", name, held.names())
	}
}

// --- lock-operation detection --------------------------------------------

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on a sync mutex and
// returns the printed receiver expression as the tracking key.
func (w *lockWalker) lockOp(e ast.Expr) (string, lockOpKind, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	if tv, ok := w.pass.Info.Types[sel.X]; !ok || !isMutex(tv.Type) {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

// --- guarded-by annotation audit -----------------------------------------

// auditGuardedBy checks every `// guarded by <mu>` field comment: the named
// guard must be a mutex field of the same struct (a dotted name like s.mu is
// checked against its final element). A stale annotation is worse than none
// — it documents a guarantee nobody enforces.
func auditGuardedBy(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := make(map[string]bool)
			for _, fld := range st.Fields.List {
				tv, ok := pass.Info.Types[fld.Type]
				if !ok || !isMutex(tv.Type) {
					continue
				}
				for _, name := range fld.Names {
					mutexFields[name.Name] = true
				}
				if len(fld.Names) == 0 {
					// Embedded sync.Mutex is addressable by its type name.
					if named, ok := tv.Type.(*types.Named); ok {
						mutexFields[named.Obj().Name()] = true
					}
				}
			}
			for _, fld := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
					if cg == nil {
						continue
					}
					m := guardedByRe.FindStringSubmatch(cg.Text())
					if m == nil {
						continue
					}
					guard := m[1]
					if i := strings.LastIndex(guard, "."); i >= 0 {
						guard = guard[i+1:]
					}
					if !mutexFields[guard] {
						pass.Reportf(cg.Pos(), "guarded-by annotation names %q, which is not a mutex field of this struct", m[1])
					}
				}
			}
			return true
		})
	}
}
