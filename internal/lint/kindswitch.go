package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch enforces exhaustiveness over the wire protocol's message space:
// every value switch on msg.Kind and every type switch on msg.Payload must
// mention every declared Kind constant / every Payload implementation in a
// case arm. A default clause does NOT satisfy the analyzer — the codec and
// the demux loops keep defaults as corruption backstops, and relying on them
// is exactly how a freshly added Kind ships without encode/decode/route arms.
// Switches that are partial by design (a stamp helper that only touches the
// five consensus kinds, a trace filter) carry an
// `//etxlint:allow kindswitch — <why>` annotation; a routing switch that
// deliberately ignores kinds lists them in an explicit ignore arm instead, so
// the next Kind forces a conscious routing decision.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc: "switches over msg.Kind and type switches over msg.Payload must cover every declared " +
		"kind/payload type in case arms (a default clause does not count)",
	Run: runKindSwitch,
}

// kindUniverse is the message-space universe resolved from the msg package
// visible to the pass.
type kindUniverse struct {
	kindType    *types.Named             // msg.Kind
	payloadType *types.Named             // msg.Payload
	consts      map[*types.Const]bool    // declared Kind constants
	impls       map[*types.TypeName]bool // Payload implementations
}

// resolveKindUniverse finds the package named "msg" that declares a Kind
// value type and a Payload interface, in the pass package's import graph
// (or the pass package itself), and enumerates the universe.
func resolveKindUniverse(pass *Pass) *kindUniverse {
	msgPkg := findImported(pass.Pkg, "msg", func(p *types.Package) bool {
		k, _ := p.Scope().Lookup("Kind").(*types.TypeName)
		pl, _ := p.Scope().Lookup("Payload").(*types.TypeName)
		return k != nil && pl != nil && types.IsInterface(pl.Type()) && !types.IsInterface(k.Type())
	})
	if msgPkg == nil {
		return nil
	}
	u := &kindUniverse{
		kindType:    msgPkg.Scope().Lookup("Kind").(*types.TypeName).Type().(*types.Named),
		payloadType: msgPkg.Scope().Lookup("Payload").(*types.TypeName).Type().(*types.Named),
		consts:      make(map[*types.Const]bool),
		impls:       make(map[*types.TypeName]bool),
	}
	iface := u.payloadType.Underlying().(*types.Interface)
	scope := msgPkg.Scope()
	for _, name := range scope.Names() {
		switch obj := scope.Lookup(name).(type) {
		case *types.Const:
			if types.Identical(obj.Type(), u.kindType) {
				u.consts[obj] = true
			}
		case *types.TypeName:
			if obj == u.payloadType.Obj() || types.IsInterface(obj.Type()) {
				continue
			}
			if types.Implements(obj.Type(), iface) || types.Implements(types.NewPointer(obj.Type()), iface) {
				u.impls[obj] = true
			}
		}
	}
	return u
}

func runKindSwitch(pass *Pass) error {
	u := resolveKindUniverse(pass)
	if u == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SwitchStmt:
				checkKindValueSwitch(pass, u, s)
			case *ast.TypeSwitchStmt:
				checkPayloadTypeSwitch(pass, u, s)
			}
			return true
		})
	}
	return nil
}

func checkKindValueSwitch(pass *Pass, u *kindUniverse, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tagType := pass.Info.Types[s.Tag].Type
	if tagType == nil || !types.Identical(tagType, u.kindType) {
		return
	}
	mentioned := make(map[constant.Value]bool)
	for _, stmt := range s.Body.List {
		cc := stmt.(*ast.CaseClause)
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				mentioned[tv.Value] = true
			}
		}
	}
	var missing []string
	for c := range u.consts {
		covered := false
		for v := range mentioned {
			if constant.Compare(c.Val(), token.EQL, v) {
				covered = true
				break
			}
		}
		if !covered {
			missing = append(missing, c.Name())
		}
	}
	reportMissing(pass, s.Pos(), "msg.Kind switch", missing)
}

func checkPayloadTypeSwitch(pass *Pass, u *kindUniverse, s *ast.TypeSwitchStmt) {
	// The switched expression: `switch v := x.(type)` or `switch x.(type)`.
	var assert *ast.TypeAssertExpr
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = a.X.(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			assert, _ = a.Rhs[0].(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return
	}
	xType := pass.Info.Types[assert.X].Type
	if xType == nil || !types.Identical(xType, u.payloadType) {
		return
	}
	mentioned := make(map[*types.TypeName]bool)
	for _, stmt := range s.Body.List {
		cc := stmt.(*ast.CaseClause)
		for _, e := range cc.List {
			t := pass.Info.Types[e].Type
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				mentioned[named.Obj()] = true
			}
		}
	}
	var missing []string
	for impl := range u.impls {
		if !mentioned[impl] {
			missing = append(missing, impl.Name())
		}
	}
	reportMissing(pass, s.Pos(), "msg.Payload type switch", missing)
}

func reportMissing(pass *Pass, pos token.Pos, what string, missing []string) {
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(pos, "%s is not exhaustive: missing %s (handle them, list them in an explicit ignore arm, or annotate //etxlint:allow kindswitch with a reason)",
		what, strings.Join(missing, ", "))
}
