package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// WallClock forbids wall-clock-derived values inside the protocol-identity
// packages. The PR 5 replay bug was exactly this shape: etx.Dial seeded a
// client incarnation's SeqBase from time.Now().UnixNano(), so a backwards
// clock step (or two dials in one nanosecond) could reuse a live
// incarnation's sequence numbers and replay its cached results. Identities,
// sequence bases and protocol decisions must come from injected clocks (a
// `Now func() time.Time` config field) or crypto/rand; the single line that
// wires the injected clock's time.Now default carries an allow annotation.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Until, time.Time.Unix* and math/rand in the protocol packages " +
		"(consensus, fd, id, etx): identities and protocol decisions must use injected clocks or crypto/rand",
	Run: runWallClock,
}

// wallclockPkgs is the restricted set, matched by package name so the
// analyzer also applies to the analysistest fixture modules. The root
// package etx owns client incarnation identities; consensus and fd own
// every timeout/round decision; id owns the identifier types themselves.
var wallclockPkgs = map[string]bool{
	"etx":       true,
	"consensus": true,
	"fd":        true,
	"id":        true,
}

// wallclockFuncs are the forbidden time package functions.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// wallclockMethods are the forbidden time.Time accessors (epoch-derived
// numbers, the raw material of wall-clock identities).
var wallclockMethods = map[string]bool{
	"Unix":      true,
	"UnixMilli": true,
	"UnixMicro": true,
	"UnixNano":  true,
}

func runWallClock(pass *Pass) error {
	if !wallclockPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in protocol package %s: identities need crypto/rand", path, pass.Pkg.Name())
			}
		}
		// References are flagged, not just calls: `f := time.Now; f()` is
		// the same wall-clock read, and the injected-clock default wiring
		// (`cfg.Now = time.Now`) is exactly the one reference per package
		// that earns an allow annotation.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch o := obj.(type) {
			case *types.Func:
				if o.Type().(*types.Signature).Recv() == nil {
					if wallclockFuncs[o.Name()] {
						pass.Reportf(sel.Pos(), "time.%s in protocol package %s: use the injected clock", o.Name(), pass.Pkg.Name())
					}
				} else if wallclockMethods[o.Name()] && namedIn(o.Type().(*types.Signature).Recv().Type(), "time", "Time") {
					pass.Reportf(sel.Pos(), "time.Time.%s in protocol package %s: wall-clock-derived numbers must not feed identities or protocol decisions", o.Name(), pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil
}
