package repl

import (
	"testing"
	"time"

	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/lint/leakcheck"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/wal"
)

// TestStreamerStopNoLeak pins the primary-side teardown contract: Start
// launches the group heartbeat beacons, and Stop must reap every goroutine
// it launched — a beacon that outlives Stop keeps the deposed primary
// "alive" to the group's detectors.
func TestStreamerStopNoLeak(t *testing.T) {
	leakcheck.Check(t)

	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	primary := id.DBServer(1)
	backup := id.DBServer(2)
	ep, err := net.Attach(primary)
	if err != nil {
		t.Fatal(err)
	}
	bep, err := net.Attach(backup)
	if err != nil {
		t.Fatal(err)
	}

	s := NewStreamer(StreamerConfig{
		Self:    primary,
		Backups: []id.NodeID{backup},
		Send: func(to id.NodeID, p msg.Payload) error {
			return ep.Send(msg.Envelope{To: to, Payload: p})
		},
		HeartbeatInterval: time.Millisecond,
	})
	s.SetInc(1)
	s.Start()

	s.Replicate(wal.Record{Type: wal.RecPrepared, RID: id.ResultID{Seq: 1, Try: 1},
		Writes: []kv.Write{{Key: "a", Val: []byte("1")}}})
	s.Replicate(wal.Record{Type: wal.RecCommitted, RID: id.ResultID{Seq: 1, Try: 1}})
	if got := s.Seq(); got != 2 {
		t.Fatalf("Seq = %d, want 2", got)
	}

	// The stream must reach the backup's mailbox.
	deadline := time.After(2 * time.Second)
	var got int
	for got < 2 {
		select {
		case env := <-bep.Recv():
			if _, ok := env.Payload.(msg.ReplRecord); ok {
				got++
			}
		case <-deadline:
			t.Fatalf("backup saw %d stream records, want 2", got)
		}
	}

	s.HandleAck(backup, msg.ReplAck{Seq: 2})
	if lag := s.Lag(); lag != 0 {
		t.Fatalf("Lag after full ack = %d, want 0", lag)
	}
	s.Stop()
}

// TestBackupStopNoLeak pins the replica-side teardown contract: Stop must
// terminate the applier loop and the heartbeat detector it started, even
// with unacked buffered state. The scripted detector never suspects, so the
// backup cannot wander into a promotion mid-teardown.
func TestBackupStopNoLeak(t *testing.T) {
	leakcheck.Check(t)

	net := transport.NewMemNetwork(transport.Options{})
	defer net.Close()
	primary := id.DBServer(1)
	self := id.DBServer(2)
	pep, err := net.Attach(primary)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Attach(self)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBackup(BackupConfig{
		Self:              self,
		Group:             []id.NodeID{primary, self},
		Endpoint:          ep,
		Store:             stablestore.New(0),
		Detector:          fd.NewScripted(),
		HeartbeatInterval: time.Millisecond,
		TakeOver:          func(epoch uint64) error { return nil },
	})
	b.Start()

	// Stream two records in sequence; the backup must apply and ack them.
	for seq := uint64(1); seq <= 2; seq++ {
		rec := wal.Encode(wal.Record{Type: wal.RecCommitted, RID: id.ResultID{Seq: seq, Try: 1}})
		if err := pep.Send(msg.Envelope{To: self, Payload: msg.ReplRecord{Seq: seq, Inc: 1, Rec: rec}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, seq := b.Applied(); seq == 2 {
			break
		}
		if time.Now().After(deadline) {
			_, seq := b.Applied()
			t.Fatalf("backup applied through %d, want 2", seq)
		}
		time.Sleep(time.Millisecond)
	}

	b.Stop()
	if b.Promoted() {
		t.Fatal("backup promoted itself with a never-suspecting detector")
	}
}
