// Package repl replicates the data tier: each shard runs a replica group of
// one primary database server plus asynchronous backups, with detector-driven
// promotion when the primary is suspected.
//
// The scheme is the paper's own asymmetric-replication discipline applied one
// tier down. The primary executes, votes and decides exactly as an unreplicated
// server; the only addition is a hook on its write-ahead log: every appended
// record is streamed to the shard's backups (msg.ReplRecord) the moment it is
// appended, before the vote or ack that the record justifies leaves the
// primary. A backup is not a server at all — it owns no engine and takes no
// part in 2PC; it applies the stream onto its own stable storage so that, on
// promotion, the ordinary crash-recovery path (xadb.Open over the replicated
// log) rebuilds the shard: committed effects are replayed, prepared-but-
// undecided branches come back in-doubt with their locks, exactly as if the
// primary itself had restarted on the backup's disk.
//
// Promotion is deterministic: group members monitor the current primary with
// the same eventually-perfect heartbeat detector the application tier uses,
// and when the primary is suspected the lowest-ranked unsuspected member (in
// group declaration order) takes over. The successor drains its mailbox of the
// dead primary's stream tail, forces its log, opens the engine — the streamed
// incarnation floor (xadb.SetIncarnationFloor) guarantees the promoted engine
// opens at a strictly higher incarnation than the primary ever ran, so votes
// pinned to the old primary fail the application tier's incarnation check and
// in-flight tries abort cleanly — and announces itself with an epoch-stamped
// msg.NewPrimary. Application servers only ever advance to strictly higher
// epochs (placement.View), so a deposed primary's claims and votes are
// rejected, never raced.
//
// Streams are identified by the primary's incarnation: a ReplRecord with a
// higher incarnation than the stream a backup is applying means a new primary
// took over, and the backup truncates its log and adopts the new stream from
// sequence one (the new primary primes its full log into the stream, so
// adoption is a complete resync). Cumulative acks double as loss repair: a
// backup acks the sequence it has applied through, and a primary that sees
// the same ack twice with records outstanding re-sends the tail.
package repl

import (
	"context"
	"encoding/binary"
	"log"
	"sync"
	"time"

	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/wal"
	"etx/internal/xadb"
)

// epochKey is the stable-storage key a promoted backup records its epoch
// under (observability across restarts; the authoritative epoch order lives
// in the application servers' views).
const epochKey = "repl/epoch"

// --- streamer (primary side) -------------------------------------------------

// StreamerConfig parameterizes a primary's replication streamer.
type StreamerConfig struct {
	// Self is the primary.
	Self id.NodeID
	// Backups are the other members of the shard's replica group (the stream
	// destinations). A crashed member costs nothing: sends to down nodes are
	// dropped by the network.
	Backups []id.NodeID
	// Send transmits to a backup; required. The in-memory network's Send
	// enqueues synchronously, which is what makes promotion loss-free: every
	// record is in every live backup's mailbox before the primary's vote or
	// ack leaves the machine.
	Send fd.SendFunc
	// HeartbeatInterval paces the liveness beacons the group's detectors
	// monitor. Defaults to 10ms (the fd package default).
	HeartbeatInterval time.Duration
}

// Streamer is the primary-side half of the replication protocol: it assigns
// stream sequence numbers to write-ahead-log records, fans them out to the
// backups, and repairs losses from cumulative acks. Hook Replicate into
// xadb.Config.Replicate and feed incoming msg.ReplAck to HandleAck.
type Streamer struct {
	cfg StreamerConfig
	hb  *fd.Heartbeat

	mu    sync.Mutex
	inc   uint64 // the primary engine's incarnation; stamps the stream
	seq   uint64
	recs  [][]byte             // encoded records; recs[i] is sequence i+1
	acked map[id.NodeID]uint64 // highest cumulative ack per backup

	stop func()
}

// NewStreamer creates a streamer. Call SetInc with the engine's incarnation
// after xadb.Open and before any record can be appended, then Start.
func NewStreamer(cfg StreamerConfig) *Streamer {
	return &Streamer{cfg: cfg, acked: make(map[id.NodeID]uint64)}
}

// SetInc stamps the stream with the primary engine's incarnation. Backups use
// it to tell this primary's stream from a predecessor's.
func (s *Streamer) SetInc(inc uint64) {
	s.mu.Lock()
	s.inc = inc
	s.mu.Unlock()
}

// Start launches the group heartbeat beacons. Stop with Stop.
func (s *Streamer) Start() {
	if len(s.cfg.Backups) == 0 {
		return
	}
	s.hb = fd.NewHeartbeat(fd.Config{
		Self:     s.cfg.Self,
		Peers:    s.cfg.Backups,
		Send:     s.cfg.Send,
		Interval: s.cfg.HeartbeatInterval,
	})
	ctx, cancel := newContext()
	s.stop = cancel
	s.hb.Start(ctx)
}

// Stop terminates the beacons.
func (s *Streamer) Stop() {
	if s.stop != nil {
		s.stop()
		s.hb.Wait()
	}
}

// Replicate streams one appended record to every backup. It is the
// xadb.Config.Replicate hook: the engine calls it synchronously right after
// the append, under the same per-branch serialization, so for any two
// conflicting records the stream order matches the log's causal order (the
// sequence number restores that order at the backup when the network
// reorders).
func (s *Streamer) Replicate(rec wal.Record) {
	enc := wal.Encode(rec)
	s.mu.Lock()
	s.seq++
	seq, inc := s.seq, s.inc
	s.recs = append(s.recs, enc)
	s.mu.Unlock()
	for _, b := range s.cfg.Backups {
		_ = s.cfg.Send(b, msg.ReplRecord{Seq: seq, Inc: inc, Rec: enc})
	}
}

// Prime streams an existing log (a promoted or recovered primary's full
// write-ahead log) so backups adopting this stream converge on it from
// scratch. Call after xadb.Open and before the server starts taking traffic.
func (s *Streamer) Prime(recs []wal.Record) {
	for _, rec := range recs {
		s.Replicate(rec)
	}
}

// HandleAck records a backup's cumulative ack. A repeated ack with records
// outstanding means the tail beyond it was lost (or the backup joined
// mid-stream): the streamer re-sends it. Healthy lag never repeats an ack —
// backups only re-ack when idle — so no resend storms.
func (s *Streamer) HandleAck(from id.NodeID, a msg.ReplAck) {
	s.mu.Lock()
	prev, cur := s.acked[from], s.seq
	if a.Seq > prev {
		s.acked[from] = a.Seq
		s.mu.Unlock()
		return
	}
	if a.Seq != prev || a.Seq >= cur {
		s.mu.Unlock()
		return
	}
	tail := make([][]byte, cur-a.Seq)
	copy(tail, s.recs[a.Seq:cur])
	inc := s.inc
	s.mu.Unlock()
	for i, enc := range tail {
		_ = s.cfg.Send(from, msg.ReplRecord{Seq: a.Seq + uint64(i) + 1, Inc: inc, Rec: enc})
	}
}

// Seq returns the last assigned stream sequence.
func (s *Streamer) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Lag returns the largest unacked tail over the backups (0 when fully
// replicated).
func (s *Streamer) Lag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag uint64
	for _, b := range s.cfg.Backups {
		if l := s.seq - s.acked[b]; l > lag {
			lag = l
		}
	}
	return lag
}

// --- backup (replica side) ---------------------------------------------------

// BackupConfig parameterizes a backup applier.
type BackupConfig struct {
	// Self is this backup.
	Self id.NodeID
	// Shard is the replica group's shard ordinal (stamped on NewPrimary).
	Shard int
	// Group is the replica group in promotion order; Group[0] is the boot
	// primary. Self must be a member.
	Group []id.NodeID
	// AppServers receive the NewPrimary announcement on promotion.
	AppServers []id.NodeID
	// Endpoint is the backup's network attachment. The backup owns its Recv
	// stream until promotion hands the node over to a data server.
	Endpoint transport.Endpoint
	// Store is the backup's stable storage; the applied stream lands here and
	// the promoted engine opens over it.
	Store *stablestore.Store
	// InitEpoch / InitPrimary seed the backup's notion of the shard's current
	// ownership. Zero values mean the boot view: epoch 1, primary Group[0].
	// A backup started late (a recovered member rejoining after promotions)
	// must be seeded with the current view or it would monitor the wrong
	// node.
	InitEpoch   uint64
	InitPrimary id.NodeID
	// Detector overrides the failure detector (tests inject fd.Scripted for
	// deterministic promotion). Nil runs a heartbeat detector over the group.
	Detector fd.Detector
	// HeartbeatInterval / SuspectTimeout parameterize the default detector.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// Drained, when set, reports whether every in-flight message from the
	// deposed primary has reached this backup's mailbox (the in-memory
	// network can prove it; see transport.MemNetwork.InFlightFrom). Nil falls
	// back to a quiet period of DrainQuiet.
	Drained func(oldPrimary id.NodeID) bool
	// DrainQuiet is the quiet-period fallback: promotion proceeds once the
	// mailbox has been empty that long. Defaults to 5 * HeartbeatInterval.
	DrainQuiet time.Duration
	// TakeOver makes this node the shard's serving primary: open the engine
	// over Store and start a data server (with recovery announcement) on this
	// node. Required. It runs after the drain, with the mailbox consumed and
	// the store synced.
	TakeOver func(epoch uint64) error
	// OnPromote, if set, observes a completed promotion and its latency
	// (suspicion observed -> NewPrimary announced).
	OnPromote func(latency time.Duration)
	// Now is the clock (latency measurement and drain pacing). Defaults to
	// time.Now.
	Now func() time.Time
	// Logf, if set, receives progress lines (defaults to log.Printf).
	Logf func(format string, args ...any)
}

// Backup is a shard replica: it applies the primary's record stream onto its
// own stable storage and promotes itself when the detector names it the
// successor. Run with Start; it terminates on its own after a promotion (the
// node is a data server from then on) or when stopped.
type Backup struct {
	cfg BackupConfig
	log *wal.Log
	hb  *fd.Heartbeat
	det fd.Detector

	mu        sync.Mutex
	streamInc uint64            // incarnation of the stream being applied
	applied   uint64            // sequence applied through (cumulative ack)
	buffer    map[uint64][]byte // out-of-order records awaiting their gap
	src       id.NodeID         // sender of the last stream record
	epoch     uint64            // highest epoch observed for this shard
	primary   id.NodeID         // current primary under that epoch
	promoted  bool

	ctx    func() <-chan struct{}
	cancel func()
	wg     sync.WaitGroup
}

// NewBackup creates a backup applier.
func NewBackup(cfg BackupConfig) *Backup {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	}
	if cfg.DrainQuiet <= 0 {
		cfg.DrainQuiet = 5 * cfg.HeartbeatInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	b := &Backup{
		cfg:     cfg,
		log:     wal.New(cfg.Store),
		buffer:  make(map[uint64][]byte),
		epoch:   1,
		primary: cfg.Group[0],
	}
	if cfg.InitEpoch > 1 && !cfg.InitPrimary.IsZero() {
		b.epoch = cfg.InitEpoch
		b.primary = cfg.InitPrimary
	}
	b.det = cfg.Detector
	if b.det == nil {
		var peers []id.NodeID
		for _, m := range cfg.Group {
			if m != cfg.Self {
				peers = append(peers, m)
			}
		}
		hb := fd.NewHeartbeat(fd.Config{
			Self:     cfg.Self,
			Peers:    peers,
			Send:     func(to id.NodeID, p msg.Payload) error { return cfg.Endpoint.Send(msg.Envelope{To: to, Payload: p}) },
			Interval: cfg.HeartbeatInterval,
			Timeout:  cfg.SuspectTimeout,
		})
		b.hb = hb
		b.det = hb
	}
	return b
}

// Start launches the applier and promotion monitor.
func (b *Backup) Start() {
	ctx, cancel := newContext()
	b.ctx = func() <-chan struct{} { return ctx.Done() }
	b.cancel = cancel
	if b.hb != nil {
		b.hb.Start(ctx)
	}
	b.wg.Add(1)
	go b.run()
}

// Stop terminates the applier (no-op after a promotion handed the node over).
func (b *Backup) Stop() {
	if b.cancel != nil {
		b.cancel()
	}
	if b.hb != nil {
		b.hb.Wait()
	}
	b.wg.Wait()
}

// Promoted reports whether this backup has taken the shard over.
func (b *Backup) Promoted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.promoted
}

// Applied returns the stream position applied through (tests observe lag).
func (b *Backup) Applied() (inc, seq uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.streamInc, b.applied
}

// run is the applier loop: apply stream records, feed the detector, watch for
// the moment this backup becomes the successor.
func (b *Backup) run() {
	defer b.wg.Done()
	wake := make(chan struct{}, 1)
	if n, ok := b.det.(fd.Notifier); ok {
		n.Subscribe(wake)
		defer n.Unsubscribe(wake)
	}
	ticker := time.NewTicker(b.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case env, ok := <-b.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			b.handle(env.From, env.Payload)
		case <-wake:
			if b.maybePromote() {
				return
			}
		case <-ticker.C:
			b.ackIdle()
			if b.maybePromote() {
				return
			}
		case <-b.ctx():
			return
		}
	}
}

// handle demuxes one incoming payload. Backups speak only the replication
// sub-protocol; everything else on the wire is another tier's business and is
// deliberately ignored (early traffic addressed to a promoting node is
// re-sent by the application tier's retry/resend paths).
func (b *Backup) handle(from id.NodeID, p msg.Payload) {
	switch m := p.(type) {
	case msg.ReplRecord:
		// A flowing stream is the strongest liveness signal there is: count
		// records as heartbeats so a primary whose beacon goroutine is
		// starved by load is never falsely suspected while it replicates.
		if b.hb != nil {
			b.hb.Observe(from)
		}
		b.applyRecord(from, m)
	case msg.Heartbeat:
		if b.hb != nil {
			b.hb.Observe(from)
		}
	case msg.NewPrimary:
		b.observeNewPrimary(m)
	case msg.Request, msg.Result, msg.Exec, msg.ExecReply, msg.Prepare,
		msg.VoteMsg, msg.Decide, msg.AckDecide, msg.Commit1P, msg.Ready,
		msg.Estimate, msg.Propose, msg.CAck, msg.CNack, msg.CDecision,
		msg.Checkpoint, msg.RegOps, msg.RData, msg.RAck, msg.Batch,
		msg.PBStart, msg.PBStartAck, msg.PBOutcome, msg.PBOutcomeAck,
		msg.ReplAck:
		// Not ours: client/app-tier protocol traffic, consensus, registers,
		// transport layers, baselines — and ReplAck, which only a primary's
		// streamer consumes.
	}
}

// applyRecord applies one stream record in sequence order, buffering gaps and
// adopting newer streams (higher incarnation) from scratch.
func (b *Backup) applyRecord(from id.NodeID, m msg.ReplRecord) {
	b.mu.Lock()
	if m.Inc < b.streamInc {
		// A deposed primary's stale stream: never apply, never ack.
		b.mu.Unlock()
		return
	}
	if m.Inc > b.streamInc {
		// A new primary's stream. Its first records carry the full log
		// (Prime), so adopting it from scratch is a complete resync: drop
		// the old stream's log and start over.
		b.streamInc = m.Inc
		b.applied = 0
		b.buffer = make(map[uint64][]byte)
		b.log.Truncate()
		// Floor the store's incarnation before anything of this stream is
		// acked: if this backup is ever promoted, its engine must open above
		// the incarnation that produced these records.
		xadb.SetIncarnationFloor(b.cfg.Store, m.Inc)
	}
	b.src = from
	if m.Seq <= b.applied {
		applied := b.applied
		b.mu.Unlock()
		b.ack(from, applied) // duplicate: re-ack so the streamer advances
		return
	}
	b.buffer[m.Seq] = m.Rec
	for {
		enc, ok := b.buffer[b.applied+1]
		if !ok {
			break
		}
		delete(b.buffer, b.applied+1)
		b.applied++
		// Asynchronous replication: appends are not forced record-by-record;
		// promotion syncs once before the engine opens.
		b.log.AppendRaw(enc, false)
	}
	applied := b.applied
	b.mu.Unlock()
	b.ack(from, applied)
}

// ackIdle re-acks the current stream position when the applier is idle. A
// healthy backup's acks strictly increase, so a repeat tells the streamer the
// tail beyond it was lost (or that this backup joined mid-stream) and needs a
// resend.
func (b *Backup) ackIdle() {
	b.mu.Lock()
	src, applied := b.src, b.applied
	if src.IsZero() {
		src = b.primary
	}
	b.mu.Unlock()
	if src == b.cfg.Self {
		return
	}
	b.ack(src, applied)
}

func (b *Backup) ack(to id.NodeID, seq uint64) {
	_ = b.cfg.Endpoint.Send(msg.Envelope{To: to, Payload: msg.ReplAck{Seq: seq}})
}

// observeNewPrimary tracks the shard's epoch so this backup monitors (and
// succeeds) the right node, and stands down if someone else won a race.
func (b *Backup) observeNewPrimary(m msg.NewPrimary) {
	if int(m.Shard) != b.cfg.Shard {
		return
	}
	b.mu.Lock()
	// Same tie-break as placement.View.Advance: a strictly later epoch
	// always wins, and within one epoch the lower node id does (concurrent
	// false suspicions can promote two members at the same epoch; every
	// observer must converge on the same winner).
	if m.Epoch > b.epoch || (m.Epoch == b.epoch && m.Primary.Index < b.primary.Index) {
		b.epoch = m.Epoch
		b.primary = m.Primary
	}
	b.mu.Unlock()
}

// maybePromote checks whether the current primary is suspected and this
// backup is the deterministic successor: the first group member, in
// declaration order, that is neither the deposed primary nor suspected. It
// returns true when the node has been handed over to a data server.
func (b *Backup) maybePromote() bool {
	b.mu.Lock()
	cur, epoch := b.primary, b.epoch
	b.mu.Unlock()
	if cur == b.cfg.Self || !b.det.Suspects(cur) {
		return false
	}
	for _, m := range b.cfg.Group {
		if m == cur || b.det.Suspects(m) {
			continue
		}
		if m == b.cfg.Self {
			break
		}
		return false // a lower-ranked live member succeeds, not us
	}
	b.promote(cur, epoch+1)
	return true
}

// promote takes the shard over: drain the dead primary's stream tail, force
// the log, open the engine via TakeOver, announce the new epoch.
func (b *Backup) promote(old id.NodeID, epoch uint64) {
	start := b.cfg.Now()
	b.cfg.Logf("repl: %s: primary %s suspected, promoting to shard %d primary at epoch %d",
		b.cfg.Self, old, b.cfg.Shard, epoch)
	b.drain(old)
	b.mu.Lock()
	if dropped := len(b.buffer); dropped > 0 {
		// Gap at the stream tail after a complete drain: records the dead
		// primary never finished fanning out. Nothing beyond the gap was
		// acked to the application tier before the crash (records are
		// streamed before votes leave), so dropping them is safe.
		b.cfg.Logf("repl: %s: dropping %d unappliable tail records past seq %d", b.cfg.Self, dropped, b.applied)
		b.buffer = make(map[uint64][]byte)
	}
	b.promoted = true
	b.epoch = epoch
	b.primary = b.cfg.Self
	b.mu.Unlock()
	b.cfg.Store.Sync()
	putEpoch(b.cfg.Store, epoch)
	if err := b.cfg.TakeOver(epoch); err != nil {
		b.cfg.Logf("repl: %s: take-over failed: %v", b.cfg.Self, err)
		return
	}
	// Announce after the server is up, so re-routed traffic finds it serving.
	ann := msg.NewPrimary{Shard: uint64(b.cfg.Shard), Epoch: epoch, Primary: b.cfg.Self}
	for _, a := range b.cfg.AppServers {
		_ = b.cfg.Endpoint.Send(msg.Envelope{To: a, Payload: ann})
	}
	for _, m := range b.cfg.Group {
		if m != b.cfg.Self {
			_ = b.cfg.Endpoint.Send(msg.Envelope{To: m, Payload: ann})
		}
	}
	took := b.cfg.Now().Sub(start)
	b.cfg.Logf("repl: %s: serving shard %d at epoch %d (promotion took %s)", b.cfg.Self, b.cfg.Shard, epoch, took)
	if b.cfg.OnPromote != nil {
		b.cfg.OnPromote(took)
	}
}

// drain consumes the mailbox until every in-flight message from the deposed
// primary has been received and applied. With a Drained oracle (in-memory
// network) that is exact; otherwise a quiet period approximates it.
func (b *Backup) drain(old id.NodeID) {
	for {
		select {
		case env, ok := <-b.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			b.handle(env.From, env.Payload)
			continue
		default:
		}
		// Mailbox empty this instant.
		if b.cfg.Drained != nil {
			if b.cfg.Drained(old) {
				return
			}
			// In-flight messages remain: yield until they land.
			select {
			case env, ok := <-b.cfg.Endpoint.Recv():
				if !ok {
					return
				}
				b.handle(env.From, env.Payload)
			case <-time.After(b.cfg.HeartbeatInterval / 4):
			}
			continue
		}
		select {
		case env, ok := <-b.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			b.handle(env.From, env.Payload)
		case <-time.After(b.cfg.DrainQuiet):
			return
		}
	}
}

// putEpoch records the promotion epoch on stable storage.
func putEpoch(st *stablestore.Store, epoch uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], epoch)
	st.Put(epochKey, buf[:])
}

// newContext is the lifetime context the streamer's and backup's goroutines
// run under.
func newContext() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}
