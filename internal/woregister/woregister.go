// Package woregister implements the paper's write-once registers
// (Section 4): consensus-like abstractions "that capture the nice intuition
// of CD-ROMs — they can be written once but read several times".
//
// One Registers value runs on each application server, layered on that
// server's consensus node, exactly as the paper prescribes: "every
// application server would have a copy of the register ... writing a value
// comes down to proposing that value for the consensus protocol; to read a
// value, a process simply returns the decision value received from the
// consensus protocol, if any, and returns ⊥ if no consensus has been
// triggered".
//
// Two register arrays exist, keyed by try (ResultID): regA[j] holds the
// identity of the application server executing try j, and regD[j] holds the
// decision (result, outcome) of try j.
//
// # Cohort consensus
//
// With Options.CohortWindow set, a write no longer runs a consensus instance
// of its own. Instead a per-server sequencer collects concurrent writes into
// a cohort (the same BatchWindow/MaxBatch discipline as the data tier's
// group commit) and proposes the whole cohort as one batch-consensus slot;
// the consensus layer applies decided slots in slot order, deciding each
// register first-write-wins, and every caller resolves with its own
// register's outcome. Per-register semantics are unchanged — first write
// wins, reads observe decisions — because the slot order is agreed, so the
// winner of any write race is the same on every replica. A server that is
// not the preferred sequencer (the first unsuspected application server)
// forwards its cohort there instead of contending for slots, so a saturated
// primary folds remote writes into its own batches; consensus still
// arbitrates safely when two servers sequence concurrently, and forwarding
// retries re-route around a crashed sequencer.
package woregister

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
)

// Registers is the pair of wo-register arrays of one application server.
type Registers struct {
	node *consensus.Node
	seq  *sequencer // nil: one consensus instance per write (the paper's mode)
}

// New layers the register arrays over a consensus node, one consensus
// instance per register write (the paper's original discipline).
func New(node *consensus.Node) *Registers {
	return &Registers{node: node}
}

// Options parameterizes cohort batching (NewBatched).
type Options struct {
	// CohortWindow is how long the sequencer holds a cohort open for more
	// writes before proposing it (under load the window is immaterial: a
	// cohort stays open for the whole in-flight slot ahead of it). Must be
	// > 0; a deployment that wants one instance per write uses New.
	CohortWindow time.Duration
	// MaxCohort caps the ops proposed in one slot. Defaults to 64.
	MaxCohort int
	// Depth, when non-nil, samples the caller's in-flight pipelining depth
	// and the sequencer adapts to it (core's AdaptiveWindows): at depth 1
	// the enrollment hold is skipped and the cohort cap collapses to one —
	// a lone writer has no followers worth waiting for — while deeper
	// pipelines widen the cap toward MaxCohort. Timing only; the slot
	// protocol itself is unchanged.
	Depth func() int
	// Self and Peers mirror the consensus membership; Peers order selects
	// the preferred sequencer (first unsuspected peer).
	Self  id.NodeID
	Peers []id.NodeID
	// Detector drives sequencer selection.
	Detector fd.Detector
	// Send transmits sequencer traffic (RegOps forwards and laggard-help
	// CDecision answers) to a peer.
	Send func(to id.NodeID, p msg.Payload) error
	// RetryInterval is how long a forwarding server waits before re-sending
	// still-undecided ops (re-evaluating the target, so a crashed sequencer
	// is routed around). Defaults to 25ms.
	RetryInterval time.Duration
}

// NewBatched layers the register arrays over a consensus node with cohort
// batching: concurrent writes share batch-consensus slots. Call Stop to
// release the sequencer.
func NewBatched(node *consensus.Node, opts Options) (*Registers, error) {
	if opts.CohortWindow <= 0 {
		return nil, fmt.Errorf("woregister: CohortWindow must be positive (use New for unbatched registers)")
	}
	if opts.MaxCohort <= 0 {
		opts.MaxCohort = 64
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 25 * time.Millisecond
	}
	if opts.Detector == nil || opts.Send == nil || len(opts.Peers) == 0 {
		return nil, fmt.Errorf("woregister: batched registers need Peers, Detector and Send")
	}
	r := &Registers{node: node, seq: newSequencer(node, opts)}
	return r, nil
}

// Stop releases the sequencer (no-op for unbatched registers).
func (r *Registers) Stop() {
	if r.seq != nil {
		r.seq.shutdown()
	}
}

// EnqueueRemote admits a peer's forwarded register ops to this server's
// sequencer. Ops whose registers are already decided are answered with the
// decision instead (laggard help: the sender may have an application gap).
func (r *Registers) EnqueueRemote(from id.NodeID, ops []msg.RegOp) {
	if r.seq == nil {
		return
	}
	r.seq.enqueueRemote(from, ops)
}

// write drives one register write: directly through a consensus instance in
// unbatched mode, or through the cohort sequencer — registering a watch
// first, so the caller resolves with the register's decided value no matter
// which cohort (or which server's cohort) ends up carrying the write.
func (r *Registers) write(ctx context.Context, key msg.RegKey, val []byte) ([]byte, error) {
	if r.seq == nil {
		return r.node.Propose(ctx, key, val)
	}
	if v, ok := r.node.Decided(key); ok {
		return v, nil
	}
	ch := r.node.Watch(key)
	r.seq.enqueue(msg.RegOp{Reg: key, Val: val})
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("woregister: write %s: %w", key, ctx.Err())
	case <-r.node.Done():
		return nil, consensus.ErrStopped
	}
}

// WriteA writes who into regA[rid]. Per wo-register semantics the returned
// value is the value actually in the register: who if this write won the
// race, or the previously written server otherwise.
func (r *Registers) WriteA(ctx context.Context, rid id.ResultID, who id.NodeID) (id.NodeID, error) {
	key := msg.RegKey{Array: msg.RegA, RID: rid}
	raw, err := r.write(ctx, key, EncodeNode(who))
	if err != nil {
		return id.NodeID{}, fmt.Errorf("woregister: write %s: %w", key, err)
	}
	winner, err := DecodeNode(raw)
	if err != nil {
		return id.NodeID{}, fmt.Errorf("woregister: corrupt %s: %w", key, err)
	}
	return winner, nil
}

// ReadA reads regA[rid]; ok is false when the register is still ⊥.
// The read is weak, as in the paper: it may lag a write performed elsewhere,
// but repeated reads eventually observe it.
func (r *Registers) ReadA(rid id.ResultID) (id.NodeID, bool) {
	raw, ok := r.node.Decided(msg.RegKey{Array: msg.RegA, RID: rid})
	if !ok {
		return id.NodeID{}, false
	}
	n, err := DecodeNode(raw)
	if err != nil {
		return id.NodeID{}, false
	}
	return n, true
}

// WriteD writes dec into regD[rid] and returns the decision actually in the
// register. The cleaning thread's regD[j].write(nil, abort) and the
// executor's regD[j].write(result, outcome) race through here; consensus
// arbitrates.
func (r *Registers) WriteD(ctx context.Context, rid id.ResultID, dec msg.Decision) (msg.Decision, error) {
	key := msg.RegKey{Array: msg.RegD, RID: rid}
	raw, err := r.write(ctx, key, EncodeDecision(dec))
	if err != nil {
		return msg.Decision{}, fmt.Errorf("woregister: write %s: %w", key, err)
	}
	winner, err := DecodeDecision(raw)
	if err != nil {
		return msg.Decision{}, fmt.Errorf("woregister: corrupt %s: %w", key, err)
	}
	return winner, nil
}

// ReadD reads regD[rid]; ok is false when the register is still ⊥.
func (r *Registers) ReadD(rid id.ResultID) (msg.Decision, bool) {
	raw, ok := r.node.Decided(msg.RegKey{Array: msg.RegD, RID: rid})
	if !ok {
		return msg.Decision{}, false
	}
	d, err := DecodeDecision(raw)
	if err != nil {
		return msg.Decision{}, false
	}
	return d, true
}

// KnownTries returns every try for which this replica has seen regA activity
// (a local or remote write, decided or in flight). The cleaning thread scans
// this set in place of the paper's infinite register-array walk; the sets
// coincide on every decided entry, which is all the paper's scan can act on.
func (r *Registers) KnownTries() []id.ResultID {
	keys := r.node.Keys()
	out := make([]id.ResultID, 0, len(keys))
	for _, k := range keys {
		if k.Array == msg.RegA {
			out = append(out, k.RID)
		}
	}
	return out
}

// Retire discards both registers of a try (regA[rid] and regD[rid]),
// implementing the paper's deferred garbage-collection concern — including
// any undecided consensus instance of either register: a try whose proposer
// crashed between propose and decide never decides, and without the Abandon
// path its instance (and watch subscriptions) would outlive the request
// forever. Callers must guarantee the client will never retransmit the
// request again.
func (r *Registers) Retire(rid id.ResultID) {
	r.node.Abandon(msg.RegKey{Array: msg.RegA, RID: rid})
	r.node.Abandon(msg.RegKey{Array: msg.RegD, RID: rid})
}

// --- cohort sequencer --------------------------------------------------

// minTimedWindow is the smallest cohort window the sequencer honours with a
// real timer wait; see the flush-immediately note in run.
const minTimedWindow = 2 * time.Millisecond

// sequencer collects concurrent register writes into cohorts and drives them
// through batch-consensus slots. One goroutine runs per server; at most one
// slot proposal is in flight at a time, and writes arriving meanwhile enroll
// in the next cohort — the group-commit combiner discipline of the data
// tier, applied to consensus.
type sequencer struct {
	node *consensus.Node
	opts Options

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	pending []msg.RegOp         // guarded by mu
	member  map[msg.RegKey]bool // guarded by mu
	wake    chan struct{}
}

func newSequencer(node *consensus.Node, opts Options) *sequencer {
	s := &sequencer{
		node:   node,
		opts:   opts,
		member: make(map[msg.RegKey]bool),
		wake:   make(chan struct{}, 1),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.run()
	return s
}

func (s *sequencer) shutdown() {
	s.cancel()
	s.wg.Wait()
}

// enqueue admits one local write to the current cohort, deduplicating by
// register: a register can only hold one value, so a second concurrent write
// rides the first one's op and resolves from the register's decision.
func (s *sequencer) enqueue(op msg.RegOp) {
	if _, ok := s.node.Decided(op.Reg); ok {
		return // the caller's watch has already fired
	}
	s.mu.Lock()
	if s.member[op.Reg] {
		s.mu.Unlock()
		return
	}
	s.member[op.Reg] = true
	s.pending = append(s.pending, op)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// enqueueRemote admits a peer's forwarded ops. Already-decided registers are
// answered with their decision instead: the sender may be stuck behind an
// application gap, and the direct CDecision resolves its waiter regardless.
func (s *sequencer) enqueueRemote(from id.NodeID, ops []msg.RegOp) {
	for _, op := range ops {
		if v, ok := s.node.Decided(op.Reg); ok {
			_ = s.opts.Send(from, msg.CDecision{Reg: op.Reg, Val: v})
			continue
		}
		s.enqueue(op)
	}
}

// take claims up to MaxCohort still-undecided pending ops, preserving
// arrival order. Decided ops are dropped (their waiters resolved through the
// register's decision).
func (s *sequencer) take() []msg.RegOp {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := s.opts.MaxCohort
	if s.opts.Depth != nil {
		max = adaptiveCap(max, s.opts.Depth())
	}
	var batch []msg.RegOp
	kept := s.pending[:0]
	for _, op := range s.pending {
		if _, ok := s.node.Decided(op.Reg); ok {
			delete(s.member, op.Reg)
			continue
		}
		if len(batch) < max {
			batch = append(batch, op)
		} else {
			kept = append(kept, op)
		}
	}
	s.pending = kept
	return batch
}

// adaptiveCap sizes the cohort cap to the observed pipelining depth:
// depth 1 collapses the cohort to a single op, deeper pipelines widen
// toward the configured cap. (Mirrors core's outbound-batch sizing.)
func adaptiveCap(configured, depth int) int {
	if depth <= 1 {
		return 1
	}
	m := 2 * depth
	if m < 8 {
		m = 8
	}
	if m > configured {
		m = configured
	}
	return m
}

// requeue returns still-undecided ops to the head of the pending pool (they
// lost their slot to a concurrent proposer, or were forwarded and are not
// resolved yet).
func (s *sequencer) requeue(batch []msg.RegOp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keep []msg.RegOp
	for _, op := range batch {
		if _, ok := s.node.Decided(op.Reg); ok {
			delete(s.member, op.Reg)
			continue
		}
		keep = append(keep, op)
	}
	s.pending = append(keep, s.pending...)
}

// chooseSequencer returns the preferred sequencer: the first application
// server the detector does not suspect (membership order — normally the
// primary, which is also the round-1 slot coordinator, so a forwarded cohort
// still commits in a single consensus round trip). Falls back to self when
// everyone else is suspected.
func (s *sequencer) chooseSequencer() id.NodeID {
	for _, p := range s.opts.Peers {
		if p == s.opts.Self {
			return p
		}
		if !s.opts.Detector.Suspects(p) {
			return p
		}
	}
	return s.opts.Self
}

// sleep waits d or until shutdown; returns false on shutdown.
func (s *sequencer) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// run is the sequencer loop. A fresh cohort holds the window open for
// followers; a cohort drained right after a slot decision flushes
// immediately (the in-flight slot was its window). Forwarded cohorts stay
// pending until their registers decide, re-sent (to a freshly chosen target)
// every RetryInterval.
func (s *sequencer) run() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 0 {
			select {
			case <-s.wake:
			case <-s.ctx.Done():
				return
			}
			// First write of a fresh cohort: hold enrollment open. Sub-tick
			// windows flush immediately instead — a sleep below the kernel
			// timer tick overshoots to a millisecond, costing an idle
			// write that latency for followers that are not coming; under
			// load the in-flight slot ahead of a cohort is the effective
			// window regardless of the configured magnitude.
			// With a depth sampler installed, a lone writer (depth <= 1)
			// skips the hold entirely: no follower is coming, so the window
			// would be pure added latency.
			hold := s.opts.CohortWindow >= minTimedWindow &&
				(s.opts.Depth == nil || s.opts.Depth() > 1)
			if hold && !s.sleep(s.opts.CohortWindow) {
				return
			}
		}
		batch := s.take()
		if len(batch) == 0 {
			continue
		}
		target := s.chooseSequencer()
		if target == s.opts.Self {
			// LowestUndecidedSlot is always above the local truncation
			// floor (the floor only covers applied slots), so the
			// sequencer never proposes into truncated history. If a
			// checkpoint install moves the floor mid-flight, the proposal
			// resolves with an empty decision (or ErrSlotTruncated in the
			// propose race) and the surviving ops simply re-enter the pool
			// for a live slot.
			slot := msg.SlotKey(s.node.LowestUndecidedSlot())
			if _, err := s.node.Propose(s.ctx, slot, msg.EncodeRegOps(batch)); err != nil {
				if errors.Is(err, consensus.ErrStopped) || s.ctx.Err() != nil {
					return // shutting down
				}
				// Truncation race (or abandonment): re-pick a slot.
			}
			// Ops that lost the slot to a concurrent proposer re-enter the
			// pool and ride the next one.
			s.requeue(batch)
			continue
		}
		// Not the preferred sequencer: forward the cohort and wait for its
		// registers to decide (via the slot relay), for new local writes, or
		// for the retry timer — whichever first.
		_ = s.opts.Send(target, msg.RegOps{Ops: batch})
		s.requeue(batch)
		t := time.NewTimer(s.opts.RetryInterval)
		select {
		case <-s.wake:
		case <-t.C:
		case <-s.ctx.Done():
			t.Stop()
			return
		}
		t.Stop()
	}
}

// --- value encodings ---------------------------------------------------

// EncodeNode serializes a NodeID register value.
func EncodeNode(n id.NodeID) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, byte(n.Role))
	buf = binary.AppendVarint(buf, int64(n.Index))
	return buf
}

// DecodeNode parses EncodeNode's output.
func DecodeNode(b []byte) (id.NodeID, error) {
	if len(b) < 2 {
		return id.NodeID{}, fmt.Errorf("woregister: node value too short (%d bytes)", len(b))
	}
	role := id.Role(b[0])
	idx, n := binary.Varint(b[1:])
	if n <= 0 || 1+n != len(b) {
		return id.NodeID{}, fmt.Errorf("woregister: malformed node value")
	}
	return id.NodeID{Role: role, Index: int(idx)}, nil
}

// EncodeDecision serializes a Decision register value: the outcome byte, the
// participant dlist (marker 0 = unknown, count+1 otherwise — regD must carry
// it so a cleaning thread or recovering owner that reads the decision knows
// which shards to terminate), then the raw result bytes.
func EncodeDecision(d msg.Decision) []byte {
	buf := make([]byte, 0, 2+3*len(d.Participants)+len(d.Result))
	buf = append(buf, byte(d.Outcome))
	if d.Participants == nil {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(d.Participants))+1)
		for _, n := range d.Participants {
			buf = append(buf, EncodeNode(n)...)
		}
	}
	buf = append(buf, d.Result...)
	return buf
}

// DecodeDecision parses EncodeDecision's output.
func DecodeDecision(b []byte) (msg.Decision, error) {
	if len(b) < 1 {
		return msg.Decision{}, fmt.Errorf("woregister: decision value empty")
	}
	o := msg.Outcome(b[0])
	if o != msg.OutcomeCommit && o != msg.OutcomeAbort {
		return msg.Decision{}, fmt.Errorf("woregister: bad outcome byte %d", b[0])
	}
	rest := b[1:]
	marker, n := binary.Uvarint(rest)
	if n <= 0 {
		return msg.Decision{}, fmt.Errorf("woregister: truncated participant count")
	}
	rest = rest[n:]
	var parts []id.NodeID
	if marker > 0 {
		count := marker - 1
		if count > uint64(len(rest)) {
			return msg.Decision{}, fmt.Errorf("woregister: corrupt participant count %d", count)
		}
		parts = make([]id.NodeID, 0, count)
		// Streaming parse of EncodeNode's format (DecodeNode itself wants
		// an exact-length buffer, which a mid-value field is not).
		for i := uint64(0); i < count; i++ {
			if len(rest) < 2 {
				return msg.Decision{}, fmt.Errorf("woregister: truncated participant list")
			}
			role := id.Role(rest[0])
			idx, rn := binary.Varint(rest[1:])
			if rn <= 0 {
				return msg.Decision{}, fmt.Errorf("woregister: malformed participant index")
			}
			parts = append(parts, id.NodeID{Role: role, Index: int(idx)})
			rest = rest[1+rn:]
		}
	}
	var res []byte
	if len(rest) > 0 {
		res = make([]byte, len(rest))
		copy(res, rest)
	}
	return msg.Decision{Result: res, Outcome: o, Participants: parts}, nil
}
