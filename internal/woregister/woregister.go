// Package woregister implements the paper's write-once registers
// (Section 4): consensus-like abstractions "that capture the nice intuition
// of CD-ROMs — they can be written once but read several times".
//
// One Registers value runs on each application server, layered on that
// server's consensus node, exactly as the paper prescribes: "every
// application server would have a copy of the register ... writing a value
// comes down to proposing that value for the consensus protocol; to read a
// value, a process simply returns the decision value received from the
// consensus protocol, if any, and returns ⊥ if no consensus has been
// triggered".
//
// Two register arrays exist, keyed by try (ResultID): regA[j] holds the
// identity of the application server executing try j, and regD[j] holds the
// decision (result, outcome) of try j.
package woregister

import (
	"context"
	"encoding/binary"
	"fmt"

	"etx/internal/consensus"
	"etx/internal/id"
	"etx/internal/msg"
)

// Registers is the pair of wo-register arrays of one application server.
type Registers struct {
	node *consensus.Node
}

// New layers the register arrays over a consensus node.
func New(node *consensus.Node) *Registers {
	return &Registers{node: node}
}

// WriteA writes who into regA[rid]. Per wo-register semantics the returned
// value is the value actually in the register: who if this write won the
// race, or the previously written server otherwise.
func (r *Registers) WriteA(ctx context.Context, rid id.ResultID, who id.NodeID) (id.NodeID, error) {
	key := msg.RegKey{Array: msg.RegA, RID: rid}
	raw, err := r.node.Propose(ctx, key, EncodeNode(who))
	if err != nil {
		return id.NodeID{}, fmt.Errorf("woregister: write %s: %w", key, err)
	}
	winner, err := DecodeNode(raw)
	if err != nil {
		return id.NodeID{}, fmt.Errorf("woregister: corrupt %s: %w", key, err)
	}
	return winner, nil
}

// ReadA reads regA[rid]; ok is false when the register is still ⊥.
// The read is weak, as in the paper: it may lag a write performed elsewhere,
// but repeated reads eventually observe it.
func (r *Registers) ReadA(rid id.ResultID) (id.NodeID, bool) {
	raw, ok := r.node.Decided(msg.RegKey{Array: msg.RegA, RID: rid})
	if !ok {
		return id.NodeID{}, false
	}
	n, err := DecodeNode(raw)
	if err != nil {
		return id.NodeID{}, false
	}
	return n, true
}

// WriteD writes dec into regD[rid] and returns the decision actually in the
// register. The cleaning thread's regD[j].write(nil, abort) and the
// executor's regD[j].write(result, outcome) race through here; consensus
// arbitrates.
func (r *Registers) WriteD(ctx context.Context, rid id.ResultID, dec msg.Decision) (msg.Decision, error) {
	key := msg.RegKey{Array: msg.RegD, RID: rid}
	raw, err := r.node.Propose(ctx, key, EncodeDecision(dec))
	if err != nil {
		return msg.Decision{}, fmt.Errorf("woregister: write %s: %w", key, err)
	}
	winner, err := DecodeDecision(raw)
	if err != nil {
		return msg.Decision{}, fmt.Errorf("woregister: corrupt %s: %w", key, err)
	}
	return winner, nil
}

// ReadD reads regD[rid]; ok is false when the register is still ⊥.
func (r *Registers) ReadD(rid id.ResultID) (msg.Decision, bool) {
	raw, ok := r.node.Decided(msg.RegKey{Array: msg.RegD, RID: rid})
	if !ok {
		return msg.Decision{}, false
	}
	d, err := DecodeDecision(raw)
	if err != nil {
		return msg.Decision{}, false
	}
	return d, true
}

// KnownTries returns every try for which this replica has seen regA activity
// (a local or remote write, decided or in flight). The cleaning thread scans
// this set in place of the paper's infinite register-array walk; the sets
// coincide on every decided entry, which is all the paper's scan can act on.
func (r *Registers) KnownTries() []id.ResultID {
	keys := r.node.Keys()
	out := make([]id.ResultID, 0, len(keys))
	for _, k := range keys {
		if k.Array == msg.RegA {
			out = append(out, k.RID)
		}
	}
	return out
}

// Retire discards both registers of a try (regA[rid] and regD[rid]),
// implementing the paper's deferred garbage-collection concern. Callers must
// guarantee the client will never retransmit the request again.
func (r *Registers) Retire(rid id.ResultID) {
	r.node.Forget(msg.RegKey{Array: msg.RegA, RID: rid})
	r.node.Forget(msg.RegKey{Array: msg.RegD, RID: rid})
}

// --- value encodings ---------------------------------------------------

// EncodeNode serializes a NodeID register value.
func EncodeNode(n id.NodeID) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64)
	buf = append(buf, byte(n.Role))
	buf = binary.AppendVarint(buf, int64(n.Index))
	return buf
}

// DecodeNode parses EncodeNode's output.
func DecodeNode(b []byte) (id.NodeID, error) {
	if len(b) < 2 {
		return id.NodeID{}, fmt.Errorf("woregister: node value too short (%d bytes)", len(b))
	}
	role := id.Role(b[0])
	idx, n := binary.Varint(b[1:])
	if n <= 0 || 1+n != len(b) {
		return id.NodeID{}, fmt.Errorf("woregister: malformed node value")
	}
	return id.NodeID{Role: role, Index: int(idx)}, nil
}

// EncodeDecision serializes a Decision register value: the outcome byte, the
// participant dlist (marker 0 = unknown, count+1 otherwise — regD must carry
// it so a cleaning thread or recovering owner that reads the decision knows
// which shards to terminate), then the raw result bytes.
func EncodeDecision(d msg.Decision) []byte {
	buf := make([]byte, 0, 2+3*len(d.Participants)+len(d.Result))
	buf = append(buf, byte(d.Outcome))
	if d.Participants == nil {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(d.Participants))+1)
		for _, n := range d.Participants {
			buf = append(buf, EncodeNode(n)...)
		}
	}
	buf = append(buf, d.Result...)
	return buf
}

// DecodeDecision parses EncodeDecision's output.
func DecodeDecision(b []byte) (msg.Decision, error) {
	if len(b) < 1 {
		return msg.Decision{}, fmt.Errorf("woregister: decision value empty")
	}
	o := msg.Outcome(b[0])
	if o != msg.OutcomeCommit && o != msg.OutcomeAbort {
		return msg.Decision{}, fmt.Errorf("woregister: bad outcome byte %d", b[0])
	}
	rest := b[1:]
	marker, n := binary.Uvarint(rest)
	if n <= 0 {
		return msg.Decision{}, fmt.Errorf("woregister: truncated participant count")
	}
	rest = rest[n:]
	var parts []id.NodeID
	if marker > 0 {
		count := marker - 1
		if count > uint64(len(rest)) {
			return msg.Decision{}, fmt.Errorf("woregister: corrupt participant count %d", count)
		}
		parts = make([]id.NodeID, 0, count)
		// Streaming parse of EncodeNode's format (DecodeNode itself wants
		// an exact-length buffer, which a mid-value field is not).
		for i := uint64(0); i < count; i++ {
			if len(rest) < 2 {
				return msg.Decision{}, fmt.Errorf("woregister: truncated participant list")
			}
			role := id.Role(rest[0])
			idx, rn := binary.Varint(rest[1:])
			if rn <= 0 {
				return msg.Decision{}, fmt.Errorf("woregister: malformed participant index")
			}
			parts = append(parts, id.NodeID{Role: role, Index: int(idx)})
			rest = rest[1+rn:]
		}
	}
	var res []byte
	if len(rest) > 0 {
		res = make([]byte, len(rest))
		copy(res, rest)
	}
	return msg.Decision{Result: res, Outcome: o, Participants: parts}, nil
}
