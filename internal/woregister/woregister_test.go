package woregister

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// soloRegisters builds Registers over a single-node consensus (majority = 1),
// which decides instantly with no network: ideal for unit semantics.
func soloRegisters(t *testing.T) *Registers {
	t.Helper()
	node, err := consensus.New(consensus.Config{
		Self:     id.AppServer(1),
		Peers:    []id.NodeID{id.AppServer(1)},
		Send:     func(id.NodeID, msg.Payload) error { return nil },
		Detector: fd.NewScripted(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return New(node)
}

func testRID(try uint64) id.ResultID {
	return id.ResultID{Client: id.Client(1), Seq: 1, Try: try}
}

func TestReadEmptyIsBottom(t *testing.T) {
	r := soloRegisters(t)
	if _, ok := r.ReadA(testRID(1)); ok {
		t.Error("fresh regA must read ⊥")
	}
	if _, ok := r.ReadD(testRID(1)); ok {
		t.Error("fresh regD must read ⊥")
	}
}

func TestWriteAThenRead(t *testing.T) {
	r := soloRegisters(t)
	ctx := context.Background()
	winner, err := r.WriteA(ctx, testRID(1), id.AppServer(1))
	if err != nil {
		t.Fatal(err)
	}
	if winner != id.AppServer(1) {
		t.Fatalf("winner = %v", winner)
	}
	got, ok := r.ReadA(testRID(1))
	if !ok || got != id.AppServer(1) {
		t.Fatalf("ReadA = (%v,%v)", got, ok)
	}
}

func TestWriteOnceFirstWriterWins(t *testing.T) {
	r := soloRegisters(t)
	ctx := context.Background()
	if _, err := r.WriteA(ctx, testRID(1), id.AppServer(1)); err != nil {
		t.Fatal(err)
	}
	// A second write must return the first value, not overwrite.
	winner, err := r.WriteA(ctx, testRID(1), id.AppServer(2))
	if err != nil {
		t.Fatal(err)
	}
	if winner != id.AppServer(1) {
		t.Fatalf("second write returned %v, want first writer appserver-1", winner)
	}
}

func TestWriteDCleanerVsExecutorRace(t *testing.T) {
	r := soloRegisters(t)
	ctx := context.Background()
	commit := msg.Decision{Result: []byte("res"), Outcome: msg.OutcomeCommit}
	got, err := r.WriteD(ctx, testRID(1), commit)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Committed() {
		t.Fatalf("executor write lost on empty register: %v", got)
	}
	// Cleaner writes (nil, abort) afterwards: must get back the commit.
	clean, err := r.WriteD(ctx, testRID(1), msg.Decision{Outcome: msg.OutcomeAbort})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Committed() || string(clean.Result) != "res" {
		t.Fatalf("cleaner must observe the committed decision, got %v", clean)
	}
}

func TestRegistersAreIndependentPerTry(t *testing.T) {
	r := soloRegisters(t)
	ctx := context.Background()
	r.WriteD(ctx, testRID(1), msg.Decision{Outcome: msg.OutcomeAbort})
	r.WriteD(ctx, testRID(2), msg.Decision{Result: []byte("ok"), Outcome: msg.OutcomeCommit})
	d1, _ := r.ReadD(testRID(1))
	d2, _ := r.ReadD(testRID(2))
	if d1.Committed() || !d2.Committed() {
		t.Fatalf("tries interfered: %v / %v", d1, d2)
	}
	// regA and regD for the same try are independent registers.
	if _, ok := r.ReadA(testRID(1)); ok {
		t.Error("regA must still be ⊥; only regD was written")
	}
}

func TestKnownTriesListsRegAOnly(t *testing.T) {
	r := soloRegisters(t)
	ctx := context.Background()
	r.WriteA(ctx, testRID(3), id.AppServer(1))
	r.WriteD(ctx, testRID(9), msg.Decision{Outcome: msg.OutcomeAbort})
	tries := r.KnownTries()
	if len(tries) != 1 || tries[0] != testRID(3) {
		t.Fatalf("KnownTries = %v, want exactly [try 3]", tries)
	}
}

func TestNodeEncodingRoundTrip(t *testing.T) {
	f := func(role uint8, index int32) bool {
		n := id.NodeID{Role: id.Role(role), Index: int(index)}
		back, err := DecodeNode(EncodeNode(n))
		return err == nil && back == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecisionEncodingRoundTrip(t *testing.T) {
	f := func(commit bool, res []byte, partIdx []uint8, known bool) bool {
		o := msg.OutcomeAbort
		if commit {
			o = msg.OutcomeCommit
		}
		// The participant dlist must survive the register: nil (unknown)
		// and populated lists are both legal values.
		var parts []id.NodeID
		if known {
			parts = make([]id.NodeID, 0, len(partIdx))
			for _, i := range partIdx {
				parts = append(parts, id.DBServer(int(i)+1))
			}
		}
		d := msg.Decision{Result: res, Outcome: o, Participants: parts}
		back, err := DecodeDecision(EncodeDecision(d))
		if err != nil {
			return false
		}
		if back.Outcome != o || !bytes.Equal(back.Result, res) {
			return false
		}
		if (back.Participants == nil) != (parts == nil) || len(back.Participants) != len(parts) {
			return false
		}
		for i := range parts {
			if back.Participants[i] != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeNode(nil); err == nil {
		t.Error("DecodeNode(nil) must fail")
	}
	if _, err := DecodeNode([]byte{1}); err == nil {
		t.Error("DecodeNode(short) must fail")
	}
	if _, err := DecodeDecision(nil); err == nil {
		t.Error("DecodeDecision(nil) must fail")
	}
	if _, err := DecodeDecision([]byte{99}); err == nil {
		t.Error("DecodeDecision(bad outcome) must fail")
	}
}

// TestReplicatedWriteOnce runs the real thing: three replicas over a network,
// all writing different values to the same register concurrently; exactly one
// value must win everywhere.
func TestReplicatedWriteOnce(t *testing.T) {
	net := transport.NewMemNetwork(transport.Options{
		DefaultLatency: 100 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
	})
	defer net.Close()
	peers := []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)}
	regs := make(map[id.NodeID]*Registers, len(peers))
	var wgRecv sync.WaitGroup
	for _, p := range peers {
		ep, err := net.Attach(p)
		if err != nil {
			t.Fatal(err)
		}
		node, err := consensus.New(consensus.Config{
			Self:     p,
			Peers:    peers,
			Detector: fd.NewScripted(),
			Poll:     200 * time.Microsecond,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		regs[p] = New(node)
		wgRecv.Add(1)
		go func() {
			defer wgRecv.Done()
			for env := range ep.Recv() {
				node.Handle(env.From, env.Payload)
			}
		}()
	}
	t.Cleanup(wgRecv.Wait)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rid := testRID(1)
	winners := make([]id.NodeID, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := regs[p].WriteA(ctx, rid, p)
			if err != nil {
				t.Errorf("%v: %v", p, err)
				return
			}
			winners[i] = w
		}()
	}
	wg.Wait()
	for i := 1; i < len(winners); i++ {
		if winners[i] != winners[0] {
			t.Fatalf("write-once violated across replicas: %v", winners)
		}
	}
	found := false
	for _, p := range peers {
		if winners[0] == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %v is not one of the writers", winners[0])
	}
}
