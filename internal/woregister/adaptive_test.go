package woregister

import (
	"context"
	"sync"
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
)

// TestSequencerAdaptiveCap pins the local copy of the window-sizing curve
// (mirrors core's; the two must not drift apart).
func TestSequencerAdaptiveCap(t *testing.T) {
	cases := []struct {
		configured, depth, want int
	}{
		{64, 0, 1},
		{64, 1, 1},
		{64, 4, 8},
		{64, 16, 32},
		{64, 64, 64},
		{4, 64, 4},
	}
	for _, c := range cases {
		if got := adaptiveCap(c.configured, c.depth); got != c.want {
			t.Errorf("adaptiveCap(%d, %d) = %d, want %d", c.configured, c.depth, got, c.want)
		}
	}
}

// TestDepthOneSkipsEnrollmentHold: with a depth sampler reporting a lone
// writer, the sequencer must head straight for the proposal instead of
// sleeping the cohort window — an enormous window adds no latency at depth 1.
func TestDepthOneSkipsEnrollmentHold(t *testing.T) {
	const window = 5 * time.Second
	r := newBatchedRig(t, window, func() int { return 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	start := time.Now()
	w, err := r.regs[r.peers[0]].WriteA(ctx, testRID(1), id.AppServer(1))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if w != id.AppServer(1) {
		t.Fatalf("winner = %v", w)
	}
	if elapsed >= window/2 {
		t.Fatalf("lone write took %v against a %v window: the hold was not skipped", elapsed, window)
	}
}

// TestDeepPipelineStillFormsCohorts: a depth sampler reporting a deep
// pipeline keeps the enrollment hold and the widened cap, so concurrent
// writes must still share batch slots — adaptation never degrades the
// batching it exists to preserve.
func TestDeepPipelineStillFormsCohorts(t *testing.T) {
	r := newBatchedRig(t, 3*time.Millisecond, func() int { return 8 })
	primary := r.regs[r.peers[0]]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const tries = 6
	commit := msg.Decision{Result: []byte("res"), Outcome: msg.OutcomeCommit}
	var wg sync.WaitGroup
	errs := make(chan error, 2*tries)
	for i := 0; i < tries; i++ {
		rid := testRID(uint64(i + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := primary.WriteA(ctx, rid, id.AppServer(1)); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := primary.WriteD(ctx, rid, commit); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := r.nodes[r.peers[0]].Stats()
	if st.Proposes >= 2*tries {
		t.Errorf("%d proposals for %d writes: depth-8 cohorts never formed", st.Proposes, 2*tries)
	}
	if st.BatchOps == 0 {
		t.Error("no ops decided through batch slots")
	}
}
