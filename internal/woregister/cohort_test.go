package woregister

import (
	"context"
	"sync"
	"testing"
	"time"

	"etx/internal/consensus"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// batchedRig wires three batched Registers over a MemNetwork, with RegOps
// forwarding routed into the receiving server's sequencer — the full cohort
// path an application server runs.
type batchedRig struct {
	peers []id.NodeID
	nodes map[id.NodeID]*consensus.Node
	regs  map[id.NodeID]*Registers
	dets  map[id.NodeID]*fd.Scripted
}

// The optional depth sampler is installed on every server's sequencer
// (core's AdaptiveWindows plumbing).
func newBatchedRig(t *testing.T, window time.Duration, depth ...func() int) *batchedRig {
	t.Helper()
	var depthFn func() int
	if len(depth) > 0 {
		depthFn = depth[0]
	}
	net := transport.NewMemNetwork(transport.Options{
		DefaultLatency: 100 * time.Microsecond,
		Jitter:         200 * time.Microsecond,
	})
	r := &batchedRig{
		peers: []id.NodeID{id.AppServer(1), id.AppServer(2), id.AppServer(3)},
		nodes: make(map[id.NodeID]*consensus.Node),
		regs:  make(map[id.NodeID]*Registers),
		dets:  make(map[id.NodeID]*fd.Scripted),
	}
	var wgRecv sync.WaitGroup
	for _, p := range r.peers {
		ep, err := net.Attach(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewScripted()
		node, err := consensus.New(consensus.Config{
			Self:     p,
			Peers:    r.peers,
			Detector: det,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		regs, err := NewBatched(node, Options{
			CohortWindow: window,
			Depth:        depthFn,
			Self:         p,
			Peers:        r.peers,
			Detector:     det,
			Send: func(to id.NodeID, pl msg.Payload) error {
				return ep.Send(msg.Envelope{To: to, Payload: pl})
			},
			RetryInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[p] = node
		r.regs[p] = regs
		r.dets[p] = det
		wgRecv.Add(1)
		go func() {
			defer wgRecv.Done()
			for env := range ep.Recv() {
				if ops, ok := env.Payload.(msg.RegOps); ok {
					regs.EnqueueRemote(env.From, ops.Ops)
					continue
				}
				node.Handle(env.From, env.Payload)
			}
		}()
	}
	t.Cleanup(func() {
		for _, p := range r.peers {
			r.regs[p].Stop()
			r.nodes[p].Stop()
		}
		net.Close() // closes the endpoints, ending the recv loops
		wgRecv.Wait()
	})
	return r
}

// TestBatchedMixedCohortResolvesEveryCaller is the satellite requirement: a
// cohort mixing regA and regD ops for different rids must resolve every
// caller with its own register's outcome.
func TestBatchedMixedCohortResolvesEveryCaller(t *testing.T) {
	r := newBatchedRig(t, 200*time.Microsecond)
	primary := r.regs[r.peers[0]]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const tries = 4
	commit := msg.Decision{Result: []byte("res"), Outcome: msg.OutcomeCommit}
	var wg sync.WaitGroup
	winners := make([]id.NodeID, tries)
	decs := make([]msg.Decision, tries)
	errs := make(chan error, 2*tries)
	for i := 0; i < tries; i++ {
		i := i
		rid := testRID(uint64(i + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := primary.WriteA(ctx, rid, id.AppServer(1))
			if err != nil {
				errs <- err
				return
			}
			winners[i] = w
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := primary.WriteD(ctx, rid, commit)
			if err != nil {
				errs <- err
				return
			}
			decs[i] = d
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < tries; i++ {
		if winners[i] != id.AppServer(1) {
			t.Errorf("try %d: regA winner = %v", i+1, winners[i])
		}
		if !decs[i].Committed() || string(decs[i].Result) != "res" {
			t.Errorf("try %d: regD = %v", i+1, decs[i])
		}
	}
	// The cohort really shared instances: far fewer proposals than writes.
	st := r.nodes[r.peers[0]].Stats()
	if st.Proposes >= 2*tries {
		t.Errorf("%d proposals for %d writes: cohorts never formed", st.Proposes, 2*tries)
	}
	if st.BatchOps == 0 {
		t.Error("no ops decided through batch slots")
	}
	// Every replica converges on every register (weak reads catch up).
	for _, p := range r.peers {
		for i := 0; i < tries; i++ {
			rid := testRID(uint64(i + 1))
			deadline := time.Now().Add(5 * time.Second)
			for {
				w, okA := r.regs[p].ReadA(rid)
				d, okD := r.regs[p].ReadD(rid)
				if okA && okD {
					if w != id.AppServer(1) || !d.Committed() {
						t.Fatalf("%v try %d: regA=%v regD=%v", p, i+1, w, d)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%v never observed try %d", p, i+1)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

// TestBatchedWriteOnceAcrossReplicas: all three replicas concurrently write
// the same register through the batched path (non-primaries forward their
// cohorts); exactly one value must win everywhere — the write-once
// arbitration the whole protocol rests on.
func TestBatchedWriteOnceAcrossReplicas(t *testing.T) {
	r := newBatchedRig(t, 200*time.Microsecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rid := testRID(1)
	winners := make([]id.NodeID, len(r.peers))
	var wg sync.WaitGroup
	for i, p := range r.peers {
		i, p := i, p
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := r.regs[p].WriteA(ctx, rid, p)
			if err != nil {
				t.Errorf("%v: %v", p, err)
				return
			}
			winners[i] = w
		}()
	}
	wg.Wait()
	for i := 1; i < len(winners); i++ {
		if winners[i] != winners[0] {
			t.Fatalf("write-once violated across replicas: %v", winners)
		}
	}
	found := false
	for _, p := range r.peers {
		if winners[0] == p {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %v is not one of the writers", winners[0])
	}
}

// TestBatchedSequencerFailover: with the primary's sequencer gone, a
// backup's forwarded writes must re-route (detector-driven) and still
// decide.
func TestBatchedSequencerFailover(t *testing.T) {
	r := newBatchedRig(t, 200*time.Microsecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The primary vanishes before the write: the backup first forwards into
	// the void, then the suspicion flips and it sequences the cohort itself.
	r.regs[r.peers[0]].Stop()
	r.nodes[r.peers[0]].Stop()
	go func() {
		time.Sleep(20 * time.Millisecond)
		for _, p := range r.peers[1:] {
			r.dets[p].Set(r.peers[0], true)
		}
	}()
	w, err := r.regs[r.peers[1]].WriteA(ctx, testRID(1), id.AppServer(2))
	if err != nil {
		t.Fatal(err)
	}
	if w != id.AppServer(2) {
		t.Fatalf("winner = %v", w)
	}
}
