package queue

import (
	"sync"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		if !q.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v), want (%d,true)", i, v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue must return ok=false")
	}
}

func TestCloseStopsPush(t *testing.T) {
	q := New[string]()
	q.Push("a")
	q.Close()
	if q.Push("b") {
		t.Error("Push after Close must fail")
	}
	if !q.Closed() {
		t.Error("Closed must report true")
	}
	// Items queued before close remain poppable.
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Errorf("Pop after Close = (%q,%v), want (a,true)", v, ok)
	}
}

func TestOutWakesConsumer(t *testing.T) {
	q := New[int]()
	done := make(chan int)
	go func() {
		total := 0
		for {
			for {
				v, ok := q.Pop()
				if !ok {
					break
				}
				total += v
			}
			if q.Closed() && q.Len() == 0 {
				done <- total
				return
			}
			<-q.Out()
		}
	}()
	for i := 1; i <= 10; i++ {
		q.Push(i)
	}
	q.Close()
	if got := <-done; got != 55 {
		t.Errorf("consumer saw sum %d, want 55", got)
	}
}

func TestConcurrentProducers(t *testing.T) {
	q := New[int]()
	const producers = 8
	const perProducer = 500
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(1)
			}
		}()
	}
	wg.Wait()
	sum := 0
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		sum += v
	}
	if sum != producers*perProducer {
		t.Errorf("popped sum %d, want %d", sum, producers*perProducer)
	}
}

func TestPopDoesNotPinMemory(t *testing.T) {
	// Structural test: after popping everything, Len is zero and a fresh
	// push/pop cycle works (guards the copy-shift implementation).
	q := New[[]byte]()
	for i := 0; i < 64; i++ {
		q.Push(make([]byte, 1024))
	}
	for i := 0; i < 64; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatal("unexpected empty queue")
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
	q.Push([]byte("x"))
	if v, ok := q.Pop(); !ok || string(v) != "x" {
		t.Fatal("queue unusable after drain")
	}
}
