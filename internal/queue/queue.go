// Package queue provides a small unbounded MPSC queue used by protocol state
// machines whose correctness depends on never dropping an in-process message
// (consensus instances, node mailboxes). Senders never block; the single
// consumer blocks on a channel-compatible Out() until an item is ready or the
// queue is closed.
//
// Unbounded growth is deliberate here: the layers above bound the number of
// in-flight protocol steps, and dropping a consensus message would stall an
// instance forever, which is strictly worse than transient memory growth.
package queue

import "sync"

// Queue is an unbounded multi-producer single-consumer queue of T.
// The zero value is not usable; call New.
type Queue[T any] struct {
	mu     sync.Mutex
	items  []T
	head   int           // consumed prefix of items
	wake   chan struct{} // capacity 1: level-triggered wakeup
	closed bool
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	return &Queue[T]{wake: make(chan struct{}, 1)}
}

// Push appends an item. It never blocks. Pushing to a closed queue is a no-op
// and returns false.
func (q *Queue[T]) Push(item T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, item)
	q.mu.Unlock()
	q.signal()
	return true
}

// Pop removes and returns the oldest item. ok is false when the queue is
// empty; Pop never blocks (use Wait or Out to block).
func (q *Queue[T]) Pop() (item T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		var zero T
		return zero, false
	}
	item = q.items[q.head]
	var zero T
	q.items[q.head] = zero // release the reference; GC must not see it pinned
	q.head++
	if q.head >= len(q.items) {
		// Drained: reuse the backing array from the start.
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 64 && q.head > len(q.items)/2 {
		// Compact the consumed prefix once it dominates the array, so the
		// cost of moving items is amortized O(1) per element instead of the
		// O(n) shift a per-Pop copy would pay on a deep queue.
		n := copy(q.items, q.items[q.head:])
		stale := q.items[n:]
		for i := range stale {
			stale[i] = zero // drop the shifted-out duplicates for the GC
		}
		q.items = q.items[:n]
		q.head = 0
	}
	if q.head < len(q.items) {
		q.signal()
	}
	return item, true
}

// Out returns a channel that is signalled whenever items may be available or
// the queue is closed. The consumer loops: <-Out(), then Pop until empty.
func (q *Queue[T]) Out() <-chan struct{} { return q.wake }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// Close marks the queue closed and wakes the consumer. Items already queued
// can still be popped.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

func (q *Queue[T]) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
