package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestEmptySampleIsZero(t *testing.T) {
	s := NewSample()
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Percentile(50) != 0 || s.CI90() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestMeanStdDev(t *testing.T) {
	s := NewSample()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if !almost(s.Mean(), 5, 1e-9) {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample stddev with n-1: sqrt(32/7).
	if !almost(s.StdDev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Errorf("stddev = %v", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestAddDurationUsesMilliseconds(t *testing.T) {
	s := NewSample()
	s.AddDuration(1500 * time.Microsecond)
	if !almost(s.Mean(), 1.5, 1e-9) {
		t.Errorf("mean = %v, want 1.5 ms", s.Mean())
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Percentile(50), 50.5, 1e-9) {
		t.Errorf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Errorf("extremes wrong: %v %v", s.Percentile(0), s.Percentile(100))
	}
	if p99 := s.Percentile(99); p99 < 99 || p99 > 100 {
		t.Errorf("p99 = %v", p99)
	}
}

func TestCI90ShrinksWithN(t *testing.T) {
	small, big := NewSample(), NewSample()
	vals := []float64{10, 12, 8, 11, 9}
	for _, v := range vals {
		small.Add(v)
	}
	for i := 0; i < 20; i++ {
		for _, v := range vals {
			big.Add(v)
		}
	}
	if small.CI90() <= big.CI90() {
		t.Errorf("CI must shrink with n: small=%v big=%v", small.CI90(), big.CI90())
	}
}

func TestCI90KnownValue(t *testing.T) {
	// n=2: df=1, t=6.314; sd of {1,3} = sqrt(2); half width = 6.314*sqrt(2)/sqrt(2) = 6.314.
	s := NewSample()
	s.Add(1)
	s.Add(3)
	if !almost(s.CI90(), 6.314, 1e-9) {
		t.Errorf("CI90 = %v, want 6.314", s.CI90())
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSample()
	s.Add(1)
	s.Add(2)
	sum := s.Summarize()
	if sum.N != 2 || sum.Mean != 1.5 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Error("empty summary string")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Errorf("unseeded EWMA = %v", e.Value())
	}
	e.Observe(10) // first observation seeds directly
	if !almost(e.Value(), 10, 1e-9) {
		t.Errorf("seeded EWMA = %v, want 10", e.Value())
	}
	e.Observe(20) // 0.5*20 + 0.5*10
	if !almost(e.Value(), 15, 1e-9) {
		t.Errorf("EWMA = %v, want 15", e.Value())
	}
	e.Observe(0) // decays, never snaps to the trough
	if !almost(e.Value(), 7.5, 1e-9) {
		t.Errorf("EWMA = %v, want 7.5", e.Value())
	}
}

func TestEWMAConcurrentObserve(t *testing.T) {
	e := NewEWMA(0.125)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				e.Observe(8)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if !almost(e.Value(), 8, 1e-9) {
		t.Errorf("constant-input EWMA = %v, want 8", e.Value())
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := NewSample()
		for _, v := range vals {
			s.Add(v)
		}
		pp := math.Mod(math.Abs(p), 100)
		got := s.Percentile(pp)
		return got >= s.Min()-1e-9 && got <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	// Inputs are folded into the magnitude range of real latencies
	// (milliseconds); the naive sum is not meant for ±1e308 extremes.
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSample()
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(math.Mod(v, 1e6))
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
