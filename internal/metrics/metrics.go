// Package metrics provides the summary statistics the paper's evaluation
// methodology uses: mean response times with 90% confidence intervals ("we
// computed the 90% confidence interval for the mean response time; in all
// cases, the width of this interval was found to be less than 10%"),
// plus percentiles for the failure-response-time experiments the paper calls
// for but does not report.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The consensus layer exports its protocol activity (instances started,
// rounds run, messages sent, fast-path hits) through Counters so benchmarks
// and liveness diagnostics can compute per-commit rates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a level that moves both ways, safe for concurrent use. Unlike a
// Counter it reports occupancy, not activity: the consensus layer uses one
// for the live batch-log slot map so the memory experiments can watch it
// stay flat under the checkpointed truncation instead of growing with every
// decided cohort.
type Gauge struct {
	v atomic.Int64
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add moves the level by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// EWMA is an exponentially weighted moving average, safe for concurrent
// use. The adaptive batching windows use one to smooth the observed
// in-flight depth: instantaneous depth whipsaws between ticks under bursty
// arrivals, and the window sizing should follow the sustained load, not the
// last sample.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64 // float64 bits of the current average; 0 = no samples yet
}

// NewEWMA returns an average weighting each new observation by alpha
// (0 < alpha <= 1); smaller alpha means a longer memory.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average. The first sample seeds the
// average directly.
func (e *EWMA) Observe(v float64) {
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = v
		} else {
			cur := math.Float64frombits(old)
			next = cur + e.alpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	b := e.bits.Load()
	if b == 0 {
		return 0
	}
	return math.Float64frombits(b)
}

// Sample accumulates observations. Safe for concurrent use.
type Sample struct {
	mu   sync.Mutex
	vals []float64
}

// NewSample creates an empty sample.
func NewSample() *Sample { return &Sample{} }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

// AddDuration records a duration in milliseconds (the paper's unit).
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mean(s.vals)
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Sample) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stddev(s.vals)
}

func stddev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	m := mean(vals)
	ss := 0.0
	for _, v := range vals {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 < p <= 100) using linear
// interpolation between order statistics.
func (s *Sample) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.vals)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.vals)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// t90 holds two-sided 90% Student-t critical values for small degrees of
// freedom; beyond the table the normal approximation (1.645) applies.
var t90 = []float64{
	0,                                 // df 0 (unused)
	6.314, 2.920, 2.353, 2.132, 2.015, // df 1-5
	1.943, 1.895, 1.860, 1.833, 1.812, // df 6-10
	1.796, 1.782, 1.771, 1.761, 1.753, // df 11-15
	1.746, 1.740, 1.734, 1.729, 1.725, // df 16-20
	1.721, 1.717, 1.714, 1.711, 1.708, // df 21-25
	1.706, 1.703, 1.701, 1.699, 1.697, // df 26-30
}

// CI90 returns the half-width of the 90% confidence interval of the mean.
func (s *Sample) CI90() float64 {
	s.mu.Lock()
	n := len(s.vals)
	sd := stddev(s.vals)
	s.mu.Unlock()
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.645
	if df < len(t90) {
		t = t90[df]
	}
	return t * sd / math.Sqrt(float64(n))
}

// Summary is a one-line digest of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI90   float64
	P50    float64
	P99    float64
	Min    float64
	Max    float64
}

// Summarize computes the digest.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		CI90:   s.CI90(),
		P50:    s.Percentile(50),
		P99:    s.Percentile(99),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// String renders the digest in milliseconds.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms ±%.2f (90%% CI) p50=%.2f p99=%.2f min=%.2f max=%.2f",
		sm.N, sm.Mean, sm.CI90, sm.P50, sm.P99, sm.Min, sm.Max)
}
