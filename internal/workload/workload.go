// Package workload defines the business logics the experiments and examples
// run: the paper's measured workload (updating a bank account on a single
// database, Appendix 3) and the travel-booking scenario its introduction
// motivates (flight + hotel + car across three databases, with the
// footnote-4 treatment of sold-out inventory).
//
// Logic bodies are written once against the Execer interface, which both
// core.Tx (the replicated protocol) and baseline.Tx (the comparison
// protocols) satisfy, so every protocol runs byte-identical business code —
// the property that makes the Figure-8 comparison fair.
package workload

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
)

// Execer is the data-access surface shared by core.Tx and baseline.Tx.
type Execer interface {
	Exec(ctx context.Context, db id.NodeID, op msg.Op) (msg.OpResult, error)
	DBs() []id.NodeID
}

// Router is the optional key-routing surface: core.Tx implements it over the
// deployment's placement map. Logics written against HomeOf work unchanged
// on the baseline protocols, whose Tx routes everything to the first
// database.
type Router interface {
	Home(key string) id.NodeID
}

// HomeOf returns the database server owning key: the placement-routed home
// when x routes (core.Tx), the first database otherwise (baseline.Tx).
func HomeOf(x Execer, key string) id.NodeID {
	if r, ok := x.(Router); ok {
		return r.Home(key)
	}
	return x.DBs()[0]
}

// --- bank workload (the paper's Figure-8 measurement) -----------------------

// BankRequest encodes a deposit/withdrawal of amount against account.
type BankRequest struct {
	Account string
	Amount  int64
}

// The bank wire format is a hand-rolled varint encoding rather than JSON:
// the bank transaction is the measured request of every throughput
// experiment, and reflection-based marshalling of the request and result was
// a visible slice of the per-commit CPU on the batched hot path.

// EncodeBank marshals a bank request.
func EncodeBank(r BankRequest) []byte {
	return encodeStrInt(r.Account, r.Amount)
}

// DecodeBank unmarshals a bank request.
func DecodeBank(b []byte) (BankRequest, error) {
	s, v, err := decodeStrInt(b)
	if err != nil {
		return BankRequest{}, fmt.Errorf("workload: bad bank request: %w", err)
	}
	return BankRequest{Account: s, Amount: v}, nil
}

// BankResult is the reply: the account's new balance.
type BankResult struct {
	Account string
	Balance int64
}

// EncodeBankResult marshals a bank result.
func EncodeBankResult(r BankResult) []byte {
	return encodeStrInt(r.Account, r.Balance)
}

// DecodeBankResult unmarshals a bank result.
func DecodeBankResult(b []byte) (BankResult, error) {
	s, v, err := decodeStrInt(b)
	if err != nil {
		return BankResult{}, fmt.Errorf("workload: bad bank result: %w", err)
	}
	return BankResult{Account: s, Balance: v}, nil
}

func encodeStrInt(s string, v int64) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(s)+binary.MaxVarintLen64)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	buf = append(buf, s...)
	buf = binary.AppendVarint(buf, v)
	return buf
}

func decodeStrInt(b []byte) (string, int64, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > uint64(len(b)-k) {
		return "", 0, fmt.Errorf("bad string length")
	}
	s := string(b[k : k+int(n)])
	rest := b[k+int(n):]
	v, k2 := binary.Varint(rest)
	if k2 <= 0 || k2 != len(rest) {
		return "", 0, fmt.Errorf("bad integer")
	}
	return s, v, nil
}

// BankSeed returns the initial database content for the bank workload.
func BankSeed(accounts map[string]int64) []kv.Write {
	ws := make([]kv.Write, 0, len(accounts))
	for acct, bal := range accounts {
		ws = append(ws, kv.Write{Key: "acct/" + acct, Val: kv.EncodeInt(bal)})
	}
	return ws
}

// Bank runs the paper's measured transaction: "the application server
// executes some SQL statements to update a bank account on a single
// database". The account's key routes the whole transaction to its home
// shard (the first database on unsharded/baseline deployments), so a bank
// request is always a single-shard commit. sqlWork is the simulated
// data-manipulation time (the Figure-8 "SQL" row); zero skips the simulated
// work.
func Bank(ctx context.Context, x Execer, req []byte, sqlWork time.Duration) ([]byte, error) {
	r, err := DecodeBank(req)
	if err != nil {
		return nil, err
	}
	db := HomeOf(x, "acct/"+r.Account)
	if sqlWork > 0 {
		if _, err := x.Exec(ctx, db, msg.Op{Code: msg.OpSleep, Delta: int64(sqlWork)}); err != nil {
			return nil, err
		}
	}
	rep, err := x.Exec(ctx, db, msg.Op{Code: msg.OpAdd, Key: "acct/" + r.Account, Delta: r.Amount})
	if err != nil {
		return nil, err
	}
	if !rep.OK {
		return nil, fmt.Errorf("workload: update failed: %s", rep.Err)
	}
	// Overdrafts are refused by the database (vote no) rather than by the
	// logic: the paper's model of user-level aborts.
	if r.Amount < 0 {
		if _, err := x.Exec(ctx, db, msg.Op{Code: msg.OpCheckGE, Key: "acct/" + r.Account, Delta: 0}); err != nil {
			return nil, err
		}
	}
	return EncodeBankResult(BankResult{Account: r.Account, Balance: rep.Num}), nil
}

// --- travel workload (the paper's introduction scenario) --------------------

// TravelRequest books a trip: one seat on Flight, one room at Hotel, one car
// of class Car. Flights live on database 1, hotels on 2, cars on 3 (or all
// on database 1 when the deployment has a single database).
type TravelRequest struct {
	Flight string `json:"flight"`
	Hotel  string `json:"hotel"`
	Car    string `json:"car"`
}

// EncodeTravel marshals a travel request.
func EncodeTravel(r TravelRequest) []byte {
	b, _ := json.Marshal(r)
	return b
}

// TravelResult reports either a booked itinerary (Booked true, with the
// remaining inventory) or a sold-out notice naming the missing item — the
// footnote-4 "result that informs the user of the booking problem".
type TravelResult struct {
	Booked  bool   `json:"booked"`
	SoldOut string `json:"sold_out,omitempty"`
	Flight  int64  `json:"flight_left"`
	Hotel   int64  `json:"hotel_left"`
	Car     int64  `json:"car_left"`
}

// DecodeTravelResult unmarshals a travel result.
func DecodeTravelResult(b []byte) (TravelResult, error) {
	var r TravelResult
	if err := json.Unmarshal(b, &r); err != nil {
		return TravelResult{}, fmt.Errorf("workload: bad travel result: %w", err)
	}
	return r, nil
}

// TravelSeed returns initial inventory for the travel workload, keyed for a
// deployment with nDBs databases.
func TravelSeed(flightSeats, hotelRooms, cars int64) []kv.Write {
	return []kv.Write{
		{Key: "flight/LX1", Val: kv.EncodeInt(flightSeats)},
		{Key: "hotel/Ritz", Val: kv.EncodeInt(hotelRooms)},
		{Key: "car/compact", Val: kv.EncodeInt(cars)},
	}
}

// Travel books flight, hotel and car atomically across the database tier.
// Availability is read first; if anything is sold out, an informational
// result is computed that touches nothing (and therefore commits), per the
// paper's footnote 4. Otherwise each item is decremented with a guard the
// databases enforce at commitment.
func Travel(ctx context.Context, x Execer, req []byte) ([]byte, error) {
	var r TravelRequest
	if err := json.Unmarshal(req, &r); err != nil {
		return nil, fmt.Errorf("workload: bad travel request: %w", err)
	}
	dbs := x.DBs()
	dbFor := func(i int) id.NodeID {
		if i < len(dbs) {
			return dbs[i]
		}
		return dbs[0]
	}
	items := []struct {
		db  id.NodeID
		key string
	}{
		{dbFor(0), "flight/" + r.Flight},
		{dbFor(1), "hotel/" + r.Hotel},
		{dbFor(2), "car/" + r.Car},
	}

	// Availability pass (reads lock shared; cheap).
	var left [3]int64
	for i, it := range items {
		rep, err := x.Exec(ctx, it.db, msg.Op{Code: msg.OpGet, Key: it.key})
		if err != nil {
			return nil, err
		}
		if !rep.OK {
			return nil, fmt.Errorf("workload: read %s: %s", it.key, rep.Err)
		}
		if rep.Num <= 0 {
			res := TravelResult{Booked: false, SoldOut: it.key}
			return json.Marshal(res)
		}
		left[i] = rep.Num
	}

	// Booking pass: decrement with commitment-time guards.
	for i, it := range items {
		rep, err := x.Exec(ctx, it.db, msg.Op{Code: msg.OpAdd, Key: it.key, Delta: -1})
		if err != nil {
			return nil, err
		}
		if !rep.OK {
			return nil, fmt.Errorf("workload: book %s: %s", it.key, rep.Err)
		}
		left[i] = rep.Num
		if _, err := x.Exec(ctx, it.db, msg.Op{Code: msg.OpCheckGE, Key: it.key, Delta: 0}); err != nil {
			return nil, err
		}
	}
	return json.Marshal(TravelResult{Booked: true, Flight: left[0], Hotel: left[1], Car: left[2]})
}
