package workload

import (
	"context"
	"errors"
	"testing"
	"time"

	"etx/internal/baseline"
	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/kv"
	"etx/internal/msg"
)

// Both transaction handles must satisfy the shared Execer surface so every
// protocol runs identical business code.
var (
	_ Execer = (*core.Tx)(nil)
	_ Execer = (*baseline.Tx)(nil)
)

// fakeExecer executes ops against an in-memory map, mimicking a single
// database branch (read-your-writes, CheckGE, Sleep).
type fakeExecer struct {
	data   map[string]int64
	failAt string // key whose access fails hard
	ops    []msg.Op
}

func newFakeExecer() *fakeExecer {
	return &fakeExecer{data: make(map[string]int64)}
}

func (f *fakeExecer) DBs() []id.NodeID {
	return []id.NodeID{id.DBServer(1), id.DBServer(2), id.DBServer(3)}
}

func (f *fakeExecer) Exec(ctx context.Context, db id.NodeID, op msg.Op) (msg.OpResult, error) {
	f.ops = append(f.ops, op)
	if op.Key != "" && op.Key == f.failAt {
		return msg.OpResult{}, errors.New("injected failure")
	}
	switch op.Code {
	case msg.OpGet:
		return msg.OpResult{Num: f.data[op.Key], OK: true}, nil
	case msg.OpAdd:
		f.data[op.Key] += op.Delta
		return msg.OpResult{Num: f.data[op.Key], OK: true}, nil
	case msg.OpCheckGE:
		if f.data[op.Key] < op.Delta {
			return msg.OpResult{Num: f.data[op.Key], OK: false, Err: "check failed"}, nil
		}
		return msg.OpResult{Num: f.data[op.Key], OK: true}, nil
	case msg.OpSleep:
		return msg.OpResult{OK: true}, nil
	case msg.OpPut:
		return msg.OpResult{OK: true}, nil
	default:
		return msg.OpResult{OK: false, Err: "unknown op"}, nil
	}
}

func TestBankEncodingRoundTrip(t *testing.T) {
	req := BankRequest{Account: "alice", Amount: -25}
	b := EncodeBank(req)
	if len(b) == 0 {
		t.Fatal("empty encoding")
	}
	x := newFakeExecer()
	x.data["acct/alice"] = 100
	res, err := Bank(context.Background(), x, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBankResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if out.Account != "alice" || out.Balance != 75 {
		t.Fatalf("result = %+v", out)
	}
}

func TestBankSQLWorkEmitsSleepOp(t *testing.T) {
	x := newFakeExecer()
	_, err := Bank(context.Background(), x, EncodeBank(BankRequest{Account: "a", Amount: 1}), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.ops) == 0 || x.ops[0].Code != msg.OpSleep || x.ops[0].Delta != int64(5*time.Millisecond) {
		t.Fatalf("ops = %+v, want a leading sleep", x.ops)
	}
}

func TestBankWithdrawalGuardsOverdraft(t *testing.T) {
	x := newFakeExecer()
	x.data["acct/a"] = 10
	_, err := Bank(context.Background(), x, EncodeBank(BankRequest{Account: "a", Amount: -5}), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A CheckGE op must have been issued for the withdrawal.
	found := false
	for _, op := range x.ops {
		if op.Code == msg.OpCheckGE {
			found = true
		}
	}
	if !found {
		t.Fatal("withdrawal must issue an overdraft guard")
	}
	// Deposits need no guard.
	x2 := newFakeExecer()
	Bank(context.Background(), x2, EncodeBank(BankRequest{Account: "a", Amount: 5}), 0)
	for _, op := range x2.ops {
		if op.Code == msg.OpCheckGE {
			t.Fatal("deposit must not issue a guard")
		}
	}
}

func TestBankRejectsGarbage(t *testing.T) {
	if _, err := Bank(context.Background(), newFakeExecer(), []byte("{"), 0); err == nil {
		t.Fatal("garbage request accepted")
	}
	if _, err := DecodeBankResult([]byte("nope")); err == nil {
		t.Fatal("garbage result accepted")
	}
}

func TestBankSeed(t *testing.T) {
	ws := BankSeed(map[string]int64{"alice": 100})
	if len(ws) != 1 || ws[0].Key != "acct/alice" {
		t.Fatalf("seed = %v", ws)
	}
	v, err := kv.DecodeInt(ws[0].Val)
	if err != nil || v != 100 {
		t.Fatalf("seed value = %d (%v)", v, err)
	}
}

func TestTravelBooksAllThree(t *testing.T) {
	x := newFakeExecer()
	x.data["flight/LX1"] = 3
	x.data["hotel/Ritz"] = 2
	x.data["car/compact"] = 1
	res, err := Travel(context.Background(), x,
		EncodeTravel(TravelRequest{Flight: "LX1", Hotel: "Ritz", Car: "compact"}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeTravelResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Booked || out.Flight != 2 || out.Hotel != 1 || out.Car != 0 {
		t.Fatalf("result = %+v", out)
	}
}

func TestTravelSoldOutComputesInformationalResult(t *testing.T) {
	x := newFakeExecer()
	x.data["flight/LX1"] = 3
	x.data["hotel/Ritz"] = 0 // sold out
	x.data["car/compact"] = 1
	res, err := Travel(context.Background(), x,
		EncodeTravel(TravelRequest{Flight: "LX1", Hotel: "Ritz", Car: "compact"}))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := DecodeTravelResult(res)
	if out.Booked || out.SoldOut != "hotel/Ritz" {
		t.Fatalf("result = %+v", out)
	}
	// Footnote 4: the informational result must not have booked anything.
	for _, op := range x.ops {
		if op.Code == msg.OpAdd {
			t.Fatal("sold-out path must not decrement inventory")
		}
	}
}

func TestTravelPropagatesExecErrors(t *testing.T) {
	x := newFakeExecer()
	x.data["flight/LX1"] = 1
	x.failAt = "flight/LX1"
	if _, err := Travel(context.Background(), x,
		EncodeTravel(TravelRequest{Flight: "LX1", Hotel: "H", Car: "C"})); err == nil {
		t.Fatal("exec failure must propagate")
	}
}

func TestTravelSeed(t *testing.T) {
	ws := TravelSeed(5, 4, 3)
	if len(ws) != 3 {
		t.Fatalf("seed = %v", ws)
	}
}
