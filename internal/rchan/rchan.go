// Package rchan implements the paper's reliable channels over a lossy,
// duplicating network, exactly the way Section 5 describes: "the abstraction
// of reliable channels is implemented by retransmitting messages and tracking
// duplicates".
//
// Wrap turns any transport.Endpoint into one whose sends satisfy the
// termination property (if neither endpoint crashes, the message is
// eventually delivered: unacknowledged messages are retransmitted forever)
// and whose deliveries satisfy integrity (duplicates are suppressed by
// per-sender sequence numbers).
//
// Heartbeats deliberately bypass the layer: retransmitting a stale heartbeat
// would defeat failure detection, and the detector tolerates loss by design.
package rchan

import (
	"sync"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/queue"
	"etx/internal/transport"
)

// Endpoint is a reliable-channel wrapper around an inner endpoint. It
// implements transport.Endpoint.
type Endpoint struct {
	inner      transport.Endpoint
	retransmit time.Duration

	mu  sync.Mutex
	out map[id.NodeID]*sendState
	in  map[id.NodeID]*recvState

	inbox     *queue.Queue[msg.Envelope]
	recv      chan msg.Envelope
	done      chan struct{}
	innerDone chan struct{} // closed when the inner endpoint's Recv closes
	wg        sync.WaitGroup

	closeOnce sync.Once
}

type sendState struct {
	next    uint64
	unacked map[uint64]msg.Payload
}

type recvState struct {
	// seen tracks delivered sequence numbers above low; everything <= low is
	// known-delivered (compacted).
	low  uint64
	seen map[uint64]bool
}

// Wrap layers reliable-channel semantics over inner. retransmit is the
// resend period for unacknowledged messages (default 25ms).
func Wrap(inner transport.Endpoint, retransmit time.Duration) *Endpoint {
	if retransmit <= 0 {
		retransmit = 25 * time.Millisecond
	}
	ep := &Endpoint{
		inner:      inner,
		retransmit: retransmit,
		out:        make(map[id.NodeID]*sendState),
		in:         make(map[id.NodeID]*recvState),
		inbox:      queue.New[msg.Envelope](),
		recv:       make(chan msg.Envelope, 64),
		done:       make(chan struct{}),
		innerDone:  make(chan struct{}),
	}
	ep.wg.Add(3)
	go ep.recvLoop()
	go ep.retransmitLoop()
	go ep.pump()
	return ep
}

// ID implements transport.Endpoint.
func (ep *Endpoint) ID() id.NodeID { return ep.inner.ID() }

// Inner exposes the wrapped endpoint so diagnostics can reach
// transport-specific state (wire counters) through the reliable layer.
func (ep *Endpoint) Inner() transport.Endpoint { return ep.inner }

// Recv implements transport.Endpoint.
func (ep *Endpoint) Recv() <-chan msg.Envelope { return ep.recv }

// Send implements transport.Endpoint. Non-heartbeat payloads are sequenced,
// buffered and retransmitted until acknowledged.
func (ep *Endpoint) Send(env msg.Envelope) error {
	if env.Payload == nil {
		return transport.ErrClosed
	}
	if env.Payload.Kind() == msg.KindHeartbeat {
		return ep.inner.Send(env)
	}
	ep.mu.Lock()
	st, ok := ep.out[env.To]
	if !ok {
		st = &sendState{unacked: make(map[uint64]msg.Payload)}
		ep.out[env.To] = st
	}
	st.next++
	seq := st.next
	st.unacked[seq] = env.Payload
	ep.mu.Unlock()
	return ep.inner.Send(msg.Envelope{To: env.To, Payload: msg.RData{Seq: seq, Inner: env.Payload}})
}

// Close implements transport.Endpoint.
func (ep *Endpoint) Close() error {
	var err error
	ep.closeOnce.Do(func() {
		close(ep.done)
		err = ep.inner.Close()
		ep.inbox.Close()
		ep.wg.Wait()
	})
	return err
}

// Unacked returns the number of buffered unacknowledged messages
// (observability for tests and memory ablations).
func (ep *Endpoint) Unacked() int {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	n := 0
	for _, st := range ep.out {
		n += len(st.unacked)
	}
	return n
}

func (ep *Endpoint) recvLoop() {
	defer ep.wg.Done()
	for {
		select {
		case env, ok := <-ep.inner.Recv():
			if !ok {
				// The inner endpoint died (node crash): stop retransmitting
				// and drain out.
				close(ep.innerDone)
				ep.inbox.Close()
				return
			}
			ep.handle(env)
		case <-ep.done:
			return
		}
	}
}

func (ep *Endpoint) handle(env msg.Envelope) {
	//etxlint:allow kindswitch — the reliable channel only interprets its own framing (RData/RAck); every other kind is opaque cargo inside RData.Inner
	switch p := env.Payload.(type) {
	case msg.RData:
		// Always (re-)acknowledge; deliver only the first copy.
		_ = ep.inner.Send(msg.Envelope{To: env.From, Payload: msg.RAck{Seq: p.Seq}})
		if ep.firstDelivery(env.From, p.Seq) {
			ep.inbox.Push(msg.Envelope{From: env.From, To: env.To, Payload: p.Inner})
		}
	case msg.RAck:
		ep.mu.Lock()
		if st, ok := ep.out[env.From]; ok {
			delete(st.unacked, p.Seq)
		}
		ep.mu.Unlock()
	default:
		// Unsequenced traffic (heartbeats) passes straight through.
		ep.inbox.Push(env)
	}
}

// firstDelivery marks seq from peer as delivered and reports whether it was
// new. The seen set is compacted by advancing low over contiguous runs.
func (ep *Endpoint) firstDelivery(from id.NodeID, seq uint64) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	st, ok := ep.in[from]
	if !ok {
		st = &recvState{seen: make(map[uint64]bool)}
		ep.in[from] = st
	}
	if seq <= st.low || st.seen[seq] {
		return false
	}
	st.seen[seq] = true
	for st.seen[st.low+1] {
		st.low++
		delete(st.seen, st.low)
	}
	return true
}

func (ep *Endpoint) retransmitLoop() {
	defer ep.wg.Done()
	ticker := time.NewTicker(ep.retransmit)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ep.mu.Lock()
			type resend struct {
				to  id.NodeID
				seq uint64
				p   msg.Payload
			}
			var pending []resend
			for to, st := range ep.out {
				for seq, p := range st.unacked {
					pending = append(pending, resend{to: to, seq: seq, p: p})
				}
			}
			ep.mu.Unlock()
			for _, r := range pending {
				_ = ep.inner.Send(msg.Envelope{To: r.to, Payload: msg.RData{Seq: r.seq, Inner: r.p}})
			}
		case <-ep.innerDone:
			return
		case <-ep.done:
			return
		}
	}
}

// pump moves delivered messages from the unbounded inbox to the recv channel.
func (ep *Endpoint) pump() {
	defer ep.wg.Done()
	defer close(ep.recv)
	for {
		for {
			env, ok := ep.inbox.Pop()
			if !ok {
				break
			}
			select {
			case ep.recv <- env:
			case <-ep.done:
				return
			}
		}
		select {
		case <-ep.inbox.Out():
			if ep.inbox.Closed() && ep.inbox.Len() == 0 {
				return
			}
		case <-ep.done:
			return
		}
	}
}

// Compile-time interface check.
var _ transport.Endpoint = (*Endpoint)(nil)
