package rchan

import (
	"testing"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

func pairOver(t *testing.T, opts transport.Options) (*Endpoint, *Endpoint, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(opts)
	t.Cleanup(net.Close)
	rawA, err := net.Attach(id.AppServer(1))
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := net.Attach(id.AppServer(2))
	if err != nil {
		t.Fatal(err)
	}
	a := Wrap(rawA, 10*time.Millisecond)
	b := Wrap(rawB, 10*time.Millisecond)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b, net
}

func payload(seq uint64) msg.Payload {
	return msg.Decide{RID: id.ResultID{Client: id.Client(1), Seq: seq, Try: 1}, O: msg.OutcomeCommit}
}

func collect(t *testing.T, ep *Endpoint, n int, within time.Duration) []msg.Envelope {
	t.Helper()
	var out []msg.Envelope
	deadline := time.After(within)
	for len(out) < n {
		select {
		case env, ok := <-ep.Recv():
			if !ok {
				t.Fatalf("closed after %d/%d deliveries", len(out), n)
			}
			out = append(out, env)
		case <-deadline:
			t.Fatalf("timed out after %d/%d deliveries", len(out), n)
		}
	}
	return out
}

func TestDeliversOverPerfectNetwork(t *testing.T) {
	a, b, _ := pairOver(t, transport.Options{})
	for i := 0; i < 10; i++ {
		if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: payload(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, 10, 5*time.Second)
	if len(got) != 10 {
		t.Fatalf("got %d", len(got))
	}
}

func TestRetransmissionBeatsLoss(t *testing.T) {
	// 40% loss: without retransmission most of 50 messages would vanish.
	a, b, _ := pairOver(t, transport.Options{LossProb: 0.4, Seed: 11})
	for i := 0; i < 50; i++ {
		if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: payload(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, 50, 30*time.Second)
	seen := make(map[uint64]bool)
	for _, env := range got {
		seen[env.Payload.(msg.Decide).RID.Seq] = true
	}
	if len(seen) != 50 {
		t.Fatalf("only %d distinct messages delivered", len(seen))
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// 100% duplication at the network plus retransmission pressure: each
	// logical message must still be delivered exactly once.
	a, b, _ := pairOver(t, transport.Options{DupProb: 1.0, Seed: 3})
	const n = 25
	for i := 0; i < n; i++ {
		if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: payload(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, n, 15*time.Second)
	counts := make(map[uint64]int)
	for _, env := range got {
		counts[env.Payload.(msg.Decide).RID.Seq]++
	}
	// No further deliveries may trickle in.
	select {
	case env := <-b.Recv():
		counts[env.Payload.(msg.Decide).RID.Seq]++
	case <-time.After(100 * time.Millisecond):
	}
	for seq, c := range counts {
		if c != 1 {
			t.Errorf("message %d delivered %d times (integrity violated)", seq, c)
		}
	}
}

func TestHeartbeatsBypassReliability(t *testing.T) {
	a, b, _ := pairOver(t, transport.Options{})
	if err := a.Send(msg.Envelope{To: id.AppServer(2), Payload: msg.Heartbeat{Seq: 9}}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, b, 1, 5*time.Second)
	if hb, ok := got[0].Payload.(msg.Heartbeat); !ok || hb.Seq != 9 {
		t.Fatalf("payload = %#v", got[0].Payload)
	}
	if a.Unacked() != 0 {
		t.Errorf("heartbeats must not be buffered for retransmission (unacked=%d)", a.Unacked())
	}
}

func TestUnackedDrainsOnAck(t *testing.T) {
	a, b, _ := pairOver(t, transport.Options{})
	for i := 0; i < 5; i++ {
		a.Send(msg.Envelope{To: id.AppServer(2), Payload: payload(uint64(i))})
	}
	collect(t, b, 5, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for a.Unacked() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("unacked stuck at %d", a.Unacked())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRetransmitStopsWhenInnerDies(t *testing.T) {
	a, _, net := pairOver(t, transport.Options{LossProb: 1.0, Seed: 1})
	// Everything is lost: unacked grows, retransmit loop spins.
	a.Send(msg.Envelope{To: id.AppServer(2), Payload: payload(1)})
	if a.Unacked() != 1 {
		t.Fatalf("unacked = %d", a.Unacked())
	}
	// Crash the node under the wrapper: the retransmit loop must wind down
	// without Close being called (the cluster crashes nodes this way).
	net.Crash(id.AppServer(1))
	time.Sleep(50 * time.Millisecond) // would spin forever if not stopped
}

func TestSendNilPayloadRejected(t *testing.T) {
	a, _, _ := pairOver(t, transport.Options{})
	if err := a.Send(msg.Envelope{To: id.AppServer(2)}); err == nil {
		t.Fatal("nil payload accepted")
	}
}
