package spin

import (
	"testing"
	"time"
)

func TestSleepZeroAndNegativeReturnImmediately(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > 5*time.Millisecond {
		t.Error("zero/negative sleep blocked")
	}
}

func TestSleepIsAccurate(t *testing.T) {
	for _, d := range []time.Duration{50 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond} {
		// Never early is a hard guarantee; the overshoot bound depends on
		// machine load (the yield loop shares the core), so measure the
		// best of several attempts before judging it.
		best := time.Duration(1 << 62)
		for attempt := 0; attempt < 5; attempt++ {
			start := time.Now()
			Sleep(d)
			got := time.Since(start)
			if got < d {
				t.Errorf("Sleep(%v) returned after %v (early)", d, got)
			}
			if got < best {
				best = got
			}
		}
		if best > d+2*time.Millisecond {
			t.Errorf("Sleep(%v): best of 5 took %v (too much overshoot)", d, best)
		}
	}
}
