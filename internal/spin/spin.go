// Package spin provides a precise sleep for the cost-model simulation.
// time.Sleep on this class of kernel overshoots by up to ~1 ms, which
// distorts scaled-down component costs (at scale 0.05 the paper's 3.4 ms
// client marshalling becomes 170 µs — far below the overshoot). Sleep
// therefore sleeps only for the bulk of long durations and yield-polls the
// remainder: the loop calls runtime.Gosched every iteration so that, even on
// a single-core machine, concurrent protocol goroutines keep running while
// the simulated work "executes".
package spin

import (
	"runtime"
	"time"
)

// tail is the window that is yield-polled rather than slept, sized to cover
// the worst time.Sleep overshoot observed on coarse-timer kernels.
const tail = 2 * time.Millisecond

// Sleep blocks for d with well-under-a-millisecond precision.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > tail {
		time.Sleep(d - tail)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
