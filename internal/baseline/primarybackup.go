package baseline

import (
	"errors"
	"sync"
	"time"

	"etx/internal/core"
	"etx/internal/fd"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// PBConfig parameterizes one server of the Figure 7(c) primary-backup pair.
type PBConfig struct {
	Self        id.NodeID
	Peer        id.NodeID // the other member of the pair
	Primary     bool      // initial role
	DataServers []id.NodeID
	Endpoint    transport.Endpoint
	Logic       Logic
	// Detector must be PERFECT for the scheme to be correct; injecting an
	// unreliable one demonstrates the inconsistency the paper warns about
	// ("a false suspicion might lead to an inconsistency").
	Detector fd.Detector
	Resend   time.Duration
	// TakeoverInterval is how often the backup polls the detector.
	TakeoverInterval time.Duration
	// Hooks carries crash-injection points for the failure experiments.
	Hooks *core.Hooks
}

// PBServer is one member of the primary-backup e-Transaction scheme the
// authors adapted in [18]: the primary records start and outcome at the
// backup (replacing 2PC's forced disk writes), and the backup finishes or
// aborts in-flight requests when its failure detector reports the primary
// dead. Exactly-once holds only if that detector never lies.
type PBServer struct {
	cfg  PBConfig
	base *serverBase

	mu        sync.Mutex
	started   map[id.ResultID][]byte       // start records (request bodies)
	outcomes  map[id.ResultID]msg.Decision // outcome records
	handled   map[id.ResultID]bool         // requests this server completed or cleaned
	pbWaiters map[pbAckKey]chan struct{}
	primary   bool
}

// NewPBServer creates one member of the pair.
func NewPBServer(cfg PBConfig) (*PBServer, error) {
	if cfg.Endpoint == nil || cfg.Logic == nil || len(cfg.DataServers) == 0 || cfg.Detector == nil {
		return nil, errors.New("baseline: PB server needs Endpoint, Logic, DataServers and Detector")
	}
	if cfg.TakeoverInterval <= 0 {
		cfg.TakeoverInterval = 10 * time.Millisecond
	}
	return &PBServer{
		cfg:       cfg,
		base:      newServerBase(cfg.Self, cfg.DataServers, cfg.Endpoint, cfg.Resend),
		started:   make(map[id.ResultID][]byte),
		outcomes:  make(map[id.ResultID]msg.Decision),
		handled:   make(map[id.ResultID]bool),
		pbWaiters: make(map[pbAckKey]chan struct{}),
		primary:   cfg.Primary,
	}, nil
}

// Start launches the server and (on the backup) the takeover monitor.
func (s *PBServer) Start() {
	s.base.wg.Add(2)
	go s.loop()
	go s.takeoverLoop()
}

// Stop terminates the server.
func (s *PBServer) Stop() { s.base.stop() }

// IsPrimary reports the server's current role.
func (s *PBServer) IsPrimary() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// RecordedOutcome returns the decision this server believes rid reached
// (experiment oracle: comparing it with the databases' recorded outcomes
// exposes the false-suspicion inconsistency).
func (s *PBServer) RecordedOutcome(rid id.ResultID) (msg.Decision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dec, ok := s.outcomes[rid]
	return dec, ok
}

func (s *PBServer) loop() {
	defer s.base.wg.Done()
	for {
		select {
		case env, ok := <-s.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			if s.base.route(env) {
				continue
			}
			//etxlint:allow kindswitch — the PB baseline only speaks Request and its PB* kinds; the paper's weaker protocol ignores the rest by design
			switch m := env.Payload.(type) {
			case msg.Request:
				if s.IsPrimary() {
					s.base.wg.Add(1)
					go func() {
						defer s.base.wg.Done()
						s.serve(m)
					}()
				}
				// A backup ignores client requests until takeover; the
				// client keeps retransmitting.
			case msg.PBStart:
				s.mu.Lock()
				s.started[m.RID] = m.Body
				s.mu.Unlock()
				_ = s.cfg.Endpoint.Send(msg.Envelope{To: env.From, Payload: msg.PBStartAck{RID: m.RID}})
			case msg.PBOutcome:
				s.mu.Lock()
				s.outcomes[m.RID] = m.Dec
				s.mu.Unlock()
				_ = s.cfg.Endpoint.Send(msg.Envelope{To: env.From, Payload: msg.PBOutcomeAck{RID: m.RID}})
			case msg.PBStartAck, msg.PBOutcomeAck:
				s.routePBAck(env)
			}
		case <-s.base.ctx.Done():
			return
		}
	}
}

// pbAckWaiters correlates start/outcome acknowledgements.
var errStopped = errors.New("baseline: server stopping")

type pbAckKey struct {
	rid     id.ResultID
	outcome bool
}

func (s *PBServer) routePBAck(env msg.Envelope) {
	var key pbAckKey
	//etxlint:allow kindswitch — ack correlator for the two PB ack kinds only; the caller demux routes everything else
	switch m := env.Payload.(type) {
	case msg.PBStartAck:
		key = pbAckKey{rid: m.RID}
	case msg.PBOutcomeAck:
		key = pbAckKey{rid: m.RID, outcome: true}
	default:
		return
	}
	s.mu.Lock()
	ch, ok := s.pbWaiters[key]
	s.mu.Unlock()
	if ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// record sends a start or outcome record to the peer and waits for its ack,
// retransmitting as needed.
func (s *PBServer) record(rid id.ResultID, p msg.Payload, outcome bool) error {
	key := pbAckKey{rid: rid, outcome: outcome}
	ch := make(chan struct{}, 1)
	s.mu.Lock()
	s.pbWaiters[key] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pbWaiters, key)
		s.mu.Unlock()
	}()
	send := func() { _ = s.cfg.Endpoint.Send(msg.Envelope{To: s.cfg.Peer, Payload: p}) }
	send()
	ticker := time.NewTicker(s.base.resend)
	defer ticker.Stop()
	for {
		select {
		case <-ch:
			return nil
		case <-ticker.C:
			send()
		case <-s.base.ctx.Done():
			return errStopped
		}
	}
}

func (s *PBServer) serve(req msg.Request) {
	rid := req.RID
	s.mu.Lock()
	if s.handled[rid] {
		// Retransmission of a finished request: resend its outcome.
		dec, ok := s.outcomes[rid]
		s.mu.Unlock()
		if ok {
			_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
		}
		return
	}
	s.mu.Unlock()

	// Start record at the backup (replaces 2PC's forced log-start).
	if err := s.record(rid, msg.PBStart{RID: rid, Body: req.Body}, false); err != nil {
		return
	}
	crashIf(s.cfg.Hooks, core.PointAfterRegA, rid)

	dec := msg.Decision{Outcome: msg.OutcomeAbort}
	result, err := s.cfg.Logic.Compute(s.base.ctx, &Tx{base: s.base, rid: rid}, req.Body)
	if err == nil {
		dec.Outcome = s.base.votePhase(rid)
		if dec.Outcome == msg.OutcomeCommit {
			dec.Result = result
		}
	}
	crashIf(s.cfg.Hooks, core.PointAfterPrepare, rid)

	// Outcome record at the backup (replaces 2PC's forced log-outcome).
	if err := s.record(rid, msg.PBOutcome{RID: rid, Dec: dec}, true); err != nil {
		return
	}
	crashIf(s.cfg.Hooks, core.PointAfterRegD, rid)

	s.base.decidePhase(rid, dec.Outcome)
	s.mu.Lock()
	s.handled[rid] = true
	s.outcomes[rid] = dec
	s.mu.Unlock()
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
}

// takeoverLoop is the backup's monitor: when the detector reports the
// primary crashed, finish every request with a recorded outcome and abort
// every request that only has a start record, then serve new requests.
// With a perfect detector this is exactly-once; with false suspicions the
// cleanup races the live primary WITHOUT any write-once arbitration — the
// inconsistency the asynchronous scheme eliminates.
func (s *PBServer) takeoverLoop() {
	defer s.base.wg.Done()
	ticker := time.NewTicker(s.cfg.TakeoverInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if s.IsPrimary() || !s.cfg.Detector.Suspects(s.cfg.Peer) {
				continue
			}
			s.takeover()
		case <-s.base.ctx.Done():
			return
		}
	}
}

func (s *PBServer) takeover() {
	s.mu.Lock()
	s.primary = true
	type job struct {
		rid id.ResultID
		dec msg.Decision
	}
	var jobs []job
	for rid := range s.started {
		if s.handled[rid] {
			continue
		}
		s.handled[rid] = true
		dec, ok := s.outcomes[rid]
		if !ok {
			dec = msg.Decision{Outcome: msg.OutcomeAbort}
			s.outcomes[rid] = dec
		}
		jobs = append(jobs, job{rid: rid, dec: dec})
	}
	s.mu.Unlock()

	for _, j := range jobs {
		s.base.decidePhase(j.rid, j.dec.Outcome)
		_ = s.cfg.Endpoint.Send(msg.Envelope{To: j.rid.Client, Payload: msg.Result{RID: j.rid, Dec: j.dec}})
	}
}
