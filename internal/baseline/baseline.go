// Package baseline implements the three protocols the paper's evaluation
// compares against (Appendix 3, Figure 7):
//
//	(a) an unreliable baseline — one application server, single-phase commit,
//	    no guarantees whatsoever;
//	(b) presumed-nothing two-phase commit — one application server that
//	    forces start and outcome records to its local disk, giving
//	    at-most-once semantics and blocking on coordinator failure;
//	(c) a primary-backup e-Transaction scheme (from the authors' tech report
//	    [18]) — correct only under a perfect failure detector, which is the
//	    paper's argument for its asynchronous replication scheme.
//
// All three reuse the same database tier (core.DataServer over xadb) and the
// same business-logic shape as the replicated protocol, so latency
// comparisons isolate exactly the reliability machinery, as in Figure 8.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// Tx is the data-access handle baseline logic computes through; it mirrors
// core.Tx so workloads can be written once against a common interface.
type Tx struct {
	base *serverBase
	rid  id.ResultID
}

// RID returns the try this transaction belongs to.
func (t *Tx) RID() id.ResultID { return t.rid }

// DBs returns the database servers of the deployment.
func (t *Tx) DBs() []id.NodeID { return t.base.dbs }

// Exec runs one data operation on db inside this try's branch.
func (t *Tx) Exec(ctx context.Context, db id.NodeID, op msg.Op) (msg.OpResult, error) {
	return t.base.exec(ctx, t.rid, db, op)
}

// Logic is the business logic run by baseline servers.
type Logic interface {
	Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error)
}

// LogicFunc adapts a function to Logic.
type LogicFunc func(ctx context.Context, tx *Tx, req []byte) ([]byte, error)

// Compute implements Logic.
func (f LogicFunc) Compute(ctx context.Context, tx *Tx, req []byte) ([]byte, error) {
	return f(ctx, tx, req)
}

type voteEvent struct {
	from id.NodeID
	v    msg.Vote
}

type ackEvent struct {
	from id.NodeID
	o    msg.Outcome // outcome the database actually applied
}

// serverBase carries the plumbing every baseline server shares: the
// endpoint, the database list, reply correlation and the standard phases.
type serverBase struct {
	self   id.NodeID
	dbs    []id.NodeID
	ep     transport.Endpoint
	resend time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	execID atomic.Uint64

	mu    sync.Mutex
	execs map[uint64]chan msg.ExecReply
	votes map[id.ResultID]chan voteEvent
	acks  map[id.ResultID]chan ackEvent
}

func newServerBase(self id.NodeID, dbs []id.NodeID, ep transport.Endpoint, resend time.Duration) *serverBase {
	if resend <= 0 {
		resend = 100 * time.Millisecond
	}
	b := &serverBase{
		self:   self,
		dbs:    dbs,
		ep:     ep,
		resend: resend,
		execs:  make(map[uint64]chan msg.ExecReply),
		votes:  make(map[id.ResultID]chan voteEvent),
		acks:   make(map[id.ResultID]chan ackEvent),
	}
	b.ctx, b.cancel = context.WithCancel(context.Background())
	return b
}

func (b *serverBase) stop() {
	b.cancel()
	b.wg.Wait()
}

// route dispatches database replies to waiting phases; it returns false for
// payloads the base does not handle (server-specific traffic).
func (b *serverBase) route(env msg.Envelope) bool {
	//etxlint:allow kindswitch — partial by contract: route returns false for kinds the base does not handle, and each baseline's demux owns the rest
	switch m := env.Payload.(type) {
	case msg.ExecReply:
		b.mu.Lock()
		ch, ok := b.execs[m.CallID]
		b.mu.Unlock()
		if ok {
			select {
			case ch <- m:
			default:
			}
		}
	case msg.VoteMsg:
		b.mu.Lock()
		ch, ok := b.votes[m.RID]
		b.mu.Unlock()
		if ok {
			select {
			case ch <- voteEvent{from: env.From, v: m.V}:
			default:
			}
		}
	case msg.AckDecide:
		b.mu.Lock()
		ch, ok := b.acks[m.RID]
		b.mu.Unlock()
		if ok {
			select {
			case ch <- ackEvent{from: env.From, o: m.O}:
			default:
			}
		}
	default:
		return false
	}
	return true
}

// exec performs one data operation with reply correlation.
func (b *serverBase) exec(ctx context.Context, rid id.ResultID, db id.NodeID, op msg.Op) (msg.OpResult, error) {
	callID := b.execID.Add(1)
	ch := make(chan msg.ExecReply, 2)
	b.mu.Lock()
	b.execs[callID] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.execs, callID)
		b.mu.Unlock()
	}()
	if err := b.ep.Send(msg.Envelope{To: db, Payload: msg.Exec{RID: rid, CallID: callID, Op: op}}); err != nil {
		return msg.OpResult{}, fmt.Errorf("baseline: exec: %w", err)
	}
	select {
	case rep := <-ch:
		return rep.Rep, nil
	case <-ctx.Done():
		return msg.OpResult{}, ctx.Err()
	case <-b.ctx.Done():
		return msg.OpResult{}, errors.New("baseline: server stopping")
	}
}

// votePhase runs the 2PC voting round: Prepare to every database, wait for
// every vote, commit only on unanimous yes. Blocking with retransmission —
// baselines have no Ready machinery; a crashed database stalls them (the
// paper's point about 2PC being blocking).
func (b *serverBase) votePhase(rid id.ResultID) msg.Outcome {
	ch := make(chan voteEvent, 4*len(b.dbs))
	b.mu.Lock()
	b.votes[rid] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.votes, rid)
		b.mu.Unlock()
	}()

	got := make(map[id.NodeID]msg.Vote, len(b.dbs))
	send := func() {
		for _, db := range b.dbs {
			if _, ok := got[db]; !ok {
				_ = b.ep.Send(msg.Envelope{To: db, Payload: msg.Prepare{RID: rid}})
			}
		}
	}
	send()
	ticker := time.NewTicker(b.resend)
	defer ticker.Stop()
	for len(got) < len(b.dbs) {
		select {
		case ev := <-ch:
			if _, dup := got[ev.from]; !dup {
				got[ev.from] = ev.v
			}
		case <-ticker.C:
			send()
		case <-b.ctx.Done():
			return msg.OutcomeAbort
		}
	}
	for _, v := range got {
		if v != msg.VoteYes {
			return msg.OutcomeAbort
		}
	}
	return msg.OutcomeCommit
}

// decidePhase drives an outcome to every database until all acknowledge.
func (b *serverBase) decidePhase(rid id.ResultID, o msg.Outcome) {
	ch := make(chan ackEvent, 4*len(b.dbs))
	b.mu.Lock()
	b.acks[rid] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.acks, rid)
		b.mu.Unlock()
	}()

	acked := make(map[id.NodeID]bool, len(b.dbs))
	send := func() {
		for _, db := range b.dbs {
			if !acked[db] {
				_ = b.ep.Send(msg.Envelope{To: db, Payload: msg.Decide{RID: rid, O: o}})
			}
		}
	}
	send()
	ticker := time.NewTicker(b.resend)
	defer ticker.Stop()
	for len(acked) < len(b.dbs) {
		select {
		case ev := <-ch:
			acked[ev.from] = true
		case <-ticker.C:
			send()
		case <-b.ctx.Done():
			return
		}
	}
}

// commit1P drives a single-phase commit to every database (baseline (a)).
// The overall outcome is commit only if every database committed.
func (b *serverBase) commit1P(rid id.ResultID) msg.Outcome {
	ch := make(chan ackEvent, 4*len(b.dbs))
	b.mu.Lock()
	b.acks[rid] = ch
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.acks, rid)
		b.mu.Unlock()
	}()

	acked := make(map[id.NodeID]msg.Outcome, len(b.dbs))
	send := func() {
		for _, db := range b.dbs {
			if _, ok := acked[db]; !ok {
				_ = b.ep.Send(msg.Envelope{To: db, Payload: msg.Commit1P{RID: rid}})
			}
		}
	}
	send()
	ticker := time.NewTicker(b.resend)
	defer ticker.Stop()
	for len(acked) < len(b.dbs) {
		select {
		case ev := <-ch:
			acked[ev.from] = ev.o
		case <-ticker.C:
			send()
		case <-b.ctx.Done():
			return msg.OutcomeAbort
		}
	}
	for _, o := range acked {
		if o != msg.OutcomeCommit {
			// A database refused (poisoned branch): without 2PC the other
			// databases may already have committed — exactly the anomaly the
			// baseline accepts in exchange for speed.
			return msg.OutcomeAbort
		}
	}
	return msg.OutcomeCommit
}
