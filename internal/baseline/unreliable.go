package baseline

import (
	"context"
	"errors"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/transport"
)

// UnreliableConfig parameterizes the Figure 7(a) baseline server.
type UnreliableConfig struct {
	Self        id.NodeID
	DataServers []id.NodeID
	Endpoint    transport.Endpoint
	Logic       Logic
	Resend      time.Duration
	Hooks       *core.Hooks
}

// UnreliableServer is the paper's baseline: one stateless application server
// that computes and single-phase-commits, with no logging, no replication
// and no recovery. Fast, and silent about failures.
type UnreliableServer struct {
	cfg  UnreliableConfig
	base *serverBase
}

// NewUnreliableServer creates the baseline server.
func NewUnreliableServer(cfg UnreliableConfig) (*UnreliableServer, error) {
	if cfg.Endpoint == nil || cfg.Logic == nil || len(cfg.DataServers) == 0 {
		return nil, errors.New("baseline: unreliable server needs Endpoint, Logic and DataServers")
	}
	return &UnreliableServer{
		cfg:  cfg,
		base: newServerBase(cfg.Self, cfg.DataServers, cfg.Endpoint, cfg.Resend),
	}, nil
}

// Start launches the server loop.
func (s *UnreliableServer) Start() {
	s.base.wg.Add(1)
	go s.loop()
}

// Stop terminates the server.
func (s *UnreliableServer) Stop() { s.base.stop() }

func (s *UnreliableServer) loop() {
	defer s.base.wg.Done()
	for {
		select {
		case env, ok := <-s.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			if s.base.route(env) {
				continue
			}
			if req, ok := env.Payload.(msg.Request); ok {
				s.base.wg.Add(1)
				go func() {
					defer s.base.wg.Done()
					s.serve(req)
				}()
			}
		case <-s.base.ctx.Done():
			return
		}
	}
}

func (s *UnreliableServer) serve(req msg.Request) {
	rid := req.RID
	dec := msg.Decision{Outcome: msg.OutcomeAbort}

	t0 := time.Now()
	result, err := s.cfg.Logic.Compute(s.base.ctx, &Tx{base: s.base, rid: rid}, req.Body)
	spanIf(s.cfg.Hooks, rid, core.SpanSQL, time.Since(t0))
	if err == nil {
		t0 = time.Now()
		dec.Outcome = s.base.commit1P(rid)
		spanIf(s.cfg.Hooks, rid, core.SpanCommit, time.Since(t0))
		if dec.Outcome == msg.OutcomeCommit {
			dec.Result = result
		}
	}
	_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
}

func spanIf(h *core.Hooks, rid id.ResultID, s core.Span, d time.Duration) {
	if h != nil && h.Span != nil {
		h.Span(rid, s, d)
	}
}

func crashIf(h *core.Hooks, p core.CrashPoint, rid id.ResultID) {
	if h != nil && h.Crash != nil {
		h.Crash(p, rid)
	}
}

// OneShotClient sends one request to one server and waits for the result:
// the client side of the unreliable and 2PC protocols. There is no retry —
// at-most-once is all these protocols offer, and on timeout the caller
// cannot know what happened (the paper's motivating problem).
type OneShotClient struct {
	self   id.NodeID
	server id.NodeID
	ep     transport.Endpoint
	seq    uint64
}

// NewOneShotClient creates a client talking to one application server.
func NewOneShotClient(self, server id.NodeID, ep transport.Endpoint) *OneShotClient {
	return &OneShotClient{self: self, server: server, ep: ep}
}

// ErrOutcomeUnknown is returned when the call times out: the request may or
// may not have executed.
var ErrOutcomeUnknown = errors.New("baseline: outcome unknown (timeout)")

// Call issues one request and returns the decision. A context expiry maps to
// ErrOutcomeUnknown.
func (c *OneShotClient) Call(ctx context.Context, request []byte) (msg.Decision, error) {
	c.seq++
	rid := id.ResultID{Client: c.self, Seq: c.seq, Try: 1}
	if err := c.ep.Send(msg.Envelope{To: c.server, Payload: msg.Request{RID: rid, Body: request}}); err != nil {
		return msg.Decision{}, err
	}
	for {
		select {
		case env, ok := <-c.ep.Recv():
			if !ok {
				return msg.Decision{}, errors.New("baseline: client endpoint closed")
			}
			if res, ok := env.Payload.(msg.Result); ok && res.RID == rid {
				return res.Dec, nil
			}
		case <-ctx.Done():
			return msg.Decision{}, ErrOutcomeUnknown
		}
	}
}
