package baseline

import (
	"errors"
	"time"

	"etx/internal/core"
	"etx/internal/id"
	"etx/internal/msg"
	"etx/internal/stablestore"
	"etx/internal/transport"
	"etx/internal/wal"
)

// TwoPCConfig parameterizes the Figure 7(b) coordinator.
type TwoPCConfig struct {
	Self        id.NodeID
	DataServers []id.NodeID
	Endpoint    transport.Endpoint
	Logic       Logic
	// Log is the coordinator's local disk (forced writes simulate the eager
	// log IO the paper measures at 12.5/12.7 ms).
	Log    *stablestore.Store
	Resend time.Duration
	Hooks  *core.Hooks
}

// TwoPCServer is a presumed-nothing two-phase-commit coordinator: it forces
// a start record before the voting phase and an outcome record before the
// decision phase, exactly as the paper describes its measured 2PC
// implementation ("the application server logs information about the
// transaction before it is started and after the outcome has been
// determined; logging is a synchronous operation").
//
// Guarantees: at-most-once. If the coordinator crashes, clients learn
// nothing and prepared databases block — the limitations the e-Transaction
// protocol removes.
type TwoPCServer struct {
	cfg  TwoPCConfig
	base *serverBase
	log  *wal.Log
}

// NewTwoPCServer creates the coordinator.
func NewTwoPCServer(cfg TwoPCConfig) (*TwoPCServer, error) {
	if cfg.Endpoint == nil || cfg.Logic == nil || len(cfg.DataServers) == 0 || cfg.Log == nil {
		return nil, errors.New("baseline: 2PC server needs Endpoint, Logic, DataServers and Log")
	}
	return &TwoPCServer{
		cfg:  cfg,
		base: newServerBase(cfg.Self, cfg.DataServers, cfg.Endpoint, cfg.Resend),
		log:  wal.New(cfg.Log),
	}, nil
}

// Start launches the coordinator loop.
func (s *TwoPCServer) Start() {
	s.base.wg.Add(1)
	go s.loop()
}

// Stop terminates the coordinator.
func (s *TwoPCServer) Stop() { s.base.stop() }

func (s *TwoPCServer) loop() {
	defer s.base.wg.Done()
	for {
		select {
		case env, ok := <-s.cfg.Endpoint.Recv():
			if !ok {
				return
			}
			if s.base.route(env) {
				continue
			}
			if req, ok := env.Payload.(msg.Request); ok {
				s.base.wg.Add(1)
				go func() {
					defer s.base.wg.Done()
					s.serve(req)
				}()
			}
		case <-s.base.ctx.Done():
			return
		}
	}
}

func (s *TwoPCServer) serve(req msg.Request) {
	rid := req.RID

	// Forced start record ("presumed nothing").
	t0 := time.Now()
	s.log.Append(wal.Record{Type: wal.RecPrepared, RID: rid}, true)
	spanIf(s.cfg.Hooks, rid, core.SpanLogStart, time.Since(t0))

	dec := msg.Decision{Outcome: msg.OutcomeAbort}
	t0 = time.Now()
	result, err := s.cfg.Logic.Compute(s.base.ctx, &Tx{base: s.base, rid: rid}, req.Body)
	spanIf(s.cfg.Hooks, rid, core.SpanSQL, time.Since(t0))
	crashIf(s.cfg.Hooks, core.PointAfterCompute, rid)

	if err == nil {
		t0 = time.Now()
		dec.Outcome = s.base.votePhase(rid)
		spanIf(s.cfg.Hooks, rid, core.SpanPrepare, time.Since(t0))
		if dec.Outcome == msg.OutcomeCommit {
			dec.Result = result
		}
	}
	crashIf(s.cfg.Hooks, core.PointAfterPrepare, rid)

	// Forced outcome record.
	t0 = time.Now()
	typ := wal.RecAborted
	if dec.Outcome == msg.OutcomeCommit {
		typ = wal.RecCommitted
	}
	s.log.Append(wal.Record{Type: typ, RID: rid}, true)
	spanIf(s.cfg.Hooks, rid, core.SpanLogOutcome, time.Since(t0))
	crashIf(s.cfg.Hooks, core.PointAfterRegD, rid)

	t0 = time.Now()
	s.base.decidePhase(rid, dec.Outcome)
	spanIf(s.cfg.Hooks, rid, core.SpanCommit, time.Since(t0))

	_ = s.cfg.Endpoint.Send(msg.Envelope{To: rid.Client, Payload: msg.Result{RID: rid, Dec: dec}})
}
